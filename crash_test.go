package nucleodb

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nucleodb/internal/segment"
)

var errInjected = errors.New("injected crash")

// armFault makes the nth arrival at the named fault point fail, as a
// crash at that instant would, and restores the hook on cleanup.
func armFault(t *testing.T, point string, skip int) {
	t.Helper()
	n := 0
	segment.FaultHook = func(p string) error {
		if p != point {
			return nil
		}
		n++
		if n <= skip {
			return nil
		}
		return errInjected
	}
	t.Cleanup(func() { segment.FaultHook = nil })
}

// expectResults reopens dir both ways and checks the surviving state
// answers identically to a monolithic build of wantRecs.
func expectResults(t *testing.T, label, dir, query string, wantRecs []Record) {
	t.Helper()
	mono, err := Build(wantRecs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mono.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, paged := range []bool{false, true} {
		open := Open
		if paged {
			open = OpenPaged
		}
		db, err := open(dir, DefaultScoring())
		if err != nil {
			t.Fatalf("%s: reopen (paged=%v) after crash: %v", label, paged, err)
		}
		if got := db.NumSequences(); got != len(wantRecs) {
			t.Fatalf("%s (paged=%v): %d records after crash, want %d", label, paged, got, len(wantRecs))
		}
		got, err := db.Search(query, DefaultSearchOptions())
		if err != nil {
			t.Fatalf("%s (paged=%v): %v", label, paged, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s (paged=%v): post-crash results diverge\n got %+v\nwant %+v", label, paged, got, want)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// segmentFiles lists the seg-* files in dir, for leak checks.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") || strings.HasSuffix(e.Name(), ".tmp") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestCrashSafetyAppend injects a crash at each fault point of a
// persisted Append and proves the reopened directory is always
// consistent: the batch is either fully present or fully absent, and
// search results match the corresponding monolithic build exactly.
func TestCrashSafetyAppend(t *testing.T) {
	recs, query, _ := testRecords(330)
	base, batch := recs[:30], recs[30:]

	cases := []struct {
		point   string
		durable bool // is the batch visible after the crash?
	}{
		{segment.FaultSegmentsWritten, false},
		{segment.FaultBeforeManifestRename, false},
		{segment.FaultAfterManifestRename, true},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "db")
			db, err := Build(base, DefaultBuildConfig())
			if err != nil {
				t.Fatal(err)
			}
			db.SetMaxSegments(math.MaxInt32)
			if err := db.SaveSegmented(dir); err != nil {
				t.Fatal(err)
			}

			armFault(t, tc.point, 0)
			if err := db.Append(batch); !errors.Is(err, errInjected) {
				t.Fatalf("Append survived the injected crash: %v", err)
			}
			segment.FaultHook = nil

			want := base
			if tc.durable {
				want = recs
			}
			expectResults(t, tc.point, dir, query, want)

			// The reopen garbage-collected whatever the crash orphaned:
			// every remaining file belongs to the live manifest.
			db2, err := Open(dir, DefaultScoring())
			if err != nil {
				t.Fatal(err)
			}
			liveSegs := db2.NumSegments()
			files := segmentFiles(t, dir)
			if len(files) != 2*liveSegs {
				t.Errorf("%d segment files on disk for %d live segments (GC leak?): %v", len(files), liveSegs, files)
			}
		})
	}
}

// TestCrashSafetyCompact injects a crash at each fault point of a
// persisted compaction. Compaction only reorganises data, so every
// crash state must answer identically to the full record set; what
// varies is only whether the fold became durable.
func TestCrashSafetyCompact(t *testing.T) {
	recs, query, _ := testRecords(331)
	rng := rand.New(rand.NewSource(332))

	points := []struct {
		point  string
		folded bool // did the fold survive the crash?
	}{
		{segment.FaultSegmentsWritten, false},
		{segment.FaultBeforeManifestRename, false},
		{segment.FaultAfterManifestRename, true},
	}
	for _, tc := range points {
		t.Run(tc.point, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "db")
			db := buildSegmented(t, recs, 4, rng)
			if err := db.SaveSegmented(dir); err != nil {
				t.Fatal(err)
			}
			segsBefore := db.NumSegments()

			db.SetMaxSegments(1)
			armFault(t, tc.point, 0)
			if _, err := db.Compact(); !errors.Is(err, errInjected) {
				t.Fatalf("Compact survived the injected crash: %v", err)
			}
			segment.FaultHook = nil

			// Data is never lost, whatever the fault point.
			expectResults(t, tc.point, dir, query, recs)

			db2, err := Open(dir, DefaultScoring())
			if err != nil {
				t.Fatal(err)
			}
			if tc.folded && db2.NumSegments() >= segsBefore {
				t.Errorf("fold was durable but reopen sees %d segments (had %d)", db2.NumSegments(), segsBefore)
			}
			if !tc.folded && db2.NumSegments() != segsBefore {
				t.Errorf("aborted fold changed the layout: %d segments, had %d", db2.NumSegments(), segsBefore)
			}
			files := segmentFiles(t, dir)
			if len(files) != 2*db2.NumSegments() {
				t.Errorf("%d segment files for %d live segments (GC leak?): %v", len(files), db2.NumSegments(), files)
			}

			// The survivor keeps working: compaction completes cleanly on
			// the reopened database and answers stay identical.
			db2.SetMaxSegments(1)
			for {
				n, err := db2.Compact()
				if err != nil {
					t.Fatal(err)
				}
				if n == 0 {
					break
				}
			}
			if db2.NumSegments() != 1 {
				t.Fatalf("recompaction left %d segments", db2.NumSegments())
			}
			expectResults(t, tc.point+"/recompacted", dir, query, recs)
		})
	}
}

// TestCrashSafetyDeleteManifest injects a crash into the manifest swap
// of a persisted Delete: tombstones are either fully durable or fully
// absent, never partial.
func TestCrashSafetyDeleteManifest(t *testing.T) {
	recs, query, _ := testRecords(333)
	for _, tc := range []struct {
		point   string
		durable bool
	}{
		{segment.FaultBeforeManifestRename, false},
		{segment.FaultAfterManifestRename, true},
	} {
		t.Run(tc.point, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "db")
			db, err := Build(recs, DefaultBuildConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := db.SaveSegmented(dir); err != nil {
				t.Fatal(err)
			}
			armFault(t, tc.point, 0)
			if err := db.Delete(0, 1); !errors.Is(err, errInjected) {
				t.Fatalf("Delete survived the injected crash: %v", err)
			}
			segment.FaultHook = nil

			want := recs
			if tc.durable {
				want = append([]Record{}, recs...)
				want[0].Sequence = ""
				want[1].Sequence = ""
			}
			expectResults(t, tc.point, dir, query, want)
		})
	}
}

// TestCrashSafetyEveryApppendOfAStream drives a whole append stream
// with a crash injected at a different point each round, reopening
// after each: the database must never lose an acknowledged batch nor
// resurrect a failed one, at any segment count or compaction state.
func TestCrashSafetyAppendStream(t *testing.T) {
	if testing.Short() {
		t.Skip("stream matrix skipped in -short mode")
	}
	recs, query, _ := testRecords(334)
	points := []string{segment.FaultSegmentsWritten, segment.FaultBeforeManifestRename, segment.FaultAfterManifestRename}

	dir := filepath.Join(t.TempDir(), "db")
	db, err := Build(recs[:10], DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	db.SetMaxSegments(math.MaxInt32)
	if err := db.SaveSegmented(dir); err != nil {
		t.Fatal(err)
	}
	durable := 10 // records known durable on disk

	for i, start := 0, 10; start < len(recs); i, start = i+1, start+7 {
		end := start + 7
		if end > len(recs) {
			end = len(recs)
		}
		batch := recs[durable:end]
		point := points[i%len(points)]
		armFault(t, point, 0)
		err := db.Append(batch)
		segment.FaultHook = nil
		if !errors.Is(err, errInjected) {
			t.Fatalf("round %d: Append survived the injected crash: %v", i, err)
		}
		if point == segment.FaultAfterManifestRename {
			durable = end
		}
		// "Reboot": reopen from disk, verify, and carry on appending
		// from the durable state.
		db, err = Open(dir, DefaultScoring())
		if err != nil {
			t.Fatalf("round %d: reopen: %v", i, err)
		}
		db.SetMaxSegments(math.MaxInt32)
		if got := db.NumSequences(); got != durable {
			t.Fatalf("round %d: %d records after reboot, want %d", i, got, durable)
		}
	}
	// Finish the stream cleanly and verify the whole collection.
	if durable < len(recs) {
		if err := db.Append(recs[durable:]); err != nil {
			t.Fatal(err)
		}
	}
	db2, err := Open(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.NumSequences(); got != len(recs) {
		t.Fatalf("stream ended with %d records, want %d", got, len(recs))
	}
	expectResults(t, "stream-end", dir, query, recs)
}
