package nucleodb

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestSignaturePoolSnapshotStaleness pins the pool-invalidation rule
// for the signature backend: a searcher checked out against one
// signatured snapshot is dropped once a writer publishes a newer one,
// and fresh checkouts answer signature-backend queries against the new
// snapshot — an old pooled searcher must never serve signatures sized
// for the previous segment set.
func TestSignaturePoolSnapshotStaleness(t *testing.T) {
	recs, query, _ := testRecords(530)
	db, err := Build(recs[:30], sigBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	db.SetMaxSegments(math.MaxInt32)

	s, set, err := db.getSearcher()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(recs[30:]); err != nil {
		t.Fatal(err)
	}
	db.putSearcher(s)
	if set.NumSeqs() == db.NumSequences() {
		t.Fatal("append did not change the snapshot")
	}
	s2, set2, err := db.getSearcher()
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s {
		t.Error("stale searcher served from the pool after snapshot swap")
	}
	if set2.NumSeqs() != db.NumSequences() {
		t.Error("fresh checkout sees a stale snapshot")
	}
	db.putSearcher(s2)

	// The appended segment inherited signatures, and both backends
	// agree on the post-append snapshot.
	if !db.HasSignatures() {
		t.Fatal("append dropped the signatures")
	}
	opts := DefaultSearchOptions()
	opts.CoarseBackend = "postings"
	want, err := db.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.CoarseBackend = "signature"
	got, err := db.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("signature results diverge from postings after snapshot swap")
	}
}

// TestSignatureConcurrentHammer races both coarse backends against the
// whole mutation surface: readers alternate postings, signature and
// auto backends across random coarse modes while an append stream,
// deletes and compactions (which rebuild merged segments' signatures)
// swap snapshots underneath them. Run under -race (make check does).
// At the end, the settled database must answer identically under both
// backends across the full option grid.
func TestSignatureConcurrentHammer(t *testing.T) {
	recs, query, _ := testRecords(540)
	base, stream := recs[:25], recs[25:]

	db, err := Build(base, sigBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	db.SetMaxSegments(3)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	backends := []string{"postings", "signature", "auto"}
	modes := []string{"", "distinct", "total", "normalised", "diagonal"}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				o := DefaultSearchOptions()
				o.CoarseBackend = backends[rng.Intn(len(backends))]
				o.CoarseMode = modes[rng.Intn(len(modes))]
				o.CoarseWorkers = rng.Intn(3)
				rs, err := db.Search(query, o)
				if err != nil {
					t.Errorf("search (%s/%s): %v", o.CoarseBackend, o.CoarseMode, err)
					return
				}
				for i := 1; i < len(rs); i++ {
					if rs[i].Score > rs[i-1].Score {
						t.Error("results unsorted")
						return
					}
				}
			}
		}(int64(550 + r))
	}

	// Compactions race the readers; every merge must rebuild the merged
	// segment's signatures before the snapshot swap publishes it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	deleted := false
	for start := 0; start < len(stream); start += 5 {
		end := start + 5
		if end > len(stream) {
			end = len(stream)
		}
		if err := db.Append(stream[start:end]); err != nil {
			t.Fatalf("append: %v", err)
		}
		if !deleted && db.NumSequences() > 13 {
			if err := db.Delete(13); err != nil {
				t.Fatalf("delete: %v", err)
			}
			deleted = true
		}
	}
	close(stop)
	wg.Wait()

	// Settle and lock down: signatures survived every append and merge,
	// and both backends agree across the full grid.
	db.SetMaxSegments(1)
	for {
		n, err := db.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	mustEqualBackends(t, "hammer-settled", db, query)
}
