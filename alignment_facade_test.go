package nucleodb

import (
	"strings"
	"testing"
)

func TestAlignmentRendering(t *testing.T) {
	recs, query, _ := testRecords(79)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := db.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	text, err := db.Alignment(query, rs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"score ", "identity", "Query", "Sbjct", "|"} {
		if !strings.Contains(text, want) {
			t.Errorf("alignment missing %q:\n%s", want, text)
		}
	}
}

func TestAlignmentErrors(t *testing.T) {
	recs, query, _ := testRecords(80)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Alignment("AC!GT", 0); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := db.Alignment(query, -1); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := db.Alignment(query, db.NumSequences()); err == nil {
		t.Error("out-of-range id accepted")
	}
}
