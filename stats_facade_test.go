package nucleodb

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSearchReportsSignificance(t *testing.T) {
	recs, query, _ := testRecords(68)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := db.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	top := rs[0]
	if top.Bits <= 0 {
		t.Errorf("top bit score = %v, want > 0", top.Bits)
	}
	// A strong homolog in a ~30 kbase database is overwhelmingly
	// significant.
	if top.EValue > 1e-6 {
		t.Errorf("top E-value = %v, want ≤ 1e-6", top.EValue)
	}
	// E-values order opposite to scores.
	for i := 1; i < len(rs); i++ {
		if rs[i].Score < rs[i-1].Score && rs[i].EValue < rs[i-1].EValue {
			t.Errorf("E-value ordering inverted at %d: %v after %v", i, rs[i].EValue, rs[i-1].EValue)
		}
	}
}

func TestStatisticsStable(t *testing.T) {
	recs, _, _ := testRecords(69)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.Statistics()
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Statistics()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("Statistics changed between calls: %+v vs %+v", a, b)
	}
	if a.Lambda <= 0 || a.K <= 0 || a.H <= 0 {
		t.Errorf("degenerate parameters: %+v", a)
	}
}

func TestBothStrandsFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	source := letters(rng, 500)
	rc := reverseComplementLetters(source)
	recs := []Record{{Desc: "rc-target", Sequence: rc}}
	for i := 0; i < 20; i++ {
		recs = append(recs, Record{Desc: "noise", Sequence: letters(rng, 400)})
	}
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	query := source[100:300]

	opts := DefaultSearchOptions()
	opts.MinScore = 500
	fwd, err := db.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd) != 0 {
		t.Fatalf("forward-only search found the RC target: %+v", fwd)
	}
	opts.BothStrands = true
	both, err := db.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) == 0 || both[0].ID != 0 || !both[0].Reverse {
		t.Fatalf("both-strands search results = %+v", both)
	}
}

func reverseComplementLetters(s string) string {
	comp := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}
	var b strings.Builder
	for i := len(s) - 1; i >= 0; i-- {
		b.WriteByte(comp[s[i]])
	}
	return b.String()
}
