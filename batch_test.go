package nucleodb

import (
	"reflect"
	"testing"
)

func TestSearchBatchMatchesSequential(t *testing.T) {
	recs, query, _ := testRecords(75)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		query,
		query[:150],
		query[50:],
	}
	opts := DefaultSearchOptions()

	batch, err := db.SearchBatch(queries, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("got %d result lists", len(batch))
	}
	for i, q := range queries {
		seq, err := db.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], seq) {
			t.Errorf("query %d: batch and sequential results differ\nbatch: %+v\nseq:   %+v",
				i, batch[i], seq)
		}
	}
}

func TestSearchBatchEmpty(t *testing.T) {
	recs, _, _ := testRecords(76)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := db.SearchBatch(nil, DefaultSearchOptions(), 0)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
}

func TestSearchBatchBadQuery(t *testing.T) {
	recs, query, _ := testRecords(77)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SearchBatch([]string{query, "ACG!T"}, DefaultSearchOptions(), 2); err == nil {
		t.Error("invalid query accepted")
	}
	// Query shorter than the interval length fails inside the worker.
	if _, err := db.SearchBatch([]string{query, "ACG"}, DefaultSearchOptions(), 2); err == nil {
		t.Error("too-short query accepted")
	}
}

func TestSearchBatchManyWorkers(t *testing.T) {
	recs, query, _ := testRecords(78)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	// More workers than queries must not deadlock or drop results.
	out, err := db.SearchBatch([]string{query}, DefaultSearchOptions(), 64)
	if err != nil || len(out) != 1 || len(out[0]) == 0 {
		t.Fatalf("batch = %d lists, err %v", len(out), err)
	}
}
