package nucleodb_test

import (
	"fmt"
	"log"

	"nucleodb"
)

// Example builds a small database and runs one search end to end.
func Example() {
	records := []nucleodb.Record{
		{Desc: "subject", Sequence: "ACGTTGCAGGCCTTAAGGCCAACGTTGCAGGCCTTAAGGCCA"},
		{Desc: "unrelated", Sequence: "TTTTAAAACCCCGGGGTTTTAAAACCCCGGGGTTTTAAAACC"},
	}
	cfg := nucleodb.DefaultBuildConfig()
	cfg.IntervalLength = 8
	db, err := nucleodb.Build(records, cfg)
	if err != nil {
		log.Fatal(err)
	}

	opts := nucleodb.DefaultSearchOptions()
	opts.MinCoarseHits = 1
	results, err := db.Search("ACGTTGCAGGCCTTAAGGCCA", opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s score=%d\n", r.Desc, r.Score)
	}
	// Output:
	// subject score=105
}

// ExampleDatabase_Search shows option use: exact fine alignment with
// spans and identity.
func ExampleDatabase_Search() {
	db, err := nucleodb.Build([]nucleodb.Record{
		{Desc: "gene", Sequence: "AACCGGTTAACCGGTTAACCGGTTAACCGGTT"},
	}, nucleodb.BuildConfig{IntervalLength: 6, Scoring: nucleodb.DefaultScoring()})
	if err != nil {
		log.Fatal(err)
	}
	opts := nucleodb.DefaultSearchOptions()
	opts.Exact = true
	opts.MinCoarseHits = 1
	results, err := db.Search("AACCGGTTAACCGGTT", opts)
	if err != nil {
		log.Fatal(err)
	}
	r := results[0]
	fmt.Printf("%s: identity %.0f%%, query %d-%d\n", r.Desc, 100*r.Identity, r.QueryStart, r.QueryEnd)
	// Output:
	// gene: identity 100%, query 0-16
}

// ExampleDatabase_Alignment renders a full alignment.
func ExampleDatabase_Alignment() {
	db, err := nucleodb.Build([]nucleodb.Record{
		{Desc: "ref", Sequence: "ACGTACGTACGT"},
	}, nucleodb.BuildConfig{IntervalLength: 4, Scoring: nucleodb.DefaultScoring()})
	if err != nil {
		log.Fatal(err)
	}
	text, err := db.Alignment("ACGTACGT", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(text)
	// Output:
	// score 40, identity 100% (8/8), gaps 0
	// Query      1  ACGTACGT  8
	//               ||||||||
	// Sbjct      1  ACGTACGT  8
}
