package nucleodb

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

// searchGrid is the public-API option matrix the equivalence suite
// compares across: both coarse rankings, both fine phases and kernels,
// strand handling, prescreen, and serial vs parallel workers.
func searchGrid() map[string]SearchOptions {
	grid := map[string]SearchOptions{}
	base := DefaultSearchOptions()
	grid["default"] = base

	diag := base
	diag.Diagonal = true
	grid["diagonal"] = diag

	exact := base
	exact.Exact = true
	exact.FineKernel = "bitvector"
	grid["exact-bitvector"] = exact

	strands := base
	strands.BothStrands = true
	strands.Prescreen = 60
	grid["strands-prescreen"] = strands

	parallel := base
	parallel.CoarseWorkers = 3
	parallel.FineWorkers = 2
	grid["parallel"] = parallel
	return grid
}

// splitRecords cuts recs into k non-empty contiguous batches at random
// boundaries.
func splitRecords(rng *rand.Rand, recs []Record, k int) [][]Record {
	cuts := map[int]bool{}
	for len(cuts) < k-1 {
		cuts[1+rng.Intn(len(recs)-1)] = true
	}
	var out [][]Record
	start := 0
	for i := 1; i < len(recs); i++ {
		if cuts[i] {
			out = append(out, recs[start:i])
			start = i
		}
	}
	return append(out, recs[start:])
}

// buildSegmented builds the same collection as Build(recs) but in k
// append batches, leaving the segments unfolded.
func buildSegmented(t *testing.T, recs []Record, k int, rng *rand.Rand) *Database {
	t.Helper()
	batches := splitRecords(rng, recs, k)
	db, err := Build(batches[0], DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	db.SetMaxSegments(math.MaxInt32)
	for _, b := range batches[1:] {
		if err := db.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.NumSegments(); got != k {
		t.Fatalf("built %d segments, want %d", got, k)
	}
	return db
}

func mustEqualResults(t *testing.T, label string, db, mono *Database, query string) {
	t.Helper()
	for name, opts := range searchGrid() {
		want, err := mono.Search(query, opts)
		if err != nil {
			t.Fatalf("%s/%s: mono: %v", label, name, err)
		}
		got, err := db.Search(query, opts)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s/%s: results diverge from monolithic build\n got %+v\nwant %+v", label, name, got, want)
		}
	}
}

// TestSegmentedEquivalenceProperty is the tentpole's lockdown: for
// random record streams split into k append batches (k = 1..8), the
// segmented database answers byte-identically to a monolithic build of
// the same records — across the whole search-option grid, at every
// compaction state from fully unfolded to fully folded.
func TestSegmentedEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property matrix skipped in -short mode (covered by the full run and CI's segments-equivalence job)")
	}
	for trial := 0; trial < 2; trial++ {
		recs, query, _ := testRecords(int64(300 + trial))
		mono, err := Build(recs, DefaultBuildConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(400 + trial)))
		for k := 1; k <= 8; k++ {
			db := buildSegmented(t, recs, k, rng)
			mustEqualResults(t, fmt.Sprintf("trial%d/k%d/unfolded", trial, k), db, mono, query)

			// Batch answers match single-query answers segment-for-segment.
			batch, err := db.SearchBatch([]string{query, query[:120]}, DefaultSearchOptions(), 2)
			if err != nil {
				t.Fatal(err)
			}
			single, err := mono.Search(query[:120], DefaultSearchOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(batch[1], single) {
				t.Fatalf("trial%d/k%d: batch diverges", trial, k)
			}

			// Fold one step at a time, re-proving equivalence at every
			// intermediate compaction state.
			db.SetMaxSegments(1)
			for step := 0; ; step++ {
				n, err := db.Compact()
				if err != nil {
					t.Fatal(err)
				}
				if n == 0 {
					break
				}
				mustEqualResults(t, fmt.Sprintf("trial%d/k%d/fold%d", trial, k, step), db, mono, query)
			}
			if got := db.NumSegments(); got != 1 {
				t.Fatalf("full compaction left %d segments", got)
			}
		}
	}
}

// TestSegmentedSaveReloadEquivalence checks both persistence paths out
// of a multi-segment state: SaveSegmented round-trips the layout
// (in-memory and paged), and legacy Save flattens to a byte-compatible
// monolithic database.
func TestSegmentedSaveReloadEquivalence(t *testing.T) {
	recs, query, _ := testRecords(310)
	mono, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(311))
	db := buildSegmented(t, recs, 4, rng)

	segDir := filepath.Join(t.TempDir(), "segdb")
	if err := db.SaveSegmented(segDir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Open(segDir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if got := reloaded.NumSegments(); got != 4 {
		t.Fatalf("reloaded %d segments, want 4", got)
	}
	mustEqualResults(t, "segmented-reload", reloaded, mono, query)

	paged, err := OpenPaged(segDir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	mustEqualResults(t, "segmented-paged", paged, mono, query)

	flatDir := filepath.Join(t.TempDir(), "flatdb")
	if err := db.Save(flatDir); err != nil {
		t.Fatal(err)
	}
	flat, err := Open(flatDir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if got := flat.NumSegments(); got != 1 {
		t.Fatalf("legacy Save kept %d segments", got)
	}
	mustEqualResults(t, "flattened", flat, mono, query)
}

// TestDeleteEquivalence: tombstoned records vanish immediately and
// survivors score identically to a database where the deleted records
// were empty stubs from the start — before AND after compaction
// physically reclaims them (ids never renumber, significance uses live
// bases).
func TestDeleteEquivalence(t *testing.T) {
	recs, query, family := testRecords(320)
	rng := rand.New(rand.NewSource(321))
	db := buildSegmented(t, recs, 3, rng)

	// Delete one family member (a guaranteed strong hit) and two noise
	// records.
	var dead []int
	for id := range family {
		dead = append(dead, id)
		break
	}
	dead = append(dead, len(recs)-1, len(recs)-7)
	if err := db.Delete(dead...); err != nil {
		t.Fatal(err)
	}
	if db.NumDeleted() != len(dead) {
		t.Fatalf("NumDeleted = %d, want %d", db.NumDeleted(), len(dead))
	}
	for _, id := range dead {
		if !db.IsDeleted(id) {
			t.Fatalf("record %d not tombstoned", id)
		}
	}

	// Reference: same records with the deleted ones as empty stubs.
	stubbed := append([]Record{}, recs...)
	for _, id := range dead {
		stubbed[id].Sequence = ""
	}
	ref, err := Build(stubbed, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if db.TotalBases() != ref.TotalBases() {
		t.Fatalf("live bases %d != stub build %d", db.TotalBases(), ref.TotalBases())
	}
	mustEqualResults(t, "tombstoned", db, ref, query)

	// Compaction reclaims the tombstones without changing any answer.
	db.SetMaxSegments(1)
	for {
		n, err := db.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	if db.NumDeleted() != 0 {
		t.Fatalf("%d tombstones survived full compaction", db.NumDeleted())
	}
	if db.TotalBases() != ref.TotalBases() {
		t.Fatalf("live bases changed across compaction: %d != %d", db.TotalBases(), ref.TotalBases())
	}
	mustEqualResults(t, "compacted", db, ref, query)

	// Deleting everything leaves a searchable empty database.
	if err := db.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(0); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := db.Delete(-1); err == nil {
		t.Error("negative id accepted")
	}
	if err := db.Delete(db.NumSequences()); err == nil {
		t.Error("out-of-range id accepted")
	}
}
