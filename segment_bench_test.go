// Benchmarks for the segmented index (experiment E16 in
// EXPERIMENTS.md): the Append stall a searcher-facing writer pays per
// batch, query latency as a function of segment count, and compaction
// throughput. Run with:
//
//	go test -bench='AppendStall|SearchSegments|Compaction' -benchtime=20x
package nucleodb

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	idb "nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
	"nucleodb/internal/index"
)

// segBenchRecords generates n records of mean length meanLen.
func segBenchRecords(b *testing.B, n, meanLen int, seed int64) []Record {
	b.Helper()
	cfg := gen.DefaultConfig(n, seed)
	cfg.MeanLength = meanLen
	col, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]Record, len(col.Records))
	for i, r := range col.Records {
		recs[i] = Record{Desc: r.Desc, Sequence: dna.String(r.Codes)}
	}
	return recs
}

// reportP99 attaches a P99 metric (ns) computed from per-op samples.
func reportP99(b *testing.B, samples []time.Duration) {
	if len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p99 := samples[int(math.Ceil(0.99*float64(len(samples))))-1]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns/op")
}

// BenchmarkAppendStall measures what a writer pays to make a 10-record
// batch searchable on top of a 10k-record base — the operation a
// serving process performs while queries are in flight.
//
// "segmented" is this tree's Append: index the batch as its own small
// segment and swap the manifest pointer. "monolithic-merge" is the
// pre-segmentation design it replaced: fold the batch into the base
// index with index.Merge, re-encoding every posting list, so the stall
// grows with the base rather than the batch.
func BenchmarkAppendStall(b *testing.B) {
	base := segBenchRecords(b, 10_000, 300, 16)
	batches := segBenchRecords(b, 2_000, 300, 17)

	b.Run("segmented", func(b *testing.B) {
		db, err := Build(base, DefaultBuildConfig())
		if err != nil {
			b.Fatal(err)
		}
		db.SetMaxSegments(math.MaxInt32) // isolate Append from compaction
		samples := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := batches[(i*10)%(len(batches)-10):][:10]
			start := time.Now()
			if err := db.Append(batch); err != nil {
				b.Fatal(err)
			}
			samples = append(samples, time.Since(start))
		}
		b.StopTimer()
		reportP99(b, samples)
	})

	b.Run("monolithic-merge", func(b *testing.B) {
		opts := index.Options{K: DefaultBuildConfig().IntervalLength, StoreOffsets: true}
		var baseStore idb.Store
		for _, r := range base {
			baseStore.Add(r.Desc, dna.MustEncode(r.Sequence))
		}
		baseIdx, err := index.Build(&baseStore, opts)
		if err != nil {
			b.Fatal(err)
		}
		samples := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := batches[(i*10)%(len(batches)-10):][:10]
			start := time.Now()
			var bs idb.Store
			for _, r := range batch {
				bs.Add(r.Desc, dna.MustEncode(r.Sequence))
			}
			batchIdx, err := index.Build(&bs, opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := index.Merge(baseIdx, batchIdx); err != nil {
				b.Fatal(err)
			}
			samples = append(samples, time.Since(start))
		}
		b.StopTimer()
		reportP99(b, samples)
	})
}

// BenchmarkSearchSegments measures query latency against the same
// collection held as 1, 2, 4, 8, and 16 segments: the read-side price
// of deferring compaction.
func BenchmarkSearchSegments(b *testing.B) {
	recs := segBenchRecords(b, 1_200, 900, 18)
	queries := deriveQueries(b, recs, 8)
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("segments=%d", k), func(b *testing.B) {
			db := buildSegmentedBench(b, recs, k)
			opts := DefaultSearchOptions()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Search(queries[i%len(queries)], opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompaction measures the background fold: merging a
// 16-segment collection down to one, in bases per second.
func BenchmarkCompaction(b *testing.B) {
	recs := segBenchRecords(b, 1_200, 900, 19)
	var totalBases int64
	for _, r := range recs {
		totalBases += int64(len(r.Sequence))
	}
	b.SetBytes(totalBases)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := buildSegmentedBench(b, recs, 16)
		db.SetMaxSegments(1)
		b.StartTimer()
		for {
			n, err := db.Compact()
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
		}
		if db.NumSegments() != 1 {
			b.Fatalf("%d segments after full compaction", db.NumSegments())
		}
	}
}

// buildSegmentedBench builds recs as k equal segments.
func buildSegmentedBench(b *testing.B, recs []Record, k int) *Database {
	b.Helper()
	per := (len(recs) + k - 1) / k
	db, err := Build(recs[:per], DefaultBuildConfig())
	if err != nil {
		b.Fatal(err)
	}
	db.SetMaxSegments(math.MaxInt32)
	for start := per; start < len(recs); start += per {
		end := start + per
		if end > len(recs) {
			end = len(recs)
		}
		if err := db.Append(recs[start:end]); err != nil {
			b.Fatal(err)
		}
	}
	if db.NumSegments() != k {
		b.Fatalf("built %d segments, want %d", db.NumSegments(), k)
	}
	return db
}

// deriveQueries cuts nq 100-base fragments from the collection.
func deriveQueries(b *testing.B, recs []Record, nq int) []string {
	b.Helper()
	var out []string
	for i := 0; len(out) < nq && i < len(recs); i++ {
		if len(recs[i].Sequence) >= 120 {
			out = append(out, recs[i].Sequence[10:110])
		}
	}
	if len(out) < nq {
		b.Fatal("collection too short for query derivation")
	}
	return out
}
