package nucleodb

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestSearchWithStatsEquivalence: the facade's instrumented search
// returns results identical to the plain one.
func TestSearchWithStatsEquivalence(t *testing.T) {
	recs, query, _ := testRecords(61)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSearchOptions()
	plain, err := db.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	withStats, st, err := db.SearchWithStats(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withStats) {
		t.Fatalf("instrumented results differ:\nplain: %+v\nstats: %+v", plain, withStats)
	}
	if st.PostingsDecoded == 0 || st.CoarseCandidates == 0 || st.TotalTime == 0 {
		t.Fatalf("stats collected no work: %+v", st)
	}
	if st.FineAlignments > st.CoarseCandidates {
		t.Fatalf("FineAlignments %d > CoarseCandidates %d", st.FineAlignments, st.CoarseCandidates)
	}
	if st.Results != len(withStats) {
		t.Fatalf("Results %d != %d answers", st.Results, len(withStats))
	}
}

// TestSearchBatchWithStatsAggregates: the batch aggregate equals the
// field-wise sum of per-query stats.
func TestSearchBatchWithStatsAggregates(t *testing.T) {
	recs, query, _ := testRecords(67)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	queries := []string{query, letters(rng, 300), query}
	opts := DefaultSearchOptions()

	var want SearchStats
	for _, q := range queries {
		_, st, err := db.SearchWithStats(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		want.Add(st)
	}
	batchOut, agg, err := db.SearchBatchWithStats(queries, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batchOut) != len(queries) {
		t.Fatalf("%d result lists for %d queries", len(batchOut), len(queries))
	}
	// Work counters are deterministic; wall times are not.
	if agg.PostingsDecoded != want.PostingsDecoded ||
		agg.CoarseCandidates != want.CoarseCandidates ||
		agg.FineAlignments != want.FineAlignments ||
		agg.FineDPCells != want.FineDPCells ||
		agg.Results != want.Results ||
		agg.Strands != want.Strands {
		t.Fatalf("batch aggregate differs from summed per-query stats:\nbatch: %+v\nsum:   %+v", agg, want)
	}
	if agg.TotalTime == 0 {
		t.Fatal("batch aggregate has zero accumulated time")
	}
}

// TestSearchStatsJSONShape: the facade stats marshal with the stable
// snake_case keys the tools' JSON output relies on.
func TestSearchStatsJSONShape(t *testing.T) {
	recs, query, _ := testRecords(71)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := db.SearchWithStats(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"postings_decoded", "coarse_candidates", "prescreen_rejections",
		"fine_alignments", "fine_dp_cells", "coarse_ns", "fine_ns",
		"traceback_ns", "total_ns",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("stats JSON missing %q: %s", key, buf)
		}
	}
}

// TestProcessMetricsAggregate: searches feed the process-wide registry
// and WriteMetrics exports it as JSON.
func TestProcessMetricsAggregate(t *testing.T) {
	recs, query, _ := testRecords(73)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	ResetMetrics()
	const n = 4
	var wantPostings int64
	for i := 0; i < n; i++ {
		_, st, err := db.SearchWithStats(query, DefaultSearchOptions())
		if err != nil {
			t.Fatal(err)
		}
		wantPostings += st.PostingsDecoded
	}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics export not JSON: %v\n%s", err, buf.String())
	}
	if got := snap.Counters["searches_total"]; got != n {
		t.Fatalf("searches_total = %d, want %d", got, n)
	}
	if got := snap.Counters["postings_decoded_total"]; got != wantPostings {
		t.Fatalf("postings_decoded_total = %d, want %d", got, wantPostings)
	}
	if got := snap.Histograms["search_latency"].Count; got != n {
		t.Fatalf("search_latency count = %d, want %d", got, n)
	}
	ResetMetrics()
	buf.Reset()
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["searches_total"]; got != 0 {
		t.Fatalf("after ResetMetrics, searches_total = %d, want 0", got)
	}
}

// TestConcurrentSearchStatsAndMetrics is the satellite concurrency
// test: 8 goroutines share one Database (whose internal lock
// serialises its searcher) and the one process-wide metrics registry,
// searching, reading stats, and snapshotting metrics concurrently. Run
// under -race (make check) this certifies the counters and histograms
// are data-race free end to end.
func TestConcurrentSearchStatsAndMetrics(t *testing.T) {
	recs, query, _ := testRecords(79)
	db, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	ResetMetrics()
	baseline, _, err := db.SearchWithStats(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rs, st, err := db.SearchWithStats(query, DefaultSearchOptions())
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(rs, baseline) {
					t.Errorf("concurrent search diverged from baseline")
					return
				}
				if st.PostingsDecoded == 0 {
					t.Errorf("concurrent search collected no stats")
					return
				}
				if err := WriteMetrics(io.Discard); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["searches_total"]; got != goroutines*perG+1 {
		t.Fatalf("searches_total = %d, want %d (lost updates?)", got, goroutines*perG+1)
	}
}
