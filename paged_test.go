package nucleodb

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestOpenPagedMatchesInMemory(t *testing.T) {
	recs, query, _ := testRecords(91)
	built, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}

	mem, err := Open(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	paged, err := OpenPaged(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()

	a, err := mem.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := paged.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("paged and in-memory searches differ:\n%+v\n%+v", a, b)
	}

	// Batch search works against the paged index too.
	batch, err := paged.SearchBatch([]string{query, query[:150]}, DefaultSearchOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch[0], a) {
		t.Error("paged batch search differs from sequential")
	}
}

func TestOpenPagedRejectsSaveAndAppend(t *testing.T) {
	recs, _, _ := testRecords(92)
	built, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	paged, err := OpenPaged(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	if err := paged.Save(filepath.Join(t.TempDir(), "copy")); err == nil {
		t.Error("Save on paged database accepted")
	}
	if err := paged.Append([]Record{{Desc: "x", Sequence: "ACGTACGTACGT"}}); err == nil {
		t.Error("Append on paged database accepted")
	}
}

func TestOpenPagedFeatureCombos(t *testing.T) {
	recs, query, _ := testRecords(93)
	built, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	paged, err := OpenPaged(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()

	// Both strands + prescreen + parallel fine on a paged index.
	opts := DefaultSearchOptions()
	opts.BothStrands = true
	opts.Prescreen = 100
	opts.FineWorkers = 4
	rs, err := paged.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	// HSPs and Alignment work against the paged store too.
	if _, err := paged.HSPs(query, rs[0].ID, 3, 1); err != nil {
		t.Fatal(err)
	}
	text, err := paged.Alignment(query, rs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Error("empty alignment text")
	}
}

func TestOpenPagedMissing(t *testing.T) {
	if _, err := OpenPaged(filepath.Join(t.TempDir(), "nope"), DefaultScoring()); err == nil {
		t.Error("missing directory accepted")
	}
}
