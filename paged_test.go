package nucleodb

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestOpenPagedMatchesInMemory(t *testing.T) {
	recs, query, _ := testRecords(91)
	built, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}

	mem, err := Open(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	paged, err := OpenPaged(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()

	a, err := mem.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := paged.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("paged and in-memory searches differ:\n%+v\n%+v", a, b)
	}

	// Batch search works against the paged index too.
	batch, err := paged.SearchBatch([]string{query, query[:150]}, DefaultSearchOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch[0], a) {
		t.Error("paged batch search differs from sequential")
	}
}

func TestOpenPagedRejectsMonolithicSave(t *testing.T) {
	recs, _, _ := testRecords(92)
	built, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	paged, err := OpenPaged(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	// An unmodified paged database is one disk-backed segment with no
	// in-memory postings to rewrite; the legacy monolithic Save must
	// refuse rather than write a torn copy.
	if err := paged.Save(filepath.Join(t.TempDir(), "copy")); err == nil {
		t.Error("Save on unmodified paged database accepted")
	}
}

// TestPagedAppend pins the fix for Append on paged databases: the
// disk-backed index becomes a read-only base segment and the batch is
// indexed as a fresh in-memory segment on top, so incremental growth
// works in paged mode and new records are searchable immediately.
func TestPagedAppend(t *testing.T) {
	recs, query, _ := testRecords(92)
	built, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	paged, err := OpenPaged(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()

	extra := Record{Desc: "appended exact match", Sequence: query}
	if err := paged.Append([]Record{extra}); err != nil {
		t.Fatalf("Append on paged database: %v", err)
	}
	if got, want := paged.NumSequences(), len(recs)+1; got != want {
		t.Fatalf("NumSequences = %d, want %d", got, want)
	}
	if got := paged.NumSegments(); got != 2 {
		t.Fatalf("NumSegments = %d, want 2", got)
	}
	rs, err := paged.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.ID == len(recs) && r.Desc == extra.Desc {
			found = true
		}
	}
	if !found {
		t.Fatalf("appended record missing from results: %+v", rs)
	}

	// The grown database matches an in-memory build of the same records.
	mem, err := Build(append(append([]Record{}, recs...), extra), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mem.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, want) {
		t.Errorf("paged append results diverge from monolithic build:\n%+v\n%+v", rs, want)
	}
}

func TestOpenPagedFeatureCombos(t *testing.T) {
	recs, query, _ := testRecords(93)
	built, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	paged, err := OpenPaged(dir, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()

	// Both strands + prescreen + parallel fine on a paged index.
	opts := DefaultSearchOptions()
	opts.BothStrands = true
	opts.Prescreen = 100
	opts.FineWorkers = 4
	rs, err := paged.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	// HSPs and Alignment work against the paged store too.
	if _, err := paged.HSPs(query, rs[0].ID, 3, 1); err != nil {
		t.Fatal(err)
	}
	text, err := paged.Alignment(query, rs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Error("empty alignment text")
	}
}

func TestOpenPagedMissing(t *testing.T) {
	if _, err := OpenPaged(filepath.Join(t.TempDir(), "nope"), DefaultScoring()); err == nil {
		t.Error("missing directory accepted")
	}
}
