// Package clitest builds the command-line tools and exercises the full
// pipeline end to end: generate a collection, build a database, search
// it, and inspect it — the workflow a user of the released system runs.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every cmd/ binary into a temp dir once per test
// run and returns their paths.
func buildTools(t *testing.T) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	bin := t.TempDir()
	tools := map[string]string{}
	for _, name := range []string{"cafe-gen", "cafe-build", "cafe-search", "cafe-inspect", "cafe-bench", "cafe-merge"} {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "nucleodb/cmd/"+name)
		cmd.Dir = ".."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		tools[name] = out
	}
	return tools
}

func run(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(tool, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(tool), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestPipeline(t *testing.T) {
	tools := buildTools(t)
	work := t.TempDir()
	fasta := filepath.Join(work, "collection.fasta")
	queries := filepath.Join(work, "queries.fasta")
	dbDir := filepath.Join(work, "db")

	// Generate a small collection plus homologous queries.
	out := run(t, tools["cafe-gen"],
		"-seqs", "300", "-seed", "5", "-out", fasta,
		"-queries", "3", "-qout", queries, "-querylen", "300")
	if !strings.Contains(out, "wrote 300 sequences") {
		t.Fatalf("cafe-gen output: %s", out)
	}
	if _, err := os.Stat(queries); err != nil {
		t.Fatal(err)
	}

	// Build the database.
	out = run(t, tools["cafe-build"], "-in", fasta, "-db", dbDir, "-k", "9")
	for _, want := range []string{"built", "sequences:", "store:", "index:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cafe-build output missing %q:\n%s", want, out)
		}
	}

	// Search with the generated query file.
	out = run(t, tools["cafe-search"], "-db", dbDir, "-queries", queries, "-limit", "5", "-show", "1")
	if !strings.Contains(out, "answers in") {
		t.Fatalf("cafe-search output:\n%s", out)
	}
	// Homologous queries must find their family: score lines with hits.
	if !strings.Contains(out, "score") || !strings.Contains(out, "family=") {
		t.Fatalf("cafe-search found no family hits:\n%s", out)
	}
	// -show rendered an alignment block.
	if !strings.Contains(out, "Query") || !strings.Contains(out, "Sbjct") {
		t.Fatalf("cafe-search -show printed no alignment:\n%s", out)
	}

	// Literal query, both strands, exact.
	lit := run(t, tools["cafe-search"], "-db", dbDir,
		"-q", strings.Repeat("ACGT", 10), "-strands", "-exact", "-minscore", "1")
	if !strings.Contains(lit, "query query") {
		t.Fatalf("literal query output:\n%s", lit)
	}

	// TSV output for scripting: tab-separated rows, no prose.
	tsvOut := run(t, tools["cafe-search"], "-db", dbDir, "-queries", queries, "-limit", "2", "-tsv")
	for _, line := range strings.Split(strings.TrimSpace(tsvOut), "\n") {
		if fields := strings.Split(line, "\t"); len(fields) != 12 {
			t.Fatalf("tsv line has %d fields: %q", len(fields), line)
		}
	}

	// Inspect.
	out = run(t, tools["cafe-inspect"], "-db", dbDir, "-top", "3")
	for _, want := range []string{"store:", "index:", "posting-list lengths", "most frequent intervals"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cafe-inspect output missing %q:\n%s", want, out)
		}
	}

	// Merge the database with a second segment and re-search: the
	// combined database must still answer.
	fasta2 := filepath.Join(work, "more.fasta")
	db2 := filepath.Join(work, "db2")
	merged := filepath.Join(work, "merged")
	run(t, tools["cafe-gen"], "-seqs", "50", "-seed", "9", "-out", fasta2)
	run(t, tools["cafe-build"], "-in", fasta2, "-db", db2, "-k", "9")
	out = run(t, tools["cafe-merge"], "-a", dbDir, "-b", db2, "-out", merged)
	if !strings.Contains(out, "merged 300 + 50 sequences") {
		t.Fatalf("cafe-merge output:\n%s", out)
	}
	out = run(t, tools["cafe-search"], "-db", merged, "-queries", queries, "-limit", "3")
	if !strings.Contains(out, "answers in") {
		t.Fatalf("search on merged db:\n%s", out)
	}

	// A spaced-seed, skip-enabled database builds and searches too.
	dbSpaced := filepath.Join(work, "db-spaced")
	out = run(t, tools["cafe-build"], "-in", fasta, "-db", dbSpaced,
		"-mask", "1110100101", "-skip", "1", "-stop", "0.01")
	if !strings.Contains(out, "built") {
		t.Fatalf("spaced build output:\n%s", out)
	}
	out = run(t, tools["cafe-search"], "-db", dbSpaced, "-queries", queries, "-limit", "3")
	if !strings.Contains(out, "answers in") {
		t.Fatalf("spaced search output:\n%s", out)
	}
	out = run(t, tools["cafe-inspect"], "-db", dbSpaced)
	if !strings.Contains(out, "skip interval:    1") {
		t.Fatalf("inspect on spaced db:\n%s", out)
	}

	// A focused bench experiment (the fastest one) exercises the
	// experiment runner end to end.
	out = run(t, tools["cafe-bench"], "-run", "E9", "-bases", "100000", "-queries", "4")
	if !strings.Contains(out, "E9") || !strings.Contains(out, "skip interval") {
		t.Fatalf("cafe-bench output:\n%s", out)
	}
}

func TestSearchRejectsMissingDatabase(t *testing.T) {
	tools := buildTools(t)
	cmd := exec.Command(tools["cafe-search"], "-db", filepath.Join(t.TempDir(), "nope"), "-q", "ACGTACGTACGT")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("missing database accepted:\n%s", out)
	}
}

func TestBuildRejectsBadFasta(t *testing.T) {
	tools := buildTools(t)
	work := t.TempDir()
	bad := filepath.Join(work, "bad.fasta")
	if err := os.WriteFile(bad, []byte(">x\nACGT!!\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(tools["cafe-build"], "-in", bad, "-db", filepath.Join(work, "db"))
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("bad FASTA accepted:\n%s", out)
	}
}
