// Package clitest builds the command-line tools and exercises the full
// pipeline end to end: generate a collection, build a database, search
// it, and inspect it — the workflow a user of the released system runs.
package clitest

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildTools compiles every cmd/ binary into a temp dir once per test
// run and returns their paths.
func buildTools(t *testing.T) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	bin := t.TempDir()
	tools := map[string]string{}
	for _, name := range []string{"cafe-gen", "cafe-build", "cafe-search", "cafe-inspect", "cafe-bench", "cafe-merge"} {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "nucleodb/cmd/"+name)
		cmd.Dir = ".."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		tools[name] = out
	}
	return tools
}

func run(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(tool, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(tool), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestPipeline(t *testing.T) {
	tools := buildTools(t)
	work := t.TempDir()
	fasta := filepath.Join(work, "collection.fasta")
	queries := filepath.Join(work, "queries.fasta")
	dbDir := filepath.Join(work, "db")

	// Generate a small collection plus homologous queries.
	out := run(t, tools["cafe-gen"],
		"-seqs", "300", "-seed", "5", "-out", fasta,
		"-queries", "3", "-qout", queries, "-querylen", "300")
	if !strings.Contains(out, "wrote 300 sequences") {
		t.Fatalf("cafe-gen output: %s", out)
	}
	if _, err := os.Stat(queries); err != nil {
		t.Fatal(err)
	}

	// Build the database.
	out = run(t, tools["cafe-build"], "-in", fasta, "-db", dbDir, "-k", "9")
	for _, want := range []string{"built", "sequences:", "store:", "index:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cafe-build output missing %q:\n%s", want, out)
		}
	}

	// Search with the generated query file.
	out = run(t, tools["cafe-search"], "-db", dbDir, "-queries", queries, "-limit", "5", "-show", "1")
	if !strings.Contains(out, "answers in") {
		t.Fatalf("cafe-search output:\n%s", out)
	}
	// Homologous queries must find their family: score lines with hits.
	if !strings.Contains(out, "score") || !strings.Contains(out, "family=") {
		t.Fatalf("cafe-search found no family hits:\n%s", out)
	}
	// -show rendered an alignment block.
	if !strings.Contains(out, "Query") || !strings.Contains(out, "Sbjct") {
		t.Fatalf("cafe-search -show printed no alignment:\n%s", out)
	}

	// Literal query, both strands, exact.
	lit := run(t, tools["cafe-search"], "-db", dbDir,
		"-q", strings.Repeat("ACGT", 10), "-strands", "-exact", "-minscore", "1")
	if !strings.Contains(lit, "query query") {
		t.Fatalf("literal query output:\n%s", lit)
	}

	// TSV output for scripting: tab-separated rows, no prose.
	tsvOut := run(t, tools["cafe-search"], "-db", dbDir, "-queries", queries, "-limit", "2", "-tsv")
	for _, line := range strings.Split(strings.TrimSpace(tsvOut), "\n") {
		if fields := strings.Split(line, "\t"); len(fields) != 12 {
			t.Fatalf("tsv line has %d fields: %q", len(fields), line)
		}
	}

	// Inspect.
	out = run(t, tools["cafe-inspect"], "-db", dbDir, "-top", "3")
	for _, want := range []string{"store:", "index:", "posting-list lengths", "most frequent intervals"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cafe-inspect output missing %q:\n%s", want, out)
		}
	}

	// Merge the database with a second segment and re-search: the
	// combined database must still answer.
	fasta2 := filepath.Join(work, "more.fasta")
	db2 := filepath.Join(work, "db2")
	merged := filepath.Join(work, "merged")
	run(t, tools["cafe-gen"], "-seqs", "50", "-seed", "9", "-out", fasta2)
	run(t, tools["cafe-build"], "-in", fasta2, "-db", db2, "-k", "9")
	out = run(t, tools["cafe-merge"], "-a", dbDir, "-b", db2, "-out", merged)
	if !strings.Contains(out, "merged 300 + 50 sequences") {
		t.Fatalf("cafe-merge output:\n%s", out)
	}
	out = run(t, tools["cafe-search"], "-db", merged, "-queries", queries, "-limit", "3")
	if !strings.Contains(out, "answers in") {
		t.Fatalf("search on merged db:\n%s", out)
	}

	// A spaced-seed, skip-enabled database builds and searches too.
	dbSpaced := filepath.Join(work, "db-spaced")
	out = run(t, tools["cafe-build"], "-in", fasta, "-db", dbSpaced,
		"-mask", "1110100101", "-skip", "1", "-stop", "0.01")
	if !strings.Contains(out, "built") {
		t.Fatalf("spaced build output:\n%s", out)
	}
	out = run(t, tools["cafe-search"], "-db", dbSpaced, "-queries", queries, "-limit", "3")
	if !strings.Contains(out, "answers in") {
		t.Fatalf("spaced search output:\n%s", out)
	}
	out = run(t, tools["cafe-inspect"], "-db", dbSpaced)
	if !strings.Contains(out, "skip interval:    1") {
		t.Fatalf("inspect on spaced db:\n%s", out)
	}

	// A signature-enabled segmented database builds, reports its
	// signature bytes, and answers identically under both coarse
	// backends.
	dbSig := filepath.Join(work, "db-sig")
	out = run(t, tools["cafe-build"], "-in", fasta, "-db", dbSig,
		"-k", "9", "-segment-size", "100", "-signatures")
	if !strings.Contains(out, "signatures:") {
		t.Fatalf("signature build did not report signature bytes:\n%s", out)
	}
	postings := run(t, tools["cafe-search"], "-db", dbSig, "-queries", queries,
		"-limit", "3", "-tsv", "-coarse-backend", "postings")
	signature := run(t, tools["cafe-search"], "-db", dbSig, "-queries", queries,
		"-limit", "3", "-tsv", "-coarse-backend", "signature")
	if postings != signature {
		t.Fatalf("coarse backends disagree:\npostings:\n%s\nsignature:\n%s", postings, signature)
	}
	out = run(t, tools["cafe-search"], "-db", dbSig, "-queries", queries,
		"-limit", "3", "-stats", "-coarse-backend", "signature")
	if !strings.Contains(out, "backend signature") || !strings.Contains(out, "false positives") {
		t.Fatalf("signature search stats missing backend line:\n%s", out)
	}

	// A focused bench experiment (the fastest one) exercises the
	// experiment runner end to end.
	out = run(t, tools["cafe-bench"], "-run", "E9", "-bases", "100000", "-queries", "4")
	if !strings.Contains(out, "E9") || !strings.Contains(out, "skip interval") {
		t.Fatalf("cafe-bench output:\n%s", out)
	}
}

// statsGolden is the stable skeleton of a cafe-search -stats block:
// latencies vary run to run, so the golden comparison keeps labels and
// work counters and blanks out every duration.
var (
	statsDurationRE = regexp.MustCompile(`[0-9]+(\.[0-9]+)?(ns|µs|us|ms|s)\b`)
	spaceRunRE      = regexp.MustCompile(`\s+`)
)

// goldenStats extracts the -stats block lines with durations masked and
// whitespace runs collapsed (the duration column is padded, so masking
// alone leaves width noise).
func goldenStats(out string) []string {
	var block []string
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "stats:") ||
			strings.HasPrefix(trimmed, "coarse:") ||
			strings.HasPrefix(trimmed, "prescreen:") ||
			strings.HasPrefix(trimmed, "fine:") ||
			strings.HasPrefix(trimmed, "traceback:") ||
			strings.HasPrefix(trimmed, "total:") {
			masked := statsDurationRE.ReplaceAllString(trimmed, "<dur>")
			block = append(block, spaceRunRE.ReplaceAllString(masked, " "))
		}
	}
	return block
}

// TestSearchStatsGolden locks in the -stats output: the stable fields
// (stage labels and work counters) must match the golden skeleton
// exactly across runs, and the answer lines must be byte-identical to a
// search without -stats — instrumentation is observably non-perturbing
// from the command line too.
func TestSearchStatsGolden(t *testing.T) {
	tools := buildTools(t)
	work := t.TempDir()
	fasta := filepath.Join(work, "collection.fasta")
	queries := filepath.Join(work, "queries.fasta")
	dbDir := filepath.Join(work, "db")
	run(t, tools["cafe-gen"],
		"-seqs", "200", "-seed", "11", "-out", fasta,
		"-queries", "1", "-qout", queries, "-querylen", "300")
	run(t, tools["cafe-build"], "-in", fasta, "-db", dbDir, "-k", "9")

	plain := run(t, tools["cafe-search"], "-db", dbDir, "-queries", queries, "-limit", "5")
	withStats := run(t, tools["cafe-search"], "-db", dbDir, "-queries", queries, "-limit", "5", "-stats")

	// Answer lines ("  1. score ...") are unchanged by -stats.
	answers := func(out string) []string {
		var got []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "score") && strings.Contains(line, "seq") {
				got = append(got, line)
			}
		}
		return got
	}
	pa, sa := answers(plain), answers(withStats)
	if len(pa) == 0 || strings.Join(pa, "\n") != strings.Join(sa, "\n") {
		t.Fatalf("-stats changed the answers:\nplain:\n%s\nstats:\n%s", plain, withStats)
	}

	// The stats block has the golden shape: every stage label present,
	// counters plausible, and a second run produces the identical
	// skeleton (counters are deterministic; only durations vary).
	block := goldenStats(withStats)
	if len(block) != 6 {
		t.Fatalf("stats block has %d lines, want 6:\n%s", len(block), withStats)
	}
	for i, wantPrefix := range []string{"stats:", "coarse:", "prescreen:", "fine:", "traceback:", "total:"} {
		if !strings.HasPrefix(block[i], wantPrefix) {
			t.Fatalf("stats line %d = %q, want prefix %q", i, block[i], wantPrefix)
		}
	}
	for _, want := range []string{"terms", "lists", "postings", "bytes", "sequences", "candidates", "rejected", "alignments", "dp-cells", "results"} {
		if !strings.Contains(strings.Join(block, "\n"), want) {
			t.Fatalf("stats block missing counter %q:\n%s", want, strings.Join(block, "\n"))
		}
	}
	again := goldenStats(run(t, tools["cafe-search"], "-db", dbDir, "-queries", queries, "-limit", "5", "-stats"))
	if strings.Join(block, "\n") != strings.Join(again, "\n") {
		t.Fatalf("stats skeleton not deterministic:\nfirst:\n%s\nsecond:\n%s",
			strings.Join(block, "\n"), strings.Join(again, "\n"))
	}

	// In -tsv mode the stats go to stderr, keeping stdout machine-clean.
	cmd := exec.Command(tools["cafe-search"], "-db", dbDir, "-queries", queries, "-limit", "2", "-tsv", "-stats")
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("tsv+stats: %v\n%s", err, stderr.String())
	}
	if strings.Contains(stdout.String(), "stats:") || strings.Contains(stdout.String(), "process totals") {
		t.Fatalf("-tsv stdout polluted by stats:\n%s", stdout.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if fields := strings.Split(line, "\t"); len(fields) != 12 {
			t.Fatalf("-tsv -stats stdout line has %d fields: %q", len(fields), line)
		}
	}
	if !strings.Contains(stderr.String(), "stats:") {
		t.Fatalf("-tsv -stats printed no stats on stderr:\n%s", stderr.String())
	}
}

// TestBenchJSON: cafe-bench -json emits parseable JSON carrying the
// per-stage keys and work counters downstream tooling diffs against.
func TestBenchJSON(t *testing.T) {
	tools := buildTools(t)
	out := run(t, tools["cafe-bench"], "-json", "-bases", "100000", "-queries", "4")
	var rep struct {
		Queries  int              `json:"queries"`
		Counters map[string]int64 `json:"counters"`
		Stages   map[string]struct {
			TotalUS float64 `json:"total_us"`
			MeanUS  float64 `json:"mean_us"`
			Share   float64 `json:"share"`
		} `json:"stages"`
		MeanQueryUS float64 `json:"mean_query_us"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("cafe-bench -json not JSON: %v\n%s", err, out)
	}
	if rep.Queries != 4 {
		t.Fatalf("queries = %d, want 4", rep.Queries)
	}
	for _, stage := range []string{"coarse", "prescreen", "fine", "traceback"} {
		if _, ok := rep.Stages[stage]; !ok {
			t.Fatalf("JSON missing stage %q:\n%s", stage, out)
		}
	}
	for _, key := range []string{"postings_decoded", "coarse_candidates", "fine_alignments", "fine_dp_cells", "results"} {
		if rep.Counters[key] <= 0 {
			t.Fatalf("counter %q = %d, want > 0:\n%s", key, rep.Counters[key], out)
		}
	}
	if rep.Stages["coarse"].TotalUS <= 0 || rep.Stages["fine"].TotalUS <= 0 || rep.MeanQueryUS <= 0 {
		t.Fatalf("stage clocks not positive:\n%s", out)
	}
}

// TestInspectJSON: cafe-inspect -json summarises the database in
// machine-readable form.
func TestInspectJSON(t *testing.T) {
	tools := buildTools(t)
	work := t.TempDir()
	fasta := filepath.Join(work, "collection.fasta")
	dbDir := filepath.Join(work, "db")
	run(t, tools["cafe-gen"], "-seqs", "50", "-seed", "3", "-out", fasta)
	run(t, tools["cafe-build"], "-in", fasta, "-db", dbDir, "-k", "9")
	out := run(t, tools["cafe-inspect"], "-db", dbDir, "-json")
	var m map[string]any
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("cafe-inspect -json not JSON: %v\n%s", err, out)
	}
	for _, key := range []string{"sequences", "bases", "index_bytes", "postings_bytes", "total_postings", "interval_length"} {
		v, ok := m[key].(float64)
		if !ok || v <= 0 {
			t.Fatalf("summary key %q = %v, want positive number:\n%s", key, m[key], out)
		}
	}
}

func TestSearchRejectsMissingDatabase(t *testing.T) {
	tools := buildTools(t)
	cmd := exec.Command(tools["cafe-search"], "-db", filepath.Join(t.TempDir(), "nope"), "-q", "ACGTACGTACGT")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("missing database accepted:\n%s", out)
	}
}

func TestBuildRejectsBadFasta(t *testing.T) {
	tools := buildTools(t)
	work := t.TempDir()
	bad := filepath.Join(work, "bad.fasta")
	if err := os.WriteFile(bad, []byte(">x\nACGT!!\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(tools["cafe-build"], "-in", bad, "-db", filepath.Join(work, "db"))
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("bad FASTA accepted:\n%s", out)
	}
}
