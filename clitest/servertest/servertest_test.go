// Package servertest is the golden end-to-end harness for cafe-serve:
// it builds a tiny deterministic corpus, starts the real server binary
// on a random port, replays the committed query script, and diffs each
// normalised JSON response against a committed golden file. Run with
// -update to regenerate the goldens after an intentional wire-format
// change:
//
//	go test ./clitest/servertest -run TestServeGolden -update
package servertest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"nucleodb"
	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
)

var update = flag.Bool("update", false, "rewrite golden files from live responses")

// corpusSeed and corpusSize pin the generated collection; the queries
// in testdata/script.json are fragments of these records, so changing
// either invalidates the script and the goldens.
const (
	corpusSeed = 7
	corpusSize = 120
)

// buildTools compiles the named cmd/ binaries into a temp dir.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("server end-to-end harness in -short mode")
	}
	bin := t.TempDir()
	tools := map[string]string{}
	for _, name := range names {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "nucleodb/cmd/"+name)
		cmd.Dir = "../.."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		tools[name] = out
	}
	return tools
}

// buildCorpus generates the deterministic collection, builds a
// database from it, and saves it under a temp dir.
func buildCorpus(t *testing.T) string {
	t.Helper()
	col, err := gen.Generate(gen.DefaultConfig(corpusSize, corpusSeed))
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]nucleodb.Record, len(col.Records))
	for i, r := range col.Records {
		recs[i] = nucleodb.Record{Desc: r.Desc, Sequence: dna.String(r.Codes)}
	}
	db, err := nucleodb.Build(recs, nucleodb.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "db")
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// server is one running cafe-serve process.
type server struct {
	base   string
	cmd    *exec.Cmd
	stderr *bytes.Buffer
	// scanDone closes when the stderr scanner goroutine has consumed the
	// pipe to EOF. drain must wait on it before calling cmd.Wait: Wait
	// closes the pipe (os/exec contract — all reads must complete
	// first), so waiting both prevents losing buffered output and
	// orders the final writes to stderr before drain reads it.
	scanDone chan struct{}
}

// startServer launches cafe-serve on a random port and waits for the
// "listening on" line that names the bound address.
func startServer(t *testing.T, bin, dbDir string, extra ...string) *server {
	t.Helper()
	args := append([]string{"-db", dbDir, "-addr", "127.0.0.1:0", "-workers", "4", "-cache", "256"}, extra...)
	cmd := exec.Command(bin, args...)
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &server{cmd: cmd, stderr: &bytes.Buffer{}, scanDone: make(chan struct{})}
	addrc := make(chan string, 1)
	go func() {
		defer close(s.scanDone)
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			s.stderr.WriteString(line + "\n")
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(addr):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		s.base = addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("cafe-serve never announced its address:\n%s", s.stderr.String())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return s
}

// drain sends SIGTERM and waits for a clean exit. The stderr pipe is
// read to EOF before cmd.Wait runs: Wait would close the pipe under
// the scanner and drop its buffered tail, which intermittently lost
// the "drained" line this function asserts on.
func (s *server) drain(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.scanDone:
	case <-time.After(30 * time.Second):
		s.cmd.Process.Kill()
		t.Fatalf("cafe-serve did not drain within 30s:\n%s", s.stderr.String())
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cafe-serve exited uncleanly: %v\n%s", err, s.stderr.String())
		}
	case <-time.After(30 * time.Second):
		s.cmd.Process.Kill()
		t.Fatalf("cafe-serve did not exit within 30s of closing stderr:\n%s", s.stderr.String())
	}
	if !strings.Contains(s.stderr.String(), "drained") {
		t.Fatalf("cafe-serve exited without draining:\n%s", s.stderr.String())
	}
}

// step is one scripted request.
type step struct {
	Name   string          `json:"name"`
	Method string          `json:"method"`
	Path   string          `json:"path"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// observation is what a step's golden file records.
type observation struct {
	Status int    `json:"status"`
	Cache  string `json:"cache,omitempty"`
	Body   any    `json:"body"`
}

// normalise zeroes every JSON number under a key ending in _us or _ns
// (latency fields vary run to run; everything else in the wire format
// is deterministic for a fixed corpus and script).
func normalise(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			if strings.HasSuffix(k, "_us") || strings.HasSuffix(k, "_ns") {
				if _, isNum := val.(float64); isNum {
					x[k] = 0
					continue
				}
			}
			x[k] = normalise(val)
		}
		return x
	case []any:
		for i := range x {
			x[i] = normalise(x[i])
		}
		return x
	default:
		return v
	}
}

// replay executes one step against base and returns its observation.
func replay(t *testing.T, client *http.Client, base string, st step) observation {
	t.Helper()
	method := st.Method
	if method == "" {
		method = http.MethodGet
	}
	var body io.Reader
	if len(st.Body) > 0 {
		body = bytes.NewReader(st.Body)
	}
	req, err := http.NewRequest(method, base+st.Path, body)
	if err != nil {
		t.Fatalf("step %s: %v", st.Name, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("step %s: %v", st.Name, err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("step %s: reading body: %v", st.Name, err)
	}
	var decoded any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("step %s: response is not JSON: %v\n%s", st.Name, err, raw)
	}
	return observation{
		Status: resp.StatusCode,
		Cache:  resp.Header.Get("X-Cafe-Cache"),
		Body:   normalise(decoded),
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestServeGolden replays testdata/script.json against a fresh
// cafe-serve and diffs every response against its golden file, then
// drains the server with SIGTERM.
func TestServeGolden(t *testing.T) {
	tools := buildTools(t, "cafe-serve")
	dbDir := buildCorpus(t)
	srv := startServer(t, tools["cafe-serve"], dbDir)

	raw, err := os.ReadFile(filepath.Join("testdata", "script.json"))
	if err != nil {
		t.Fatal(err)
	}
	var script []step
	if err := json.Unmarshal(raw, &script); err != nil {
		t.Fatalf("testdata/script.json: %v", err)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	for _, st := range script {
		got := replay(t, client, srv.base, st)
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, '\n')
		path := goldenPath(st.Name)
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("step %s: no golden file (run with -update to create): %v", st.Name, err)
		}
		if !bytes.Equal(buf, want) {
			t.Errorf("step %s: response diverged from golden %s:\n--- got ---\n%s--- want ---\n%s",
				st.Name, path, buf, want)
		}
	}
	srv.drain(t)
}

// TestServeMatchesCafeSearch is the acceptance parity check: /search
// on a running cafe-serve returns the same hits (id, score, spans) as
// the cafe-search CLI for the same query against the same database.
func TestServeMatchesCafeSearch(t *testing.T) {
	tools := buildTools(t, "cafe-serve", "cafe-search")
	dbDir := buildCorpus(t)
	srv := startServer(t, tools["cafe-serve"], dbDir)
	defer srv.drain(t)

	raw, err := os.ReadFile(filepath.Join("testdata", "script.json"))
	if err != nil {
		t.Fatal(err)
	}
	var script []step
	if err := json.Unmarshal(raw, &script); err != nil {
		t.Fatal(err)
	}
	// Use the script's first plain search query so parity is checked on
	// committed data.
	var query string
	for _, st := range script {
		if _, q, ok := strings.Cut(st.Path, "?q="); ok {
			query = q[:strings.IndexAny(q+"&", "&")]
			break
		}
	}
	if query == "" {
		t.Fatal("script has no ?q= search step")
	}

	resp, err := http.Get(srv.base + "/search?q=" + query + "&limit=5&nocache=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/search status %d err %v: %s", resp.StatusCode, err, body)
	}
	var sr struct {
		Results []struct {
			ID    int `json:"id"`
			Score int `json:"score"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(tools["cafe-search"], "-db", dbDir, "-q", query, "-limit", "5", "-tsv").CombinedOutput()
	if err != nil {
		t.Fatalf("cafe-search: %v\n%s", err, out)
	}
	var cli []struct{ id, score int }
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		f := strings.Split(line, "\t")
		if len(f) != 12 {
			t.Fatalf("unexpected cafe-search tsv line: %q", line)
		}
		var id, score int
		fmt.Sscanf(f[2], "%d", &id)
		fmt.Sscanf(f[4], "%d", &score)
		cli = append(cli, struct{ id, score int }{id, score})
	}
	if len(cli) == 0 || len(cli) != len(sr.Results) {
		t.Fatalf("hit counts diverge: HTTP %d, CLI %d\nHTTP: %s\nCLI: %s", len(sr.Results), len(cli), body, out)
	}
	for i := range cli {
		if cli[i].id != sr.Results[i].ID || cli[i].score != sr.Results[i].Score {
			t.Fatalf("hit %d diverges: HTTP id %d score %d, CLI id %d score %d",
				i, sr.Results[i].ID, sr.Results[i].Score, cli[i].id, cli[i].score)
		}
	}
}

// TestServeLiveCompactionGolden is the end-to-end lockdown for serving
// during compaction. cafe-gen reproduces the exact golden corpus
// (corpusSeed/corpusSize), cafe-build writes it as a 12-segment
// database, and cafe-serve opens it with the background compactor told
// to fold everything to one segment. While the fold runs, concurrent
// searches must all answer 200 with results; the segments_total gauge
// in /metrics must reach 1; and the committed query script must then
// replay byte-identically against the committed goldens — the same
// files the monolithic server produced, proving the segmented layout
// is invisible on the wire.
func TestServeLiveCompactionGolden(t *testing.T) {
	tools := buildTools(t, "cafe-gen", "cafe-build", "cafe-serve")
	work := t.TempDir()
	fasta := filepath.Join(work, "collection.fasta")
	dbDir := filepath.Join(work, "db")

	if out, err := exec.Command(tools["cafe-gen"],
		"-seqs", fmt.Sprint(corpusSize), "-seed", fmt.Sprint(corpusSeed),
		"-out", fasta).CombinedOutput(); err != nil {
		t.Fatalf("cafe-gen: %v\n%s", err, out)
	}
	out, err := exec.Command(tools["cafe-build"],
		"-in", fasta, "-db", dbDir, "-segment-size", "10").CombinedOutput()
	if err != nil {
		t.Fatalf("cafe-build: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "segmented layout") {
		t.Fatalf("cafe-build did not report the segmented layout:\n%s", out)
	}

	srv := startServer(t, tools["cafe-serve"], dbDir, "-max-segments", "1")
	client := &http.Client{Timeout: 60 * time.Second}

	// Hammer /search (cache bypassed, so the golden replay below still
	// sees its scripted miss/hit sequence) while the compactor folds
	// 12 segments down to 1.
	const liveQuery = "CTTTTCTTTTTGGTCAAACTTTTGAGCACTACTTCCCTTATGAACTCACTCGTTGGTTCTTTAAAGAGAGTTCTAATAAT"
	stop := make(chan struct{})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(srv.base + "/search?q=" + liveQuery + "&limit=5&nocache=1")
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"results"`) {
					errs <- fmt.Errorf("mid-compaction search: status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}

	// Wait for segments_total to hit 1 in /metrics while the hammer
	// runs.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get(srv.base + "/metrics")
		if err != nil {
			t.Fatalf("/metrics: %v", err)
		}
		var snap struct {
			Gauges map[string]int64 `json:"gauges"`
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("/metrics: %v", err)
		}
		if snap.Gauges["segments_total"] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction never settled: segments_total = %d\n%s",
				snap.Gauges["segments_total"], srv.stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Settled: the committed script must reproduce the committed
	// goldens exactly, as if the database had been monolithic all
	// along. (Skipped under -update: TestServeGolden owns regeneration.)
	if !*update {
		raw, err := os.ReadFile(filepath.Join("testdata", "script.json"))
		if err != nil {
			t.Fatal(err)
		}
		var script []step
		if err := json.Unmarshal(raw, &script); err != nil {
			t.Fatal(err)
		}
		for _, st := range script {
			got := replay(t, client, srv.base, st)
			buf, err := json.MarshalIndent(got, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			buf = append(buf, '\n')
			want, err := os.ReadFile(goldenPath(st.Name))
			if err != nil {
				t.Fatalf("step %s: %v", st.Name, err)
			}
			if !bytes.Equal(buf, want) {
				t.Errorf("step %s: compacted server diverged from monolithic golden:\n--- got ---\n%s--- want ---\n%s",
					st.Name, buf, want)
			}
		}
	}
	srv.drain(t)
}
