module nucleodb

go 1.22
