# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race cover bench check examples experiments fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The full pre-commit gate: static checks, the race-enabled test suite,
# and a build of every command-line tool. The race pass runs -short:
# it is there to catch data races in the concurrent paths, and the
# full experiment suite under the race detector exceeds the package
# test timeout (run `make test` / `make test-race` for those).
check:
	$(GO) vet ./...
	$(GO) test -race -short ./...
	$(GO) build ./cmd/...

examples:
	$(GO) run ./examples/quickstart/
	$(GO) run ./examples/homology/
	$(GO) run ./examples/compression/
	$(GO) run ./examples/metagenome/
	$(GO) run ./examples/domains/

# Regenerate every table/figure of the paper's evaluation (E1–E12).
experiments:
	$(GO) run ./cmd/cafe-bench

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
