# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race cover bench bench-json check lint lint-baseline lint-sarif lint-budget fuzz-smoke serve-smoke segments-equivalence sig-equivalence examples experiments fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Committed benchmark trajectories. Both runs double as equivalence
# smokes (cafe-bench exits nonzero if any parallel or bitvector run's
# results differ from the serial scalar run's) and both refuse to run
# at GOMAXPROCS=1 — a single-core "parallel" trajectory is meaningless.
BENCH_PROCS ?= 4

# Serial-vs-sharded coarse trajectory, committed as BENCH_coarse.json.
bench-json:
	GOMAXPROCS=$(BENCH_PROCS) $(GO) run ./cmd/cafe-bench -coarse > BENCH_coarse.json

# Scalar-vs-bitvector fine kernel sweep, committed as BENCH_fine.json.
bench-fine:
	GOMAXPROCS=$(BENCH_PROCS) $(GO) run ./cmd/cafe-bench -fine > BENCH_fine.json

# CI regression gate over both trajectories: coarse parallel efficiency
# must beat serial at 2+ workers (skipped with a warning on <2-CPU
# machines, where parallel speedup is physically impossible) and the
# bitvector kernel must hold a 1.8x serial speedup over scalar (the
# >=2x acceptance bar minus 10% tolerance).
bench-efficiency:
	GOMAXPROCS=$(BENCH_PROCS) $(GO) run ./cmd/cafe-bench -coarse -gate-coarse-speedup 1.0 > /dev/null
	GOMAXPROCS=$(BENCH_PROCS) $(GO) run ./cmd/cafe-bench -fine -gate-kernel-speedup 1.8 > /dev/null

# The full pre-commit gate: static checks (vet plus the repo's own
# cafe-lint pass suite), the race-enabled test suite, a build of every
# command-line tool, and a short fuzz smoke over the decode kernels.
# The race pass runs -short: it is there to catch data races in the
# concurrent paths, and the full experiment suite under the race
# detector exceeds the package test timeout (run `make test` /
# `make test-race` for those).
check: lint
	$(GO) vet ./...
	$(GO) test -race -short ./...
	$(GO) build ./cmd/...
	$(MAKE) fuzz-smoke
	$(MAKE) serve-smoke
	$(MAKE) segments-equivalence
	$(MAKE) sig-equivalence

# cafe-lint enforces the //cafe:hotpath allocation contract, checked
# errors in the decode packages, nil-guarded SearchStats writes,
# consistent sync/atomic field access, context propagation, tracked
# goroutines, and — through the dataflow passes — that pooled scratch
# (//cafe:pooled) never escapes and no append/slice view of pooled
# backing outlives its query. lint.baseline suppresses adopted findings
# (it is empty today — keep it that way); regenerate with
# `make lint-baseline` only when deliberately adopting a finding.
lint:
	$(GO) run ./cmd/cafe-lint -baseline lint.baseline ./...

lint-baseline:
	$(GO) run ./cmd/cafe-lint -baseline lint.baseline -write-baseline ./...

# SARIF log for code-scanning upload; exit 1 (findings) still produces
# the log, so `make lint-sarif` only hard-fails on load errors.
lint-sarif:
	$(GO) run ./cmd/cafe-lint -format sarif -baseline lint.baseline ./... > cafe-lint.sarif || [ $$? -eq 1 ]

# Wall-clock budget for the full lint suite, in seconds. The JSON
# report carries per-pass timings (pass_timings), so a budget failure
# names the slow pass instead of just the slow run.
LINT_BUDGET ?= 120

lint-budget:
	@start=$$(date +%s); \
	$(GO) run ./cmd/cafe-lint -format json -baseline lint.baseline ./... > cafe-lint.json || [ $$? -eq 1 ]; \
	end=$$(date +%s); took=$$((end - start)); \
	grep -A 60 '"pass_timings"' cafe-lint.json || true; \
	echo "lint wall clock: $${took}s (budget $(LINT_BUDGET)s)"; \
	[ $$took -le $(LINT_BUDGET) ]

# ~10s total: each native fuzz target gets 2s of mutation on top of its
# committed corpus. CI-sized; run `go test -fuzz` locally for real runs.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzVarint$$' -fuzztime=2s ./internal/compress
	$(GO) test -run='^$$' -fuzz='^FuzzPostingsDecode$$' -fuzztime=2s ./internal/postings
	$(GO) test -run='^$$' -fuzz='^FuzzKmerRoundtrip$$' -fuzztime=2s ./internal/kmer
	$(GO) test -run='^$$' -fuzz='^FuzzSequenceDecode$$' -fuzztime=2s ./internal/db
	$(GO) test -run='^$$' -fuzz='^FuzzManifestDecode$$' -fuzztime=2s ./internal/segment
	$(GO) test -run='^$$' -fuzz='^FuzzBitvectorAlign$$' -fuzztime=2s ./internal/align

# End-to-end smoke over cafe-serve: build the binary, start it on a
# random port, replay testdata/script.json, and diff every response
# against the committed goldens (regenerate with -update after an
# intentional wire-format change).
serve-smoke:
	$(GO) test -count=1 -run '^TestServeGolden$$' ./clitest/servertest

# The segmented-index lockdown: the property suite proving segmented
# search byte-identical to a monolithic rebuild (every segment count,
# every compaction state, the whole option grid), the crash-safety
# fault-injection matrix over Append/Compact/Delete, the core
# per-segment equivalence matrix, and the live-compaction serving e2e.
# Runs without -short so the full matrices execute.
segments-equivalence:
	$(GO) test -count=1 -run '^(TestSegmentedEquivalenceProperty|TestSegmentedSaveReloadEquivalence|TestDeleteEquivalence|TestCrashSafety.*|TestSegmentedConcurrentHammer)$$' .
	$(GO) test -count=1 -run '^(TestSegmentedSearchEquivalence|TestSegmentedDeletedFilter)$$' ./internal/core
	$(GO) test -count=1 -run '^TestServeLiveCompactionGolden$$' ./clitest/servertest

# The signature-backend lockdown: the property suite proving the
# bit-sliced signature coarse backend answers byte-identically to the
# postings backend (every coarse mode, worker grid, compaction state,
# persistence round-trip), the mixed-backend concurrency hammer, the
# core differential matrix, and the sig package's own unit tests.
# Runs without -short so the full matrices execute.
sig-equivalence:
	$(GO) test -count=1 -run '^(TestSignatureEquivalenceProperty|TestSignatureSaveReloadEquivalence|TestSignatureBackendUnavailable|TestSignaturePoolSnapshotStaleness|TestSignatureConcurrentHammer)$$' .
	$(GO) test -count=1 -run '^(TestSignatureBackend.*|TestCoarseValidationExhaustive)$$' ./internal/core
	$(GO) test -count=1 ./internal/sig

examples:
	$(GO) run ./examples/quickstart/
	$(GO) run ./examples/homology/
	$(GO) run ./examples/compression/
	$(GO) run ./examples/metagenome/
	$(GO) run ./examples/domains/

# Regenerate every table/figure of the paper's evaluation (E1–E12).
experiments:
	$(GO) run ./cmd/cafe-bench

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
