# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race cover bench examples experiments fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

examples:
	$(GO) run ./examples/quickstart/
	$(GO) run ./examples/homology/
	$(GO) run ./examples/compression/
	$(GO) run ./examples/metagenome/
	$(GO) run ./examples/domains/

# Regenerate every table/figure of the paper's evaluation (E1–E12).
experiments:
	$(GO) run ./cmd/cafe-bench

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
