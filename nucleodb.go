// Package nucleodb is a nucleotide database engine with partitioned
// (coarse/fine) query evaluation, a Go reproduction of Williams &
// Zobel, "Indexing Nucleotide Databases for Fast Query Evaluation"
// (EDBT 1996) — the design later released as the CAFE system.
//
// A query is a DNA sequence; answers are database sequences with a
// high-quality local alignment to the query. Instead of exhaustively
// aligning the query against every sequence, the engine first ranks
// sequences with an inverted index of fixed-length substrings
// (intervals) and then runs local alignment only on the top-ranked
// candidates:
//
//	db, _ := nucleodb.Build(records, nucleodb.DefaultBuildConfig())
//	results, _ := db.Search("ACGTTGCA...", nucleodb.DefaultSearchOptions())
//	for _, r := range results {
//	    fmt.Println(r.Desc, r.Score)
//	}
//
// Sequences are stored compressed (direct coding: 2 bits per base plus
// a wildcard exception list) and posting lists are Golomb/Elias coded,
// so the whole database is a fraction of the FASTA input's size.
package nucleodb

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nucleodb/internal/align"
	"nucleodb/internal/core"
	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/index"
	"nucleodb/internal/metrics"
	"nucleodb/internal/stats"
)

// Record is one database entry: a description line and its nucleotide
// sequence as IUPAC letters (either case; 'U' is accepted as 'T').
type Record struct {
	Desc     string
	Sequence string
}

// BuildConfig controls database construction.
type BuildConfig struct {
	// IntervalLength is the indexed substring length, 1–12. Shorter
	// intervals give denser posting lists; longer intervals give a
	// larger lexicon. The experiments centre on 8–10.
	IntervalLength int
	// StoreOffsets keeps occurrence offsets in the index, enabling the
	// diagonal coarse ranking at some index-size cost.
	StoreOffsets bool
	// StopFraction discards this fraction of the most frequent
	// intervals from the index (index stopping). 0 disables.
	StopFraction float64
	// SpacedMask, when non-empty, indexes spaced seeds instead of
	// contiguous intervals: the '1' positions of the mask (e.g.
	// "111010010100110111", PatternHunter's weight-11 shape) are
	// sampled from each window. IntervalLength is then ignored. Spaced
	// seeds markedly improve sensitivity to diverged homologies at
	// equal vocabulary size.
	SpacedMask string
	// SkipInterval stores posting-list synchronisation points every
	// this many entries (self-indexing), enabling seek-based
	// conjunctive processing at a small size cost; 1 selects the √df
	// heuristic per list, 0 stores plain lists.
	SkipInterval int
	// Workers bounds build parallelism (0 = all CPUs). The built
	// database is identical at any setting.
	Workers int
	// Scoring sets the alignment parameters used by searches.
	Scoring Scoring
}

// Scoring mirrors the local-alignment parameters: Match is a positive
// score, the others are non-negative penalties; a gap of length L costs
// GapOpen + L·GapExtend.
type Scoring struct {
	Match     int
	Mismatch  int
	GapOpen   int
	GapExtend int
}

func (s Scoring) internal() align.Scoring {
	return align.Scoring{Match: s.Match, Mismatch: s.Mismatch, GapOpen: s.GapOpen, GapExtend: s.GapExtend}
}

// DefaultScoring returns the classic +5/−4 nucleotide parameters with
// affine gaps.
func DefaultScoring() Scoring {
	d := align.DefaultScoring()
	return Scoring{Match: d.Match, Mismatch: d.Mismatch, GapOpen: d.GapOpen, GapExtend: d.GapExtend}
}

// DefaultBuildConfig returns the configuration used by the paper's
// headline experiments: 9-base intervals with offsets, no stopping.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		IntervalLength: 9,
		StoreOffsets:   true,
		Scoring:        DefaultScoring(),
	}
}

// Database couples a compressed sequence store with its interval index
// and evaluates partitioned queries. It is safe for concurrent Search
// calls: each in-flight search borrows a searcher (coarse accumulators
// and decode scratch) from an internal pool, so concurrent queries run
// genuinely in parallel instead of serialising on a lock.
type Database struct {
	store *db.Store
	idx   *index.Index

	scoring align.Scoring

	// searchers pools *core.Searcher scratch for the current index.
	// Append swaps d.idx; stale pooled searchers are detected by
	// comparing their index pointer and dropped on checkout.
	searchers sync.Pool

	statsOnce sync.Once
	statsP    stats.Params
	statsErr  error
}

// getSearcher checks a searcher for the current index out of the pool,
// constructing one when the pool is empty or holds searchers built for
// a pre-Append index.
//
//cafe:pooled callers must pair every checkout with putSearcher
func (d *Database) getSearcher() (*core.Searcher, error) {
	if s, ok := d.searchers.Get().(*core.Searcher); ok && s.Index() == d.idx {
		return s, nil
	}
	return core.NewSearcher(d.idx, d.store, d.scoring)
}

// putSearcher returns a searcher to the pool unless Append has replaced
// the index since it was checked out.
func (d *Database) putSearcher(s *core.Searcher) {
	if s.Index() == d.idx {
		d.searchers.Put(s)
	}
}

// Build constructs a database from records.
func Build(records []Record, cfg BuildConfig) (*Database, error) {
	var store db.Store
	for i, r := range records {
		codes, err := dna.Encode([]byte(r.Sequence))
		if err != nil {
			return nil, fmt.Errorf("nucleodb: record %d (%q): %w", i, r.Desc, err)
		}
		store.Add(r.Desc, codes)
	}
	return buildFromStore(&store, cfg)
}

// BuildFromFasta constructs a database from FASTA-format input,
// streaming records into the compressed store as they parse (peak
// memory is one record plus the store, not the whole text).
func BuildFromFasta(r io.Reader, cfg BuildConfig) (*Database, error) {
	fr := dna.NewFastaReader(r)
	var store db.Store
	for {
		rec, err := fr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("nucleodb: %w", err)
		}
		store.Add(rec.Desc, rec.Codes)
	}
	return buildFromStore(&store, cfg)
}

func buildFromStore(store *db.Store, cfg BuildConfig) (*Database, error) {
	idx, err := index.Build(store, index.Options{
		K:            cfg.IntervalLength,
		SpacedMask:   cfg.SpacedMask,
		StoreOffsets: cfg.StoreOffsets,
		StopFraction: cfg.StopFraction,
		SkipInterval: cfg.SkipInterval,
		Workers:      cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("nucleodb: %w", err)
	}
	return newDatabase(store, idx, cfg.Scoring)
}

func newDatabase(store *db.Store, idx *index.Index, scoring Scoring) (*Database, error) {
	s := scoring.internal()
	searcher, err := core.NewSearcher(idx, store, s)
	if err != nil {
		return nil, fmt.Errorf("nucleodb: %w", err)
	}
	d := &Database{store: store, idx: idx, scoring: s}
	d.searchers.Put(searcher)
	return d, nil
}

// File names used inside a saved database directory.
const (
	storeFile = "sequences.ndb"
	indexFile = "intervals.ndx"
)

// Save writes the database into directory dir, creating it if needed.
func (d *Database) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, storeFile), d.store.Save); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, indexFile), d.idx.Save)
}

func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("nucleodb: save %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	return nil
}

// Open loads a database saved with Save. Scoring is not persisted;
// pass the scheme searches should use (DefaultScoring for the usual
// parameters).
func Open(dir string, scoring Scoring) (*Database, error) {
	sf, err := os.Open(filepath.Join(dir, storeFile))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	defer sf.Close()
	store, err := db.Load(sf)
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	xf, err := os.Open(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	defer xf.Close()
	idx, err := index.Load(xf)
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	return newDatabase(store, idx, scoring)
}

// OpenPaged opens a saved database with the index in paged (on-disk)
// mode: the lexicon loads into memory but posting lists are read from
// disk per query — the operating regime for collections larger than
// memory, and the regime the original system was designed for. Call
// Close when done. Save and Append are unsupported on a paged
// database.
func OpenPaged(dir string, scoring Scoring) (*Database, error) {
	sf, err := os.Open(filepath.Join(dir, storeFile))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	defer sf.Close()
	store, err := db.Load(sf)
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	idx, err := index.OpenDisk(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	d, err := newDatabase(store, idx, scoring)
	if err != nil {
		idx.Close()
		return nil, err
	}
	return d, nil
}

// Close releases resources held by a paged database (see OpenPaged).
// It is a no-op for in-memory databases.
func (d *Database) Close() error { return d.idx.Close() }

// SearchOptions controls one query evaluation.
type SearchOptions struct {
	// Candidates is the coarse-phase budget: how many top-ranked
	// sequences receive fine alignment.
	Candidates int
	// MinCoarseHits prunes sequences sharing fewer distinct intervals
	// with the query.
	MinCoarseHits int
	// Diagonal selects the FRAMES-style diagonal coarse ranking
	// (requires a database built with StoreOffsets).
	Diagonal bool
	// Exact runs unrestricted Smith–Waterman in the fine phase instead
	// of the banded aligner: exact scores, higher cost.
	Exact bool
	// Band is the banded aligner's half-width when Exact is false.
	Band int
	// FineKernel selects the fine-phase scoring kernel: "" or "auto"
	// (bit-parallel under Exact, scalar under the banded default),
	// "scalar", or "bitvector" (Exact searches only). Results are
	// byte-identical whichever kernel runs; only speed differs.
	FineKernel string
	// MinScore discards alignments below this score.
	MinScore int
	// Limit truncates the result list; 0 keeps everything.
	Limit int
	// BothStrands also searches the query's reverse complement and
	// reports each sequence's best strand.
	BothStrands bool
	// Prescreen, when positive, drops candidates whose ungapped
	// extension at the best shared interval scores below it, before
	// fine alignment — the three-phase evaluation of the production
	// CAFE design. 0 disables.
	Prescreen int
	// FineWorkers aligns candidates concurrently in the fine phase
	// (lower single-query latency on multicore machines); 0 or 1 is
	// serial. Results are identical at any setting.
	FineWorkers int
	// CoarseWorkers partitions the query's posting lists across this
	// many workers in the coarse phase, each accumulating into private
	// per-shard counters merged deterministically afterwards — lower
	// coarse latency on multicore machines for term-rich queries. 0 or
	// 1 is serial. Results are byte-identical at any setting.
	CoarseWorkers int
}

// DefaultSearchOptions returns the settings of the headline
// experiments: 100 candidates, banded fine phase, top 20 answers.
func DefaultSearchOptions() SearchOptions {
	return SearchOptions{
		Candidates:    100,
		MinCoarseHits: 2,
		Band:          24,
		MinScore:      1,
		Limit:         20,
	}
}

func (o SearchOptions) internal() core.Options {
	mode := core.CoarseDistinct
	if o.Diagonal {
		mode = core.CoarseDiagonal
	}
	fine := core.FineBanded
	if o.Exact {
		fine = core.FineFull
	}
	var kernel core.FineKernel
	switch o.FineKernel {
	case "", "auto":
		kernel = core.FineKernelAuto
	case "scalar":
		kernel = core.FineKernelScalar
	case "bitvector":
		kernel = core.FineKernelBitvector
	default:
		kernel = core.FineKernel(-1) // rejected by core's validation
	}
	return core.Options{
		Candidates:    o.Candidates,
		MinCoarseHits: o.MinCoarseHits,
		CoarseMode:    mode,
		FineMode:      fine,
		FineKernel:    kernel,
		Band:          o.Band,
		MinScore:      o.MinScore,
		Limit:         o.Limit,
		BothStrands:   o.BothStrands,
		Prescreen:     o.Prescreen,
		FineWorkers:   o.FineWorkers,
		CoarseWorkers: o.CoarseWorkers,
	}
}

// Result is one answer to a search.
type Result struct {
	// ID is the record's position in the database (insertion order).
	ID int
	// Desc is the record's description line.
	Desc string
	// Score is the local alignment score under the database's scoring.
	Score int
	// Identity is the fraction of matching alignment columns. Both the
	// default (banded) and Exact fine phases produce transcripts for
	// reported results, so this is normally populated; it is 0 only
	// when no transcript exists (e.g. a candidate whose banded
	// traceback could not reproduce the ranking score).
	Identity float64
	// QueryStart/QueryEnd and SubjectStart/SubjectEnd are the
	// half-open alignment spans, when available. For reverse-strand
	// matches the query spans refer to the reverse complement.
	QueryStart, QueryEnd     int
	SubjectStart, SubjectEnd int
	// Reverse marks a reverse-complement-strand match (BothStrands
	// searches only).
	Reverse bool
	// Bits is the Karlin–Altschul bit score and EValue the expected
	// number of chance alignments this good in a database of this
	// size: the significance measures search tools report. Both are 0
	// until the first call to Statistics succeeds (Search computes
	// them automatically).
	Bits   float64
	EValue float64
}

// SearchStats reports the work one search performed, stage by stage:
// the coarse phase's index traffic, the prescreen's filtering, the
// fine phase's dynamic programming, and the per-stage wall time. It is
// the engine's observability currency — cafe-search prints it behind
// -stats, cafe-bench emits it in its JSON report, and every search
// feeds the same numbers into the process-wide metrics registry.
type SearchStats struct {
	// Strands is 1, or 2 when both strands were searched.
	Strands int `json:"strands"`
	// QueryTerms is the number of distinct query intervals extracted.
	QueryTerms int `json:"query_terms"`
	// PostingLists is the number of non-empty posting lists read.
	PostingLists int `json:"posting_lists"`
	// PostingsDecoded is the number of posting entries decoded — the
	// coarse phase's unit of work.
	PostingsDecoded int64 `json:"postings_decoded"`
	// PostingsBytesRead is the compressed size of the lists read; on a
	// paged database this is bytes fetched from disk.
	PostingsBytesRead int64 `json:"postings_bytes_read"`
	// CoarseSequences is the number of sequences the coarse ranking
	// touched before thresholds and the candidate budget.
	CoarseSequences int `json:"coarse_sequences"`
	// CoarseCandidates is the number of candidates admitted to the
	// post-coarse phases.
	CoarseCandidates int `json:"coarse_candidates"`
	// CoarseShards is the number of coarse accumulation shards used,
	// summed over strands: 1 per strand serially, the effective
	// CoarseWorkers when the posting-list walk was sharded. The
	// postings counters above are shard sums and always equal the
	// serial values.
	CoarseShards int `json:"coarse_shards"`
	// PrescreenRejections is the number of candidates the ungapped
	// extension prescreen discarded before fine alignment.
	PrescreenRejections int `json:"prescreen_rejections"`
	// FineAlignments is the number of fine-phase alignments run; at
	// most CoarseCandidates.
	FineAlignments int `json:"fine_alignments"`
	// BitvectorAlignments is the number of fine alignments scored by
	// the bit-parallel kernel (the rest ran the scalar kernel, by
	// configuration or as the lane-capacity fallback).
	BitvectorAlignments int `json:"bitvector_alignments"`
	// FineKernel is the resolved fine kernel ("scalar" or
	// "bitvector"); "mixed" after aggregating searches that disagree.
	FineKernel string `json:"fine_kernel"`
	// TracebackAlignments is the number of deferred tracebacks run for
	// reported results.
	TracebackAlignments int `json:"traceback_alignments"`
	// FineDPCells and TracebackDPCells count the dynamic-programming
	// cells evaluated — the fraction of the database actually aligned.
	FineDPCells      int64 `json:"fine_dp_cells"`
	TracebackDPCells int64 `json:"traceback_dp_cells"`
	// Results is the number of answers returned.
	Results int `json:"results"`
	// Stage wall times. Coarse, fine and traceback clocks are disjoint
	// intervals summing to at most TotalTime; PrescreenTime is a
	// per-candidate subset of FineTime (summed across workers when the
	// fine phase is parallel).
	CoarseTime    time.Duration `json:"coarse_ns"`
	PrescreenTime time.Duration `json:"prescreen_ns"`
	FineTime      time.Duration `json:"fine_ns"`
	TracebackTime time.Duration `json:"traceback_ns"`
	TotalTime     time.Duration `json:"total_ns"`
}

// DPCells returns the total dynamic-programming cells evaluated.
func (s SearchStats) DPCells() int64 { return s.FineDPCells + s.TracebackDPCells }

// Add accumulates o into s field by field, for aggregating the stats
// of many queries.
func (s *SearchStats) Add(o SearchStats) {
	s.Strands += o.Strands
	s.QueryTerms += o.QueryTerms
	s.PostingLists += o.PostingLists
	s.PostingsDecoded += o.PostingsDecoded
	s.PostingsBytesRead += o.PostingsBytesRead
	s.CoarseSequences += o.CoarseSequences
	s.CoarseCandidates += o.CoarseCandidates
	s.CoarseShards += o.CoarseShards
	s.PrescreenRejections += o.PrescreenRejections
	s.FineAlignments += o.FineAlignments
	s.BitvectorAlignments += o.BitvectorAlignments
	switch {
	case s.FineKernel == "":
		s.FineKernel = o.FineKernel
	case o.FineKernel != "" && o.FineKernel != s.FineKernel:
		s.FineKernel = "mixed"
	}
	s.TracebackAlignments += o.TracebackAlignments
	s.FineDPCells += o.FineDPCells
	s.TracebackDPCells += o.TracebackDPCells
	s.Results += o.Results
	s.CoarseTime += o.CoarseTime
	s.PrescreenTime += o.PrescreenTime
	s.FineTime += o.FineTime
	s.TracebackTime += o.TracebackTime
	s.TotalTime += o.TotalTime
}

func searchStatsFrom(cs core.SearchStats) SearchStats {
	return SearchStats{
		Strands:             cs.Strands,
		QueryTerms:          cs.QueryTerms,
		PostingLists:        cs.PostingLists,
		PostingsDecoded:     cs.PostingsDecoded,
		PostingsBytesRead:   cs.PostingsBytesRead,
		CoarseSequences:     cs.CoarseSequences,
		CoarseCandidates:    cs.CoarseCandidates,
		CoarseShards:        cs.CoarseShards,
		PrescreenRejections: cs.PrescreenRejections,
		FineAlignments:      cs.FineAlignments,
		BitvectorAlignments: cs.BitvectorAlignments,
		FineKernel:          cs.FineKernel,
		TracebackAlignments: cs.TracebackAlignments,
		FineDPCells:         cs.FineDPCells,
		TracebackDPCells:    cs.TracebackDPCells,
		Results:             cs.Results,
		CoarseTime:          cs.CoarseTime,
		PrescreenTime:       cs.PrescreenTime,
		FineTime:            cs.FineTime,
		TracebackTime:       cs.TracebackTime,
		TotalTime:           cs.TotalTime,
	}
}

// Handles into the process-wide registry, fetched once: recording a
// search is a dozen uncontended atomic adds.
var (
	mSearches         = metrics.Default().Counter("searches_total")
	mPostingsDecoded  = metrics.Default().Counter("postings_decoded_total")
	mPostingsBytes    = metrics.Default().Counter("postings_bytes_read_total")
	mCoarseCandidates = metrics.Default().Counter("coarse_candidates_total")
	mCoarseShards     = metrics.Default().Counter("coarse_shards_total")
	mPrescreenRejects = metrics.Default().Counter("prescreen_rejections_total")
	mFineAlignments   = metrics.Default().Counter("fine_alignments_total")
	mBitvectorAligns  = metrics.Default().Counter("fine_bitvector_alignments_total")
	mTracebacks       = metrics.Default().Counter("traceback_alignments_total")
	mDPCells          = metrics.Default().Counter("dp_cells_total")
	mResults          = metrics.Default().Counter("results_total")
	hSearchLatency    = metrics.Default().Histogram("search_latency")
	hCoarseLatency    = metrics.Default().Histogram("coarse_stage_latency")
	hFineLatency      = metrics.Default().Histogram("fine_stage_latency")
)

// recordSearchMetrics folds one search's stats into the process-wide
// registry (see WriteMetrics).
func recordSearchMetrics(st SearchStats) {
	mSearches.Inc()
	mPostingsDecoded.Add(st.PostingsDecoded)
	mPostingsBytes.Add(st.PostingsBytesRead)
	mCoarseCandidates.Add(int64(st.CoarseCandidates))
	mCoarseShards.Add(int64(st.CoarseShards))
	mPrescreenRejects.Add(int64(st.PrescreenRejections))
	mFineAlignments.Add(int64(st.FineAlignments))
	mBitvectorAligns.Add(int64(st.BitvectorAlignments))
	mTracebacks.Add(int64(st.TracebackAlignments))
	mDPCells.Add(st.DPCells())
	mResults.Add(int64(st.Results))
	hSearchLatency.Observe(st.TotalTime)
	hCoarseLatency.Observe(st.CoarseTime)
	hFineLatency.Observe(st.FineTime)
}

// WriteMetrics writes the process-wide metrics — totals and latency
// quantiles aggregated over every search this process ran, whichever
// Database ran it — as JSON.
func WriteMetrics(w io.Writer) error { return metrics.Default().WriteJSON(w) }

// WriteMetricsText writes the same process-wide metrics in a
// line-per-instrument text form.
func WriteMetricsText(w io.Writer) error { return metrics.Default().WriteText(w) }

// ResetMetrics zeroes the process-wide metrics.
func ResetMetrics() { metrics.Default().Reset() }

// PublishMetrics exposes the process-wide metrics through expvar under
// the name "nucleodb", for processes that serve an expvar endpoint.
// Idempotent.
func PublishMetrics() { metrics.PublishExpvar() }

// Search evaluates a query given as IUPAC letters and returns ranked
// answers.
func (d *Database) Search(query string, opts SearchOptions) ([]Result, error) {
	return d.SearchContext(context.Background(), query, opts)
}

// SearchContext is Search with cooperative cancellation: when ctx is
// cancelled or its deadline passes, the evaluation stops at the next
// posting list (coarse phase) or candidate boundary (prescreen, fine
// alignment, traceback) and returns an error wrapping ctx.Err() — so a
// long Smith–Waterman fine phase no longer runs to completion after
// the caller has gone away. With context.Background() the results are
// identical to Search's.
func (d *Database) SearchContext(ctx context.Context, query string, opts SearchOptions) ([]Result, error) {
	codes, err := dna.Encode([]byte(query))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: query: %w", err)
	}
	return d.SearchCodesContext(ctx, codes, opts)
}

// SearchWithStats evaluates a query and also returns the per-stage
// work and latency breakdown of the evaluation. Results are identical
// to Search's (the stats collection only observes).
func (d *Database) SearchWithStats(query string, opts SearchOptions) ([]Result, SearchStats, error) {
	return d.SearchWithStatsContext(context.Background(), query, opts)
}

// SearchWithStatsContext is SearchContext with the stats collection of
// SearchWithStats.
func (d *Database) SearchWithStatsContext(ctx context.Context, query string, opts SearchOptions) ([]Result, SearchStats, error) {
	codes, err := dna.Encode([]byte(query))
	if err != nil {
		return nil, SearchStats{}, fmt.Errorf("nucleodb: query: %w", err)
	}
	return d.SearchCodesWithStatsContext(ctx, codes, opts)
}

// SearchCodes evaluates a query already in internal code form; callers
// holding dna codes (e.g. from another record) avoid a re-encode.
func (d *Database) SearchCodes(codes []byte, opts SearchOptions) ([]Result, error) {
	rs, _, err := d.SearchCodesWithStats(codes, opts)
	return rs, err
}

// SearchCodesContext is SearchContext for pre-encoded queries.
func (d *Database) SearchCodesContext(ctx context.Context, codes []byte, opts SearchOptions) ([]Result, error) {
	rs, _, err := d.SearchCodesWithStatsContext(ctx, codes, opts)
	return rs, err
}

// SearchCodesWithStats is SearchWithStats for pre-encoded queries.
func (d *Database) SearchCodesWithStats(codes []byte, opts SearchOptions) ([]Result, SearchStats, error) {
	return d.SearchCodesWithStatsContext(context.Background(), codes, opts)
}

// SearchCodesWithStatsContext is the full-generality search entry
// point: pre-encoded query, cooperative cancellation, and stats.
func (d *Database) SearchCodesWithStatsContext(ctx context.Context, codes []byte, opts SearchOptions) ([]Result, SearchStats, error) {
	var cst core.SearchStats
	searcher, err := d.getSearcher()
	if err != nil {
		return nil, SearchStats{}, fmt.Errorf("nucleodb: %w", err)
	}
	rs, err := searcher.SearchWithStatsContext(ctx, codes, opts.internal(), &cst)
	d.putSearcher(searcher)
	if err != nil {
		return nil, SearchStats{}, fmt.Errorf("nucleodb: %w", err)
	}
	st := searchStatsFrom(cst)
	recordSearchMetrics(st)
	params, statsErr := d.Statistics()
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{
			ID:           r.ID,
			Desc:         d.store.Desc(r.ID),
			Score:        r.Score,
			Identity:     r.Alignment.Identity(),
			QueryStart:   r.Alignment.AStart,
			QueryEnd:     r.Alignment.AEnd,
			SubjectStart: r.Alignment.BStart,
			SubjectEnd:   r.Alignment.BEnd,
			Reverse:      r.Reverse,
		}
		if statsErr == nil {
			out[i].Bits = params.BitScore(r.Score)
			out[i].EValue = params.EValue(r.Score, len(codes), d.store.TotalBases())
		}
	}
	return out, st, nil
}

// Statistics returns the Karlin–Altschul parameters for the database's
// scoring scheme, computed on first use by gapped simulation (the
// search reports gapped scores, so gapped calibration is the honest
// one; see stats.EstimateGapped). An error means the scoring scheme
// admits no local alignment statistics (e.g. non-negative expected
// score); Search then leaves Bits and EValue zero.
func (d *Database) Statistics() (stats.Params, error) {
	d.statsOnce.Do(func() {
		d.statsP, d.statsErr = stats.EstimateGappedCached(d.scoring, stats.Uniform, stats.DefaultEstimateOptions())
	})
	return d.statsP, d.statsErr
}

// Alignment renders the optimal local alignment of a query against one
// stored record in the conventional three-line blocks, computed in
// linear space so record length is not a concern:
//
//	score 240, identity 96% (48/50), gaps 1
//	Query      1  ACGTACGT-ACGT ...
//	              |||| |||  |||
//	Sbjct     41  ACGTTCGTNACGT ...
func (d *Database) Alignment(query string, id int) (string, error) {
	codes, err := dna.Encode([]byte(query))
	if err != nil {
		return "", fmt.Errorf("nucleodb: query: %w", err)
	}
	if id < 0 || id >= d.store.Len() {
		return "", fmt.Errorf("nucleodb: record id %d out of range [0,%d)", id, d.store.Len())
	}
	subject := d.store.Sequence(id)
	al := align.LocalLinear(codes, subject, d.scoring)
	return align.Format(codes, subject, al, 60), nil
}

// Append adds records to the database incrementally: the new records
// are indexed as a segment and merged with the existing index, which
// costs far less than rebuilding when the database is large and the
// batch small. Stopping decisions are per-segment (the merged stop
// list is the union); rebuild from scratch to re-stop globally.
//
// Append must not run concurrently with Search, SearchBatch or other
// Append calls.
func (d *Database) Append(records []Record) error {
	if d.idx.Disk() {
		return fmt.Errorf("nucleodb: Append is unsupported on a paged database; rebuild or merge offline with cafe-merge")
	}
	var seg db.Store
	for i, r := range records {
		codes, err := dna.Encode([]byte(r.Sequence))
		if err != nil {
			return fmt.Errorf("nucleodb: record %d (%q): %w", i, r.Desc, err)
		}
		seg.Add(r.Desc, codes)
	}
	segIdx, err := index.Build(&seg, d.idx.Options())
	if err != nil {
		return fmt.Errorf("nucleodb: append: %w", err)
	}
	merged, err := index.Merge(d.idx, segIdx)
	if err != nil {
		return fmt.Errorf("nucleodb: append: %w", err)
	}
	for i := 0; i < seg.Len(); i++ {
		d.store.Add(seg.Desc(i), seg.Sequence(i))
	}
	searcher, err := core.NewSearcher(merged, d.store, d.scoring)
	if err != nil {
		return fmt.Errorf("nucleodb: append: %w", err)
	}
	d.idx = merged
	// Pooled searchers built for the old index are now stale;
	// getSearcher drops them on checkout (their Index() pointer no
	// longer matches). Prime the pool with one current searcher.
	d.searchers.Put(searcher)
	return nil
}

// HSPs returns up to max high-scoring segment pairs of the query
// against one record, best-first and pairwise disjoint in the subject
// — the view search tools give when a query matches a record in
// several places. Each returned Result carries spans, identity, and
// significance; minScore prunes noise-level segments.
func (d *Database) HSPs(query string, id, max, minScore int) ([]Result, error) {
	codes, err := dna.Encode([]byte(query))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: query: %w", err)
	}
	if id < 0 || id >= d.store.Len() {
		return nil, fmt.Errorf("nucleodb: record id %d out of range [0,%d)", id, d.store.Len())
	}
	subject := d.store.Sequence(id)
	params, statsErr := d.Statistics()
	als := align.LocalAll(codes, subject, d.scoring, minScore, max)
	out := make([]Result, len(als))
	for i, al := range als {
		out[i] = Result{
			ID:           id,
			Desc:         d.store.Desc(id),
			Score:        al.Score,
			Identity:     al.Identity(),
			QueryStart:   al.AStart,
			QueryEnd:     al.AEnd,
			SubjectStart: al.BStart,
			SubjectEnd:   al.BEnd,
		}
		if statsErr == nil {
			out[i].Bits = params.BitScore(al.Score)
			out[i].EValue = params.EValue(al.Score, len(codes), d.store.TotalBases())
		}
	}
	return out, nil
}

// NumSequences returns the number of records in the database.
func (d *Database) NumSequences() int { return d.store.Len() }

// TotalBases returns the number of bases across all records.
func (d *Database) TotalBases() int { return d.store.TotalBases() }

// Sequence returns record id's sequence as IUPAC letters.
func (d *Database) Sequence(id int) string { return dna.String(d.store.Sequence(id)) }

// Desc returns record id's description.
func (d *Database) Desc(id int) string { return d.store.Desc(id) }

// Stats summarises database storage.
type Stats struct {
	NumSequences  int
	TotalBases    int
	StoreBytes    int // compressed sequence data
	IndexBytes    int // lexicon + postings + tables
	PostingsBytes int
	TermsIndexed  int
	TermsStopped  int
	IntervalLen   int
}

// Stats returns storage and index statistics.
func (d *Database) Stats() Stats {
	return Stats{
		NumSequences:  d.store.Len(),
		TotalBases:    d.store.TotalBases(),
		StoreBytes:    d.store.EncodedBytes(),
		IndexBytes:    d.idx.SizeBytes(),
		PostingsBytes: d.idx.PostingsBytes(),
		TermsIndexed:  d.idx.NumTermsIndexed(),
		TermsStopped:  d.idx.NumStopped(),
		IntervalLen:   d.idx.K(),
	}
}
