// Package nucleodb is a nucleotide database engine with partitioned
// (coarse/fine) query evaluation, a Go reproduction of Williams &
// Zobel, "Indexing Nucleotide Databases for Fast Query Evaluation"
// (EDBT 1996) — the design later released as the CAFE system.
//
// A query is a DNA sequence; answers are database sequences with a
// high-quality local alignment to the query. Instead of exhaustively
// aligning the query against every sequence, the engine first ranks
// sequences with an inverted index of fixed-length substrings
// (intervals) and then runs local alignment only on the top-ranked
// candidates:
//
//	db, _ := nucleodb.Build(records, nucleodb.DefaultBuildConfig())
//	results, _ := db.Search("ACGTTGCA...", nucleodb.DefaultSearchOptions())
//	for _, r := range results {
//	    fmt.Println(r.Desc, r.Score)
//	}
//
// Sequences are stored compressed (direct coding: 2 bits per base plus
// a wildcard exception list) and posting lists are Golomb/Elias coded,
// so the whole database is a fraction of the FASTA input's size.
package nucleodb

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"nucleodb/internal/align"
	"nucleodb/internal/core"
	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/index"
	"nucleodb/internal/metrics"
	"nucleodb/internal/segment"
	"nucleodb/internal/sig"
	"nucleodb/internal/stats"
)

// Record is one database entry: a description line and its nucleotide
// sequence as IUPAC letters (either case; 'U' is accepted as 'T').
type Record struct {
	Desc     string
	Sequence string
}

// BuildConfig controls database construction.
type BuildConfig struct {
	// IntervalLength is the indexed substring length, 1–12. Shorter
	// intervals give denser posting lists; longer intervals give a
	// larger lexicon. The experiments centre on 8–10.
	IntervalLength int
	// StoreOffsets keeps occurrence offsets in the index, enabling the
	// diagonal coarse ranking at some index-size cost.
	StoreOffsets bool
	// StopFraction discards this fraction of the most frequent
	// intervals from the index (index stopping). 0 disables.
	StopFraction float64
	// SpacedMask, when non-empty, indexes spaced seeds instead of
	// contiguous intervals: the '1' positions of the mask (e.g.
	// "111010010100110111", PatternHunter's weight-11 shape) are
	// sampled from each window. IntervalLength is then ignored. Spaced
	// seeds markedly improve sensitivity to diverged homologies at
	// equal vocabulary size.
	SpacedMask string
	// SkipInterval stores posting-list synchronisation points every
	// this many entries (self-indexing), enabling seek-based
	// conjunctive processing at a small size cost; 1 selects the √df
	// heuristic per list, 0 stores plain lists.
	SkipInterval int
	// Workers bounds build parallelism (0 = all CPUs). The built
	// database is identical at any setting.
	Workers int
	// Signatures additionally builds a bit-sliced interval signature
	// per segment (one Bloom signature per sequence, stored
	// column-major), enabling the "signature" coarse backend at search
	// time. Final results are identical to the postings backend's;
	// only the coarse phase's data structure differs. Appends and
	// compactions maintain signatures on every new segment.
	Signatures bool
	// Scoring sets the alignment parameters used by searches.
	Scoring Scoring
}

// Scoring mirrors the local-alignment parameters: Match is a positive
// score, the others are non-negative penalties; a gap of length L costs
// GapOpen + L·GapExtend.
type Scoring struct {
	Match     int
	Mismatch  int
	GapOpen   int
	GapExtend int
}

func (s Scoring) internal() align.Scoring {
	return align.Scoring{Match: s.Match, Mismatch: s.Mismatch, GapOpen: s.GapOpen, GapExtend: s.GapExtend}
}

// DefaultScoring returns the classic +5/−4 nucleotide parameters with
// affine gaps.
func DefaultScoring() Scoring {
	d := align.DefaultScoring()
	return Scoring{Match: d.Match, Mismatch: d.Mismatch, GapOpen: d.GapOpen, GapExtend: d.GapExtend}
}

// DefaultBuildConfig returns the configuration used by the paper's
// headline experiments: 9-base intervals with offsets, no stopping.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		IntervalLength: 9,
		StoreOffsets:   true,
		Scoring:        DefaultScoring(),
	}
}

// Database is a collection of immutable segments — (compressed
// sequence store, interval index) pairs over contiguous record ids —
// evaluated together by partitioned queries. It is safe for concurrent
// use: searches borrow scratch searchers from an internal pool and run
// against an atomic snapshot of the segment set, while writers
// (Append, Delete, Compact) build replacement segments off to the side
// and publish a new snapshot with one pointer swap. A search never
// blocks on a writer and a writer never waits for searches to drain.
type Database struct {
	// snap is the live segment-set snapshot. Readers Load it once per
	// operation and use that set throughout; writers publish replacement
	// sets under mu.
	snap atomic.Pointer[segment.Set]

	scoring align.Scoring

	// mu serialises layout mutations: Append, Delete, snapshot swaps,
	// Save/SaveSegmented, compactor start/stop. Searches never take it.
	mu          sync.Mutex
	dir         string // segmented directory this database persists to; "" = in-memory
	nextSeg     int    // next unused segment file number when dir != ""
	maxSegments int    // compaction trigger (see SetMaxSegments)
	retired     []*index.Index

	// compactMu serialises compaction work (the merge itself runs
	// outside mu so searches and appends proceed during it).
	compactMu sync.Mutex

	compactorStop chan struct{}
	compactorKick chan struct{}
	compactorWG   sync.WaitGroup

	// searchers pools *core.Searcher scratch for the current snapshot.
	// Writers swap d.snap; stale pooled searchers are detected by
	// comparing their snapshot token and dropped on checkout.
	searchers sync.Pool

	statsOnce sync.Once
	statsP    stats.Params
	statsErr  error
}

// getSearcher loads the current snapshot and checks out a searcher
// built for it. The returned set is the snapshot the searcher indexes —
// use it (not a fresh Load) for descriptions and significance so one
// search sees one consistent state.
//
//cafe:pooled callers must pair every checkout with putSearcher
func (d *Database) getSearcher() (*core.Searcher, *segment.Set, error) {
	set := d.snap.Load()
	s, err := d.searcherFor(set)
	return s, set, err
}

// searcherFor checks a searcher for the given snapshot out of the pool,
// constructing one when the pool is empty or holds searchers built for
// a superseded snapshot.
//
//cafe:pooled callers must pair every checkout with putSearcher
func (d *Database) searcherFor(set *segment.Set) (*core.Searcher, error) {
	if s, ok := d.searchers.Get().(*core.Searcher); ok && s.Snapshot() == any(set) {
		return s, nil
	}
	return core.NewSegmentedSearcher(set.CoreSegments(), set.Source(), d.scoring, set)
}

// putSearcher returns a searcher to the pool unless a writer has
// published a newer snapshot since it was checked out.
func (d *Database) putSearcher(s *core.Searcher) {
	if s.Snapshot() == any(d.snap.Load()) {
		d.searchers.Put(s)
	}
}

// publish swaps in a new snapshot. Callers hold d.mu.
func (d *Database) publish(set *segment.Set) {
	d.snap.Store(set)
	mSegments.Set(int64(set.Len()))
}

// kickCompactor nudges the background compactor, if one is running.
// Callers hold d.mu.
func (d *Database) kickCompactor() {
	if d.compactorKick == nil {
		return
	}
	select {
	case d.compactorKick <- struct{}{}:
	default:
	}
}

// Build constructs a database from records.
func Build(records []Record, cfg BuildConfig) (*Database, error) {
	var store db.Store
	for i, r := range records {
		codes, err := dna.Encode([]byte(r.Sequence))
		if err != nil {
			return nil, fmt.Errorf("nucleodb: record %d (%q): %w", i, r.Desc, err)
		}
		store.Add(r.Desc, codes)
	}
	return buildFromStore(&store, cfg)
}

// BuildFromFasta constructs a database from FASTA-format input,
// streaming records into the compressed store as they parse (peak
// memory is one record plus the store, not the whole text).
func BuildFromFasta(r io.Reader, cfg BuildConfig) (*Database, error) {
	fr := dna.NewFastaReader(r)
	var store db.Store
	for {
		rec, err := fr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("nucleodb: %w", err)
		}
		store.Add(rec.Desc, rec.Codes)
	}
	return buildFromStore(&store, cfg)
}

func buildFromStore(store *db.Store, cfg BuildConfig) (*Database, error) {
	idx, err := index.Build(store, index.Options{
		K:            cfg.IntervalLength,
		SpacedMask:   cfg.SpacedMask,
		StoreOffsets: cfg.StoreOffsets,
		StopFraction: cfg.StopFraction,
		SkipInterval: cfg.SkipInterval,
		Workers:      cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("nucleodb: %w", err)
	}
	g, err := segment.New("", store, idx, 0)
	if err != nil {
		return nil, fmt.Errorf("nucleodb: %w", err)
	}
	if cfg.Signatures {
		g, err = g.BuildSig(sig.Options{})
		if err != nil {
			return nil, fmt.Errorf("nucleodb: %w", err)
		}
	}
	set, err := segment.NewSet([]*segment.Segment{g})
	if err != nil {
		return nil, fmt.Errorf("nucleodb: %w", err)
	}
	return newDatabaseSet(set, cfg.Scoring, "", 0)
}

func newDatabase(store *db.Store, idx *index.Index, scoring Scoring) (*Database, error) {
	g, err := segment.New("", store, idx, 0)
	if err != nil {
		return nil, fmt.Errorf("nucleodb: %w", err)
	}
	set, err := segment.NewSet([]*segment.Segment{g})
	if err != nil {
		return nil, fmt.Errorf("nucleodb: %w", err)
	}
	return newDatabaseSet(set, scoring, "", 0)
}

// newDatabaseSet wraps a segment set as a Database. dir binds segmented
// persistence ("" for in-memory); nextSeg is the next unused segment
// file number inside dir.
func newDatabaseSet(set *segment.Set, scoring Scoring, dir string, nextSeg int) (*Database, error) {
	d := &Database{
		scoring:     scoring.internal(),
		dir:         dir,
		nextSeg:     nextSeg,
		maxSegments: segment.DefaultMaxSegments,
	}
	searcher, err := core.NewSegmentedSearcher(set.CoreSegments(), set.Source(), d.scoring, set)
	if err != nil {
		return nil, fmt.Errorf("nucleodb: %w", err)
	}
	d.mu.Lock()
	d.publish(set)
	d.mu.Unlock()
	d.searchers.Put(searcher)
	return d, nil
}

// File names used inside a saved database directory.
const (
	storeFile = "sequences.ndb"
	indexFile = "intervals.ndx"
)

// Save writes the database into directory dir in the legacy monolithic
// layout (one store file, one index file), creating the directory if
// needed. A multi-segment database is flattened first — tombstoned
// records become empty stubs, so ids are preserved. See SaveSegmented
// for the layout that keeps segments (and incremental Append) across
// restarts.
func (d *Database) Save(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	store, idx, err := segment.Flatten(d.snap.Load())
	if err != nil {
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, storeFile), store.Save); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, indexFile), idx.Save)
}

// SaveSegmented writes the database into directory dir in the
// segmented layout — one store and index file per segment plus a
// MANIFEST — and binds the database to dir: from then on Append,
// Delete and Compact persist their changes there crash-safely (segment
// files land before the manifest references them; the manifest is
// replaced atomically). Open and OpenPaged detect the layout
// automatically.
func (d *Database) SaveSegmented(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	old := d.snap.Load()
	segs := make([]*segment.Segment, old.Len())
	for i, g := range old.Segments() {
		segs[i] = g.Renamed(segment.SegName(i))
		if err := segment.WriteFiles(dir, segs[i]); err != nil {
			return fmt.Errorf("nucleodb: save: %w", err)
		}
	}
	set, err := segment.NewSet(segs)
	if err != nil {
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	if err := segment.WriteManifest(dir, set, len(segs)); err != nil {
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	segment.GC(dir, set)
	d.dir = dir
	d.nextSeg = len(segs)
	d.publish(set)
	return nil
}

func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("nucleodb: save %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nucleodb: save: %w", err)
	}
	return nil
}

// Open loads a database saved with Save or SaveSegmented (the layout
// is detected by the presence of a MANIFEST). Scoring is not
// persisted; pass the scheme searches should use (DefaultScoring for
// the usual parameters). Opening a segmented directory binds the
// database to it: Append, Delete and Compact persist there.
func Open(dir string, scoring Scoring) (*Database, error) {
	if segment.IsSegmented(dir) {
		set, next, err := segment.OpenDir(dir, false)
		if err != nil {
			return nil, fmt.Errorf("nucleodb: %w", err)
		}
		return newDatabaseSet(set, scoring, dir, next)
	}
	sf, err := os.Open(filepath.Join(dir, storeFile))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	defer sf.Close()
	store, err := db.Load(sf)
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	xf, err := os.Open(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	defer xf.Close()
	idx, err := index.Load(xf)
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	return newDatabase(store, idx, scoring)
}

// OpenPaged opens a saved database with the index in paged (on-disk)
// mode: the lexicon loads into memory but posting lists are read from
// disk per query — the operating regime for collections larger than
// memory, and the regime the original system was designed for. Call
// Close when done. Paged segments are read-only base segments: Append
// indexes new records as fresh in-memory segments on top of them (and
// persists the segments when the directory is segmented), so
// incremental growth works in every mode. Only the legacy monolithic
// Save of an unmodified paged database is unsupported (its one
// disk-backed segment has no in-memory postings to rewrite); any
// append or delete makes Save flatten through memory and succeed.
func OpenPaged(dir string, scoring Scoring) (*Database, error) {
	if segment.IsSegmented(dir) {
		set, next, err := segment.OpenDir(dir, true)
		if err != nil {
			return nil, fmt.Errorf("nucleodb: %w", err)
		}
		return newDatabaseSet(set, scoring, dir, next)
	}
	sf, err := os.Open(filepath.Join(dir, storeFile))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	defer sf.Close()
	store, err := db.Load(sf)
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	idx, err := index.OpenDisk(filepath.Join(dir, indexFile))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: open: %w", err)
	}
	d, err := newDatabase(store, idx, scoring)
	if err != nil {
		idx.Close()
		return nil, err
	}
	return d, nil
}

// Close stops the background compactor (if running) and releases
// resources held by paged segments, including disk-backed segments
// retired by compaction (see OpenPaged). It is a no-op for in-memory
// databases. No search may be in flight when Close is called.
func (d *Database) Close() error {
	d.StopCompactor()
	d.mu.Lock()
	retired := d.retired
	d.retired = nil
	set := d.snap.Load()
	d.mu.Unlock()
	var first error
	for _, idx := range retired {
		if err := idx.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, g := range set.Segments() {
		if err := g.Index.Close(); err != nil && first == nil { //cafe:allow snapshot teardown contract: Close runs after the caller has stopped issuing searches, so no reader holds this snapshot
			first = err
		}
	}
	return first
}

// SearchOptions controls one query evaluation.
type SearchOptions struct {
	// Candidates is the coarse-phase budget: how many top-ranked
	// sequences receive fine alignment.
	Candidates int
	// MinCoarseHits prunes sequences sharing fewer distinct intervals
	// with the query.
	MinCoarseHits int
	// Diagonal selects the FRAMES-style diagonal coarse ranking
	// (requires a database built with StoreOffsets).
	Diagonal bool
	// CoarseMode, when non-empty, selects the coarse ranking by name —
	// "distinct", "total", "normalised" or "diagonal" — overriding
	// Diagonal. Unknown names are rejected.
	CoarseMode string
	// CoarseBackend selects the coarse phase's data structure: "" or
	// "auto" (the postings index), "postings", or "signature" (the
	// bit-sliced interval signatures; requires a database built with
	// Signatures). Final results are identical across backends; only
	// the coarse phase's cost profile differs. Unknown names are
	// rejected.
	CoarseBackend string
	// Exact runs unrestricted Smith–Waterman in the fine phase instead
	// of the banded aligner: exact scores, higher cost.
	Exact bool
	// Band is the banded aligner's half-width when Exact is false.
	Band int
	// FineKernel selects the fine-phase scoring kernel: "" or "auto"
	// (bit-parallel under Exact, scalar under the banded default),
	// "scalar", or "bitvector" (Exact searches only). Results are
	// byte-identical whichever kernel runs; only speed differs.
	FineKernel string
	// MinScore discards alignments below this score.
	MinScore int
	// Limit truncates the result list; 0 keeps everything.
	Limit int
	// BothStrands also searches the query's reverse complement and
	// reports each sequence's best strand.
	BothStrands bool
	// Prescreen, when positive, drops candidates whose ungapped
	// extension at the best shared interval scores below it, before
	// fine alignment — the three-phase evaluation of the production
	// CAFE design. 0 disables.
	Prescreen int
	// FineWorkers aligns candidates concurrently in the fine phase
	// (lower single-query latency on multicore machines); 0 or 1 is
	// serial. Results are identical at any setting.
	FineWorkers int
	// CoarseWorkers partitions the query's posting lists across this
	// many workers in the coarse phase, each accumulating into private
	// per-shard counters merged deterministically afterwards — lower
	// coarse latency on multicore machines for term-rich queries. 0 or
	// 1 is serial. Results are byte-identical at any setting.
	CoarseWorkers int
}

// DefaultSearchOptions returns the settings of the headline
// experiments: 100 candidates, banded fine phase, top 20 answers.
func DefaultSearchOptions() SearchOptions {
	return SearchOptions{
		Candidates:    100,
		MinCoarseHits: 2,
		Band:          24,
		MinScore:      1,
		Limit:         20,
	}
}

func (o SearchOptions) internal() core.Options {
	mode := core.CoarseDistinct
	if o.Diagonal {
		mode = core.CoarseDiagonal
	}
	switch o.CoarseMode {
	case "":
	case "distinct":
		mode = core.CoarseDistinct
	case "total":
		mode = core.CoarseTotal
	case "normalised":
		mode = core.CoarseNormalised
	case "diagonal":
		mode = core.CoarseDiagonal
	default:
		mode = core.CoarseMode(-1) // rejected by core's validation
	}
	var backend core.CoarseBackend
	switch o.CoarseBackend {
	case "", "auto":
		backend = core.CoarseBackendAuto
	case "postings":
		backend = core.CoarseBackendPostings
	case "signature":
		backend = core.CoarseBackendSignature
	default:
		backend = core.CoarseBackend(-1) // rejected by core's validation
	}
	fine := core.FineBanded
	if o.Exact {
		fine = core.FineFull
	}
	var kernel core.FineKernel
	switch o.FineKernel {
	case "", "auto":
		kernel = core.FineKernelAuto
	case "scalar":
		kernel = core.FineKernelScalar
	case "bitvector":
		kernel = core.FineKernelBitvector
	default:
		kernel = core.FineKernel(-1) // rejected by core's validation
	}
	return core.Options{
		Candidates:    o.Candidates,
		MinCoarseHits: o.MinCoarseHits,
		CoarseMode:    mode,
		CoarseBackend: backend,
		FineMode:      fine,
		FineKernel:    kernel,
		Band:          o.Band,
		MinScore:      o.MinScore,
		Limit:         o.Limit,
		BothStrands:   o.BothStrands,
		Prescreen:     o.Prescreen,
		FineWorkers:   o.FineWorkers,
		CoarseWorkers: o.CoarseWorkers,
	}
}

// Result is one answer to a search.
type Result struct {
	// ID is the record's position in the database (insertion order).
	ID int
	// Desc is the record's description line.
	Desc string
	// Score is the local alignment score under the database's scoring.
	Score int
	// Identity is the fraction of matching alignment columns. Both the
	// default (banded) and Exact fine phases produce transcripts for
	// reported results, so this is normally populated; it is 0 only
	// when no transcript exists (e.g. a candidate whose banded
	// traceback could not reproduce the ranking score).
	Identity float64
	// QueryStart/QueryEnd and SubjectStart/SubjectEnd are the
	// half-open alignment spans, when available. For reverse-strand
	// matches the query spans refer to the reverse complement.
	QueryStart, QueryEnd     int
	SubjectStart, SubjectEnd int
	// Reverse marks a reverse-complement-strand match (BothStrands
	// searches only).
	Reverse bool
	// Bits is the Karlin–Altschul bit score and EValue the expected
	// number of chance alignments this good in a database of this
	// size: the significance measures search tools report. Both are 0
	// until the first call to Statistics succeeds (Search computes
	// them automatically).
	Bits   float64
	EValue float64
}

// SearchStats reports the work one search performed, stage by stage:
// the coarse phase's index traffic, the prescreen's filtering, the
// fine phase's dynamic programming, and the per-stage wall time. It is
// the engine's observability currency — cafe-search prints it behind
// -stats, cafe-bench emits it in its JSON report, and every search
// feeds the same numbers into the process-wide metrics registry.
type SearchStats struct {
	// Strands is 1, or 2 when both strands were searched.
	Strands int `json:"strands"`
	// QueryTerms is the number of distinct query intervals extracted.
	QueryTerms int `json:"query_terms"`
	// PostingLists is the number of non-empty posting lists read.
	PostingLists int `json:"posting_lists"`
	// PostingsDecoded is the number of posting entries decoded — the
	// coarse phase's unit of work.
	PostingsDecoded int64 `json:"postings_decoded"`
	// PostingsBytesRead is the compressed size of the lists read; on a
	// paged database this is bytes fetched from disk.
	PostingsBytesRead int64 `json:"postings_bytes_read"`
	// CoarseSequences is the number of sequences the coarse ranking
	// touched before thresholds and the candidate budget.
	CoarseSequences int `json:"coarse_sequences"`
	// CoarseCandidates is the number of candidates admitted to the
	// post-coarse phases.
	CoarseCandidates int `json:"coarse_candidates"`
	// CoarseShards is the number of coarse accumulation shards used,
	// summed over strands and segments: 1 per strand serially, the
	// effective CoarseWorkers when the posting-list walk was sharded.
	// The postings counters above are shard sums and always equal the
	// serial values.
	CoarseShards int `json:"coarse_shards"`
	// CoarseBackend is the resolved coarse backend ("postings" or
	// "signature"); "mixed" after aggregating searches that disagree.
	CoarseBackend string `json:"coarse_backend"`
	// SigProbes is the number of query intervals probed against the
	// bit-sliced signatures (signature backend only).
	SigProbes int `json:"sig_probes"`
	// SigCandidates is the number of approximate candidates the
	// signature probe admitted to exact verification.
	SigCandidates int `json:"sig_candidates"`
	// SigFalsePositives is the number of those candidates verification
	// rejected; always ≤ SigCandidates.
	SigFalsePositives int `json:"sig_false_positives"`
	// Segments is the number of index segments the coarse phase
	// evaluated, summed over strands.
	Segments int `json:"segments"`
	// PrescreenRejections is the number of candidates the ungapped
	// extension prescreen discarded before fine alignment.
	PrescreenRejections int `json:"prescreen_rejections"`
	// FineAlignments is the number of fine-phase alignments run; at
	// most CoarseCandidates.
	FineAlignments int `json:"fine_alignments"`
	// BitvectorAlignments is the number of fine alignments scored by
	// the bit-parallel kernel (the rest ran the scalar kernel, by
	// configuration or as the lane-capacity fallback).
	BitvectorAlignments int `json:"bitvector_alignments"`
	// FineKernel is the resolved fine kernel ("scalar" or
	// "bitvector"); "mixed" after aggregating searches that disagree.
	FineKernel string `json:"fine_kernel"`
	// TracebackAlignments is the number of deferred tracebacks run for
	// reported results.
	TracebackAlignments int `json:"traceback_alignments"`
	// FineDPCells and TracebackDPCells count the dynamic-programming
	// cells evaluated — the fraction of the database actually aligned.
	FineDPCells      int64 `json:"fine_dp_cells"`
	TracebackDPCells int64 `json:"traceback_dp_cells"`
	// Results is the number of answers returned.
	Results int `json:"results"`
	// Stage wall times. Coarse, fine and traceback clocks are disjoint
	// intervals summing to at most TotalTime; PrescreenTime is a
	// per-candidate subset of FineTime (summed across workers when the
	// fine phase is parallel).
	CoarseTime    time.Duration `json:"coarse_ns"`
	PrescreenTime time.Duration `json:"prescreen_ns"`
	FineTime      time.Duration `json:"fine_ns"`
	TracebackTime time.Duration `json:"traceback_ns"`
	TotalTime     time.Duration `json:"total_ns"`
}

// DPCells returns the total dynamic-programming cells evaluated.
func (s SearchStats) DPCells() int64 { return s.FineDPCells + s.TracebackDPCells }

// Add accumulates o into s field by field, for aggregating the stats
// of many queries.
func (s *SearchStats) Add(o SearchStats) {
	s.Strands += o.Strands
	s.QueryTerms += o.QueryTerms
	s.PostingLists += o.PostingLists
	s.PostingsDecoded += o.PostingsDecoded
	s.PostingsBytesRead += o.PostingsBytesRead
	s.CoarseSequences += o.CoarseSequences
	s.CoarseCandidates += o.CoarseCandidates
	s.CoarseShards += o.CoarseShards
	switch {
	case s.CoarseBackend == "":
		s.CoarseBackend = o.CoarseBackend
	case o.CoarseBackend != "" && o.CoarseBackend != s.CoarseBackend:
		s.CoarseBackend = "mixed"
	}
	s.SigProbes += o.SigProbes
	s.SigCandidates += o.SigCandidates
	s.SigFalsePositives += o.SigFalsePositives
	s.Segments += o.Segments
	s.PrescreenRejections += o.PrescreenRejections
	s.FineAlignments += o.FineAlignments
	s.BitvectorAlignments += o.BitvectorAlignments
	switch {
	case s.FineKernel == "":
		s.FineKernel = o.FineKernel
	case o.FineKernel != "" && o.FineKernel != s.FineKernel:
		s.FineKernel = "mixed"
	}
	s.TracebackAlignments += o.TracebackAlignments
	s.FineDPCells += o.FineDPCells
	s.TracebackDPCells += o.TracebackDPCells
	s.Results += o.Results
	s.CoarseTime += o.CoarseTime
	s.PrescreenTime += o.PrescreenTime
	s.FineTime += o.FineTime
	s.TracebackTime += o.TracebackTime
	s.TotalTime += o.TotalTime
}

func searchStatsFrom(cs core.SearchStats) SearchStats {
	return SearchStats{
		Strands:             cs.Strands,
		QueryTerms:          cs.QueryTerms,
		PostingLists:        cs.PostingLists,
		PostingsDecoded:     cs.PostingsDecoded,
		PostingsBytesRead:   cs.PostingsBytesRead,
		CoarseSequences:     cs.CoarseSequences,
		CoarseCandidates:    cs.CoarseCandidates,
		CoarseShards:        cs.CoarseShards,
		CoarseBackend:       cs.CoarseBackend,
		SigProbes:           cs.SigProbes,
		SigCandidates:       cs.SigCandidates,
		SigFalsePositives:   cs.SigFalsePositives,
		Segments:            cs.Segments,
		PrescreenRejections: cs.PrescreenRejections,
		FineAlignments:      cs.FineAlignments,
		BitvectorAlignments: cs.BitvectorAlignments,
		FineKernel:          cs.FineKernel,
		TracebackAlignments: cs.TracebackAlignments,
		FineDPCells:         cs.FineDPCells,
		TracebackDPCells:    cs.TracebackDPCells,
		Results:             cs.Results,
		CoarseTime:          cs.CoarseTime,
		PrescreenTime:       cs.PrescreenTime,
		FineTime:            cs.FineTime,
		TracebackTime:       cs.TracebackTime,
		TotalTime:           cs.TotalTime,
	}
}

// Handles into the process-wide registry, fetched once: recording a
// search is a dozen uncontended atomic adds.
var (
	mSearches         = metrics.Default().Counter("searches_total")
	mPostingsDecoded  = metrics.Default().Counter("postings_decoded_total")
	mPostingsBytes    = metrics.Default().Counter("postings_bytes_read_total")
	mCoarseCandidates = metrics.Default().Counter("coarse_candidates_total")
	mCoarseShards     = metrics.Default().Counter("coarse_shards_total")
	mSigProbes        = metrics.Default().Counter("sig_probes_total")
	mSigCandidates    = metrics.Default().Counter("sig_candidates_total")
	mSigFalsePos      = metrics.Default().Counter("sig_false_positives_total")
	mPrescreenRejects = metrics.Default().Counter("prescreen_rejections_total")
	mFineAlignments   = metrics.Default().Counter("fine_alignments_total")
	mBitvectorAligns  = metrics.Default().Counter("fine_bitvector_alignments_total")
	mTracebacks       = metrics.Default().Counter("traceback_alignments_total")
	mDPCells          = metrics.Default().Counter("dp_cells_total")
	mResults          = metrics.Default().Counter("results_total")
	hSearchLatency    = metrics.Default().Histogram("search_latency")
	hCoarseLatency    = metrics.Default().Histogram("coarse_stage_latency")
	hFineLatency      = metrics.Default().Histogram("fine_stage_latency")
	// mSegments tracks the live snapshot's segment count (last
	// database to publish wins; processes serve one database).
	mSegments = metrics.Default().Gauge("segments_total")
)

// recordSearchMetrics folds one search's stats into the process-wide
// registry (see WriteMetrics).
func recordSearchMetrics(st SearchStats) {
	mSearches.Inc()
	mPostingsDecoded.Add(st.PostingsDecoded)
	mPostingsBytes.Add(st.PostingsBytesRead)
	mCoarseCandidates.Add(int64(st.CoarseCandidates))
	mCoarseShards.Add(int64(st.CoarseShards))
	mSigProbes.Add(int64(st.SigProbes))
	mSigCandidates.Add(int64(st.SigCandidates))
	mSigFalsePos.Add(int64(st.SigFalsePositives))
	mPrescreenRejects.Add(int64(st.PrescreenRejections))
	mFineAlignments.Add(int64(st.FineAlignments))
	mBitvectorAligns.Add(int64(st.BitvectorAlignments))
	mTracebacks.Add(int64(st.TracebackAlignments))
	mDPCells.Add(st.DPCells())
	mResults.Add(int64(st.Results))
	hSearchLatency.Observe(st.TotalTime)
	hCoarseLatency.Observe(st.CoarseTime)
	hFineLatency.Observe(st.FineTime)
}

// WriteMetrics writes the process-wide metrics — totals and latency
// quantiles aggregated over every search this process ran, whichever
// Database ran it — as JSON.
func WriteMetrics(w io.Writer) error { return metrics.Default().WriteJSON(w) }

// WriteMetricsText writes the same process-wide metrics in a
// line-per-instrument text form.
func WriteMetricsText(w io.Writer) error { return metrics.Default().WriteText(w) }

// ResetMetrics zeroes the process-wide metrics.
func ResetMetrics() { metrics.Default().Reset() }

// PublishMetrics exposes the process-wide metrics through expvar under
// the name "nucleodb", for processes that serve an expvar endpoint.
// Idempotent.
func PublishMetrics() { metrics.PublishExpvar() }

// Search evaluates a query given as IUPAC letters and returns ranked
// answers.
func (d *Database) Search(query string, opts SearchOptions) ([]Result, error) {
	return d.SearchContext(context.Background(), query, opts)
}

// SearchContext is Search with cooperative cancellation: when ctx is
// cancelled or its deadline passes, the evaluation stops at the next
// posting list (coarse phase) or candidate boundary (prescreen, fine
// alignment, traceback) and returns an error wrapping ctx.Err() — so a
// long Smith–Waterman fine phase no longer runs to completion after
// the caller has gone away. With context.Background() the results are
// identical to Search's.
func (d *Database) SearchContext(ctx context.Context, query string, opts SearchOptions) ([]Result, error) {
	codes, err := dna.Encode([]byte(query))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: query: %w", err)
	}
	return d.SearchCodesContext(ctx, codes, opts)
}

// SearchWithStats evaluates a query and also returns the per-stage
// work and latency breakdown of the evaluation. Results are identical
// to Search's (the stats collection only observes).
func (d *Database) SearchWithStats(query string, opts SearchOptions) ([]Result, SearchStats, error) {
	return d.SearchWithStatsContext(context.Background(), query, opts)
}

// SearchWithStatsContext is SearchContext with the stats collection of
// SearchWithStats.
func (d *Database) SearchWithStatsContext(ctx context.Context, query string, opts SearchOptions) ([]Result, SearchStats, error) {
	codes, err := dna.Encode([]byte(query))
	if err != nil {
		return nil, SearchStats{}, fmt.Errorf("nucleodb: query: %w", err)
	}
	return d.SearchCodesWithStatsContext(ctx, codes, opts)
}

// SearchCodes evaluates a query already in internal code form; callers
// holding dna codes (e.g. from another record) avoid a re-encode.
func (d *Database) SearchCodes(codes []byte, opts SearchOptions) ([]Result, error) {
	rs, _, err := d.SearchCodesWithStats(codes, opts)
	return rs, err
}

// SearchCodesContext is SearchContext for pre-encoded queries.
func (d *Database) SearchCodesContext(ctx context.Context, codes []byte, opts SearchOptions) ([]Result, error) {
	rs, _, err := d.SearchCodesWithStatsContext(ctx, codes, opts)
	return rs, err
}

// SearchCodesWithStats is SearchWithStats for pre-encoded queries.
func (d *Database) SearchCodesWithStats(codes []byte, opts SearchOptions) ([]Result, SearchStats, error) {
	return d.SearchCodesWithStatsContext(context.Background(), codes, opts)
}

// SearchCodesWithStatsContext is the full-generality search entry
// point: pre-encoded query, cooperative cancellation, and stats.
func (d *Database) SearchCodesWithStatsContext(ctx context.Context, codes []byte, opts SearchOptions) ([]Result, SearchStats, error) {
	var cst core.SearchStats
	searcher, set, err := d.getSearcher()
	if err != nil {
		return nil, SearchStats{}, fmt.Errorf("nucleodb: %w", err)
	}
	rs, err := searcher.SearchWithStatsContext(ctx, codes, opts.internal(), &cst)
	d.putSearcher(searcher)
	if err != nil {
		return nil, SearchStats{}, fmt.Errorf("nucleodb: %w", err)
	}
	st := searchStatsFrom(cst)
	recordSearchMetrics(st)
	params, statsErr := d.Statistics()
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{
			ID:           r.ID,
			Desc:         set.Desc(r.ID),
			Score:        r.Score,
			Identity:     r.Alignment.Identity(),
			QueryStart:   r.Alignment.AStart,
			QueryEnd:     r.Alignment.AEnd,
			SubjectStart: r.Alignment.BStart,
			SubjectEnd:   r.Alignment.BEnd,
			Reverse:      r.Reverse,
		}
		if statsErr == nil {
			out[i].Bits = params.BitScore(r.Score)
			out[i].EValue = params.EValue(r.Score, len(codes), set.TotalBases())
		}
	}
	return out, st, nil
}

// Statistics returns the Karlin–Altschul parameters for the database's
// scoring scheme, computed on first use by gapped simulation (the
// search reports gapped scores, so gapped calibration is the honest
// one; see stats.EstimateGapped). An error means the scoring scheme
// admits no local alignment statistics (e.g. non-negative expected
// score); Search then leaves Bits and EValue zero.
func (d *Database) Statistics() (stats.Params, error) {
	d.statsOnce.Do(func() {
		d.statsP, d.statsErr = stats.EstimateGappedCached(d.scoring, stats.Uniform, stats.DefaultEstimateOptions())
	})
	return d.statsP, d.statsErr
}

// Alignment renders the optimal local alignment of a query against one
// stored record in the conventional three-line blocks, computed in
// linear space so record length is not a concern:
//
//	score 240, identity 96% (48/50), gaps 1
//	Query      1  ACGTACGT-ACGT ...
//	              |||| |||  |||
//	Sbjct     41  ACGTTCGTNACGT ...
func (d *Database) Alignment(query string, id int) (string, error) {
	codes, err := dna.Encode([]byte(query))
	if err != nil {
		return "", fmt.Errorf("nucleodb: query: %w", err)
	}
	set := d.snap.Load()
	if id < 0 || id >= set.NumSeqs() {
		return "", fmt.Errorf("nucleodb: record id %d out of range [0,%d)", id, set.NumSeqs())
	}
	subject := set.Sequence(id)
	al := align.LocalLinear(codes, subject, d.scoring)
	return align.Format(codes, subject, al, 60), nil
}

// Append adds records to the database incrementally: the batch is
// encoded and indexed as one new segment and published with a snapshot
// swap, so the cost is proportional to the batch — the existing
// segments (in-memory or paged) are never touched. Searches running
// concurrently are unaffected; they finish against the snapshot they
// started with. When the database is bound to a segmented directory
// (SaveSegmented, or opened from one), the new segment is persisted
// crash-safely before the swap.
//
// Appends accumulate segments; a background compactor (StartCompactor)
// or explicit Compact calls fold them back down. Stopping decisions
// are per-segment; rebuild from scratch to re-stop globally.
func (d *Database) Append(records []Record) error {
	var store db.Store
	for i, r := range records {
		codes, err := dna.Encode([]byte(r.Sequence))
		if err != nil {
			return fmt.Errorf("nucleodb: record %d (%q): %w", i, r.Desc, err)
		}
		store.Add(r.Desc, codes)
	}
	if store.Len() == 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.snap.Load()
	idx, err := index.Build(&store, old.Options())
	if err != nil {
		return fmt.Errorf("nucleodb: append: %w", err)
	}
	var name string
	if d.dir != "" {
		name = segment.SegName(d.nextSeg)
	}
	g, err := segment.New(name, &store, idx, old.NumSeqs())
	if err != nil {
		return fmt.Errorf("nucleodb: append: %w", err)
	}
	// All-or-none: when the existing segments carry signatures, every
	// appended segment gets them too (same Bloom geometry), so the
	// signature backend stays available across the database's life.
	if old.HasSignatures() {
		first := old.Segments()[0].Sig()
		g, err = g.BuildSig(sig.Options{BitsPerKmer: first.BitsPerKmer(), Hashes: first.Hashes()})
		if err != nil {
			return fmt.Errorf("nucleodb: append: %w", err)
		}
	}
	segs := append(append([]*segment.Segment{}, old.Segments()...), g)
	set, err := segment.NewSet(segs)
	if err != nil {
		return fmt.Errorf("nucleodb: append: %w", err)
	}
	if d.dir != "" {
		if err := segment.WriteFiles(d.dir, g); err != nil {
			return fmt.Errorf("nucleodb: append: %w", err)
		}
		d.nextSeg++
		if err := segment.WriteManifest(d.dir, set, d.nextSeg); err != nil {
			// The orphaned segment files are garbage-collected on the
			// next successful open or compaction.
			return fmt.Errorf("nucleodb: append: %w", err)
		}
	}
	d.publish(set)
	d.kickCompactor()
	return nil
}

// Delete tombstones records by global id: they disappear from search
// results immediately, and their sequence data and postings are
// reclaimed when compaction next folds their segment (descriptions
// survive as empty stubs, so ids never renumber). Significance
// statistics use the live database size, so surviving results score
// identically before and after the physical reclaim. On a segmented
// directory the tombstones persist in the manifest.
func (d *Database) Delete(ids ...int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := d.snap.Load()
	for _, id := range ids {
		if id < 0 || id >= old.NumSeqs() {
			return fmt.Errorf("nucleodb: record id %d out of range [0,%d)", id, old.NumSeqs())
		}
	}
	bySeg := make(map[int][]int)
	for _, id := range ids {
		si, local := old.Locate(id)
		bySeg[si] = append(bySeg[si], local)
	}
	segs := append([]*segment.Segment{}, old.Segments()...)
	for si, locals := range bySeg {
		g, err := segs[si].WithDeleted(locals)
		if err != nil {
			return fmt.Errorf("nucleodb: delete: %w", err)
		}
		segs[si] = g
	}
	set, err := segment.NewSet(segs)
	if err != nil {
		return fmt.Errorf("nucleodb: delete: %w", err)
	}
	if d.dir != "" {
		if err := segment.WriteManifest(d.dir, set, d.nextSeg); err != nil {
			return fmt.Errorf("nucleodb: delete: %w", err)
		}
	}
	d.publish(set)
	return nil
}

// SetMaxSegments sets the compaction trigger: Compact (and the
// background compactor) folds segments while the set holds more than
// n. The default is segment.DefaultMaxSegments; 1 compacts fully to a
// single segment. Values below 1 are treated as 1.
func (d *Database) SetMaxSegments(n int) {
	if n < 1 {
		n = 1
	}
	d.mu.Lock()
	d.maxSegments = n
	d.kickCompactor()
	d.mu.Unlock()
}

// NumSegments returns the number of segments in the current snapshot.
func (d *Database) NumSegments() int { return d.snap.Load().Len() }

// HasSignatures reports whether every segment carries a bit-sliced
// signature index — the precondition for CoarseBackend "signature".
func (d *Database) HasSignatures() bool { return d.snap.Load().HasSignatures() }

// NumDeleted returns the number of tombstoned records not yet
// reclaimed by compaction.
func (d *Database) NumDeleted() int { return d.snap.Load().NumDeleted() }

// IsDeleted reports whether record id is tombstoned.
func (d *Database) IsDeleted(id int) bool { return d.snap.Load().Deleted(id) }

// Compact folds one run of adjacent segments chosen by the size-tiered
// policy into a single segment, reclaiming tombstones, and returns how
// many segments it folded — 0 when the snapshot already satisfies the
// policy (at most SetMaxSegments segments, none of them tombstoned
// runs). Call it in a loop (or use StartCompactor) to fold fully.
//
// The merge runs outside the writer lock, so searches and appends
// proceed while it works; the swap revalidates that the merged run is
// still live (a concurrent Delete replaces segment values) and gives
// up harmlessly if not. Concurrent Compact calls serialise. On a
// segmented directory the new segment and manifest are written
// crash-safely before the swap, and superseded files are removed
// after.
func (d *Database) Compact() (int, error) {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()

	d.mu.Lock()
	maxSegments := d.maxSegments
	d.mu.Unlock()
	set := d.snap.Load()
	segs := set.Segments()
	lo, hi := segment.PickRun(segs, maxSegments)
	if lo < 0 {
		return 0, nil
	}
	run := segs[lo:hi]

	var name string
	if d.dir != "" {
		d.mu.Lock()
		name = segment.SegName(d.nextSeg)
		d.nextSeg++
		d.mu.Unlock()
	}
	merged, err := segment.MergeRun(name, run)
	if err != nil {
		return 0, fmt.Errorf("nucleodb: compact: %w", err)
	}
	if d.dir != "" {
		if err := segment.WriteFiles(d.dir, merged); err != nil {
			segment.RemoveFiles(d.dir, name)
			return 0, fmt.Errorf("nucleodb: compact: %w", err)
		}
	}

	d.mu.Lock()
	cur := d.snap.Load()
	curSegs := cur.Segments()
	live := len(curSegs) >= hi
	for i := lo; live && i < hi; i++ {
		live = curSegs[i] == segs[i]
	}
	if !live {
		// A concurrent Delete replaced a segment in the run after we
		// merged it; swapping now would resurrect the deleted records.
		// Abandon this output — the next Compact re-picks.
		d.mu.Unlock()
		if d.dir != "" {
			segment.RemoveFiles(d.dir, name)
		}
		return 0, nil
	}
	newSegs := make([]*segment.Segment, 0, len(curSegs)-(hi-lo)+1)
	newSegs = append(newSegs, curSegs[:lo]...)
	newSegs = append(newSegs, merged)
	newSegs = append(newSegs, curSegs[hi:]...)
	newSet, err := segment.NewSet(newSegs)
	if err != nil {
		d.mu.Unlock()
		if d.dir != "" {
			segment.RemoveFiles(d.dir, name)
		}
		return 0, fmt.Errorf("nucleodb: compact: %w", err)
	}
	if d.dir != "" {
		if err := segment.WriteManifest(d.dir, newSet, d.nextSeg); err != nil {
			// Do NOT remove the merged segment's files here: the failure
			// may have struck after the manifest rename, in which case
			// the new manifest already references them. Unreferenced
			// files are garbage-collected on the next open instead.
			d.mu.Unlock()
			return 0, fmt.Errorf("nucleodb: compact: %w", err)
		}
	}
	for _, g := range run {
		if g.Index.Disk() {
			// Keep superseded disk-backed indexes open until Close: a
			// search may still hold a snapshot that reads them.
			d.retired = append(d.retired, g.Index)
		}
	}
	d.publish(newSet)
	d.mu.Unlock()
	if d.dir != "" {
		segment.GC(d.dir, newSet)
	}
	return hi - lo, nil
}

// StartCompactor launches the background compactor: a goroutine that
// folds segments (repeated Compact calls) whenever the snapshot
// exceeds the SetMaxSegments trigger — after every Append, and once at
// start. onErr, when non-nil, receives compaction errors; the
// compactor keeps running after reporting one. Idempotent while
// running. StopCompactor (or Close) stops it and waits for it to
// finish.
func (d *Database) StartCompactor(onErr func(error)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.compactorStop != nil {
		return
	}
	stop := make(chan struct{})
	kick := make(chan struct{}, 1)
	d.compactorStop, d.compactorKick = stop, kick
	d.compactorWG.Add(1)
	go func() {
		defer d.compactorWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-kick:
				for {
					select {
					case <-stop:
						return
					default:
					}
					n, err := d.Compact()
					if err != nil {
						if onErr != nil {
							onErr(err)
						}
						break
					}
					if n == 0 {
						break
					}
				}
			}
		}
	}()
	d.kickCompactor()
}

// StopCompactor stops the background compactor and waits for any
// in-flight compaction to finish. No-op when none is running.
func (d *Database) StopCompactor() {
	d.mu.Lock()
	stop := d.compactorStop
	d.compactorStop, d.compactorKick = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	d.compactorWG.Wait()
}

// HSPs returns up to max high-scoring segment pairs of the query
// against one record, best-first and pairwise disjoint in the subject
// — the view search tools give when a query matches a record in
// several places. Each returned Result carries spans, identity, and
// significance; minScore prunes noise-level segments.
func (d *Database) HSPs(query string, id, max, minScore int) ([]Result, error) {
	codes, err := dna.Encode([]byte(query))
	if err != nil {
		return nil, fmt.Errorf("nucleodb: query: %w", err)
	}
	set := d.snap.Load()
	if id < 0 || id >= set.NumSeqs() {
		return nil, fmt.Errorf("nucleodb: record id %d out of range [0,%d)", id, set.NumSeqs())
	}
	subject := set.Sequence(id)
	params, statsErr := d.Statistics()
	als := align.LocalAll(codes, subject, d.scoring, minScore, max)
	out := make([]Result, len(als))
	for i, al := range als {
		out[i] = Result{
			ID:           id,
			Desc:         set.Desc(id),
			Score:        al.Score,
			Identity:     al.Identity(),
			QueryStart:   al.AStart,
			QueryEnd:     al.AEnd,
			SubjectStart: al.BStart,
			SubjectEnd:   al.BEnd,
		}
		if statsErr == nil {
			out[i].Bits = params.BitScore(al.Score)
			out[i].EValue = params.EValue(al.Score, len(codes), set.TotalBases())
		}
	}
	return out, nil
}

// NumSequences returns the number of records in the database,
// tombstoned records included (ids stay dense and stable).
func (d *Database) NumSequences() int { return d.snap.Load().NumSeqs() }

// TotalBases returns the number of bases across all live
// (non-tombstoned) records.
func (d *Database) TotalBases() int { return d.snap.Load().TotalBases() }

// Sequence returns record id's sequence as IUPAC letters.
func (d *Database) Sequence(id int) string { return dna.String(d.snap.Load().Sequence(id)) }

// Desc returns record id's description.
func (d *Database) Desc(id int) string { return d.snap.Load().Desc(id) }

// Stats summarises database storage. Byte and term counts are summed
// over segments.
type Stats struct {
	NumSequences  int
	TotalBases    int
	Segments      int // segments in the current snapshot
	Deleted       int // tombstoned records awaiting compaction
	StoreBytes    int // compressed sequence data
	IndexBytes    int // lexicon + postings + tables
	PostingsBytes int
	// SignatureBytes is the bit-sliced signature indexes' total size;
	// 0 for a database built without Signatures.
	SignatureBytes int64
	TermsIndexed   int
	TermsStopped   int
	IntervalLen    int
}

// Stats returns storage and index statistics.
func (d *Database) Stats() Stats {
	set := d.snap.Load()
	st := Stats{
		NumSequences:   set.NumSeqs(),
		TotalBases:     set.TotalBases(),
		Segments:       set.Len(),
		Deleted:        set.NumDeleted(),
		SignatureBytes: set.SignatureBytes(),
		IntervalLen:    set.Segments()[0].Index.K(),
	}
	for _, g := range set.Segments() {
		st.StoreBytes += g.Store.EncodedBytes()
		st.IndexBytes += g.Index.SizeBytes()
		st.PostingsBytes += g.Index.PostingsBytes()
		st.TermsIndexed += g.Index.NumTermsIndexed()
		st.TermsStopped += g.Index.NumStopped()
	}
	return st
}
