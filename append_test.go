package nucleodb

import (
	"reflect"
	"testing"
)

func TestAppendMatchesFullBuild(t *testing.T) {
	recs, query, _ := testRecords(87)
	split := len(recs) / 2

	incremental, err := Build(recs[:split], DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := incremental.Append(recs[split:]); err != nil {
		t.Fatal(err)
	}
	full, err := Build(recs, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if incremental.NumSequences() != full.NumSequences() ||
		incremental.TotalBases() != full.TotalBases() {
		t.Fatalf("incremental shape %d/%d, full %d/%d",
			incremental.NumSequences(), incremental.TotalBases(),
			full.NumSequences(), full.TotalBases())
	}
	a, err := incremental.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := full.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("incremental and full-build searches differ:\n%+v\n%+v", a, b)
	}
}

func TestAppendFindsNewRecords(t *testing.T) {
	recs, query, _ := testRecords(88)
	// Start with only the noise records; the family arrives by Append.
	var noise, family []Record
	for _, r := range recs {
		if r.Desc == "fam" {
			family = append(family, r)
		} else {
			noise = append(noise, r)
		}
	}
	db, err := Build(noise, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	before, err := db.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append(family); err != nil {
		t.Fatal(err)
	}
	after, err := db.Search(query, DefaultSearchOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(after) == 0 {
		t.Fatal("no results after append")
	}
	if len(before) > 0 && after[0].Score <= before[0].Score {
		t.Errorf("appended homologs did not improve the top score: %d vs %d",
			after[0].Score, before[0].Score)
	}
	if after[0].Desc != "fam" {
		t.Errorf("top hit after append is %q, want a family member", after[0].Desc)
	}
}

func TestAppendRejectsBadRecords(t *testing.T) {
	recs, _, _ := testRecords(89)
	db, err := Build(recs[:5], DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append([]Record{{Desc: "bad", Sequence: "AC-GT"}}); err == nil {
		t.Error("invalid appended record accepted")
	}
	// Failed append must leave the database usable.
	if db.NumSequences() != 5 {
		t.Errorf("failed append changed record count to %d", db.NumSequences())
	}
}
