// Homology search: the workload from the paper's introduction. A
// synthetic "GenBank" is generated with families of evolutionarily
// related sequences; a sequencing-read-sized fragment of one family
// member, further mutated, is used to find the rest of its family —
// and the result is compared against the exhaustive Smith–Waterman
// scan to show the partitioned search returns the same answers.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"nucleodb"
	"nucleodb/internal/align"
	"nucleodb/internal/baseline"
	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
)

func main() {
	// Generate a collection with known family structure.
	cfg := gen.DefaultConfig(1500, 7)
	col, err := gen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d sequences, %.1f Mbases\n",
		len(col.Records), float64(col.TotalBases())/1e6)

	records := make([]nucleodb.Record, len(col.Records))
	for i, r := range col.Records {
		records[i] = nucleodb.Record{Desc: r.Desc, Sequence: dna.String(r.Codes)}
	}
	start := time.Now()
	database, err := nucleodb.Build(records, nucleodb.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Pick a family member and simulate a partial, error-bearing read.
	rng := rand.New(rand.NewSource(11))
	src := -1
	for i, f := range col.FamilyOf {
		if f >= 0 {
			src = i
			break
		}
	}
	if src < 0 {
		log.Fatal("no families generated")
	}
	family := col.FamilyRecords(col.FamilyOf[src])
	frag := gen.Fragment(rng, col.Records[src].Codes, 350)
	read := gen.Mutate(rng, frag, gen.MutationModel{SubstitutionRate: 0.04, InsertionRate: 0.005, DeletionRate: 0.005})
	query := dna.String(read)
	fmt.Printf("query: %d-base mutated fragment of record %d (family of %d members)\n",
		len(query), src, len(family))

	// Partitioned search.
	opts := nucleodb.DefaultSearchOptions()
	opts.Limit = 10
	start = time.Now()
	results, err := database.Search(query, opts)
	if err != nil {
		log.Fatal(err)
	}
	partTime := time.Since(start)

	// Exhaustive gold standard over the same data.
	store := db.FromRecords(col.Records)
	start = time.Now()
	gold := baseline.SWScan(store, read, align.DefaultScoring(), 1, 10)
	swTime := time.Since(start)

	inFamily := func(id int) string {
		if col.FamilyOf[id] == col.FamilyOf[src] {
			return "FAMILY"
		}
		return ""
	}
	fmt.Printf("\npartitioned search (%v):\n", partTime.Round(time.Microsecond))
	for i, r := range results {
		fmt.Printf("  %2d. seq %-5d score %-5d %-7s %s\n", i+1, r.ID, r.Score, inFamily(r.ID), shorten(r.Desc))
	}
	fmt.Printf("\nexhaustive Smith–Waterman scan (%v):\n", swTime.Round(time.Microsecond))
	for i, r := range gold {
		fmt.Printf("  %2d. seq %-5d score %-5d %-7s\n", i+1, r.ID, r.Score, inFamily(r.ID))
	}

	agree := 0
	goldSet := map[int]bool{}
	for _, g := range gold {
		goldSet[g.ID] = true
	}
	for _, r := range results {
		if goldSet[r.ID] {
			agree++
		}
	}
	fmt.Printf("\nagreement with exhaustive top-%d: %d/%d; speedup %.1f×\n",
		len(gold), agree, len(gold), float64(swTime)/float64(partTime))
}

func shorten(s string) string {
	if i := strings.IndexByte(s, ' '); i > 0 && i < 24 {
		return s
	}
	if len(s) > 24 {
		return s[:24] + "…"
	}
	return s
}
