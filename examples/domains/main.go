// Domain search: partial homology, the case local alignment exists
// for. Database sequences share only a conserved domain with the query
// gene — embedded at random positions inside otherwise unrelated
// sequence, some carrying two copies. The search finds the carriers,
// and the HSP view separates the repeated copies that a single best
// alignment would hide.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"nucleodb"
	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(33))
	uniform := [4]float64{0.25, 0.25, 0.25, 0.25}

	// The gene of interest; its middle 200 bases are the conserved
	// domain that other organisms carry.
	gene := gen.RandomSequence(rng, 600, uniform, 0)
	const domainStart, domainLen = 200, 200
	model := gen.MutationModel{SubstitutionRate: 0.05, InsertionRate: 0.005, DeletionRate: 0.005}

	var records []nucleodb.Record
	carriers := map[int]int{} // record id → number of domain copies
	for i := 0; i < 8; i++ {
		seq := gen.EmbedDomain(rng, gene, domainStart, domainLen, 900, model)
		carriers[len(records)] = 1
		records = append(records, nucleodb.Record{
			Desc: fmt.Sprintf("carrier-%d (one copy)", i), Sequence: dna.String(seq)})
	}
	// Two records carry the domain twice.
	for i := 0; i < 2; i++ {
		first := gen.EmbedDomain(rng, gene, domainStart, domainLen, 500, model)
		second := gen.EmbedDomain(rng, gene, domainStart, domainLen, 500, model)
		carriers[len(records)] = 2
		records = append(records, nucleodb.Record{
			Desc:     fmt.Sprintf("carrier-2x-%d (two copies)", i),
			Sequence: dna.String(first) + dna.String(second)})
	}
	for i := 0; i < 150; i++ {
		records = append(records, nucleodb.Record{
			Desc: "noise", Sequence: dna.String(gen.RandomSequence(rng, 900, uniform, 0))})
	}

	db, err := nucleodb.Build(records, nucleodb.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d sequences, %.1f kb\n\n", db.NumSequences(), float64(db.TotalBases())/1e3)

	// Search with the whole gene. Only the domain aligns — note the
	// query spans in the answers cover roughly [200,400).
	opts := nucleodb.DefaultSearchOptions()
	opts.Exact = true
	opts.Limit = 12
	results, err := db.Search(dna.String(gene), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gene query: answers align only over the conserved domain")
	found := 0
	for _, r := range results {
		if _, ok := carriers[r.ID]; ok {
			found++
		}
		fmt.Printf("  %-24s score %-5d E %-9.2g query[%d:%d]\n",
			r.Desc, r.Score, r.EValue, r.QueryStart, r.QueryEnd)
	}
	fmt.Printf("carriers found: %d of %d\n\n", found, len(carriers))

	// HSPs on a two-copy carrier: the repeated domain shows up as two
	// disjoint segment pairs.
	for id, copies := range carriers {
		if copies != 2 {
			continue
		}
		hsps, err := db.HSPs(dna.String(gene), id, 4, 300)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("HSPs of the gene vs %s:\n", db.Desc(id))
		for i, h := range hsps {
			fmt.Printf("  HSP %d: score %-5d identity %.0f%%  subject[%d:%d]\n",
				i+1, h.Score, 100*h.Identity, h.SubjectStart, h.SubjectEnd)
		}
		break
	}
}
