// Batch workload: a metagenomic-style screen. A pile of short reads —
// some drawn from organisms present in the database, some from
// organisms that are not — is classified by searching each read and
// thresholding the best alignment score. Demonstrates persistent
// databases (Save/Open) and high-throughput batch searching on one
// shared Database.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"nucleodb"
	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(19))

	// The reference database: 1200 "known organisms".
	col, err := gen.Generate(gen.DefaultConfig(1200, 23))
	if err != nil {
		log.Fatal(err)
	}
	records := make([]nucleodb.Record, len(col.Records))
	for i, r := range col.Records {
		records[i] = nucleodb.Record{Desc: r.Desc, Sequence: dna.String(r.Codes)}
	}
	db, err := nucleodb.Build(records, nucleodb.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Persist and reopen, as a pipeline that builds once and screens
	// many runs would.
	dir := filepath.Join(os.TempDir(), "nucleodb-metagenome-example")
	defer os.RemoveAll(dir)
	if err := db.Save(dir); err != nil {
		log.Fatal(err)
	}
	db, err = nucleodb.Open(dir, nucleodb.DefaultScoring())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference database: %d sequences, %.1f Mbases (reopened from %s)\n\n",
		db.NumSequences(), float64(db.TotalBases())/1e6, dir)

	// The read set: half from known organisms (with sequencing errors),
	// half from novel ones.
	const reads = 60
	const readLen = 150
	model := gen.MutationModel{SubstitutionRate: 0.02, InsertionRate: 0.002, DeletionRate: 0.002}
	type read struct {
		seq   []byte
		known bool
	}
	var batch []read
	for i := 0; i < reads/2; i++ {
		src := rng.Intn(len(col.Records))
		frag := gen.Fragment(rng, col.Records[src].Codes, readLen)
		batch = append(batch, read{gen.Mutate(rng, frag, model), true})
	}
	for i := 0; i < reads/2; i++ {
		batch = append(batch, read{gen.RandomSequence(rng, readLen, [4]float64{0.25, 0.25, 0.25, 0.25}, 0), false})
	}

	// Screen. A read "hits" when its best local alignment covers most
	// of the read: ≥ 60% of the perfect score.
	opts := nucleodb.DefaultSearchOptions()
	opts.Limit = 1
	opts.MinCoarseHits = 4
	threshold := readLen * nucleodb.DefaultScoring().Match * 60 / 100

	start := time.Now()
	tp, fp, tn, fn := 0, 0, 0, 0
	for _, rd := range batch {
		rs, err := db.Search(dna.String(rd.seq), opts)
		if err != nil {
			log.Fatal(err)
		}
		hit := len(rs) > 0 && rs[0].Score >= threshold
		switch {
		case hit && rd.known:
			tp++
		case hit && !rd.known:
			fp++
		case !hit && !rd.known:
			tn++
		default:
			fn++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("screened %d reads of %d bases in %v (%.1f reads/s)\n",
		reads, readLen, elapsed.Round(time.Millisecond),
		float64(reads)/elapsed.Seconds())
	fmt.Printf("  known organisms found:     %d/%d\n", tp, tp+fn)
	fmt.Printf("  novel correctly rejected:  %d/%d\n", tn, tn+fp)
	if fp > 0 || fn > 2 {
		fmt.Println("  (screen thresholds may need tuning for your data)")
	}
}
