// Quickstart: build an in-memory nucleotide database from a handful of
// records, search it with a mutated fragment, and print the ranked
// answers. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"nucleodb"
)

func main() {
	// A toy collection: two related 16S-like fragments and unrelated
	// filler. Real collections come from FASTA via BuildFromFasta.
	records := []nucleodb.Record{
		{Desc: "gene-A reference", Sequence: "ACGTTGCAGGCCTTAAGGCCAACGTTGCAGGCCTTAAGGCCAACGTTGCAGGCCTTAAGGCCA"},
		{Desc: "gene-A variant", Sequence: "ACGTTGCAGGCCTAAAGGCCAACGTTGCAGGCATTAAGGCCAACGTTGCAGGCCTTAAGGACA"},
		{Desc: "unrelated-1", Sequence: "TTTTAAAACCCCGGGGTTTTAAAACCCCGGGGTTTTAAAACCCCGGGGTTTTAAAACCCCGGGG"},
		{Desc: "unrelated-2", Sequence: "GAGAGAGATCTCTCTCGAGAGAGATCTCTCTCGAGAGAGATCTCTCTCGAGAGAGATCTCTCT"},
	}

	cfg := nucleodb.DefaultBuildConfig()
	cfg.IntervalLength = 8 // short intervals suit a toy collection
	db, err := nucleodb.Build(records, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("database: %d sequences, %d bases, store %d bytes, index %d bytes\n",
		st.NumSequences, st.TotalBases, st.StoreBytes, st.IndexBytes)

	// The query is a fragment of gene-A with a couple of point changes
	// — exactly the "similar sequence" a biologist would look up.
	query := "ACGTTGCAGGCCTTAAGGCCTACGTTGCAGACCTTAAGG"

	opts := nucleodb.DefaultSearchOptions()
	opts.MinCoarseHits = 1 // tiny collection: accept sparse coarse evidence
	opts.Exact = true      // exact fine alignment, with transcript
	results, err := db.Search(query, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query (%d bases): %d answers\n", len(query), len(results))
	for i, r := range results {
		fmt.Printf("  %d. %-18s score=%-4d identity=%.0f%%  query[%d:%d] ↔ subject[%d:%d]\n",
			i+1, r.Desc, r.Score, 100*r.Identity,
			r.QueryStart, r.QueryEnd, r.SubjectStart, r.SubjectEnd)
	}
}
