// Compression walkthrough: the storage side of the paper. Shows how
// the same collection's footprint changes with the interval length,
// index stopping, and offset storage, and how the direct-coded
// sequence store compares with text. Use it to choose build settings
// for a real collection.
package main

import (
	"fmt"
	"log"

	"nucleodb"
	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
)

func main() {
	col, err := gen.Generate(gen.DefaultConfig(2000, 3))
	if err != nil {
		log.Fatal(err)
	}
	records := make([]nucleodb.Record, len(col.Records))
	asciiBytes := 0
	for i, r := range col.Records {
		records[i] = nucleodb.Record{Desc: r.Desc, Sequence: dna.String(r.Codes)}
		asciiBytes += len(r.Codes)
	}
	fmt.Printf("collection: %d sequences, %.2f Mbases (%.2f MB as text)\n\n",
		len(records), float64(asciiBytes)/1e6, float64(asciiBytes)/1e6)

	fmt.Println("interval length vs index size (offsets stored):")
	fmt.Printf("  %3s  %12s  %12s  %10s\n", "k", "store", "index", "terms")
	for _, k := range []int{6, 8, 9, 10, 12} {
		cfg := nucleodb.DefaultBuildConfig()
		cfg.IntervalLength = k
		db, err := nucleodb.Build(records, cfg)
		if err != nil {
			log.Fatal(err)
		}
		st := db.Stats()
		fmt.Printf("  %3d  %9.2f MB  %9.2f MB  %10d\n",
			k, float64(st.StoreBytes)/1e6, float64(st.IndexBytes)/1e6, st.TermsIndexed)
	}

	fmt.Println("\nindex stopping at k=9 (dropping the most frequent intervals):")
	fmt.Printf("  %6s  %12s  %10s\n", "stop", "index", "stopped")
	for _, stop := range []float64{0, 0.01, 0.05, 0.10} {
		cfg := nucleodb.DefaultBuildConfig()
		cfg.StopFraction = stop
		db, err := nucleodb.Build(records, cfg)
		if err != nil {
			log.Fatal(err)
		}
		st := db.Stats()
		fmt.Printf("  %5.1f%%  %9.2f MB  %10d\n",
			stop*100, float64(st.IndexBytes)/1e6, st.TermsStopped)
	}

	fmt.Println("\noffset storage at k=9 (needed for diagonal coarse ranking):")
	for _, offsets := range []bool{true, false} {
		cfg := nucleodb.DefaultBuildConfig()
		cfg.StoreOffsets = offsets
		db, err := nucleodb.Build(records, cfg)
		if err != nil {
			log.Fatal(err)
		}
		st := db.Stats()
		fmt.Printf("  offsets=%-5v  index %.2f MB\n", offsets, float64(st.IndexBytes)/1e6)
	}

	// The store itself: direct coding ≈ 2 bits/base, lossless.
	cfg := nucleodb.DefaultBuildConfig()
	db, err := nucleodb.Build(records, cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("\nsequence store: %.2f MB = %.3f bits/base (text is 8 bits/base), lossless with wildcards\n",
		float64(st.StoreBytes)/1e6, 8*float64(st.StoreBytes)/float64(st.TotalBases))
}
