package dna

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []byte("ACGTRYSWKMBDHVN")
	codes, err := Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := Decode(codes); !bytes.Equal(got, in) {
		t.Errorf("round trip = %q, want %q", got, in)
	}
}

func TestEncodeLowerCaseAndU(t *testing.T) {
	codes, err := Encode([]byte("acgu"))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	want := []byte{BaseA, BaseC, BaseG, BaseT}
	if !bytes.Equal(codes, want) {
		t.Errorf("Encode(acgu) = %v, want %v", codes, want)
	}
}

func TestEncodeRejectsInvalidLetter(t *testing.T) {
	for _, bad := range []string{"ACGX", "AC-T", "ACG ", "1ACG"} {
		if _, err := Encode([]byte(bad)); err == nil {
			t.Errorf("Encode(%q) succeeded, want error", bad)
		}
	}
}

func TestCodeValidity(t *testing.T) {
	for c := byte(0); c < NumCodes; c++ {
		if !ValidCode(c) {
			t.Errorf("ValidCode(%d) = false", c)
		}
		if IsBase(c) == IsWildcard(c) {
			t.Errorf("code %d is both/neither base and wildcard", c)
		}
	}
	if ValidCode(NumCodes) {
		t.Error("ValidCode(NumCodes) = true")
	}
}

func TestComplementInvolution(t *testing.T) {
	for c := byte(0); c < NumCodes; c++ {
		if got := Complement(Complement(c)); got != c {
			t.Errorf("Complement(Complement(%c)) = %c", Letter(c), Letter(got))
		}
	}
}

func TestComplementBases(t *testing.T) {
	pairs := map[byte]byte{BaseA: BaseT, BaseC: BaseG}
	for a, b := range pairs {
		if Complement(a) != b || Complement(b) != a {
			t.Errorf("complement pair %c/%c broken", Letter(a), Letter(b))
		}
	}
}

func TestReverseComplement(t *testing.T) {
	seq := MustEncode("AACGT")
	want := "ACGTT"
	if got := String(ReverseComplement(seq)); got != want {
		t.Errorf("ReverseComplement(AACGT) = %s, want %s", got, want)
	}
	// Involution.
	if got := String(ReverseComplement(ReverseComplement(seq))); got != "AACGT" {
		t.Errorf("double reverse complement = %s", got)
	}
}

func TestMatchesWildcards(t *testing.T) {
	cases := []struct {
		a, b byte
		want bool
	}{
		{BaseA, BaseA, true},
		{BaseA, BaseC, false},
		{WildN, BaseA, true},
		{WildN, BaseT, true},
		{WildR, BaseA, true},
		{WildR, BaseG, true},
		{WildR, BaseC, false},
		{WildR, WildY, false}, // disjoint sets A|G vs C|T
		{WildR, WildW, true},  // share A
		{WildB, BaseA, false},
	}
	for _, c := range cases {
		if got := Matches(c.a, c.b); got != c.want {
			t.Errorf("Matches(%c,%c) = %v, want %v", Letter(c.a), Letter(c.b), got, c.want)
		}
		if got := Matches(c.b, c.a); got != c.want {
			t.Errorf("Matches(%c,%c) not symmetric", Letter(c.b), Letter(c.a))
		}
	}
}

func TestCanonicalBaseInSet(t *testing.T) {
	for c := byte(0); c < NumCodes; c++ {
		b := CanonicalBase(c)
		if !IsBase(b) {
			t.Fatalf("CanonicalBase(%c) = %d, not a base", Letter(c), b)
		}
		if !Matches(c, b) {
			t.Errorf("CanonicalBase(%c) = %c not in ambiguity set", Letter(c), Letter(b))
		}
	}
}

func TestSubstituteWildcards(t *testing.T) {
	seq := MustEncode("ANGT")
	out := SubstituteWildcards(seq)
	if CountWildcards(out) != 0 {
		t.Errorf("SubstituteWildcards left wildcards: %s", String(out))
	}
	if out[0] != BaseA || out[2] != BaseG || out[3] != BaseT {
		t.Errorf("SubstituteWildcards changed concrete bases: %s", String(out))
	}
}

func TestCountWildcards(t *testing.T) {
	if got := CountWildcards(MustEncode("ACGT")); got != 0 {
		t.Errorf("CountWildcards(ACGT) = %d", got)
	}
	if got := CountWildcards(MustEncode("ANNRT")); got != 3 {
		t.Errorf("CountWildcards(ANNRT) = %d, want 3", got)
	}
}

// randomCodes produces arbitrary valid code sequences for property tests.
func randomCodes(rng *rand.Rand, n int, wildcards bool) []byte {
	codes := make([]byte, n)
	for i := range codes {
		if wildcards && rng.Intn(10) == 0 {
			codes[i] = byte(NumBases + rng.Intn(NumCodes-NumBases))
		} else {
			codes[i] = byte(rng.Intn(NumBases))
		}
	}
	return codes
}

func TestPropertyEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		codes := randomCodes(rng, int(n), true)
		letters := Decode(codes)
		back, err := Encode(letters)
		if err != nil {
			return false
		}
		return bytes.Equal(back, codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyReverseComplementPreservesWildcardCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint8) bool {
		codes := randomCodes(rng, int(n), true)
		return CountWildcards(ReverseComplement(codes)) == CountWildcards(codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
