package dna

import (
	"encoding/binary"
	"fmt"

	"nucleodb/internal/compress"
)

// DirectCoder implements the authors' direct-coding scheme ("cino") for
// lossless nucleotide storage: the bulk of each sequence is 2-bit packed
// — extremely fast to decode — while the rare IUPAC wildcards are pulled
// out into an exception list of (position gap, wildcard code) pairs,
// Golomb- and gamma-coded. Decompression unpacks the 2-bit stream and
// then patches the exceptions back in, so decode speed stays close to
// raw unpacking while the representation remains lossless.
//
// Layout of an encoded record:
//
//	uvarint  sequence length in bases (n)
//	uvarint  wildcard count (w)
//	uvarint  byte length of the exception block (0 when w = 0)
//	[exception block: gamma(golomb parameter b), then w × (golomb gap, 4-bit code-NumBases)]
//	⌈n/4⌉ bytes of 2-bit packed bases (wildcard slots hold the canonical base)
type DirectCoder struct {
	// scratch buffers reused across calls to avoid per-record allocation.
	w compress.BitWriter
}

// Encode appends the direct coding of the code-form sequence to dst and
// returns the extended slice. Encoding never fails for valid code-form
// input; invalid codes cause a panic, as elsewhere in this package.
func (dc *DirectCoder) Encode(dst []byte, codes []byte) []byte {
	n := len(codes)
	wilds := 0
	for _, c := range codes {
		if !ValidCode(c) {
			panic(fmt.Sprintf("dna: invalid nucleotide code %d", c))
		}
		if IsWildcard(c) {
			wilds++
		}
	}

	var hdr [3 * binary.MaxVarintLen64]byte
	k := binary.PutUvarint(hdr[:], uint64(n))
	k += binary.PutUvarint(hdr[k:], uint64(wilds))

	var exc []byte
	if wilds > 0 {
		dc.w.Reset()
		b := compress.GolombParameter(uint64(n), uint64(wilds))
		compress.PutGamma(&dc.w, b)
		prev := -1
		for i, c := range codes {
			if IsWildcard(c) {
				compress.PutGolomb(&dc.w, uint64(i-prev), b)
				dc.w.WriteBits(uint64(c-NumBases), 4)
				prev = i
			}
		}
		exc = dc.w.Bytes()
	}
	k += binary.PutUvarint(hdr[k:], uint64(len(exc)))

	dst = append(dst, hdr[:k]...)
	dst = append(dst, exc...)

	// 2-bit pack with wildcards canonicalised; the exception list
	// restores them on decode.
	packed, _ := Pack2Lossy(codes)
	return append(dst, packed...)
}

// Decode decodes one direct-coded record from buf, returning the
// code-form sequence and the number of bytes consumed.
func (dc *DirectCoder) Decode(buf []byte) (codes []byte, n int, err error) {
	seqLen, k1 := binary.Uvarint(buf)
	if k1 <= 0 {
		return nil, 0, fmt.Errorf("dna: direct coding: bad sequence length header")
	}
	pos := k1
	wilds, k2 := binary.Uvarint(buf[pos:])
	if k2 <= 0 {
		return nil, 0, fmt.Errorf("dna: direct coding: bad wildcard count header")
	}
	pos += k2
	excLen, k3 := binary.Uvarint(buf[pos:])
	if k3 <= 0 {
		return nil, 0, fmt.Errorf("dna: direct coding: bad exception length header")
	}
	pos += k3
	if uint64(len(buf)-pos) < excLen {
		return nil, 0, fmt.Errorf("dna: direct coding: truncated exception block")
	}
	exc := buf[pos : pos+int(excLen)]
	pos += int(excLen)

	// Bound the decoded length by the bytes actually present before
	// allocating: a corrupt header must not turn ten input bytes into a
	// multi-gigabyte make.
	if seqLen > uint64(len(buf)-pos)*4 {
		return nil, 0, fmt.Errorf("dna: direct coding: sequence length %d exceeds remaining data", seqLen)
	}
	packedLen := PackedLen(int(seqLen))
	if len(buf)-pos < packedLen {
		return nil, 0, fmt.Errorf("dna: direct coding: truncated base data: need %d bytes, have %d", packedLen, len(buf)-pos)
	}
	codes = make([]byte, seqLen)
	Unpack2Into(buf[pos:pos+packedLen], codes)
	pos += packedLen

	if wilds > 0 {
		r := compress.NewBitReader(exc)
		b, err := compress.GetGamma(r)
		if err != nil {
			return nil, 0, fmt.Errorf("dna: direct coding: %w", err)
		}
		at := -1
		for i := uint64(0); i < wilds; i++ {
			gap, err := compress.GetGolomb(r, b)
			if err != nil {
				return nil, 0, fmt.Errorf("dna: direct coding: %w", err)
			}
			code, err := r.ReadBits(4)
			if err != nil {
				return nil, 0, fmt.Errorf("dna: direct coding: %w", err)
			}
			if gap > seqLen {
				return nil, 0, fmt.Errorf("dna: direct coding: wildcard gap %d beyond sequence length %d", gap, seqLen)
			}
			at += int(gap)
			if at >= int(seqLen) {
				return nil, 0, fmt.Errorf("dna: direct coding: wildcard offset %d beyond sequence length %d", at, seqLen)
			}
			wc := byte(code) + NumBases
			if !ValidCode(wc) {
				return nil, 0, fmt.Errorf("dna: direct coding: invalid wildcard code %d", wc)
			}
			codes[at] = wc
		}
	}
	return codes, pos, nil
}

// EncodedLen returns the exact byte length Encode would produce for the
// sequence, without encoding it. Used for the compression experiment's
// bits-per-base accounting.
func (dc *DirectCoder) EncodedLen(codes []byte) int {
	n := len(codes)
	wilds := 0
	excBits := 0
	if CountWildcards(codes) > 0 {
		var positions []int
		for i, c := range codes {
			if IsWildcard(c) {
				positions = append(positions, i)
			}
		}
		wilds = len(positions)
		b := compress.GolombParameter(uint64(n), uint64(wilds))
		excBits = compress.GammaLen(b)
		prev := -1
		for _, p := range positions {
			excBits += compress.GolombLen(uint64(p-prev), b) + 4
			prev = p
		}
	}
	excBytes := (excBits + 7) / 8
	var hdr [3 * binary.MaxVarintLen64]byte
	k := binary.PutUvarint(hdr[:], uint64(n))
	k += binary.PutUvarint(hdr[k:], uint64(wilds))
	k += binary.PutUvarint(hdr[k:], uint64(excBytes))
	return k + excBytes + PackedLen(n)
}
