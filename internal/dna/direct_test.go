package dna

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirectCodingRoundTrip(t *testing.T) {
	var dc DirectCoder
	for _, s := range []string{
		"",
		"A",
		"ACGT",
		"ACGTN",
		"NACGT",
		"NNNNN",
		"GATTACAGATTACAGATTACA",
		"ACGTRYSWKMBDHVNACGT",
	} {
		codes := MustEncode(s)
		enc := dc.Encode(nil, codes)
		got, n, err := dc.Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%s): %v", s, err)
		}
		if n != len(enc) {
			t.Errorf("Decode(%s) consumed %d of %d bytes", s, n, len(enc))
		}
		if !bytes.Equal(got, codes) {
			t.Errorf("round trip %s = %s", s, String(got))
		}
	}
}

func TestDirectCodingLossless(t *testing.T) {
	// The whole point of direct coding: wildcards survive, unlike Pack2Lossy.
	var dc DirectCoder
	codes := MustEncode("ACGNNRYACGT")
	enc := dc.Encode(nil, codes)
	got, _, err := dc.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if CountWildcards(got) != 4 {
		t.Errorf("wildcards lost: %s", String(got))
	}
}

func TestDirectCodingAppends(t *testing.T) {
	var dc DirectCoder
	a := MustEncode("ACGT")
	b := MustEncode("GGNCC")
	buf := dc.Encode(nil, a)
	split := len(buf)
	buf = dc.Encode(buf, b)

	gotA, n, err := dc.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != split {
		t.Fatalf("first record consumed %d bytes, want %d", n, split)
	}
	gotB, _, err := dc.Decode(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, a) || !bytes.Equal(gotB, b) {
		t.Errorf("concatenated records corrupted: %s / %s", String(gotA), String(gotB))
	}
}

func TestDirectCodingEncodedLen(t *testing.T) {
	var dc DirectCoder
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		codes := randomCodes(rng, rng.Intn(500), true)
		enc := dc.Encode(nil, codes)
		if got := dc.EncodedLen(codes); got != len(enc) {
			t.Fatalf("EncodedLen = %d, actual %d (len %d, wild %d)",
				got, len(enc), len(codes), CountWildcards(codes))
		}
	}
}

func TestDirectCodingCompact(t *testing.T) {
	// On realistic data (0.1% wildcards) the encoding must stay near
	// 2 bits/base: headers plus exceptions under 10% overhead at 10kb.
	var dc DirectCoder
	rng := rand.New(rand.NewSource(5))
	codes := make([]byte, 10000)
	for i := range codes {
		if rng.Intn(1000) == 0 {
			codes[i] = WildN
		} else {
			codes[i] = byte(rng.Intn(NumBases))
		}
	}
	enc := dc.Encode(nil, codes)
	bitsPerBase := float64(len(enc)*8) / float64(len(codes))
	if bitsPerBase > 2.2 {
		t.Errorf("direct coding %.3f bits/base, want ≤ 2.2", bitsPerBase)
	}
}

func TestDirectCodingTruncated(t *testing.T) {
	var dc DirectCoder
	enc := dc.Encode(nil, MustEncode("ACGTNACGTNACGT"))
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := dc.Decode(enc[:cut]); err == nil {
			// A prefix that happens to decode as a shorter valid record
			// is acceptable only if it consumed exactly the prefix; the
			// headers make that impossible here except cut=0 length 0.
			got, n, _ := dc.Decode(enc[:cut])
			if n != cut || len(got) != 0 {
				t.Errorf("truncation at %d/%d decoded without error", cut, len(enc))
			}
		}
	}
}

func TestPropertyDirectCodingRoundTrip(t *testing.T) {
	var dc DirectCoder
	rng := rand.New(rand.NewSource(6))
	f := func(n uint16, dense bool) bool {
		codes := randomCodes(rng, int(n%2048), dense)
		enc := dc.Encode(nil, codes)
		got, used, err := dc.Decode(enc)
		return err == nil && used == len(enc) && bytes.Equal(got, codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
