package dna

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFastaReadBasic(t *testing.T) {
	in := ">seq1 first\nACGT\nACGT\n>seq2 second\nGGCC\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Desc != "seq1 first" || String(recs[0].Codes) != "ACGTACGT" {
		t.Errorf("record 0 = %q %s", recs[0].Desc, String(recs[0].Codes))
	}
	if recs[1].Desc != "seq2 second" || String(recs[1].Codes) != "GGCC" {
		t.Errorf("record 1 = %q %s", recs[1].Desc, String(recs[1].Codes))
	}
}

func TestFastaReadBlankLinesAndCase(t *testing.T) {
	in := "\n>mix\nacgt\n\nNRYswkm\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || String(recs[0].Codes) != "ACGTNRYSWKM" {
		t.Fatalf("got %+v", recs)
	}
}

func TestFastaReadErrors(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("ACGT\n")); err == nil {
		t.Error("sequence before header accepted")
	}
	if _, err := ReadAll(strings.NewReader(">s\nACXT\n")); err == nil {
		t.Error("invalid letter accepted")
	}
}

func TestFastaEmptyInput(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from empty input", len(recs))
	}
}

func TestFastaEmptySequenceRecord(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(">empty\n>full\nAC\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if len(recs[0].Codes) != 0 || recs[0].Desc != "empty" {
		t.Errorf("empty record = %+v", recs[0])
	}
}

func TestFastaReaderSequential(t *testing.T) {
	fr := NewFastaReader(strings.NewReader(">a\nAC\n>b\nGT\n"))
	r1, err := fr.Read()
	if err != nil || r1.Desc != "a" {
		t.Fatalf("first read: %v %+v", err, r1)
	}
	r2, err := fr.Read()
	if err != nil || r2.Desc != "b" {
		t.Fatalf("second read: %v %+v", err, r2)
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("third read err = %v, want EOF", err)
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("read after EOF err = %v, want EOF", err)
	}
}

func TestFastaWriteRoundTrip(t *testing.T) {
	recs := []Record{
		{Desc: "one", Codes: MustEncode("ACGTACGTACGTN")},
		{Desc: "two", Codes: MustEncode("GG")},
		{Desc: "empty", Codes: nil},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs, 5); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Desc != recs[i].Desc || !bytes.Equal(got[i].Codes, recs[i].Codes) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestFastaWriteWrapping(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFasta(&buf, []Record{{Desc: "w", Codes: MustEncode("ACGTACGTAC")}}, 4); err != nil {
		t.Fatal(err)
	}
	want := ">w\nACGT\nACGT\nAC\n"
	if buf.String() != want {
		t.Errorf("wrapped output = %q, want %q", buf.String(), want)
	}
}
