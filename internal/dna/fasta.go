package dna

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Record is one FASTA record: a description line (without the leading
// '>') and the sequence in code form.
type Record struct {
	Desc  string
	Codes []byte
}

// FastaReader reads FASTA-format nucleotide records from a stream.
// Sequence lines are concatenated, whitespace is ignored, and letters
// are validated and converted to code form as they are read.
type FastaReader struct {
	s          *bufio.Scanner
	pending    string // description of the next record, if already scanned
	hasPending bool
	line       int
	done       bool
}

// NewFastaReader returns a reader over r.
func NewFastaReader(r io.Reader) *FastaReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &FastaReader{s: s}
}

// Read returns the next record, or io.EOF after the last one.
func (fr *FastaReader) Read() (Record, error) {
	if fr.done {
		return Record{}, io.EOF
	}
	var rec Record
	haveHeader := false
	if fr.hasPending {
		rec.Desc = fr.pending
		fr.pending, fr.hasPending = "", false
		haveHeader = true
	}
	for fr.s.Scan() {
		fr.line++
		line := bytes.TrimSpace(fr.s.Bytes())
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			desc := string(bytes.TrimSpace(line[1:]))
			if !haveHeader {
				rec.Desc = desc
				haveHeader = true
				continue
			}
			fr.pending, fr.hasPending = desc, true
			return rec, nil
		}
		if !haveHeader {
			return Record{}, fmt.Errorf("dna: fasta line %d: sequence data before first header", fr.line)
		}
		for _, b := range line {
			c, ok := Code(b)
			if !ok {
				return Record{}, fmt.Errorf("dna: fasta line %d: invalid nucleotide letter %q", fr.line, b)
			}
			rec.Codes = append(rec.Codes, c)
		}
	}
	if err := fr.s.Err(); err != nil {
		return Record{}, fmt.Errorf("dna: fasta read: %w", err)
	}
	fr.done = true
	if !haveHeader {
		return Record{}, io.EOF
	}
	return rec, nil
}

// ReadAll reads every record from r.
func ReadAll(r io.Reader) ([]Record, error) {
	fr := NewFastaReader(r)
	var recs []Record
	for {
		rec, err := fr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}

// WriteFasta writes records to w in FASTA format with lines wrapped at
// width bases (a width ≤ 0 selects the conventional 70).
func WriteFasta(w io.Writer, recs []Record, width int) error {
	if width <= 0 {
		width = 70
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Desc); err != nil {
			return err
		}
		letters := Decode(rec.Codes)
		for start := 0; start < len(letters); start += width {
			end := start + width
			if end > len(letters) {
				end = len(letters)
			}
			if _, err := bw.Write(letters[start:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
