package dna

import "fmt"

// Pack2 packs a code-form sequence of unambiguous bases into 2 bits per
// base, four bases per byte, first base in the low-order bits. It
// returns an error if the sequence contains a wildcard: 2-bit packing is
// lossy for wildcards, which is exactly the problem the direct-coding
// scheme (DirectCoder) solves.
func Pack2(codes []byte) ([]byte, error) {
	packed := make([]byte, (len(codes)+3)/4)
	for i, c := range codes {
		if !IsBase(c) {
			if !ValidCode(c) {
				return nil, fmt.Errorf("dna: invalid nucleotide code %d at position %d", c, i)
			}
			return nil, fmt.Errorf("dna: cannot 2-bit pack wildcard %q at position %d", Letter(c), i)
		}
		packed[i>>2] |= c << uint((i&3)*2)
	}
	return packed, nil
}

// Pack2Lossy packs like Pack2 but silently canonicalises wildcards to a
// base in their ambiguity set. The returned count is the number of
// wildcards that were substituted.
func Pack2Lossy(codes []byte) (packed []byte, substituted int) {
	packed = make([]byte, (len(codes)+3)/4)
	for i, c := range codes {
		if !IsBase(c) {
			c = CanonicalBase(c)
			substituted++
		}
		packed[i>>2] |= c << uint((i&3)*2)
	}
	return packed, substituted
}

// Unpack2 expands a 2-bit packed buffer back into n base codes.
// It panics if packed is too short for n bases; the packed form carries
// no length of its own, so the caller owns the length bookkeeping.
func Unpack2(packed []byte, n int) []byte {
	if need := (n + 3) / 4; len(packed) < need {
		panic(fmt.Sprintf("dna: unpack of %d bases needs %d bytes, have %d", n, need, len(packed)))
	}
	codes := make([]byte, n)
	Unpack2Into(packed, codes)
	return codes
}

// Unpack2Into decodes len(dst) bases from packed into dst, avoiding an
// allocation. It is the hot path for retrieving stored sequences.
//
//cafe:hotpath
func Unpack2Into(packed []byte, dst []byte) {
	n := len(dst)
	// Decode four bases per input byte for the bulk of the buffer.
	full := n / 4
	for i := 0; i < full; i++ {
		b := packed[i]
		dst[i*4] = b & 3
		dst[i*4+1] = (b >> 2) & 3
		dst[i*4+2] = (b >> 4) & 3
		dst[i*4+3] = (b >> 6) & 3
	}
	for i := full * 4; i < n; i++ {
		dst[i] = (packed[i>>2] >> uint((i&3)*2)) & 3
	}
}

// Base2 reads the base at position i of a 2-bit packed buffer without
// unpacking the rest.
//
//cafe:hotpath
func Base2(packed []byte, i int) byte {
	return (packed[i>>2] >> uint((i&3)*2)) & 3
}

// PackedLen returns the number of bytes needed to 2-bit pack n bases.
func PackedLen(n int) int { return (n + 3) / 4 }
