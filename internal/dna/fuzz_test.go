package dna

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDirectDecode feeds arbitrary bytes to the direct-coding decoder:
// it must never panic or hang, and anything it accepts must re-encode
// to a decodable record.
func FuzzDirectDecode(f *testing.F) {
	var dc DirectCoder
	f.Add([]byte{})
	f.Add(dc.Encode(nil, MustEncode("ACGT")))
	f.Add(dc.Encode(nil, MustEncode("ACGTNRYACGT")))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		var coder DirectCoder
		codes, n, err := coder.Decode(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		for _, c := range codes {
			if !ValidCode(c) {
				t.Fatalf("decoder produced invalid code %d", c)
			}
		}
		// Round-trip whatever was accepted.
		re := coder.Encode(nil, codes)
		back, _, err := coder.Decode(re)
		if err != nil || !bytes.Equal(back, codes) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

// FuzzDirectRoundTrip fuzzes the encode side with arbitrary valid
// sequences derived from the input bytes.
func FuzzDirectRoundTrip(f *testing.F) {
	f.Add([]byte("ACGT"), true)
	f.Add([]byte{}, false)
	f.Add([]byte("the quick brown fox"), true)
	f.Fuzz(func(t *testing.T, raw []byte, wild bool) {
		codes := make([]byte, len(raw))
		for i, b := range raw {
			if wild {
				codes[i] = b % NumCodes
			} else {
				codes[i] = b % NumBases
			}
		}
		var coder DirectCoder
		enc := coder.Encode(nil, codes)
		if got := coder.EncodedLen(codes); got != len(enc) {
			t.Fatalf("EncodedLen %d, actual %d", got, len(enc))
		}
		back, n, err := coder.Decode(enc)
		if err != nil || n != len(enc) || !bytes.Equal(back, codes) {
			t.Fatalf("round trip failed: err=%v n=%d/%d", err, n, len(enc))
		}
	})
}

// FuzzFasta feeds arbitrary text to the FASTA reader: it must never
// panic, and accepted records must survive a write/read round trip.
func FuzzFasta(f *testing.F) {
	f.Add(">a\nACGT\n")
	f.Add(">x desc here\nacgtn\nACGT\n>y\n\n")
	f.Add("")
	f.Add(">\n")
	f.Fuzz(func(t *testing.T, text string) {
		recs, err := ReadAll(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFasta(&buf, recs, 60); err != nil {
			t.Fatalf("write of accepted records failed: %v", err)
		}
		back, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip %d → %d records", len(recs), len(back))
		}
		for i := range recs {
			if !bytes.Equal(back[i].Codes, recs[i].Codes) {
				t.Fatalf("record %d sequence changed", i)
			}
		}
	})
}
