package dna

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPack2RoundTrip(t *testing.T) {
	for _, s := range []string{"", "A", "AC", "ACG", "ACGT", "ACGTA", "TTTTTTTTT", "GATTACA"} {
		codes := MustEncode(s)
		packed, err := Pack2(codes)
		if err != nil {
			t.Fatalf("Pack2(%s): %v", s, err)
		}
		if len(packed) != PackedLen(len(codes)) {
			t.Errorf("Pack2(%s) length = %d, want %d", s, len(packed), PackedLen(len(codes)))
		}
		got := Unpack2(packed, len(codes))
		if !bytes.Equal(got, codes) {
			t.Errorf("round trip %s = %s", s, String(got))
		}
	}
}

func TestPack2RejectsWildcards(t *testing.T) {
	if _, err := Pack2(MustEncode("ACNT")); err == nil {
		t.Error("Pack2 accepted a wildcard")
	}
}

func TestPack2Lossy(t *testing.T) {
	packed, subs := Pack2Lossy(MustEncode("ANGT"))
	if subs != 1 {
		t.Errorf("substituted = %d, want 1", subs)
	}
	got := Unpack2(packed, 4)
	if got[0] != BaseA || got[2] != BaseG || got[3] != BaseT {
		t.Errorf("lossy pack corrupted concrete bases: %s", String(got))
	}
	if !IsBase(got[1]) {
		t.Errorf("wildcard slot not a base: %d", got[1])
	}
}

func TestBase2MatchesUnpack(t *testing.T) {
	codes := MustEncode("GATTACAGATTACA")
	packed, err := Pack2(codes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes {
		if got := Base2(packed, i); got != codes[i] {
			t.Errorf("Base2(%d) = %d, want %d", i, got, codes[i])
		}
	}
}

func TestUnpack2IntoPartial(t *testing.T) {
	codes := MustEncode("ACGTACG") // 7 bases: exercises the tail loop
	packed, err := Pack2(codes)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 7)
	Unpack2Into(packed, dst)
	if !bytes.Equal(dst, codes) {
		t.Errorf("Unpack2Into = %s, want %s", String(dst), String(codes))
	}
}

func TestUnpack2PanicsWhenShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unpack2 did not panic on short buffer")
		}
	}()
	Unpack2([]byte{0}, 5)
}

func TestPropertyPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint16) bool {
		codes := randomCodes(rng, int(n%4096), false)
		packed, err := Pack2(codes)
		if err != nil {
			return false
		}
		return bytes.Equal(Unpack2(packed, len(codes)), codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPackedLen(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 4: 1, 5: 2, 8: 2, 9: 3}
	for n, want := range cases {
		if got := PackedLen(n); got != want {
			t.Errorf("PackedLen(%d) = %d, want %d", n, got, want)
		}
	}
}
