// Package dna implements the nucleotide alphabet underlying the whole
// system: base codes, IUPAC wildcard handling, validation, reverse
// complement, 2-bit packing, the direct-coding compression scheme, and
// FASTA input/output.
//
// Throughout the package a sequence in "letter" form is a []byte of
// upper- or lower-case IUPAC nucleotide letters. A sequence in "code"
// form is a []byte where each element is one of the Base* or Wild*
// constants below. Code form is what the rest of the system operates on.
package dna

import (
	"fmt"
)

// Base codes for the four unambiguous nucleotides. These values are the
// 2-bit packed representation and must not be changed: packing, interval
// encoding and the index format all rely on A=0, C=1, G=2, T=3.
const (
	BaseA byte = 0
	BaseC byte = 1
	BaseG byte = 2
	BaseT byte = 3
)

// Wildcard codes for the IUPAC ambiguity letters. They continue the code
// space after the four bases so that a code byte < NumBases is always a
// concrete base and a code byte in [NumBases, NumCodes) is a wildcard.
const (
	WildR byte = 4 + iota // A or G (purine)
	WildY                 // C or T (pyrimidine)
	WildS                 // G or C
	WildW                 // A or T
	WildK                 // G or T
	WildM                 // A or C
	WildB                 // C, G or T
	WildD                 // A, G or T
	WildH                 // A, C or T
	WildV                 // A, C or G
	WildN                 // any base
)

// NumBases is the number of unambiguous base codes.
const NumBases = 4

// NumCodes is the total number of codes: four bases plus eleven IUPAC
// wildcards.
const NumCodes = 15

// letterOf maps a code to its canonical upper-case IUPAC letter.
var letterOf = [NumCodes]byte{
	'A', 'C', 'G', 'T',
	'R', 'Y', 'S', 'W', 'K', 'M', 'B', 'D', 'H', 'V', 'N',
}

// codeOf maps an ASCII letter to its code, or 0xFF for letters outside
// the IUPAC nucleotide alphabet. Both cases are accepted; 'U' (RNA
// uracil) is mapped to T as sequence databanks conventionally do.
var codeOf [256]byte

func init() {
	for i := range codeOf {
		codeOf[i] = 0xFF
	}
	for c := byte(0); c < NumCodes; c++ {
		u := letterOf[c]
		codeOf[u] = c
		codeOf[u+('a'-'A')] = c
	}
	codeOf['U'] = BaseT
	codeOf['u'] = BaseT
}

// complementOf maps each code to the code of its Watson–Crick complement.
// Wildcards complement to the wildcard matching the complementary base
// set (e.g. R = A|G complements to Y = T|C).
var complementOf = [NumCodes]byte{
	BaseT, BaseG, BaseC, BaseA,
	WildY, WildR, WildS, WildW, WildM, WildK, WildV, WildH, WildD, WildB,
	WildN,
}

// IsBase reports whether code is one of the four unambiguous bases.
//
//cafe:hotpath
func IsBase(code byte) bool { return code < NumBases }

// IsWildcard reports whether code is an IUPAC ambiguity code.
//
//cafe:hotpath
func IsWildcard(code byte) bool { return code >= NumBases && code < NumCodes }

// ValidCode reports whether code is any valid nucleotide code.
//
//cafe:hotpath
func ValidCode(code byte) bool { return code < NumCodes }

// ValidLetter reports whether the ASCII letter b is a valid IUPAC
// nucleotide letter (either case, including 'U').
func ValidLetter(b byte) bool { return codeOf[b] != 0xFF }

// Letter returns the canonical upper-case IUPAC letter for a code.
// It panics if code is not a valid nucleotide code; codes are internal
// values so an invalid one indicates a programming error, not bad input.
func Letter(code byte) byte {
	if !ValidCode(code) {
		panic(fmt.Sprintf("dna: invalid nucleotide code %d", code))
	}
	return letterOf[code]
}

// Code returns the nucleotide code for an ASCII letter and whether the
// letter is a valid IUPAC nucleotide.
func Code(letter byte) (code byte, ok bool) {
	c := codeOf[letter]
	return c, c != 0xFF
}

// Complement returns the code of the Watson–Crick complement of code.
// It panics on an invalid code.
func Complement(code byte) byte {
	if !ValidCode(code) {
		panic(fmt.Sprintf("dna: invalid nucleotide code %d", code))
	}
	return complementOf[code]
}

// Encode converts a sequence of IUPAC letters into code form.
// It returns an error naming the offending position if any byte is not a
// valid nucleotide letter.
func Encode(letters []byte) ([]byte, error) {
	codes := make([]byte, len(letters))
	for i, b := range letters {
		c := codeOf[b]
		if c == 0xFF {
			return nil, fmt.Errorf("dna: invalid nucleotide letter %q at position %d", b, i)
		}
		codes[i] = c
	}
	return codes, nil
}

// MustEncode is Encode for trusted literals; it panics on invalid input.
// It is intended for tests and examples.
func MustEncode(letters string) []byte {
	codes, err := Encode([]byte(letters))
	if err != nil {
		panic(err)
	}
	return codes
}

// Decode converts a sequence in code form back to upper-case IUPAC
// letters. It panics on an invalid code.
func Decode(codes []byte) []byte {
	letters := make([]byte, len(codes))
	for i, c := range codes {
		letters[i] = Letter(c)
	}
	return letters
}

// String renders a code-form sequence as a string of IUPAC letters.
func String(codes []byte) string { return string(Decode(codes)) }

// ReverseComplement returns the reverse complement of a code-form
// sequence as a new slice.
func ReverseComplement(codes []byte) []byte {
	rc := make([]byte, len(codes))
	for i, c := range codes {
		rc[len(codes)-1-i] = Complement(c)
	}
	return rc
}

// CountWildcards returns the number of wildcard codes in a code-form
// sequence.
func CountWildcards(codes []byte) int {
	n := 0
	for _, c := range codes {
		if IsWildcard(c) {
			n++
		}
	}
	return n
}

// Matches reports whether two codes are compatible: a wildcard matches
// any base in its ambiguity set, and two bases match only if equal.
// Two wildcards match if their base sets intersect.
//
//cafe:hotpath
func Matches(a, b byte) bool {
	return baseSet(a)&baseSet(b) != 0
}

// baseSet returns the set of bases a code can stand for, as a 4-bit mask
// with bit i set when base code i is in the set.
//
//cafe:hotpath
func baseSet(code byte) uint8 {
	switch code {
	case BaseA:
		return 1 << BaseA
	case BaseC:
		return 1 << BaseC
	case BaseG:
		return 1 << BaseG
	case BaseT:
		return 1 << BaseT
	case WildR:
		return 1<<BaseA | 1<<BaseG
	case WildY:
		return 1<<BaseC | 1<<BaseT
	case WildS:
		return 1<<BaseG | 1<<BaseC
	case WildW:
		return 1<<BaseA | 1<<BaseT
	case WildK:
		return 1<<BaseG | 1<<BaseT
	case WildM:
		return 1<<BaseA | 1<<BaseC
	case WildB:
		return 1<<BaseC | 1<<BaseG | 1<<BaseT
	case WildD:
		return 1<<BaseA | 1<<BaseG | 1<<BaseT
	case WildH:
		return 1<<BaseA | 1<<BaseC | 1<<BaseT
	case WildV:
		return 1<<BaseA | 1<<BaseC | 1<<BaseG
	case WildN:
		return 1<<BaseA | 1<<BaseC | 1<<BaseG | 1<<BaseT
	}
	panic(fmt.Sprintf("dna: invalid nucleotide code %d", code))
}

// SubstituteWildcards returns a copy of the sequence with every wildcard
// replaced by a deterministic member of its ambiguity set (the lowest
// base code in the set). Exhaustive aligners that only understand
// concrete bases use this; the index uses the same rule so coarse and
// fine phases see consistent data.
func SubstituteWildcards(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = CanonicalBase(c)
	}
	return out
}

// CanonicalBase returns code itself for a base, and the lowest base code
// in the ambiguity set for a wildcard.
//
//cafe:hotpath
func CanonicalBase(code byte) byte {
	if IsBase(code) {
		return code
	}
	set := baseSet(code)
	for b := byte(0); b < NumBases; b++ {
		if set&(1<<b) != 0 {
			return b
		}
	}
	panic("dna: empty base set") // unreachable: every code has a non-empty set
}
