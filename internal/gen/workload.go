package gen

import (
	"fmt"
	"math/rand"
)

// Query is one workload query: a sequence plus bookkeeping about how it
// was derived, which evaluation uses to interpret results.
type Query struct {
	// Name labels the query in reports.
	Name string
	// Codes is the query sequence in code form.
	Codes []byte
	// SourceRecord is the collection record the query was derived from,
	// or -1 for a random (negative-control) query.
	SourceRecord int
	// Family is the family id of the source record, or -1.
	Family int
	// Divergence is the mutation divergence applied on top of the
	// source, 0 for exact fragments.
	Divergence float64
}

// WorkloadConfig controls query synthesis.
type WorkloadConfig struct {
	Seed int64
	// NumHomologous queries are mutated fragments of family members —
	// these have genuine similar sequences in the collection.
	NumHomologous int
	// NumRandom queries are fresh random sequences — negative controls
	// that should rank nothing highly.
	NumRandom int
	// QueryLength is the fragment length drawn from source records.
	QueryLength int
	// Divergence is the mutation rate applied to homologous queries.
	Divergence float64
}

// DefaultWorkload returns the workload used by the experiment suite:
// mostly homologous queries with a few negative controls.
func DefaultWorkload(seed int64) WorkloadConfig {
	return WorkloadConfig{
		Seed:          seed,
		NumHomologous: 40,
		NumRandom:     10,
		QueryLength:   400,
		Divergence:    0.10,
	}
}

// MakeWorkload derives a query set from a collection. Homologous
// queries are drawn from records that belong to families so every such
// query has at least one true homolog besides its own source.
func MakeWorkload(col *Collection, cfg WorkloadConfig) ([]Query, error) {
	if cfg.NumHomologous < 0 || cfg.NumRandom < 0 || cfg.QueryLength <= 0 {
		return nil, fmt.Errorf("gen: invalid workload config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var familyMembers []int
	for i, f := range col.FamilyOf {
		if f >= 0 {
			familyMembers = append(familyMembers, i)
		}
	}
	if cfg.NumHomologous > 0 && len(familyMembers) == 0 {
		return nil, fmt.Errorf("gen: workload wants homologous queries but collection has no families")
	}

	queries := make([]Query, 0, cfg.NumHomologous+cfg.NumRandom)
	model := MutationModel{
		SubstitutionRate: cfg.Divergence * 0.8,
		InsertionRate:    cfg.Divergence * 0.1,
		DeletionRate:     cfg.Divergence * 0.1,
	}
	for i := 0; i < cfg.NumHomologous; i++ {
		src := familyMembers[rng.Intn(len(familyMembers))]
		frag := Fragment(rng, col.Records[src].Codes, cfg.QueryLength)
		q := frag
		if cfg.Divergence > 0 {
			q = Mutate(rng, frag, model)
		}
		queries = append(queries, Query{
			Name:         fmt.Sprintf("hom%03d(src=%d)", i, src),
			Codes:        q,
			SourceRecord: src,
			Family:       col.FamilyOf[src],
			Divergence:   cfg.Divergence,
		})
	}
	for i := 0; i < cfg.NumRandom; i++ {
		queries = append(queries, Query{
			Name:         fmt.Sprintf("rnd%03d", i),
			Codes:        RandomSequence(rng, cfg.QueryLength, [4]float64{0.25, 0.25, 0.25, 0.25}, 0),
			SourceRecord: -1,
			Family:       -1,
		})
	}
	return queries, nil
}

// FamilyRecords returns the record ids in the given family, which
// evaluation treats as the relevant set for queries from that family.
func (c *Collection) FamilyRecords(family int) []int {
	if family < 0 {
		return nil
	}
	var ids []int
	for i, f := range c.FamilyOf {
		if f == family {
			ids = append(ids, i)
		}
	}
	return ids
}
