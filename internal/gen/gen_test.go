package gen

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"nucleodb/internal/dna"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(50, 42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Error("same seed produced different collections")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig(200, 1)
	col, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Records) != 200 || len(col.FamilyOf) != 200 {
		t.Fatalf("got %d records, %d family entries", len(col.Records), len(col.FamilyOf))
	}
	for i, rec := range col.Records {
		if len(rec.Codes) < cfg.MinLength || len(rec.Codes) > cfg.MaxLength {
			t.Errorf("record %d length %d outside [%d,%d]", i, len(rec.Codes), cfg.MinLength, cfg.MaxLength)
		}
		for _, c := range rec.Codes {
			if !dna.ValidCode(c) {
				t.Fatalf("record %d contains invalid code %d", i, c)
			}
		}
		if rec.Desc == "" {
			t.Errorf("record %d has empty description", i)
		}
	}
}

func TestGenerateFamilies(t *testing.T) {
	cfg := DefaultConfig(100, 7)
	col, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	famSize := map[int]int{}
	for _, f := range col.FamilyOf {
		if f >= 0 {
			famSize[f]++
		}
	}
	if len(famSize) == 0 {
		t.Fatal("no families generated")
	}
	multi := 0
	for _, n := range famSize {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no family has more than one member")
	}
}

func TestFamilyRecords(t *testing.T) {
	col := &Collection{FamilyOf: []int{0, 0, 1, -1, 0}}
	if got := col.FamilyRecords(0); !reflect.DeepEqual(got, []int{0, 1, 4}) {
		t.Errorf("FamilyRecords(0) = %v", got)
	}
	if got := col.FamilyRecords(-1); got != nil {
		t.Errorf("FamilyRecords(-1) = %v", got)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{NumSequences: 0},
		func() Config { c := DefaultConfig(10, 0); c.MeanLength = -1; return c }(),
		func() Config { c := DefaultConfig(10, 0); c.BaseFreq = [4]float64{1, 1, 1, 1}; return c }(),
		func() Config { c := DefaultConfig(10, 0); c.WildcardRate = 0.9; return c }(),
		func() Config { c := DefaultConfig(10, 0); c.MaxDivergence = 2; return c }(),
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBaseComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	freq := [4]float64{0.4, 0.1, 0.1, 0.4}
	seq := RandomSequence(rng, 100000, freq, 0)
	var counts [4]int
	for _, c := range seq {
		counts[c]++
	}
	for b, want := range freq {
		got := float64(counts[b]) / float64(len(seq))
		if math.Abs(got-want) > 0.02 {
			t.Errorf("base %d frequency %.3f, want %.3f", b, got, want)
		}
	}
}

func TestWildcardRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := RandomSequence(rng, 100000, [4]float64{0.25, 0.25, 0.25, 0.25}, 0.01)
	rate := float64(dna.CountWildcards(seq)) / float64(len(seq))
	if math.Abs(rate-0.01) > 0.005 {
		t.Errorf("wildcard rate %.4f, want ≈0.01", rate)
	}
}

func TestMutateRates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := RandomSequence(rng, 20000, [4]float64{0.25, 0.25, 0.25, 0.25}, 0)
	m := MutationModel{SubstitutionRate: 0.1}
	out := Mutate(rng, src, m)
	if len(out) != len(src) {
		t.Fatalf("substitution-only mutation changed length %d → %d", len(src), len(out))
	}
	diff := 0
	for i := range src {
		if src[i] != out[i] {
			diff++
		}
	}
	rate := float64(diff) / float64(len(src))
	if math.Abs(rate-0.1) > 0.02 {
		t.Errorf("substitution rate %.3f, want ≈0.1", rate)
	}
}

func TestMutateIndels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := RandomSequence(rng, 10000, [4]float64{0.25, 0.25, 0.25, 0.25}, 0)
	ins := Mutate(rng, src, MutationModel{InsertionRate: 0.05})
	if len(ins) <= len(src) {
		t.Errorf("insertion-only mutation did not grow: %d → %d", len(src), len(ins))
	}
	del := Mutate(rng, src, MutationModel{DeletionRate: 0.05})
	if len(del) >= len(src) {
		t.Errorf("deletion-only mutation did not shrink: %d → %d", len(src), len(del))
	}
}

func TestMutateZeroModelIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := RandomSequence(rng, 1000, [4]float64{0.25, 0.25, 0.25, 0.25}, 0.01)
	out := Mutate(rng, src, MutationModel{})
	if !reflect.DeepEqual(out, src) {
		t.Error("zero mutation model altered the sequence")
	}
}

func TestSubstituteAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for b := byte(0); b < dna.NumBases; b++ {
		for i := 0; i < 100; i++ {
			if got := substitute(rng, b); got == b {
				t.Fatalf("substitute(%d) returned the same base", b)
			}
		}
	}
}

func TestFragment(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := RandomSequence(rng, 1000, [4]float64{0.25, 0.25, 0.25, 0.25}, 0)
	frag := Fragment(rng, src, 100)
	if len(frag) != 100 {
		t.Fatalf("fragment length %d, want 100", len(frag))
	}
	// The fragment must be a contiguous substring of src.
	found := false
	for start := 0; start+100 <= len(src); start++ {
		if reflect.DeepEqual(src[start:start+100], frag) {
			found = true
			break
		}
	}
	if !found {
		t.Error("fragment is not a substring of its source")
	}
	// Short source: whole copy.
	short := src[:10]
	whole := Fragment(rng, short, 100)
	if !reflect.DeepEqual(whole, short) {
		t.Error("fragment of short source is not the whole source")
	}
	whole[0] = (whole[0] + 1) % dna.NumBases
	if short[0] == whole[0] {
		t.Error("fragment aliases its source")
	}
}

func TestEmbedDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	uniform := [4]float64{0.25, 0.25, 0.25, 0.25}
	src := RandomSequence(rng, 500, uniform, 0)
	out := EmbedDomain(rng, src, 100, 150, 600, MutationModel{})
	if len(out) != 600 {
		t.Fatalf("length %d, want 600", len(out))
	}
	// With a zero mutation model the exact domain must appear in out.
	domain := src[100:250]
	found := false
	for start := 0; start+len(domain) <= len(out); start++ {
		if reflect.DeepEqual(out[start:start+len(domain)], domain) {
			found = true
			break
		}
	}
	if !found {
		t.Error("unmutated domain not embedded verbatim")
	}
}

func TestEmbedDomainClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	uniform := [4]float64{0.25, 0.25, 0.25, 0.25}
	src := RandomSequence(rng, 100, uniform, 0)
	// Domain extending past the source is clamped; total shorter than
	// the domain is raised.
	out := EmbedDomain(rng, src, 80, 50, 10, MutationModel{})
	if len(out) != 20 {
		t.Errorf("clamped output length %d, want 20", len(out))
	}
	out = EmbedDomain(rng, src, -5, 30, 50, MutationModel{})
	if len(out) != 50 {
		t.Errorf("negative-start output length %d, want 50", len(out))
	}
}

func TestMakeWorkload(t *testing.T) {
	col, err := Generate(DefaultConfig(100, 9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWorkload(10)
	qs, err := MakeWorkload(col, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != cfg.NumHomologous+cfg.NumRandom {
		t.Fatalf("got %d queries, want %d", len(qs), cfg.NumHomologous+cfg.NumRandom)
	}
	hom, rnd := 0, 0
	for _, q := range qs {
		if q.SourceRecord >= 0 {
			hom++
			if q.Family < 0 {
				t.Errorf("homologous query %s has no family", q.Name)
			}
			if col.FamilyOf[q.SourceRecord] != q.Family {
				t.Errorf("query %s family mismatch", q.Name)
			}
		} else {
			rnd++
		}
		if len(q.Codes) == 0 {
			t.Errorf("query %s is empty", q.Name)
		}
	}
	if hom != cfg.NumHomologous || rnd != cfg.NumRandom {
		t.Errorf("query mix %d/%d, want %d/%d", hom, rnd, cfg.NumHomologous, cfg.NumRandom)
	}
}

func TestMakeWorkloadNoFamilies(t *testing.T) {
	cfg := DefaultConfig(10, 11)
	cfg.FamilyCount = 0
	col, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MakeWorkload(col, DefaultWorkload(1)); err == nil {
		t.Error("workload without families accepted")
	}
	w := DefaultWorkload(1)
	w.NumHomologous = 0
	if _, err := MakeWorkload(col, w); err != nil {
		t.Errorf("random-only workload rejected: %v", err)
	}
}

func TestTotalBases(t *testing.T) {
	col := &Collection{Records: []dna.Record{
		{Codes: make([]byte, 10)},
		{Codes: make([]byte, 5)},
	}}
	if got := col.TotalBases(); got != 15 {
		t.Errorf("TotalBases = %d, want 15", got)
	}
}
