package gen

import (
	"math/rand"

	"nucleodb/internal/dna"
)

// MutationModel parameterises the evolutionary model used to derive
// homologous sequences: independent per-base substitution, insertion
// and deletion events. Rates are probabilities per base and must each
// be in [0,1).
type MutationModel struct {
	SubstitutionRate float64
	InsertionRate    float64
	DeletionRate     float64
}

// Divergence returns the total per-base event rate.
func (m MutationModel) Divergence() float64 {
	return m.SubstitutionRate + m.InsertionRate + m.DeletionRate
}

// Mutate derives a new sequence from src under the model. Wildcards in
// the source are preserved unless hit by an event; substitutions always
// change the base (a substitution that drew the same base redraws).
func Mutate(rng *rand.Rand, src []byte, m MutationModel) []byte {
	out := make([]byte, 0, len(src)+len(src)/8)
	for _, c := range src {
		// Insertion before this base.
		for m.InsertionRate > 0 && rng.Float64() < m.InsertionRate {
			out = append(out, byte(rng.Intn(dna.NumBases)))
		}
		if m.DeletionRate > 0 && rng.Float64() < m.DeletionRate {
			continue
		}
		if m.SubstitutionRate > 0 && rng.Float64() < m.SubstitutionRate {
			out = append(out, substitute(rng, c))
			continue
		}
		out = append(out, c)
	}
	// Possible insertion at the tail.
	for m.InsertionRate > 0 && rng.Float64() < m.InsertionRate {
		out = append(out, byte(rng.Intn(dna.NumBases)))
	}
	return out
}

// substitute draws a base different from c (for a wildcard, any base).
func substitute(rng *rand.Rand, c byte) byte {
	if !dna.IsBase(c) {
		return byte(rng.Intn(dna.NumBases))
	}
	b := byte(rng.Intn(dna.NumBases - 1))
	if b >= c {
		b++
	}
	return b
}

// EmbedDomain derives a sequence that shares only a conserved region
// with src: the domain src[domainStart:domainStart+domainLen] is
// mutated under the model and embedded at a random position inside
// otherwise random sequence of totalLen bases. This is the
// partial-homology structure — shared functional domains inside
// otherwise unrelated sequences — for which local (rather than global)
// alignment is the right answer semantics.
func EmbedDomain(rng *rand.Rand, src []byte, domainStart, domainLen, totalLen int, m MutationModel) []byte {
	if domainStart < 0 {
		domainStart = 0
	}
	if domainStart+domainLen > len(src) {
		domainLen = len(src) - domainStart
	}
	domain := Mutate(rng, src[domainStart:domainStart+domainLen], m)
	if totalLen < len(domain) {
		totalLen = len(domain)
	}
	out := make([]byte, 0, totalLen)
	pad := totalLen - len(domain)
	before := 0
	if pad > 0 {
		before = rng.Intn(pad + 1)
	}
	uniform := [4]float64{0.25, 0.25, 0.25, 0.25}
	out = append(out, RandomSequence(rng, before, uniform, 0)...)
	out = append(out, domain...)
	out = append(out, RandomSequence(rng, pad-before, uniform, 0)...)
	return out
}

// Fragment extracts a random contiguous fragment of the given length
// from src, as query workloads do when simulating partial sequencing
// reads. If src is shorter than length the whole sequence is returned.
func Fragment(rng *rand.Rand, src []byte, length int) []byte {
	if len(src) <= length {
		out := make([]byte, len(src))
		copy(out, src)
		return out
	}
	start := rng.Intn(len(src) - length + 1)
	out := make([]byte, length)
	copy(out, src[start:start+length])
	return out
}
