// Package gen generates synthetic nucleotide collections and query
// workloads. It stands in for the GenBank data the paper evaluated on
// (see DESIGN.md): it reproduces the statistical properties the index
// and search behaviour depend on — a four-letter alphabet with
// GenBank-like base composition, a skewed (log-normal) sequence-length
// distribution, a low rate of IUPAC wildcards, and, crucially,
// homologous families produced by an explicit evolutionary mutation
// model so that queries have genuine local-alignment answers to find.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"nucleodb/internal/dna"
)

// Config controls collection synthesis. The zero value is not valid;
// use DefaultConfig and adjust.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64

	// NumSequences is the number of records to produce.
	NumSequences int

	// MeanLength and SigmaLength parameterise the log-normal length
	// distribution: length = exp(N(ln MeanLength − σ²/2, σ)).
	MeanLength  int
	SigmaLength float64

	// MinLength and MaxLength clamp generated lengths.
	MinLength int
	MaxLength int

	// BaseFreq is the stationary base composition in A,C,G,T order.
	// It must sum to approximately 1.
	BaseFreq [4]float64

	// WildcardRate is the per-base probability of an IUPAC wildcard
	// (almost always N in real data; here N with probability 0.9 and a
	// random other wildcard otherwise).
	WildcardRate float64

	// Families controls homologous-family synthesis: FamilyCount root
	// sequences each spawn FamilySize−1 additional members derived by
	// the mutation model at divergence drawn uniformly from
	// [MinDivergence, MaxDivergence]. Family members replace ordinary
	// records, so NumSequences is unchanged.
	FamilyCount   int
	FamilySize    int
	MinDivergence float64
	MaxDivergence float64
}

// DefaultConfig returns a GenBank-flavoured configuration for a
// collection of n sequences.
func DefaultConfig(n int, seed int64) Config {
	return Config{
		Seed:         seed,
		NumSequences: n,
		MeanLength:   900, // GenBank-era mean nucleotide record length
		SigmaLength:  0.9,
		MinLength:    60,
		MaxLength:    20000,
		// GenBank nucleotide composition is mildly AT-rich.
		BaseFreq:      [4]float64{0.303, 0.197, 0.199, 0.301},
		WildcardRate:  0.0008,
		FamilyCount:   n / 20,
		FamilySize:    5,
		MinDivergence: 0.05,
		MaxDivergence: 0.35,
	}
}

// Collection is a generated set of records plus the family structure
// used to create it, which evaluation uses as relevance ground truth.
type Collection struct {
	Records []dna.Record
	// FamilyOf[i] is the family id of record i, or -1 for singletons.
	FamilyOf []int
}

// Generate synthesises a collection.
func Generate(cfg Config) (*Collection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	col := &Collection{
		Records:  make([]dna.Record, 0, cfg.NumSequences),
		FamilyOf: make([]int, 0, cfg.NumSequences),
	}

	// Family members first, then singletons to fill.
	fam := 0
	for ; fam < cfg.FamilyCount && len(col.Records) < cfg.NumSequences; fam++ {
		root := RandomSequence(rng, cfg.length(rng), cfg.BaseFreq, cfg.WildcardRate)
		col.add(dna.Record{
			Desc:  fmt.Sprintf("SYN%06d family=%d member=0", len(col.Records), fam),
			Codes: root,
		}, fam)
		for m := 1; m < cfg.FamilySize && len(col.Records) < cfg.NumSequences; m++ {
			div := cfg.MinDivergence + rng.Float64()*(cfg.MaxDivergence-cfg.MinDivergence)
			mut := Mutate(rng, root, MutationModel{
				SubstitutionRate: div * 0.8,
				InsertionRate:    div * 0.1,
				DeletionRate:     div * 0.1,
			})
			col.add(dna.Record{
				Desc:  fmt.Sprintf("SYN%06d family=%d member=%d div=%.2f", len(col.Records), fam, m, div),
				Codes: mut,
			}, fam)
		}
	}
	for len(col.Records) < cfg.NumSequences {
		col.add(dna.Record{
			Desc:  fmt.Sprintf("SYN%06d singleton", len(col.Records)),
			Codes: RandomSequence(rng, cfg.length(rng), cfg.BaseFreq, cfg.WildcardRate),
		}, -1)
	}
	return col, nil
}

func (c *Collection) add(rec dna.Record, family int) {
	c.Records = append(c.Records, rec)
	c.FamilyOf = append(c.FamilyOf, family)
}

// TotalBases returns the number of bases across all records.
func (c *Collection) TotalBases() int {
	n := 0
	for _, r := range c.Records {
		n += len(r.Codes)
	}
	return n
}

func (cfg *Config) validate() error {
	if cfg.NumSequences <= 0 {
		return fmt.Errorf("gen: NumSequences must be positive, got %d", cfg.NumSequences)
	}
	if cfg.MeanLength <= 0 || cfg.MinLength <= 0 || cfg.MaxLength < cfg.MinLength {
		return fmt.Errorf("gen: invalid length configuration mean=%d min=%d max=%d",
			cfg.MeanLength, cfg.MinLength, cfg.MaxLength)
	}
	sum := 0.0
	for _, f := range cfg.BaseFreq {
		if f < 0 {
			return fmt.Errorf("gen: negative base frequency %v", cfg.BaseFreq)
		}
		sum += f
	}
	if math.Abs(sum-1) > 0.01 {
		return fmt.Errorf("gen: base frequencies sum to %.3f, want 1", sum)
	}
	if cfg.WildcardRate < 0 || cfg.WildcardRate > 0.5 {
		return fmt.Errorf("gen: wildcard rate %.3f outside [0,0.5]", cfg.WildcardRate)
	}
	if cfg.FamilyCount < 0 || cfg.FamilySize < 0 {
		return fmt.Errorf("gen: negative family configuration")
	}
	if cfg.MinDivergence < 0 || cfg.MaxDivergence < cfg.MinDivergence || cfg.MaxDivergence > 1 {
		return fmt.Errorf("gen: divergence range [%.2f,%.2f] invalid", cfg.MinDivergence, cfg.MaxDivergence)
	}
	return nil
}

// length draws a log-normal sequence length.
func (cfg *Config) length(rng *rand.Rand) int {
	mu := math.Log(float64(cfg.MeanLength)) - cfg.SigmaLength*cfg.SigmaLength/2
	l := int(math.Exp(rng.NormFloat64()*cfg.SigmaLength + mu))
	if l < cfg.MinLength {
		l = cfg.MinLength
	}
	if l > cfg.MaxLength {
		l = cfg.MaxLength
	}
	return l
}

// RandomSequence draws a sequence of the given length from the base
// composition, with wildcards inserted at wildcardRate.
func RandomSequence(rng *rand.Rand, length int, freq [4]float64, wildcardRate float64) []byte {
	// Cumulative distribution for base sampling.
	var cum [4]float64
	acc := 0.0
	for i, f := range freq {
		acc += f
		cum[i] = acc
	}
	codes := make([]byte, length)
	for i := range codes {
		if wildcardRate > 0 && rng.Float64() < wildcardRate {
			codes[i] = randomWildcard(rng)
			continue
		}
		r := rng.Float64() * acc
		switch {
		case r < cum[0]:
			codes[i] = dna.BaseA
		case r < cum[1]:
			codes[i] = dna.BaseC
		case r < cum[2]:
			codes[i] = dna.BaseG
		default:
			codes[i] = dna.BaseT
		}
	}
	return codes
}

func randomWildcard(rng *rand.Rand) byte {
	if rng.Float64() < 0.9 {
		return dna.WildN
	}
	return dna.WildR + byte(rng.Intn(int(dna.WildN-dna.WildR)))
}
