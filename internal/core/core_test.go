package core

import (
	"math/rand"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/baseline"
	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
	"nucleodb/internal/index"
)

// fixture bundles a synthetic store, its index, a homologous query and
// the relevant family set.
type fixture struct {
	store  *db.Store
	idx    *index.Index
	query  []byte
	family map[int]bool
}

func makeFixture(t *testing.T, seed int64, opts index.Options) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var store db.Store
	family := map[int]bool{}
	uniform := [4]float64{0.25, 0.25, 0.25, 0.25}

	root := gen.RandomSequence(rng, 800, uniform, 0)
	model := gen.MutationModel{SubstitutionRate: 0.06, InsertionRate: 0.01, DeletionRate: 0.01}
	for i := 0; i < 6; i++ {
		id := store.Add("family", gen.Mutate(rng, root, model))
		family[id] = true
	}
	for i := 0; i < 60; i++ {
		store.Add("noise", gen.RandomSequence(rng, 300+rng.Intn(700), uniform, 0))
	}
	idx, err := index.Build(&store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		store:  &store,
		idx:    idx,
		query:  gen.Fragment(rng, root, 250),
		family: family,
	}
}

func newTestSearcher(t *testing.T, f *fixture) *Searcher {
	t.Helper()
	s, err := NewSearcher(f.idx, f.store, align.DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSearchFindsFamily(t *testing.T) {
	f := makeFixture(t, 41, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	for _, mode := range []FineMode{FineFull, FineBanded} {
		opts := DefaultOptions()
		opts.FineMode = mode
		rs, err := s.Search(f.query, opts)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(rs) == 0 {
			t.Fatalf("%v: no results", mode)
		}
		found := 0
		for _, r := range rs[:min(len(rs), len(f.family))] {
			if f.family[r.ID] {
				found++
			}
		}
		if found < len(f.family)-1 {
			t.Errorf("%v: only %d of %d family members in top results", mode, found, len(f.family))
		}
		for i := 1; i < len(rs); i++ {
			if rs[i].Score > rs[i-1].Score {
				t.Fatalf("%v: results not sorted", mode)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSearchMatchesExhaustiveGoldStandard(t *testing.T) {
	// The headline accuracy claim: partitioned search recovers (nearly)
	// the same top answers as the exhaustive Smith–Waterman scan.
	f := makeFixture(t, 42, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()
	opts.FineMode = FineFull // exact fine scores for comparability
	opts.Limit = 10
	got, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	gold := baseline.SWScan(f.store, f.query, align.DefaultScoring(), 0, 10)

	goldTop := map[int]int{}
	for _, r := range gold[:min(5, len(gold))] {
		goldTop[r.ID] = r.Score
	}
	found := 0
	for _, r := range got {
		if want, ok := goldTop[r.ID]; ok {
			found++
			if r.Score != want {
				t.Errorf("id %d: partitioned score %d, exhaustive %d", r.ID, r.Score, want)
			}
		}
	}
	if found < len(goldTop)-1 {
		t.Errorf("partitioned search found %d of top-%d exhaustive answers", found, len(goldTop))
	}
}

func TestCoarseModes(t *testing.T) {
	f := makeFixture(t, 43, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	for _, mode := range []CoarseMode{CoarseDistinct, CoarseTotal, CoarseNormalised, CoarseDiagonal} {
		cands, err := s.Coarse(f.query, mode, 1)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(cands) == 0 {
			t.Fatalf("%v: no candidates", mode)
		}
		for i := 1; i < len(cands); i++ {
			if cands[i].Score > cands[i-1].Score {
				t.Fatalf("%v: candidates not sorted", mode)
			}
		}
		// Family members share most intervals with the query: at least
		// a few must rank in the top 10 under every mode.
		famTop := 0
		for _, c := range cands[:min(10, len(cands))] {
			if f.family[c.ID] {
				famTop++
			}
		}
		if famTop < 3 {
			t.Errorf("%v: only %d family members in coarse top 10", mode, famTop)
		}
	}
}

func TestCoarseDiagonalNeedsOffsets(t *testing.T) {
	f := makeFixture(t, 44, index.Options{K: 9, StoreOffsets: false})
	s := newTestSearcher(t, f)
	if _, err := s.Coarse(f.query, CoarseDiagonal, 1); err == nil {
		t.Error("diagonal mode accepted an offsets-free index")
	}
	// Other modes work without offsets.
	if _, err := s.Coarse(f.query, CoarseDistinct, 1); err != nil {
		t.Errorf("distinct mode on offsets-free index: %v", err)
	}
	// And banded fine search falls back to recomputing diagonals.
	opts := DefaultOptions()
	rs, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Error("no results on offsets-free index")
	}
}

func TestSearchOptionValidation(t *testing.T) {
	f := makeFixture(t, 45, index.Options{K: 9})
	s := newTestSearcher(t, f)
	bad := []Options{
		{},
		{Candidates: 0, MinCoarseHits: 1, FineMode: FineFull},
		{Candidates: 10, MinCoarseHits: 0, FineMode: FineFull},
		{Candidates: 10, MinCoarseHits: 1, FineMode: FineBanded, Band: 0},
		{Candidates: 10, MinCoarseHits: 1, CoarseMode: CoarseMode(9), FineMode: FineFull},
		{Candidates: 10, MinCoarseHits: 1, FineMode: FineMode(9)},
		{Candidates: 10, MinCoarseHits: 1, FineMode: FineFull, MinScore: -1},
	}
	for i, o := range bad {
		if _, err := s.Search(f.query, o); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, o)
		}
	}
}

func TestSearchQueryShorterThanK(t *testing.T) {
	f := makeFixture(t, 46, index.Options{K: 9})
	s := newTestSearcher(t, f)
	if _, err := s.Search(dna.MustEncode("ACGT"), DefaultOptions()); err == nil {
		t.Error("query shorter than K accepted")
	}
}

func TestSearcherMismatchedStore(t *testing.T) {
	f := makeFixture(t, 47, index.Options{K: 9})
	var other db.Store
	other.Add("only", dna.MustEncode("ACGTACGTACGT"))
	if _, err := NewSearcher(f.idx, &other, align.DefaultScoring()); err == nil {
		t.Error("mismatched store accepted")
	}
	if _, err := NewSearcher(f.idx, f.store, align.Scoring{}); err == nil {
		t.Error("invalid scoring accepted")
	}
}

func TestCandidateBudgetBoundsFineWork(t *testing.T) {
	f := makeFixture(t, 48, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()
	opts.Candidates = 3
	opts.Limit = 0
	opts.MinScore = 0
	rs, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) > 3 {
		t.Errorf("budget 3 produced %d results", len(rs))
	}
}

func TestMinCoarseHitsFilters(t *testing.T) {
	f := makeFixture(t, 49, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	loose, err := s.Coarse(f.query, CoarseDistinct, 1)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := s.Coarse(f.query, CoarseDistinct, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) >= len(loose) {
		t.Errorf("minHits filter had no effect: %d vs %d", len(strict), len(loose))
	}
	for _, c := range strict {
		if c.Hits < 10 {
			t.Errorf("candidate %d has %d hits < 10", c.ID, c.Hits)
		}
	}
}

func TestSearcherReuseAcrossQueries(t *testing.T) {
	// Scratch state must fully reset between queries: two different
	// queries run back-to-back give the same results as fresh searchers.
	f := makeFixture(t, 50, index.Options{K: 9, StoreOffsets: true})
	rng := rand.New(rand.NewSource(51))
	q2 := gen.RandomSequence(rng, 200, [4]float64{0.25, 0.25, 0.25, 0.25}, 0)

	shared := newTestSearcher(t, f)
	r1a, err := shared.Search(f.query, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2a, err := shared.Search(q2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fresh1 := newTestSearcher(t, f)
	r1b, err := fresh1.Search(f.query, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fresh2 := newTestSearcher(t, f)
	r2b, err := fresh2.Search(q2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "query1", r1a, r1b)
	assertSameResults(t, "query2", r2a, r2b)
}

func assertSameResults(t *testing.T, label string, a, b []Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			t.Fatalf("%s: result %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

func TestRandomQueryScoresLow(t *testing.T) {
	// Negative control: a random query must not rank anything near a
	// true homolog's score.
	f := makeFixture(t, 52, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	rng := rand.New(rand.NewSource(53))
	noise := gen.RandomSequence(rng, 250, [4]float64{0.25, 0.25, 0.25, 0.25}, 0)

	opts := DefaultOptions()
	opts.MinScore = 0
	homolog, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	random, err := s.Search(noise, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(homolog) == 0 {
		t.Fatal("homologous query found nothing")
	}
	if len(random) > 0 && random[0].Score*2 >= homolog[0].Score {
		t.Errorf("random query top score %d too close to homolog top %d",
			random[0].Score, homolog[0].Score)
	}
}

func TestModeStrings(t *testing.T) {
	if CoarseDistinct.String() != "distinct" || CoarseDiagonal.String() != "diagonal" {
		t.Error("coarse mode labels wrong")
	}
	if FineFull.String() != "full" || FineBanded.String() != "banded" {
		t.Error("fine mode labels wrong")
	}
	if CoarseMode(42).String() == "" || FineMode(42).String() == "" {
		t.Error("unknown modes must still render")
	}
}
