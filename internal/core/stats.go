package core

import "time"

// SearchStats counts the work one Search performed, stage by stage.
// Pass a *SearchStats to SearchWithStats to collect it; collection is
// allocation-free (the struct lives wherever the caller put it, the
// pipeline only increments fields) and provably non-perturbing — the
// equivalence property test locks in that an instrumented search
// returns results identical to an uninstrumented one.
//
// The counters map directly onto the paper's cost model: the coarse
// phase pays PostingsDecoded posting decodes to rank CoarseSequences
// sequences, and only CoarseCandidates of them — a fixed budget,
// independent of collection size — reach the dynamic programming that
// dominates exhaustive search, whose size FineDPCells measures.
type SearchStats struct {
	// Strands is 1, or 2 for a BothStrands search (every per-strand
	// counter then accumulates over both orientations).
	Strands int
	// QueryTerms is the number of distinct query intervals extracted.
	QueryTerms int
	// PostingLists is the number of non-empty posting lists read.
	PostingLists int
	// PostingsDecoded is the number of posting entries decoded across
	// those lists — the coarse phase's unit of work.
	PostingsDecoded int64
	// PostingsBytesRead is the compressed size of the lists read; on a
	// paged index this is bytes fetched from disk.
	PostingsBytesRead int64
	// CoarseSequences is the number of distinct sequences the coarse
	// accumulator touched (candidates before MinCoarseHits and the
	// budget).
	CoarseSequences int
	// CoarseCandidates is the number of candidates admitted past the
	// coarse phase — the sequences that may receive fine alignment.
	CoarseCandidates int
	// CoarseShards is the number of coarse accumulation shards used,
	// summed over strands and segments: 1 per strand per segment on the
	// serial path, the effective CoarseWorkers per segment when the
	// posting-list walk was sharded. The per-shard postings counters
	// (PostingLists, PostingsDecoded, PostingsBytesRead) always sum to
	// the serial values.
	CoarseShards int
	// CoarseBackend is the resolved coarse backend of this search
	// ("postings" or "signature"); "mixed" after Add over searches that
	// disagree.
	CoarseBackend string
	// SigProbes is the number of distinct query terms probed against
	// the bit-sliced signatures, summed over strands and segments
	// (signature backend only).
	SigProbes int
	// SigCandidates is the number of approximate candidates the
	// signature probe admitted to exact verification (signature backend
	// only).
	SigCandidates int
	// SigFalsePositives is the number of those candidates verification
	// rejected — sequences the Bloom signatures admitted whose exact
	// distinct-term count fell below MinCoarseHits. Always
	// ≤ SigCandidates.
	SigFalsePositives int
	// Segments is the number of index segments the coarse phase
	// evaluated, summed over strands: the segment count of the searcher's
	// snapshot per strand (so a both-strands search over 3 segments
	// reports 6).
	Segments int
	// PrescreenRejections is the number of candidates the ungapped
	// x-drop prescreen discarded before fine alignment (including
	// candidates with no shared seed to extend).
	PrescreenRejections int
	// FineAlignments is the number of fine-phase alignments run; at
	// most CoarseCandidates.
	FineAlignments int
	// BitvectorAlignments is the number of fine alignments the
	// bit-parallel kernel scored (the rest ran the scalar kernel,
	// either by configuration or as the capacity fallback). Always
	// ≤ FineAlignments.
	BitvectorAlignments int
	// FineKernel is the resolved fine kernel of this search
	// ("scalar" or "bitvector"); "mixed" after Add over searches that
	// disagree.
	FineKernel string
	// TracebackAlignments is the number of deferred banded tracebacks
	// run for reported results.
	TracebackAlignments int
	// FineDPCells and TracebackDPCells are the dynamic-programming
	// cells those alignments evaluated — the paper's "fraction of the
	// database aligned", in cells.
	FineDPCells      int64
	TracebackDPCells int64
	// Results is the number of answers returned.
	Results int

	// Per-stage wall time. CoarseTime, FineTime, TracebackTime and
	// TotalTime are disjoint-interval wall clocks, so the first three
	// sum to at most TotalTime (the remainder is ranking, merging and
	// result assembly). PrescreenTime is a subset of FineTime measured
	// per candidate; with FineWorkers > 1 it sums across workers and
	// may exceed the fine phase's wall time.
	CoarseTime    time.Duration
	PrescreenTime time.Duration
	FineTime      time.Duration
	TracebackTime time.Duration
	TotalTime     time.Duration
}

// Reset zeroes every counter and duration.
func (st *SearchStats) Reset() { *st = SearchStats{} }

// Add accumulates o into st field by field, for aggregating many
// queries (batch evaluation, benchmark suites).
func (st *SearchStats) Add(o SearchStats) {
	st.Strands += o.Strands
	st.QueryTerms += o.QueryTerms
	st.PostingLists += o.PostingLists
	st.PostingsDecoded += o.PostingsDecoded
	st.PostingsBytesRead += o.PostingsBytesRead
	st.CoarseSequences += o.CoarseSequences
	st.CoarseCandidates += o.CoarseCandidates
	st.CoarseShards += o.CoarseShards
	switch {
	case st.CoarseBackend == "":
		st.CoarseBackend = o.CoarseBackend
	case o.CoarseBackend != "" && o.CoarseBackend != st.CoarseBackend:
		st.CoarseBackend = "mixed"
	}
	st.SigProbes += o.SigProbes
	st.SigCandidates += o.SigCandidates
	st.SigFalsePositives += o.SigFalsePositives
	st.Segments += o.Segments
	st.PrescreenRejections += o.PrescreenRejections
	st.FineAlignments += o.FineAlignments
	st.BitvectorAlignments += o.BitvectorAlignments
	switch {
	case st.FineKernel == "":
		st.FineKernel = o.FineKernel
	case o.FineKernel != "" && o.FineKernel != st.FineKernel:
		st.FineKernel = "mixed"
	}
	st.TracebackAlignments += o.TracebackAlignments
	st.FineDPCells += o.FineDPCells
	st.TracebackDPCells += o.TracebackDPCells
	st.Results += o.Results
	st.CoarseTime += o.CoarseTime
	st.PrescreenTime += o.PrescreenTime
	st.FineTime += o.FineTime
	st.TracebackTime += o.TracebackTime
	st.TotalTime += o.TotalTime
}

// DPCells returns the total dynamic-programming cells evaluated (fine
// phase plus tracebacks).
func (st *SearchStats) DPCells() int64 { return st.FineDPCells + st.TracebackDPCells }

// StageTime returns the sum of the disjoint stage wall clocks; always
// ≤ TotalTime.
func (st *SearchStats) StageTime() time.Duration {
	return st.CoarseTime + st.FineTime + st.TracebackTime
}

// fineWork is the per-candidate stats contribution of the fine phase,
// returned by value from the fine closure so the parallel fine path
// aggregates without shared mutable state or atomics.
type fineWork struct {
	prescreen time.Duration
	rejected  bool
	aligned   bool
	bitvector bool
	cells     int64
}

// addFine folds one candidate's fine-phase work into the stats.
func (st *SearchStats) addFine(fw fineWork) {
	st.PrescreenTime += fw.prescreen
	if fw.rejected {
		st.PrescreenRejections++
	}
	if fw.aligned {
		st.FineAlignments++
		st.FineDPCells += fw.cells
		if fw.bitvector {
			st.BitvectorAlignments++
		}
	}
}
