package core

import (
	"context"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/index"
)

// TestTracebackFallbackOnBandMismatch forces the failure the fallback
// exists for: a result whose ranking score the banded traceback cannot
// reproduce (here because the recorded band centre misses the real
// alignment). The old behaviour silently kept the score-only stub — a
// degenerate zero-length span with no transcript. The fix must instead
// run a full Smith–Waterman traceback, report its spans and transcript,
// keep the ranking score, and bill the extra cells to TracebackDPCells.
func TestTracebackFallbackOnBandMismatch(t *testing.T) {
	f := makeFixture(t, 441, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()

	// Any family member has a strong alignment to the query; a band
	// centred far away from its true diagonal cannot reach that score.
	id := -1
	for fid := range f.family {
		id = fid
		break
	}
	subject := f.store.Sequence(id)
	centre := len(subject) + 10*opts.Band // off the end: the band misses everything
	bandedScore, _, _ := align.BandedLocalScore(f.query, subject, centre, opts.Band, s.scoring)
	full := align.Local(f.query, subject, s.scoring)
	if full.Score <= bandedScore {
		t.Fatalf("fixture cannot force a mismatch: full score %d, banded score %d", full.Score, bandedScore)
	}

	in := []Result{{
		ID:             id,
		Score:          full.Score, // ranking score the banded pass can't reproduce
		bandCentre:     centre,
		needsTraceback: true,
	}}
	var st SearchStats
	out, err := s.finishTracebacks(context.Background(), f.query, nil, in, opts, &st)
	if err != nil {
		t.Fatal(err)
	}
	r := out[0]
	if r.needsTraceback {
		t.Error("needsTraceback still set after finishTracebacks")
	}
	if r.Score != full.Score {
		t.Errorf("ranking score changed: %d, want %d", r.Score, full.Score)
	}
	if r.Alignment.Score != full.Score {
		t.Errorf("fallback alignment score %d, want full traceback score %d", r.Alignment.Score, full.Score)
	}
	if len(r.Alignment.Ops) == 0 {
		t.Error("fallback alignment has no transcript — the degenerate stub leaked through")
	}
	if r.Alignment.AStart == r.Alignment.AEnd || r.Alignment.BStart == r.Alignment.BEnd {
		t.Errorf("fallback alignment spans are degenerate: q[%d:%d] s[%d:%d]",
			r.Alignment.AStart, r.Alignment.AEnd, r.Alignment.BStart, r.Alignment.BEnd)
	}
	if r.Alignment.AStart != full.AStart || r.Alignment.AEnd != full.AEnd ||
		r.Alignment.BStart != full.BStart || r.Alignment.BEnd != full.BEnd {
		t.Errorf("fallback spans q[%d:%d] s[%d:%d], want full traceback's q[%d:%d] s[%d:%d]",
			r.Alignment.AStart, r.Alignment.AEnd, r.Alignment.BStart, r.Alignment.BEnd,
			full.AStart, full.AEnd, full.BStart, full.BEnd)
	}

	// Cost accounting: the failed banded pass and the full fallback are
	// both billed.
	wantCells := align.BandedCells(len(f.query), len(subject), centre, opts.Band) +
		align.LocalCells(len(f.query), len(subject))
	if st.TracebackDPCells != wantCells {
		t.Errorf("TracebackDPCells = %d, want %d (banded attempt + full fallback)", st.TracebackDPCells, wantCells)
	}
	if st.TracebackAlignments != 1 {
		t.Errorf("TracebackAlignments = %d, want 1", st.TracebackAlignments)
	}
}

// TestTracebackAgreementKeepsBandedAlignment pins the common case: when
// the banded traceback reproduces the ranking score, it is used as-is
// and no full-matrix fallback runs.
func TestTracebackAgreementKeepsBandedAlignment(t *testing.T) {
	f := makeFixture(t, 442, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()

	rs, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	var st SearchStats
	if _, err := s.SearchWithStats(f.query, opts, &st); err != nil {
		t.Fatal(err)
	}
	// Every reported traceback agreed with its ranking score (the band
	// was centred by the search itself), so the billed cells are exactly
	// the banded matrices — no full-matrix fallback fired.
	var banded int64
	for _, r := range rs {
		subject := f.store.Sequence(r.ID)
		banded += align.BandedCells(len(f.query), len(subject), r.bandCentre, opts.Band)
		if len(r.Alignment.Ops) == 0 && r.Alignment.Score > 0 {
			t.Errorf("result %d has no transcript", r.ID)
		}
	}
	if st.TracebackDPCells != banded {
		t.Errorf("TracebackDPCells = %d, want %d (banded only; fallback should not fire here)",
			st.TracebackDPCells, banded)
	}
}
