package core

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"nucleodb/internal/index"
	"nucleodb/internal/kmer"
)

// CoarseBackend selects which coarse-filtering index implementation a
// search runs against. The postings-backed inverted index (the paper's
// design) is exact; the bit-sliced signature backend (COBS-style)
// answers approximate membership and verifies its candidates against
// the real sequences, so both backends return identical final results
// — the cross-backend differential suite locks this in.
type CoarseBackend int

const (
	// CoarseBackendAuto lets the engine choose; it resolves to the
	// postings backend, which is exact and always present. Signatures
	// are opt-in per search.
	CoarseBackendAuto CoarseBackend = iota
	// CoarseBackendPostings accumulates the query's posting lists — the
	// inverted k-mer index of the paper.
	CoarseBackendPostings
	// CoarseBackendSignature probes per-sequence Bloom signatures
	// stored as bit-slices, then verifies the approximate candidate set
	// exactly. Requires every segment to carry a signature index.
	CoarseBackendSignature
)

// String names the backend; unknown values render as "invalid".
func (b CoarseBackend) String() string {
	switch b {
	case CoarseBackendAuto:
		return "auto"
	case CoarseBackendPostings:
		return "postings"
	case CoarseBackendSignature:
		return "signature"
	}
	return "invalid"
}

// CoarseIndex is the narrow surface every coarse backend exposes: its
// self-identification (the wire/stats name of the backend) and the
// number of sequences it covers. The postings index is the first
// implementation; the signature index is the second.
type CoarseIndex interface {
	CoarseBackendName() string
	NumSeqs() int
}

// SignatureIndex is the probe surface of a bit-sliced signature
// backend: ProbeAnd writes the AND of a term's hash rows into dst (one
// bit per sequence, Words() words) and returns it. Set bits are
// approximate — supersets of the truth — so callers must verify
// candidates before scoring.
type SignatureIndex interface {
	CoarseIndex
	Words() int
	ProbeAnd(t kmer.Term, dst []uint64) []uint64
}

// The postings index satisfies the backend interface.
var _ CoarseIndex = (*index.Index)(nil)

// Backend resolves CoarseBackendAuto to the backend the search will
// run: the exact postings index. The signature backend runs only when
// explicitly selected.
func (o Options) Backend() CoarseBackend {
	if o.CoarseBackend != CoarseBackendAuto {
		return o.CoarseBackend
	}
	return CoarseBackendPostings
}

// HasSignatures reports whether every segment of this searcher carries
// a signature index — the precondition of CoarseBackendSignature.
func (s *Searcher) HasSignatures() bool {
	for _, sg := range s.segs {
		if sg.Sig == nil {
			return false
		}
	}
	return true
}

// sigScratch is the reusable state of the signature coarse path: the
// probe destination, the approximate candidate list, and the exact
// verification pass's per-candidate term bookkeeping with a pre-bound
// extraction callback (mirroring seedScratch) so steady-state signature
// coarse allocates nothing per candidate.
type sigScratch struct {
	dst  []uint64 // serial probe AND buffer
	drop []int    // approximate candidate local ids, verified in order

	// seen marks the distinct query terms already counted for the
	// candidate under verification; cleared per candidate.
	seen map[kmer.Term]struct{}

	// Verification state read by the pre-bound callback. termSet is
	// borrowed from the searcher for the current query; stopped is the
	// current segment's stop predicate; diag is the current query's
	// diagonal accumulator (nil outside CoarseDiagonal). All three are
	// cleared when the segment's verification pass ends.
	termSet  map[kmer.Term][]int //cafe:pooled borrowed from the searcher for the current query only
	stopped  func(kmer.Term) bool
	diag     *diagAcc
	local    int
	distinct int
	total    int
	extract  func(sPos int, t kmer.Term)
}

func newSigScratch() *sigScratch {
	sc := &sigScratch{seen: make(map[kmer.Term]struct{})}
	sc.extract = func(sPos int, t kmer.Term) {
		qPositions, ok := sc.termSet[t]
		if !ok {
			return
		}
		if sc.stopped != nil && sc.stopped(t) {
			return
		}
		if _, dup := sc.seen[t]; !dup {
			sc.seen[t] = struct{}{}
			sc.distinct++
		}
		sc.total++
		if sc.diag != nil {
			for _, qp := range qPositions {
				sc.diag.add(uint32(sc.local), sPos-qp)
			}
		}
	}
	return sc
}

// bumpProbeWord folds one word of a probe bitvector into acc: every set
// bit is one approximate distinct hit for that local id.
//
//cafe:hotpath
func bumpProbeWord(acc *accumulators, base int, word uint64, numSeqs int) {
	for ; word != 0; word &= word - 1 {
		id := base + bits.TrailingZeros64(word)
		if id >= numSeqs {
			// Padding bits past the real column count are never set by
			// the builder; tolerate them defensively.
			return
		}
		acc.bump(id, 1, 0)
	}
}

// accumulateSignature is the signature backend's per-segment coarse
// accumulation: probe the query's distinct terms against the segment's
// bit-sliced signatures (serially, or sharded across workers) to get
// approximate distinct counts, then verify every sequence that clears
// minHits by re-extracting its real terms — computing the exact
// distinct/total counts (and diagonal hits under CoarseDiagonal) the
// postings walk would have produced. Signatures admit false positives
// but never false negatives, so the approximate count is an upper bound
// on the exact one and no qualifying sequence is missed; verified
// counts feed the shared accumulator, so the scoring loop downstream is
// byte-identical to the postings backend's.
func (s *Searcher) accumulateSignature(ctx context.Context, seg Segment, mode CoarseMode, minHits, workers int, st *SearchStats) (*diagAcc, error) {
	sg := seg.Sig
	if sg == nil {
		return nil, fmt.Errorf("core: signature coarse backend requested but the segment has no signature index (rebuild with signatures or use the postings backend)")
	}
	if s.sig == nil {
		s.sig = newSigScratch()
	}
	sc := s.sig
	numSeqs := seg.Index.NumSeqs()

	// Phase 1: probe every distinct query term into approximate
	// distinct counts.
	if workers > 1 {
		if err := s.probeSharded(ctx, sg, numSeqs, workers, st); err != nil {
			return nil, err
		}
	} else {
		s.acc.reset()
		for t := range s.termSet {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sc.dst = sg.ProbeAnd(t, sc.dst)
			for w, word := range sc.dst {
				bumpProbeWord(&s.acc, w*64, word, numSeqs)
			}
		}
		if st != nil {
			st.CoarseShards++
		}
	}
	if st != nil {
		st.SigProbes += len(s.termSet)
	}

	// Approximate candidate set: everything whose probe count clears
	// minHits and is not tombstoned. Exact counts can only be lower, so
	// this is a superset of the postings backend's qualifying set.
	sc.drop = sc.drop[:0]
	for _, local := range s.acc.touched {
		if int(s.acc.distinct[local]) < minHits {
			continue
		}
		if seg.Deleted != nil && seg.Deleted(local) {
			continue
		}
		sc.drop = append(sc.drop, local)
	}
	if st != nil {
		st.SigCandidates += len(sc.drop)
	}

	// Phase 2: exact verification. The accumulator restarts from the
	// real counts; sequences whose exact distinct count is zero are
	// pure hash-collision artefacts and vanish here.
	s.acc.reset()
	diag := newDiagAcc(mode == CoarseDiagonal)
	sc.termSet = s.termSet
	sc.stopped = nil
	if seg.Index.NumStopped() > 0 {
		sc.stopped = seg.Index.Stopped
	}
	sc.diag = diag
	falsePositives := 0
	for _, local := range sc.drop {
		if err := ctx.Err(); err != nil {
			sc.termSet, sc.stopped, sc.diag = nil, nil, nil
			return nil, err
		}
		clear(sc.seen)
		sc.local, sc.distinct, sc.total = local, 0, 0
		s.coder.ExtractFunc(s.src.Sequence(seg.Base+local), sc.extract)
		if sc.distinct < minHits {
			falsePositives++
		}
		if sc.distinct > 0 {
			s.acc.bump(local, sc.distinct, sc.total)
		}
	}
	sc.termSet, sc.stopped, sc.diag = nil, nil, nil
	if st != nil {
		st.SigFalsePositives += falsePositives
	}
	return diag, nil
}

// probeSharded partitions the query's terms across workers, each
// probing into a private per-shard accumulator, then merges the shards.
// Distinct counts are order-independent sums over terms, so the merged
// counts equal the serial probe's exactly — the same argument as the
// sharded postings walk.
func (s *Searcher) probeSharded(ctx context.Context, sg SignatureIndex, numSeqs, workers int, st *SearchStats) error {
	jobs := s.termJobs[:0]
	for t, qPositions := range s.termSet {
		jobs = append(jobs, termJob{t: t, qPos: qPositions})
	}
	s.termJobs = jobs[:0]

	shards := s.coarseShards(workers)
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		sh := shards[w]
		sh.reset(false)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				sh.sigDst = sg.ProbeAnd(jobs[i].t, sh.sigDst) //cafe:allow poolescape ProbeAnd fills and returns the caller's buffer; the signature index retains nothing
				for w, word := range sh.sigDst {
					bumpProbeWord(&sh.acc, w*64, word, numSeqs)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	s.acc.reset()
	for _, sh := range shards {
		for _, id := range sh.acc.touched {
			s.acc.bump(id, int(sh.acc.distinct[id]), int(sh.acc.total[id]))
		}
	}
	if st != nil {
		st.CoarseShards += workers
	}
	return nil
}
