package core

import (
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/index"
)

func TestPrescreenKeepsHomologs(t *testing.T) {
	f := makeFixture(t, 161, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	opts := DefaultOptions()
	opts.MinScore = 0
	base, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Prescreen = 3 * 9 * align.DefaultScoring().Match
	screened, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(screened) == 0 {
		t.Fatal("prescreen removed everything")
	}
	// The strong answers survive: the top of both rankings agree.
	n := 4
	if len(base) < n || len(screened) < n {
		n = min(len(base), len(screened))
	}
	for i := 0; i < n; i++ {
		if base[i].ID != screened[i].ID {
			t.Errorf("rank %d differs: %d vs %d", i, base[i].ID, screened[i].ID)
		}
	}
	// And the prescreen drops noise-level candidates.
	if len(screened) >= len(base) {
		t.Errorf("prescreen dropped nothing: %d vs %d results", len(screened), len(base))
	}
}

func TestPrescreenValidation(t *testing.T) {
	f := makeFixture(t, 162, index.Options{K: 9})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()
	opts.Prescreen = -1
	if _, err := s.Search(f.query, opts); err == nil {
		t.Error("negative prescreen accepted")
	}
}

func TestPrescreenUnreachableThresholdDropsAll(t *testing.T) {
	f := makeFixture(t, 163, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()
	opts.Prescreen = 1 << 30
	rs, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Errorf("unreachable prescreen kept %d results", len(rs))
	}
}
