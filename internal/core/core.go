// Package core implements the paper's contribution: partitioned search
// over a nucleotide collection. A coarse phase ranks sequences by
// interval similarity to the query using only the inverted index; a
// fine phase runs local alignment on the top-ranked candidates only.
// The result is the accuracy of local alignment at a fraction of the
// exhaustive cost, because the expensive dynamic programming touches a
// bounded number of sequences regardless of collection size.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nucleodb/internal/align"
	"nucleodb/internal/dna"
	"nucleodb/internal/index"
	"nucleodb/internal/kmer"
	"nucleodb/internal/postings"
)

// Source supplies candidate sequences to the fine phase. *db.Store
// satisfies it.
type Source interface {
	Len() int
	Sequence(i int) []byte
}

// CoarseMode selects how the coarse phase scores a sequence from the
// posting lists of the query's intervals. The modes are the ablation
// axis of experiment E8.
type CoarseMode int

const (
	// CoarseDistinct counts the distinct query intervals present in
	// the sequence — the paper's basic ranking.
	CoarseDistinct CoarseMode = iota
	// CoarseTotal sums total occurrences of query intervals, which
	// favours long and repetitive sequences.
	CoarseTotal
	// CoarseNormalised divides the distinct count by log₂ of the
	// sequence length, damping the long-sequence bias.
	CoarseNormalised
	// CoarseDiagonal clusters interval hits by alignment diagonal and
	// scores the densest diagonal band (a FRAMES-style measure). It
	// requires an index built with offsets.
	CoarseDiagonal
)

// String returns the mode's table label.
func (m CoarseMode) String() string {
	switch m {
	case CoarseDistinct:
		return "distinct"
	case CoarseTotal:
		return "total"
	case CoarseNormalised:
		return "normalised"
	case CoarseDiagonal:
		return "diagonal"
	}
	return fmt.Sprintf("CoarseMode(%d)", int(m))
}

// FineMode selects the fine-phase aligner.
type FineMode int

const (
	// FineFull runs unrestricted Smith–Waterman on each candidate:
	// exact scores, highest cost.
	FineFull FineMode = iota
	// FineBanded runs a banded Smith–Waterman around each candidate's
	// best hit diagonal: near-exact at a fraction of the cost.
	FineBanded
)

// String returns the mode's table label.
func (m FineMode) String() string {
	switch m {
	case FineFull:
		return "full"
	case FineBanded:
		return "banded"
	}
	return fmt.Sprintf("FineMode(%d)", int(m))
}

// FineKernel selects the scoring kernel of the fine phase's
// full-matrix aligner.
type FineKernel int

const (
	// FineKernelAuto picks the fastest exact kernel for the fine mode:
	// bitvector under FineFull, scalar under FineBanded (which has no
	// bit-parallel form).
	FineKernelAuto FineKernel = iota
	// FineKernelScalar is the classic cell-at-a-time Smith–Waterman.
	FineKernelScalar
	// FineKernelBitvector is the bit-parallel striped kernel
	// (align.StripedProfile): four 16-bit DP lanes per uint64, exact
	// scores, scalar fallback per candidate when a pair exceeds lane
	// capacity. FineFull only.
	FineKernelBitvector
)

// String returns the kernel's stats/CLI label.
func (k FineKernel) String() string {
	switch k {
	case FineKernelAuto:
		return "auto"
	case FineKernelScalar:
		return "scalar"
	case FineKernelBitvector:
		return "bitvector"
	}
	return fmt.Sprintf("FineKernel(%d)", int(k))
}

// Options configures one search.
type Options struct {
	// Candidates is the coarse-phase budget: at most this many
	// top-ranked sequences proceed to fine alignment.
	Candidates int
	// MinCoarseHits discards sequences sharing fewer than this many
	// distinct intervals with the query before ranking.
	MinCoarseHits int
	// CoarseMode selects the coarse ranking function.
	CoarseMode CoarseMode
	// CoarseBackend selects the coarse index implementation: the exact
	// postings-backed inverted index (the default; CoarseBackendAuto
	// resolves to it) or the bit-sliced signature backend, which
	// requires every segment to carry a signature index. Final results
	// are identical either way — the signature path verifies its
	// approximate candidates exactly.
	CoarseBackend CoarseBackend
	// FineMode selects the fine aligner.
	FineMode FineMode
	// FineKernel selects the fine scoring kernel. The default
	// (FineKernelAuto) resolves to bitvector under FineFull and scalar
	// under FineBanded; results are byte-identical either way, only
	// speed differs.
	FineKernel FineKernel
	// Band is the half-width for FineBanded.
	Band int
	// MinScore discards fine alignments below this score.
	MinScore int
	// Limit truncates the result list; 0 means no truncation.
	Limit int
	// BothStrands also searches the reverse complement of the query
	// and reports each sequence's best strand, as nucleotide search
	// tools conventionally do.
	BothStrands bool
	// Prescreen, when positive, inserts a middle phase between coarse
	// ranking and fine alignment: an ungapped x-drop extension from
	// the candidate's best shared interval. Candidates whose extension
	// scores below Prescreen are dropped before the (far more
	// expensive) fine alignment — the three-phase structure of the
	// production CAFE design.
	Prescreen int
	// FineWorkers aligns candidates concurrently in the fine phase,
	// reducing single-query latency on multicore machines. 0 or 1 is
	// serial. Results are identical at any setting.
	FineWorkers int
	// CoarseWorkers partitions the query's posting lists across this
	// many workers in the coarse phase. Each worker accumulates into a
	// private per-shard accumulator (and diagonal accumulator under
	// CoarseDiagonal); the shards are merged deterministically, so
	// results are byte-identical to the serial path at any setting. 0
	// or 1 is serial.
	CoarseWorkers int
}

// DefaultOptions returns the configuration of the headline experiments.
func DefaultOptions() Options {
	return Options{
		Candidates:    100,
		MinCoarseHits: 2,
		CoarseMode:    CoarseDistinct,
		FineMode:      FineBanded,
		Band:          24,
		MinScore:      1,
		Limit:         20,
	}
}

func (o Options) validate() error {
	if o.Candidates < 1 {
		return fmt.Errorf("core: candidate budget %d must be positive", o.Candidates)
	}
	if o.MinCoarseHits < 1 {
		return fmt.Errorf("core: MinCoarseHits %d must be positive", o.MinCoarseHits)
	}
	// Exhaustive switches, not range checks: adding a mode or backend
	// without teaching validation about it must fail closed, not widen
	// the accepted range silently.
	switch o.CoarseMode {
	case CoarseDistinct, CoarseTotal, CoarseNormalised, CoarseDiagonal:
	default:
		return fmt.Errorf("core: unknown coarse mode %d", o.CoarseMode)
	}
	switch o.CoarseBackend {
	case CoarseBackendAuto, CoarseBackendPostings, CoarseBackendSignature:
	default:
		return fmt.Errorf("core: unknown coarse backend %d (use auto, postings or signature)", o.CoarseBackend)
	}
	if o.FineMode < FineFull || o.FineMode > FineBanded {
		return fmt.Errorf("core: unknown fine mode %d", o.FineMode)
	}
	if o.FineMode == FineBanded && o.Band < 1 {
		return fmt.Errorf("core: banded fine phase needs Band ≥ 1, got %d", o.Band)
	}
	if o.FineKernel < FineKernelAuto || o.FineKernel > FineKernelBitvector {
		return fmt.Errorf("core: unknown fine kernel (use auto, scalar or bitvector)")
	}
	if o.FineKernel == FineKernelBitvector && o.FineMode != FineFull {
		return fmt.Errorf("core: the bitvector fine kernel requires FineFull (the banded aligner has no bit-parallel form)")
	}
	if o.MinScore < 0 || o.Limit < 0 {
		return fmt.Errorf("core: negative MinScore or Limit")
	}
	if o.Prescreen < 0 {
		return fmt.Errorf("core: negative Prescreen %d", o.Prescreen)
	}
	if o.FineWorkers < 0 {
		return fmt.Errorf("core: negative FineWorkers %d", o.FineWorkers)
	}
	if o.CoarseWorkers < 0 {
		return fmt.Errorf("core: negative CoarseWorkers %d", o.CoarseWorkers)
	}
	return nil
}

// Kernel resolves FineKernelAuto to the kernel the search will run.
func (o Options) Kernel() FineKernel {
	if o.FineKernel != FineKernelAuto {
		return o.FineKernel
	}
	if o.FineMode == FineFull {
		return FineKernelBitvector
	}
	return FineKernelScalar
}

// Result is one search answer.
type Result struct {
	// ID is the sequence identifier in the store.
	ID int
	// Score is the fine-phase local alignment score.
	Score int
	// Coarse is the coarse-phase score that admitted the candidate.
	Coarse float64
	// Reverse is true when the match is against the reverse complement
	// of the query (BothStrands searches only). Alignment spans then
	// refer to the reverse-complemented query.
	Reverse bool
	// Alignment carries spans and the transcript when the fine phase
	// produced one (FineFull on in-budget sizes).
	Alignment align.Alignment

	// Traceback deferral: candidates are ranked with a cheap score-only
	// pass (banded, or the bitvector kernel under FineFull) and only
	// reported results get transcripts. fullTraceback marks results
	// whose deferred traceback is the unrestricted Smith–Waterman
	// rather than the banded one.
	bandCentre     int
	needsTraceback bool
	fullTraceback  bool
}

// Segment is one immutable slice of the collection as the coarse phase
// sees it: an inverted index over the segment's sequences (local ids
// 0..NumSeqs-1) plus the global id of its first sequence. Deleted, when
// non-nil, reports tombstoned local ids the coarse phase must skip —
// their postings still exist until compaction rewrites the segment.
type Segment struct {
	Index   *index.Index
	Base    int
	Deleted func(local int) bool
	// Sig, when non-nil, is the segment's bit-sliced signature index —
	// the second coarse backend. It must cover exactly the same
	// sequences as Index; searches selecting CoarseBackendSignature
	// fail on segments without one.
	Sig SignatureIndex
}

// Searcher evaluates partitioned queries against a set of index
// segments and their sequence store. It is safe for concurrent use only
// if each goroutine uses its own Searcher (scratch state is reused
// between queries).
type Searcher struct {
	segs    []Segment
	src     Source
	scoring align.Scoring

	// coder and opts are shared by every segment (the constructor
	// enforces equal build options across segments).
	coder *kmer.Coder
	opts  index.Options

	// snapshot is the caller's opaque identity token for the segment
	// set this searcher was built over; pools compare it to detect
	// searchers built for a superseded snapshot.
	snapshot any

	// maxSegSeqs sizes the per-segment accumulators: the largest
	// segment's sequence count.
	maxSegSeqs int

	// Scratch reused across queries.
	acc     accumulators
	it      postings.Iterator
	termSet map[kmer.Term][]int //cafe:pooled query-lifetime term map, cleared at the start of each coarse call

	// Sharded-coarse scratch: per-worker accumulators and the term
	// work list, grown to the high-water worker count and reused so
	// steady-state sharded coarse allocates nothing.
	shards   []*coarseShard
	termJobs []termJob //cafe:pooled sharded-coarse work list, rebuilt per query

	// sig is the signature backend's probe/verification scratch,
	// created on the first signature search and reused after.
	sig *sigScratch

	// candBuf backs the bounded top-k candidate selection; it holds at
	// most Candidates entries and is reused across queries (the fine
	// phase finishes with it before the next coarse call).
	candBuf []Candidate //cafe:pooled top-k backing, reclaimed after each query's fine phase

	// seedScratch holds one bestSeed scratch per fine worker, grown to
	// the high-water FineWorkers and reused across candidates.
	seedScratch []*seedScratch

	// bvProfile is the pooled striped query profile of the bitvector
	// fine kernel, rebuilt once per strand (Build reuses its backing)
	// and read-only while fine workers score against it.
	bvProfile align.StripedProfile
}

// termJob is one unit of coarse work: a query term and the query
// offsets it occurs at (offsets drive the diagonal accumulator).
type termJob struct {
	t    kmer.Term
	qPos []int
}

// coarseShard is one worker's private coarse state: accumulators, a
// postings iterator, an optional diagonal accumulator, and the shard's
// share of the postings counters (summed into SearchStats after the
// join, so the totals equal the serial values exactly).
type coarseShard struct {
	acc  accumulators
	it   postings.Iterator
	diag *diagAcc
	// sigDst is the shard's probe AND buffer for the signature backend
	// (see Searcher.probeSharded); unused on the postings path.
	sigDst []uint64

	lists   int
	decoded int64
	bytes   int64
	err     error
}

// reset prepares the shard for one query, creating or clearing the
// diagonal accumulator as the mode requires.
func (sh *coarseShard) reset(diagonal bool) {
	sh.acc.reset()
	sh.lists, sh.decoded, sh.bytes, sh.err = 0, 0, 0, nil
	switch {
	case !diagonal:
		sh.diag = nil
	case sh.diag == nil:
		sh.diag = newDiagAcc(true)
	default:
		clear(sh.diag.counts)
	}
}

// accumulate folds one term's posting list into the shard.
func (sh *coarseShard) accumulate(idx *index.Index, job termJob) {
	df, listBytes := idx.ReaderStats(job.t, &sh.it)
	if df == 0 {
		return
	}
	sh.lists++
	sh.bytes += int64(listBytes)
	for sh.it.Next() {
		e := sh.it.Entry()
		sh.acc.bump(int(e.ID), 1, int(e.Count))
		if sh.diag != nil {
			for _, qp := range job.qPos {
				for _, off := range e.Offsets {
					sh.diag.add(e.ID, int(off)-qp)
				}
			}
		}
	}
	if err := sh.it.Err(); err != nil {
		sh.err = fmt.Errorf("core: term %d postings: %w", job.t, err)
		return
	}
	sh.decoded += int64(sh.it.Decoded())
}

// coarseShards returns n pooled shards, growing the pool on first use
// at each high-water mark.
//
//cafe:pooled shard state is reused by the next query on this searcher
func (s *Searcher) coarseShards(n int) []*coarseShard {
	for len(s.shards) < n {
		s.shards = append(s.shards, &coarseShard{acc: newAccumulators(s.maxSegSeqs)})
	}
	return s.shards[:n]
}

// fineScratch returns n pooled bestSeed scratches, one per fine
// worker, growing the pool at each high-water mark.
//
//cafe:pooled scratch is reused across candidates and queries
func (s *Searcher) fineScratch(n int) []*seedScratch {
	for len(s.seedScratch) < n {
		s.seedScratch = append(s.seedScratch, newSeedScratch())
	}
	return s.seedScratch[:n]
}

// NewSearcher returns a single-segment searcher over idx and src — the
// monolithic-index form every pre-segment caller uses. src must be the
// store the index was built from; the searcher checks the sequence
// counts agree. The snapshot token is the index pointer itself.
func NewSearcher(idx *index.Index, src Source, scoring align.Scoring) (*Searcher, error) {
	return NewSegmentedSearcher([]Segment{{Index: idx}}, src, scoring, idx)
}

// NewSegmentedSearcher returns a searcher over an ordered set of
// segments covering contiguous global ids: segment i's local id j names
// global sequence segs[i].Base+j, and src supplies sequences by global
// id. Every segment must be built with the same index options and the
// segments' sequence counts must sum to src.Len(). snapshot is an
// opaque identity token for this segment set, returned by Snapshot();
// searcher pools compare it to detect stale scratch after an append or
// compaction swaps the set.
func NewSegmentedSearcher(segs []Segment, src Source, scoring align.Scoring, snapshot any) (*Searcher, error) {
	if err := scoring.Validate(); err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("core: searcher needs at least one segment")
	}
	opts := segs[0].Index.Options()
	total, maxSeqs := 0, 0
	for i, sg := range segs {
		if sg.Index == nil {
			return nil, fmt.Errorf("core: segment %d has no index", i)
		}
		if sg.Index.Options() != opts {
			return nil, fmt.Errorf("core: segment %d build options differ from segment 0", i)
		}
		if sg.Base != total {
			return nil, fmt.Errorf("core: segment %d starts at global id %d, want %d (segments must be contiguous)", i, sg.Base, total)
		}
		if sg.Sig != nil && sg.Sig.NumSeqs() != sg.Index.NumSeqs() {
			return nil, fmt.Errorf("core: segment %d signature covers %d sequences, index has %d", i, sg.Sig.NumSeqs(), sg.Index.NumSeqs())
		}
		total += sg.Index.NumSeqs()
		if n := sg.Index.NumSeqs(); n > maxSeqs {
			maxSeqs = n
		}
	}
	if total != src.Len() {
		return nil, fmt.Errorf("core: segments index %d sequences, store has %d", total, src.Len())
	}
	return &Searcher{
		segs:       append([]Segment(nil), segs...),
		src:        src,
		scoring:    scoring,
		coder:      segs[0].Index.Coder(),
		opts:       opts,
		snapshot:   snapshot,
		maxSegSeqs: maxSeqs,
		acc:        newAccumulators(maxSeqs),
		termSet:    make(map[kmer.Term][]int),
	}, nil
}

// Index returns the first (for NewSearcher callers: the only) segment's
// index.
func (s *Searcher) Index() *index.Index { return s.segs[0].Index }

// Snapshot returns the identity token of the segment set this searcher
// was built over (see NewSegmentedSearcher).
func (s *Searcher) Snapshot() any { return s.snapshot }

// NumSegments returns the number of segments the searcher evaluates.
func (s *Searcher) NumSegments() int { return len(s.segs) }

// Scoring returns the alignment parameters in use.
func (s *Searcher) Scoring() align.Scoring { return s.scoring }

// Candidate is a coarse-phase ranking entry.
type Candidate struct {
	ID     int
	Score  float64 // coarse score under the selected mode
	Hits   int     // distinct query intervals present
	Diag   int     // densest diagonal (CoarseDiagonal only)
	HasOff bool    // whether Diag is meaningful
}

// Search runs the full partitioned evaluation: coarse ranking, then
// fine local alignment of the top candidates. With BothStrands set the
// reverse complement of the query is evaluated too and each sequence
// reports its best strand.
func (s *Searcher) Search(query []byte, opts Options) ([]Result, error) {
	return s.SearchWithStatsContext(context.Background(), query, opts, nil) //cafe:allow ctx context-free wrapper; running without a deadline is Search's documented behaviour
}

// SearchContext is Search with cooperative cancellation: the evaluation
// checks ctx between posting lists in the coarse phase and between
// candidates in the prescreen/fine/traceback phases — coarse enough
// that the hot decode and DP loops stay allocation-free, fine enough
// that even a long Smith–Waterman fine phase stops within one
// candidate's alignment. On cancellation it returns ctx.Err() (so
// errors.Is(err, context.Canceled) works) and no results.
func (s *Searcher) SearchContext(ctx context.Context, query []byte, opts Options) ([]Result, error) {
	return s.SearchWithStatsContext(ctx, query, opts, nil)
}

// SearchWithStats runs Search and, when st is non-nil, fills it with
// the per-stage work counters and wall times of this evaluation (st is
// reset first). Collection is allocation-free and does not change
// results: the stats-enabled search returns exactly what Search
// returns, a property the core tests lock in.
func (s *Searcher) SearchWithStats(query []byte, opts Options, st *SearchStats) ([]Result, error) {
	return s.SearchWithStatsContext(context.Background(), query, opts, st) //cafe:allow ctx context-free wrapper; running without a deadline is SearchWithStats's documented behaviour
}

// SearchWithStatsContext is SearchContext with the stats collection of
// SearchWithStats.
func (s *Searcher) SearchWithStatsContext(ctx context.Context, query []byte, opts Options, st *SearchStats) ([]Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var start time.Time
	if st != nil {
		st.Reset()
		st.Strands = 1
		st.FineKernel = opts.Kernel().String()
		st.CoarseBackend = opts.Backend().String()
		start = time.Now()
	}
	forward, err := s.searchStrand(ctx, query, opts, st)
	if err != nil {
		return nil, err
	}
	if !opts.BothStrands {
		out, err := s.finishTracebacks(ctx, query, nil, s.finish(forward, opts), opts, st)
		if err != nil {
			return nil, err
		}
		if st != nil {
			st.Results = len(out)
			st.TotalTime = time.Since(start)
		}
		return out, nil
	}
	rc := dna.ReverseComplement(query)
	reverse, err := s.searchStrand(ctx, rc, opts, st)
	if err != nil {
		return nil, err
	}
	for i := range reverse {
		reverse[i].Reverse = true
	}
	// Merge: keep each sequence's best strand. Iterate the two slices
	// separately — append(forward, reverse...) would copy reverse into
	// forward's spare backing capacity when cap(forward) allows, and
	// the sharded coarse path reuses result backing across strands, so
	// that aliasing would let one strand's merge scribble on the other.
	best := make(map[int]Result, len(forward)+len(reverse))
	for _, r := range forward {
		if cur, ok := best[r.ID]; !ok || r.Score > cur.Score {
			best[r.ID] = r
		}
	}
	for _, r := range reverse {
		if cur, ok := best[r.ID]; !ok || r.Score > cur.Score {
			best[r.ID] = r
		}
	}
	merged := make([]Result, 0, len(best))
	for _, r := range best {
		merged = append(merged, r)
	}
	out, err := s.finishTracebacks(ctx, query, rc, s.finish(merged, opts), opts, st)
	if err != nil {
		return nil, err
	}
	if st != nil {
		st.Strands = 2
		st.Results = len(out)
		st.TotalTime = time.Since(start)
	}
	return out, nil
}

// finishTracebacks replaces the score-only banded results that made
// the final list with full traceback alignments. Only the reported
// results — at most Limit — pay for a direction matrix, so transcript
// output costs nothing measurable per query. Cancellation is checked
// once per traceback.
func (s *Searcher) finishTracebacks(ctx context.Context, query, rcQuery []byte, results []Result, opts Options, st *SearchStats) ([]Result, error) {
	var t0 time.Time
	if st != nil {
		t0 = time.Now()
	}
	for i := range results {
		r := &results[i]
		if !r.needsTraceback {
			continue
		}
		if err := ctx.Err(); err != nil {
			if st != nil {
				st.TracebackTime += time.Since(t0)
			}
			return nil, err
		}
		q := query
		if r.Reverse {
			q = rcQuery
		}
		subject := s.src.Sequence(r.ID)
		if r.fullTraceback {
			// The bitvector kernel ranked this result score-only; the
			// transcript comes from the scalar full-matrix aligner, which
			// computes the same optimal score (the differential tests pin
			// this), so the reported result is byte-identical to the
			// scalar kernel's.
			r.Alignment = align.Local(q, subject, s.scoring)
			if st != nil {
				st.TracebackAlignments++
				st.TracebackDPCells += align.LocalCells(len(q), len(subject))
			}
			r.needsTraceback, r.fullTraceback = false, false
			continue
		}
		al := align.BandedLocal(q, subject, r.bandCentre, opts.Band, s.scoring)
		if st != nil {
			st.TracebackAlignments++
			st.TracebackDPCells += align.BandedCells(len(q), len(subject), r.bandCentre, opts.Band)
		}
		if al.Score == r.Score {
			r.Alignment = al
		} else {
			// The banded traceback could not reproduce the score-only
			// ranking pass. Rather than silently reporting the
			// degenerate end-coordinate stub with no transcript, fall
			// back to a full Smith–Waterman traceback; the ranking
			// score stands (the list is already ordered by it), but
			// spans, identity and the transcript come from the real
			// optimal alignment.
			r.Alignment = align.Local(q, subject, s.scoring)
			if st != nil {
				st.TracebackDPCells += align.LocalCells(len(q), len(subject))
			}
		}
		r.needsTraceback = false
	}
	if st != nil {
		st.TracebackTime += time.Since(t0)
	}
	return results, nil
}

// finish orders results best-first and applies the limit.
func (s *Searcher) finish(results []Result, opts Options) []Result {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].ID < results[j].ID
	})
	if opts.Limit > 0 && len(results) > opts.Limit {
		results = results[:opts.Limit]
	}
	return results
}

// searchStrand evaluates one orientation of the query. Results are
// unordered; finish ranks them. When st is non-nil it accumulates the
// strand's coarse and fine stage stats. Cancellation is checked between
// posting lists (coarse) and between candidates (fine).
func (s *Searcher) searchStrand(ctx context.Context, query []byte, opts Options, st *SearchStats) ([]Result, error) {
	collect := st != nil
	var t0 time.Time
	if collect {
		t0 = time.Now()
	}
	cands, err := s.coarse(ctx, query, opts.Backend(), opts.CoarseMode, opts.MinCoarseHits, opts.CoarseWorkers, opts.Candidates, st)
	if err != nil {
		return nil, err
	}
	if collect {
		st.CoarseTime += time.Since(t0)
		st.CoarseCandidates += len(cands)
		t0 = time.Now()
	}
	// fine evaluates one candidate; it reads only immutable searcher
	// state (termSet is not mutated during the fine phase) plus the
	// caller-owned scratch, so it is safe to run concurrently as long
	// as each worker passes its own scratch. Its stats contribution
	// returns by value (fineWork), so the parallel path needs no
	// shared state.
	coder := s.coder
	useBitvector := opts.FineMode == FineFull && opts.Kernel() == FineKernelBitvector
	if useBitvector && len(cands) > 0 {
		s.bvProfile.Build(query, s.scoring)
	}
	fine := func(c Candidate, sc *seedScratch) (Result, bool, fineWork) {
		var fw fineWork
		seq := s.src.Sequence(c.ID)
		var r Result
		r.ID = c.ID
		r.Coarse = c.Score

		var seed seedHit
		haveSeed := false
		if opts.Prescreen > 0 || opts.FineMode == FineBanded && !c.HasOff {
			seed, haveSeed = s.bestSeed(coder, seq, sc)
		}
		if opts.Prescreen > 0 {
			var p0 time.Time
			if collect {
				p0 = time.Now()
			}
			pass := haveSeed
			if haveSeed {
				score, _, _, _, _ := align.ExtendUngapped(
					query, seq, seed.qPos, seed.sPos, s.opts.K, s.scoring, prescreenXDrop)
				pass = score >= opts.Prescreen
			}
			if collect {
				fw.prescreen = time.Since(p0)
				fw.rejected = !pass
			}
			if !pass {
				return r, false, fw
			}
		}
		switch opts.FineMode {
		case FineFull:
			if useBitvector {
				if score, ok := s.bvProfile.Score(seq, &sc.bv); ok {
					// Exact score, no transcript: rank on it and defer
					// the full traceback to the results that survive
					// MinScore and Limit (see finishTracebacks), exactly
					// like the banded score-only pass.
					r.Score = score
					r.Alignment = align.Alignment{Score: score}
					if score > 0 {
						r.needsTraceback = true
						r.fullTraceback = true
					}
					if collect {
						fw.cells = align.LocalCells(len(query), len(seq))
						fw.bitvector = true
					}
					break
				}
			}
			// Scalar kernel, or the per-candidate fallback when the pair
			// exceeds the bitvector lanes' capacity.
			r.Alignment = align.Local(query, seq, s.scoring)
			r.Score = r.Alignment.Score
			if collect {
				fw.cells = align.LocalCells(len(query), len(seq))
			}
		case FineBanded:
			centre := 0
			switch {
			case c.HasOff:
				centre = c.Diag
			case haveSeed:
				centre = seed.diag
			}
			// Ranking needs only the score; the traceback matrix is
			// deferred to the results that survive MinScore and Limit
			// (see finishTracebacks).
			score, aEnd, bEnd := align.BandedLocalScore(query, seq, centre, opts.Band, s.scoring)
			r.Score = score
			r.Alignment = align.Alignment{Score: score, AStart: aEnd, AEnd: aEnd, BStart: bEnd, BEnd: bEnd}
			r.bandCentre = centre
			r.needsTraceback = score > 0
			if collect {
				fw.cells = align.BandedCells(len(query), len(seq), centre, opts.Band)
			}
		}
		fw.aligned = true
		return r, r.Score >= opts.MinScore, fw
	}

	results := make([]Result, 0, len(cands))
	if opts.FineWorkers <= 1 || len(cands) < 2 {
		sc := s.fineScratch(1)[0]
		for _, c := range cands {
			if err := ctx.Err(); err != nil {
				if collect {
					st.FineTime += time.Since(t0)
				}
				return nil, err
			}
			r, ok, fw := fine(c, sc)
			if collect {
				st.addFine(fw)
			}
			if ok {
				results = append(results, r)
			}
		}
		if collect {
			st.FineTime += time.Since(t0)
		}
		return results, nil
	}

	// Parallel fine phase: candidates are distributed across workers
	// and collected in candidate order, so output is identical to the
	// serial path. Per-candidate stats ride in the slots and fold in
	// after the join, keeping the workers free of shared counters.
	// Workers check ctx before claiming each candidate and stop early
	// when it is done; the join then surfaces ctx.Err() once.
	type slot struct {
		r  Result
		ok bool
		fw fineWork
	}
	slots := make([]slot, len(cands))
	workers := opts.FineWorkers
	if workers > len(cands) {
		workers = len(cands)
	}
	scratches := s.fineScratch(workers)
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sc *seedScratch) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(cands) {
					return
				}
				r, ok, fw := fine(cands[i], sc)
				slots[i] = slot{r, ok, fw}
			}
		}(scratches[w])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		if collect {
			st.FineTime += time.Since(t0)
		}
		return nil, err
	}
	for _, sl := range slots {
		if collect {
			st.addFine(sl.fw)
		}
		if sl.ok {
			results = append(results, sl.r)
		}
	}
	if collect {
		st.FineTime += time.Since(t0)
	}
	return results, nil
}

// prescreenXDrop is the x-drop for the middle-phase ungapped
// extension; generous enough to climb through scattered mismatches.
const prescreenXDrop = 30

// Coarse runs only the coarse phase, returning every sequence with at
// least minHits distinct query intervals, ranked best-first under mode.
// Exposed for the recall experiments, which sweep the candidate budget
// over a single coarse ranking — so unlike Search's internal coarse
// call it keeps the full sort over every touched sequence instead of
// the bounded top-k selection.
func (s *Searcher) Coarse(query []byte, mode CoarseMode, minHits int) ([]Candidate, error) {
	return s.coarse(context.Background(), query, CoarseBackendPostings, mode, minHits, 1, 0, nil) //cafe:allow ctx context-free wrapper; the recall experiments drive Coarse without a request context
}

// coarse implements the coarse phase: for each segment in order,
// accumulate the query's posting lists (serially, or sharded across
// workers when workers > 1) and fold the segment's qualifying sequences
// — rebased to global ids — into one shared selection. topK > 0 selects
// the best topK with a bounded heap — O(touched·log k) instead of the
// full sort's O(n·log n) — and reuses the searcher's candidate buffer;
// topK ≤ 0 full-sorts every qualifying sequence into a fresh slice (the
// Coarse recall API).
//
// Per-sequence coarse scores are segment-local quantities (distinct and
// total counts, the length-normalised ratio, the densest diagonal), so
// scoring each segment independently and merging through the total
// order (score desc, global id asc — the PR-5 top-k machinery) yields
// exactly the candidate list a monolithic index over the concatenated
// collection would produce. The segmented equivalence suite locks this
// in at every segment count.
//
// Work counters accumulate into st when non-nil (stage timing is the
// caller's job — searchStrand wraps this call in the coarse wall
// clock). Cancellation is checked once per posting list, so the
// per-entry accumulator loop stays hot.
func (s *Searcher) coarse(ctx context.Context, query []byte, backend CoarseBackend, mode CoarseMode, minHits, workers, topK int, st *SearchStats) ([]Candidate, error) {
	if minHits < 1 {
		minHits = 1
	}
	if mode == CoarseDiagonal && !s.opts.StoreOffsets {
		return nil, fmt.Errorf("core: diagonal coarse mode needs an index built with offsets")
	}
	coder := s.coder
	if len(query) < coder.Span() {
		return nil, fmt.Errorf("core: query length %d shorter than interval span %d", len(query), coder.Span())
	}

	// Collect the query's distinct terms with their offsets.
	clear(s.termSet)
	coder.ExtractFunc(query, func(pos int, t kmer.Term) {
		s.termSet[t] = append(s.termSet[t], pos)
	})

	if st != nil {
		st.QueryTerms += len(s.termSet)
	}
	if workers > len(s.termSet) {
		workers = len(s.termSet)
	}

	// Selection state shared across segments: the bounded heap (or the
	// full-sort slice) receives every segment's qualifying sequences.
	var sel topKHeap
	var cands []Candidate
	if topK > 0 {
		sel = topKHeap{k: topK, heap: s.candBuf[:0]}
	}

	for _, seg := range s.segs {
		var diag *diagAcc
		var err error
		switch {
		case backend == CoarseBackendSignature:
			diag, err = s.accumulateSignature(ctx, seg, mode, minHits, workers, st)
		case workers > 1:
			diag, err = s.accumulateSharded(ctx, seg, mode, workers, st)
		default:
			diag, err = s.accumulateSerial(ctx, seg, mode, st)
		}
		if err != nil {
			return nil, err
		}
		if st != nil {
			st.CoarseSequences += len(s.acc.touched)
			st.Segments++
		}

		var diagBest map[uint32]diagResult
		if diag != nil {
			diagBest = diag.finalize()
		}
		score := func(local, hits int) Candidate {
			c := Candidate{ID: seg.Base + local, Hits: hits}
			switch mode {
			case CoarseDistinct:
				c.Score = float64(hits)
			case CoarseTotal:
				c.Score = float64(s.acc.total[local])
			case CoarseNormalised:
				c.Score = float64(hits) / math.Log2(float64(seg.Index.SeqLen(local))+16)
			case CoarseDiagonal:
				r := diagBest[uint32(local)]
				c.Score = float64(r.score)
				c.Diag = r.diag
				c.HasOff = true
			}
			return c
		}

		for _, local := range s.acc.touched {
			hits := int(s.acc.distinct[local])
			if hits < minHits {
				continue
			}
			if seg.Deleted != nil && seg.Deleted(local) {
				continue
			}
			if topK > 0 {
				// Bounded selection: only the candidate budget survives,
				// and the ordering is total (score desc, ID asc — global
				// ids are unique across segments), so the heap's output
				// is exactly the monolithic full sort's prefix.
				sel.push(score(local, hits))
			} else {
				cands = append(cands, score(local, hits))
			}
		}
	}

	if topK > 0 {
		// The sorted selection aliases the pooled buffer; it is consumed
		// entirely within this query's fine phase, before the buffer's
		// next reuse.
		out := sel.sorted()
		s.candBuf = out[:0]
		return out, nil
	}
	sort.Slice(cands, func(i, j int) bool { return candBetter(cands[i], cands[j]) })
	return cands, nil
}

// accumulateSerial walks every posting list of one segment into the
// searcher's accumulator on the calling goroutine — the workers ≤ 1
// path. Accumulator slots are the segment's local ids.
func (s *Searcher) accumulateSerial(ctx context.Context, seg Segment, mode CoarseMode, st *SearchStats) (*diagAcc, error) {
	s.acc.reset()
	diag := newDiagAcc(mode == CoarseDiagonal)
	for t, qPositions := range s.termSet {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		df, listBytes := seg.Index.ReaderStats(t, &s.it)
		if df == 0 {
			continue
		}
		if st != nil {
			st.PostingLists++
			st.PostingsBytesRead += int64(listBytes)
		}
		for s.it.Next() {
			e := s.it.Entry()
			s.acc.bump(int(e.ID), 1, int(e.Count))
			if diag != nil {
				for _, qp := range qPositions {
					for _, off := range e.Offsets {
						diag.add(e.ID, int(off)-qp)
					}
				}
			}
		}
		if err := s.it.Err(); err != nil {
			return nil, fmt.Errorf("core: term %d postings: %w", t, err)
		}
		if st != nil {
			st.PostingsDecoded += int64(s.it.Decoded())
		}
	}
	if st != nil {
		st.CoarseShards++
	}
	return diag, nil
}

// accumulateSharded partitions the query's posting lists over one
// segment across workers, each folding its share into a private
// per-shard accumulator (and diagonal accumulator under
// CoarseDiagonal), then merges the shards into the searcher's
// accumulator. Interval counts are sums, so the merged totals are
// identical to the serial walk no matter how the lists were partitioned
// — which is what makes the sharded coarse byte-identical to the serial
// one. Workers check ctx before claiming each list; on cancellation
// nothing merges and ctx.Err() is returned.
func (s *Searcher) accumulateSharded(ctx context.Context, seg Segment, mode CoarseMode, workers int, st *SearchStats) (*diagAcc, error) {
	jobs := s.termJobs[:0]
	for t, qPositions := range s.termSet {
		jobs = append(jobs, termJob{t: t, qPos: qPositions})
	}
	s.termJobs = jobs[:0]

	diagonal := mode == CoarseDiagonal
	shards := s.coarseShards(workers)
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		sh := shards[w]
		sh.reset(diagonal)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil && sh.err == nil {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				sh.accumulate(seg.Index, jobs[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, sh := range shards {
		if sh.err != nil {
			return nil, sh.err //cafe:allow poolescape the error is a fresh fmt.Errorf value, not reused backing; reset clears the shard's reference before the next query
		}
	}

	// Deterministic merge: per-sequence counters are order-independent
	// sums, and the diagonal buckets merge by key, so any partition of
	// the lists produces the same merged state.
	s.acc.reset()
	diag := newDiagAcc(diagonal)
	for _, sh := range shards {
		for _, id := range sh.acc.touched {
			s.acc.bump(id, int(sh.acc.distinct[id]), int(sh.acc.total[id]))
		}
		if diag != nil {
			for key, n := range sh.diag.counts {
				diag.counts[key] += n
			}
		}
		if st != nil {
			st.PostingLists += sh.lists
			st.PostingsDecoded += sh.decoded
			st.PostingsBytesRead += sh.bytes
		}
	}
	if st != nil {
		st.CoarseShards += workers
	}
	return diag, nil
}

// seedHit is one shared interval on a candidate's strongest diagonal.
type seedHit struct {
	diag, qPos, sPos int
}

// seedScratch is the reusable state of one bestSeed evaluation: the
// per-diagonal hit counters, the first shared interval seen on each
// diagonal, and a pre-bound extraction callback so the fine hot path
// allocates no closure per candidate. One scratch belongs to exactly
// one fine worker at a time (see Searcher.fineScratch).
type seedScratch struct {
	counts   map[int]int
	firstHit map[int][2]int
	// termSet is the current query's term→offsets map, set by bestSeed
	// before each extraction; extract reads it through the struct so
	// the callback closes over nothing query-specific.
	termSet map[kmer.Term][]int //cafe:pooled borrowed from the searcher for the current query only
	extract func(sPos int, t kmer.Term)
	// bv is the worker's bitvector-kernel scratch (DP columns), reused
	// across candidates; it rides in the seed scratch so the fine
	// phase's one-scratch-per-worker discipline covers both kernels.
	bv align.StripedScratch
}

func newSeedScratch() *seedScratch {
	sc := &seedScratch{
		counts:   make(map[int]int),
		firstHit: make(map[int][2]int),
	}
	sc.extract = func(sPos int, t kmer.Term) {
		for _, qp := range sc.termSet[t] {
			d := sPos - qp
			sc.counts[d]++
			if _, ok := sc.firstHit[d]; !ok {
				sc.firstHit[d] = [2]int{qp, sPos}
			}
		}
	}
	return sc
}

// bestSeed finds the strongest alignment diagonal of the query against
// seq by binning shared intervals, and returns a shared interval on it
// — the anchor for banded centring and for the prescreen extension. It
// reports false when the sequences share no interval (possible when a
// stopped term admitted the candidate via another strand or mode).
// It runs once per candidate inside the fine phase, so its scratch is
// pooled per worker rather than allocated per call.
//
//cafe:hotpath
func (s *Searcher) bestSeed(coder *kmer.Coder, seq []byte, sc *seedScratch) (seedHit, bool) {
	clear(sc.counts)
	clear(sc.firstHit)
	sc.termSet = s.termSet
	coder.ExtractFunc(seq, sc.extract)
	best, bestDiag, found := 0, 0, false
	for d, n := range sc.counts {
		if n > best || n == best && found && d < bestDiag {
			best, bestDiag, found = n, d, true
		}
	}
	if !found {
		return seedHit{}, false
	}
	hit := sc.firstHit[bestDiag]
	return seedHit{diag: bestDiag, qPos: hit[0], sPos: hit[1]}, true
}

// accumulators is the coarse-phase scratch: per-sequence distinct-term
// and total-occurrence counters with O(touched) reset.
type accumulators struct {
	distinct []int32
	total    []int32
	touched  []int
}

func newAccumulators(n int) accumulators {
	return accumulators{
		distinct: make([]int32, n),
		total:    make([]int32, n),
	}
}

//cafe:hotpath
func (a *accumulators) bump(id, distinct, total int) {
	if a.distinct[id] == 0 && a.total[id] == 0 {
		a.touched = append(a.touched, id) //cafe:allow amortised scratch; stabilises at the high-water mark across queries
	}
	a.distinct[id] += int32(distinct)
	a.total[id] += int32(total)
}

//cafe:hotpath
func (a *accumulators) reset() {
	for _, id := range a.touched {
		a.distinct[id] = 0
		a.total[id] = 0
	}
	a.touched = a.touched[:0]
}

// diagAcc clusters hits into diagonal bands of width diagBand per
// sequence, for the FRAMES-style coarse mode.
const diagBand = 16

type diagAcc struct {
	counts map[uint64]int32
}

func newDiagAcc(enabled bool) *diagAcc {
	if !enabled {
		return nil
	}
	return &diagAcc{counts: make(map[uint64]int32)}
}

func (d *diagAcc) add(id uint32, diag int) {
	// Bias the diagonal so the bucket key is non-negative.
	b := uint64(uint32((diag + (1 << 30)) / diagBand))
	d.counts[uint64(id)<<32|b]++
}

// diagResult is the densest diagonal band of one sequence.
type diagResult struct {
	score int32
	diag  int
}

// finalize computes, for every sequence seen, the largest
// two-adjacent-bucket mass and the centre diagonal of the winning band,
// in one pass over the accumulated counts.
func (d *diagAcc) finalize() map[uint32]diagResult {
	out := make(map[uint32]diagResult)
	for key, n := range d.counts {
		id := uint32(key >> 32)
		b := key & 0xFFFFFFFF
		m := n
		if nb, ok := d.counts[key&^uint64(0xFFFFFFFF)|(b+1)]; ok {
			m += nb
		}
		centre := int(b)*diagBand + diagBand - (1 << 30)
		cur, ok := out[id]
		if !ok || m > cur.score || m == cur.score && centre < cur.diag {
			out[id] = diagResult{score: m, diag: centre}
		}
	}
	return out
}
