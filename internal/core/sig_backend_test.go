package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/db"
	"nucleodb/internal/index"
	"nucleodb/internal/kmer"
	"nucleodb/internal/sig"
)

// subSource exposes one segment's slice of a store to sig.Build.
type subSource struct {
	store   *db.Store
	base, n int
}

func (v subSource) Len() int              { return v.n }
func (v subSource) Sequence(i int) []byte { return v.store.Sequence(v.base + i) }

// attachSigs builds a signature index for every segment, excluding each
// segment's stopped terms — the same term sets the posting lists hold.
func attachSigs(t *testing.T, store *db.Store, segs []Segment) []Segment {
	t.Helper()
	out := make([]Segment, len(segs))
	for i, sg := range segs {
		var skip func(kmer.Term) bool
		if sg.Index.NumStopped() > 0 {
			skip = sg.Index.Stopped
		}
		sx, err := sig.Build(subSource{store, sg.Base, sg.Index.NumSeqs()}, sg.Index.Coder(), skip, sig.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = sg
		out[i].Sig = sx
	}
	return out
}

// TestSignatureBackendEquivalence is the cross-backend contract: for
// every coarse mode, strand setting, worker grid and MinCoarseHits, a
// search through the bit-sliced signature backend must return final
// results reflect.DeepEqual-identical to the postings backend — the
// signatures admit false-positive candidates but verification restores
// the exact coarse counts, so even the coarse scores and candidate
// ordering agree. Runs over monolithic and multi-segment searchers,
// with and without index stopping.
func TestSignatureBackendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	for _, idxOpts := range []index.Options{
		{K: 9, StoreOffsets: true},
		{K: 8, StoreOffsets: true, StopFraction: 0.01},
	} {
		f := makeFixture(t, 406, idxOpts)
		for _, numSegs := range []int{1, 3} {
			var segs []Segment
			if numSegs == 1 {
				segs = []Segment{{Index: f.idx}}
			} else {
				segs = splitSegments(t, f, rng, numSegs)
			}
			segs = attachSigs(t, f.store, segs)
			s, err := NewSegmentedSearcher(segs, f.store, align.DefaultScoring(), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []CoarseMode{CoarseDistinct, CoarseTotal, CoarseNormalised, CoarseDiagonal} {
				for _, minHits := range []int{1, 2} {
					for _, workers := range []int{0, 3} {
						opts := DefaultOptions()
						opts.CoarseMode = mode
						opts.MinCoarseHits = minHits
						opts.CoarseWorkers = workers
						opts.BothStrands = mode == CoarseTotal
						name := fmt.Sprintf("stop=%v segs=%d mode=%v minHits=%d workers=%d",
							idxOpts.StopFraction > 0, numSegs, mode, minHits, workers)

						opts.CoarseBackend = CoarseBackendPostings
						want, err := s.Search(f.query, opts)
						if err != nil {
							t.Fatalf("%s: postings: %v", name, err)
						}
						opts.CoarseBackend = CoarseBackendSignature
						got, err := s.Search(f.query, opts)
						if err != nil {
							t.Fatalf("%s: signature: %v", name, err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s: signature results differ from postings\n got %+v\nwant %+v", name, got, want)
						}
					}
				}
			}
		}
	}
}

// TestSignatureBackendStats checks the signature path's telemetry: the
// resolved backend name, probe and candidate counters, and that
// verification never reports more false positives than candidates.
func TestSignatureBackendStats(t *testing.T) {
	f := makeFixture(t, 410, index.Options{K: 9, StoreOffsets: true})
	segs := attachSigs(t, f.store, []Segment{{Index: f.idx}})
	s, err := NewSegmentedSearcher(segs, f.store, align.DefaultScoring(), nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.CoarseBackend = CoarseBackendSignature
	var st SearchStats
	if _, err := s.SearchWithStats(f.query, opts, &st); err != nil {
		t.Fatal(err)
	}
	if st.CoarseBackend != "signature" {
		t.Errorf("CoarseBackend = %q, want signature", st.CoarseBackend)
	}
	if st.SigProbes == 0 {
		t.Error("SigProbes = 0 after a signature search")
	}
	if st.SigCandidates == 0 {
		t.Error("SigCandidates = 0 for a homologous query")
	}
	if st.SigFalsePositives > st.SigCandidates {
		t.Errorf("SigFalsePositives %d exceeds SigCandidates %d", st.SigFalsePositives, st.SigCandidates)
	}
	if st.PostingLists != 0 || st.PostingsDecoded != 0 {
		t.Errorf("signature search read posting lists (%d lists, %d decoded)", st.PostingLists, st.PostingsDecoded)
	}

	opts.CoarseBackend = CoarseBackendAuto
	if _, err := s.SearchWithStats(f.query, opts, &st); err != nil {
		t.Fatal(err)
	}
	if st.CoarseBackend != "postings" {
		t.Errorf("auto resolved to %q, want postings", st.CoarseBackend)
	}
}

// TestSignatureBackendRequiresSignatures: an explicit signature search
// against segments without signature indexes must error, and a
// signature index whose sequence count disagrees with the segment's
// index must be rejected at construction.
func TestSignatureBackendRequiresSignatures(t *testing.T) {
	f := makeFixture(t, 411, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()
	opts.CoarseBackend = CoarseBackendSignature
	if _, err := s.Search(f.query, opts); err == nil {
		t.Fatal("signature search over a sig-less searcher succeeded")
	}

	tiny := subSource{f.store, 0, 2}
	sx, err := sig.Build(tiny, f.idx.Coder(), nil, sig.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewSegmentedSearcher([]Segment{{Index: f.idx, Sig: sx}}, f.store, align.DefaultScoring(), nil)
	if err == nil {
		t.Fatal("mismatched signature sequence count accepted")
	}
}

// TestCoarseValidationExhaustive enumerates the accepted coarse modes
// and backends through their String() coverage: every named value must
// validate, every value one past the end must be rejected — the
// exhaustive-switch regression for the old `> CoarseDiagonal` range
// check, which silently widened whenever a new mode was appended.
func TestCoarseValidationExhaustive(t *testing.T) {
	modes := []CoarseMode{CoarseDistinct, CoarseTotal, CoarseNormalised, CoarseDiagonal}
	for _, m := range modes {
		opts := DefaultOptions()
		opts.CoarseMode = m
		if err := opts.validate(); err != nil {
			t.Errorf("mode %v rejected: %v", m, err)
		}
	}
	for _, m := range []CoarseMode{CoarseMode(-1), CoarseDiagonal + 1, CoarseMode(99)} {
		opts := DefaultOptions()
		opts.CoarseMode = m
		if err := opts.validate(); err == nil {
			t.Errorf("mode %d accepted", int(m))
		}
	}

	backends := []CoarseBackend{CoarseBackendAuto, CoarseBackendPostings, CoarseBackendSignature}
	names := map[string]bool{}
	for _, b := range backends {
		opts := DefaultOptions()
		opts.CoarseBackend = b
		if err := opts.validate(); err != nil {
			t.Errorf("backend %v rejected: %v", b, err)
		}
		if s := b.String(); s == "invalid" || names[s] {
			t.Errorf("backend %d has String %q", int(b), s)
		} else {
			names[b.String()] = true
		}
	}
	for _, b := range []CoarseBackend{CoarseBackend(-1), CoarseBackendSignature + 1} {
		opts := DefaultOptions()
		opts.CoarseBackend = b
		if err := opts.validate(); err == nil {
			t.Errorf("backend %d accepted", int(b))
		}
		if b.String() != "invalid" {
			t.Errorf("backend %d String = %q, want invalid", int(b), b.String())
		}
	}

	// String coverage for the modes: distinct names, no fallthrough.
	seen := map[string]bool{}
	for _, m := range modes {
		s := m.String()
		if s == "" || seen[s] {
			t.Errorf("mode %d has String %q", int(m), s)
		}
		seen[s] = true
	}
}
