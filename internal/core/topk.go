package core

import "sort"

// candBetter reports whether a ranks strictly ahead of b in the coarse
// ordering: higher score first, ties broken by lower ID. IDs are
// unique, so this is a total order — the property that makes bounded
// top-k selection reproduce the full sort's prefix exactly.
func candBetter(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// topKHeap selects the k best candidates from a stream: a min-heap of
// the best k seen so far, rooted at the weakest kept, so each push is
// O(log k) and selecting the candidate budget from n touched sequences
// costs O(n·log k) instead of the full sort's O(n·log n). The heap
// backing comes from the searcher's pooled candidate buffer, so
// steady-state selection allocates nothing.
type topKHeap struct {
	k    int
	heap []Candidate // min-heap on rank: heap[0] is the weakest kept
}

// worse reports whether heap[i] ranks strictly below heap[j].
func (t *topKHeap) worse(i, j int) bool { return candBetter(t.heap[j], t.heap[i]) }

// push offers one candidate, evicting the current weakest when the
// heap is full and c outranks it.
func (t *topKHeap) push(c Candidate) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, c)
		t.up(len(t.heap) - 1)
		return
	}
	if candBetter(c, t.heap[0]) {
		t.heap[0] = c
		t.down(0)
	}
}

func (t *topKHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(i, p) {
			return
		}
		t.heap[i], t.heap[p] = t.heap[p], t.heap[i]
		i = p
	}
}

func (t *topKHeap) down(i int) {
	n := len(t.heap)
	for {
		w := i
		if l := 2*i + 1; l < n && t.worse(l, w) {
			w = l
		}
		if r := 2*i + 2; r < n && t.worse(r, w) {
			w = r
		}
		if w == i {
			return
		}
		t.heap[i], t.heap[w] = t.heap[w], t.heap[i]
		i = w
	}
}

// sorted orders the kept candidates best-first in place and returns
// them. The heap is spent afterwards.
func (t *topKHeap) sorted() []Candidate {
	sort.Slice(t.heap, func(i, j int) bool { return candBetter(t.heap[i], t.heap[j]) })
	return t.heap
}
