package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/db"
	"nucleodb/internal/index"
)

// splitSegments re-indexes the fixture's store as k contiguous segments
// with random boundaries, returning the core segment descriptors.
func splitSegments(t *testing.T, f *fixture, rng *rand.Rand, k int) []Segment {
	t.Helper()
	n := f.store.Len()
	// k-1 distinct random cut points; empty segments are not allowed by
	// construction (each segment gets at least one record).
	cuts := map[int]bool{}
	for len(cuts) < k-1 {
		cuts[1+rng.Intn(n-1)] = true
	}
	bounds := []int{0}
	for i := 1; i < n; i++ {
		if cuts[i] {
			bounds = append(bounds, i)
		}
	}
	bounds = append(bounds, n)

	segs := make([]Segment, 0, k)
	for s := 0; s+1 < len(bounds); s++ {
		var sub db.Store
		for i := bounds[s]; i < bounds[s+1]; i++ {
			sub.Add(f.store.Desc(i), f.store.Sequence(i))
		}
		idx, err := index.Build(&sub, f.idx.Options())
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, Segment{Index: idx, Base: bounds[s]})
	}
	return segs
}

// TestSegmentedSearchEquivalence is the engine's segmentation
// invariant: a searcher over any segmentation of the collection
// returns results byte-identical to the monolithic searcher, for every
// coarse mode, both fine kernels, and serial and sharded worker
// settings — segment count 1 through 8 with random boundaries.
func TestSegmentedSearchEquivalence(t *testing.T) {
	f := makeFixture(t, 77, index.Options{K: 9, StoreOffsets: true})
	mono := newTestSearcher(t, f)
	rng := rand.New(rand.NewSource(78))

	type fineCfg struct {
		mode   FineMode
		kernel FineKernel
	}
	fines := []fineCfg{
		{FineBanded, FineKernelScalar},
		{FineFull, FineKernelScalar},
		{FineFull, FineKernelBitvector},
	}
	modes := []CoarseMode{CoarseDistinct, CoarseTotal, CoarseNormalised, CoarseDiagonal}
	grids := []struct{ coarse, fine int }{{0, 0}, {3, 2}}

	for k := 1; k <= 8; k++ {
		segs := splitSegments(t, f, rng, k)
		seg, err := NewSegmentedSearcher(segs, f.store, align.DefaultScoring(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if seg.NumSegments() != k {
			t.Fatalf("NumSegments = %d, want %d", seg.NumSegments(), k)
		}
		for _, cm := range modes {
			for _, fc := range fines {
				for _, g := range grids {
					opts := DefaultOptions()
					opts.CoarseMode = cm
					opts.FineMode = fc.mode
					opts.FineKernel = fc.kernel
					opts.CoarseWorkers = g.coarse
					opts.FineWorkers = g.fine
					opts.BothStrands = cm == CoarseDiagonal // exercise the strand loop too
					name := fmt.Sprintf("k=%d mode=%v fine=%v/%v workers=%d/%d",
						k, cm, fc.mode, fc.kernel, g.coarse, g.fine)

					var wantSt, gotSt SearchStats
					want, err := mono.SearchWithStats(f.query, opts, &wantSt)
					if err != nil {
						t.Fatalf("%s: mono: %v", name, err)
					}
					got, err := seg.SearchWithStats(f.query, opts, &gotSt)
					if err != nil {
						t.Fatalf("%s: segmented: %v", name, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: segmented results diverge\n got %+v\nwant %+v", name, got, want)
					}
					// Postings decoded are partitioned, never duplicated
					// or dropped, across segments.
					if gotSt.PostingsDecoded != wantSt.PostingsDecoded {
						t.Errorf("%s: PostingsDecoded %d != %d", name, gotSt.PostingsDecoded, wantSt.PostingsDecoded)
					}
					strands := 1
					if opts.BothStrands {
						strands = 2
					}
					if gotSt.Segments != k*strands {
						t.Errorf("%s: stats Segments = %d, want %d", name, gotSt.Segments, k*strands)
					}
				}
			}
		}
	}
}

// TestSegmentedDeletedFilter checks the tombstone filter: a deleted
// record vanishes from results, everything else is unchanged relative
// to a searcher without the filter.
func TestSegmentedDeletedFilter(t *testing.T) {
	f := makeFixture(t, 79, index.Options{K: 9, StoreOffsets: true})
	plain := newTestSearcher(t, f)
	opts := DefaultOptions()
	opts.Limit = 0
	base, err := plain.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) < 2 {
		t.Skip("fixture produced too few results")
	}
	dead := base[0].ID

	seg := Segment{Index: f.idx, Deleted: func(local int) bool { return local == dead }}
	filtered, err := NewSegmentedSearcher([]Segment{seg}, f.store, align.DefaultScoring(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := filtered.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := base[:0:0]
	for _, r := range base {
		if r.ID != dead {
			want = append(want, r)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tombstone filter broke results\n got %+v\nwant %+v", got, want)
	}
}

func TestNewSegmentedSearcherValidates(t *testing.T) {
	f := makeFixture(t, 80, index.Options{K: 9, StoreOffsets: true})
	if _, err := NewSegmentedSearcher(nil, f.store, align.DefaultScoring(), nil); err == nil {
		t.Error("empty segment list accepted")
	}
	// Gap in the global id space.
	if _, err := NewSegmentedSearcher([]Segment{{Index: f.idx, Base: 1}}, f.store, align.DefaultScoring(), nil); err == nil {
		t.Error("non-contiguous base accepted")
	}
	// Sequence count mismatch with the source.
	var empty db.Store
	if _, err := NewSegmentedSearcher([]Segment{{Index: f.idx}}, &empty, align.DefaultScoring(), nil); err == nil {
		t.Error("source length mismatch accepted")
	}
	// Differing build options across segments.
	other, err := index.Build(f.store, index.Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	segs := []Segment{{Index: f.idx}, {Index: other, Base: f.store.Len()}}
	var double db.Store
	for i := 0; i < f.store.Len(); i++ {
		double.Add(f.store.Desc(i), f.store.Sequence(i))
	}
	for i := 0; i < f.store.Len(); i++ {
		double.Add(f.store.Desc(i), f.store.Sequence(i))
	}
	if _, err := NewSegmentedSearcher(segs, &double, align.DefaultScoring(), nil); err == nil {
		t.Error("mixed build options accepted")
	}
}
