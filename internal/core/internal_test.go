package core

import (
	"testing"
)

func TestAccumulators(t *testing.T) {
	acc := newAccumulators(10)
	acc.bump(3, 1, 5)
	acc.bump(3, 1, 2)
	acc.bump(7, 1, 1)
	if acc.distinct[3] != 2 || acc.total[3] != 7 {
		t.Errorf("seq 3 counters = %d/%d", acc.distinct[3], acc.total[3])
	}
	if len(acc.touched) != 2 {
		t.Errorf("touched = %v", acc.touched)
	}
	acc.reset()
	if acc.distinct[3] != 0 || acc.total[3] != 0 || acc.distinct[7] != 0 {
		t.Error("reset left residue")
	}
	if len(acc.touched) != 0 {
		t.Error("touched not cleared")
	}
	// Reuse after reset.
	acc.bump(3, 1, 1)
	if acc.distinct[3] != 1 || len(acc.touched) != 1 {
		t.Error("reuse after reset broken")
	}
}

func TestDiagAccBands(t *testing.T) {
	d := newDiagAcc(true)
	// Sequence 5: a dense band around diagonal 100 (bucket boundary
	// spanning), sequence 9: one lone hit.
	for _, diag := range []int{96, 100, 104, 108, 112} {
		d.add(5, diag)
	}
	d.add(9, -50)
	best := d.finalize()
	r5 := best[5]
	if r5.score != 5 {
		t.Errorf("seq 5 band score = %d, want 5", r5.score)
	}
	// The winning band must sit near diagonal 100.
	if r5.diag < 80 || r5.diag > 140 {
		t.Errorf("seq 5 band centre = %d, want near 100", r5.diag)
	}
	r9 := best[9]
	if r9.score != 1 {
		t.Errorf("seq 9 band score = %d, want 1", r9.score)
	}
	if r9.diag > 0 || r9.diag < -100 {
		t.Errorf("seq 9 band centre = %d, want near -50", r9.diag)
	}
}

func TestDiagAccNegativeDiagonals(t *testing.T) {
	d := newDiagAcc(true)
	for i := 0; i < 4; i++ {
		d.add(1, -1000-i)
	}
	best := d.finalize()
	if best[1].score != 4 {
		t.Errorf("negative-diagonal band score = %d, want 4", best[1].score)
	}
	if got := best[1].diag; got > -960 || got < -1040 {
		t.Errorf("band centre = %d, want near -1000", got)
	}
}

func TestDiagAccDisabled(t *testing.T) {
	if d := newDiagAcc(false); d != nil {
		t.Error("disabled diagAcc not nil")
	}
}
