package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/dna"
	"nucleodb/internal/index"
)

// TestFineKernelEquivalence is the end-to-end differential harness of
// the bitvector kernel: the same search run with the scalar and the
// bitvector fine kernel must return byte-identical result lists —
// scores, rankings, spans and transcripts — across every coarse mode,
// both strand settings, and serial/parallel coarse and fine phases.
func TestFineKernelEquivalence(t *testing.T) {
	f := makeFixture(t, 61, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	modes := []CoarseMode{CoarseDistinct, CoarseTotal, CoarseNormalised, CoarseDiagonal}
	for _, mode := range modes {
		for _, both := range []bool{false, true} {
			for _, cw := range []int{1, 3} {
				for _, fw := range []int{1, 4} {
					opts := DefaultOptions()
					opts.CoarseMode = mode
					opts.FineMode = FineFull
					opts.BothStrands = both
					opts.CoarseWorkers = cw
					opts.FineWorkers = fw

					opts.FineKernel = FineKernelScalar
					var scalarStats SearchStats
					want, err := s.SearchWithStats(f.query, opts, &scalarStats)
					if err != nil {
						t.Fatalf("%v both=%v cw=%d fw=%d scalar: %v", mode, both, cw, fw, err)
					}

					opts.FineKernel = FineKernelBitvector
					var bvStats SearchStats
					got, err := s.SearchWithStats(f.query, opts, &bvStats)
					if err != nil {
						t.Fatalf("%v both=%v cw=%d fw=%d bitvector: %v", mode, both, cw, fw, err)
					}

					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%v both=%v cw=%d fw=%d: bitvector results differ from scalar\n got %+v\nwant %+v",
							mode, both, cw, fw, got, want)
					}
					if len(want) == 0 {
						t.Fatalf("%v both=%v: degenerate test, no results", mode, both)
					}

					// The kernels did the same logical work and labelled
					// themselves truthfully.
					if scalarStats.FineKernel != "scalar" || scalarStats.BitvectorAlignments != 0 {
						t.Fatalf("scalar stats: kernel %q, bitvector alignments %d",
							scalarStats.FineKernel, scalarStats.BitvectorAlignments)
					}
					if bvStats.FineKernel != "bitvector" {
						t.Fatalf("bitvector stats: kernel %q", bvStats.FineKernel)
					}
					if bvStats.BitvectorAlignments != bvStats.FineAlignments {
						t.Fatalf("bitvector stats: %d of %d alignments used the kernel (unexpected fallback at these sizes)",
							bvStats.BitvectorAlignments, bvStats.FineAlignments)
					}
					if bvStats.FineAlignments != scalarStats.FineAlignments ||
						bvStats.FineDPCells != scalarStats.FineDPCells {
						t.Fatalf("kernels did different fine work: bitvector %d/%d cells, scalar %d/%d cells",
							bvStats.FineAlignments, bvStats.FineDPCells,
							scalarStats.FineAlignments, scalarStats.FineDPCells)
					}
				}
			}
		}
	}
}

// TestFineKernelAutoAndValidation pins the kernel resolution rules:
// auto is bitvector under FineFull and scalar under FineBanded, and an
// explicit bitvector request under FineBanded is a configuration error.
func TestFineKernelAutoAndValidation(t *testing.T) {
	full := Options{FineMode: FineFull}
	if k := full.Kernel(); k != FineKernelBitvector {
		t.Fatalf("auto under FineFull resolved to %v", k)
	}
	banded := Options{FineMode: FineBanded}
	if k := banded.Kernel(); k != FineKernelScalar {
		t.Fatalf("auto under FineBanded resolved to %v", k)
	}
	explicit := Options{FineMode: FineFull, FineKernel: FineKernelScalar}
	if k := explicit.Kernel(); k != FineKernelScalar {
		t.Fatalf("explicit scalar resolved to %v", k)
	}

	f := makeFixture(t, 62, index.Options{K: 9})
	s := newTestSearcher(t, f)
	bad := DefaultOptions()
	bad.FineMode = FineBanded
	bad.FineKernel = FineKernelBitvector
	if _, err := s.Search(f.query, bad); err == nil {
		t.Fatal("bitvector + FineBanded validated")
	}
	bad.FineKernel = FineKernel(99)
	if _, err := s.Search(f.query, bad); err == nil {
		t.Fatal("out-of-range kernel validated")
	}

	// Auto under FineFull really runs the bitvector kernel; stats say so.
	opts := DefaultOptions()
	opts.FineMode = FineFull
	var st SearchStats
	if _, err := s.SearchWithStats(f.query, opts, &st); err != nil {
		t.Fatal(err)
	}
	if st.FineKernel != "bitvector" || st.BitvectorAlignments == 0 {
		t.Fatalf("auto FineFull stats: kernel %q, %d bitvector alignments", st.FineKernel, st.BitvectorAlignments)
	}
}

// TestFineKernelCapacityFallback drives the per-candidate scalar
// fallback: a scoring whose values overflow the 16-bit lanes makes
// every pair exceed stripe capacity, so the bitvector search must fall
// back to the scalar kernel candidate by candidate and still return
// exactly the scalar results.
func TestFineKernelCapacityFallback(t *testing.T) {
	f := makeFixture(t, 63, index.Options{K: 9, StoreOffsets: true})
	huge := align.Scoring{Match: 20000, Mismatch: 4, GapOpen: 10, GapExtend: 2}
	s, err := NewSearcher(f.idx, f.store, huge)
	if err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.FineMode = FineFull
	opts.MinScore = 1

	opts.FineKernel = FineKernelScalar
	want, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.FineKernel = FineKernelBitvector
	var st SearchStats
	got, err := s.SearchWithStats(f.query, opts, &st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback results differ:\n got %+v\nwant %+v", got, want)
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: no results")
	}
	if st.BitvectorAlignments != 0 {
		t.Fatalf("%d alignments claimed the bitvector kernel despite lane overflow", st.BitvectorAlignments)
	}
	if st.FineAlignments == 0 {
		t.Fatal("no fine alignments ran")
	}
}

// TestFineKernelDegenerateInputs covers the fine phase's edge inputs
// under the bitvector kernel: an all-N query (every interval is a
// wildcard; the coarse phase may admit nothing) and an empty candidate
// set forced by an unsatisfiable MinCoarseHits. Both kernels must agree
// and neither may panic.
func TestFineKernelDegenerateInputs(t *testing.T) {
	f := makeFixture(t, 64, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	allN := make([]byte, 120)
	for i := range allN {
		allN[i] = dna.WildN
	}
	for _, kernel := range []FineKernel{FineKernelScalar, FineKernelBitvector} {
		opts := DefaultOptions()
		opts.FineMode = FineFull
		opts.FineKernel = kernel
		rsN, errN := s.Search(allN, opts)
		if errN != nil {
			t.Fatalf("kernel %v all-N: %v", kernel, errN)
		}
		_ = rsN // agreement with the scalar run is checked below

		opts.MinCoarseHits = 1 << 20
		empty, err := s.Search(f.query, opts)
		if err != nil {
			t.Fatalf("kernel %v empty candidates: %v", kernel, err)
		}
		if len(empty) != 0 {
			t.Fatalf("kernel %v: %d results from an empty candidate set", kernel, len(empty))
		}
	}

	// Cross-kernel agreement on the all-N query, whatever it returns.
	opts := DefaultOptions()
	opts.FineMode = FineFull
	opts.FineKernel = FineKernelScalar
	want, err := s.Search(allN, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.FineKernel = FineKernelBitvector
	got, err := s.Search(allN, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("all-N query: kernels disagree\n got %+v\nwant %+v", got, want)
	}
}

// TestFineKernelCancellation extends PR 5's countdown-ctx coverage into
// the bitvector fine phase: cancellation observed between candidates
// (serial and parallel fine) and during the deferred full tracebacks
// must surface ctx.Err() with no partial results, and the searcher must
// stay usable.
func TestFineKernelCancellation(t *testing.T) {
	f := makeFixture(t, 65, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	opts := DefaultOptions()
	opts.FineMode = FineFull
	opts.FineKernel = FineKernelBitvector

	// Measure the poll budget of each stage from an uncancelled run:
	// 1 entry check + one per query term (serial coarse) + one per
	// candidate (serial fine) + one per deferred traceback.
	var st SearchStats
	results, err := s.SearchWithStats(f.query, opts, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || st.TracebackAlignments == 0 {
		t.Fatal("degenerate fixture: no deferred tracebacks to cancel")
	}
	coarsePolls := 1 + st.QueryTerms
	finePolls := st.CoarseCandidates

	cancelAt := map[string]int64{
		"mid-fine":      int64(coarsePolls + finePolls/2),
		"mid-traceback": int64(coarsePolls + finePolls + 1),
	}
	for name, allow := range cancelAt {
		for _, workers := range []int{1, 4} {
			opts.FineWorkers = workers
			ctx := newCountdownCtx(allow)
			rs, err := s.SearchContext(ctx, f.query, opts)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s workers=%d: err = %v, want context.Canceled", name, workers, err)
			}
			if rs != nil {
				t.Errorf("%s workers=%d: cancelled search returned %d partial results", name, workers, len(rs))
			}
			after, err := s.Search(f.query, opts)
			if err != nil || len(after) == 0 {
				t.Fatalf("%s workers=%d: searcher unusable after cancellation: %v (%d results)",
					name, workers, err, len(after))
			}
		}
	}
}

// TestFineKernelScratchHammer drives the pooled bitvector profile and
// per-worker scratches hard under parallel coarse and fine phases, both
// strands, across repeated searches — the race detector (make
// test-race, CI's race job) turns any scratch-sharing bug into a
// failure, and the result must stay byte-identical to the serial scalar
// reference every iteration.
func TestFineKernelScratchHammer(t *testing.T) {
	f := makeFixture(t, 66, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	ref := DefaultOptions()
	ref.FineMode = FineFull
	ref.FineKernel = FineKernelScalar
	ref.BothStrands = true
	want, err := s.Search(f.query, ref)
	if err != nil {
		t.Fatal(err)
	}

	opts := ref
	opts.FineKernel = FineKernelBitvector
	opts.CoarseWorkers = 4
	opts.FineWorkers = 8
	for i := 0; i < 25; i++ {
		got, err := s.Search(f.query, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: parallel bitvector differs from serial scalar", i)
		}
	}
}
