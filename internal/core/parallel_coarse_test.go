package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/index"
)

// TestShardedCoarseMatchesSerial is the coarse counterpart of
// TestParallelFineMatchesSerial: for every coarse mode and a spread of
// worker counts, the sharded posting-list walk must reproduce the
// serial search byte for byte — IDs, scores, coarse scores, spans and
// transcripts. Per-sequence interval counters are order-independent
// sums and the final ordering is total (score desc, ID asc), so any
// partition of the lists merges to the identical answer; this test
// locks that equivalence in.
func TestShardedCoarseMatchesSerial(t *testing.T) {
	f := makeFixture(t, 331, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	modes := []CoarseMode{CoarseDistinct, CoarseTotal, CoarseNormalised, CoarseDiagonal}
	for _, mode := range modes {
		serial := DefaultOptions()
		serial.CoarseMode = mode
		serial.MinScore = 0
		serial.Limit = 0

		want, err := s.Search(f.query, serial)
		if err != nil {
			t.Fatalf("%v: serial: %v", mode, err)
		}
		for _, workers := range []int{2, 3, 8} {
			sharded := serial
			sharded.CoarseWorkers = workers
			got, err := s.Search(f.query, sharded)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", mode, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v workers=%d: sharded results differ from serial\n got %+v\nwant %+v",
					mode, workers, got, want)
			}
		}
	}
}

// TestShardedCoarseStatsSumToSerial checks the stats contract: the
// per-shard postings counters must sum to exactly the serial values
// (the shards partition the work, they don't repeat or drop any), and
// CoarseShards reports the effective worker count.
func TestShardedCoarseStatsSumToSerial(t *testing.T) {
	f := makeFixture(t, 332, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	for _, mode := range []CoarseMode{CoarseDistinct, CoarseDiagonal} {
		opts := DefaultOptions()
		opts.CoarseMode = mode

		var serial SearchStats
		if _, err := s.SearchWithStats(f.query, opts, &serial); err != nil {
			t.Fatalf("%v: serial: %v", mode, err)
		}
		if serial.CoarseShards != 1 {
			t.Errorf("%v: serial CoarseShards = %d, want 1", mode, serial.CoarseShards)
		}

		const workers = 4
		opts.CoarseWorkers = workers
		var sharded SearchStats
		if _, err := s.SearchWithStats(f.query, opts, &sharded); err != nil {
			t.Fatalf("%v: sharded: %v", mode, err)
		}
		if sharded.CoarseShards != workers {
			t.Errorf("%v: sharded CoarseShards = %d, want %d", mode, sharded.CoarseShards, workers)
		}

		type pair struct {
			name      string
			got, want int64
		}
		for _, p := range []pair{
			{"QueryTerms", int64(sharded.QueryTerms), int64(serial.QueryTerms)},
			{"PostingLists", int64(sharded.PostingLists), int64(serial.PostingLists)},
			{"PostingsDecoded", sharded.PostingsDecoded, serial.PostingsDecoded},
			{"PostingsBytesRead", sharded.PostingsBytesRead, serial.PostingsBytesRead},
			{"CoarseSequences", int64(sharded.CoarseSequences), int64(serial.CoarseSequences)},
			{"CoarseCandidates", int64(sharded.CoarseCandidates), int64(serial.CoarseCandidates)},
			{"Results", int64(sharded.Results), int64(serial.Results)},
		} {
			if p.got != p.want {
				t.Errorf("%v: sharded %s = %d, serial %d", mode, p.name, p.got, p.want)
			}
		}
	}
}

// TestShardedCoarseWithAllKnobs runs the kitchen sink — both strands,
// prescreen, parallel fine phase, sharded coarse phase — against the
// fully serial evaluation. The two parallelism axes compose and every
// phase boundary is crossed, and the answers must still be identical.
func TestShardedCoarseWithAllKnobs(t *testing.T) {
	f := makeFixture(t, 333, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	opts := DefaultOptions()
	opts.BothStrands = true
	opts.Prescreen = 100
	opts.FineWorkers = 4
	opts.CoarseWorkers = 4
	got, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.FineWorkers = 0
	opts.CoarseWorkers = 0
	want, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel results differ from serial\n got %+v\nwant %+v", got, want)
	}
}

// TestCoarseWorkersValidation mirrors TestFineWorkersValidation.
func TestCoarseWorkersValidation(t *testing.T) {
	f := makeFixture(t, 334, index.Options{K: 9})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()
	opts.CoarseWorkers = -1
	if _, err := s.Search(f.query, opts); err == nil {
		t.Error("negative CoarseWorkers accepted")
	}
}

// TestBoundedTopKMatchesFullSort drives the internal coarse call both
// ways — bounded heap selection versus the Coarse recall API's full
// sort — and checks the heap's output is exactly the full ranking's
// prefix, for every mode and several budgets including over-budget.
func TestBoundedTopKMatchesFullSort(t *testing.T) {
	f := makeFixture(t, 335, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	for _, mode := range []CoarseMode{CoarseDistinct, CoarseTotal, CoarseNormalised, CoarseDiagonal} {
		full, err := s.Coarse(f.query, mode, 2)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for _, k := range []int{1, 3, 10, len(full), len(full) + 50} {
			got, err := s.coarse(context.Background(), f.query, CoarseBackendPostings, mode, 2, 1, k, nil)
			if err != nil {
				t.Fatalf("%v k=%d: %v", mode, k, err)
			}
			want := full
			if k < len(full) {
				want = full[:k]
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v k=%d: top-k selection differs from full sort prefix\n got %+v\nwant %+v",
					mode, k, got, want)
			}
		}
	}
}

// countdownCtx cancels itself after a fixed number of Err observations.
// The search pipeline polls only ctx.Err() (never Done), so this gives
// a deterministic mid-pipeline cancellation point: the first check in
// SearchWithStatsContext passes, then a check inside the coarse phase
// observes the cancellation.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(allow int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(allow)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestShardedCoarseCancellation cancels mid-coarse and requires
// ctx.Err() back with no partial results — on the serial walk and on
// the sharded walk, where the workers observe the cancellation while
// claiming lists and the merge must then be skipped entirely.
func TestShardedCoarseCancellation(t *testing.T) {
	f := makeFixture(t, 336, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	for _, workers := range []int{0, 4} {
		opts := DefaultOptions()
		opts.CoarseWorkers = workers
		// Allow exactly the entry check in SearchWithStatsContext; the
		// next Err poll — between posting lists (serial) or at a worker's
		// claim (sharded) — observes the cancellation.
		ctx := newCountdownCtx(1)
		rs, err := s.SearchContext(ctx, f.query, opts)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if rs != nil {
			t.Errorf("workers=%d: cancelled search returned %d partial results", workers, len(rs))
		}

		// The searcher must stay usable after a cancelled search.
		if _, err := s.Search(f.query, opts); err != nil {
			t.Errorf("workers=%d: search after cancellation: %v", workers, err)
		}
	}
}

// TestConcurrentSearchersShardedCoarse runs many searchers (one per
// goroutine, per the documented contract) concurrently, each with a
// sharded coarse phase, against a serial reference. Shard state is
// pooled per searcher, so cross-talk between pools — or a shard
// touching another searcher's accumulator — shows up here under -race
// or as a wrong answer.
func TestConcurrentSearchersShardedCoarse(t *testing.T) {
	f := makeFixture(t, 337, index.Options{K: 9, StoreOffsets: true})

	serial := DefaultOptions()
	serial.MinScore = 0
	serial.Limit = 0
	want, err := newTestSearcher(t, f).Search(f.query, serial)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 6
	const rounds = 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		s, err := NewSearcher(f.idx, f.store, align.DefaultScoring())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *Searcher, g int) {
			defer wg.Done()
			opts := serial
			opts.CoarseWorkers = 2 + g%3
			for r := 0; r < rounds; r++ {
				got, err := s.Search(f.query, opts)
				if err != nil {
					t.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d round %d: results differ from serial reference", g, r)
					return
				}
			}
		}(s, g)
	}
	wg.Wait()
}
