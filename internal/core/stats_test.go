package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"nucleodb/internal/align"
	"nucleodb/internal/db"
	"nucleodb/internal/gen"
	"nucleodb/internal/index"
)

// randomFixture builds a small random database with a planted family
// and a homologous query, varying sizes and rates with the seed.
func randomFixture(t *testing.T, rng *rand.Rand) (*db.Store, *index.Index, []byte) {
	t.Helper()
	uniform := [4]float64{0.25, 0.25, 0.25, 0.25}
	var store db.Store
	root := gen.RandomSequence(rng, 400+rng.Intn(600), uniform, 0)
	model := gen.MutationModel{
		SubstitutionRate: 0.02 + rng.Float64()*0.10,
		InsertionRate:    0.01,
		DeletionRate:     0.01,
	}
	for i := 0; i < 3+rng.Intn(4); i++ {
		store.Add("family", gen.Mutate(rng, root, model))
	}
	for i := 0; i < 20+rng.Intn(40); i++ {
		store.Add("noise", gen.RandomSequence(rng, 200+rng.Intn(600), uniform, 0))
	}
	idx, err := index.Build(&store, index.Options{K: 8, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	return &store, idx, gen.Fragment(rng, root, 150+rng.Intn(100))
}

// TestStatsEquivalenceProperty is the satellite property test: for
// random databases and queries, SearchWithStats returns results
// identical to Search — same IDs, scores, order, spans, transcripts —
// across every CoarseMode/FineMode combination, with and without
// prescreen, both strands, and a parallel fine phase. Instrumentation
// must observe, never perturb.
func TestStatsEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1996))
	for trial := 0; trial < 8; trial++ {
		store, idx, query := randomFixture(t, rng)
		for _, cm := range []CoarseMode{CoarseDistinct, CoarseTotal, CoarseNormalised, CoarseDiagonal} {
			for _, fm := range []FineMode{FineFull, FineBanded} {
				opts := DefaultOptions()
				opts.CoarseMode = cm
				opts.FineMode = fm
				opts.MinCoarseHits = 1 + rng.Intn(2)
				opts.BothStrands = rng.Intn(2) == 0
				if rng.Intn(2) == 0 {
					opts.Prescreen = 40
				}
				if rng.Intn(2) == 0 {
					opts.FineWorkers = 4
				}

				// Fresh searchers so scratch-state reuse cannot leak
				// between the two runs.
				plain := newStatsTestSearcher(t, idx, store)
				instr := newStatsTestSearcher(t, idx, store)
				want, err := plain.Search(query, opts)
				if err != nil {
					t.Fatalf("trial %d %v/%v: %v", trial, cm, fm, err)
				}
				var st SearchStats
				got, err := instr.SearchWithStats(query, opts, &st)
				if err != nil {
					t.Fatalf("trial %d %v/%v (stats): %v", trial, cm, fm, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %v/%v: instrumented results differ\nplain: %+v\nstats: %+v",
						trial, cm, fm, want, got)
				}
				checkStatsInvariants(t, &st, opts, want)
			}
		}
	}
}

func newStatsTestSearcher(t *testing.T, idx *index.Index, store *db.Store) *Searcher {
	t.Helper()
	s, err := NewSearcher(idx, store, align.DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkStatsInvariants asserts the structural relations every
// SearchStats must satisfy, whatever the workload.
func checkStatsInvariants(t *testing.T, st *SearchStats, opts Options, results []Result) {
	t.Helper()
	if st.FineAlignments > st.CoarseCandidates {
		t.Fatalf("FineAlignments %d > CoarseCandidates %d", st.FineAlignments, st.CoarseCandidates)
	}
	// Every admitted candidate is either prescreen-rejected or aligned.
	if st.FineAlignments+st.PrescreenRejections != st.CoarseCandidates {
		t.Fatalf("FineAlignments %d + PrescreenRejections %d != CoarseCandidates %d",
			st.FineAlignments, st.PrescreenRejections, st.CoarseCandidates)
	}
	if opts.Prescreen == 0 && st.PrescreenRejections != 0 {
		t.Fatalf("prescreen disabled but %d rejections", st.PrescreenRejections)
	}
	if st.PostingLists > st.QueryTerms {
		t.Fatalf("PostingLists %d > QueryTerms %d", st.PostingLists, st.QueryTerms)
	}
	if int64(st.CoarseSequences) > st.PostingsDecoded {
		t.Fatalf("CoarseSequences %d > PostingsDecoded %d", st.CoarseSequences, st.PostingsDecoded)
	}
	if st.FineAlignments > 0 && st.FineDPCells == 0 {
		t.Fatalf("%d fine alignments evaluated 0 DP cells", st.FineAlignments)
	}
	if st.TracebackAlignments > len(results) {
		t.Fatalf("TracebackAlignments %d > %d results", st.TracebackAlignments, len(results))
	}
	if st.Results != len(results) {
		t.Fatalf("Results %d != len(results) %d", st.Results, len(results))
	}
	wantStrands := 1
	if opts.BothStrands {
		wantStrands = 2
	}
	if st.Strands != wantStrands {
		t.Fatalf("Strands = %d, want %d", st.Strands, wantStrands)
	}
	checkDurationInvariants(t, st, opts)
}

func checkDurationInvariants(t *testing.T, st *SearchStats, opts Options) {
	t.Helper()
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"CoarseTime", st.CoarseTime},
		{"PrescreenTime", st.PrescreenTime},
		{"FineTime", st.FineTime},
		{"TracebackTime", st.TracebackTime},
		{"TotalTime", st.TotalTime},
	} {
		if d.v < 0 {
			t.Fatalf("%s negative: %v", d.name, d.v)
		}
	}
	if st.TotalTime == 0 {
		t.Fatal("TotalTime is zero")
	}
	// The stage clocks are disjoint sub-intervals of the total, so
	// they sum to at most the total; the remainder (ranking, strand
	// merging, result assembly) is small.
	if st.StageTime() > st.TotalTime {
		t.Fatalf("stage times %v exceed total %v", st.StageTime(), st.TotalTime)
	}
	if gap := st.TotalTime - st.StageTime(); gap > st.TotalTime/2+100*time.Millisecond {
		t.Fatalf("stages %v account for too little of total %v", st.StageTime(), st.TotalTime)
	}
	// Per-candidate prescreen clocks are subsets of the fine phase;
	// only a parallel fine phase can sum past its wall clock.
	if opts.FineWorkers <= 1 && st.PrescreenTime > st.FineTime {
		t.Fatalf("serial PrescreenTime %v > FineTime %v", st.PrescreenTime, st.FineTime)
	}
}

// TestStatsResetZeroes is the satellite invariant: a reset stats
// struct is indistinguishable from a fresh one.
func TestStatsResetZeroes(t *testing.T) {
	f := makeFixture(t, 17, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	var st SearchStats
	if _, err := s.SearchWithStats(f.query, DefaultOptions(), &st); err != nil {
		t.Fatal(err)
	}
	if st.PostingsDecoded == 0 || st.TotalTime == 0 {
		t.Fatalf("search collected nothing: %+v", st)
	}
	st.Reset()
	if st != (SearchStats{}) {
		t.Fatalf("Reset left state behind: %+v", st)
	}
}

// TestStatsResetBetweenSearches: SearchWithStats resets the struct, so
// reusing one across queries reports per-query (not cumulative) work.
func TestStatsResetBetweenSearches(t *testing.T) {
	f := makeFixture(t, 23, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	var st SearchStats
	if _, err := s.SearchWithStats(f.query, DefaultOptions(), &st); err != nil {
		t.Fatal(err)
	}
	first := st
	if _, err := s.SearchWithStats(f.query, DefaultOptions(), &st); err != nil {
		t.Fatal(err)
	}
	if st.PostingsDecoded != first.PostingsDecoded || st.CoarseCandidates != first.CoarseCandidates {
		t.Fatalf("same query, different work: first %+v, second %+v", first, st)
	}
}

// TestStatsAdd: aggregation is field-wise addition.
func TestStatsAdd(t *testing.T) {
	f := makeFixture(t, 29, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	var st, agg SearchStats
	const n = 3
	for i := 0; i < n; i++ {
		if _, err := s.SearchWithStats(f.query, DefaultOptions(), &st); err != nil {
			t.Fatal(err)
		}
		agg.Add(st)
	}
	if agg.PostingsDecoded != n*st.PostingsDecoded {
		t.Fatalf("aggregated PostingsDecoded %d, want %d", agg.PostingsDecoded, n*st.PostingsDecoded)
	}
	if agg.Strands != n {
		t.Fatalf("aggregated Strands %d, want %d", agg.Strands, n)
	}
	if agg.DPCells() != n*st.DPCells() {
		t.Fatalf("aggregated DPCells %d, want %d", agg.DPCells(), n*st.DPCells())
	}
}

// TestStatsCountsRealWork sanity-checks the headline counters against
// the fixture: a homologous query must decode postings, admit
// candidates, and align some of the database.
func TestStatsCountsRealWork(t *testing.T) {
	f := makeFixture(t, 31, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	var st SearchStats
	rs, err := s.SearchWithStats(f.query, DefaultOptions(), &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	if st.QueryTerms == 0 || st.PostingLists == 0 || st.PostingsDecoded == 0 {
		t.Fatalf("coarse phase counted no work: %+v", st)
	}
	if st.PostingsBytesRead == 0 {
		t.Fatal("no postings bytes accounted")
	}
	if st.CoarseCandidates == 0 || st.FineAlignments == 0 || st.FineDPCells == 0 {
		t.Fatalf("fine phase counted no work: %+v", st)
	}
	if st.TracebackAlignments == 0 || st.TracebackDPCells == 0 {
		t.Fatalf("tracebacks counted no work: %+v", st)
	}
}

// TestStatsPrescreenAccounting: with a prohibitive prescreen threshold
// every candidate is rejected and no fine alignment runs.
func TestStatsPrescreenAccounting(t *testing.T) {
	f := makeFixture(t, 37, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()
	opts.Prescreen = 1 << 28
	var st SearchStats
	rs, err := s.SearchWithStats(f.query, opts, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("prohibitive prescreen returned %d results", len(rs))
	}
	if st.FineAlignments != 0 {
		t.Fatalf("prescreen passed %d candidates", st.FineAlignments)
	}
	if st.PrescreenRejections != st.CoarseCandidates || st.CoarseCandidates == 0 {
		t.Fatalf("rejections %d != candidates %d", st.PrescreenRejections, st.CoarseCandidates)
	}
}
