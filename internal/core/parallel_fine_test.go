package core

import (
	"testing"

	"nucleodb/internal/index"
)

func TestParallelFineMatchesSerial(t *testing.T) {
	f := makeFixture(t, 221, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)

	for _, mode := range []FineMode{FineFull, FineBanded} {
		serial := DefaultOptions()
		serial.FineMode = mode
		serial.MinScore = 0
		serial.Limit = 0
		parallel := serial
		parallel.FineWorkers = 8

		a, err := s.Search(f.query, serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Search(f.query, parallel)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v: serial %d results, parallel %d", mode, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
				t.Fatalf("%v: result %d differs: %+v vs %+v", mode, i, a[i], b[i])
			}
		}
	}
}

func TestParallelFineWithPrescreenAndStrands(t *testing.T) {
	f := makeFixture(t, 222, index.Options{K: 9, StoreOffsets: true})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()
	opts.Prescreen = 100
	opts.BothStrands = true
	opts.FineWorkers = 4
	a, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.FineWorkers = 0
	b, err := s.Search(f.query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("parallel %d results, serial %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score || a[i].Reverse != b[i].Reverse {
			t.Fatalf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFineWorkersValidation(t *testing.T) {
	f := makeFixture(t, 223, index.Options{K: 9})
	s := newTestSearcher(t, f)
	opts := DefaultOptions()
	opts.FineWorkers = -1
	if _, err := s.Search(f.query, opts); err == nil {
		t.Error("negative FineWorkers accepted")
	}
}
