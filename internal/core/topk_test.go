package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestTopKHeapMatchesFullSort pushes random candidate streams — with
// heavy score ties, so the ID tie-break does real work — through the
// bounded heap and checks the selection equals the full sort's prefix
// exactly. candBetter is a total order (IDs are unique), which is what
// makes this equality exact rather than set-equal.
func TestTopKHeapMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(551))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = Candidate{
				ID:    i,
				Score: float64(rng.Intn(8)), // few distinct scores → many ties
				Hits:  rng.Intn(5),
			}
		}
		rng.Shuffle(n, func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

		full := append([]Candidate(nil), cands...)
		sort.Slice(full, func(i, j int) bool { return candBetter(full[i], full[j]) })

		for _, k := range []int{1, 2, 7, n / 2, n, n + 10} {
			if k < 1 {
				continue
			}
			sel := topKHeap{k: k}
			for _, c := range cands {
				sel.push(c)
			}
			got := sel.sorted()
			want := full
			if k < len(full) {
				want = full[:k]
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d: heap selection differs from sort prefix\n got %+v\nwant %+v",
					trial, k, got, want)
			}
		}
	}
}

func TestCandBetterTotalOrder(t *testing.T) {
	a := Candidate{ID: 1, Score: 2}
	b := Candidate{ID: 2, Score: 2}
	c := Candidate{ID: 3, Score: 5}
	if !candBetter(c, a) || candBetter(a, c) {
		t.Error("higher score must rank first")
	}
	if !candBetter(a, b) || candBetter(b, a) {
		t.Error("equal scores must tie-break on lower ID")
	}
	if candBetter(a, a) {
		t.Error("candBetter must be irreflexive")
	}
}
