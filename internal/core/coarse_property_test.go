package core

import (
	"math/rand"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/index"
	"nucleodb/internal/kmer"
)

// bruteCoarse recomputes coarse statistics directly from the sequences:
// for each sequence, the number of distinct query intervals present and
// the total occurrences of query intervals.
func bruteCoarse(coder *kmer.Coder, store *db.Store, query []byte) (distinct, total map[int]int) {
	queryTerms := map[kmer.Term]bool{}
	coder.ExtractFunc(query, func(_ int, t kmer.Term) { queryTerms[t] = true })

	distinct = map[int]int{}
	total = map[int]int{}
	for id := 0; id < store.Len(); id++ {
		seen := map[kmer.Term]bool{}
		coder.ExtractFunc(store.Sequence(id), func(_ int, t kmer.Term) {
			if !queryTerms[t] {
				return
			}
			total[id]++
			if !seen[t] {
				seen[t] = true
				distinct[id]++
			}
		})
	}
	return distinct, total
}

func TestCoarseMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	var store db.Store
	for i := 0; i < 40; i++ {
		seq := make([]byte, 50+rng.Intn(300))
		for j := range seq {
			seq[j] = byte(rng.Intn(dna.NumBases))
		}
		store.Add("r", seq)
	}
	idx, err := index.Build(&store, index.Options{K: 5, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(idx, &store, align.DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 10; trial++ {
		query := make([]byte, 30+rng.Intn(100))
		for j := range query {
			query[j] = byte(rng.Intn(dna.NumBases))
		}
		wantDistinct, wantTotal := bruteCoarse(idx.Coder(), &store, query)

		for _, mode := range []CoarseMode{CoarseDistinct, CoarseTotal} {
			cands, err := s.Coarse(query, mode, 1)
			if err != nil {
				t.Fatal(err)
			}
			got := map[int]float64{}
			for _, c := range cands {
				got[c.ID] = c.Score
				if c.Hits != wantDistinct[c.ID] {
					t.Fatalf("trial %d: candidate %d hits %d, brute force %d",
						trial, c.ID, c.Hits, wantDistinct[c.ID])
				}
			}
			want := wantDistinct
			if mode == CoarseTotal {
				want = wantTotal
			}
			for id, w := range want {
				if w == 0 {
					continue
				}
				if got[id] != float64(w) {
					t.Fatalf("trial %d mode %v: sequence %d score %v, brute force %d",
						trial, mode, id, got[id], w)
				}
			}
			if len(got) != countPositive(want) {
				t.Fatalf("trial %d mode %v: %d candidates, brute force %d",
					trial, mode, len(got), countPositive(want))
			}
		}
	}
}

func countPositive(m map[int]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

func TestCoarseStoppedTermsExcluded(t *testing.T) {
	// With stopping, the stopped terms contribute nothing to coarse
	// scores — the accuracy/size trade the paper's stopping table
	// measures.
	var store db.Store
	store.Add("poly-a", dna.MustEncode("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"))
	store.Add("mixed", dna.MustEncode("ACGTACGTACGTACGTACGTACGTACGTACGT"))
	idx, err := index.Build(&store, index.Options{K: 4, StoreOffsets: true, StopFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	aaaa := idx.Coder().Encode(dna.MustEncode("AAAA"))
	if !idx.Stopped(aaaa) {
		t.Skip("AAAA not stopped under this fraction")
	}
	s, err := NewSearcher(idx, &store, align.DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	// A poly-A query: every interval is AAAA, which is stopped, so the
	// coarse phase finds nothing at all.
	cands, err := s.Coarse(dna.MustEncode("AAAAAAAAAAAA"), CoarseDistinct, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("stopped-term query produced %d candidates", len(cands))
	}
}
