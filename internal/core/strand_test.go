package core

import (
	"math/rand"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
	"nucleodb/internal/index"
)

// strandFixture builds a store where the homologous target is stored
// as the reverse complement of the query's source, so only a
// both-strands search can find it.
func strandFixture(t *testing.T) (*Searcher, []byte, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	uniform := [4]float64{0.25, 0.25, 0.25, 0.25}
	var store db.Store
	source := gen.RandomSequence(rng, 600, uniform, 0)
	targetID := store.Add("rc-target", dna.ReverseComplement(source))
	for i := 0; i < 40; i++ {
		store.Add("noise", gen.RandomSequence(rng, 500, uniform, 0))
	}
	idx, err := index.Build(&store, index.Options{K: 9, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(idx, &store, align.DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	query := gen.Fragment(rng, source, 200)
	return s, query, targetID
}

func TestBothStrandsFindsReverseComplement(t *testing.T) {
	s, query, targetID := strandFixture(t)

	// Forward-only search must miss the reverse-complemented target.
	opts := DefaultOptions()
	opts.MinScore = 300
	fwd, err := s.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fwd {
		if r.ID == targetID {
			t.Fatalf("forward-only search found the RC target: %+v", r)
		}
	}

	// Both-strands search must find it, marked Reverse.
	opts.BothStrands = true
	both, err := s.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) == 0 {
		t.Fatal("both-strands search found nothing")
	}
	top := both[0]
	if top.ID != targetID || !top.Reverse {
		t.Fatalf("top hit = %+v, want RC target %d on reverse strand", top, targetID)
	}
	if want := 200 * align.DefaultScoring().Match; top.Score < want*9/10 {
		t.Errorf("RC match score %d, want near %d", top.Score, want)
	}
}

func TestBothStrandsKeepsBestStrandPerSequence(t *testing.T) {
	// A palindromic-ish setup: the target contains the query forward;
	// both-strands must report it once, on the forward strand.
	rng := rand.New(rand.NewSource(72))
	uniform := [4]float64{0.25, 0.25, 0.25, 0.25}
	var store db.Store
	target := gen.RandomSequence(rng, 600, uniform, 0)
	store.Add("fwd-target", target)
	for i := 0; i < 20; i++ {
		store.Add("noise", gen.RandomSequence(rng, 400, uniform, 0))
	}
	idx, err := index.Build(&store, index.Options{K: 9, StoreOffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(idx, &store, align.DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	query := gen.Fragment(rng, target, 150)

	opts := DefaultOptions()
	opts.BothStrands = true
	opts.MinScore = 200
	rs, err := s.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, r := range rs {
		seen[r.ID]++
	}
	for id, n := range seen {
		if n > 1 {
			t.Errorf("sequence %d reported %d times", id, n)
		}
	}
	if len(rs) == 0 || rs[0].ID != 0 || rs[0].Reverse {
		t.Fatalf("top hit = %+v, want forward-strand target 0", rs[0])
	}
}

func TestBothStrandsResultsSorted(t *testing.T) {
	s, query, _ := strandFixture(t)
	opts := DefaultOptions()
	opts.BothStrands = true
	opts.MinScore = 0
	opts.Limit = 0
	rs, err := s.Search(query, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Fatal("merged strand results not sorted")
		}
	}
}
