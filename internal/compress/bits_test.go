package compress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderBits(t *testing.T) {
	w := NewBitWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBits(0xDEADBEEF, 32)
	buf := w.Bytes()

	r := NewBitReader(buf)
	if v, err := r.ReadBits(3); err != nil || v != 0b101 {
		t.Fatalf("ReadBits(3) = %b, %v", v, err)
	}
	if v, err := r.ReadBits(8); err != nil || v != 0xFF {
		t.Fatalf("ReadBits(8) = %x, %v", v, err)
	}
	if v, err := r.ReadBits(5); err != nil || v != 0 {
		t.Fatalf("ReadBits(5) = %x, %v", v, err)
	}
	if v, err := r.ReadBits(32); err != nil || v != 0xDEADBEEF {
		t.Fatalf("ReadBits(32) = %x, %v", v, err)
	}
}

func TestBitWriter64BitValues(t *testing.T) {
	w := NewBitWriter(32)
	vals := []uint64{0, 1, ^uint64(0), 1 << 63, 0x0123456789ABCDEF}
	for _, v := range vals {
		w.WriteBits(v, 64)
	}
	r := NewBitReader(w.Bytes())
	for _, want := range vals {
		v, err := r.ReadBits(64)
		if err != nil || v != want {
			t.Fatalf("ReadBits(64) = %x, %v; want %x", v, err, want)
		}
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewBitWriter(64)
	vals := []uint64{1, 2, 3, 7, 64, 65, 100, 129, 300}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewBitReader(w.Bytes())
	for _, want := range vals {
		v, err := r.ReadUnary()
		if err != nil || v != want {
			t.Fatalf("ReadUnary = %d, %v; want %d", v, err, want)
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestReadUnaryUnterminated(t *testing.T) {
	// All ones: unary never terminates.
	r := NewBitReader([]byte{0xFF, 0xFF})
	if _, err := r.ReadUnary(); err == nil {
		t.Error("unterminated unary read succeeded")
	}
}

func TestBitLenAndLen(t *testing.T) {
	w := NewBitWriter(8)
	if w.BitLen() != 0 || w.Len() != 0 {
		t.Fatalf("empty writer BitLen=%d Len=%d", w.BitLen(), w.Len())
	}
	w.WriteBits(1, 3)
	if w.BitLen() != 3 || w.Len() != 1 {
		t.Fatalf("after 3 bits BitLen=%d Len=%d", w.BitLen(), w.Len())
	}
	w.WriteBits(0, 13)
	if w.BitLen() != 16 || w.Len() != 2 {
		t.Fatalf("after 16 bits BitLen=%d Len=%d", w.BitLen(), w.Len())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewBitWriter(8)
	w.WriteBits(0xFF, 8)
	w.Reset()
	w.WriteBits(1, 1)
	buf := w.Bytes()
	if len(buf) != 1 || buf[0] != 0x80 {
		t.Errorf("after reset Bytes = %x", buf)
	}
}

func TestPropertyBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(200)
		widths := make([]uint, n)
		vals := make([]uint64, n)
		w := NewBitWriter(n)
		for i := 0; i < n; i++ {
			widths[i] = uint(1 + local.Intn(64))
			vals[i] = local.Uint64() & mask(widths[i])
			w.WriteBits(vals[i], widths[i])
		}
		r := NewBitReader(w.Bytes())
		for i := 0; i < n; i++ {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != vals[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyMixedUnaryBits(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(100)
		type op struct {
			unary bool
			v     uint64
			w     uint
		}
		ops := make([]op, n)
		w := NewBitWriter(n)
		for i := range ops {
			if local.Intn(2) == 0 {
				ops[i] = op{unary: true, v: 1 + uint64(local.Intn(200))}
				w.WriteUnary(ops[i].v)
			} else {
				width := uint(1 + local.Intn(40))
				ops[i] = op{v: local.Uint64() & mask(width), w: width}
				w.WriteBits(ops[i].v, width)
			}
		}
		r := NewBitReader(w.Bytes())
		for _, o := range ops {
			var v uint64
			var err error
			if o.unary {
				v, err = r.ReadUnary()
			} else {
				v, err = r.ReadBits(o.w)
			}
			if err != nil || v != o.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
