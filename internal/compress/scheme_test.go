package compress

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVByteRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 129, 16383, 16384, 1 << 32, ^uint64(0)}
	var buf []byte
	for _, v := range vals {
		buf = PutVByte(buf, v)
	}
	pos := 0
	for _, want := range vals {
		v, n, err := GetVByte(buf[pos:])
		if err != nil || v != want {
			t.Fatalf("GetVByte = %d, %v; want %d", v, err, want)
		}
		if n != VByteLen(want) {
			t.Fatalf("consumed %d bytes for %d, VByteLen says %d", n, want, VByteLen(want))
		}
		pos += n
	}
	if pos != len(buf) {
		t.Errorf("consumed %d of %d bytes", pos, len(buf))
	}
}

func TestVByteErrors(t *testing.T) {
	if _, _, err := GetVByte(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := GetVByte([]byte{0x01, 0x02}); err == nil {
		t.Error("unterminated code accepted")
	}
	long := make([]byte, 12) // all continuation bytes
	if _, _, err := GetVByte(long); err == nil {
		t.Error("overlong code accepted")
	}
}

func TestEncodeStreamAllSchemes(t *testing.T) {
	vals := []uint64{1, 5, 2, 100, 1, 1, 37, 1 << 30}
	for _, s := range Schemes {
		buf, err := EncodeStream(s, vals)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got, err := DecodeStream(s, buf, len(vals))
		if err != nil {
			t.Fatalf("%v decode: %v", s, err)
		}
		if !reflect.DeepEqual(got, vals) {
			t.Errorf("%v round trip = %v, want %v", s, got, vals)
		}
	}
}

func TestEncodeStreamRejectsZero(t *testing.T) {
	for _, s := range Schemes {
		if _, err := EncodeStream(s, []uint64{1, 0, 2}); err == nil {
			t.Errorf("%v accepted a zero value", s)
		}
	}
}

func TestEncodeStreamEmpty(t *testing.T) {
	for _, s := range Schemes {
		buf, err := EncodeStream(s, nil)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got, err := DecodeStream(s, buf, 0)
		if err != nil || len(got) != 0 {
			t.Errorf("%v empty stream decode = %v, %v", s, got, err)
		}
	}
}

func TestSchemeSizeOrdering(t *testing.T) {
	// Gap streams typical of posting lists: compressed schemes must
	// beat fixed words, and Golomb must be at worst comparable to gamma.
	rng := rand.New(rand.NewSource(9))
	vals := make([]uint64, 5000)
	for i := range vals {
		vals[i] = 1 + uint64(rng.ExpFloat64()*20)
	}
	size := map[Scheme]int{}
	for _, s := range Schemes {
		buf, err := EncodeStream(s, vals)
		if err != nil {
			t.Fatal(err)
		}
		size[s] = len(buf)
	}
	if size[SchemeVByte] >= size[SchemeNone] {
		t.Errorf("vbyte %d ≥ none %d", size[SchemeVByte], size[SchemeNone])
	}
	if size[SchemeGamma] >= size[SchemeVByte] {
		t.Errorf("gamma %d ≥ vbyte %d", size[SchemeGamma], size[SchemeVByte])
	}
	if size[SchemeGolomb] > size[SchemeGamma] {
		t.Errorf("golomb %d > gamma %d on exponential gaps", size[SchemeGolomb], size[SchemeGamma])
	}
}

func TestDecodeStreamCorrupt(t *testing.T) {
	vals := []uint64{9, 9, 9, 9}
	for _, s := range Schemes {
		buf, err := EncodeStream(s, vals)
		if err != nil {
			t.Fatal(err)
		}
		// Ask for more values than were encoded: every scheme must
		// error rather than fabricate data (bit schemes may read
		// zero-padding, so only truncation below is universal).
		if len(buf) > 2 {
			if _, err := DecodeStream(s, buf[:1], len(vals)); err == nil {
				t.Errorf("%v decoded from truncated buffer", s)
			}
		}
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		SchemeNone: "none", SchemeVByte: "vbyte", SchemeGamma: "gamma",
		SchemeDelta: "delta", SchemeGolomb: "golomb", SchemeRice: "rice",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Scheme(99).String() != "Scheme(99)" {
		t.Errorf("unknown scheme string = %q", Scheme(99).String())
	}
}

func TestPropertyStreamRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := local.Intn(200)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = 1 + local.Uint64()%(1<<uint(1+local.Intn(30)))
		}
		for _, s := range Schemes {
			buf, err := EncodeStream(s, vals)
			if err != nil {
				return false
			}
			got, err := DecodeStream(s, buf, n)
			if err != nil || !reflect.DeepEqual(got, vals) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
