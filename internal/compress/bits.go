// Package compress implements the bit-level integer coding schemes used
// throughout the index: unary, Elias gamma, Elias delta, Golomb/Rice and
// variable-byte codes, over a bit-granular writer and reader.
//
// These are the codes Williams & Zobel use for inverted-list
// compression: Golomb codes for document-identifier gaps (with the
// parameter derived from list density), Elias gamma codes for small
// counts, and variable-byte codes as the byte-aligned comparator.
//
// All codes operate on strictly positive integers; gaps and counts are
// ≥ 1 by construction. Callers encoding values that may be zero add one
// before encoding and subtract one after decoding.
package compress

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrCorrupt is returned when a decoder runs off the end of its input or
// reads an impossible code. Wrapped errors carry detail.
var ErrCorrupt = errors.New("compress: corrupt bit stream")

// BitWriter accumulates bits most-significant-first into a byte buffer.
// The zero value is ready to use.
type BitWriter struct {
	buf  []byte
	cur  uint64 // bits accumulated, left-aligned within nbits
	ncur uint   // number of valid bits in cur (0..63)
}

// NewBitWriter returns a writer with capacity hint n bytes.
func NewBitWriter(n int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, n)}
}

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(bit uint) {
	w.WriteBits(uint64(bit&1), 1)
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 64 {
		panic(fmt.Sprintf("compress: WriteBits of %d bits", n))
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	// Flush whole bytes out of cur while adding the new bits.
	for n > 0 {
		space := 64 - w.ncur
		take := n
		if take > space {
			take = space
		}
		w.cur = (w.cur << take) | (v >> (n - take) & mask(take))
		w.ncur += take
		n -= take
		if w.ncur == 64 {
			w.flushWord()
		}
	}
}

//cafe:hotpath
func mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}

func (w *BitWriter) flushWord() {
	for i := uint(0); i < 8; i++ {
		w.buf = append(w.buf, byte(w.cur>>(56-8*i)))
	}
	w.cur, w.ncur = 0, 0
}

// WriteUnary appends v-1 one-bits followed by a zero bit: the unary code
// of v ≥ 1.
func (w *BitWriter) WriteUnary(v uint64) {
	if v == 0 {
		panic("compress: unary code of 0")
	}
	for v-1 >= 64 {
		w.WriteBits(^uint64(0), 64)
		v -= 64
	}
	// v-1 one bits then a zero bit; v-1 < 64 so this fits in two calls.
	if v > 1 {
		w.WriteBits(mask(uint(v-1)), uint(v-1))
	}
	w.WriteBit(0)
}

// Len returns the number of complete bytes the writer would emit now.
func (w *BitWriter) Len() int {
	return len(w.buf) + int((w.ncur+7)/8)
}

// BitLen returns the exact number of bits written so far.
func (w *BitWriter) BitLen() int {
	return len(w.buf)*8 + int(w.ncur)
}

// Bytes zero-pads the final partial byte and returns the encoded buffer.
// The writer remains usable; further writes continue from the unpadded
// bit position, so call Bytes only when encoding is complete.
func (w *BitWriter) Bytes() []byte {
	out := make([]byte, 0, w.Len())
	out = append(out, w.buf...)
	if w.ncur > 0 {
		rem := w.cur << (64 - w.ncur) // left-align pending bits
		for n := w.ncur; n > 0; {
			out = append(out, byte(rem>>56))
			rem <<= 8
			if n >= 8 {
				n -= 8
			} else {
				n = 0
			}
		}
	}
	return out
}

// Reset discards all written bits, retaining the allocated buffer.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.ncur = 0, 0
}

// BitReader consumes bits most-significant-first from a byte slice.
type BitReader struct {
	buf  []byte
	pos  int // byte position of next refill
	cur  uint64
	ncur uint // valid bits remaining in cur, left-aligned
}

// NewBitReader returns a reader over buf. The reader does not copy buf.
func NewBitReader(buf []byte) *BitReader {
	return &BitReader{buf: buf}
}

// Reset repositions the reader over a new buffer, reusing the struct.
//
//cafe:hotpath
func (r *BitReader) Reset(buf []byte) {
	r.buf, r.pos, r.cur, r.ncur = buf, 0, 0, 0
}

//cafe:hotpath
func (r *BitReader) refill() {
	for r.ncur <= 56 && r.pos < len(r.buf) {
		r.cur |= uint64(r.buf[r.pos]) << (56 - r.ncur)
		r.ncur += 8
		r.pos++
	}
}

// ReadBit reads one bit.
//
//cafe:hotpath
func (r *BitReader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// ReadBits reads n bits (0 ≤ n ≤ 64), most significant first.
//
//cafe:hotpath
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if n > 64 {
		panic(fmt.Sprintf("compress: ReadBits of %d bits", n))
	}
	var v uint64
	need := n
	for need > 0 {
		if r.ncur == 0 {
			r.refill()
			if r.ncur == 0 {
				return 0, fmt.Errorf("%w: need %d more bits", ErrCorrupt, need) //cafe:allow cold corruption path; the error message is the product
			}
		}
		take := need
		if take > r.ncur {
			take = r.ncur
		}
		v = (v << take) | (r.cur >> (64 - take))
		r.cur <<= take
		r.ncur -= take
		need -= take
	}
	return v, nil
}

// ReadUnary reads a unary code and returns its value v ≥ 1.
//
//cafe:hotpath
func (r *BitReader) ReadUnary() (uint64, error) {
	v := uint64(1)
	for {
		if r.ncur == 0 {
			r.refill()
			if r.ncur == 0 {
				return 0, fmt.Errorf("%w: unterminated unary code", ErrCorrupt) //cafe:allow cold corruption path; the error message is the product
			}
		}
		// Count leading ones in the available window.
		window := r.cur | mask(64-r.ncur) // treat exhausted bits as ones so they don't terminate
		ones := uint(bits.LeadingZeros64(^window))
		if ones >= r.ncur {
			v += uint64(r.ncur)
			r.cur, r.ncur = 0, 0
			continue
		}
		v += uint64(ones)
		// Consume the ones and the terminating zero.
		r.cur <<= ones + 1
		r.ncur -= ones + 1
		return v, nil
	}
}

// BitPos returns the number of bits consumed so far.
//
//cafe:hotpath
func (r *BitReader) BitPos() int {
	return r.pos*8 - int(r.ncur)
}
