package compress

import "testing"

// FuzzVarint drives the variable-byte codec from both directions:
// arbitrary bytes through GetVByte must decode or fail cleanly within
// bounds (the encoding is not canonical — leading zero payload bytes
// are legal — so decoded values need not re-encode to the same bytes),
// while values harvested from the input must survive a Put/Get round
// trip exactly.
func FuzzVarint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add([]byte{0x00})
	f.Add(PutVByte(nil, 0))
	f.Add(PutVByte(nil, 1))
	f.Add(PutVByte(nil, 127))
	f.Add(PutVByte(nil, 128))
	f.Add(PutVByte(nil, 1<<32))
	f.Add(PutVByte(nil, ^uint64(0)))
	f.Add([]byte{0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0x80})
	f.Add([]byte{0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := GetVByte(data)
		if err == nil {
			if n <= 0 || n > len(data) || n > 10 {
				t.Fatalf("decoded %d from %d bytes, consumed %d", v, len(data), n)
			}
			if VByteLen(v) > n {
				t.Fatalf("value %d: minimal length %d but decode consumed only %d", v, VByteLen(v), n)
			}
		}
		// Round-trip a value built from the raw input bytes.
		var x uint64
		for _, b := range data {
			x = x<<8 | uint64(b)
		}
		enc := PutVByte(nil, x)
		got, n2, err := GetVByte(enc)
		if err != nil {
			t.Fatalf("round trip %d: %v", x, err)
		}
		if got != x || n2 != len(enc) {
			t.Fatalf("round trip %d: got %d, consumed %d of %d", x, got, n2, len(enc))
		}
	})
}
