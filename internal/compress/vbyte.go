package compress

import "fmt"

// Variable-byte coding: seven payload bits per byte, high bit set on the
// final byte of each integer. Byte-aligned, so faster to decode than the
// bit codes but less compact; it is the comparator scheme in the
// compression experiments.

// PutVByte appends the variable-byte code of v to dst and returns the
// extended slice. Unlike the bit codes, v = 0 is representable.
func PutVByte(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v&0x7F))
		v >>= 7
	}
	return append(dst, byte(v)|0x80)
}

// GetVByte decodes a variable-byte integer from buf, returning the value
// and the number of bytes consumed.
//
//cafe:hotpath
func GetVByte(buf []byte) (v uint64, n int, err error) {
	var shift uint
	for i, b := range buf {
		if i == 10 {
			return 0, 0, fmt.Errorf("%w: variable-byte code too long", ErrCorrupt) //cafe:allow cold corruption path
		}
		if b&0x80 != 0 {
			// The tenth byte holds bits 63.. of the value: anything past
			// the single remaining bit silently truncated before.
			if i == 9 && b&0x7F > 1 {
				return 0, 0, fmt.Errorf("%w: variable-byte code overflows 64 bits", ErrCorrupt) //cafe:allow cold corruption path
			}
			return v | uint64(b&0x7F)<<shift, i + 1, nil
		}
		v |= uint64(b) << shift
		shift += 7
	}
	return 0, 0, fmt.Errorf("%w: unterminated variable-byte code", ErrCorrupt) //cafe:allow cold corruption path
}

// VByteLen returns the encoded length in bytes of v.
func VByteLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
