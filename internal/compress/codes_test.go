package compress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGammaKnownValues(t *testing.T) {
	// gamma(1) = "0", gamma(2) = "10 0", gamma(3) = "10 1", gamma(4) = "110 00"
	w := NewBitWriter(8)
	for v := uint64(1); v <= 4; v++ {
		PutGamma(w, v)
	}
	// 0 100 101 11000 → 0100 1011 1000 = 0x4B 0x80
	got := w.Bytes()
	want := []byte{0x4B, 0x80}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("gamma(1..4) bytes = %x, want %x", got, want)
	}
}

func TestGammaRoundTrip(t *testing.T) {
	vals := []uint64{1, 2, 3, 4, 5, 7, 8, 100, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)}
	w := NewBitWriter(64)
	for _, v := range vals {
		PutGamma(w, v)
	}
	r := NewBitReader(w.Bytes())
	for _, want := range vals {
		v, err := GetGamma(r)
		if err != nil || v != want {
			t.Fatalf("GetGamma = %d, %v; want %d", v, err, want)
		}
	}
}

func TestGammaLen(t *testing.T) {
	cases := map[uint64]int{1: 1, 2: 3, 3: 3, 4: 5, 7: 5, 8: 7}
	for v, want := range cases {
		if got := GammaLen(v); got != want {
			t.Errorf("GammaLen(%d) = %d, want %d", v, got, want)
		}
		w := NewBitWriter(8)
		PutGamma(w, v)
		if w.BitLen() != want {
			t.Errorf("actual gamma bits for %d = %d, want %d", v, w.BitLen(), want)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	vals := []uint64{1, 2, 3, 16, 17, 1000, 1 << 32, ^uint64(0)}
	w := NewBitWriter(64)
	for _, v := range vals {
		PutDelta(w, v)
	}
	r := NewBitReader(w.Bytes())
	for _, want := range vals {
		v, err := GetDelta(r)
		if err != nil || v != want {
			t.Fatalf("GetDelta = %d, %v; want %d", v, err, want)
		}
	}
}

func TestDeltaLenMatchesEncoding(t *testing.T) {
	for _, v := range []uint64{1, 2, 5, 31, 32, 1000, 1 << 40} {
		w := NewBitWriter(16)
		PutDelta(w, v)
		if got := DeltaLen(v); got != w.BitLen() {
			t.Errorf("DeltaLen(%d) = %d, actual %d", v, got, w.BitLen())
		}
	}
}

func TestGolombRoundTrip(t *testing.T) {
	for _, b := range []uint64{1, 2, 3, 4, 7, 8, 10, 100, 1000} {
		vals := []uint64{1, 2, 3, b, b + 1, 2*b + 1, 10 * b}
		w := NewBitWriter(64)
		for _, v := range vals {
			PutGolomb(w, v, b)
		}
		r := NewBitReader(w.Bytes())
		for _, want := range vals {
			v, err := GetGolomb(r, b)
			if err != nil || v != want {
				t.Fatalf("b=%d GetGolomb = %d, %v; want %d", b, v, err, want)
			}
		}
	}
}

func TestGolombLenMatchesEncoding(t *testing.T) {
	for _, b := range []uint64{1, 3, 8, 13} {
		for _, v := range []uint64{1, 2, 3, 5, 8, 13, 50} {
			w := NewBitWriter(16)
			PutGolomb(w, v, b)
			if got := GolombLen(v, b); got != w.BitLen() {
				t.Errorf("GolombLen(%d,%d) = %d, actual %d", v, b, got, w.BitLen())
			}
		}
	}
}

func TestGolombParameter(t *testing.T) {
	// Mean gap 10 → b ≈ 7.
	if b := GolombParameter(1000, 100); b < 5 || b > 9 {
		t.Errorf("GolombParameter(1000,100) = %d, want ≈7", b)
	}
	if b := GolombParameter(10, 0); b != 1 {
		t.Errorf("GolombParameter with zero occurrences = %d, want 1", b)
	}
	if b := GolombParameter(1, 100); b != 1 {
		t.Errorf("dense list parameter = %d, want 1", b)
	}
}

func TestRiceRoundTrip(t *testing.T) {
	for _, k := range []uint{0, 1, 3, 7} {
		vals := []uint64{1, 2, 3, 100, 1 << 20}
		w := NewBitWriter(64)
		for _, v := range vals {
			PutRice(w, v, k)
		}
		r := NewBitReader(w.Bytes())
		for _, want := range vals {
			v, err := GetRice(r, k)
			if err != nil || v != want {
				t.Fatalf("k=%d GetRice = %d, %v; want %d", k, v, err, want)
			}
		}
	}
}

func TestPropertyAllCodesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(100)
		vals := make([]uint64, n)
		for i := range vals {
			// Mix of small (typical gaps) and occasional large values.
			// Large values stay within the universe the Golomb/Rice
			// parameters are derived from, as real gaps do; otherwise
			// the unary quotient becomes pathologically long.
			if local.Intn(10) == 0 {
				vals[i] = 1 + local.Uint64()%(1<<20)
			} else {
				vals[i] = 1 + local.Uint64()%64
			}
		}
		b := GolombParameter(1<<20, uint64(n))
		k := RiceParameter(1<<20, uint64(n))

		w := NewBitWriter(n * 4)
		for _, v := range vals {
			PutGamma(w, v)
			PutDelta(w, v)
			PutGolomb(w, v, b)
			PutRice(w, v, k)
		}
		r := NewBitReader(w.Bytes())
		for _, want := range vals {
			if v, err := GetGamma(r); err != nil || v != want {
				return false
			}
			if v, err := GetDelta(r); err != nil || v != want {
				return false
			}
			if v, err := GetGolomb(r, b); err != nil || v != want {
				return false
			}
			if v, err := GetRice(r, k); err != nil || v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGolombBeatsGammaOnUniformGaps(t *testing.T) {
	// The paper's rationale for Golomb-coding identifier gaps: for gaps
	// near a known mean, Golomb with the right parameter is smaller
	// than gamma. Check total coded size on synthetic uniform gaps.
	rng := rand.New(rand.NewSource(8))
	const n, meanGap = 2000, 50
	gaps := make([]uint64, n)
	for i := range gaps {
		gaps[i] = 1 + uint64(rng.Intn(2*meanGap-1)) // mean ≈ meanGap
	}
	b := GolombParameter(n*meanGap, n)
	var gammaBits, golombBits int
	for _, g := range gaps {
		gammaBits += GammaLen(g)
		golombBits += GolombLen(g, b)
	}
	if golombBits >= gammaBits {
		t.Errorf("golomb %d bits ≥ gamma %d bits on uniform gaps", golombBits, gammaBits)
	}
}
