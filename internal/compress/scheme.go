package compress

import (
	"encoding/binary"
	"fmt"
)

// Scheme identifies an integer-coding scheme. The compression experiment
// (E2) encodes the same gap streams under every scheme and compares size
// and decode time; the index proper uses Golomb for identifier gaps and
// gamma for counts.
type Scheme uint8

const (
	// SchemeNone stores each integer as a fixed 8-byte little-endian
	// word: the uncompressed baseline.
	SchemeNone Scheme = iota
	// SchemeVByte is byte-aligned variable-byte coding.
	SchemeVByte
	// SchemeGamma is Elias gamma coding.
	SchemeGamma
	// SchemeDelta is Elias delta coding.
	SchemeDelta
	// SchemeGolomb is Golomb coding with a per-stream parameter chosen
	// from the stream's mean gap.
	SchemeGolomb
	// SchemeRice is Rice coding (power-of-two Golomb).
	SchemeRice
)

// Schemes lists every scheme, in presentation order for the experiment
// tables.
var Schemes = []Scheme{SchemeNone, SchemeVByte, SchemeGamma, SchemeDelta, SchemeGolomb, SchemeRice}

// String returns the scheme's table label.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeVByte:
		return "vbyte"
	case SchemeGamma:
		return "gamma"
	case SchemeDelta:
		return "delta"
	case SchemeGolomb:
		return "golomb"
	case SchemeRice:
		return "rice"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// EncodeStream encodes a stream of positive integers under the scheme.
// For the parameterised schemes (Golomb, Rice) the parameter is derived
// from the stream itself and stored in the header, so the result is
// self-describing apart from the scheme and count, which the caller
// keeps.
func EncodeStream(s Scheme, values []uint64) ([]byte, error) {
	for i, v := range values {
		if v == 0 {
			return nil, fmt.Errorf("compress: stream value %d at index %d must be positive", v, i)
		}
	}
	switch s {
	case SchemeNone:
		out := make([]byte, 8*len(values))
		for i, v := range values {
			binary.LittleEndian.PutUint64(out[8*i:], v)
		}
		return out, nil
	case SchemeVByte:
		var out []byte
		for _, v := range values {
			out = PutVByte(out, v)
		}
		return out, nil
	case SchemeGamma, SchemeDelta:
		w := NewBitWriter(len(values))
		for _, v := range values {
			if s == SchemeGamma {
				PutGamma(w, v)
			} else {
				PutDelta(w, v)
			}
		}
		return w.Bytes(), nil
	case SchemeGolomb, SchemeRice:
		var sum uint64
		for _, v := range values {
			sum += v
		}
		w := NewBitWriter(len(values))
		if s == SchemeGolomb {
			b := GolombParameter(sum, uint64(len(values)))
			PutGamma(w, b)
			for _, v := range values {
				PutGolomb(w, v, b)
			}
		} else {
			k := RiceParameter(sum, uint64(len(values)))
			PutGamma(w, uint64(k)+1)
			for _, v := range values {
				PutRice(w, v, k)
			}
		}
		return w.Bytes(), nil
	}
	return nil, fmt.Errorf("compress: unknown scheme %v", s)
}

// DecodeStream decodes count integers previously encoded with
// EncodeStream under the same scheme.
func DecodeStream(s Scheme, buf []byte, count int) ([]uint64, error) {
	out := make([]uint64, count)
	_, err := DecodeStreamInto(s, buf, out)
	return out, err
}

// DecodeStreamInto decodes len(dst) integers into dst and returns the
// number of bytes of buf consumed (for the bit codes this is the padded
// byte length only when the stream is fully drained).
func DecodeStreamInto(s Scheme, buf []byte, dst []uint64) (int, error) {
	switch s {
	case SchemeNone:
		if len(buf) < 8*len(dst) {
			return 0, fmt.Errorf("%w: fixed stream short: need %d bytes, have %d", ErrCorrupt, 8*len(dst), len(buf))
		}
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		return 8 * len(dst), nil
	case SchemeVByte:
		pos := 0
		for i := range dst {
			v, n, err := GetVByte(buf[pos:])
			if err != nil {
				return 0, err
			}
			dst[i] = v
			pos += n
		}
		return pos, nil
	case SchemeGamma, SchemeDelta:
		r := NewBitReader(buf)
		for i := range dst {
			var v uint64
			var err error
			if s == SchemeGamma {
				v, err = GetGamma(r)
			} else {
				v, err = GetDelta(r)
			}
			if err != nil {
				return 0, err
			}
			dst[i] = v
		}
		return (r.BitPos() + 7) / 8, nil
	case SchemeGolomb, SchemeRice:
		r := NewBitReader(buf)
		p, err := GetGamma(r)
		if err != nil {
			return 0, err
		}
		for i := range dst {
			var v uint64
			if s == SchemeGolomb {
				v, err = GetGolomb(r, p)
			} else {
				v, err = GetRice(r, uint(p-1))
			}
			if err != nil {
				return 0, err
			}
			dst[i] = v
		}
		return (r.BitPos() + 7) / 8, nil
	}
	return 0, fmt.Errorf("compress: unknown scheme %v", s)
}
