package compress

import (
	"fmt"
	"math"
	"math/bits"
)

// PutGamma appends the Elias gamma code of v ≥ 1: the unary code of
// 1+⌊log₂ v⌋ followed by the ⌊log₂ v⌋ low-order bits of v.
func PutGamma(w *BitWriter, v uint64) {
	if v == 0 {
		panic("compress: gamma code of 0")
	}
	n := uint(bits.Len64(v)) // 1 + floor(log2 v)
	w.WriteUnary(uint64(n))
	w.WriteBits(v, n-1) // v with its leading 1 implied
}

// GetGamma reads an Elias gamma code.
//
//cafe:hotpath
func GetGamma(r *BitReader) (uint64, error) {
	n, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if n > 64 {
		return 0, fmt.Errorf("%w: gamma length %d", ErrCorrupt, n) //cafe:allow cold corruption path; the error message is the product
	}
	low, err := r.ReadBits(uint(n - 1))
	if err != nil {
		return 0, err
	}
	return 1<<(n-1) | low, nil
}

// GammaLen returns the length in bits of the gamma code of v ≥ 1.
func GammaLen(v uint64) int {
	n := bits.Len64(v)
	return 2*n - 1
}

// PutDelta appends the Elias delta code of v ≥ 1: the gamma code of
// 1+⌊log₂ v⌋ followed by the low-order bits of v.
func PutDelta(w *BitWriter, v uint64) {
	if v == 0 {
		panic("compress: delta code of 0")
	}
	n := uint(bits.Len64(v))
	PutGamma(w, uint64(n))
	w.WriteBits(v, n-1)
}

// GetDelta reads an Elias delta code.
//
//cafe:hotpath
func GetDelta(r *BitReader) (uint64, error) {
	n, err := GetGamma(r)
	if err != nil {
		return 0, err
	}
	if n == 0 || n > 64 {
		return 0, fmt.Errorf("%w: delta length %d", ErrCorrupt, n) //cafe:allow cold corruption path; the error message is the product
	}
	low, err := r.ReadBits(uint(n - 1))
	if err != nil {
		return 0, err
	}
	return 1<<(n-1) | low, nil
}

// DeltaLen returns the length in bits of the delta code of v ≥ 1.
func DeltaLen(v uint64) int {
	n := uint64(bits.Len64(v))
	return GammaLen(n) + int(n) - 1
}

// GolombParameter returns the textbook parameter b ≈ 0.69·mean for
// Golomb-coding gaps whose mean is total/count: with n occurrences
// spread over a universe of size u, b = ⌈0.69·u/n⌉. A parameter of at
// least 1 is always returned.
//
//cafe:hotpath
func GolombParameter(universe, occurrences uint64) uint64 {
	if occurrences == 0 {
		return 1
	}
	b := uint64(math.Ceil(0.69 * float64(universe) / float64(occurrences)))
	if b < 1 {
		b = 1
	}
	return b
}

// PutGolomb appends the Golomb code of v ≥ 1 with parameter b ≥ 1:
// quotient q = (v-1)/b in unary, then remainder in truncated binary.
func PutGolomb(w *BitWriter, v, b uint64) {
	if v == 0 {
		panic("compress: golomb code of 0")
	}
	if b == 0 {
		panic("compress: golomb parameter 0")
	}
	q := (v - 1) / b
	rem := (v - 1) % b
	w.WriteUnary(q + 1)
	putTruncated(w, rem, b)
}

// GetGolomb reads a Golomb code with parameter b.
//
//cafe:hotpath
func GetGolomb(r *BitReader, b uint64) (uint64, error) {
	if b == 0 {
		panic("compress: golomb parameter 0")
	}
	q, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	rem, err := getTruncated(r, b)
	if err != nil {
		return 0, err
	}
	return (q-1)*b + rem + 1, nil
}

// GolombLen returns the length in bits of the Golomb code of v with
// parameter b.
func GolombLen(v, b uint64) int {
	q := (v - 1) / b
	rem := (v - 1) % b
	return int(q) + 1 + truncatedLen(rem, b)
}

// putTruncated writes rem ∈ [0, b) in truncated binary: with
// k = ⌈log₂ b⌉ and t = 2^k − b, values below t use k−1 bits and the
// rest use k bits offset by t.
func putTruncated(w *BitWriter, rem, b uint64) {
	if b == 1 {
		return
	}
	k := uint(bits.Len64(b - 1)) // ceil(log2 b)
	t := uint64(1)<<k - b
	if rem < t {
		w.WriteBits(rem, k-1)
	} else {
		w.WriteBits(rem+t, k)
	}
}

//cafe:hotpath
func getTruncated(r *BitReader, b uint64) (uint64, error) {
	if b == 1 {
		return 0, nil
	}
	k := uint(bits.Len64(b - 1))
	t := uint64(1)<<k - b
	v, err := r.ReadBits(k - 1)
	if err != nil {
		return 0, err
	}
	if v < t {
		return v, nil
	}
	bit, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	return v<<1 | uint64(bit) - t, nil
}

func truncatedLen(rem, b uint64) int {
	if b == 1 {
		return 0
	}
	k := int(bits.Len64(b - 1))
	t := uint64(1)<<uint(k) - b
	if rem < t {
		return k - 1
	}
	return k
}

// Rice coding is Golomb coding with a power-of-two parameter 2^k, which
// replaces the divide with shifts. The index uses Golomb for size and
// Rice where decode speed dominates.

// PutRice appends the Rice code of v ≥ 1 with parameter k.
func PutRice(w *BitWriter, v uint64, k uint) {
	if v == 0 {
		panic("compress: rice code of 0")
	}
	q := (v - 1) >> k
	w.WriteUnary(q + 1)
	w.WriteBits(v-1, k)
}

// GetRice reads a Rice code with parameter k.
//
//cafe:hotpath
func GetRice(r *BitReader, k uint) (uint64, error) {
	q, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	low, err := r.ReadBits(k)
	if err != nil {
		return 0, err
	}
	return (q-1)<<k | low + 1, nil
}

// RiceParameter returns a Rice parameter approximating the Golomb
// parameter for the given mean gap.
//
//cafe:hotpath
func RiceParameter(universe, occurrences uint64) uint {
	b := GolombParameter(universe, occurrences)
	k := uint(bits.Len64(b))
	if k > 0 {
		k--
	}
	return k
}
