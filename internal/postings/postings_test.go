package postings

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func ids(entries []Entry) []uint32 {
	out := make([]uint32, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out
}

func TestEncodeDecodeNoOffsets(t *testing.T) {
	entries := []Entry{
		{ID: 0, Count: 3},
		{ID: 5, Count: 1},
		{ID: 6, Count: 12},
		{ID: 999, Count: 2},
	}
	buf, err := Encode(entries, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf, len(entries), 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Errorf("round trip = %+v, want %+v", got, entries)
	}
}

func TestEncodeDecodeWithOffsets(t *testing.T) {
	entries := []Entry{
		{ID: 2, Count: 3, Offsets: []uint32{0, 7, 100}},
		{ID: 3, Count: 1, Offsets: []uint32{55}},
		{ID: 40, Count: 2, Offsets: []uint32{1, 2}},
	}
	buf, err := Encode(entries, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf, len(entries), 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Errorf("round trip = %+v, want %+v", got, entries)
	}
}

func TestEncodeEmpty(t *testing.T) {
	buf, err := Encode(nil, 100, true)
	if err != nil || buf != nil {
		t.Fatalf("Encode(nil) = %v, %v", buf, err)
	}
	got, err := Decode(nil, 0, 100, true)
	if err != nil || len(got) != 0 {
		t.Fatalf("Decode empty = %v, %v", got, err)
	}
}

func TestEncodeValidation(t *testing.T) {
	cases := []struct {
		name        string
		entries     []Entry
		numSeqs     int
		withOffsets bool
	}{
		{"descending ids", []Entry{{ID: 5, Count: 1}, {ID: 4, Count: 1}}, 10, false},
		{"duplicate ids", []Entry{{ID: 5, Count: 1}, {ID: 5, Count: 1}}, 10, false},
		{"id outside universe", []Entry{{ID: 10, Count: 1}}, 10, false},
		{"zero count", []Entry{{ID: 1, Count: 0}}, 10, false},
		{"count/offsets mismatch", []Entry{{ID: 1, Count: 2, Offsets: []uint32{3}}}, 10, true},
		{"unsorted offsets", []Entry{{ID: 1, Count: 2, Offsets: []uint32{5, 3}}}, 10, true},
		{"duplicate offsets", []Entry{{ID: 1, Count: 2, Offsets: []uint32{3, 3}}}, 10, true},
	}
	for _, c := range cases {
		if _, err := Encode(c.entries, c.numSeqs, c.withOffsets); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestIteratorStreams(t *testing.T) {
	entries := []Entry{
		{ID: 1, Count: 2, Offsets: []uint32{10, 20}},
		{ID: 9, Count: 1, Offsets: []uint32{0}},
	}
	buf, err := Encode(entries, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	var it Iterator
	it.Reset(buf, len(entries), 16, true)
	var got []Entry
	for it.Next() {
		e := it.Entry()
		offs := append([]uint32(nil), e.Offsets...)
		e.Offsets = offs
		got = append(got, e)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if !reflect.DeepEqual(got, entries) {
		t.Errorf("iterator = %+v, want %+v", got, entries)
	}
	if it.Next() {
		t.Error("Next returned true after exhaustion")
	}
}

func TestDecodeTruncated(t *testing.T) {
	entries := []Entry{{ID: 1, Count: 5}, {ID: 100, Count: 9}, {ID: 5000, Count: 1}}
	buf, err := Encode(entries, 10000, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(buf[:1], len(entries), 10000, false); err == nil {
		t.Error("decoded from truncated buffer")
	}
}

func TestDecodeWrongDF(t *testing.T) {
	entries := []Entry{{ID: 1, Count: 1}, {ID: 2, Count: 1}}
	buf, err := Encode(entries, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	// Asking for fewer entries silently stops early (the lexicon is the
	// source of truth); asking for many more must eventually error on
	// padding exhaustion rather than loop forever.
	got, err := Decode(buf, 1, 100, false)
	if err != nil || len(got) != 1 {
		t.Errorf("short decode = %v, %v", got, err)
	}
	if _, err := Decode(buf, 1000, 100, false); err == nil {
		t.Log("over-long decode succeeded on zero padding; acceptable only if ids stay plausible")
	}
}

func TestIteratorReuse(t *testing.T) {
	a := []Entry{{ID: 1, Count: 1}}
	b := []Entry{{ID: 7, Count: 2}}
	bufA, _ := Encode(a, 10, false)
	bufB, _ := Encode(b, 10, false)
	var it Iterator
	it.Reset(bufA, 1, 10, false)
	if !it.Next() || it.Entry().ID != 1 {
		t.Fatal("first list")
	}
	it.Reset(bufB, 1, 10, false)
	if !it.Next() || it.Entry().ID != 7 || it.Entry().Count != 2 {
		t.Fatal("second list after reuse")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, withOffsets bool) bool {
		rng := rand.New(rand.NewSource(seed))
		numSeqs := 1 + rng.Intn(10000)
		df := rng.Intn(numSeqs)
		idSet := map[uint32]bool{}
		for len(idSet) < df {
			idSet[uint32(rng.Intn(numSeqs))] = true
		}
		entries := make([]Entry, 0, df)
		for id := range idSet {
			entries = append(entries, Entry{ID: id})
		}
		sortEntries(entries)
		for i := range entries {
			n := 1 + rng.Intn(5)
			entries[i].Count = uint32(n)
			if withOffsets {
				offs := map[uint32]bool{}
				for len(offs) < n {
					offs[uint32(rng.Intn(100000))] = true
				}
				for o := range offs {
					entries[i].Offsets = append(entries[i].Offsets, o)
				}
				sortOffsets(entries[i].Offsets)
			}
		}
		buf, err := Encode(entries, numSeqs, withOffsets)
		if err != nil {
			return false
		}
		got, err := Decode(buf, df, numSeqs, withOffsets)
		if err != nil {
			return false
		}
		if len(got) == 0 && len(entries) == 0 {
			return true
		}
		return reflect.DeepEqual(got, entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sortEntries(entries []Entry) {
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].ID < entries[j-1].ID; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}

func sortOffsets(offs []uint32) {
	for i := 1; i < len(offs); i++ {
		for j := i; j > 0 && offs[j] < offs[j-1]; j-- {
			offs[j], offs[j-1] = offs[j-1], offs[j]
		}
	}
}

func TestCompressionEffective(t *testing.T) {
	// A dense list over a large universe must compress far below the
	// 8 bytes/posting of a naive representation.
	rng := rand.New(rand.NewSource(12))
	const numSeqs = 100000
	var entries []Entry
	for id := 0; id < numSeqs; id += 1 + rng.Intn(20) {
		entries = append(entries, Entry{ID: uint32(id), Count: 1})
	}
	buf, err := Encode(entries, numSeqs, false)
	if err != nil {
		t.Fatal(err)
	}
	bytesPerPosting := float64(len(buf)) / float64(len(entries))
	if bytesPerPosting > 2 {
		t.Errorf("%.2f bytes/posting, want ≤ 2", bytesPerPosting)
	}
}
