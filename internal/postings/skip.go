package postings

import (
	"fmt"
	"sort"

	"nucleodb/internal/compress"
)

// Skipped inverted lists ("self-indexing", Moffat & Zobel): a list
// carries a small table of synchronisation points so that a reader can
// jump close to a target sequence id instead of decoding every entry.
// Skips pay off for conjunctive processing — intersecting the lists of
// several query terms — where most entries of the longer lists are
// never needed.
//
// Layout: gamma(number of skips), then per skip the entry index delta,
// id delta and bit-offset delta (all gamma-coded), then the ordinary
// list encoding as produced by Encode. Bit offsets are relative to the
// start of the data section.

// SkippedList is a compressed posting list with a decoded skip table.
type SkippedList struct {
	data        []byte // the Encode-format payload
	skipEntries []int  // entry index at each sync point
	skipIDs     []uint32
	skipBits    []int
	df          int
	numSeqs     int
	withOffsets bool
}

// EncodeSkipped compresses entries with a synchronisation point every
// interval entries (interval ≤ 0 picks √df, the textbook choice).
func EncodeSkipped(entries []Entry, numSeqs int, withOffsets bool, interval int) ([]byte, error) {
	if err := validate(entries, numSeqs, withOffsets); err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = 1
		for interval*interval < len(entries) {
			interval++
		}
	}

	// Encode the payload while recording bit positions of each entry.
	b := compress.GolombParameter(uint64(numSeqs), uint64(len(entries)))
	w := compress.NewBitWriter(len(entries) * 2)
	type sync struct {
		entry int
		id    uint32
		bit   int
	}
	var syncs []sync
	prev := int64(-1)
	for i, e := range entries {
		if i > 0 && i%interval == 0 {
			syncs = append(syncs, sync{entry: i, id: uint32(prev), bit: w.BitLen()})
		}
		compress.PutGolomb(w, uint64(int64(e.ID)-prev), b)
		prev = int64(e.ID)
		compress.PutGamma(w, uint64(e.Count))
		if withOffsets {
			prevOff := int64(-1)
			for _, off := range e.Offsets {
				compress.PutGamma(w, uint64(int64(off)-prevOff))
				prevOff = int64(off)
			}
		}
	}
	data := w.Bytes()

	// Header: the skip table.
	hw := compress.NewBitWriter(len(syncs) + 4)
	compress.PutGamma(hw, uint64(len(syncs))+1)
	prevEntry, prevID, prevBit := 0, int64(-1), 0
	for _, s := range syncs {
		compress.PutGamma(hw, uint64(s.entry-prevEntry))
		compress.PutGamma(hw, uint64(int64(s.id)-prevID))
		compress.PutGamma(hw, uint64(s.bit-prevBit)+1)
		prevEntry, prevID, prevBit = s.entry, int64(s.id), s.bit
	}
	header := hw.Bytes()

	out := make([]byte, 0, len(header)+len(data)+4)
	out = compress.PutVByte(out, uint64(len(header)))
	out = append(out, header...)
	out = append(out, data...)
	return out, nil
}

// OpenSkipped parses a skipped list for iteration. df, numSeqs and
// withOffsets must match the encoding call, as with Decode.
func OpenSkipped(buf []byte, df, numSeqs int, withOffsets bool) (*SkippedList, error) {
	if df == 0 {
		return &SkippedList{}, nil
	}
	hlen, n, err := compress.GetVByte(buf)
	if err != nil {
		return nil, fmt.Errorf("postings: skip header length: %w", err)
	}
	if uint64(len(buf)-n) < hlen {
		return nil, fmt.Errorf("%w: truncated skip header", compress.ErrCorrupt)
	}
	header := buf[n : n+int(hlen)]
	data := buf[n+int(hlen):]

	r := compress.NewBitReader(header)
	count, err := compress.GetGamma(r)
	if err != nil {
		return nil, fmt.Errorf("postings: skip count: %w", err)
	}
	count--
	if count > uint64(df) {
		return nil, fmt.Errorf("%w: %d skips for df %d", compress.ErrCorrupt, count, df)
	}
	sl := &SkippedList{
		data:        data,
		df:          df,
		numSeqs:     numSeqs,
		withOffsets: withOffsets,
	}
	dataBits := len(data) * 8
	prevEntry, prevID, prevBit := 0, int64(-1), 0
	for i := uint64(0); i < count; i++ {
		de, err := compress.GetGamma(r)
		if err != nil {
			return nil, fmt.Errorf("postings: skip entry: %w", err)
		}
		di, err := compress.GetGamma(r)
		if err != nil {
			return nil, fmt.Errorf("postings: skip id: %w", err)
		}
		db, err := compress.GetGamma(r)
		if err != nil {
			return nil, fmt.Errorf("postings: skip bit: %w", err)
		}
		// Bound each gamma delta before the int conversions: a corrupt
		// header must not overflow the accumulators or place a sync point
		// outside the data section, where SeekGE would slice past the end.
		if de > uint64(df) || di > uint64(numSeqs) || db > uint64(dataBits)+1 {
			return nil, fmt.Errorf("%w: skip delta out of range", compress.ErrCorrupt)
		}
		prevEntry += int(de)
		prevID += int64(di)
		prevBit += int(db) - 1
		if prevEntry >= df || prevID >= int64(numSeqs) || prevBit < 0 || prevBit >= dataBits {
			return nil, fmt.Errorf("%w: skip point beyond list", compress.ErrCorrupt)
		}
		sl.skipEntries = append(sl.skipEntries, prevEntry)
		sl.skipIDs = append(sl.skipIDs, uint32(prevID))
		sl.skipBits = append(sl.skipBits, prevBit)
	}
	return sl, nil
}

// DF returns the list's document frequency.
func (sl *SkippedList) DF() int { return sl.df }

// SkipIterator iterates a skipped list with SeekGE support.
type SkipIterator struct {
	list *SkippedList
	it   Iterator
	// consumed tracks how many entries the underlying iterator has
	// produced relative to the whole list.
	consumed int
	// base adjustments after a jump.
	baseEntry int
}

// Iter returns an iterator positioned before the first entry.
func (sl *SkippedList) Iter() *SkipIterator {
	si := &SkipIterator{list: sl}
	si.reset(0, -1, 0)
	return si
}

// reset positions the underlying iterator at a sync point.
func (si *SkipIterator) reset(entry int, prevID int64, bitPos int) {
	sl := si.list
	if sl.df == 0 {
		si.it.Reset(nil, 0, 1, false)
		return
	}
	// The underlying iterator cannot start mid-bitstream, so feed it
	// the data sliced at a byte boundary and discard the bit remainder
	// manually via a fresh reader configuration: sync bit offsets are
	// arbitrary, so rewind to the byte containing bitPos and skip the
	// leading bits.
	si.it.Reset(sl.data[bitPos/8:], sl.df-entry, sl.numSeqs, sl.withOffsets)
	si.it.skipBits(uint(bitPos % 8))
	si.it.prev = prevID
	si.it.b = compress.GolombParameter(uint64(sl.numSeqs), uint64(sl.df))
	si.baseEntry = entry
	si.consumed = entry
}

// Next advances and reports whether an entry is available.
func (si *SkipIterator) Next() bool {
	if si.it.Next() {
		si.consumed++
		return true
	}
	return false
}

// Entry returns the current entry (valid after Next returns true).
func (si *SkipIterator) Entry() Entry { return si.it.Entry() }

// Err returns the first decode error.
func (si *SkipIterator) Err() error { return si.it.Err() }

// SeekGE advances to the first entry with ID ≥ target, using the skip
// table to jump over runs, and reports whether such an entry exists.
// After SeekGE returns true, Entry is valid. Seeking backwards is not
// supported; targets must be non-decreasing across calls.
func (si *SkipIterator) SeekGE(target uint32) bool {
	sl := si.list
	if sl.df == 0 {
		return false
	}
	// Use the skip table if it can jump past the current position.
	k := sort.Search(len(sl.skipIDs), func(i int) bool { return sl.skipIDs[i] >= target })
	// skipIDs[k-1] < target: entry index skipEntries[k-1] is the last
	// entry known to be < target... (ids at sync points are the id of
	// the entry *before* the sync). Jump there if ahead of us.
	if k > 0 && sl.skipEntries[k-1] > si.consumed {
		si.reset(sl.skipEntries[k-1], int64(sl.skipIDs[k-1]), sl.skipBits[k-1])
	}
	// Linear scan the remainder.
	if si.consumed > si.baseEntry {
		// An entry is already loaded; check it first.
		if si.it.cur.ID >= target {
			return true
		}
	}
	for si.Next() {
		if si.Entry().ID >= target {
			return true
		}
	}
	return false
}
