package postings

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func makeEntries(rng *rand.Rand, numSeqs, df int, withOffsets bool) []Entry {
	idSet := map[uint32]bool{}
	for len(idSet) < df {
		idSet[uint32(rng.Intn(numSeqs))] = true
	}
	entries := make([]Entry, 0, df)
	for id := range idSet {
		entries = append(entries, Entry{ID: id})
	}
	sortEntries(entries)
	for i := range entries {
		n := 1 + rng.Intn(4)
		entries[i].Count = uint32(n)
		if withOffsets {
			offs := map[uint32]bool{}
			for len(offs) < n {
				offs[uint32(rng.Intn(100000))] = true
			}
			for o := range offs {
				entries[i].Offsets = append(entries[i].Offsets, o)
			}
			sortOffsets(entries[i].Offsets)
		} else {
			entries[i].Count = uint32(n)
		}
	}
	return entries
}

func TestSkippedFullIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, withOffsets := range []bool{false, true} {
		for _, df := range []int{1, 2, 7, 100, 500} {
			entries := makeEntries(rng, 10000, df, withOffsets)
			buf, err := EncodeSkipped(entries, 10000, withOffsets, 0)
			if err != nil {
				t.Fatal(err)
			}
			sl, err := OpenSkipped(buf, df, 10000, withOffsets)
			if err != nil {
				t.Fatal(err)
			}
			it := sl.Iter()
			var got []Entry
			for it.Next() {
				e := it.Entry()
				if withOffsets {
					e.Offsets = append([]uint32(nil), e.Offsets...)
				}
				got = append(got, e)
			}
			if it.Err() != nil {
				t.Fatalf("df=%d offsets=%v: %v", df, withOffsets, it.Err())
			}
			if !reflect.DeepEqual(got, entries) {
				t.Fatalf("df=%d offsets=%v: iteration mismatch", df, withOffsets)
			}
		}
	}
}

func TestSkippedSeekGE(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	entries := makeEntries(rng, 50000, 2000, false)
	buf, err := EncodeSkipped(entries, 50000, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := OpenSkipped(buf, len(entries), 50000, false)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: linear search over decoded entries.
	seekRef := func(target uint32) (Entry, bool) {
		for _, e := range entries {
			if e.ID >= target {
				return e, true
			}
		}
		return Entry{}, false
	}

	it := sl.Iter()
	// Ascending targets, mix of present and absent ids.
	target := uint32(0)
	for i := 0; i < 300; i++ {
		target += uint32(rng.Intn(300))
		want, ok := seekRef(target)
		got := it.SeekGE(target)
		if got != ok {
			t.Fatalf("SeekGE(%d) = %v, want %v", target, got, ok)
		}
		if ok {
			e := it.Entry()
			if e.ID != want.ID || e.Count != want.Count {
				t.Fatalf("SeekGE(%d) entry = %+v, want %+v", target, e, want)
			}
			// Seek must land GE, not skip past the first qualifying id.
			target = e.ID // next target from here (non-decreasing)
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestSkippedSeekGEWithOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	entries := makeEntries(rng, 5000, 300, true)
	buf, err := EncodeSkipped(entries, 5000, true, 10)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := OpenSkipped(buf, len(entries), 5000, true)
	if err != nil {
		t.Fatal(err)
	}
	it := sl.Iter()
	mid := entries[len(entries)/2]
	if !it.SeekGE(mid.ID) {
		t.Fatal("SeekGE missed an existing id")
	}
	got := it.Entry()
	if got.ID != mid.ID || !reflect.DeepEqual(append([]uint32(nil), got.Offsets...), mid.Offsets) {
		t.Fatalf("entry = %+v, want %+v", got, mid)
	}
}

func TestSkippedSeekToCurrent(t *testing.T) {
	entries := []Entry{{ID: 3, Count: 1}, {ID: 8, Count: 1}, {ID: 15, Count: 1}}
	buf, err := EncodeSkipped(entries, 100, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := OpenSkipped(buf, 3, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	it := sl.Iter()
	if !it.SeekGE(8) || it.Entry().ID != 8 {
		t.Fatal("first seek")
	}
	// Seeking to the current id again stays put.
	if !it.SeekGE(8) || it.Entry().ID != 8 {
		t.Fatal("re-seek to current id moved")
	}
	if !it.SeekGE(9) || it.Entry().ID != 15 {
		t.Fatal("seek past current")
	}
	if it.SeekGE(16) {
		t.Fatal("seek beyond last id succeeded")
	}
}

func TestSkippedEmptyList(t *testing.T) {
	sl, err := OpenSkipped(nil, 0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	it := sl.Iter()
	if it.Next() || it.SeekGE(0) {
		t.Error("empty list yielded entries")
	}
}

func TestSkippedCorrupt(t *testing.T) {
	entries := makeEntries(rand.New(rand.NewSource(84)), 1000, 100, false)
	buf, err := EncodeSkipped(entries, 1000, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSkipped(buf[:1], 100, 1000, false); err == nil {
		t.Error("truncated header accepted")
	}
	// Iterating a truncated payload must surface an error, not loop.
	sl, err := OpenSkipped(buf[:len(buf)/2], 100, 1000, false)
	if err == nil {
		it := sl.Iter()
		n := 0
		for it.Next() {
			n++
		}
		if it.Err() == nil && n == 100 {
			t.Error("half a payload decoded all entries without error")
		}
	}
}

func TestSkippedIntervalChoices(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	entries := makeEntries(rng, 20000, 1000, false)
	for _, interval := range []int{1, 2, 5, 37, 1000, 5000} {
		buf, err := EncodeSkipped(entries, 20000, false, interval)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		sl, err := OpenSkipped(buf, len(entries), 20000, false)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		it := sl.Iter()
		n := 0
		for it.Next() {
			n++
		}
		if it.Err() != nil || n != len(entries) {
			t.Fatalf("interval %d: decoded %d (%v)", interval, n, it.Err())
		}
	}
}

func TestPropertySkippedMatchesPlain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numSeqs := 100 + rng.Intn(5000)
		df := 1 + rng.Intn(numSeqs/2)
		withOffsets := rng.Intn(2) == 0
		entries := makeEntries(rng, numSeqs, df, withOffsets)

		buf, err := EncodeSkipped(entries, numSeqs, withOffsets, rng.Intn(20))
		if err != nil {
			return false
		}
		sl, err := OpenSkipped(buf, df, numSeqs, withOffsets)
		if err != nil {
			return false
		}
		it := sl.Iter()
		i := 0
		for it.Next() {
			e := it.Entry()
			if e.ID != entries[i].ID || e.Count != entries[i].Count {
				return false
			}
			i++
		}
		return it.Err() == nil && i == len(entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
