package postings

import "testing"

// fuzzNumSeqs is the identifier universe the fuzz targets decode
// against; small enough that corrupt gap runs leave it quickly.
const fuzzNumSeqs = 1000

// fuzzSeedList returns an encoded valid list to seed the corpora.
func fuzzSeedList(t interface{ Fatal(...any) }, withOffsets bool) ([]byte, int) {
	entries := []Entry{
		{ID: 0, Count: 2, Offsets: []uint32{3, 90}},
		{ID: 7, Count: 1, Offsets: []uint32{44}},
		{ID: 512, Count: 3, Offsets: []uint32{0, 1, 7000}},
		{ID: 999, Count: 1, Offsets: []uint32{12}},
	}
	if !withOffsets {
		for i := range entries {
			entries[i].Offsets = nil
		}
	}
	buf, err := Encode(entries, fuzzNumSeqs, withOffsets)
	if err != nil {
		t.Fatal(err)
	}
	return buf, len(entries)
}

// FuzzPostingsDecode feeds arbitrary bytes to the postings iterator.
// Whatever the bytes, iteration must terminate with entries that stay
// inside the declared universe — a decoded id out of range would index
// past the coarse accumulator arrays — and errors, not panics, must
// flag the corruption.
func FuzzPostingsDecode(f *testing.F) {
	for _, withOffsets := range []bool{false, true} {
		buf, _ := fuzzSeedList(f, withOffsets)
		f.Add(buf, uint16(4), withOffsets)
		mangled := append([]byte{}, buf...)
		for i := 0; i < len(mangled); i += 3 {
			mangled[i] ^= 0x40
		}
		f.Add(mangled, uint16(4), withOffsets)
		if len(buf) > 2 {
			f.Add(buf[:len(buf)/2], uint16(4), withOffsets)
		}
	}
	f.Add([]byte{}, uint16(0), false)
	f.Add([]byte{0xFF, 0xFF, 0xFF}, uint16(200), true)

	f.Fuzz(func(t *testing.T, data []byte, dfRaw uint16, withOffsets bool) {
		df := int(dfRaw)
		var it Iterator
		it.Reset(data, df, fuzzNumSeqs, withOffsets)
		n := 0
		prev := int64(-1)
		for it.Next() {
			e := it.Entry()
			if int(e.ID) >= fuzzNumSeqs {
				t.Fatalf("entry %d id %d outside universe %d", n, e.ID, fuzzNumSeqs)
			}
			if int64(e.ID) <= prev {
				t.Fatalf("entry %d id %d not ascending after %d", n, e.ID, prev)
			}
			prev = int64(e.ID)
			if e.Count == 0 {
				t.Fatalf("entry %d zero count", n)
			}
			if withOffsets && len(e.Offsets) != int(e.Count) {
				t.Fatalf("entry %d count %d with %d offsets", n, e.Count, len(e.Offsets))
			}
			n++
			if n > df {
				t.Fatalf("iterator produced %d entries for df %d", n, df)
			}
		}
		if err := it.Err(); err == nil && n != df && df > 0 {
			t.Fatalf("clean iteration stopped at %d of %d entries", n, df)
		}
		if it.Decoded() != n {
			t.Fatalf("Decoded() %d after %d entries", it.Decoded(), n)
		}

		// The skipped-list reader must show the same discipline, both
		// scanning and seeking.
		sl, err := OpenSkipped(data, df, fuzzNumSeqs, withOffsets)
		if err != nil {
			return
		}
		si := sl.Iter()
		for si.Next() {
			if int(si.Entry().ID) >= fuzzNumSeqs {
				t.Fatalf("skipped iteration id %d outside universe", si.Entry().ID)
			}
		}
		_ = si.Err()
		si = sl.Iter()
		for target := uint32(0); target < fuzzNumSeqs; target += 97 {
			if !si.SeekGE(target) {
				break
			}
			if si.Entry().ID < target {
				t.Fatalf("SeekGE(%d) landed on %d", target, si.Entry().ID)
			}
		}
		_ = si.Err()
	})
}
