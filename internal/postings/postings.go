// Package postings implements compressed inverted lists: for one
// interval term, the ascending list of sequence identifiers containing
// it, each with an occurrence count and optionally the in-sequence
// offsets of the occurrences.
//
// The encoding follows the paper's inverted-file compression recipe:
// identifier gaps are Golomb-coded with the parameter derived from list
// density (universe = number of sequences, occurrences = document
// frequency), occurrence counts are Elias-gamma coded, and offset gaps
// are Elias-gamma coded. The document frequency itself lives in the
// lexicon, so a list is decodable given (document frequency, number of
// sequences, whether offsets are present).
package postings

import (
	"fmt"
	"sort"

	"nucleodb/internal/compress"
)

// Entry is one posting: a sequence id, the number of occurrences of the
// term in that sequence, and optionally the ascending offsets of those
// occurrences. When offsets are stored, Count == len(Offsets).
type Entry struct {
	ID      uint32
	Count   uint32
	Offsets []uint32
}

// Encode compresses entries into a byte buffer. Entries must be in
// strictly ascending ID order; numSeqs is the identifier universe size
// (all IDs < numSeqs); withOffsets selects whether offsets are encoded.
func Encode(entries []Entry, numSeqs int, withOffsets bool) ([]byte, error) {
	if err := validate(entries, numSeqs, withOffsets); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, nil
	}
	b := compress.GolombParameter(uint64(numSeqs), uint64(len(entries)))
	w := compress.NewBitWriter(len(entries) * 2)
	prev := int64(-1)
	for _, e := range entries {
		compress.PutGolomb(w, uint64(int64(e.ID)-prev), b)
		prev = int64(e.ID)
		compress.PutGamma(w, uint64(e.Count))
		if withOffsets {
			prevOff := int64(-1)
			for _, off := range e.Offsets {
				compress.PutGamma(w, uint64(int64(off)-prevOff))
				prevOff = int64(off)
			}
		}
	}
	return w.Bytes(), nil
}

func validate(entries []Entry, numSeqs int, withOffsets bool) error {
	if numSeqs <= 0 && len(entries) > 0 {
		return fmt.Errorf("postings: numSeqs %d with %d entries", numSeqs, len(entries))
	}
	prev := int64(-1)
	for i, e := range entries {
		if int64(e.ID) <= prev {
			return fmt.Errorf("postings: entry %d id %d not ascending after %d", i, e.ID, prev)
		}
		prev = int64(e.ID)
		if int(e.ID) >= numSeqs {
			return fmt.Errorf("postings: entry %d id %d outside universe %d", i, e.ID, numSeqs)
		}
		if e.Count == 0 {
			return fmt.Errorf("postings: entry %d has zero count", i)
		}
		if withOffsets {
			if int(e.Count) != len(e.Offsets) {
				return fmt.Errorf("postings: entry %d count %d != %d offsets", i, e.Count, len(e.Offsets))
			}
			if !sort.SliceIsSorted(e.Offsets, func(a, b int) bool { return e.Offsets[a] < e.Offsets[b] }) {
				return fmt.Errorf("postings: entry %d offsets not ascending", i)
			}
			for j := 1; j < len(e.Offsets); j++ {
				if e.Offsets[j] == e.Offsets[j-1] {
					return fmt.Errorf("postings: entry %d duplicate offset %d", i, e.Offsets[j])
				}
			}
		}
	}
	return nil
}

// Decode expands a compressed list. df is the entry count recorded in
// the lexicon; numSeqs and withOffsets must match the encoding call.
func Decode(buf []byte, df, numSeqs int, withOffsets bool) ([]Entry, error) {
	if df == 0 {
		return nil, nil
	}
	entries := make([]Entry, 0, df)
	var it Iterator
	it.Reset(buf, df, numSeqs, withOffsets)
	for it.Next() {
		e := it.Entry()
		if withOffsets {
			offs := make([]uint32, len(e.Offsets))
			copy(offs, e.Offsets)
			e.Offsets = offs
		}
		entries = append(entries, e)
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// Iterator streams a compressed list without allocating per entry; the
// coarse-search hot path uses it directly. The Offsets slice returned by
// Entry is reused between calls to Next.
type Iterator struct {
	r           compress.BitReader
	b           uint64 // golomb parameter
	df          int
	read        int
	numSeqs     int64 // identifier universe; decoded ids must stay below it
	withOffsets bool
	prev        int64 // last absolute id decoded, -1 before the first
	cur         Entry
	offsets     []uint32
	err         error
}

// Reset prepares the iterator over a compressed list with the given
// document frequency and universe.
//
//cafe:hotpath
func (it *Iterator) Reset(buf []byte, df, numSeqs int, withOffsets bool) {
	it.r.Reset(buf)
	it.df = df
	it.read = 0
	it.numSeqs = int64(numSeqs)
	it.withOffsets = withOffsets
	it.cur = Entry{}
	it.err = nil
	if df > 0 {
		it.b = compress.GolombParameter(uint64(numSeqs), uint64(df))
	}
	it.prev = -1
}

// Next advances to the next entry, returning false at the end of the
// list or on error; check Err afterwards.
//
//cafe:hotpath
func (it *Iterator) Next() bool {
	if it.err != nil || it.read >= it.df {
		return false
	}
	gap, err := compress.GetGolomb(&it.r, it.b)
	if err != nil {
		it.err = fmt.Errorf("postings: entry %d id: %w", it.read, err) //cafe:allow cold corruption path
		return false
	}
	// Guard before widening to uint32: a corrupt gap run must surface as
	// an error here, not as an out-of-range id that indexes the coarse
	// accumulator's per-sequence arrays.
	if gap > uint64(it.numSeqs) || it.prev+int64(gap) >= it.numSeqs {
		it.err = fmt.Errorf("postings: entry %d id gap %d runs outside universe %d", it.read, gap, it.numSeqs) //cafe:allow cold corruption path
		return false
	}
	id := it.prev + int64(gap)
	it.prev = id
	count, err := compress.GetGamma(&it.r)
	if err != nil {
		it.err = fmt.Errorf("postings: entry %d count: %w", it.read, err) //cafe:allow cold corruption path
		return false
	}
	if count == 0 || count > 1<<31 {
		it.err = fmt.Errorf("postings: entry %d implausible count %d", it.read, count) //cafe:allow cold corruption path
		return false
	}
	it.cur = Entry{ID: uint32(id), Count: uint32(count)}
	if it.withOffsets {
		it.offsets = it.offsets[:0]
		prevOff := int64(-1)
		for j := uint64(0); j < count; j++ {
			og, err := compress.GetGamma(&it.r)
			if err != nil {
				it.err = fmt.Errorf("postings: entry %d offset %d: %w", it.read, j, err) //cafe:allow cold corruption path
				return false
			}
			if og > 1<<32 || prevOff+int64(og) > 1<<32-1 {
				it.err = fmt.Errorf("postings: entry %d offset %d overflows uint32", it.read, j) //cafe:allow cold corruption path
				return false
			}
			prevOff += int64(og)
			it.offsets = append(it.offsets, uint32(prevOff)) //cafe:allow amortised scratch, reused across entries and reset by Reset
		}
		it.cur.Offsets = it.offsets
	}
	it.read++
	return true
}

// Entry returns the current entry. Valid after Next returns true; the
// Offsets slice is reused by subsequent Next calls.
//
//cafe:hotpath
func (it *Iterator) Entry() Entry { return it.cur }

// Decoded returns the number of entries decoded since Reset — the
// work-accounting hook the search pipeline's stats use. It equals the
// document frequency once the list is exhausted.
//
//cafe:hotpath
func (it *Iterator) Decoded() int { return it.read }

// skipBits discards n leading bits; the skip machinery uses it to
// resynchronise an iterator at a mid-byte synchronisation point.
//
//cafe:hotpath
func (it *Iterator) skipBits(n uint) {
	if n == 0 || it.err != nil {
		return
	}
	if _, err := it.r.ReadBits(n); err != nil {
		it.err = fmt.Errorf("postings: skip alignment: %w", err) //cafe:allow cold corruption path
	}
}

// Err returns the first decoding error encountered, if any.
//
//cafe:hotpath
func (it *Iterator) Err() error { return it.err }
