package experiments

import (
	"time"

	"nucleodb/internal/core"
	"nucleodb/internal/index"
)

// StageBreakdown is one pipeline stage's aggregate cost over a
// workload, in the JSON shape cafe-bench -json emits.
type StageBreakdown struct {
	TotalUS float64 `json:"total_us"`
	MeanUS  float64 `json:"mean_us"`
	// Share is this stage's fraction of the summed stage time — the
	// paper's coarse-vs-fine cost split, measured.
	Share float64 `json:"share"`
}

// StatsReport is the machine-readable per-stage breakdown of the
// standard search workload: what cafe-bench -json prints, and what
// later perf PRs diff against.
type StatsReport struct {
	Seed        int                       `json:"seed"`
	Bases       int                       `json:"bases"`
	Sequences   int                       `json:"sequences"`
	Queries     int                       `json:"queries"`
	QueryLen    int                       `json:"query_len"`
	K           int                       `json:"k"`
	Candidates  int                       `json:"candidates"`
	Counters    map[string]int64          `json:"counters"`
	Stages      map[string]StageBreakdown `json:"stages"`
	MeanQueryUS float64                   `json:"mean_query_us"`
}

// Observe runs the standard workload once with stats collection on and
// aggregates the per-stage breakdown. It is the programmatic form of
// `cafe-bench -json`.
func Observe(cfg Config) (*StatsReport, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	idx, _, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
	if err != nil {
		return nil, err
	}
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Candidates = cfg.Candidates
	opts.Limit = cfg.TopN

	var agg, st core.SearchStats
	for qi := range env.Queries {
		if _, err := searcher.SearchWithStats(env.Queries[qi].Codes, opts, &st); err != nil {
			return nil, err
		}
		agg.Add(st)
	}
	n := len(env.Queries)
	if n == 0 {
		n = 1
	}

	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	stageSum := agg.StageTime()
	if stageSum == 0 {
		stageSum = 1
	}
	share := func(d time.Duration) float64 { return float64(d) / float64(stageSum) }
	return &StatsReport{
		Seed:       int(cfg.Seed),
		Bases:      env.TotalBases(),
		Sequences:  env.Store.Len(),
		Queries:    len(env.Queries),
		QueryLen:   cfg.QueryLen,
		K:          cfg.K,
		Candidates: cfg.Candidates,
		Counters: map[string]int64{
			"query_terms":          int64(agg.QueryTerms),
			"posting_lists":        int64(agg.PostingLists),
			"postings_decoded":     agg.PostingsDecoded,
			"postings_bytes_read":  agg.PostingsBytesRead,
			"coarse_sequences":     int64(agg.CoarseSequences),
			"coarse_candidates":    int64(agg.CoarseCandidates),
			"coarse_shards":        int64(agg.CoarseShards),
			"prescreen_rejections": int64(agg.PrescreenRejections),
			"fine_alignments":      int64(agg.FineAlignments),
			"bitvector_alignments": int64(agg.BitvectorAlignments),
			"traceback_alignments": int64(agg.TracebackAlignments),
			"fine_dp_cells":        agg.FineDPCells,
			"traceback_dp_cells":   agg.TracebackDPCells,
			"results":              int64(agg.Results),
		},
		Stages: map[string]StageBreakdown{
			"coarse":    {TotalUS: us(agg.CoarseTime), MeanUS: us(agg.CoarseTime) / float64(n), Share: share(agg.CoarseTime)},
			"prescreen": {TotalUS: us(agg.PrescreenTime), MeanUS: us(agg.PrescreenTime) / float64(n), Share: share(agg.PrescreenTime)},
			"fine":      {TotalUS: us(agg.FineTime), MeanUS: us(agg.FineTime) / float64(n), Share: share(agg.FineTime)},
			"traceback": {TotalUS: us(agg.TracebackTime), MeanUS: us(agg.TracebackTime) / float64(n), Share: share(agg.TracebackTime)},
		},
		MeanQueryUS: us(agg.TotalTime) / float64(n),
	}, nil
}
