package experiments

import (
	"reflect"
	"runtime"
	"sort"
	"time"

	"nucleodb/internal/core"
	"nucleodb/internal/index"
)

// FineBenchRun is one (kernel, worker-count) cell of the fine-phase
// sweep: fine-stage and whole-query wall time, DP throughput, and the
// two speedup axes — kernel (versus scalar at the same worker count)
// and parallel (versus one worker on the same kernel).
type FineBenchRun struct {
	Kernel      string  `json:"kernel"`
	Workers     int     `json:"workers"`
	FineTotalUS float64 `json:"fine_total_us"`
	FineMeanUS  float64 `json:"fine_mean_us"`
	QueryMeanUS float64 `json:"query_mean_us"`
	// FineCellsPerUS is DP cells evaluated per microsecond of fine
	// wall time — the kernel's throughput, directly comparable across
	// kernels because both count full-matrix cells.
	FineCellsPerUS float64 `json:"fine_cells_per_us"`
	// KernelSpeedup is the scalar kernel's fine time at this worker
	// count over this run's fine time (1.0 for scalar rows).
	KernelSpeedup float64 `json:"kernel_speedup"`
	// ParallelSpeedup is this kernel's one-worker fine time over this
	// run's fine time (1.0 for one-worker rows).
	ParallelSpeedup float64 `json:"parallel_speedup"`
	// BitvectorAlignments counts fine alignments the bit-parallel
	// kernel actually scored across the workload (0 on scalar rows;
	// equal to the alignment count on bitvector rows unless the
	// capacity fallback fired).
	BitvectorAlignments int64 `json:"bitvector_alignments"`
}

// FineBenchReport is the kernel×workers fine-phase trajectory
// `cafe-bench -fine` emits (committed as BENCH_fine.json). Like the
// coarse report, it doubles as an equivalence smoke: every cell must
// return byte-identical results to the serial scalar reference, and
// cafe-bench exits nonzero when ResultsIdentical is false.
type FineBenchReport struct {
	Seed       int `json:"seed"`
	Bases      int `json:"bases"`
	Sequences  int `json:"sequences"`
	Queries    int `json:"queries"`
	QueryLen   int `json:"query_len"`
	K          int `json:"k"`
	Candidates int `json:"candidates"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// CPUs is runtime.NumCPU of the bench machine; parallel rows with
	// Workers > CPUs measure scheduling overhead, not speedup.
	CPUs int            `json:"cpus"`
	Runs []FineBenchRun `json:"runs"`
	// ResultsIdentical reports whether every cell reproduced the
	// serial scalar results exactly (IDs, scores, spans, transcripts).
	ResultsIdentical bool `json:"results_identical"`
}

// KernelSpeedupAt returns the bitvector kernel's speedup over scalar
// at the given worker count, or 0 when the report has no such row.
func (r *FineBenchReport) KernelSpeedupAt(workers int) float64 {
	for _, run := range r.Runs {
		if run.Kernel == "bitvector" && run.Workers == workers {
			return run.KernelSpeedup
		}
	}
	return 0
}

// FineBench measures the fine phase under FineFull for every kernel ×
// worker-count cell (default workers 1, 2, 4, GOMAXPROCS —
// deduplicated; kernels scalar and bitvector) on the standard
// workload, verifying each cell reproduces the serial scalar results
// exactly. Each cell runs the whole workload repeatedly and keeps the
// fastest pass, damping scheduler noise.
func FineBench(cfg Config, workerCounts []int) (*FineBenchReport, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	}
	seen := map[int]bool{}
	counts := []int{1}
	seen[1] = true
	for _, w := range workerCounts {
		if w < 1 {
			w = 1
		}
		if !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	sort.Ints(counts)

	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	idx, _, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
	if err != nil {
		return nil, err
	}
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Candidates = cfg.Candidates
	opts.Limit = cfg.TopN
	opts.FineMode = core.FineFull // the kernels differ only on the full-matrix path

	const repeats = 3
	nq := len(env.Queries)
	if nq == 0 {
		nq = 1
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

	report := &FineBenchReport{
		Seed:             int(cfg.Seed),
		Bases:            env.TotalBases(),
		Sequences:        env.Store.Len(),
		Queries:          len(env.Queries),
		QueryLen:         cfg.QueryLen,
		K:                cfg.K,
		Candidates:       cfg.Candidates,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		CPUs:             runtime.NumCPU(),
		ResultsIdentical: true,
	}

	kernels := []core.FineKernel{core.FineKernelScalar, core.FineKernelBitvector}
	var refResults [][]core.Result
	scalarFine := map[int]time.Duration{} // workers → scalar fine time
	serialFine := map[string]time.Duration{}
	for _, kernel := range kernels {
		for _, workers := range counts {
			wopts := opts
			wopts.FineKernel = kernel
			if workers > 1 {
				wopts.FineWorkers = workers
			}
			var bestFine, bestTotal time.Duration
			var cells, bvAligns int64
			var results [][]core.Result
			for rep := 0; rep < repeats; rep++ {
				var fine, total time.Duration
				cells, bvAligns = 0, 0
				pass := make([][]core.Result, len(env.Queries))
				var st core.SearchStats
				for qi := range env.Queries {
					rs, err := searcher.SearchWithStats(env.Queries[qi].Codes, wopts, &st)
					if err != nil {
						return nil, err
					}
					fine += st.FineTime
					total += st.TotalTime
					cells += st.FineDPCells
					bvAligns += int64(st.BitvectorAlignments)
					pass[qi] = rs
				}
				if rep == 0 || fine < bestFine {
					bestFine = fine
				}
				if rep == 0 || total < bestTotal {
					bestTotal = total
				}
				results = pass
			}
			if refResults == nil {
				refResults = results // scalar × 1 worker: the reference
			} else if !reflect.DeepEqual(results, refResults) {
				report.ResultsIdentical = false
			}
			if kernel == core.FineKernelScalar {
				scalarFine[workers] = bestFine
			}
			if workers == 1 {
				serialFine[kernel.String()] = bestFine
			}
			kernelSpeedup, parallelSpeedup := 1.0, 1.0
			if base, ok := scalarFine[workers]; ok && (base > 0 || bestFine > 0) {
				kernelSpeedup = ratioNS(base, bestFine)
			}
			if base, ok := serialFine[kernel.String()]; ok && (base > 0 || bestFine > 0) {
				parallelSpeedup = ratioNS(base, bestFine)
			}
			cellsPerUS := 0.0
			if bestFine > 0 {
				cellsPerUS = float64(cells) / us(bestFine)
			}
			report.Runs = append(report.Runs, FineBenchRun{
				Kernel:              kernel.String(),
				Workers:             workers,
				FineTotalUS:         us(bestFine),
				FineMeanUS:          us(bestFine) / float64(nq),
				QueryMeanUS:         us(bestTotal) / float64(nq),
				FineCellsPerUS:      cellsPerUS,
				KernelSpeedup:       kernelSpeedup,
				ParallelSpeedup:     parallelSpeedup,
				BitvectorAlignments: bvAligns,
			})
		}
	}
	return report, nil
}
