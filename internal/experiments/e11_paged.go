package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"nucleodb/internal/core"
	"nucleodb/internal/eval"
	"nucleodb/internal/index"
)

// E11Row is one index-residency mode's measurement.
type E11Row struct {
	Mode          string
	ResidentBytes int // index bytes held in memory
	MeanTime      time.Duration
}

// E11 is an extension experiment for the paper's disk-residency
// premise ("disk costs are often the bottleneck in searching"): the
// same saved index opened fully in memory versus paged (lexicon in
// memory, posting lists read per query). Paged evaluation touches only
// the query's terms' lists, so its cost stays close to in-memory while
// resident index memory drops to the lexicon.
func E11(w io.Writer, cfg Config) ([]E11Row, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	built, _, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "nucleodb-e11-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "idx.ndx")
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := built.Save(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	memIdx, err := openMem(path)
	if err != nil {
		return nil, err
	}
	diskIdx, err := index.OpenDisk(path)
	if err != nil {
		return nil, err
	}
	defer diskIdx.Close()

	opts := core.DefaultOptions()
	opts.Candidates = cfg.Candidates
	opts.Limit = cfg.TopN

	measure := func(idx *index.Index) (time.Duration, error) {
		searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
		if err != nil {
			return 0, err
		}
		var total time.Duration
		for qi := range env.Queries {
			q := env.Queries[qi].Codes
			var sErr error
			total += eval.Timed(func() {
				_, sErr = searcher.Search(q, opts)
			})
			if sErr != nil {
				return 0, sErr
			}
		}
		return total / time.Duration(len(env.Queries)), nil
	}

	memTime, err := measure(memIdx)
	if err != nil {
		return nil, err
	}
	diskTime, err := measure(diskIdx)
	if err != nil {
		return nil, err
	}

	rows := []E11Row{
		{Mode: "in-memory", ResidentBytes: memIdx.SizeBytes(), MeanTime: memTime},
		{Mode: "paged (lexicon only)", ResidentBytes: diskIdx.SizeBytes() - diskIdx.PostingsBytes(), MeanTime: diskTime},
	}
	tab := eval.NewTable(
		fmt.Sprintf("E11 (extension): index residency — %.1f Mbases, %d queries",
			float64(env.TotalBases())/1e6, len(env.Queries)),
		"mode", "resident index", "mean/query")
	for _, r := range rows {
		tab.AddRow(r.Mode, mb(r.ResidentBytes), r.MeanTime)
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func openMem(path string) (*index.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return index.Load(f)
}
