package experiments

import (
	"fmt"
	"io"
	"time"

	"nucleodb/internal/core"
	"nucleodb/internal/eval"
	"nucleodb/internal/index"
)

// E8Row is one coarse-ranking variant's measurement.
type E8Row struct {
	Mode      core.CoarseMode
	Recall    float64 // full-search recall at TopN
	CoarseR20 float64 // coarse-only recall within the candidate budget
	MeanTime  time.Duration
}

// E8 is the design ablation (Table 6): how the coarse ranking function
// affects accuracy and cost. Count-distinct with length damping is the
// design the paper settled on; total-occurrence counting over-rewards
// long repetitive sequences, and diagonal clustering buys precision for
// extra index size.
func E8(w io.Writer, cfg Config) ([]E8Row, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	idx, _, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
	if err != nil {
		return nil, err
	}
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		return nil, err
	}

	modes := []core.CoarseMode{core.CoarseDistinct, core.CoarseTotal, core.CoarseNormalised, core.CoarseDiagonal}
	var rows []E8Row
	tab := eval.NewTable(
		fmt.Sprintf("E8 (Table 6): coarse ranking ablation — budget %d candidates", cfg.Candidates),
		"coarse mode", "recall(search)", "recall(coarse)", "mean/query")
	for _, mode := range modes {
		opts := core.DefaultOptions()
		opts.CoarseMode = mode
		opts.Candidates = cfg.Candidates
		opts.Limit = cfg.TopN

		var total time.Duration
		var searchRecalls, coarseRecalls []float64
		for qi := range env.Queries {
			q := env.Queries[qi].Codes
			gold := env.GoldIDs(qi)
			var rs []core.Result
			elapsed := eval.Timed(func() {
				var err2 error
				rs, err2 = searcher.Search(q, opts)
				if err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, err
			}
			total += elapsed
			if len(gold) == 0 {
				continue
			}
			searchRecalls = append(searchRecalls, eval.RecallAt(coreIDs(rs), gold, cfg.TopN))

			cands, err := searcher.Coarse(q, mode, 1)
			if err != nil {
				return nil, err
			}
			ids := make([]int, len(cands))
			for i, c := range cands {
				ids[i] = c.ID
			}
			coarseRecalls = append(coarseRecalls, eval.RecallAt(ids, gold, cfg.Candidates))
		}
		row := E8Row{
			Mode:      mode,
			Recall:    eval.Mean(searchRecalls),
			CoarseR20: eval.Mean(coarseRecalls),
			MeanTime:  total / time.Duration(len(env.Queries)),
		}
		rows = append(rows, row)
		tab.AddRow(mode.String(), row.Recall, row.CoarseR20, row.MeanTime)
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}
