package experiments

import (
	"fmt"
	"io"
	"time"

	"nucleodb/internal/eval"
	"nucleodb/internal/index"
)

// E1Row is one interval length's index-size measurement.
type E1Row struct {
	K               int
	Offsets         bool
	DistinctTerms   int
	TotalPostings   int
	CompressedBytes int
	RawBytes        int // uncompressed inverted file equivalent
	PercentOfText   float64
	BuildTime       time.Duration
}

// E1 reproduces Table 1: index size as a function of interval length,
// with and without occurrence offsets, compressed against the
// uncompressed equivalent and relative to the text (1 byte/base) size
// of the collection — the "index size is held to an acceptable level"
// claim.
func E1(w io.Writer, cfg Config) ([]E1Row, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	textBytes := env.TotalBases()

	var rows []E1Row
	tab := eval.NewTable(
		fmt.Sprintf("E1 (Table 1): index size vs interval length — %d sequences, %.1f Mbases",
			env.Store.Len(), float64(env.TotalBases())/1e6),
		"k", "offsets", "terms", "postings", "compressed", "raw-equiv", "% of text", "build")
	for _, k := range []int{6, 8, 9, 10, 12} {
		for _, offsets := range []bool{false, true} {
			idx, buildTime, err := env.BuildIndex(index.Options{K: k, StoreOffsets: offsets})
			if err != nil {
				return nil, err
			}
			// The uncompressed equivalent stores 4 bytes of sequence id
			// + 4 bytes of count per posting, 4 bytes per offset when
			// offsets are kept, and an uncompressed lexicon entry
			// (8-byte term + 8-byte pointer).
			raw := idx.TotalPostings()*8 + idx.NumTermsIndexed()*16
			if offsets {
				coder := idx.Coder()
				for id := 0; id < env.Store.Len(); id++ {
					raw += 4 * coder.NumIntervals(idx.SeqLen(id))
				}
			}
			onDisk, err := idx.SerializedBytes()
			if err != nil {
				return nil, err
			}
			row := E1Row{
				K:               k,
				Offsets:         offsets,
				DistinctTerms:   idx.NumTermsIndexed(),
				TotalPostings:   idx.TotalPostings(),
				CompressedBytes: onDisk,
				RawBytes:        raw,
				PercentOfText:   100 * float64(onDisk) / float64(textBytes),
				BuildTime:       buildTime,
			}
			rows = append(rows, row)
			tab.AddRow(k, offsets, row.DistinctTerms, row.TotalPostings,
				mb(row.CompressedBytes), mb(row.RawBytes),
				fmt.Sprintf("%.0f%%", row.PercentOfText), buildTime)
		}
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// mb renders a byte count in megabytes.
func mb(n int) string { return fmt.Sprintf("%.2fMB", float64(n)/1e6) }
