package experiments

import (
	"bytes"
	"strings"
	"testing"

	"nucleodb/internal/compress"
)

// tiny returns a configuration small enough for unit tests (a fraction
// of a second per experiment) while keeping the effects visible.
func tiny() Config {
	return Config{
		Seed:       99,
		BaseBases:  300_000,
		ScaleBases: []int{100_000, 200_000},
		NumQueries: 6,
		QueryLen:   300,
		Divergence: 0.08,
		K:          9,
		Candidates: 50,
		TopN:       10,
	}
}

func TestE1Shapes(t *testing.T) {
	rows, err := E1(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("only %d rows", len(rows))
	}
	var prevK int
	var prevTerms int
	for i, r := range rows {
		if r.CompressedBytes <= 0 || r.RawBytes <= 0 {
			t.Errorf("row %d has zero sizes: %+v", i, r)
		}
		// Compression must beat the uncompressed equivalent.
		if r.CompressedBytes >= r.RawBytes {
			t.Errorf("k=%d offsets=%v compressed %d ≥ raw %d", r.K, r.Offsets, r.CompressedBytes, r.RawBytes)
		}
		// Longer intervals → more distinct terms.
		if r.K > prevK && prevTerms > 0 && r.DistinctTerms <= prevTerms {
			t.Errorf("distinct terms not increasing: k=%d %d vs %d", r.K, r.DistinctTerms, prevTerms)
		}
		prevK, prevTerms = r.K, r.DistinctTerms
	}
	// Offsets cost index size: for each k, the offsets=true row is
	// strictly larger.
	byK := map[int]map[bool]int{}
	for _, r := range rows {
		if byK[r.K] == nil {
			byK[r.K] = map[bool]int{}
		}
		byK[r.K][r.Offsets] = r.CompressedBytes
	}
	for k, m := range byK {
		if m[true] <= m[false] {
			t.Errorf("k=%d: offsets index %d not larger than offsets-free %d", k, m[true], m[false])
		}
	}
}

func TestE2Shapes(t *testing.T) {
	rows, err := E2(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	size := map[compress.Scheme]int{}
	for _, r := range rows {
		if r.Bytes <= 0 {
			t.Errorf("%v: zero size", r.Scheme)
		}
		size[r.Scheme] = r.Bytes
	}
	// The paper's ordering: Golomb with per-list parameters beats the
	// non-parameterised bit codes, which beat byte-aligned vbyte, which
	// beats fixed words.
	if size[compress.SchemeGolomb] > size[compress.SchemeGamma] {
		t.Errorf("golomb %d > gamma %d", size[compress.SchemeGolomb], size[compress.SchemeGamma])
	}
	if size[compress.SchemeGolomb] >= size[compress.SchemeVByte] {
		t.Errorf("golomb %d ≥ vbyte %d", size[compress.SchemeGolomb], size[compress.SchemeVByte])
	}
	if size[compress.SchemeVByte] >= size[compress.SchemeNone] {
		t.Errorf("vbyte %d ≥ none %d", size[compress.SchemeVByte], size[compress.SchemeNone])
	}
	if size[compress.SchemeRice] > size[compress.SchemeGamma] {
		t.Errorf("rice %d > gamma %d", size[compress.SchemeRice], size[compress.SchemeGamma])
	}
}

func TestE3Shapes(t *testing.T) {
	rows, err := E3(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E3Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	sw := byName["sw-scan (exhaustive)"]
	part := byName["partitioned (banded)"]
	if sw.MeanTime == 0 || part.MeanTime == 0 {
		t.Fatalf("missing methods: %+v", byName)
	}
	// The headline: several times faster than exhaustive search...
	if part.SpeedupSW < 3 {
		t.Errorf("partitioned speedup %.1f× < 3× over exhaustive SW", part.SpeedupSW)
	}
	// ...at near-exhaustive accuracy.
	if part.Recall < 0.85 {
		t.Errorf("partitioned recall %.2f < 0.85", part.Recall)
	}
	if sw.Recall < 0.999 {
		t.Errorf("gold standard recall against itself = %.3f", sw.Recall)
	}
}

func TestE4Shapes(t *testing.T) {
	rows, err := E4(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("only %d rows", len(rows))
	}
	// Recall is non-decreasing in the candidate budget and saturates
	// high.
	for i := 1; i < len(rows); i++ {
		if rows[i].Recall < rows[i-1].Recall-1e-9 {
			t.Errorf("recall decreased: %v", rows)
		}
	}
	if last := rows[len(rows)-1].Recall; last < 0.9 {
		t.Errorf("recall at max budget = %.2f, want ≥ 0.9", last)
	}
}

func TestE5Shapes(t *testing.T) {
	rows, err := E5(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].StopFraction != 0 || rows[0].TermsStopped != 0 {
		t.Fatalf("first row must be the unstopped baseline: %+v", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TermsStopped <= rows[i-1].TermsStopped {
			t.Errorf("stopping not monotone: %+v", rows)
		}
		if rows[i].IndexBytes >= rows[0].IndexBytes {
			t.Errorf("stopping failed to shrink index: %d ≥ %d", rows[i].IndexBytes, rows[0].IndexBytes)
		}
	}
	// Mild stopping keeps recall close to baseline.
	if rows[1].Recall < rows[0].Recall-0.1 {
		t.Errorf("0.1%% stopping dropped recall from %.2f to %.2f", rows[0].Recall, rows[1].Recall)
	}
}

func TestE6Shapes(t *testing.T) {
	rows, err := E6(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Exhaustive time grows roughly with collection size; partitioned
	// stays faster at every size.
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("no speedup at %d bases: %+v", r.Bases, r)
		}
	}
	if rows[1].SWScanTime <= rows[0].SWScanTime {
		t.Errorf("sw-scan time did not grow with collection: %v vs %v",
			rows[1].SWScanTime, rows[0].SWScanTime)
	}
}

func TestE7Shapes(t *testing.T) {
	rows, err := E7(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E7Row{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	ascii := byName["ascii (text parse)"]
	packed := byName["2-bit packed (lossy)"]
	direct := byName["direct coding"]
	if !direct.Lossless || packed.Lossless {
		t.Error("losslessness flags wrong")
	}
	if direct.BitsPerBase > 2.3 {
		t.Errorf("direct coding %.2f bits/base, want ≤ 2.3", direct.BitsPerBase)
	}
	if ascii.BitsPerBase < 7.9 {
		t.Errorf("ascii %.2f bits/base", ascii.BitsPerBase)
	}
	if direct.Bytes >= ascii.Bytes/3 {
		t.Errorf("direct %d not ≪ ascii %d", direct.Bytes, ascii.Bytes)
	}
	// Decode throughput comparisons are noisy when the test binary
	// shares the machine; require only that direct decoding is in the
	// same league as text parsing (it is typically at parity or
	// faster), not strictly faster on this run.
	if direct.DecodeMBps < 0.5*ascii.DecodeMBps {
		t.Errorf("direct decode %.0f MB/s far below ascii %.0f MB/s",
			direct.DecodeMBps, ascii.DecodeMBps)
	}
}

func TestE8Shapes(t *testing.T) {
	rows, err := E8(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Recall < 0.5 {
			t.Errorf("%v recall %.2f implausibly low", r.Mode, r.Recall)
		}
	}
}

func TestE9Shapes(t *testing.T) {
	rows, err := E9(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d rows", len(rows))
	}
	if rows[0].SkipInterval != 0 {
		t.Fatalf("first row must be the plain-index baseline: %+v", rows[0])
	}
	// All configurations return the same intersections.
	for _, r := range rows[1:] {
		if r.Intersected != rows[0].Intersected {
			t.Errorf("skip=%d mean results %d differ from baseline %d",
				r.SkipInterval, r.Intersected, rows[0].Intersected)
		}
		// Skips cost index size.
		if r.IndexBytes <= rows[0].IndexBytes {
			t.Errorf("skip=%d index %d not larger than plain %d",
				r.SkipInterval, r.IndexBytes, rows[0].IndexBytes)
		}
	}
}

func TestE10Shapes(t *testing.T) {
	rows, err := E10(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("qlen=%d: speedup %.1f ≤ 1", r.QueryLen, r.Speedup)
		}
		if r.Recall < 0.7 {
			t.Errorf("qlen=%d: recall %.2f < 0.7", r.QueryLen, r.Recall)
		}
	}
	// Exhaustive cost grows with query length.
	if rows[len(rows)-1].SWScanTime <= rows[0].SWScanTime {
		t.Errorf("sw-scan time did not grow with query length: %v vs %v",
			rows[len(rows)-1].SWScanTime, rows[0].SWScanTime)
	}
}

func TestE11Shapes(t *testing.T) {
	rows, err := E11(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	mem, paged := rows[0], rows[1]
	if paged.ResidentBytes >= mem.ResidentBytes {
		t.Errorf("paged resident %d not below in-memory %d", paged.ResidentBytes, mem.ResidentBytes)
	}
	// Paged evaluation must stay within an order of magnitude of
	// in-memory on a warm cache.
	if paged.MeanTime > 10*mem.MeanTime {
		t.Errorf("paged %v ≫ in-memory %v", paged.MeanTime, mem.MeanTime)
	}
}

func TestE12Shapes(t *testing.T) {
	rows, err := E12(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	contiguous, spaced := rows[0], rows[1]
	// Equal weight → comparable index sizes (within 2×).
	if spaced.IndexBytes > 2*contiguous.IndexBytes {
		t.Errorf("spaced index %d ≫ contiguous %d", spaced.IndexBytes, contiguous.IndexBytes)
	}
	// The end-to-end rankings are comparable on the hard workload (the
	// decisive ≥1-hit sensitivity advantage is asserted at seed level
	// in internal/kmer); neither shape may collapse.
	if spaced.CoarseRecall < contiguous.CoarseRecall-0.25 {
		t.Errorf("spaced coarse recall %.3f far below contiguous %.3f",
			spaced.CoarseRecall, contiguous.CoarseRecall)
	}
	if spaced.CoarseRecall < 0.3 || contiguous.CoarseRecall < 0.3 {
		t.Errorf("coarse recall collapsed: spaced %.3f, contiguous %.3f",
			spaced.CoarseRecall, contiguous.CoarseRecall)
	}
}

func TestRunAllRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, tiny()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite output missing %s", want)
		}
	}
}

func TestObserveReportShape(t *testing.T) {
	rep, err := Observe(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 || rep.Bases == 0 {
		t.Fatalf("empty workload: %+v", rep)
	}
	for _, stage := range []string{"coarse", "prescreen", "fine", "traceback"} {
		if _, ok := rep.Stages[stage]; !ok {
			t.Fatalf("report missing stage %q", stage)
		}
	}
	for _, key := range []string{"postings_decoded", "coarse_candidates", "fine_alignments", "fine_dp_cells"} {
		if rep.Counters[key] == 0 {
			t.Fatalf("counter %q is zero: %+v", key, rep.Counters)
		}
	}
	// The headline trade-off must be visible in the numbers: only a
	// bounded fraction of touched sequences is ever aligned.
	if rep.Counters["fine_alignments"] > rep.Counters["coarse_sequences"] {
		t.Fatalf("aligned more sequences (%d) than the coarse phase touched (%d)",
			rep.Counters["fine_alignments"], rep.Counters["coarse_sequences"])
	}
	if rep.Stages["coarse"].TotalUS <= 0 || rep.Stages["fine"].TotalUS <= 0 {
		t.Fatalf("stage clocks empty: %+v", rep.Stages)
	}
}
