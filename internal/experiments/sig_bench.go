package experiments

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"nucleodb/internal/core"
	"nucleodb/internal/eval"
	"nucleodb/internal/index"
	"nucleodb/internal/kmer"
	"nucleodb/internal/sig"
)

// SigBenchRun is one coarse mode's postings-versus-signature
// measurement over the standard workload.
type SigBenchRun struct {
	Mode string `json:"mode"`
	// PostingsCoarseUS / SignatureCoarseUS are the workload's total
	// coarse-phase wall time under each backend (best of the repeats).
	PostingsCoarseUS  float64 `json:"postings_coarse_us"`
	SignatureCoarseUS float64 `json:"signature_coarse_us"`
	// SignatureSpeedup is postings coarse time over signature coarse
	// time: above 1 the bit-sliced scan won, below 1 the posting lists
	// won.
	SignatureSpeedup float64 `json:"signature_speedup"`
	// CoarseCandidates is the summed candidates admitted past the
	// coarse phase (identical across backends by construction).
	CoarseCandidates int `json:"coarse_candidates"`
	// SigProbes, SigCandidates and SigFalsePositives are the signature
	// backend's internal telemetry summed over the workload: rows
	// probed, approximate candidates admitted to exact verification,
	// and candidates verification rejected.
	SigProbes         int `json:"sig_probes"`
	SigCandidates     int `json:"sig_candidates"`
	SigFalsePositives int `json:"sig_false_positives"`
}

// SigBenchReport is the postings-versus-signature coarse backend
// shoot-out `cafe-bench -sig` emits (committed as BENCH_sig.json). The
// equivalence field doubles as a smoke check: ResultsIdentical must be
// true — the signature backend is contractually recall-equivalent (in
// fact result-identical) to the postings backend — and CI fails the
// run otherwise.
type SigBenchReport struct {
	Seed       int `json:"seed"`
	Bases      int `json:"bases"`
	Sequences  int `json:"sequences"`
	Queries    int `json:"queries"`
	QueryLen   int `json:"query_len"`
	K          int `json:"k"`
	Candidates int `json:"candidates"`
	GOMAXPROCS int `json:"gomaxprocs"`
	CPUs       int `json:"cpus"`
	// PostingsBytes and SignatureBytes compare the two coarse data
	// structures' sizes over the same collection; BitsPerKmer and
	// Hashes are the signatures' Bloom geometry.
	PostingsBytes  int `json:"postings_bytes"`
	SignatureBytes int `json:"signature_bytes"`
	BitsPerKmer    int `json:"bits_per_kmer"`
	Hashes         int `json:"hashes"`
	// FalsePositiveRate is the workload-wide fraction of signature
	// candidates that exact verification rejected.
	FalsePositiveRate float64       `json:"false_positive_rate"`
	Runs              []SigBenchRun `json:"runs"`
	// ResultsIdentical reports whether every signature-backend search
	// returned exactly the postings-backend results (IDs, scores,
	// spans, transcripts) in every mode.
	ResultsIdentical bool `json:"results_identical"`
}

// SigBench measures the coarse phase under the postings backend versus
// the bit-sliced signature backend for every coarse mode on the
// standard workload, and verifies the signature backend reproduces the
// postings results exactly. Each cell runs the whole workload
// repeatedly and keeps the fastest pass, damping scheduler noise.
func SigBench(cfg Config) (*SigBenchReport, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	idx, _, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
	if err != nil {
		return nil, err
	}
	var skip func(kmer.Term) bool
	if idx.NumStopped() > 0 {
		skip = idx.Stopped
	}
	sx, err := sig.Build(env.Store, idx.Coder(), skip, sig.Options{})
	if err != nil {
		return nil, err
	}
	searcher, err := core.NewSegmentedSearcher(
		[]core.Segment{{Index: idx, Sig: sx}}, env.Store, env.Scoring, nil)
	if err != nil {
		return nil, err
	}

	report := &SigBenchReport{
		Seed:             int(cfg.Seed),
		Bases:            env.TotalBases(),
		Sequences:        env.Store.Len(),
		Queries:          len(env.Queries),
		QueryLen:         cfg.QueryLen,
		K:                cfg.K,
		Candidates:       cfg.Candidates,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		CPUs:             runtime.NumCPU(),
		PostingsBytes:    idx.PostingsBytes(),
		SignatureBytes:   sx.SizeBytes(),
		BitsPerKmer:      sx.BitsPerKmer(),
		Hashes:           sx.Hashes(),
		ResultsIdentical: true,
	}

	const repeats = 3
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	var totalCands, totalFP int

	modes := []core.CoarseMode{core.CoarseDistinct, core.CoarseTotal, core.CoarseNormalised, core.CoarseDiagonal}
	for _, mode := range modes {
		opts := core.DefaultOptions()
		opts.Candidates = cfg.Candidates
		opts.Limit = cfg.TopN
		opts.CoarseMode = mode

		measure := func(backend core.CoarseBackend) (time.Duration, core.SearchStats, [][]core.Result, error) {
			wopts := opts
			wopts.CoarseBackend = backend
			var best time.Duration
			var bestStats core.SearchStats
			var results [][]core.Result
			for rep := 0; rep < repeats; rep++ {
				var coarse time.Duration
				var agg core.SearchStats
				pass := make([][]core.Result, len(env.Queries))
				for qi := range env.Queries {
					var st core.SearchStats
					rs, err := searcher.SearchWithStats(env.Queries[qi].Codes, wopts, &st)
					if err != nil {
						return 0, agg, nil, err
					}
					coarse += st.CoarseTime
					agg.Add(st)
					pass[qi] = rs
				}
				if rep == 0 || coarse < best {
					best = coarse
					bestStats = agg
				}
				results = pass
			}
			return best, bestStats, results, nil
		}

		postCoarse, postStats, postResults, err := measure(core.CoarseBackendPostings)
		if err != nil {
			return nil, err
		}
		sigCoarse, sigStats, sigResults, err := measure(core.CoarseBackendSignature)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(sigResults, postResults) {
			report.ResultsIdentical = false
		}
		totalCands += sigStats.SigCandidates
		totalFP += sigStats.SigFalsePositives
		report.Runs = append(report.Runs, SigBenchRun{
			Mode:              mode.String(),
			PostingsCoarseUS:  us(postCoarse),
			SignatureCoarseUS: us(sigCoarse),
			SignatureSpeedup:  ratioNS(postCoarse, sigCoarse),
			CoarseCandidates:  postStats.CoarseCandidates,
			SigProbes:         sigStats.SigProbes,
			SigCandidates:     sigStats.SigCandidates,
			SigFalsePositives: sigStats.SigFalsePositives,
		})
	}
	if totalCands > 0 {
		report.FalsePositiveRate = float64(totalFP) / float64(totalCands)
	}
	return report, nil
}

// E17 renders the coarse-backend shoot-out as a table: per coarse
// mode, the coarse wall time under the postings and signature
// backends, the candidate flow through the signatures, and the
// verification-rejected false positives.
func E17(w io.Writer, cfg Config) ([]SigBenchRun, error) {
	report, err := SigBench(cfg)
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "(%d seqs, %.1f Mbases; postings %.2f MB, signatures %.2f MB at %d bits/interval × %d hashes; fp rate %.4f)\n",
			report.Sequences, float64(report.Bases)/1e6,
			float64(report.PostingsBytes)/1e6, float64(report.SignatureBytes)/1e6,
			report.BitsPerKmer, report.Hashes, report.FalsePositiveRate)
		tab := eval.NewTable(
			"E17 (extension): coarse backends — postings vs bit-sliced signatures",
			"mode", "postings coarse", "signature coarse", "ratio", "sig candidates", "false positives")
		for _, r := range report.Runs {
			tab.AddRow(r.Mode,
				time.Duration(r.PostingsCoarseUS*float64(time.Microsecond)).Round(time.Microsecond),
				time.Duration(r.SignatureCoarseUS*float64(time.Microsecond)).Round(time.Microsecond),
				fmt.Sprintf("%.2f×", r.SignatureSpeedup),
				r.SigCandidates, r.SigFalsePositives)
		}
		if err := tab.Render(w); err != nil {
			return nil, err
		}
		if !report.ResultsIdentical {
			fmt.Fprintf(w, "WARNING: signature results differ from postings — equivalence contract broken\n")
		}
	}
	return report.Runs, nil
}
