// Package experiments implements the reproduction of the paper's
// evaluation: one runner per table/figure (E1–E8 in DESIGN.md), each
// generating its workload, measuring, and rendering the table the
// paper reports. The cafe-bench command and the repository benchmarks
// are thin wrappers over this package.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"nucleodb/internal/align"
	"nucleodb/internal/baseline"
	"nucleodb/internal/db"
	"nucleodb/internal/gen"
	"nucleodb/internal/index"
)

// Config scales the experiment suite. The defaults in Quick keep every
// experiment under a few seconds; Full approximates the paper's
// relative collection sizes.
type Config struct {
	// Seed makes the whole suite deterministic.
	Seed int64
	// BaseBases is the default collection size in bases for
	// single-collection experiments.
	BaseBases int
	// ScaleBases are the collection sizes for the scaling experiment.
	ScaleBases []int
	// NumQueries and QueryLen shape the workload.
	NumQueries int
	QueryLen   int
	// Divergence is the mutation rate of homologous queries.
	Divergence float64
	// K is the interval length used outside the interval-sweep
	// experiment.
	K int
	// Candidates is the coarse budget for searches.
	Candidates int
	// TopN is the answer-list depth used for recall.
	TopN int
}

// Quick returns the configuration used by tests and the default bench
// run: large enough to show every effect, small enough to run in
// seconds.
func Quick(seed int64) Config {
	return Config{
		Seed:       seed,
		BaseBases:  2_000_000,
		ScaleBases: []int{500_000, 1_000_000, 2_000_000, 4_000_000},
		NumQueries: 20,
		QueryLen:   400,
		Divergence: 0.10,
		K:          9,
		Candidates: 100,
		TopN:       20,
	}
}

// Full returns the configuration for a full experiment run (minutes).
func Full(seed int64) Config {
	return Config{
		Seed:       seed,
		BaseBases:  8_000_000,
		ScaleBases: []int{1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000},
		NumQueries: 50,
		QueryLen:   400,
		Divergence: 0.10,
		K:          9,
		Candidates: 100,
		TopN:       20,
	}
}

// Env is a generated collection with its store, workload and memoised
// gold standard, shared by the experiments that use a single
// collection.
type Env struct {
	Cfg     Config
	Col     *gen.Collection
	Store   *db.Store
	Queries []gen.Query
	Scoring align.Scoring

	gold map[int][]baseline.Result // query index → exhaustive top-N
}

// envCache shares environments across experiments in one process: the
// suite uses the same collection for E1–E5 and E7–E8, and the memoised
// exhaustive gold standard is by far the most expensive thing to
// recompute.
var envCache = struct {
	sync.Mutex
	m map[envKey]*Env
}{m: map[envKey]*Env{}}

type envKey struct {
	seed       int64
	totalBases int
	numQueries int
	queryLen   int
	divergence float64
}

// NewEnv generates a collection of about totalBases bases and a query
// workload over it. Environments are cached per configuration, so
// experiments sharing a configuration also share the collection and
// its memoised gold standard.
func NewEnv(cfg Config, totalBases int) (*Env, error) {
	key := envKey{cfg.Seed, totalBases, cfg.NumQueries, cfg.QueryLen, cfg.Divergence}
	envCache.Lock()
	defer envCache.Unlock()
	if e, ok := envCache.m[key]; ok {
		return e, nil
	}
	e, err := newEnv(cfg, totalBases)
	if err != nil {
		return nil, err
	}
	envCache.m[key] = e
	return e, nil
}

func newEnv(cfg Config, totalBases int) (*Env, error) {
	numSeqs := totalBases / 900 // gen's default mean length
	if numSeqs < 20 {
		numSeqs = 20
	}
	gcfg := gen.DefaultConfig(numSeqs, cfg.Seed)
	col, err := gen.Generate(gcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	wcfg := gen.WorkloadConfig{
		Seed:          cfg.Seed + 1,
		NumHomologous: cfg.NumQueries * 4 / 5,
		NumRandom:     cfg.NumQueries - cfg.NumQueries*4/5,
		QueryLength:   cfg.QueryLen,
		Divergence:    cfg.Divergence,
	}
	queries, err := gen.MakeWorkload(col, wcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Env{
		Cfg:     cfg,
		Col:     col,
		Store:   db.FromRecords(col.Records),
		Queries: queries,
		Scoring: align.DefaultScoring(),
		gold:    make(map[int][]baseline.Result),
	}, nil
}

// BuildIndex builds an index over the environment's store.
func (e *Env) BuildIndex(opts index.Options) (*index.Index, time.Duration, error) {
	var idx *index.Index
	var err error
	start := time.Now()
	idx, err = index.Build(e.Store, opts)
	return idx, time.Since(start), err
}

// Gold returns the exhaustive Smith–Waterman top-N for query qi,
// computing it once and memoising. The relevance threshold excludes
// noise-level scores: an answer must reach half the query's
// self-alignment score — the "high-quality local alignment" the paper's
// abstract asks for — or twice the interval length in matches,
// whichever is larger.
func (e *Env) Gold(qi int) []baseline.Result {
	if rs, ok := e.gold[qi]; ok {
		return rs
	}
	q := e.Queries[qi].Codes
	minScore := e.goldThreshold(q)
	rs := baseline.SWScan(e.Store, q, e.Scoring, minScore, e.Cfg.TopN)
	e.gold[qi] = rs
	return rs
}

func (e *Env) goldThreshold(q []byte) int {
	half := len(q) * e.Scoring.Match / 2
	floor := 4 * e.Cfg.K * e.Scoring.Match
	if half > floor {
		return half
	}
	return floor
}

// GoldIDs returns Gold(qi) as a relevance set.
func (e *Env) GoldIDs(qi int) map[int]bool {
	set := map[int]bool{}
	for _, r := range e.Gold(qi) {
		set[r.ID] = true
	}
	return set
}

// TotalBases returns the collection size in bases.
func (e *Env) TotalBases() int { return e.Store.TotalBases() }
