package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"nucleodb/internal/eval"
	"nucleodb/internal/index"
	"nucleodb/internal/kmer"
)

// E9Row is one configuration of the conjunctive-intersection ablation.
type E9Row struct {
	SkipInterval int
	IndexBytes   int
	MeanTime     time.Duration
	Intersected  int // mean result-set size, sanity only
}

// E9 is an extension experiment beyond the paper's tables: skipped
// ("self-indexing") posting lists, the companion compression/access
// technique from the same research programme (Moffat & Zobel).
// Conjunctive processing — find the sequences containing all of a
// query's R rarest intervals — leapfrogs long lists via SeekGE, so
// skip-built indexes answer it faster at a small size cost; the plain
// index falls back to full merges.
func E9(w io.Writer, cfg Config) ([]E9Row, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	// Short intervals make posting lists long: intersecting long lists
	// is where skipping pays, mirroring conjunctive text queries.
	const e9K = 6
	coder, err := kmer.NewCoder(e9K)
	if err != nil {
		return nil, err
	}

	// Each query contributes a conjunction of its rarest term (the
	// selective lead) and its three longest lists (the expensive ones
	// a merge would decode in full).
	const conjTerms = 4

	var rows []E9Row
	tab := eval.NewTable(
		fmt.Sprintf("E9 (extension): conjunctive intersection via skipped lists — %d queries × %d terms, k=%d",
			len(env.Queries), conjTerms, e9K),
		"skip interval", "index size", "mean/intersection", "mean results")
	for _, skip := range []int{0, 1, 8, 64} {
		idx, _, err := env.BuildIndex(index.Options{K: e9K, SkipInterval: skip})
		if err != nil {
			return nil, err
		}
		termSets := make([][]kmer.Term, 0, len(env.Queries))
		for _, q := range env.Queries {
			terms := conjunctionTerms(idx, coder, q.Codes, conjTerms)
			if len(terms) == conjTerms {
				termSets = append(termSets, terms)
			}
		}
		if len(termSets) == 0 {
			return nil, fmt.Errorf("experiments: no queries with %d indexed terms", conjTerms)
		}

		var total time.Duration
		results := 0
		const passes = 5
		for p := 0; p < passes; p++ {
			for _, terms := range termSets {
				var ids []int
				elapsed := eval.Timed(func() {
					var err2 error
					ids, err2 = idx.IntersectTerms(terms)
					if err2 != nil {
						err = err2
					}
				})
				if err != nil {
					return nil, err
				}
				total += elapsed
				if p == 0 {
					results += len(ids)
				}
			}
		}
		onDisk, err := idx.SerializedBytes()
		if err != nil {
			return nil, err
		}
		row := E9Row{
			SkipInterval: skip,
			IndexBytes:   onDisk,
			MeanTime:     total / time.Duration(passes*len(termSets)),
			Intersected:  results / len(termSets),
		}
		rows = append(rows, row)
		tab.AddRow(skip, mb(row.IndexBytes), row.MeanTime, row.Intersected)
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// conjunctionTerms returns the query's rarest indexed term followed by
// its n−1 most frequent, distinct, indexed terms: a selective lead
// driving seeks over long lists.
func conjunctionTerms(idx *index.Index, coder *kmer.Coder, query []byte, n int) []kmer.Term {
	seen := map[kmer.Term]bool{}
	type tdf struct {
		t  kmer.Term
		df int
	}
	var all []tdf
	coder.ExtractFunc(query, func(_ int, t kmer.Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		if df := idx.DF(t); df > 0 {
			all = append(all, tdf{t, df})
		}
	})
	if len(all) < n {
		return nil
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].df != all[j].df {
			return all[i].df < all[j].df
		}
		return all[i].t < all[j].t
	})
	terms := []kmer.Term{all[0].t}
	for i := len(all) - 1; i >= 1 && len(terms) < n; i-- {
		terms = append(terms, all[i].t)
	}
	return terms
}
