package experiments

import (
	"reflect"
	"runtime"
	"sort"
	"time"

	"nucleodb/internal/core"
	"nucleodb/internal/index"
)

// CoarseBenchRun is one worker-count's measurement over the standard
// workload: coarse-phase and whole-query wall time, and the coarse
// speedup relative to the serial run.
type CoarseBenchRun struct {
	Workers       int     `json:"workers"`
	CoarseTotalUS float64 `json:"coarse_total_us"`
	CoarseMeanUS  float64 `json:"coarse_mean_us"`
	QueryMeanUS   float64 `json:"query_mean_us"`
	// CoarseSpeedup is serial coarse time over this run's coarse time
	// (1.0 for the serial row by construction).
	CoarseSpeedup float64 `json:"coarse_speedup"`
	// Shards is the summed SearchStats.CoarseShards over the workload —
	// the effective fan-out actually used.
	Shards int64 `json:"shards"`
}

// CoarseBenchReport is the serial-versus-sharded coarse trajectory
// `cafe-bench -coarse` emits (committed as BENCH_coarse.json). The
// equivalence fields double as a smoke check: CandidatesIdentical must
// be true — the sharded walk is required to return byte-identical
// results — and CI fails the run otherwise.
type CoarseBenchReport struct {
	Seed       int `json:"seed"`
	Bases      int `json:"bases"`
	Sequences  int `json:"sequences"`
	Queries    int `json:"queries"`
	QueryLen   int `json:"query_len"`
	K          int `json:"k"`
	Candidates int `json:"candidates"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// CPUs is the physical core count of the machine that ran the
	// bench (runtime.NumCPU). A trajectory with CPUs < Workers shows
	// sharding overhead, not parallel speedup; the bench-efficiency CI
	// gate only enforces speedups where CPUs permits them.
	CPUs int              `json:"cpus"`
	Runs []CoarseBenchRun `json:"runs"`
	// CandidatesIdentical reports whether every sharded run returned
	// exactly the serial run's results (IDs, scores, spans, transcripts).
	CandidatesIdentical bool `json:"candidates_identical"`
}

// CoarseBench measures the coarse phase serial versus sharded across
// workerCounts (default 1, 2, 4, GOMAXPROCS — deduplicated) on the
// standard workload, and verifies the sharded runs reproduce the serial
// results exactly. Each worker count runs the whole workload repeatedly
// and keeps the fastest pass, damping scheduler noise.
func CoarseBench(cfg Config, workerCounts []int) (*CoarseBenchReport, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	}
	// The serial row is always measured: it is the speedup baseline and
	// the reference for the equivalence check.
	seen := map[int]bool{}
	counts := []int{1}
	seen[1] = true
	for _, w := range workerCounts {
		if w < 1 {
			w = 1
		}
		if !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	sort.Ints(counts)

	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	idx, _, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
	if err != nil {
		return nil, err
	}
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Candidates = cfg.Candidates
	opts.Limit = cfg.TopN

	const repeats = 3
	nq := len(env.Queries)
	if nq == 0 {
		nq = 1
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

	report := &CoarseBenchReport{
		Seed:                int(cfg.Seed),
		Bases:               env.TotalBases(),
		Sequences:           env.Store.Len(),
		Queries:             len(env.Queries),
		QueryLen:            cfg.QueryLen,
		K:                   cfg.K,
		Candidates:          cfg.Candidates,
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		CPUs:                runtime.NumCPU(),
		CandidatesIdentical: true,
	}

	var serialResults [][]core.Result
	var serialCoarse time.Duration
	for _, workers := range counts {
		wopts := opts
		if workers > 1 {
			wopts.CoarseWorkers = workers
		}
		var bestCoarse, bestTotal time.Duration
		var shards int64
		var results [][]core.Result
		for rep := 0; rep < repeats; rep++ {
			var coarse, total time.Duration
			shards = 0
			pass := make([][]core.Result, len(env.Queries))
			var st core.SearchStats
			for qi := range env.Queries {
				rs, err := searcher.SearchWithStats(env.Queries[qi].Codes, wopts, &st)
				if err != nil {
					return nil, err
				}
				coarse += st.CoarseTime
				total += st.TotalTime
				shards += int64(st.CoarseShards)
				pass[qi] = rs
			}
			if rep == 0 || coarse < bestCoarse {
				bestCoarse = coarse
			}
			if rep == 0 || total < bestTotal {
				bestTotal = total
			}
			results = pass
		}
		if workers == counts[0] {
			serialResults = results
			serialCoarse = bestCoarse
		} else if !reflect.DeepEqual(results, serialResults) {
			report.CandidatesIdentical = false
		}
		speedup := 1.0
		if serialCoarse > 0 || bestCoarse > 0 {
			speedup = ratioNS(serialCoarse, bestCoarse)
		}
		report.Runs = append(report.Runs, CoarseBenchRun{
			Workers:       workers,
			CoarseTotalUS: us(bestCoarse),
			CoarseMeanUS:  us(bestCoarse) / float64(nq),
			QueryMeanUS:   us(bestTotal) / float64(nq),
			CoarseSpeedup: speedup,
			Shards:        shards,
		})
	}
	return report, nil
}
