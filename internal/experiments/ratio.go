package experiments

import "time"

// ratioNS returns num/den as a dimensionless ratio, clamping a zero or
// negative denominator to 1ns. The bench reports marshal ratios to
// JSON, and encoding/json rejects ±Inf and NaN outright — so a 0ns
// baseline (entirely possible on a coarse clock over a tiny quick-mode
// workload) must never reach a bare float64 division: it would either
// kill the whole report at Marshal time or, compared against a gate
// (`NaN < gate` is false), silently pass a regression check.
func ratioNS(num, den time.Duration) float64 {
	if den <= 0 {
		den = time.Nanosecond
	}
	if num < 0 {
		num = 0
	}
	return float64(num) / float64(den)
}
