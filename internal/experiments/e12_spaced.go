package experiments

import (
	"fmt"
	"io"
	"time"

	"nucleodb/internal/core"
	"nucleodb/internal/eval"
	"nucleodb/internal/index"
)

// E12Row is one seed shape's measurement.
type E12Row struct {
	Seed         string
	IndexBytes   int
	CoarseRecall float64
	Recall       float64
	MeanTime     time.Duration
}

// E12 is an extension experiment from the citing literature
// (PatternHunter): spaced seeds versus contiguous intervals of equal
// weight, on a deliberately hard workload (short queries at high
// divergence). Spaced seeds' decisive advantage is ≥1-hit sensitivity
// — their survival events are less correlated, demonstrated directly
// by the seed-level test in internal/kmer — while this experiment
// measures the end-to-end effect on the coarse *ranking*, where
// count-distinct scoring partly offsets that advantage (contiguous
// seeds clump on lucky conserved runs). Expect comparable recall at
// comparable index size, with spaced ahead as collections grow and
// ≥1-hit sensitivity becomes the binding constraint.
func E12(w io.Writer, cfg Config) ([]E12Row, error) {
	hard := cfg
	hard.QueryLen = 150
	hard.Divergence = 0.25
	env, err := NewEnv(hard, hard.BaseBases)
	if err != nil {
		return nil, err
	}

	const weight = 11
	shapes := []struct {
		label string
		opts  index.Options
	}{
		{"contiguous k=11", index.Options{K: weight}},
		{"spaced 111010010100110111", index.Options{SpacedMask: "111010010100110111"}},
	}

	var rows []E12Row
	tab := eval.NewTable(
		fmt.Sprintf("E12 (extension): spaced vs contiguous seeds — %d-base queries at %.0f%% divergence",
			hard.QueryLen, hard.Divergence*100),
		"seed", "index size", "coarse recall", "search recall", "mean/query")
	for _, shape := range shapes {
		idx, _, err := env.BuildIndex(shape.opts)
		if err != nil {
			return nil, err
		}
		searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.Candidates = hard.Candidates
		opts.Limit = hard.TopN
		opts.MinCoarseHits = 1 // high divergence: accept sparse evidence

		var total time.Duration
		var coarseRecalls, searchRecalls []float64
		for qi := range env.Queries {
			q := env.Queries[qi].Codes
			gold := env.GoldIDs(qi)
			if len(gold) == 0 {
				continue
			}
			cands, err := searcher.Coarse(q, core.CoarseDistinct, 1)
			if err != nil {
				return nil, err
			}
			ids := make([]int, len(cands))
			for i, c := range cands {
				ids[i] = c.ID
			}
			coarseRecalls = append(coarseRecalls, eval.RecallAt(ids, gold, hard.Candidates))

			var rs []core.Result
			total += eval.Timed(func() {
				var err2 error
				rs, err2 = searcher.Search(q, opts)
				if err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, err
			}
			searchRecalls = append(searchRecalls, eval.RecallAt(coreIDs(rs), gold, hard.TopN))
		}
		onDisk, err := idx.SerializedBytes()
		if err != nil {
			return nil, err
		}
		row := E12Row{
			Seed:         shape.label,
			IndexBytes:   onDisk,
			CoarseRecall: eval.Mean(coarseRecalls),
			Recall:       eval.Mean(searchRecalls),
			MeanTime:     total / time.Duration(len(env.Queries)),
		}
		rows = append(rows, row)
		tab.AddRow(row.Seed, mb(row.IndexBytes), row.CoarseRecall, row.Recall, row.MeanTime)
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}
