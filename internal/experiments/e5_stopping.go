package experiments

import (
	"fmt"
	"io"
	"time"

	"nucleodb/internal/core"
	"nucleodb/internal/eval"
	"nucleodb/internal/index"
)

// E5Row is one stopping fraction's size/speed/accuracy measurement.
type E5Row struct {
	StopFraction float64
	TermsStopped int
	IndexBytes   int
	MeanTime     time.Duration
	Recall       float64
}

// E5 reproduces Table 4: index stopping. Discarding a small fraction of
// the most frequent intervals shrinks the index and speeds coarse
// evaluation with little accuracy cost; aggressive stopping starts to
// hurt recall.
func E5(w io.Writer, cfg Config) ([]E5Row, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	var rows []E5Row
	tab := eval.NewTable(
		fmt.Sprintf("E5 (Table 4): index stopping — %.1f Mbases, interval length %d",
			float64(env.TotalBases())/1e6, cfg.K),
		"stop %", "terms stopped", "index size", "mean/query", "recall")
	for _, f := range []float64{0, 0.001, 0.01, 0.05, 0.10} {
		idx, _, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true, StopFraction: f})
		if err != nil {
			return nil, err
		}
		searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.Candidates = cfg.Candidates
		opts.Limit = cfg.TopN

		var total time.Duration
		var recalls []float64
		for qi := range env.Queries {
			var rs []core.Result
			q := env.Queries[qi].Codes
			elapsed := eval.Timed(func() {
				var err2 error
				rs, err2 = searcher.Search(q, opts)
				if err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, err
			}
			total += elapsed
			gold := env.GoldIDs(qi)
			if len(gold) > 0 {
				recalls = append(recalls, eval.RecallAt(coreIDs(rs), gold, cfg.TopN))
			}
		}
		row := E5Row{
			StopFraction: f,
			TermsStopped: idx.NumStopped(),
			IndexBytes:   idx.SizeBytes(),
			MeanTime:     total / time.Duration(len(env.Queries)),
			Recall:       eval.Mean(recalls),
		}
		rows = append(rows, row)
		tab.AddRow(fmt.Sprintf("%.1f%%", f*100), row.TermsStopped, mb(row.IndexBytes),
			row.MeanTime, row.Recall)
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}
