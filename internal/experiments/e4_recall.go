package experiments

import (
	"fmt"
	"io"

	"nucleodb/internal/core"
	"nucleodb/internal/eval"
	"nucleodb/internal/index"
)

// E4Row is one candidate-budget point on the coarse-recall curve.
type E4Row struct {
	Candidates int
	Recall     float64 // mean over queries, vs the exhaustive gold standard
}

// E4 reproduces Figure 1: how many coarse candidates must proceed to
// the fine phase before the exhaustive answers are covered. The curve
// rising steeply and saturating far below the collection size is the
// evidence that intervals are "a suitable basis for indexing".
func E4(w io.Writer, cfg Config) ([]E4Row, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	idx, _, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
	if err != nil {
		return nil, err
	}
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		return nil, err
	}

	budgets := []int{1, 2, 5, 10, 20, 50, 100, 200}
	// One coarse ranking per query, reused across budgets.
	perQuery := make([][]int, len(env.Queries))
	for qi := range env.Queries {
		cands, err := searcher.Coarse(env.Queries[qi].Codes, core.CoarseDistinct, 1)
		if err != nil {
			return nil, err
		}
		ids := make([]int, len(cands))
		for i, c := range cands {
			ids[i] = c.ID
		}
		perQuery[qi] = ids
	}

	var rows []E4Row
	tab := eval.NewTable(
		fmt.Sprintf("E4 (Figure 1): coarse-search recall vs candidate budget — %d sequences",
			env.Store.Len()),
		"candidates", "recall")
	for _, c := range budgets {
		var recalls []float64
		for qi := range env.Queries {
			gold := env.GoldIDs(qi)
			if len(gold) == 0 {
				continue
			}
			recalls = append(recalls, eval.RecallAt(perQuery[qi], gold, c))
		}
		row := E4Row{Candidates: c, Recall: eval.Mean(recalls)}
		rows = append(rows, row)
		tab.AddRow(c, row.Recall)
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}
