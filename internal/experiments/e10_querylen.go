package experiments

import (
	"fmt"
	"io"
	"time"

	"nucleodb/internal/baseline"
	"nucleodb/internal/core"
	"nucleodb/internal/eval"
	"nucleodb/internal/gen"
	"nucleodb/internal/index"
)

// E10Row is one query length's measurement.
type E10Row struct {
	QueryLen      int
	PartitionTime time.Duration
	SWScanTime    time.Duration
	Speedup       float64
	Recall        float64
}

// E10 sweeps query length: longer queries have more intervals (coarse
// cost grows with query length) but exhaustive alignment cost grows
// proportionally too, so the speedup holds across the realistic range
// from short reads to gene-length queries.
func E10(w io.Writer, cfg Config) ([]E10Row, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	idx, _, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
	if err != nil {
		return nil, err
	}
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.Candidates = cfg.Candidates
	opts.Limit = cfg.TopN

	var rows []E10Row
	tab := eval.NewTable(
		fmt.Sprintf("E10 (extension): query length sweep — %.1f Mbases", float64(env.TotalBases())/1e6),
		"query bases", "partitioned/query", "sw-scan/query", "speedup", "recall")
	for _, qlen := range []int{100, 200, 400, 800} {
		// Derive length-qlen variants of the standard workload from
		// the same family sources.
		wcfg := gen.WorkloadConfig{
			Seed:          cfg.Seed + int64(qlen),
			NumHomologous: 5,
			QueryLength:   qlen,
			Divergence:    cfg.Divergence,
		}
		queries, err := gen.MakeWorkload(env.Col, wcfg)
		if err != nil {
			return nil, err
		}
		var partTotal, swTotal time.Duration
		var recalls []float64
		for _, q := range queries {
			gold := baseline.SWScan(env.Store, q.Codes, env.Scoring, goldThresholdFor(env, q.Codes), cfg.TopN)
			goldSet := map[int]bool{}
			for _, g := range gold {
				goldSet[g.ID] = true
			}
			var rs []core.Result
			partTotal += eval.Timed(func() {
				var err2 error
				rs, err2 = searcher.Search(q.Codes, opts)
				if err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, err
			}
			swTotal += eval.Timed(func() {
				baseline.SWScan(env.Store, q.Codes, env.Scoring, 1, cfg.TopN)
			})
			if len(goldSet) > 0 {
				recalls = append(recalls, eval.RecallAt(coreIDs(rs), goldSet, cfg.TopN))
			}
		}
		n := time.Duration(len(queries))
		row := E10Row{
			QueryLen:      qlen,
			PartitionTime: partTotal / n,
			SWScanTime:    swTotal / n,
			Recall:        eval.Mean(recalls),
		}
		row.Speedup = ratioNS(row.SWScanTime, row.PartitionTime)
		rows = append(rows, row)
		tab.AddRow(qlen, row.PartitionTime, row.SWScanTime,
			fmt.Sprintf("%.1f×", row.Speedup), row.Recall)
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// goldThresholdFor mirrors Env.goldThreshold for ad-hoc queries.
func goldThresholdFor(env *Env, q []byte) int {
	half := len(q) * env.Scoring.Match / 2
	floor := 4 * env.Cfg.K * env.Scoring.Match
	if half > floor {
		return half
	}
	return floor
}
