package experiments

import (
	"fmt"
	"io"
)

// Runner is one experiment's entry point; every runner prints its table
// to w (when non-nil) and returns through its typed row slice.
type Runner struct {
	ID    string
	Title string
	Run   func(w io.Writer, cfg Config) error
}

// Suite lists every experiment in presentation order.
func Suite() []Runner {
	return []Runner{
		{"E1", "index size vs interval length (Table 1)", wrap(E1)},
		{"E2", "postings compression schemes (Table 2)", wrap(E2)},
		{"E3", "query evaluation time vs exhaustive (Table 3)", wrap(E3)},
		{"E4", "coarse-search recall vs candidates (Figure 1)", wrap(E4)},
		{"E5", "index stopping (Table 4)", wrap(E5)},
		{"E6", "query time vs collection size (Figure 2)", wrap(E6)},
		{"E7", "sequence-store coding (Table 5)", wrap(E7)},
		{"E8", "coarse ranking ablation (Table 6)", wrap(E8)},
		{"E9", "skipped lists for conjunctive processing (extension)", wrap(E9)},
		{"E10", "query length sweep (extension)", wrap(E10)},
		{"E11", "paged vs in-memory index residency (extension)", wrap(E11)},
		{"E12", "spaced vs contiguous seeds at high divergence (extension)", wrap(E12)},
		{"E17", "coarse backends: postings vs bit-sliced signatures (extension)", wrap(E17)},
	}
}

func wrap[T any](fn func(io.Writer, Config) ([]T, error)) func(io.Writer, Config) error {
	return func(w io.Writer, cfg Config) error {
		_, err := fn(w, cfg)
		return err
	}
}

// RunAll executes every experiment against w, separating tables with a
// blank line. It stops at the first failure.
func RunAll(w io.Writer, cfg Config) error {
	for i, r := range Suite() {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := r.Run(w, cfg); err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
	}
	return nil
}
