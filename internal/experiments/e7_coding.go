package experiments

import (
	"fmt"
	"io"
	"time"

	"nucleodb/internal/dna"
	"nucleodb/internal/eval"
)

// E7Row is one sequence-storage scheme's measurement.
type E7Row struct {
	Scheme      string
	Bytes       int
	BitsPerBase float64
	Lossless    bool
	DecodeTime  time.Duration
	DecodeMBps  float64 // megabases decoded per second
}

// E7 reproduces Table 5, the companion direct-coding claim: the
// sequence store is compact, lossless (wildcards survive), and much
// faster to decode than parsing text, and nearly as fast as raw 2-bit
// unpacking (which cannot represent wildcards at all).
func E7(w io.Writer, cfg Config) ([]E7Row, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	totalBases := env.TotalBases()

	// Materialise the three representations.
	ascii := make([][]byte, env.Store.Len())
	packed := make([][]byte, env.Store.Len())
	direct := make([][]byte, env.Store.Len())
	var dc dna.DirectCoder
	asciiBytes, packedBytes, directBytes := 0, 0, 0
	for id := 0; id < env.Store.Len(); id++ {
		seq := env.Store.Sequence(id)
		ascii[id] = dna.Decode(seq)
		asciiBytes += len(ascii[id])
		p, _ := dna.Pack2Lossy(seq)
		packed[id] = p
		packedBytes += len(p)
		direct[id] = dc.Encode(nil, seq)
		directBytes += len(direct[id])
	}

	const passes = 3
	timeIt := func(fn func() error) (time.Duration, error) {
		var err error
		start := time.Now()
		for p := 0; p < passes; p++ {
			if err = fn(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / passes, nil
	}

	scratch := make([]byte, 1<<16)
	asciiTime, err := timeIt(func() error {
		for _, a := range ascii {
			if cap(scratch) < len(a) {
				scratch = make([]byte, len(a))
			}
			out, err := dna.Encode(a)
			if err != nil {
				return err
			}
			_ = out
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	packTime, err := timeIt(func() error {
		for id, p := range packed {
			n := env.Store.SeqLen(id)
			if cap(scratch) < n {
				scratch = make([]byte, n)
			}
			dna.Unpack2Into(p, scratch[:n])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	directTime, err := timeIt(func() error {
		for _, d := range direct {
			if _, _, err := dc.Decode(d); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	mk := func(name string, bytes int, lossless bool, t time.Duration) E7Row {
		r := E7Row{
			Scheme:      name,
			Bytes:       bytes,
			BitsPerBase: 8 * float64(bytes) / float64(totalBases),
			Lossless:    lossless,
			DecodeTime:  t,
		}
		if secs := t.Seconds(); secs > 0 {
			r.DecodeMBps = float64(totalBases) / secs / 1e6
		}
		return r
	}
	rows := []E7Row{
		mk("ascii (text parse)", asciiBytes, true, asciiTime),
		mk("2-bit packed (lossy)", packedBytes, false, packTime),
		mk("direct coding", directBytes, true, directTime),
	}

	tab := eval.NewTable(
		fmt.Sprintf("E7 (Table 5): sequence-store coding — %.1f Mbases, %d wildcards",
			float64(totalBases)/1e6, countWildcards(env)),
		"scheme", "size", "bits/base", "lossless", "decode", "Mbases/s")
	for _, r := range rows {
		tab.AddRow(r.Scheme, mb(r.Bytes), fmt.Sprintf("%.3f", r.BitsPerBase),
			r.Lossless, r.DecodeTime, fmt.Sprintf("%.0f", r.DecodeMBps))
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func countWildcards(env *Env) int {
	n := 0
	for id := 0; id < env.Store.Len(); id++ {
		n += dna.CountWildcards(env.Store.Sequence(id))
	}
	return n
}
