package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"nucleodb/internal/compress"
	"nucleodb/internal/eval"
	"nucleodb/internal/index"
	"nucleodb/internal/kmer"
)

// E2Row is one coding scheme's size/speed measurement over the real
// posting-gap streams of an index.
type E2Row struct {
	Scheme       compress.Scheme
	Bytes        int
	BitsPerGap   float64
	DecodeTime   time.Duration
	DecodeMIntPS float64 // millions of integers decoded per second
}

// E2 reproduces Table 2: the effect of the integer-coding scheme on
// index size and decode speed. The gap streams are the actual
// sequence-identifier gaps of an index built over the test collection,
// so the distributions match what the real index compresses; as in the
// real index, the Golomb/Rice parameters come from the lexicon's
// document frequency rather than a stored header.
func E2(w io.Writer, cfg Config) ([]E2Row, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	idx, _, err := env.BuildIndex(index.Options{K: cfg.K})
	if err != nil {
		return nil, err
	}
	numSeqs := uint64(env.Store.Len())

	// Extract every list's id-gap stream; boundaries are preserved so
	// parameterised schemes stay per-list as in the real index.
	var lists [][]uint64
	total := 0
	var decodeErr error
	idx.Terms(func(t kmer.Term, df int) {
		if decodeErr != nil {
			return
		}
		entries, err := idx.Postings(t)
		if err != nil {
			decodeErr = err
			return
		}
		gaps := make([]uint64, len(entries))
		prev := int64(-1)
		for i, e := range entries {
			gaps[i] = uint64(int64(e.ID) - prev)
			prev = int64(e.ID)
		}
		lists = append(lists, gaps)
		total += len(gaps)
	})
	if decodeErr != nil {
		return nil, decodeErr
	}

	var rows []E2Row
	tab := eval.NewTable(
		fmt.Sprintf("E2 (Table 2): postings compression schemes — %d lists, %d gaps", len(lists), total),
		"scheme", "size", "bits/gap", "decode", "Mints/s")
	for _, scheme := range compress.Schemes {
		encoded := make([][]byte, len(lists))
		totalBits := 0
		for i, gaps := range lists {
			buf, bits, err := encodeListGaps(scheme, gaps, numSeqs)
			if err != nil {
				return nil, err
			}
			encoded[i] = buf
			totalBits += bits
		}
		// Size is exact coded bits: per-list byte padding is a storage
		// detail of the on-disk index, not a property of the code.
		bytes := (totalBits + 7) / 8
		// Decode timing over several passes for stability.
		const passes = 3
		scratch := make([]uint64, maxLen(lists))
		start := time.Now()
		for p := 0; p < passes; p++ {
			for i, buf := range encoded {
				if err := decodeListGaps(scheme, buf, scratch[:len(lists[i])], numSeqs); err != nil {
					return nil, err
				}
			}
		}
		decode := time.Since(start) / passes
		row := E2Row{
			Scheme:     scheme,
			Bytes:      bytes,
			BitsPerGap: 8 * float64(bytes) / float64(total),
			DecodeTime: decode,
		}
		if secs := decode.Seconds(); secs > 0 {
			row.DecodeMIntPS = float64(total) / secs / 1e6
		}
		rows = append(rows, row)
		tab.AddRow(scheme.String(), mb(bytes),
			fmt.Sprintf("%.2f", row.BitsPerGap), decode,
			fmt.Sprintf("%.1f", row.DecodeMIntPS))
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// encodeListGaps codes one list's gaps the way the index would: the
// Golomb/Rice parameter is derived from (universe, document frequency),
// which the lexicon stores, so no header is written. It returns the
// byte buffer for decode timing and the exact bit length for size
// accounting.
func encodeListGaps(scheme compress.Scheme, gaps []uint64, numSeqs uint64) ([]byte, int, error) {
	switch scheme {
	case compress.SchemeNone:
		out := make([]byte, 8*len(gaps))
		for i, v := range gaps {
			binary.LittleEndian.PutUint64(out[8*i:], v)
		}
		return out, 64 * len(gaps), nil
	case compress.SchemeVByte:
		var out []byte
		for _, v := range gaps {
			out = compress.PutVByte(out, v)
		}
		return out, 8 * len(out), nil
	}
	w := compress.NewBitWriter(len(gaps))
	switch scheme {
	case compress.SchemeGamma:
		for _, v := range gaps {
			compress.PutGamma(w, v)
		}
	case compress.SchemeDelta:
		for _, v := range gaps {
			compress.PutDelta(w, v)
		}
	case compress.SchemeGolomb:
		b := compress.GolombParameter(numSeqs, uint64(len(gaps)))
		for _, v := range gaps {
			compress.PutGolomb(w, v, b)
		}
	case compress.SchemeRice:
		k := compress.RiceParameter(numSeqs, uint64(len(gaps)))
		for _, v := range gaps {
			compress.PutRice(w, v, k)
		}
	default:
		return nil, 0, fmt.Errorf("experiments: unknown scheme %v", scheme)
	}
	return w.Bytes(), w.BitLen(), nil
}

func decodeListGaps(scheme compress.Scheme, buf []byte, dst []uint64, numSeqs uint64) error {
	switch scheme {
	case compress.SchemeNone:
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
		return nil
	case compress.SchemeVByte:
		pos := 0
		for i := range dst {
			v, n, err := compress.GetVByte(buf[pos:])
			if err != nil {
				return err
			}
			dst[i] = v
			pos += n
		}
		return nil
	}
	r := compress.NewBitReader(buf)
	var err error
	switch scheme {
	case compress.SchemeGamma:
		for i := range dst {
			if dst[i], err = compress.GetGamma(r); err != nil {
				return err
			}
		}
	case compress.SchemeDelta:
		for i := range dst {
			if dst[i], err = compress.GetDelta(r); err != nil {
				return err
			}
		}
	case compress.SchemeGolomb:
		b := compress.GolombParameter(numSeqs, uint64(len(dst)))
		for i := range dst {
			if dst[i], err = compress.GetGolomb(r, b); err != nil {
				return err
			}
		}
	case compress.SchemeRice:
		k := compress.RiceParameter(numSeqs, uint64(len(dst)))
		for i := range dst {
			if dst[i], err = compress.GetRice(r, k); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("experiments: unknown scheme %v", scheme)
	}
	return nil
}

func maxLen(lists [][]uint64) int {
	m := 0
	for _, l := range lists {
		if len(l) > m {
			m = len(l)
		}
	}
	return m
}
