package experiments

import (
	"fmt"
	"io"
	"time"

	"nucleodb/internal/baseline"
	"nucleodb/internal/core"
	"nucleodb/internal/eval"
	"nucleodb/internal/index"
)

// E3Row is one search method's speed/accuracy measurement.
type E3Row struct {
	Method    string
	MeanTime  time.Duration
	SpeedupSW float64 // exhaustive SW time / this method's time
	Recall    float64 // vs the exhaustive SW gold standard
}

// E3 reproduces Table 3, the headline result: query evaluation time of
// partitioned search against the exhaustive baselines, with retrieval
// accuracy relative to the exhaustive Smith–Waterman gold standard.
func E3(w io.Writer, cfg Config) ([]E3Row, error) {
	env, err := NewEnv(cfg, cfg.BaseBases)
	if err != nil {
		return nil, err
	}
	idx, _, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
	if err != nil {
		return nil, err
	}
	searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
	if err != nil {
		return nil, err
	}

	copts := core.DefaultOptions()
	copts.Candidates = cfg.Candidates
	copts.Limit = cfg.TopN
	exact := copts
	exact.FineMode = core.FineFull
	prescreened := copts
	prescreened.Prescreen = 3 * cfg.K * env.Scoring.Match

	type method struct {
		name string
		run  func(q []byte) ([]int, error)
	}
	methods := []method{
		{"sw-scan (exhaustive)", func(q []byte) ([]int, error) {
			return resultIDs(baseline.SWScan(env.Store, q, env.Scoring, 1, cfg.TopN)), nil
		}},
		{"fasta-scan", func(q []byte) ([]int, error) {
			return resultIDs(baseline.FastaScan(env.Store, q, env.Scoring, baseline.DefaultFastaOptions(), 1, cfg.TopN)), nil
		}},
		{"blast-scan", func(q []byte) ([]int, error) {
			return resultIDs(baseline.BlastScan(env.Store, q, env.Scoring, baseline.DefaultBlastOptions(), 1, cfg.TopN)), nil
		}},
		{"partitioned (banded)", func(q []byte) ([]int, error) {
			rs, err := searcher.Search(q, copts)
			return coreIDs(rs), err
		}},
		{"partitioned (prescreen)", func(q []byte) ([]int, error) {
			rs, err := searcher.Search(q, prescreened)
			return coreIDs(rs), err
		}},
		{"partitioned (exact fine)", func(q []byte) ([]int, error) {
			rs, err := searcher.Search(q, exact)
			return coreIDs(rs), err
		}},
	}

	var rows []E3Row
	var swTime time.Duration
	tab := eval.NewTable(
		fmt.Sprintf("E3 (Table 3): query evaluation — %.1f Mbases, %d queries, top %d",
			float64(env.TotalBases())/1e6, len(env.Queries), cfg.TopN),
		"method", "mean/query", "speedup vs SW", "recall")
	for _, m := range methods {
		var total time.Duration
		var recalls []float64
		for qi := range env.Queries {
			q := env.Queries[qi].Codes
			var ids []int
			elapsed := eval.Timed(func() {
				var err2 error
				ids, err2 = m.run(q)
				if err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", m.name, err)
			}
			total += elapsed
			gold := env.GoldIDs(qi)
			if len(gold) > 0 {
				recalls = append(recalls, eval.RecallAt(ids, gold, cfg.TopN))
			}
		}
		mean := total / time.Duration(len(env.Queries))
		row := E3Row{Method: m.name, MeanTime: mean, Recall: eval.Mean(recalls)}
		if m.name == methods[0].name {
			swTime = mean
			row.SpeedupSW = 1
		} else {
			row.SpeedupSW = ratioNS(swTime, mean)
		}
		rows = append(rows, row)
		tab.AddRow(m.name, mean, fmt.Sprintf("%.1f×", row.SpeedupSW), row.Recall)
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func resultIDs(rs []baseline.Result) []int {
	ids := make([]int, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}

func coreIDs(rs []core.Result) []int {
	ids := make([]int, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}
