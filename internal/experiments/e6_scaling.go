package experiments

import (
	"fmt"
	"io"
	"time"

	"nucleodb/internal/baseline"
	"nucleodb/internal/core"
	"nucleodb/internal/eval"
	"nucleodb/internal/index"
)

// E6Row is one collection size's timing point.
type E6Row struct {
	Bases          int
	SWScanTime     time.Duration
	PartitionTime  time.Duration
	Speedup        float64
	IndexBuildTime time.Duration
}

// E6 reproduces Figure 2: how query cost grows with collection size.
// The exhaustive scan grows linearly; the partitioned evaluation's fine
// phase is bounded by the candidate budget, so the gap widens — the
// paper's argument that exhaustive search "will become prohibitively
// expensive" as databases grow.
func E6(w io.Writer, cfg Config) ([]E6Row, error) {
	var rows []E6Row
	tab := eval.NewTable(
		"E6 (Figure 2): query time vs collection size",
		"Mbases", "sw-scan/query", "partitioned/query", "speedup", "index build")
	for _, bases := range cfg.ScaleBases {
		sized := cfg
		sized.Seed = cfg.Seed + int64(bases) // fresh data per size
		env, err := NewEnv(sized, bases)
		if err != nil {
			return nil, err
		}
		idx, buildTime, err := env.BuildIndex(index.Options{K: cfg.K, StoreOffsets: true})
		if err != nil {
			return nil, err
		}
		searcher, err := core.NewSearcher(idx, env.Store, env.Scoring)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.Candidates = cfg.Candidates
		opts.Limit = cfg.TopN

		// A few queries suffice per point; the scan dominates runtime.
		n := len(env.Queries)
		if n > 5 {
			n = 5
		}
		var swTotal, partTotal time.Duration
		for qi := 0; qi < n; qi++ {
			q := env.Queries[qi].Codes
			swTotal += eval.Timed(func() {
				baseline.SWScan(env.Store, q, env.Scoring, 1, cfg.TopN)
			})
			partTotal += eval.Timed(func() {
				if _, err2 := searcher.Search(q, opts); err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, err
			}
		}
		row := E6Row{
			Bases:          env.TotalBases(),
			SWScanTime:     swTotal / time.Duration(n),
			PartitionTime:  partTotal / time.Duration(n),
			IndexBuildTime: buildTime,
		}
		row.Speedup = ratioNS(row.SWScanTime, row.PartitionTime)
		rows = append(rows, row)
		tab.AddRow(fmt.Sprintf("%.1f", float64(row.Bases)/1e6),
			row.SWScanTime, row.PartitionTime,
			fmt.Sprintf("%.1f×", row.Speedup), row.IndexBuildTime)
	}
	if w != nil {
		if err := tab.Render(w); err != nil {
			return nil, err
		}
	}
	return rows, nil
}
