package experiments

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestRatioNS(t *testing.T) {
	cases := []struct {
		name     string
		num, den time.Duration
		want     float64
	}{
		{"normal", 10 * time.Millisecond, 2 * time.Millisecond, 5},
		{"zero denominator", 5 * time.Nanosecond, 0, 5},
		{"negative denominator", 5 * time.Nanosecond, -3, 5},
		{"both zero", 0, 0, 0},
		{"negative numerator", -7, time.Millisecond, 0},
	}
	for _, c := range cases {
		got := ratioNS(c.num, c.den)
		if got != c.want {
			t.Errorf("%s: ratioNS(%v, %v) = %v, want %v", c.name, c.num, c.den, got, c.want)
		}
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("%s: ratioNS(%v, %v) = %v is not finite", c.name, c.num, c.den, got)
		}
	}
}

// TestZeroDurationReportsMarshal reproduces the original failure mode:
// a 0ns baseline made a speedup +Inf (or NaN for 0ns/0ns), which
// encoding/json refuses to marshal — so `cafe-bench -coarse > X.json`
// died with "unsupported value: +Inf" — and which silently passed
// `speedup < gate` CI checks because every comparison with NaN is
// false. Speedup fields built from zero-duration measurements must
// stay finite all the way through the JSON path.
func TestZeroDurationReportsMarshal(t *testing.T) {
	checkFinite := func(name string, v float64) {
		t.Helper()
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("%s = %v is not finite", name, v)
		}
	}

	// Each report type with its speedup fields fed the degenerate
	// inputs: 0ns baseline, 0ns measurement, and 0ns/0ns.
	coarse := &CoarseBenchReport{Runs: []CoarseBenchRun{
		{Workers: 2, CoarseSpeedup: ratioNS(0, 5)},
		{Workers: 4, CoarseSpeedup: ratioNS(5, 0)},
	}}
	fine := &FineBenchReport{Runs: []FineBenchRun{
		{Kernel: "bitvector", KernelSpeedup: ratioNS(0, 5), ParallelSpeedup: ratioNS(5, 0)},
	}}
	sigRep := &SigBenchReport{Runs: []SigBenchRun{
		{Mode: "distinct", SignatureSpeedup: ratioNS(0, 0)},
	}}

	for _, r := range coarse.Runs {
		checkFinite("CoarseSpeedup", r.CoarseSpeedup)
	}
	for _, r := range fine.Runs {
		checkFinite("KernelSpeedup", r.KernelSpeedup)
		checkFinite("ParallelSpeedup", r.ParallelSpeedup)
	}
	for _, r := range sigRep.Runs {
		checkFinite("SignatureSpeedup", r.SignatureSpeedup)
	}

	for name, v := range map[string]any{
		"coarse": coarse, "fine": fine, "sig": sigRep,
	} {
		if _, err := json.Marshal(v); err != nil {
			t.Errorf("json.Marshal(%s report with 0ns baselines): %v", name, err)
		}
	}

	// The table experiments share ratioNS for their row speedups
	// (E3/E6/E10); the same degenerate inputs must stay finite there.
	for _, v := range []float64{
		ratioNS(0, 0),                // both sides instantaneous
		ratioNS(0, time.Millisecond), // baseline measured 0
		ratioNS(time.Millisecond, 0), // subject measured 0
	} {
		checkFinite("row speedup", v)
	}
}
