// Package db implements the sequence store: the record component of the
// database that holds every sequence and its description, compressed
// with direct coding so that any record can be decoded independently of
// the order in which records were stored — the property the fine search
// phase relies on when it retrieves only the candidate sequences.
package db

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nucleodb/internal/dna"
)

// Store is an append-only collection of sequence records. Records are
// identified by dense integer ids in insertion order. The zero value is
// an empty store ready to use.
type Store struct {
	descs   []string
	offsets []int // byte offset of each record's direct coding in blob
	lengths []int // sequence length in bases
	blob    []byte
	total   int // total bases
	coder   dna.DirectCoder
}

// Add appends a record and returns its id.
func (s *Store) Add(desc string, codes []byte) int {
	id := len(s.descs)
	s.descs = append(s.descs, desc)
	s.offsets = append(s.offsets, len(s.blob))
	s.lengths = append(s.lengths, len(codes))
	s.blob = s.coder.Encode(s.blob, codes)
	s.total += len(codes)
	return id
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.descs) }

// TotalBases returns the total number of bases stored.
func (s *Store) TotalBases() int { return s.total }

// EncodedBytes returns the size of the compressed sequence data,
// excluding the description table.
func (s *Store) EncodedBytes() int { return len(s.blob) }

// Desc returns the description of record id.
func (s *Store) Desc(id int) string {
	s.check(id)
	return s.descs[id]
}

// SeqLen returns the sequence length of record id without decoding it.
func (s *Store) SeqLen(id int) int {
	s.check(id)
	return s.lengths[id]
}

// Sequence decodes and returns the sequence of record id in code form.
func (s *Store) Sequence(id int) []byte {
	s.check(id)
	codes, _, err := s.coder.Decode(s.blob[s.offsets[id]:])
	if err != nil {
		// The blob is written by this package; a decode failure means
		// memory corruption, not bad input.
		panic(fmt.Sprintf("db: corrupt record %d: %v", id, err))
	}
	return codes
}

func (s *Store) check(id int) {
	if id < 0 || id >= len(s.descs) {
		panic(fmt.Sprintf("db: record id %d out of range [0,%d)", id, len(s.descs)))
	}
}

// storeMagic identifies the on-disk store format, version 1.
const storeMagic = "NDBstor1"

// Save writes the store to w in its on-disk format.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(storeMagic); err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	if err := writeUvarint(uint64(len(s.descs))); err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	for i, d := range s.descs {
		if err := writeUvarint(uint64(len(d))); err != nil {
			return fmt.Errorf("db: save: %w", err)
		}
		if _, err := bw.WriteString(d); err != nil {
			return fmt.Errorf("db: save: %w", err)
		}
		if err := writeUvarint(uint64(s.offsets[i])); err != nil {
			return fmt.Errorf("db: save: %w", err)
		}
		if err := writeUvarint(uint64(s.lengths[i])); err != nil {
			return fmt.Errorf("db: save: %w", err)
		}
	}
	if err := writeUvarint(uint64(len(s.blob))); err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	if _, err := bw.Write(s.blob); err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	return bw.Flush()
}

// Load reads a store previously written by Save.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("db: load: bad magic %q", magic)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("db: load: record count: %w", err)
	}
	const maxRecords = 1 << 40
	if n > maxRecords {
		return nil, fmt.Errorf("db: load: implausible record count %d", n)
	}
	s := &Store{
		descs:   make([]string, 0, n),
		offsets: make([]int, 0, n),
		lengths: make([]int, 0, n),
	}
	for i := uint64(0); i < n; i++ {
		dl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("db: load: record %d desc length: %w", i, err)
		}
		desc := make([]byte, dl)
		if _, err := io.ReadFull(br, desc); err != nil {
			return nil, fmt.Errorf("db: load: record %d desc: %w", i, err)
		}
		off, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("db: load: record %d offset: %w", i, err)
		}
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("db: load: record %d length: %w", i, err)
		}
		s.descs = append(s.descs, string(desc))
		s.offsets = append(s.offsets, int(off))
		s.lengths = append(s.lengths, int(length))
		s.total += int(length)
	}
	bl, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("db: load: blob length: %w", err)
	}
	s.blob = make([]byte, bl)
	if _, err := io.ReadFull(br, s.blob); err != nil {
		return nil, fmt.Errorf("db: load: blob: %w", err)
	}
	// Validate the record table against the blob before trusting it.
	for i := range s.offsets {
		if s.offsets[i] > len(s.blob) {
			return nil, fmt.Errorf("db: load: record %d offset %d beyond blob size %d", i, s.offsets[i], len(s.blob))
		}
		if i > 0 && s.offsets[i] < s.offsets[i-1] {
			return nil, fmt.Errorf("db: load: record offsets not monotonic at %d", i)
		}
	}
	return s, nil
}

// FromRecords builds a store from FASTA records.
func FromRecords(recs []dna.Record) *Store {
	var s Store
	for _, r := range recs {
		s.Add(r.Desc, r.Codes)
	}
	return &s
}
