// Package db implements the sequence store: the record component of the
// database that holds every sequence and its description, compressed
// with direct coding so that any record can be decoded independently of
// the order in which records were stored — the property the fine search
// phase relies on when it retrieves only the candidate sequences.
package db

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nucleodb/internal/dna"
)

// Store is an append-only collection of sequence records. Records are
// identified by dense integer ids in insertion order. The zero value is
// an empty store ready to use.
type Store struct {
	descs   []string
	offsets []int // byte offset of each record's direct coding in blob
	lengths []int // sequence length in bases
	blob    []byte
	total   int // total bases
	coder   dna.DirectCoder
}

// Add appends a record and returns its id.
func (s *Store) Add(desc string, codes []byte) int {
	id := len(s.descs)
	s.descs = append(s.descs, desc)
	s.offsets = append(s.offsets, len(s.blob))
	s.lengths = append(s.lengths, len(codes))
	s.blob = s.coder.Encode(s.blob, codes)
	s.total += len(codes)
	return id
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.descs) }

// TotalBases returns the total number of bases stored.
func (s *Store) TotalBases() int { return s.total }

// EncodedBytes returns the size of the compressed sequence data,
// excluding the description table.
func (s *Store) EncodedBytes() int { return len(s.blob) }

// Desc returns the description of record id.
func (s *Store) Desc(id int) string {
	s.check(id)
	return s.descs[id]
}

// SeqLen returns the sequence length of record id without decoding it.
func (s *Store) SeqLen(id int) int {
	s.check(id)
	return s.lengths[id]
}

// Sequence decodes and returns the sequence of record id in code form.
func (s *Store) Sequence(id int) []byte {
	s.check(id)
	codes, _, err := s.coder.Decode(s.blob[s.offsets[id]:])
	if err != nil {
		// The blob is written by this package; a decode failure means
		// memory corruption, not bad input.
		panic(fmt.Sprintf("db: corrupt record %d: %v", id, err))
	}
	return codes
}

func (s *Store) check(id int) {
	if id < 0 || id >= len(s.descs) {
		panic(fmt.Sprintf("db: record id %d out of range [0,%d)", id, len(s.descs)))
	}
}

// storeMagic identifies the on-disk store format, version 1.
const storeMagic = "NDBstor1"

// Save writes the store to w in its on-disk format.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(storeMagic); err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	if err := writeUvarint(uint64(len(s.descs))); err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	for i, d := range s.descs {
		if err := writeUvarint(uint64(len(d))); err != nil {
			return fmt.Errorf("db: save: %w", err)
		}
		if _, err := bw.WriteString(d); err != nil {
			return fmt.Errorf("db: save: %w", err)
		}
		if err := writeUvarint(uint64(s.offsets[i])); err != nil {
			return fmt.Errorf("db: save: %w", err)
		}
		if err := writeUvarint(uint64(s.lengths[i])); err != nil {
			return fmt.Errorf("db: save: %w", err)
		}
	}
	if err := writeUvarint(uint64(len(s.blob))); err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	if _, err := bw.Write(s.blob); err != nil {
		return fmt.Errorf("db: save: %w", err)
	}
	return bw.Flush()
}

// Load reads a store previously written by Save.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("db: load: %w", err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("db: load: bad magic %q", magic)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("db: load: record count: %w", err)
	}
	const maxRecords = 1 << 40
	if n > maxRecords {
		return nil, fmt.Errorf("db: load: implausible record count %d", n)
	}
	// Counts from the header size allocations, so capacity hints are
	// capped and growth is incremental: a lying count fails with a read
	// error after a bounded allocation, never an OOM.
	const capHint = 1 << 20
	s := &Store{
		descs:   make([]string, 0, min(n, capHint)),
		offsets: make([]int, 0, min(n, capHint)),
		lengths: make([]int, 0, min(n, capHint)),
	}
	for i := uint64(0); i < n; i++ {
		dl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("db: load: record %d desc length: %w", i, err)
		}
		if dl > 1<<20 {
			return nil, fmt.Errorf("db: load: record %d implausible desc length %d", i, dl)
		}
		desc := make([]byte, dl)
		if _, err := io.ReadFull(br, desc); err != nil {
			return nil, fmt.Errorf("db: load: record %d desc: %w", i, err)
		}
		off, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("db: load: record %d offset: %w", i, err)
		}
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("db: load: record %d length: %w", i, err)
		}
		if off > 1<<62 || length > 1<<31-1 {
			return nil, fmt.Errorf("db: load: record %d implausible offset %d or length %d", i, off, length)
		}
		s.descs = append(s.descs, string(desc))
		s.offsets = append(s.offsets, int(off))
		s.lengths = append(s.lengths, int(length))
		s.total += int(length)
	}
	bl, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("db: load: blob length: %w", err)
	}
	s.blob, err = readCapped(br, bl)
	if err != nil {
		return nil, fmt.Errorf("db: load: blob: %w", err)
	}
	// Validate the record table against the blob before trusting it:
	// every record must decode, cover exactly its recorded length, and
	// the records must tile the blob contiguously. Sequence relies on
	// this — it treats a decode failure after Load as memory corruption
	// and panics, so nothing a corrupt file can produce may reach it.
	for i := range s.offsets {
		if i > 0 && s.offsets[i] < s.offsets[i-1] {
			return nil, fmt.Errorf("db: load: record offsets not monotonic at %d", i)
		}
		if i == 0 && s.offsets[i] != 0 {
			return nil, fmt.Errorf("db: load: first record at offset %d, want 0", s.offsets[i])
		}
		if s.offsets[i] > len(s.blob) {
			return nil, fmt.Errorf("db: load: record %d offset %d beyond blob size %d", i, s.offsets[i], len(s.blob))
		}
		codes, consumed, err := s.coder.Decode(s.blob[s.offsets[i]:])
		if err != nil {
			return nil, fmt.Errorf("db: load: record %d: %w", i, err)
		}
		if len(codes) != s.lengths[i] {
			return nil, fmt.Errorf("db: load: record %d decodes to %d bases, table says %d", i, len(codes), s.lengths[i])
		}
		end := s.offsets[i] + consumed
		if next := len(s.blob); i+1 < len(s.offsets) {
			next = s.offsets[i+1]
			if end != next {
				return nil, fmt.Errorf("db: load: record %d ends at %d, next starts at %d", i, end, next)
			}
		} else if end != next {
			return nil, fmt.Errorf("db: load: last record ends at %d, blob is %d bytes", end, next)
		}
	}
	if len(s.offsets) == 0 && len(s.blob) != 0 {
		return nil, fmt.Errorf("db: load: %d blob bytes with no records", len(s.blob))
	}
	return s, nil
}

// readCapped reads exactly n bytes from r with incremental growth, so a
// corrupt length claim cannot force a giant up-front allocation.
func readCapped(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		take := min(n-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, take)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// FromRecords builds a store from FASTA records.
func FromRecords(recs []dna.Record) *Store {
	var s Store
	for _, r := range recs {
		s.Add(r.Desc, r.Codes)
	}
	return &s
}
