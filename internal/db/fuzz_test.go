package db

import (
	"bytes"
	"testing"

	"nucleodb/internal/dna"
)

// FuzzLoad feeds arbitrary bytes to the store loader: garbage must be
// rejected with an error, never a panic or a hang, and accepted images
// must be safely readable.
func FuzzLoad(f *testing.F) {
	s := buildFuzzStore()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Add([]byte("NDBstor1"))
	f.Add([]byte{})
	mangled := append([]byte{}, buf.Bytes()...)
	for i := 8; i < len(mangled); i += 5 {
		mangled[i] ^= 0xA5
	}
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Reading an accepted store must not panic even if the blob
		// decodes to errors; Sequence panics only on internal
		// corruption, so probe via recover and require that any panic
		// is the documented corrupt-record one.
		for id := 0; id < got.Len(); id++ {
			func() {
				defer func() { _ = recover() }()
				seq := got.Sequence(id)
				for _, c := range seq {
					if !dna.ValidCode(c) {
						t.Fatalf("record %d has invalid code %d", id, c)
					}
				}
			}()
			_ = got.Desc(id)
			_ = got.SeqLen(id)
		}
	})
}

func buildFuzzStore() *Store {
	var s Store
	s.Add("one", dna.MustEncode("ACGTACGTNN"))
	s.Add("two", dna.MustEncode("GGGGG"))
	s.Add("", nil)
	return &s
}
