package db

import (
	"bytes"
	"testing"

	"nucleodb/internal/dna"
)

// FuzzLoad feeds arbitrary bytes to the store loader: garbage must be
// rejected with an error, never a panic or a hang, and accepted images
// must be safely readable.
func FuzzLoad(f *testing.F) {
	s := buildFuzzStore()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Add([]byte("NDBstor1"))
	f.Add([]byte{})
	mangled := append([]byte{}, buf.Bytes()...)
	for i := 8; i < len(mangled); i += 5 {
		mangled[i] ^= 0xA5
	}
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Load validates every record against the blob, so reading an
		// accepted store must never panic: Sequence's corrupt-record
		// panic is reserved for in-memory corruption, which a freshly
		// loaded store cannot have.
		for id := 0; id < got.Len(); id++ {
			seq := got.Sequence(id)
			if len(seq) != got.SeqLen(id) {
				t.Fatalf("record %d: Sequence len %d, SeqLen %d", id, len(seq), got.SeqLen(id))
			}
			for _, c := range seq {
				if !dna.ValidCode(c) {
					t.Fatalf("record %d has invalid code %d", id, c)
				}
			}
			_ = got.Desc(id)
		}
	})
}

func buildFuzzStore() *Store {
	var s Store
	s.Add("one", dna.MustEncode("ACGTACGTNN"))
	s.Add("two", dna.MustEncode("GGGGG"))
	s.Add("", nil)
	return &s
}
