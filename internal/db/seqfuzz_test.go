package db

import (
	"bytes"
	"testing"

	"nucleodb/internal/dna"
)

// FuzzSequenceDecode exercises the record decode path end to end:
// arbitrary sequences round-trip exactly through Add → Save → Load →
// Sequence, and a bit-flipped image is either rejected by Load or
// yields a store whose every record still decodes without panicking —
// the load-time validation owns that guarantee.
func FuzzSequenceDecode(f *testing.F) {
	f.Add([]byte{}, []byte("d"), uint8(0))
	f.Add([]byte{0, 1, 2, 3}, []byte(""), uint8(7))
	f.Add([]byte{14, 14, 14, 0, 1}, []byte("all wildcards then bases"), uint8(40))
	f.Add(bytes.Repeat([]byte{2}, 300), []byte("homopolymer"), uint8(13))

	f.Fuzz(func(t *testing.T, raw []byte, desc []byte, flip uint8) {
		codes := make([]byte, len(raw))
		for i, b := range raw {
			codes[i] = b % dna.NumCodes
		}
		var s Store
		s.Add(string(desc), codes)
		s.Add("second", codes) // a second record exercises offset tiling

		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load of a freshly saved store: %v", err)
		}
		for id := 0; id < got.Len(); id++ {
			if !bytes.Equal(got.Sequence(id), codes) {
				t.Fatalf("record %d: sequence did not round-trip", id)
			}
		}
		if got.Desc(0) != string(desc) {
			t.Fatalf("description did not round-trip")
		}

		// Corrupt one byte of the image. Load may reject it; if it
		// accepts, every record must still decode cleanly.
		img := append([]byte{}, buf.Bytes()...)
		img[int(flip)%len(img)] ^= 1 << (flip % 8)
		mutated, err := Load(bytes.NewReader(img))
		if err != nil {
			return
		}
		for id := 0; id < mutated.Len(); id++ {
			seq := mutated.Sequence(id)
			if len(seq) != mutated.SeqLen(id) {
				t.Fatalf("mutated record %d: decoded %d bases, table says %d", id, len(seq), mutated.SeqLen(id))
			}
		}
	})
}
