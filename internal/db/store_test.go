package db

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nucleodb/internal/dna"
)

func buildStore(t *testing.T, seqs ...string) *Store {
	t.Helper()
	var s Store
	for i, q := range seqs {
		id := s.Add("rec"+string(rune('A'+i)), dna.MustEncode(q))
		if id != i {
			t.Fatalf("Add returned id %d, want %d", id, i)
		}
	}
	return &s
}

func TestStoreBasics(t *testing.T) {
	s := buildStore(t, "ACGT", "GGNNCC", "")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.TotalBases() != 10 {
		t.Errorf("TotalBases = %d, want 10", s.TotalBases())
	}
	if got := dna.String(s.Sequence(0)); got != "ACGT" {
		t.Errorf("Sequence(0) = %s", got)
	}
	if got := dna.String(s.Sequence(1)); got != "GGNNCC" {
		t.Errorf("Sequence(1) = %s", got)
	}
	if got := s.Sequence(2); len(got) != 0 {
		t.Errorf("Sequence(2) = %v", got)
	}
	if s.Desc(1) != "recB" {
		t.Errorf("Desc(1) = %q", s.Desc(1))
	}
	if s.SeqLen(1) != 6 {
		t.Errorf("SeqLen(1) = %d", s.SeqLen(1))
	}
}

func TestStoreRandomAccessOrder(t *testing.T) {
	// Records must be decodable independently of storage order — the
	// property the fine phase relies on.
	s := buildStore(t, "AAAA", "CCCC", "GGGG", "TTTT")
	for _, id := range []int{3, 0, 2, 1, 2} {
		want := strings.Repeat(string(dna.Letter(byte(id))), 4)
		if got := dna.String(s.Sequence(id)); got != want {
			t.Errorf("Sequence(%d) = %s, want %s", id, got, want)
		}
	}
}

func TestStorePanicsOutOfRange(t *testing.T) {
	s := buildStore(t, "ACGT")
	for _, id := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sequence(%d) did not panic", id)
				}
			}()
			s.Sequence(id)
		}()
	}
}

func TestStoreSaveLoad(t *testing.T) {
	s := buildStore(t, "ACGT", "GGNNCC", "", "TTTTTTTTTTTTTTTTTTTT")
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.TotalBases() != s.TotalBases() {
		t.Fatalf("loaded Len=%d TotalBases=%d, want %d/%d",
			got.Len(), got.TotalBases(), s.Len(), s.TotalBases())
	}
	for id := 0; id < s.Len(); id++ {
		if got.Desc(id) != s.Desc(id) {
			t.Errorf("Desc(%d) = %q, want %q", id, got.Desc(id), s.Desc(id))
		}
		if !reflect.DeepEqual(got.Sequence(id), s.Sequence(id)) {
			t.Errorf("Sequence(%d) mismatch", id)
		}
	}
}

func TestStoreLoadRejectsCorrupt(t *testing.T) {
	s := buildStore(t, "ACGTACGT", "GGCC")
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("WRONGMAG"))); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{9, len(good) / 2, len(good) - 1} {
		if _, err := Load(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestStoreCompression(t *testing.T) {
	// 2-bit packing dominates: encoded bytes must be well under
	// 1 byte/base for realistic sequences.
	var s Store
	long := strings.Repeat("ACGTGGTCA", 1000)
	s.Add("r", dna.MustEncode(long))
	perBase := float64(s.EncodedBytes()) / float64(s.TotalBases())
	if perBase > 0.3 {
		t.Errorf("store uses %.3f bytes/base, want ≤ 0.3", perBase)
	}
}

func TestFromRecords(t *testing.T) {
	recs := []dna.Record{
		{Desc: "a", Codes: dna.MustEncode("ACGT")},
		{Desc: "b", Codes: dna.MustEncode("NN")},
	}
	s := FromRecords(recs)
	if s.Len() != 2 || s.Desc(0) != "a" || dna.String(s.Sequence(1)) != "NN" {
		t.Errorf("FromRecords store wrong: %d records", s.Len())
	}
}

func TestEmptyStoreSaveLoad(t *testing.T) {
	var s Store
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("loaded empty store has %d records", got.Len())
	}
}
