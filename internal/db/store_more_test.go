package db

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"nucleodb/internal/dna"
)

// corrupt rewrites one uvarint field near the start of a saved store
// to an implausible value and checks Load rejects it.
func TestStoreLoadRejectsImplausibleCounts(t *testing.T) {
	// Hand-craft: magic + absurd record count.
	var buf bytes.Buffer
	buf.WriteString("NDBstor1")
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 1<<50)
	buf.Write(tmp[:n])
	if _, err := Load(&buf); err == nil {
		t.Error("implausible record count accepted")
	}
}

func TestStoreLoadRejectsNonMonotonicOffsets(t *testing.T) {
	s := buildStore(t, "ACGTACGT", "GGCCGGCC")
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Locate record 1's offset varint. Layout after magic: count,
	// then per record: descLen, desc, offset, length. Both descs are
	// 4 bytes ("recA"/"recB"); offsets are 4 and small. Flip record
	// 1's offset to a huge value (multi-byte varint won't fit in
	// place, so rebuild the stream).
	var out bytes.Buffer
	out.WriteString("NDBstor1")
	put := func(v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v)
		out.Write(tmp[:n])
	}
	put(2)
	put(4)
	out.WriteString("recA")
	put(9999) // record 0 offset beyond blob
	put(8)
	put(4)
	out.WriteString("recB")
	put(0)
	put(8)
	put(8) // blob length
	out.Write(make([]byte, 8))
	if _, err := Load(&out); err == nil {
		t.Error("offset beyond blob accepted")
	}
}

func TestStoreManyRecordsRoundTrip(t *testing.T) {
	var s Store
	var want []string
	for i := 0; i < 500; i++ {
		seq := strings.Repeat("ACGTN"[i%5:i%5+1], 1+i%97)
		want = append(want, seq)
		s.Add("r", dna.MustEncode(seq))
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if dna.String(got.Sequence(i)) != w {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestStoreDescWithNewlinesAndUnicode(t *testing.T) {
	var s Store
	desc := "weird β-globin 〈test〉 desc"
	s.Add(desc, dna.MustEncode("ACGT"))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Desc(0) != desc {
		t.Errorf("desc round trip = %q", got.Desc(0))
	}
}
