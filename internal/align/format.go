package align

import (
	"fmt"
	"strings"

	"nucleodb/internal/dna"
)

// Format renders an alignment with a transcript in the conventional
// three-line blocks:
//
//	Query    1  ACGTACGT-ACGT  12
//	            |||| |||  |||
//	Sbjct   41  ACGTTCGTNACGT  53
//
// width is the number of columns per block (≤ 0 selects 60). Positions
// are 1-based inclusive, as search tools print them. An alignment
// without a transcript formats as a one-line summary.
func Format(a, b []byte, al Alignment, width int) string {
	if len(al.Ops) == 0 {
		return fmt.Sprintf("score %d, query %d-%d, subject %d-%d (no transcript)",
			al.Score, al.AStart+1, al.AEnd, al.BStart+1, al.BEnd)
	}
	if width <= 0 {
		width = 60
	}

	// Render the three full lanes first.
	var qa, mid, sa []byte
	i, j := al.AStart, al.BStart
	for _, o := range al.Ops {
		switch o {
		case OpMatch:
			qa = append(qa, dna.Letter(a[i]))
			sa = append(sa, dna.Letter(b[j]))
			if dna.Matches(a[i], b[j]) {
				mid = append(mid, '|')
			} else {
				mid = append(mid, ' ')
			}
			i++
			j++
		case OpAGap:
			qa = append(qa, '-')
			sa = append(sa, dna.Letter(b[j]))
			mid = append(mid, ' ')
			j++
		case OpBGap:
			qa = append(qa, dna.Letter(a[i]))
			sa = append(sa, '-')
			mid = append(mid, ' ')
			i++
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "score %d, identity %.0f%% (%d/%d), gaps %d\n",
		al.Score, 100*al.Identity(), al.Matches, len(al.Ops), al.Gaps)
	qPos, sPos := al.AStart, al.BStart
	for start := 0; start < len(qa); start += width {
		end := start + width
		if end > len(qa) {
			end = len(qa)
		}
		qSeg, mSeg, sSeg := qa[start:end], mid[start:end], sa[start:end]
		qConsumed := len(qSeg) - strings.Count(string(qSeg), "-")
		sConsumed := len(sSeg) - strings.Count(string(sSeg), "-")
		fmt.Fprintf(&sb, "Query %6d  %s  %d\n", qPos+1, qSeg, qPos+qConsumed)
		fmt.Fprintf(&sb, "%13s %s\n", "", mSeg)
		fmt.Fprintf(&sb, "Sbjct %6d  %s  %d\n", sPos+1, sSeg, sPos+sConsumed)
		qPos += qConsumed
		sPos += sConsumed
		if end < len(qa) {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
