// Package align implements the local-alignment string matching the
// system uses as its answer semantics: Smith–Waterman local alignment
// (full dynamic programming with traceback, score-only linear space, and
// banded variants with affine gap penalties), Needleman–Wunsch global
// alignment, and the ungapped x-drop extension used by the BLAST-style
// baseline.
package align

import (
	"fmt"

	"nucleodb/internal/dna"
)

// Scoring holds nucleotide alignment parameters. Penalties are
// expressed as non-negative numbers and subtracted; an affine gap of
// length L costs GapOpen + L×GapExtend.
type Scoring struct {
	Match     int // score for matching bases (> 0)
	Mismatch  int // penalty for mismatching bases (≥ 0)
	GapOpen   int // penalty for opening a gap (≥ 0)
	GapExtend int // penalty for each gap position (> 0)
}

// DefaultScoring returns the FASTA-style nucleotide parameters used
// throughout the experiments: +5/−4 substitution scores with affine
// gaps, the classic settings for DNA database search.
func DefaultScoring() Scoring {
	return Scoring{Match: 5, Mismatch: 4, GapOpen: 10, GapExtend: 2}
}

// Validate reports whether the scoring scheme is usable.
func (s Scoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("align: match score %d must be positive", s.Match)
	}
	if s.Mismatch < 0 || s.GapOpen < 0 {
		return fmt.Errorf("align: penalties must be non-negative: mismatch %d, gap open %d", s.Mismatch, s.GapOpen)
	}
	if s.GapExtend <= 0 {
		return fmt.Errorf("align: gap extend %d must be positive", s.GapExtend)
	}
	return nil
}

// Masked is a pseudo-code that never matches anything, not even
// itself. The repeated-alignment search (LocalAll) overwrites already
// reported subject regions with it so later passes find disjoint
// alignments.
const Masked byte = 0xFF

// Score returns the substitution score for aligning codes a and b.
// Wildcards score as matches when their ambiguity sets intersect, so N
// aligns neutrally against anything, matching how search tools treat
// ambiguity codes. Codes outside the nucleotide alphabet (such as
// Masked) always score as mismatches.
//
//cafe:hotpath
func (s Scoring) Score(a, b byte) int {
	if a >= dna.NumCodes || b >= dna.NumCodes {
		return -s.Mismatch
	}
	if a == b || (a >= dna.NumBases || b >= dna.NumBases) && dna.Matches(a, b) {
		return s.Match
	}
	return -s.Mismatch
}
