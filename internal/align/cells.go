package align

// Cell accounting for the observability pipeline: the searcher reports
// how many dynamic-programming cells each fine-phase alignment
// evaluated, and these helpers compute that count without touching the
// aligners' inner loops — instrumentation must not perturb them.

// LocalCells returns the number of DP cells Local/LocalScore evaluate
// for sequences of length la and lb: the full la×lb matrix.
func LocalCells(la, lb int) int64 {
	if la <= 0 || lb <= 0 {
		return 0
	}
	return int64(la) * int64(lb)
}

// BandedCells returns the number of DP cells BandedLocalScore (and
// BandedLocal) evaluate for sequences of length la and lb with the
// given band centre and half-width: the intersection of the diagonal
// strip centre±band with the matrix, mirroring the aligner's row
// clipping exactly.
func BandedCells(la, lb, centre, band int) int64 {
	if la <= 0 || lb <= 0 || band < 0 {
		return 0
	}
	lo, hi := centre-band, centre+band
	var cells int64
	for i := 0; i < la; i++ {
		jLo, jHi := i+lo, i+hi
		if jLo < 0 {
			jLo = 0
		}
		if jHi >= lb {
			jHi = lb - 1
		}
		if jLo > jHi {
			if i+lo > lb-1 {
				break
			}
			continue
		}
		cells += int64(jHi - jLo + 1)
	}
	return cells
}
