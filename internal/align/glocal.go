package align

// GlocalScore computes the best semi-global ("glocal") alignment score
// of a against b: all of a must align, anywhere within b — leading and
// trailing unaligned subject bases are free, gaps inside the alignment
// are charged. This is the read-mapping semantics: a sequencing read
// (a) is expected to be entirely present in the reference (b), unlike
// local alignment which may clip low-quality read ends, and unlike
// global alignment which would charge b's flanks.
//
// It returns the best score and the (exclusive) end position of the
// alignment in b. A negative score is possible when a fits nowhere
// well. Use Glocal for the full subject span.
func GlocalScore(a, b []byte, s Scoring) (score, bEnd int) {
	if len(a) == 0 {
		return 0, 0
	}
	const negInf = int32(-1 << 29)
	n := len(b)
	h := make([]int32, n+1)
	e := make([]int32, n+1)
	for j := 0; j <= n; j++ {
		h[j] = 0 // the alignment may start anywhere in b for free
		e[j] = negInf
	}
	openExt := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)

	for i := 1; i <= len(a); i++ {
		diag := h[0]
		h[0] = -int32(s.GapOpen) - int32(i)*ext
		f := negInf
		ca := a[i-1]
		for j := 1; j <= n; j++ {
			up := h[j]
			ev := e[j] - ext
			if v := up - openExt; v > ev {
				ev = v
			}
			e[j] = ev

			fv := f - ext
			if v := h[j-1] - openExt; v > fv {
				fv = v
			}
			f = fv

			hv := diag + int32(s.Score(ca, b[j-1]))
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			diag = up
			h[j] = hv
		}
	}
	best := negInf
	bestJ := 0
	for j := 0; j <= n; j++ {
		if h[j] > best {
			best = h[j]
			bestJ = j
		}
	}
	return int(best), bestJ
}

// Glocal computes the semi-global alignment of a within b and returns
// the score with the half-open subject span, locating the start with a
// second pass over the reversed prefixes (the same trick LocalLinear
// uses).
func Glocal(a, b []byte, s Scoring) (score, bStart, bEnd int) {
	score, bEnd = GlocalScore(a, b, s)
	if len(a) == 0 {
		return score, 0, 0
	}
	rScore, rEnd := GlocalScore(reverseSeq(a), reverseSeq(b[:bEnd]), s)
	if rScore != score {
		panic("align: forward/reverse glocal score mismatch")
	}
	return score, bEnd - rEnd, bEnd
}
