package align

import (
	"math/rand"
	"testing"
)

// refGlobalScore is a full-matrix Needleman–Wunsch reference.
func refGlobalScore(a, b []byte, s Scoring) int {
	const negInf = -(1 << 28)
	n, m := len(a), len(b)
	H := make([][]int, n+1)
	E := make([][]int, n+1)
	F := make([][]int, n+1)
	for i := range H {
		H[i] = make([]int, m+1)
		E[i] = make([]int, m+1)
		F[i] = make([]int, m+1)
	}
	for i := 0; i <= n; i++ {
		for j := 0; j <= m; j++ {
			E[i][j], F[i][j] = negInf, negInf
			if i == 0 && j == 0 {
				H[i][j] = 0
				continue
			}
			H[i][j] = negInf
			if i > 0 {
				E[i][j] = max(E[i-1][j]-s.GapExtend, H[i-1][j]-s.GapOpen-s.GapExtend)
			}
			if j > 0 {
				F[i][j] = max(F[i][j-1]-s.GapExtend, H[i][j-1]-s.GapOpen-s.GapExtend)
			}
			if i > 0 && j > 0 {
				H[i][j] = H[i-1][j-1] + s.Score(a[i-1], b[j-1])
			}
			H[i][j] = max(H[i][j], max(E[i][j], F[i][j]))
		}
	}
	return H[n][m]
}

func TestGlobalScoreKnown(t *testing.T) {
	s := DefaultScoring()
	cases := []struct {
		a, b string
		want int
	}{
		{"ACGT", "ACGT", 20},
		{"ACGT", "ACGA", 11},  // 3 matches − 1 mismatch = 15−4
		{"ACGTA", "ACGT", 8},  // 4 matches − (open + extend) = 20−12
		{"ACGT", "ACGTA", 8},  // symmetric
		{"AAAA", "TTTT", -16}, // all mismatches
	}
	for _, c := range cases {
		if got := GlobalScore(seqOf(c.a), seqOf(c.b), s); got != c.want {
			t.Errorf("GlobalScore(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGlobalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	s := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		a := randomSeq(rng, 1+rng.Intn(40))
		b := randomSeq(rng, 1+rng.Intn(40))
		got := GlobalScore(a, b, s)
		want := refGlobalScore(a, b, s)
		if got != want {
			t.Fatalf("trial %d: GlobalScore = %d, reference %d", trial, got, want)
		}
	}
}

func TestGlobalNeverExceedsLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	s := DefaultScoring()
	for trial := 0; trial < 30; trial++ {
		a := randomSeq(rng, 1+rng.Intn(40))
		b := randomSeq(rng, 1+rng.Intn(40))
		g := GlobalScore(a, b, s)
		l, _, _ := LocalScore(a, b, s)
		if g > l {
			t.Fatalf("global %d > local %d", g, l)
		}
	}
}
