package align

import (
	"fmt"
	"strconv"
	"strings"
)

// CIGAR renders the transcript in SAM CIGAR notation with the query in
// the read role: M for aligned columns (matches and mismatches), I for
// query bases absent from the subject (OpBGap), D for subject bases
// absent from the query (OpAGap). An empty transcript yields "".
func (al *Alignment) CIGAR() string {
	if len(al.Ops) == 0 {
		return ""
	}
	var b strings.Builder
	runOp := al.Ops[0]
	run := 0
	flush := func() {
		b.WriteString(strconv.Itoa(run))
		b.WriteByte(cigarLetter(runOp))
	}
	for _, o := range al.Ops {
		if o == runOp {
			run++
			continue
		}
		flush()
		runOp, run = o, 1
	}
	flush()
	return b.String()
}

func cigarLetter(o byte) byte {
	switch o {
	case OpMatch:
		return 'M'
	case OpBGap:
		return 'I' // query base consumed alone
	case OpAGap:
		return 'D' // subject base consumed alone
	}
	panic(fmt.Sprintf("align: unknown op %q", o))
}

// ParseCIGAR converts CIGAR notation back into a transcript, the
// inverse of CIGAR for the M/I/D alphabet.
func ParseCIGAR(s string) ([]byte, error) {
	var ops []byte
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
			if n > 1<<30 {
				return nil, fmt.Errorf("align: cigar run length overflow at %d", i)
			}
			continue
		}
		if n == 0 {
			return nil, fmt.Errorf("align: cigar op %q at %d has no count", c, i)
		}
		var op byte
		switch c {
		case 'M':
			op = OpMatch
		case 'I':
			op = OpBGap
		case 'D':
			op = OpAGap
		default:
			return nil, fmt.Errorf("align: unsupported cigar op %q at %d", c, i)
		}
		for k := 0; k < n; k++ {
			ops = append(ops, op)
		}
		n = 0
	}
	if n != 0 {
		return nil, fmt.Errorf("align: trailing count %d without op", n)
	}
	return ops, nil
}
