package align

// BandedLocal computes a Smith–Waterman local alignment restricted to
// diagonals within ±band of centre, with a full affine-gap traceback.
// Memory is one byte per band cell — O(len(a)·band) — so wide bands on
// long sequences stay cheap. The score equals BandedLocalScore's; when
// the optimal unrestricted alignment stays inside the band the result
// matches Local's.
func BandedLocal(a, b []byte, centre, band int, s Scoring) Alignment {
	if len(a) == 0 || len(b) == 0 || band < 0 {
		return Alignment{}
	}
	lo := centre - band
	width := 2*band + 1
	h := make([]int32, width)
	e := make([]int32, width)
	prevH := make([]int32, width)
	prevE := make([]int32, width)
	dir := make([]byte, len(a)*width)
	openExt := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	const negInf = int32(-1 << 30)

	var best int32
	bestI, bestJ := -1, -1
	for i := 0; i < len(a); i++ {
		ca := a[i]
		jLo, jHi := i+lo, i+lo+width-1
		if jLo < 0 {
			jLo = 0
		}
		if jHi >= len(b) {
			jHi = len(b) - 1
		}
		if jLo > jHi {
			if i+lo > len(b)-1 {
				break
			}
			for c := range h {
				h[c], e[c] = 0, 0
			}
			continue
		}
		var f int32
		copy(prevH, h)
		copy(prevE, e)
		for c := range h {
			h[c], e[c] = 0, 0
		}
		row := i * width
		for j := jLo; j <= jHi; j++ {
			c := j - i - lo
			var d byte

			up, eUp := negInf, negInf
			if c+1 < width {
				up = prevH[c+1]
				eUp = prevE[c+1]
			}
			ev := eUp - ext
			if v := up - openExt; v >= ev {
				ev = v
			} else {
				d |= eExtend
			}
			if ev < 0 {
				ev = 0
			}

			fv := f - ext
			var leftH int32 = negInf
			if c-1 >= 0 {
				leftH = h[c-1]
			}
			if v := leftH - openExt; v >= fv {
				fv = v
			} else {
				d |= fExtend
			}
			if fv < 0 {
				fv = 0
			}
			f = fv

			diagH := int32(0)
			if i > 0 && j > 0 {
				diagH = prevH[c]
			}
			hv := diagH + int32(s.Score(ca, b[j]))
			src := byte(hFromDiag)
			if ev > hv {
				hv = ev
				src = hFromE
			}
			if fv > hv {
				hv = fv
				src = hFromF
			}
			if hv <= 0 {
				hv = 0
				src = hFromNone
			}
			e[c] = ev
			h[c] = hv
			dir[row+c] = d | src
			if hv > best {
				best = hv
				bestI, bestJ = i, j
			}
		}
	}
	if best == 0 {
		return Alignment{}
	}
	al := Alignment{Score: int(best), AEnd: bestI + 1, BEnd: bestJ + 1}

	// Traceback mirrors Local's H/E/F state machine over band columns.
	const (
		stH = iota
		stE
		stF
	)
	i, j, st := bestI, bestJ, stH
	var ops []byte
loop:
	for i >= 0 && j >= 0 {
		c := j - i - lo
		if c < 0 || c >= width {
			break
		}
		d := dir[i*width+c]
		switch st {
		case stH:
			switch d & hMask {
			case hFromNone:
				break loop
			case hFromDiag:
				ops = append(ops, OpMatch)
				if s.Score(a[i], b[j]) > 0 {
					al.Matches++
				} else {
					al.Mismatches++
				}
				i--
				j--
				if i < 0 || j < 0 {
					break loop
				}
			case hFromE:
				st = stE
			case hFromF:
				st = stF
			}
		case stE:
			ops = append(ops, OpBGap)
			al.Gaps++
			if d&eExtend == 0 {
				st = stH
			}
			i--
			if i < 0 {
				break loop
			}
		case stF:
			ops = append(ops, OpAGap)
			al.Gaps++
			if d&fExtend == 0 {
				st = stH
			}
			j--
			if j < 0 {
				break loop
			}
		}
	}
	al.AStart, al.BStart = i+1, j+1
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	al.Ops = ops
	return al
}

// BandedLocalScore computes a Smith–Waterman local alignment score
// restricted to diagonals within ±band of centre, where the diagonal of
// cell (i,j) is j−i (0-based sequence offsets, so a perfect ungapped
// match of a against b starting at b-offset d lies on diagonal d).
//
// The band makes the cost O(len(a)·band) instead of O(len(a)·len(b)):
// the fine phase uses it on candidates whose matching diagonals the
// coarse phase already located. The score is a lower bound on the
// unrestricted local score and equals it whenever the optimal alignment
// stays inside the band.
//
//cafe:hotpath
func BandedLocalScore(a, b []byte, centre, band int, s Scoring) (score, aEnd, bEnd int) {
	if len(a) == 0 || len(b) == 0 || band < 0 {
		return 0, 0, 0
	}
	lo, hi := centre-band, centre+band // inclusive diagonal range
	width := 2*band + 1
	// h[c], e[c]: DP states for diagonal lo+c on the current row.
	h := make([]int32, width)     //cafe:allow O(band) setup, outside the per-cell inner loop
	e := make([]int32, width)     //cafe:allow O(band) setup, outside the per-cell inner loop
	prevH := make([]int32, width) //cafe:allow O(band) setup, outside the per-cell inner loop
	prevE := make([]int32, width) //cafe:allow O(band) setup, outside the per-cell inner loop
	openExt := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	const negInf = int32(-1 << 30)

	var best int32
	for i := 0; i < len(a); i++ {
		ca := a[i]
		// j ranges over the intersection of the band with b.
		jLo, jHi := i+lo, i+hi
		if jLo < 0 {
			jLo = 0
		}
		if jHi >= len(b) {
			jHi = len(b) - 1
		}
		if jLo > jHi {
			// Band has left b entirely.
			if i+lo > len(b)-1 {
				break
			}
			for c := range h {
				h[c], e[c] = 0, 0
			}
			continue
		}
		var f int32
		copy(prevH, h)
		copy(prevE, e)
		for c := range h {
			h[c], e[c] = 0, 0
		}
		for j := jLo; j <= jHi; j++ {
			c := j - i - lo // band column of diagonal j-i

			// Vertical move comes from (i-1, j): same j, previous row,
			// where the band column was j-(i-1)-lo = c+1.
			up, eUp := negInf, negInf
			if c+1 < width {
				up = prevH[c+1]
				eUp = prevE[c+1]
			}
			ev := eUp - ext
			if v := up - openExt; v > ev {
				ev = v
			}
			if ev < 0 {
				ev = 0
			}

			fv := f - ext
			var leftH int32 = negInf
			if c-1 >= 0 {
				leftH = h[c-1]
			}
			if v := leftH - openExt; v > fv {
				fv = v
			}
			if fv < 0 {
				fv = 0
			}
			f = fv

			// Diagonal move comes from (i-1, j-1): previous row, same
			// band column c.
			diag := int32(0)
			if i > 0 && j > 0 {
				diag = prevH[c]
			}
			hv := diag + int32(s.Score(ca, b[j]))
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			if hv < 0 {
				hv = 0
			}
			e[c] = ev
			h[c] = hv
			if hv > best {
				best = hv
				aEnd, bEnd = i+1, j+1
			}
		}
	}
	return int(best), aEnd, bEnd
}
