package align

// LocalAll finds up to max local alignments of a against b with score
// at least minScore, best-first, pairwise disjoint in the subject — the
// multiple high-scoring segment pairs (HSPs) that search tools report
// when a query matches a subject in several places (e.g. repeated
// domains, or regions separated by an unalignable insert).
//
// The method is repeated alignment with subject masking, the practical
// variant of Waterman–Eggert: after each alignment is reported its
// subject span is overwritten with the Masked code, which matches
// nothing, and the alignment is recomputed. Each round costs one full
// Local pass, so the total is O(max · len(a) · len(b)).
func LocalAll(a, b []byte, s Scoring, minScore, max int) []Alignment {
	if minScore < 1 {
		minScore = 1
	}
	if max <= 0 || len(a) == 0 || len(b) == 0 {
		return nil
	}
	masked := append([]byte(nil), b...)
	var out []Alignment
	for len(out) < max {
		al := Local(a, masked, s)
		if al.Score < minScore {
			break
		}
		if al.BEnd <= al.BStart {
			break // defensive: a zero-width subject span cannot be masked
		}
		out = append(out, al)
		for j := al.BStart; j < al.BEnd; j++ {
			masked[j] = Masked
		}
	}
	return out
}
