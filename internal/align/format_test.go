package align

import (
	"strings"
	"testing"

	"nucleodb/internal/dna"
)

func TestFormatPerfectMatch(t *testing.T) {
	a := seqOf("ACGTACGT")
	al := Local(a, a, DefaultScoring())
	out := Format(a, a, al, 60)
	if !strings.Contains(out, "ACGTACGT") {
		t.Errorf("missing sequence lane:\n%s", out)
	}
	if !strings.Contains(out, "||||||||") {
		t.Errorf("missing match lane:\n%s", out)
	}
	if !strings.Contains(out, "identity 100%") {
		t.Errorf("missing identity:\n%s", out)
	}
	if !strings.Contains(out, "Query      1") || !strings.Contains(out, "  8") {
		t.Errorf("positions wrong:\n%s", out)
	}
}

func TestFormatWithGapAndMismatch(t *testing.T) {
	s := DefaultScoring()
	a := seqOf("ACGTACGTACGTACGT")
	b := append(append([]byte{}, a[:8]...), a[9:]...) // delete base 8
	b[2] = (b[2] + 1) % dna.NumBases                  // mismatch near start
	al := Local(a, b, s)
	if al.Gaps == 0 {
		t.Skip("alignment chose no gap; scoring change?")
	}
	out := Format(a, b, al, 60)
	if !strings.Contains(out, "-") {
		t.Errorf("gap not rendered:\n%s", out)
	}
	// The mismatch column must not be a pipe.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestFormatWrapsBlocks(t *testing.T) {
	a := make([]byte, 150)
	al := Local(a, a, DefaultScoring()) // homopolymer A self-match
	out := Format(a, a, al, 50)
	blocks := strings.Count(out, "Query")
	if blocks != 3 {
		t.Errorf("got %d blocks for 150 columns at width 50:\n%s", blocks, out)
	}
	// Second block starts at position 51.
	if !strings.Contains(out, "Query     51") {
		t.Errorf("second block numbering wrong:\n%s", out)
	}
}

func TestFormatScoreOnly(t *testing.T) {
	al := Alignment{Score: 42, AStart: 3, AEnd: 3, BStart: 9, BEnd: 9}
	out := Format(nil, nil, al, 60)
	if !strings.Contains(out, "score 42") || !strings.Contains(out, "no transcript") {
		t.Errorf("score-only format wrong: %s", out)
	}
}

func TestFormatPositionsConsistent(t *testing.T) {
	// Replay: the printed end position of each block must equal the
	// next block's start − 1.
	a := seqOf(strings.Repeat("ACGT", 40))
	b := seqOf(strings.Repeat("ACGT", 40))
	al := Local(a, b, DefaultScoring())
	out := Format(a, b, al, 32)
	var starts []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Query") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				starts = append(starts, fields[1])
			}
		}
	}
	if len(starts) < 2 {
		t.Fatalf("expected multiple blocks:\n%s", out)
	}
	if starts[0] != "1" || starts[1] != "33" {
		t.Errorf("block starts = %v, want [1 33 ...]", starts)
	}
}
