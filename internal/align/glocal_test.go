package align

import (
	"math/rand"
	"testing"
)

// refGlocal is a brute-force reference: the best global alignment of a
// against every substring b[i:j].
func refGlocal(a, b []byte, s Scoring) (int, int, int) {
	best, bi, bj := -(1 << 30), 0, 0
	for i := 0; i <= len(b); i++ {
		for j := i; j <= len(b); j++ {
			sc := GlobalScore(a, b[i:j], s)
			if sc > best {
				best, bi, bj = sc, i, j
			}
		}
	}
	return best, bi, bj
}

func TestGlocalEmbeddedRead(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	s := DefaultScoring()
	ref := randomSeq(rng, 500)
	read := append([]byte{}, ref[200:300]...)
	score, bStart, bEnd := Glocal(read, ref, s)
	if want := 100 * s.Match; score != want {
		t.Errorf("embedded read score %d, want %d", score, want)
	}
	if bStart != 200 || bEnd != 300 {
		t.Errorf("span [%d,%d), want [200,300)", bStart, bEnd)
	}
}

func TestGlocalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	s := DefaultScoring()
	for trial := 0; trial < 30; trial++ {
		a := randomSeq(rng, 1+rng.Intn(12))
		b := randomSeq(rng, 1+rng.Intn(25))
		got, _, _ := Glocal(a, b, s)
		want, _, _ := refGlocal(a, b, s)
		if got != want {
			t.Fatalf("trial %d: glocal %d, reference %d", trial, got, want)
		}
	}
}

func TestGlocalChargesQueryFully(t *testing.T) {
	s := DefaultScoring()
	// A query with no home: only 4 of 8 bases can match. Local
	// alignment would clip; glocal must charge the rest.
	a := seqOf("ACGTTTTT")
	b := seqOf("ACGT")
	glocal, _, _ := Glocal(a, b, s)
	local, _, _ := LocalScore(a, b, s)
	if glocal >= local {
		t.Errorf("glocal %d not below local %d for a partially homeless query", glocal, local)
	}
}

func TestGlocalDegenerate(t *testing.T) {
	s := DefaultScoring()
	if score, bStart, bEnd := Glocal(nil, seqOf("ACGT"), s); score != 0 || bStart != bEnd {
		t.Errorf("empty query glocal = %d [%d,%d)", score, bStart, bEnd)
	}
	// Empty subject: the query is one big gap.
	score, _, _ := Glocal(seqOf("ACGT"), nil, s)
	if want := -(s.GapOpen + 4*s.GapExtend); score != want {
		t.Errorf("empty subject score %d, want %d", score, want)
	}
}

func TestGlocalWithIndel(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	s := DefaultScoring()
	ref := randomSeq(rng, 400)
	// Read with one base deleted relative to the reference.
	read := append([]byte{}, ref[100:150]...)
	read = append(read[:20], read[21:]...)
	score, bStart, bEnd := Glocal(read, ref, s)
	want := 49*s.Match - s.GapOpen - s.GapExtend
	if score != want {
		t.Errorf("indel read score %d, want %d", score, want)
	}
	if bStart != 100 || bEnd != 150 {
		t.Errorf("span [%d,%d), want [100,150)", bStart, bEnd)
	}
}
