package align

import (
	"math/rand"
	"testing"
)

func TestLocalAllFindsRepeatedDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	s := DefaultScoring()
	domain := randomSeq(rng, 60)
	spacer := randomSeq(rng, 80)
	// Subject contains the domain twice, separated by noise.
	var b []byte
	b = append(b, spacer...)
	b = append(b, domain...)
	b = append(b, spacer...)
	b = append(b, domain...)
	b = append(b, spacer...)

	hsps := LocalAll(domain, b, s, 100, 5)
	if len(hsps) < 2 {
		t.Fatalf("found %d HSPs, want ≥ 2", len(hsps))
	}
	// Best-first ordering.
	for i := 1; i < len(hsps); i++ {
		if hsps[i].Score > hsps[i-1].Score {
			t.Fatal("HSPs not best-first")
		}
	}
	// The top two are the two domain copies, disjoint in the subject.
	a0, a1 := hsps[0], hsps[1]
	if a0.Score != 60*s.Match || a1.Score != 60*s.Match {
		t.Errorf("domain copies scored %d and %d, want %d", a0.Score, a1.Score, 60*s.Match)
	}
	if a0.BStart < a1.BEnd && a1.BStart < a0.BEnd {
		t.Errorf("HSPs overlap in subject: [%d,%d) and [%d,%d)", a0.BStart, a0.BEnd, a1.BStart, a1.BEnd)
	}
}

func TestLocalAllRespectsLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	s := DefaultScoring()
	domain := randomSeq(rng, 40)
	var b []byte
	for i := 0; i < 4; i++ {
		b = append(b, domain...)
		b = append(b, randomSeq(rng, 30)...)
	}
	if got := LocalAll(domain, b, s, 1, 2); len(got) != 2 {
		t.Errorf("max=2 returned %d HSPs", len(got))
	}
	// A threshold above the perfect score returns nothing.
	if got := LocalAll(domain, b, s, 40*s.Match+1, 10); len(got) != 0 {
		t.Errorf("unreachable threshold returned %d HSPs", len(got))
	}
}

func TestLocalAllDegenerate(t *testing.T) {
	s := DefaultScoring()
	if got := LocalAll(nil, seqOf("ACGT"), s, 1, 3); got != nil {
		t.Errorf("empty query returned %v", got)
	}
	if got := LocalAll(seqOf("ACGT"), seqOf("ACGT"), s, 1, 0); got != nil {
		t.Errorf("max=0 returned %v", got)
	}
	if got := LocalAll(seqOf("AAAA"), seqOf("TTTT"), s, 1, 3); len(got) != 0 {
		t.Errorf("no-match pair returned %d HSPs", len(got))
	}
}

func TestMaskedNeverMatches(t *testing.T) {
	s := DefaultScoring()
	if s.Score(Masked, Masked) != -s.Mismatch {
		t.Error("Masked matches itself")
	}
	for c := byte(0); c < 15; c++ {
		if s.Score(Masked, c) != -s.Mismatch || s.Score(c, Masked) != -s.Mismatch {
			t.Fatalf("Masked matches code %d", c)
		}
	}
}

func TestLocalAllTranscriptsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	s := DefaultScoring()
	for trial := 0; trial < 20; trial++ {
		a := randomSeq(rng, 50+rng.Intn(50))
		b := randomSeq(rng, 100+rng.Intn(100))
		// Embed a into b to guarantee at least one strong HSP.
		at := rng.Intn(len(b) - 10)
		copy(b[at:], a[:min(len(a), len(b)-at)])
		for _, al := range LocalAll(a, b, s, 30, 3) {
			// The transcript replays against the ORIGINAL b only if it
			// avoided masked regions; first HSP always does.
			if al.BEnd > len(b) || al.AEnd > len(a) {
				t.Fatalf("spans out of range: %+v", al)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
