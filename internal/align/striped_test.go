package align

import (
	"math/rand"
	"testing"

	"nucleodb/internal/dna"
)

// stripedScorings are the schemes the differential tests sweep: the
// headline parameters plus edit-distance-like, zero-mismatch (every
// substitution scores +Match or 0), zero-open (linear gaps), and a
// cheap-gap scheme that makes gap-gap corners (the lazy-F/E coupling
// the kernel must reproduce exactly) optimal wherever possible.
var stripedScorings = []Scoring{
	DefaultScoring(),
	{Match: 1, Mismatch: 1, GapOpen: 0, GapExtend: 1},
	{Match: 5, Mismatch: 0, GapOpen: 2, GapExtend: 1},
	{Match: 2, Mismatch: 7, GapOpen: 0, GapExtend: 1},
	{Match: 9, Mismatch: 50, GapOpen: 1, GapExtend: 1},
}

// randCodes returns a random code sequence of length n over the full
// code space (bases plus wildcards) with occasional junk bytes.
func randCodes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		switch r := rng.Intn(20); {
		case r < 14:
			out[i] = byte(rng.Intn(int(dna.NumBases)))
		case r < 18:
			out[i] = byte(dna.NumBases + rng.Intn(int(dna.NumCodes-dna.NumBases)))
		default:
			out[i] = byte(rng.Intn(256)) // junk, incl. Masked
		}
	}
	return out
}

// TestStripedMatchesLocalScoreRandom is the randomized differential
// test: the bitvector kernel must return bit-identical scores to the
// scalar LocalScore across lengths, alphabets and scoring schemes.
func TestStripedMatchesLocalScoreRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for si, s := range stripedScorings {
		for trial := 0; trial < 300; trial++ {
			a := randCodes(rng, 1+rng.Intn(120))
			b := randCodes(rng, 1+rng.Intn(200))
			want, _, _ := LocalScore(a, b, s)
			got, ok := StripedLocalScore(a, b, s)
			if !ok {
				t.Fatalf("scoring %d trial %d: kernel refused len %d×%d", si, trial, len(a), len(b))
			}
			if got != want {
				t.Fatalf("scoring %d trial %d (%v): striped %d != scalar %d\n a=%v\n b=%v",
					si, trial, s, got, want, a, b)
			}
		}
	}
}

// TestStripedProfileReuseAcrossSubjects locks in the pooled-profile
// contract: one profile scored against many subjects with a reused
// scratch must equal fresh one-shot evaluations.
func TestStripedProfileReuseAcrossSubjects(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := DefaultScoring()
	var sc StripedScratch
	p := &StripedProfile{}
	for q := 0; q < 10; q++ {
		query := randCodes(rng, 3+rng.Intn(90))
		p.Build(query, s)
		for j := 0; j < 20; j++ {
			subject := randCodes(rng, 1+rng.Intn(150))
			want, _, _ := LocalScore(query, subject, s)
			got, ok := p.Score(subject, &sc)
			if !ok || got != want {
				t.Fatalf("query %d subject %d: got (%d,%v), want %d", q, j, got, ok, want)
			}
		}
	}
}

// enumerate appends every sequence over alphabet of length 1..maxLen.
func enumerate(alphabet []byte, maxLen int) [][]byte {
	var out [][]byte
	var cur []byte
	var rec func(depth int)
	rec = func(depth int) {
		if depth > 0 {
			out = append(out, append([]byte(nil), cur...))
		}
		if depth == maxLen {
			return
		}
		for _, c := range alphabet {
			cur = append(cur, c)
			rec(depth + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// TestStripedExhaustiveSmallAlphabet sweeps every query/target pair up
// to a length bound: all pairs over {A,C} to length 7 (65k pairs, where
// stripe counts 1–2 and every padding shape occur) and all pairs over
// {A,C,G,N} to length 3 under two scorings. Exhaustive, so any lane
// bookkeeping error that randomized trials might miss is pinned here.
func TestStripedExhaustiveSmallAlphabet(t *testing.T) {
	binary := enumerate([]byte{dna.BaseA, dna.BaseC}, 7)
	wild := enumerate([]byte{dna.BaseA, dna.BaseC, dna.BaseG, dna.WildN}, 3)
	check := func(pairsA, pairsB [][]byte, s Scoring) {
		t.Helper()
		for _, a := range pairsA {
			for _, b := range pairsB {
				want, _, _ := LocalScore(a, b, s)
				got, ok := StripedLocalScore(a, b, s)
				if !ok || got != want {
					t.Fatalf("scoring %v: striped(%v,%v) = (%d,%v), scalar %d", s, a, b, got, ok, want)
				}
			}
		}
	}
	check(binary, binary, DefaultScoring())
	check(wild, wild, DefaultScoring())
	check(wild, wild, Scoring{Match: 3, Mismatch: 1, GapOpen: 0, GapExtend: 1})
}

// TestStripedEdgeCases covers the degenerate inputs the fine phase can
// feed the kernel.
func TestStripedEdgeCases(t *testing.T) {
	s := DefaultScoring()

	// Empty sequences score 0, like LocalScore.
	if got, ok := StripedLocalScore(nil, []byte{0, 1, 2}, s); !ok || got != 0 {
		t.Fatalf("empty query: (%d,%v)", got, ok)
	}
	if got, ok := StripedLocalScore([]byte{0, 1, 2}, nil, s); !ok || got != 0 {
		t.Fatalf("empty subject: (%d,%v)", got, ok)
	}

	// All-N sequences: N matches everything, so the score is the full
	// ungapped run.
	n := make([]byte, 40)
	for i := range n {
		n[i] = dna.WildN
	}
	want, _, _ := LocalScore(n, n[:25], s)
	if got, ok := StripedLocalScore(n, n[:25], s); !ok || got != want {
		t.Fatalf("all-N: (%d,%v), want %d", got, ok, want)
	}

	// Masked bytes never match, including themselves.
	m := []byte{Masked, Masked, Masked, Masked, Masked}
	if got, ok := StripedLocalScore(m, m, s); !ok || got != 0 {
		t.Fatalf("masked: (%d,%v), want 0", got, ok)
	}

	// Every stripe-padding shape around the lane boundary.
	rng := rand.New(rand.NewSource(3))
	for la := 1; la <= 18; la++ {
		a := randCodes(rng, la)
		b := randCodes(rng, 33)
		want, _, _ := LocalScore(a, b, s)
		if got, ok := StripedLocalScore(a, b, s); !ok || got != want {
			t.Fatalf("len %d: (%d,%v), want %d", la, got, ok, want)
		}
	}
}

// TestStripedCapacityRefusal: pairs whose score bound could overflow a
// lane must be refused (the core fine phase then falls back to the
// scalar kernel), and the refusal must key on min(query, subject).
func TestStripedCapacityRefusal(t *testing.T) {
	huge := Scoring{Match: 20000, Mismatch: 1, GapOpen: 1, GapExtend: 1}
	a := []byte{0, 1, 2, 3}
	if _, ok := StripedLocalScore(a, a, huge); ok {
		t.Fatal("kernel accepted a scoring whose single match overflows a lane")
	}

	s := DefaultScoring()
	long := make([]byte, 8000) // 8000×5 > 0x7FFF: too big when both sides are long
	p := NewStripedProfile(long, s)
	if p.Supports(len(long)) {
		t.Fatal("kernel accepted min-length 8000 at Match=5")
	}
	// ...but the same long query against a short subject fits (the
	// subject bounds the score).
	if !p.Supports(100) {
		t.Fatal("kernel refused a short subject against a long query")
	}
	short := randCodes(rand.New(rand.NewSource(9)), 100)
	var sc StripedScratch
	want, _, _ := LocalScore(long, short, s)
	if got, ok := p.Score(short, &sc); !ok || got != want {
		t.Fatalf("long×short: (%d,%v), want %d", got, ok, want)
	}
}

// TestLanePrimitives pins the SWAR building blocks against per-lane
// reference arithmetic.
func TestLanePrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20000; trial++ {
		var x, y uint64
		var wantSub, wantMax uint64
		for l := 0; l < bvLanes; l++ {
			xv := uint64(rng.Intn(laneCap + 1))
			yv := uint64(rng.Intn(laneCap + 1))
			x |= xv << (bvLaneBits * l)
			y |= yv << (bvLaneBits * l)
			var sub uint64
			if xv > yv {
				sub = xv - yv
			}
			mx := xv
			if yv > mx {
				mx = yv
			}
			wantSub |= sub << (bvLaneBits * l)
			wantMax |= mx << (bvLaneBits * l)
		}
		if got := laneSubSat(x, y); got != wantSub {
			t.Fatalf("laneSubSat(%#x, %#x) = %#x, want %#x", x, y, got, wantSub)
		}
		if got := laneMax(x, y); got != wantMax {
			t.Fatalf("laneMax(%#x, %#x) = %#x, want %#x", x, y, got, wantMax)
		}
	}
}

// BenchmarkFineKernels compares the scalar and bitvector score kernels
// on the fine phase's typical shape (400-base query, ~900-base
// candidate).
func BenchmarkFineKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	query := randCodes(rng, 400)
	subject := randCodes(rng, 900)
	s := DefaultScoring()
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(len(query)) * int64(len(subject)))
		for i := 0; i < b.N; i++ {
			LocalScore(query, subject, s)
		}
	})
	b.Run("bitvector", func(b *testing.B) {
		p := NewStripedProfile(query, s)
		var sc StripedScratch
		b.SetBytes(int64(len(query)) * int64(len(subject)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Score(subject, &sc)
		}
	})
}
