package align

// GlobalScore computes the Needleman–Wunsch global alignment score of a
// and b with affine gaps, in O(len(a)·len(b)) time and O(len(b)) space.
// Global alignment is not the system's answer semantics (local is), but
// the evaluation uses it to verify the aligners against each other and
// it completes the library for downstream users.
func GlobalScore(a, b []byte, s Scoring) int {
	const negInf = int32(-1 << 30)
	n := len(b)
	h := make([]int32, n+1)
	e := make([]int32, n+1)
	openExt := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)

	// Row 0: leading gaps in a.
	h[0] = 0
	e[0] = negInf
	for j := 1; j <= n; j++ {
		h[j] = -int32(s.GapOpen) - int32(j)*ext
		e[j] = negInf
	}
	for i := 1; i <= len(a); i++ {
		diag := h[0]
		h[0] = -int32(s.GapOpen) - int32(i)*ext
		f := negInf
		ca := a[i-1]
		for j := 1; j <= n; j++ {
			up := h[j]
			ev := e[j] - ext
			if v := up - openExt; v > ev {
				ev = v
			}
			e[j] = ev

			fv := f - ext
			if v := h[j-1] - openExt; v > fv {
				fv = v
			}
			f = fv

			hv := diag + int32(s.Score(ca, b[j-1]))
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			diag = up
			h[j] = hv
		}
	}
	return int(h[n])
}
