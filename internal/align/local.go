package align

// LocalScore computes the Smith–Waterman local alignment score of a and
// b with affine gaps (Gotoh's algorithm) in O(len(a)·len(b)) time and
// O(len(b)) space. It returns the best score and the (exclusive) end
// positions of the best-scoring local alignment in a and b.
//
// This is the exhaustive-search workhorse: the full-scan baseline calls
// it once per database sequence.
func LocalScore(a, b []byte, s Scoring) (score, aEnd, bEnd int) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, 0
	}
	// h[j]: best score of an alignment ending at (i, j).
	// e[j]: best score ending at (i, j) with a vertical gap run
	// (consuming a only — a gap in b).
	n := len(b)
	h := make([]int32, n+1)
	e := make([]int32, n+1)
	openExt := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)

	var best int32
	for i := 1; i <= len(a); i++ {
		var diag, f int32 // h[i-1][j-1] and the horizontal gap state
		ca := a[i-1]
		for j := 1; j <= n; j++ {
			up := h[j]
			ev := e[j] - ext
			if v := up - openExt; v > ev {
				ev = v
			}
			if ev < 0 {
				ev = 0
			}
			e[j] = ev

			fv := f - ext
			if v := h[j-1] - openExt; v > fv {
				fv = v
			}
			if fv < 0 {
				fv = 0
			}
			f = fv

			hv := diag + int32(s.Score(ca, b[j-1]))
			if ev > hv {
				hv = ev
			}
			if fv > hv {
				hv = fv
			}
			if hv < 0 {
				hv = 0
			}
			diag = up
			h[j] = hv
			if hv > best {
				best = hv
				aEnd, bEnd = i, j
			}
		}
	}
	return int(best), aEnd, bEnd
}

// op is one traceback column type.
type op = byte

// Traceback operations. OpMatch consumes a position of both sequences
// (match or mismatch); OpAGap consumes b only (a gap in the query);
// OpBGap consumes a only (a gap in the subject).
const (
	OpMatch op = 'M'
	OpAGap  op = 'a'
	OpBGap  op = 'b'
)

// Alignment is a scored local alignment between sequences a (query) and
// b (subject), with half-open spans into each and the edit transcript.
type Alignment struct {
	Score  int
	AStart int // query span [AStart, AEnd)
	AEnd   int
	BStart int // subject span [BStart, BEnd)
	BEnd   int
	// Ops is the transcript from (AStart,BStart) to (AEnd,BEnd) as
	// OpMatch/OpAGap/OpBGap columns. Empty for score-only alignments.
	Ops []byte

	// Column counters derived from the transcript.
	Matches    int
	Mismatches int
	Gaps       int
}

// Identity returns the fraction of transcript columns that are matches,
// 0 when there is no transcript.
func (al *Alignment) Identity() float64 {
	n := len(al.Ops)
	if n == 0 {
		return 0
	}
	return float64(al.Matches) / float64(n)
}

// maxCells bounds the traceback matrix: alignments whose DP matrix
// would exceed this fall back to score-only results.
const maxCells = 1 << 28

// Direction-byte layout for the traceback matrix: two bits for the H
// source plus one extension flag each for the E (vertical) and F
// (horizontal) gap states.
const (
	hFromNone = 0
	hFromDiag = 1
	hFromE    = 2
	hFromF    = 3
	hMask     = 3
	eExtend   = 4 // e[i][j] continued from e[i-1][j]
	fExtend   = 8 // f[i][j] continued from f[i][j-1]
)

// Local computes the Smith–Waterman local alignment of a and b with an
// exact affine-gap traceback. Memory is one byte per DP cell; problems
// larger than maxCells degrade to a score-only result with empty
// transcript and point spans at the alignment end.
func Local(a, b []byte, s Scoring) Alignment {
	if len(a) == 0 || len(b) == 0 {
		return Alignment{}
	}
	if int64(len(a)+1)*int64(len(b)+1) > maxCells {
		score, aEnd, bEnd := LocalScore(a, b, s)
		return Alignment{Score: score, AStart: aEnd, AEnd: aEnd, BStart: bEnd, BEnd: bEnd}
	}
	n := len(b)
	h := make([]int32, n+1)
	e := make([]int32, n+1)
	dir := make([]byte, (len(a)+1)*(n+1))
	openExt := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)

	var best int32
	bestI, bestJ := 0, 0
	for i := 1; i <= len(a); i++ {
		var diag, f int32
		ca := a[i-1]
		row := i * (n + 1)
		for j := 1; j <= n; j++ {
			var d byte
			up := h[j]

			ev := e[j] - ext
			if v := up - openExt; v >= ev {
				ev = v
			} else {
				d |= eExtend
			}
			if ev < 0 {
				ev = 0
			}
			e[j] = ev

			fv := f - ext
			if v := h[j-1] - openExt; v >= fv {
				fv = v
			} else {
				d |= fExtend
			}
			if fv < 0 {
				fv = 0
			}
			f = fv

			hv := diag + int32(s.Score(ca, b[j-1]))
			src := byte(hFromDiag)
			if ev > hv {
				hv = ev
				src = hFromE
			}
			if fv > hv {
				hv = fv
				src = hFromF
			}
			if hv <= 0 {
				hv = 0
				src = hFromNone
			}
			diag = up
			h[j] = hv
			dir[row+j] = d | src
			if hv > best {
				best = hv
				bestI, bestJ = i, j
			}
		}
	}

	if best == 0 {
		return Alignment{}
	}
	al := Alignment{Score: int(best), AEnd: bestI, BEnd: bestJ}

	// Traceback with an explicit state machine over H/E/F.
	const (
		stH = iota
		stE
		stF
	)
	i, j, st := bestI, bestJ, stH
	var ops []byte
loop:
	for i > 0 && j > 0 {
		d := dir[i*(n+1)+j]
		switch st {
		case stH:
			switch d & hMask {
			case hFromNone:
				break loop
			case hFromDiag:
				ops = append(ops, OpMatch)
				if s.Score(a[i-1], b[j-1]) > 0 {
					al.Matches++
				} else {
					al.Mismatches++
				}
				i--
				j--
			case hFromE:
				st = stE
			case hFromF:
				st = stF
			}
		case stE:
			// Vertical gap: consume a[i-1], gap in b.
			ops = append(ops, OpBGap)
			al.Gaps++
			if d&eExtend == 0 {
				st = stH
			}
			i--
		case stF:
			// Horizontal gap: consume b[j-1], gap in a.
			ops = append(ops, OpAGap)
			al.Gaps++
			if d&fExtend == 0 {
				st = stH
			}
			j--
		}
	}
	al.AStart, al.BStart = i, j
	for l, r := 0, len(ops)-1; l < r; l, r = l+1, r-1 {
		ops[l], ops[r] = ops[r], ops[l]
	}
	al.Ops = ops
	return al
}
