package align

import (
	"math/rand"
	"testing"

	"nucleodb/internal/dna"
)

func TestBandedEqualsFullWhenBandCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		a := randomSeq(rng, 1+rng.Intn(50))
		b := randomSeq(rng, 1+rng.Intn(50))
		full, _, _ := LocalScore(a, b, s)
		// A band wide enough to cover every diagonal.
		band := len(a) + len(b)
		got, _, _ := BandedLocalScore(a, b, 0, band, s)
		if got != full {
			t.Fatalf("trial %d: banded(full width) = %d, full = %d\na=%s\nb=%s",
				trial, got, full, dna.String(a), dna.String(b))
		}
	}
}

func TestBandedIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	s := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		a := randomSeq(rng, 1+rng.Intn(80))
		b := randomSeq(rng, 1+rng.Intn(80))
		full, _, _ := LocalScore(a, b, s)
		for _, band := range []int{0, 2, 8} {
			centre := rng.Intn(len(b)+len(a)) - len(a)
			got, _, _ := BandedLocalScore(a, b, centre, band, s)
			if got > full {
				t.Fatalf("banded %d > full %d (band %d centre %d)", got, full, band, centre)
			}
			if got < 0 {
				t.Fatalf("banded score negative: %d", got)
			}
		}
	}
}

func TestBandedFindsOffsetMatch(t *testing.T) {
	s := DefaultScoring()
	// b contains a at offset 10: the match lies on diagonal 10.
	a := seqOf("ACGTACGTACGT")
	prefix := seqOf("TTTTTGTTTG")
	b := append(append([]byte{}, prefix...), a...)
	score, aEnd, bEnd := BandedLocalScore(a, b, 10, 2, s)
	if want := len(a) * s.Match; score != want {
		t.Errorf("banded score = %d, want %d", score, want)
	}
	if aEnd != len(a) || bEnd != len(b) {
		t.Errorf("banded ends = (%d,%d), want (%d,%d)", aEnd, bEnd, len(a), len(b))
	}
	// With the band centred far from the true diagonal the match is
	// invisible.
	miss, _, _ := BandedLocalScore(a, b, -8, 1, s)
	if miss >= score {
		t.Errorf("mis-centred band score %d not below %d", miss, score)
	}
}

func TestBandedHandlesGapsWithinBand(t *testing.T) {
	s := DefaultScoring()
	a := seqOf("ACGTACGTACGTACGTACGT")
	// Delete one base in the middle: alignment needs one gap, shifting
	// the diagonal by one — well within a band of 4.
	b := append(append([]byte{}, a[:10]...), a[11:]...)
	full, _, _ := LocalScore(a, b, s)
	got, _, _ := BandedLocalScore(a, b, 0, 4, s)
	if got != full {
		t.Errorf("banded = %d, full = %d", got, full)
	}
}

func TestBandedLocalMatchesScoreAndReplays(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	s := DefaultScoring()
	for trial := 0; trial < 150; trial++ {
		a := randomSeq(rng, 1+rng.Intn(60))
		b := randomSeq(rng, 1+rng.Intn(60))
		band := rng.Intn(12)
		centre := rng.Intn(len(b)+len(a)) - len(a)
		wantScore, _, _ := BandedLocalScore(a, b, centre, band, s)
		al := BandedLocal(a, b, centre, band, s)
		if al.Score != wantScore {
			t.Fatalf("trial %d: traceback score %d, score-only %d (band %d centre %d)",
				trial, al.Score, wantScore, band, centre)
		}
		if al.Score > 0 {
			checkTranscript(t, a, b, al, s)
		}
	}
}

func TestBandedLocalEqualsLocalWhenWide(t *testing.T) {
	rng := rand.New(rand.NewSource(192))
	s := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		a := randomSeq(rng, 1+rng.Intn(40))
		b := randomSeq(rng, 1+rng.Intn(40))
		full := Local(a, b, s)
		wide := BandedLocal(a, b, 0, len(a)+len(b), s)
		if wide.Score != full.Score {
			t.Fatalf("trial %d: wide band %d, full %d", trial, wide.Score, full.Score)
		}
		if full.Score > 0 {
			if wide.AStart != full.AStart || wide.AEnd != full.AEnd ||
				wide.BStart != full.BStart || wide.BEnd != full.BEnd {
				t.Fatalf("trial %d: spans differ: %+v vs %+v", trial, wide, full)
			}
		}
	}
}

func TestBandedLocalTranscriptOnOffsetMatch(t *testing.T) {
	s := DefaultScoring()
	a := seqOf("ACGTACGTACGT")
	b := append(append([]byte{}, seqOf("TTTTTGTTTG")...), a...)
	al := BandedLocal(a, b, 10, 2, s)
	if al.Score != len(a)*s.Match || al.Matches != len(a) {
		t.Fatalf("offset match alignment = %+v", al)
	}
	if al.BStart != 10 || al.BEnd != 10+len(a) {
		t.Errorf("subject span [%d,%d), want [10,%d)", al.BStart, al.BEnd, 10+len(a))
	}
	checkTranscript(t, a, b, al, s)
}

func TestBandedDegenerate(t *testing.T) {
	s := DefaultScoring()
	if score, _, _ := BandedLocalScore(nil, seqOf("ACGT"), 0, 4, s); score != 0 {
		t.Errorf("empty a score %d", score)
	}
	if score, _, _ := BandedLocalScore(seqOf("ACGT"), nil, 0, 4, s); score != 0 {
		t.Errorf("empty b score %d", score)
	}
	if score, _, _ := BandedLocalScore(seqOf("ACGT"), seqOf("ACGT"), 0, -1, s); score != 0 {
		t.Errorf("negative band score %d", score)
	}
	// Band entirely off the subject.
	if score, _, _ := BandedLocalScore(seqOf("ACGT"), seqOf("ACGT"), 100, 2, s); score != 0 {
		t.Errorf("off-subject band score %d", score)
	}
	// Zero band on the exact diagonal: pure ungapped alignment.
	if score, _, _ := BandedLocalScore(seqOf("ACGT"), seqOf("ACGT"), 0, 0, s); score != 20 {
		t.Errorf("zero-band diagonal score %d, want 20", score)
	}
}
