package align

import "testing"

// fuzzScoring derives a valid Scoring from fuzzer-chosen words, small
// enough that any pair the target accepts fits the 16-bit lanes.
func fuzzScoring(match, mism, open, ext uint16) Scoring {
	return Scoring{
		Match:     1 + int(match%64),
		Mismatch:  int(mism % 64),
		GapOpen:   int(open % 64),
		GapExtend: 1 + int(ext%63),
	}
}

// FuzzBitvectorAlign is the differential fuzz target of the bitvector
// kernel: arbitrary byte sequences (codes, wildcards, junk, Masked)
// under arbitrary small scorings must score bit-identically to the
// scalar LocalScore, and the kernel must accept every pair within its
// declared lane capacity. Run via `make fuzz-smoke` or directly with
// `go test -fuzz=FuzzBitvectorAlign ./internal/align`.
func FuzzBitvectorAlign(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3}, []byte{0, 1, 2, 3}, uint16(5), uint16(4), uint16(10), uint16(2))
	f.Add([]byte("\x00\x00\x00\x00\x00"), []byte("\x01\x01\x01\x01"), uint16(1), uint16(1), uint16(0), uint16(1))
	f.Add([]byte{4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}, []byte{14, 14, 14}, uint16(9), uint16(50), uint16(1), uint16(1))
	f.Add([]byte{0xFF, 0xFF, 0x20, 3, 2, 1, 0}, []byte{3, 2, 1, 0, 0xFF}, uint16(2), uint16(7), uint16(0), uint16(1))
	f.Add([]byte{}, []byte{1, 2, 3}, uint16(5), uint16(0), uint16(2), uint16(1))

	f.Fuzz(func(t *testing.T, a, b []byte, match, mism, open, ext uint16) {
		// Bound the quadratic DP so mutated inputs stay fast.
		if len(a) > 300 {
			a = a[:300]
		}
		if len(b) > 300 {
			b = b[:300]
		}
		s := fuzzScoring(match, mism, open, ext)
		p := NewStripedProfile(a, s)
		var sc StripedScratch
		got, ok := p.Score(b, &sc)
		if !ok {
			// With Match+Mismatch ≤ 127 the capacity floor is ≥ 509, far
			// above the length bound: a refusal here is a kernel bug.
			t.Fatalf("kernel refused len %d×%d under %+v", len(a), len(b), s)
		}
		want, _, _ := LocalScore(a, b, s)
		if got != want {
			t.Fatalf("striped %d != scalar %d under %+v\n a=%v\n b=%v", got, want, s, a, b)
		}
	})
}
