package align

// Linear-space local alignment with full traceback (Myers–Miller).
//
// Local's direction matrix costs one byte per DP cell, which caps the
// problem sizes it can trace. LocalLinear produces an optimal local
// alignment in O(len(b)) working space: two score-only passes locate
// the end and start of the optimal local alignment, and a
// divide-and-conquer global alignment (Myers & Miller, CABIOS 1988,
// adapted from cost minimisation to score maximisation) reconstructs
// the transcript between them.
//
// Gap costs follow the g + h·k decomposition used by Myers & Miller:
// a gap of k columns costs g (= GapOpen) once plus h (= GapExtend) per
// column, identical to the affine model elsewhere in this package.
// The boundary parameters tb and te carry whether a gap touching the
// top or bottom of a subproblem has already paid its g in an enclosing
// call (0) or must pay it here (g).

// LocalLinear computes the Smith–Waterman local alignment of a and b
// with an affine-gap transcript in linear space and O(len(a)·len(b))
// time, roughly twice the constant factor of the score-only pass.
// The alignment score and spans always equal Local's; the transcript
// is an optimal alignment (possibly a different co-optimal one).
func LocalLinear(a, b []byte, s Scoring) Alignment {
	score, aEnd, bEnd := LocalScore(a, b, s)
	if score == 0 {
		return Alignment{}
	}
	// The optimal local alignment of the reversed prefixes ends where
	// the forward alignment starts.
	ra := reverseSeq(a[:aEnd])
	rb := reverseSeq(b[:bEnd])
	rScore, raEnd, rbEnd := LocalScore(ra, rb, s)
	if rScore != score {
		// Both passes optimise the same quantity; a mismatch would be
		// a bug in LocalScore, not an input condition.
		panic("align: forward/reverse local score mismatch")
	}
	aStart := aEnd - raEnd
	bStart := bEnd - rbEnd

	mm := &mmAligner{a: a[aStart:aEnd], b: b[bStart:bEnd], s: s}
	n := len(mm.b) + 1
	mm.cc = make([]int32, n)
	mm.dd = make([]int32, n)
	mm.rr = make([]int32, n)
	mm.ss = make([]int32, n)
	g := int32(s.GapOpen)
	mm.diff(0, 0, len(mm.a), len(mm.b), g, g)

	al := Alignment{
		Score:  score,
		AStart: aStart,
		AEnd:   aEnd,
		BStart: bStart,
		BEnd:   bEnd,
		Ops:    mm.ops,
	}
	// Replay to fill the counters.
	i, j := aStart, bStart
	for _, o := range al.Ops {
		switch o {
		case OpMatch:
			if s.Score(a[i], b[j]) > 0 {
				al.Matches++
			} else {
				al.Mismatches++
			}
			i++
			j++
		case OpAGap:
			al.Gaps++
			j++
		case OpBGap:
			al.Gaps++
			i++
		}
	}
	return al
}

func reverseSeq(x []byte) []byte {
	r := make([]byte, len(x))
	for i, c := range x {
		r[len(x)-1-i] = c
	}
	return r
}

const mmNegInf = int32(-1 << 29)

// mmAligner carries the divide-and-conquer state.
type mmAligner struct {
	a, b []byte
	s    Scoring
	// cc[j]: best score of the forward subalignment ending at column j
	// of the split row; dd[j]: ditto constrained to end mid-deletion.
	// rr/ss are the reverse counterparts.
	cc, dd []int32
	rr, ss []int32
	ops    []byte
}

func (m *mmAligner) g() int32 { return int32(m.s.GapOpen) }
func (m *mmAligner) h() int32 { return int32(m.s.GapExtend) }

func (m *mmAligner) emit(op byte, n int) {
	for k := 0; k < n; k++ {
		m.ops = append(m.ops, op)
	}
}

// diff emits an optimal global alignment of a[i0:i0+M] with
// b[j0:j0+N]. tb (te) is the open cost an initial (final) deletion run
// must pay: g for a fresh gap, 0 when an enclosing call already opened
// the gap this run continues.
func (m *mmAligner) diff(i0, j0, M, N int, tb, te int32) {
	g, h := m.g(), m.h()
	if N == 0 {
		if M > 0 {
			m.emit(OpBGap, M)
		}
		return
	}
	if M == 0 {
		m.emit(OpAGap, N)
		return
	}
	if M == 1 {
		m.diffRow(i0, j0, N, tb, te)
		return
	}

	imid := M / 2

	// Forward pass over a[i0 : i0+imid].
	cc, dd := m.cc, m.dd
	cc[0] = 0
	t := -g
	for j := 1; j <= N; j++ {
		t -= h
		cc[j] = t
		dd[j] = t - g
	}
	dd[0] = mmNegInf // deletion state at (0,0) is undefined
	t = -tb
	for i := 1; i <= imid; i++ {
		sDiag := cc[0]
		t -= h
		c := t
		cc[0] = c
		dd[0] = c // the column-0 run is itself a deletion state
		e := mmNegInf
		for j := 1; j <= N; j++ {
			e = maxI32(e, c-g) - h
			dd[j] = maxI32(dd[j], cc[j]-g) - h
			c = maxI32(dd[j], maxI32(e, sDiag+int32(m.s.Score(m.a[i0+i-1], m.b[j0+j-1]))))
			sDiag = cc[j]
			cc[j] = c
		}
	}

	// Reverse pass over a[i0+imid : i0+M], right to left.
	rr, ss := m.rr, m.ss
	rr[N] = 0
	t = -g
	for j := N - 1; j >= 0; j-- {
		t -= h
		rr[j] = t
		ss[j] = t - g
	}
	ss[N] = mmNegInf
	t = -te
	M2 := M - imid
	for i := 1; i <= M2; i++ {
		sDiag := rr[N]
		t -= h
		c := t
		rr[N] = c
		ss[N] = c
		e := mmNegInf
		for j := N - 1; j >= 0; j-- {
			e = maxI32(e, c-g) - h
			ss[j] = maxI32(ss[j], rr[j]-g) - h
			c = maxI32(ss[j], maxI32(e, sDiag+int32(m.s.Score(m.a[i0+M-i], m.b[j0+j]))))
			sDiag = rr[j]
			rr[j] = c
		}
	}

	// Choose the split column: type 1 meets in a node, type 2 meets
	// mid-deletion (the deletion's second g is refunded).
	best := mmNegInf
	bestJ, bestGap := 0, false
	for j := 0; j <= N; j++ {
		if v := cc[j] + rr[j]; v > best {
			best = v
			bestJ, bestGap = j, false
		}
		if dd[j] > mmNegInf/2 && ss[j] > mmNegInf/2 {
			if v := dd[j] + ss[j] + g; v > best {
				best = v
				bestJ, bestGap = j, true
			}
		}
	}

	if bestGap {
		// Rows imid-1 and imid both lie in the crossing deletion.
		m.diff(i0, j0, imid-1, bestJ, tb, 0)
		m.emit(OpBGap, 2)
		m.diff(i0+imid+1, j0+bestJ, M-imid-1, N-bestJ, 0, te)
	} else {
		m.diff(i0, j0, imid, bestJ, tb, g)
		m.diff(i0+imid, j0+bestJ, M-imid, N-bestJ, g, te)
	}
}

// diffRow is the M = 1 base case: one a-base against b[j0:j0+N] with
// N ≥ 1.
func (m *mmAligner) diffRow(i0, j0, N int, tb, te int32) {
	g, h := m.g(), m.h()
	ca := m.a[i0]

	// Option 1: the a-base aligns to some b[j0+k]; the other columns
	// are insertion runs before and after.
	bestK, best := -1, mmNegInf
	for k := 0; k < N; k++ {
		v := int32(m.s.Score(ca, m.b[j0+k]))
		if k > 0 {
			v -= g + int32(k)*h
		}
		if k < N-1 {
			v -= g + int32(N-1-k)*h
		}
		if v > best {
			best = v
			bestK = k
		}
	}
	// Option 2: the a-base is deleted (one-column deletion touching
	// both boundaries, paying the cheaper boundary open) and all of B
	// is one insertion run.
	del := -(minI32(tb, te) + h) - (g + int32(N)*h)
	if del > best {
		if tb <= te {
			// The deletion continues a gap opened above: keep it
			// adjacent to the preceding transcript columns.
			m.emit(OpBGap, 1)
			m.emit(OpAGap, N)
		} else {
			m.emit(OpAGap, N)
			m.emit(OpBGap, 1)
		}
		return
	}
	m.emit(OpAGap, bestK)
	m.emit(OpMatch, 1)
	m.emit(OpAGap, N-1-bestK)
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
