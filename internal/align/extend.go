package align

// ExtendUngapped grows an exact seed hit into an ungapped high-scoring
// segment pair, the BLAST1 extension step. The seed is a matching
// region a[aPos:aPos+seedLen] == b[bPos:bPos+seedLen] (the caller
// guarantees the match); extension proceeds independently left and
// right, accumulating substitution scores and stopping when the running
// score drops more than xdrop below the best seen in that direction.
//
// It returns the segment's score and its half-open spans in a and b.
//
//cafe:hotpath
func ExtendUngapped(a, b []byte, aPos, bPos, seedLen int, s Scoring, xdrop int) (score, aStart, aEnd, bStart, bEnd int) {
	score = seedLen * s.Match
	aStart, aEnd = aPos, aPos+seedLen
	bStart, bEnd = bPos, bPos+seedLen

	// Leftward extension.
	run, best := 0, 0
	for i, j := aPos-1, bPos-1; i >= 0 && j >= 0; i, j = i-1, j-1 {
		run += s.Score(a[i], b[j])
		if run > best {
			best = run
			aStart, bStart = i, j
		}
		if best-run > xdrop {
			break
		}
	}
	score += best

	// Rightward extension.
	run, best = 0, 0
	for i, j := aPos+seedLen, bPos+seedLen; i < len(a) && j < len(b); i, j = i+1, j+1 {
		run += s.Score(a[i], b[j])
		if run > best {
			best = run
			aEnd, bEnd = i+1, j+1
		}
		if best-run > xdrop {
			break
		}
	}
	score += best
	return score, aStart, aEnd, bStart, bEnd
}
