package align

import (
	"math/rand"
	"testing"
)

// bruteBandedCells counts (i,j) pairs inside both the matrix and the
// diagonal strip — the definition BandedCells must match.
func bruteBandedCells(la, lb, centre, band int) int64 {
	var cells int64
	for i := 0; i < la; i++ {
		for j := 0; j < lb; j++ {
			if d := j - i; d >= centre-band && d <= centre+band {
				cells++
			}
		}
	}
	return cells
}

func TestBandedCellsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		la, lb := 1+rng.Intn(80), 1+rng.Intn(80)
		centre := rng.Intn(161) - 80
		band := rng.Intn(40)
		got := BandedCells(la, lb, centre, band)
		want := bruteBandedCells(la, lb, centre, band)
		if got != want {
			t.Fatalf("BandedCells(%d,%d,%d,%d) = %d, want %d", la, lb, centre, band, got, want)
		}
	}
}

func TestCellsEdgeCases(t *testing.T) {
	if got := LocalCells(0, 10); got != 0 {
		t.Fatalf("LocalCells(0,10) = %d", got)
	}
	if got := LocalCells(300, 500); got != 150000 {
		t.Fatalf("LocalCells(300,500) = %d", got)
	}
	if got := BandedCells(10, 10, 0, -1); got != 0 {
		t.Fatalf("negative band: %d cells", got)
	}
	// Band wider than the matrix degenerates to the full matrix.
	if got := BandedCells(20, 30, 0, 100); got != LocalCells(20, 30) {
		t.Fatalf("wide band = %d, want full matrix %d", got, LocalCells(20, 30))
	}
	// Band entirely off the matrix touches nothing.
	if got := BandedCells(10, 10, 1000, 5); got != 0 {
		t.Fatalf("off-matrix band: %d cells", got)
	}
}
