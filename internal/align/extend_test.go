package align

import (
	"testing"
)

func TestExtendUngappedPerfect(t *testing.T) {
	s := DefaultScoring()
	a := seqOf("ACGTACGTACGT")
	b := seqOf("ACGTACGTACGT")
	// Seed in the middle; extension must cover both sequences fully.
	score, aStart, aEnd, bStart, bEnd := ExtendUngapped(a, b, 4, 4, 4, s, 20)
	if want := len(a) * s.Match; score != want {
		t.Errorf("score = %d, want %d", score, want)
	}
	if aStart != 0 || bStart != 0 || aEnd != len(a) || bEnd != len(b) {
		t.Errorf("spans = a[%d,%d) b[%d,%d)", aStart, aEnd, bStart, bEnd)
	}
}

func TestExtendUngappedStopsAtXDrop(t *testing.T) {
	s := DefaultScoring()
	// Matching core flanked by long mismatching runs: extension must
	// stop near the core boundary.
	a := seqOf("AAAAAAAAAA" + "CGCGCGCG" + "AAAAAAAAAA")
	b := seqOf("TTTTTTTTTT" + "CGCGCGCG" + "TTTTTTTTTT")
	score, aStart, aEnd, bStart, bEnd := ExtendUngapped(a, b, 10, 10, 8, s, 8)
	if want := 8 * s.Match; score != want {
		t.Errorf("score = %d, want %d", score, want)
	}
	if aStart != 10 || aEnd != 18 || bStart != 10 || bEnd != 18 {
		t.Errorf("spans = a[%d,%d) b[%d,%d), want [10,18)", aStart, aEnd, bStart, bEnd)
	}
}

func TestExtendUngappedCrossesSmallDip(t *testing.T) {
	s := DefaultScoring()
	// One mismatch inside a long match: a generous x-drop lets the
	// extension climb through it.
	a := seqOf("ACGTACGTACGTACGTACGT")
	b := append([]byte{}, a...)
	b[2] ^= 1 // force a mismatch near the left end
	score, aStart, _, bStart, _ := ExtendUngapped(a, b, 10, 10, 4, s, 50)
	if aStart != 0 || bStart != 0 {
		t.Errorf("extension did not reach the start: a=%d b=%d", aStart, bStart)
	}
	want := (len(a)-1)*s.Match - s.Mismatch
	if score != want {
		t.Errorf("score = %d, want %d", score, want)
	}
}

func TestExtendUngappedAtBoundaries(t *testing.T) {
	s := DefaultScoring()
	a := seqOf("ACGT")
	b := seqOf("ACGT")
	// Seed covering the whole sequences: nothing to extend.
	score, aStart, aEnd, bStart, bEnd := ExtendUngapped(a, b, 0, 0, 4, s, 10)
	if score != 20 || aStart != 0 || aEnd != 4 || bStart != 0 || bEnd != 4 {
		t.Errorf("whole-sequence seed: score=%d spans a[%d,%d) b[%d,%d)", score, aStart, aEnd, bStart, bEnd)
	}
}

func TestExtendUngappedNeverBelowSeedScore(t *testing.T) {
	s := DefaultScoring()
	a := seqOf("TTTTACGTTTTT")
	b := seqOf("GGGGACGTGGGG")
	score, _, _, _, _ := ExtendUngapped(a, b, 4, 4, 4, s, 4)
	if score < 4*s.Match {
		t.Errorf("extension lowered the seed score: %d", score)
	}
}
