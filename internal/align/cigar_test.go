package align

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCIGARKnown(t *testing.T) {
	al := Alignment{Ops: []byte{
		OpMatch, OpMatch, OpMatch,
		OpAGap, OpAGap,
		OpMatch,
		OpBGap,
		OpMatch, OpMatch,
	}}
	if got := al.CIGAR(); got != "3M2D1M1I2M" {
		t.Errorf("CIGAR = %q, want 3M2D1M1I2M", got)
	}
}

func TestCIGAREmpty(t *testing.T) {
	al := Alignment{}
	if got := al.CIGAR(); got != "" {
		t.Errorf("empty CIGAR = %q", got)
	}
}

func TestCIGARRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	s := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		a := randomSeq(rng, 20+rng.Intn(60))
		b := randomSeq(rng, 20+rng.Intn(60))
		al := Local(a, b, s)
		if len(al.Ops) == 0 {
			continue
		}
		ops, err := ParseCIGAR(al.CIGAR())
		if err != nil {
			t.Fatalf("ParseCIGAR(%q): %v", al.CIGAR(), err)
		}
		if !bytes.Equal(ops, al.Ops) {
			t.Fatalf("round trip changed ops: %q", al.CIGAR())
		}
	}
}

func TestParseCIGARErrors(t *testing.T) {
	for _, bad := range []string{"M", "3", "3X", "03M4", "3M0I"} {
		if _, err := ParseCIGAR(bad); err == nil {
			t.Errorf("ParseCIGAR(%q) accepted", bad)
		}
	}
}

func TestParseCIGARValid(t *testing.T) {
	ops, err := ParseCIGAR("2M1D3M")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{OpMatch, OpMatch, OpAGap, OpMatch, OpMatch, OpMatch}
	if !bytes.Equal(ops, want) {
		t.Errorf("ops = %q, want %q", ops, want)
	}
}
