package align

import (
	"math/rand"
	"testing"
)

func TestLocalLinearMatchesLocalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	s := DefaultScoring()
	for trial := 0; trial < 400; trial++ {
		a := randomSeq(rng, 1+rng.Intn(70))
		b := randomSeq(rng, 1+rng.Intn(70))
		full := Local(a, b, s)
		lin := LocalLinear(a, b, s)
		if lin.Score != full.Score {
			t.Fatalf("trial %d: linear score %d, full %d", trial, lin.Score, full.Score)
		}
		if full.Score == 0 {
			continue
		}
		if lin.AStart != full.AStart || lin.AEnd != full.AEnd ||
			lin.BStart != full.BStart || lin.BEnd != full.BEnd {
			// Co-optimal alignments may differ in span only if the
			// scores still replay; spans come from the same two
			// score passes, so they must agree exactly.
			t.Fatalf("trial %d: spans differ: linear %+v vs full %+v", trial, lin, full)
		}
		checkTranscript(t, a, b, lin, s)
	}
}

func TestLocalLinearGapHeavyScoring(t *testing.T) {
	// Cheap gaps make optimal paths gap-rich, stressing the type-2
	// (mid-deletion) splits.
	rng := rand.New(rand.NewSource(102))
	s := Scoring{Match: 5, Mismatch: 10, GapOpen: 1, GapExtend: 1}
	for trial := 0; trial < 400; trial++ {
		a := randomSeq(rng, 1+rng.Intn(50))
		b := randomSeq(rng, 1+rng.Intn(50))
		full := Local(a, b, s)
		lin := LocalLinear(a, b, s)
		if lin.Score != full.Score {
			t.Fatalf("trial %d: linear score %d, full %d", trial, lin.Score, full.Score)
		}
		if full.Score > 0 {
			checkTranscript(t, a, b, lin, s)
		}
	}
}

func TestLocalLinearLongIndel(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	s := DefaultScoring()
	// b = a with a 30-base block deleted: the optimal alignment needs
	// one long gap, exercising deep type-2 recursion.
	a := randomSeq(rng, 200)
	b := append(append([]byte{}, a[:100]...), a[130:]...)
	full := Local(a, b, s)
	lin := LocalLinear(a, b, s)
	if lin.Score != full.Score {
		t.Fatalf("linear %d, full %d", lin.Score, full.Score)
	}
	if lin.Gaps < 30 {
		t.Errorf("expected a ≥30-column gap, got %d gap columns", lin.Gaps)
	}
	checkTranscript(t, a, b, lin, s)
}

func TestLocalLinearEmptyAndNoMatch(t *testing.T) {
	s := DefaultScoring()
	if al := LocalLinear(nil, seqOf("ACGT"), s); al.Score != 0 || len(al.Ops) != 0 {
		t.Errorf("empty query = %+v", al)
	}
	if al := LocalLinear(seqOf("AAAA"), seqOf("TTTT"), s); al.Score != 0 {
		t.Errorf("no-match = %+v", al)
	}
}

func TestLocalLinearIdenticalSequences(t *testing.T) {
	s := DefaultScoring()
	a := seqOf("GATTACAGATTACAGATTACA")
	al := LocalLinear(a, a, s)
	if al.Score != len(a)*s.Match || al.Matches != len(a) || al.Gaps != 0 {
		t.Errorf("self alignment = %+v", al)
	}
	checkTranscript(t, a, a, al, s)
}

func TestLocalLinearLargeStaysLinear(t *testing.T) {
	// Sizes where Local's byte matrix would be ~100 MB work fine in
	// linear space. Keep it modest for test time but beyond what the
	// quadratic direction matrix would like.
	rng := rand.New(rand.NewSource(104))
	s := DefaultScoring()
	root := randomSeq(rng, 4000)
	b := append([]byte{}, root...)
	// Scatter mutations.
	for i := 0; i < 200; i++ {
		p := rng.Intn(len(b))
		b[p] = byte(rng.Intn(4))
	}
	full := Local(root, b, s)
	lin := LocalLinear(root, b, s)
	if lin.Score != full.Score {
		t.Fatalf("linear %d, full %d", lin.Score, full.Score)
	}
	checkTranscript(t, root, b, lin, s)
}
