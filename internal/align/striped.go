package align

// Bit-parallel ("bitvector") Smith–Waterman scoring: a Farrar-style
// query-profile–striped kernel that packs four 16-bit DP lanes into one
// uint64 and advances all four with plain word arithmetic — pure Go, no
// assembly. The kernel computes the exact affine-gap local alignment
// score (identical to LocalScore, whose recurrences it transposes), but
// no traceback: the fine phase uses it to rank candidates and falls
// back to the scalar Local for the transcripts of reported results.
//
// Layout. The query is striped Farrar-style: with segLen = ⌈n/4⌉
// words, lane l of word w holds query position l·segLen + w. Striping
// puts each lane's vertical (gap-in-subject) dependency in the same
// lane of the previous word, so the F state threads through the inner
// loop as a single carried vector, with the classic lazy-F correction
// loop handling the rare cross-stripe propagation.
//
// Lanes are unsigned 16-bit values kept ≤ laneCap (0x7FFF): every DP
// value is a local-alignment score (≥ 0) bounded by min(n,m)·Match, and
// Supports refuses pairs whose bound could reach the lane top — those
// fall back to the scalar kernel. Keeping the per-lane top bit clear is
// what makes the branch-free SWAR primitives below exact: saturating
// subtraction and maximum both borrow the spare bit as a per-lane
// comparison flag.

import "nucleodb/internal/dna"

const (
	bvLanes    = 4  // 16-bit lanes per uint64
	bvLaneBits = 16 // bits per lane

	// laneCap is the largest value any lane may hold: the per-lane top
	// bit must stay clear for laneSubSat/laneMax to be exact.
	laneCap = 0x7FFF

	laneHi   = 0x8000_8000_8000_8000 // per-lane top bits
	laneOnes = 0x0001_0001_0001_0001 // 1 in every lane
)

// packLane broadcasts v (0 ≤ v ≤ laneCap) into all four lanes.
func packLane(v int) uint64 { return uint64(v) * laneOnes }

// laneSubSat returns x−y per 16-bit lane, saturated at 0 (the DP's
// "clamp negative scores to zero"). Both operands must be ≤ laneCap in
// every lane. Setting each lane's top bit in x prevents borrows from
// crossing lanes; the surviving top bit then flags the lanes where
// x ≥ y, and spreading it to a full-lane mask keeps exactly those
// differences.
//
//cafe:hotpath
func laneSubSat(x, y uint64) uint64 {
	z := (x | laneHi) - y
	keep := ((z & laneHi) >> 15) * 0xFFFF
	return (z ^ laneHi) & keep
}

// laneMax returns the per-lane maximum of x and y (lanes ≤ laneCap).
//
//cafe:hotpath
func laneMax(x, y uint64) uint64 {
	z := (x | laneHi) - y
	keep := ((z & laneHi) >> 15) * 0xFFFF // full lanes where x ≥ y
	return (x & keep) | (y &^ keep)
}

// StripedScratch is the per-worker mutable state of one striped score
// evaluation: the current/previous H columns and the E (gap-in-query
// direction) column. One scratch belongs to one goroutine at a time;
// the fine phase pools one per worker.
type StripedScratch struct {
	cur, prev, e []uint64 //cafe:pooled DP columns, resized and reused across subjects by one worker
}

// resize prepares the scratch for segLen words, growing once at the
// high-water mark and zeroing the active prefix (the DP boundary).
func (sc *StripedScratch) resize(segLen int) {
	if cap(sc.cur) < segLen {
		sc.cur = make([]uint64, segLen)
		sc.prev = make([]uint64, segLen)
		sc.e = make([]uint64, segLen)
	}
	sc.cur = sc.cur[:segLen]
	sc.prev = sc.prev[:segLen]
	sc.e = sc.e[:segLen]
	clear(sc.cur)
	clear(sc.prev)
	clear(sc.e)
}

// StripedProfile is the striped query profile of the bitvector kernel:
// for every subject code, the biased substitution scores of all query
// positions, in stripe order. Building it costs O(16·n) once per query
// strand; scoring a subject then never calls Scoring.Score. A profile
// is immutable after Build and safe for concurrent Score calls with
// distinct scratches.
//
//cafe:frozen
type StripedProfile struct {
	n       int      // query length
	segLen  int      // words per column
	prof    []uint64 // (dna.NumCodes+1) rows × segLen words, biased by Mismatch
	masks   []uint64 // full lanes at real query positions, 0 at padding
	hasPad  bool     // any padding lane at all (n % bvLanes != 0 or short query)
	bias    uint64   // packed Mismatch
	openExt uint64   // packed GapOpen+GapExtend
	ext     uint64   // packed GapExtend
	// maxMin is the largest min(query, subject) length whose score
	// bound fits the lanes; 0 marks a scoring whose parameters alone
	// overflow (Supports then always refuses).
	maxMin int
}

// NewStripedProfile builds the striped profile of query q under s. The
// returned profile always builds; Supports reports per-subject whether
// the lanes can hold the score bound.
func NewStripedProfile(q []byte, s Scoring) *StripedProfile {
	p := &StripedProfile{}
	p.Build(q, s)
	return p
}

// Build (re)initialises the profile for a new query, reusing backing
// storage — the searcher rebuilds one pooled profile per strand.
func (p *StripedProfile) Build(q []byte, s Scoring) {
	n := len(q)
	segLen := (n + bvLanes - 1) / bvLanes
	p.n, p.segLen = n, segLen
	p.bias = packLane(s.Mismatch & laneCap)
	p.openExt = packLane((s.GapOpen + s.GapExtend) & laneCap)
	p.ext = packLane(s.GapExtend & laneCap)

	// Lane capacity: the top score of a local alignment of lengths
	// (n, m) is min(n,m)·Match, and the pre-bias add in the inner loop
	// peaks at that plus Match+Mismatch. Refuse anything that could
	// touch the per-lane top bit.
	p.maxMin = 0
	if s.Match > 0 && s.Match+s.Mismatch <= laneCap &&
		s.GapOpen+s.GapExtend <= laneCap {
		p.maxMin = (laneCap - s.Match - s.Mismatch) / s.Match
	}

	rows := int(dna.NumCodes) + 1 // one per code plus the never-matches row
	if cap(p.prof) < rows*segLen {
		p.prof = make([]uint64, rows*segLen)
	}
	p.prof = p.prof[:rows*segLen]
	if cap(p.masks) < segLen {
		p.masks = make([]uint64, segLen)
	}
	p.masks = p.masks[:segLen]

	for c := 0; c < rows; c++ {
		row := p.prof[c*segLen : (c+1)*segLen]
		for w := 0; w < segLen; w++ {
			var word uint64
			for l := 0; l < bvLanes; l++ {
				pos := l*segLen + w
				if pos >= n {
					continue // padding lane: weight irrelevant, H is masked
				}
				var sc int
				if c < int(dna.NumCodes) {
					sc = s.Score(q[pos], byte(c))
				} else {
					sc = -s.Mismatch // subject byte outside the code space
				}
				word |= uint64(uint16(sc+s.Mismatch)) << (bvLaneBits * l)
			}
			row[w] = word
		}
	}
	p.hasPad = false
	for w := 0; w < segLen; w++ {
		var mask uint64
		for l := 0; l < bvLanes; l++ {
			if l*segLen+w < n {
				mask |= uint64(0xFFFF) << (bvLaneBits * l)
			}
		}
		p.masks[w] = mask
		if mask != ^uint64(0) {
			p.hasPad = true
		}
	}
}

// Supports reports whether the lanes can hold the DP values of this
// query against a subject of length lb. Callers fall back to the
// scalar kernel when it returns false ("queries longer than the
// striping supports" — though the binding length is whichever sequence
// is shorter, since that bounds the score).
//
//cafe:hotpath
func (p *StripedProfile) Supports(lb int) bool {
	if p.maxMin <= 0 {
		return false
	}
	minLen := p.n
	if lb < minLen {
		minLen = lb
	}
	return minLen <= p.maxMin
}

// Score computes the exact Smith–Waterman affine-gap local alignment
// score of the profile's query against subject b — bit for bit the
// score LocalScore returns — using sc as scratch. It reports false
// (and does no work) when the pair exceeds the lanes' capacity; the
// caller then runs the scalar kernel.
//
//cafe:hotpath
func (p *StripedProfile) Score(b []byte, sc *StripedScratch) (int, bool) {
	if p.n == 0 || len(b) == 0 {
		return 0, true
	}
	if !p.Supports(len(b)) {
		return 0, false
	}
	segLen := p.segLen
	sc.resize(segLen) //cafe:allow amortised scratch; stabilises at the high-water segment length
	// Reslice to the exact segment length so the inner loops'
	// w < segLen bound provably covers every index (bounds-check
	// elimination keeps the hot loop branch-free).
	cur, prev, e := sc.cur[:segLen], sc.prev[:segLen], sc.e[:segLen]
	masks := p.masks[:segLen]
	bias, openExt, ext := p.bias, p.openExt, p.ext
	hasPad := p.hasPad
	var best uint64

	for i := 0; i < len(b); i++ {
		c := b[i]
		if c >= dna.NumCodes {
			c = dna.NumCodes // the never-matches profile row
		}
		prof := p.prof[int(c)*segLen : (int(c)+1)*segLen]

		// Diagonal carry-in: the previous column's last word, shifted
		// one lane up, so lane l starts from lane l−1's stripe end.
		// Lane 0 gets the zero boundary.
		vH := prev[segLen-1] << bvLaneBits
		var vF uint64
		for w := 0; w < segLen; w++ {
			// H = max(0, diag + W, E, F). The profile is biased by
			// Mismatch so the add stays non-negative; the saturating
			// subtract of the bias restores the true value and clamps
			// at zero in one step.
			vH = laneSubSat(vH+prof[w], bias)
			vE := e[w]
			vH = laneMax(vH, vE)
			vH = laneMax(vH, vF)
			if hasPad {
				vH &= masks[w]
			}
			cur[w] = vH
			best = laneMax(best, vH)

			// Next-column E and next-word F, both fed by H − (open+ext)
			// and decayed by ext.
			vHGap := laneSubSat(vH, openExt)
			e[w] = laneMax(laneSubSat(vE, ext), vHGap)
			vF = laneMax(laneSubSat(vF, ext), vHGap)

			vH = prev[w] // diagonal input for the next word
		}

		// Lazy-F: propagate F across stripe boundaries. Each pass
		// shifts F one lane up and re-sweeps the column until F can no
		// longer improve any cell (F ≤ H − (open+ext) everywhere means
		// every later F value is dominated by one the main loop already
		// produced). H cells raised here also re-feed the E column —
		// the scalar recurrence allows a gap-gap corner, so exact
		// equality needs E to see the corrected H.
	lazyF:
		for k := 0; k < bvLanes; k++ {
			vF <<= bvLaneBits
			for w := 0; w < segLen; w++ {
				vH := cur[w]
				if laneSubSat(vF, laneSubSat(vH, openExt)) == 0 {
					break lazyF
				}
				vH = laneMax(vH, vF)
				if hasPad {
					vH &= masks[w]
				}
				cur[w] = vH
				best = laneMax(best, vH)
				e[w] = laneMax(e[w], laneSubSat(vH, openExt))
				vF = laneSubSat(vF, ext)
			}
		}

		cur, prev = prev, cur
	}

	score := 0
	for l := 0; l < bvLanes; l++ {
		if v := int(best >> (bvLaneBits * l) & 0xFFFF); v > score {
			score = v
		}
	}
	return score, true
}

// StripedLocalScore is the one-shot form of the bitvector kernel: it
// builds the profile, scores a against b, and reports whether the pair
// was within lane capacity. Equivalent to LocalScore(a, b, s)'s score
// when ok; the fine phase uses the profile/scratch form to amortise
// the build across candidates.
func StripedLocalScore(a, b []byte, s Scoring) (score int, ok bool) {
	var sc StripedScratch
	return NewStripedProfile(a, s).Score(b, &sc)
}
