package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nucleodb/internal/dna"
)

// refLocalScore is an O(n·m) reference Smith–Waterman with affine gaps
// implemented with explicit full matrices and no clamping tricks, for
// cross-checking the optimised versions.
func refLocalScore(a, b []byte, s Scoring) int {
	const negInf = -(1 << 28)
	n, m := len(a), len(b)
	H := make([][]int, n+1)
	E := make([][]int, n+1)
	F := make([][]int, n+1)
	for i := range H {
		H[i] = make([]int, m+1)
		E[i] = make([]int, m+1)
		F[i] = make([]int, m+1)
		for j := range E[i] {
			E[i][j] = negInf
			F[i][j] = negInf
		}
	}
	best := 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			E[i][j] = max(E[i-1][j]-s.GapExtend, H[i-1][j]-s.GapOpen-s.GapExtend)
			F[i][j] = max(F[i][j-1]-s.GapExtend, H[i][j-1]-s.GapOpen-s.GapExtend)
			H[i][j] = max(max(0, H[i-1][j-1]+s.Score(a[i-1], b[j-1])), max(E[i][j], F[i][j]))
			if H[i][j] > best {
				best = H[i][j]
			}
		}
	}
	return best
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func seqOf(s string) []byte { return dna.MustEncode(s) }

func TestLocalScoreKnownCases(t *testing.T) {
	s := DefaultScoring()
	cases := []struct {
		a, b string
		want int
	}{
		{"", "ACGT", 0},
		{"ACGT", "", 0},
		{"ACGT", "ACGT", 20},                // perfect match ×4
		{"AAAA", "TTTT", 0},                 // nothing aligns
		{"ACGT", "TACGTT", 20},              // embedded match
		{"ACGTACGT", "ACGT", 20},            // subject shorter
		{"AACGTACGTAA", "CCACGTACGTCC", 40}, // 8-base core, mismatched flanks
	}
	for _, c := range cases {
		got, _, _ := LocalScore(seqOf(c.a), seqOf(c.b), s)
		if got != c.want {
			t.Errorf("LocalScore(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if ref := refLocalScore(seqOf(c.a), seqOf(c.b), s); got != ref {
			t.Errorf("LocalScore(%s,%s) = %d, reference %d", c.a, c.b, got, ref)
		}
	}
}

func TestLocalScoreEndPositions(t *testing.T) {
	s := DefaultScoring()
	// The best local alignment of ACGT inside TTACGTTT ends at a=4, b=6.
	score, aEnd, bEnd := LocalScore(seqOf("ACGT"), seqOf("TTACGTTT"), s)
	if score != 20 || aEnd != 4 || bEnd != 6 {
		t.Errorf("got score=%d aEnd=%d bEnd=%d, want 20,4,6", score, aEnd, bEnd)
	}
}

func TestLocalScoreMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	s := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		a := randomSeq(rng, 1+rng.Intn(60))
		b := randomSeq(rng, 1+rng.Intn(60))
		got, _, _ := LocalScore(a, b, s)
		want := refLocalScore(a, b, s)
		if got != want {
			t.Fatalf("trial %d: LocalScore = %d, reference %d\na=%s\nb=%s",
				trial, got, want, dna.String(a), dna.String(b))
		}
	}
}

func TestLocalTracebackConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := DefaultScoring()
	for trial := 0; trial < 100; trial++ {
		a := randomSeq(rng, 1+rng.Intn(80))
		b := randomSeq(rng, 1+rng.Intn(80))
		al := Local(a, b, s)
		want := refLocalScore(a, b, s)
		if al.Score != want {
			t.Fatalf("trial %d: Local score %d, reference %d", trial, al.Score, want)
		}
		if want == 0 {
			continue
		}
		checkTranscript(t, a, b, al, s)
	}
}

// checkTranscript replays the transcript and verifies spans, counters
// and that the recomputed score equals al.Score.
func checkTranscript(t *testing.T, a, b []byte, al Alignment, s Scoring) {
	t.Helper()
	i, j := al.AStart, al.BStart
	score := 0
	matches, mismatches, gaps := 0, 0, 0
	inAGap, inBGap := false, false
	for _, o := range al.Ops {
		switch o {
		case OpMatch:
			sc := s.Score(a[i], b[j])
			score += sc
			if sc > 0 {
				matches++
			} else {
				mismatches++
			}
			i++
			j++
			inAGap, inBGap = false, false
		case OpAGap:
			if !inAGap {
				score -= s.GapOpen
			}
			score -= s.GapExtend
			gaps++
			j++
			inAGap, inBGap = true, false
		case OpBGap:
			if !inBGap {
				score -= s.GapOpen
			}
			score -= s.GapExtend
			gaps++
			i++
			inBGap, inAGap = true, false
		default:
			t.Fatalf("unknown op %c", o)
		}
	}
	if i != al.AEnd || j != al.BEnd {
		t.Fatalf("transcript ends at (%d,%d), spans say (%d,%d)", i, j, al.AEnd, al.BEnd)
	}
	if score != al.Score {
		t.Fatalf("transcript score %d != reported %d", score, al.Score)
	}
	if matches != al.Matches || mismatches != al.Mismatches || gaps != al.Gaps {
		t.Fatalf("counters %d/%d/%d, reported %d/%d/%d",
			matches, mismatches, gaps, al.Matches, al.Mismatches, al.Gaps)
	}
}

func TestLocalEmptyAndNoMatch(t *testing.T) {
	s := DefaultScoring()
	if al := Local(nil, seqOf("ACGT"), s); al.Score != 0 || len(al.Ops) != 0 {
		t.Errorf("empty query alignment = %+v", al)
	}
	if al := Local(seqOf("AAAA"), seqOf("TTTT"), s); al.Score != 0 {
		t.Errorf("no-match alignment = %+v", al)
	}
}

func TestLocalWildcardsAlign(t *testing.T) {
	s := DefaultScoring()
	al := Local(seqOf("ACNT"), seqOf("ACGT"), s)
	if al.Score != 20 {
		t.Errorf("N-containing alignment score %d, want 20", al.Score)
	}
	if al.Matches != 4 {
		t.Errorf("N column counted as mismatch: %+v", al)
	}
}

func TestLocalGapAlignment(t *testing.T) {
	s := DefaultScoring()
	// b has 2 bases deleted relative to a; optimal local alignment must
	// bridge them with one affine gap: 14 matches − (open+2·extend).
	a := seqOf("ACGTACGTACGTACGT")
	b := seqOf("ACGTACGACGTACGT") // one base deleted after 7
	al := Local(a, b, s)
	ref := refLocalScore(a, b, s)
	if al.Score != ref {
		t.Fatalf("score %d, reference %d", al.Score, ref)
	}
	if al.Gaps == 0 {
		t.Errorf("expected a gapped alignment, got %+v", al)
	}
}

func TestIdentity(t *testing.T) {
	al := Alignment{}
	if al.Identity() != 0 {
		t.Error("identity of empty alignment not 0")
	}
	al = Alignment{Ops: []byte{OpMatch, OpMatch, OpAGap, OpMatch}, Matches: 3}
	if got := al.Identity(); got != 0.75 {
		t.Errorf("identity = %v, want 0.75", got)
	}
}

func randomSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(rng.Intn(dna.NumBases))
	}
	return s
}

func TestPropertyLocalScoreSymmetry(t *testing.T) {
	// Local alignment score is symmetric in its arguments.
	rng := rand.New(rand.NewSource(22))
	s := DefaultScoring()
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := randomSeq(local, 1+local.Intn(50))
		b := randomSeq(local, 1+local.Intn(50))
		sa, _, _ := LocalScore(a, b, s)
		sb, _, _ := LocalScore(b, a, s)
		return sa == sb
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertySelfAlignmentIsPerfect(t *testing.T) {
	s := DefaultScoring()
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := randomSeq(local, 1+local.Intn(100))
		score, _, _ := LocalScore(a, a, s)
		return score == len(a)*s.Match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
