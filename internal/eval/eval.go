// Package eval implements the measurement side of the experiment
// suite: retrieval-effectiveness metrics against an exhaustive gold
// standard, wall-clock timing helpers, and plain-text table rendering
// shared by the cafe-bench tool and the benchmarks.
package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RecallAt returns the fraction of relevant ids found within the first
// k entries of ranked. A k ≤ 0 or beyond the ranking uses the whole
// ranking. An empty relevant set yields recall 1: there was nothing to
// find.
func RecallAt(ranked []int, relevant map[int]bool, k int) float64 {
	if len(relevant) == 0 {
		return 1
	}
	if k <= 0 || k > len(ranked) {
		k = len(ranked)
	}
	found := 0
	for _, id := range ranked[:k] {
		if relevant[id] {
			found++
		}
	}
	return float64(found) / float64(len(relevant))
}

// PrecisionAt returns the fraction of the first k ranked entries that
// are relevant. k beyond the ranking is clamped; an empty prefix yields
// precision 0.
func PrecisionAt(ranked []int, relevant map[int]bool, k int) float64 {
	if k <= 0 || k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	found := 0
	for _, id := range ranked[:k] {
		if relevant[id] {
			found++
		}
	}
	return float64(found) / float64(k)
}

// AveragePrecision returns the mean of precision values at each
// relevant rank — the standard single-number effectiveness summary.
func AveragePrecision(ranked []int, relevant map[int]bool) float64 {
	if len(relevant) == 0 {
		return 1
	}
	found := 0
	sum := 0.0
	for i, id := range ranked {
		if relevant[id] {
			found++
			sum += float64(found) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}

// Mean returns the arithmetic mean of xs, 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Timed runs fn and returns its wall-clock duration.
func Timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Table renders aligned plain-text tables, the output format of every
// experiment.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
