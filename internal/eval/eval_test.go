package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRecallAt(t *testing.T) {
	ranked := []int{5, 3, 9, 1, 7}
	rel := map[int]bool{3: true, 7: true}
	cases := []struct {
		k    int
		want float64
	}{
		{1, 0},
		{2, 0.5},
		{4, 0.5},
		{5, 1},
		{0, 1},   // whole ranking
		{100, 1}, // clamped
	}
	for _, c := range cases {
		if got := RecallAt(ranked, rel, c.k); got != c.want {
			t.Errorf("RecallAt(k=%d) = %v, want %v", c.k, got, c.want)
		}
	}
	if got := RecallAt(ranked, nil, 3); got != 1 {
		t.Errorf("empty relevant set recall = %v, want 1", got)
	}
	if got := RecallAt(nil, rel, 3); got != 0 {
		t.Errorf("empty ranking recall = %v, want 0", got)
	}
}

func TestPrecisionAt(t *testing.T) {
	ranked := []int{5, 3, 9}
	rel := map[int]bool{3: true, 5: true}
	if got := PrecisionAt(ranked, rel, 2); got != 1 {
		t.Errorf("P@2 = %v", got)
	}
	if got := PrecisionAt(ranked, rel, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("P@3 = %v", got)
	}
	if got := PrecisionAt(nil, rel, 2); got != 0 {
		t.Errorf("P on empty ranking = %v", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2 = 5/6.
	ranked := []int{10, 20, 30}
	rel := map[int]bool{10: true, 30: true}
	if got := AveragePrecision(ranked, rel); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("AP = %v, want 5/6", got)
	}
	if got := AveragePrecision(ranked, nil); got != 1 {
		t.Errorf("AP with no relevant = %v, want 1", got)
	}
	// Relevant item missing from the ranking lowers AP.
	rel[99] = true
	if got := AveragePrecision(ranked, rel); got >= 5.0/6 {
		t.Errorf("AP with missing relevant = %v, want < 5/6", got)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty slice stats not 0")
	}
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 2 {
		t.Errorf("Median = %v", Median(xs))
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even Median = %v", got)
	}
	// Median must not mutate its input.
	if xs[0] != 3 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestTimed(t *testing.T) {
	d := Timed(func() { time.Sleep(5 * time.Millisecond) })
	if d < 5*time.Millisecond {
		t.Errorf("Timed = %v, want ≥ 5ms", d)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("E0: demo", "name", "value", "time")
	tab.AddRow("alpha", 1.23456, 1500*time.Microsecond)
	tab.AddRow("b", 42, "n/a")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E0: demo", "name", "alpha", "1.235", "1.5ms", "42", "n/a"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}
