package sig

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nucleodb/internal/kmer"
)

// sigMagic identifies the on-disk signature format, version 1.
const sigMagic = "NDBsig1\n"

// Save writes the signature index to w. The format is:
//
//	magic
//	uvarint K, bitsPerKmer, hashes, numSeqs, bits
//	bits × words little-endian uint64 row words
func (x *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sigMagic); err != nil {
		return fmt.Errorf("sig: save: %w", err)
	}
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []uint64{uint64(x.k), uint64(x.bitsPerKmer), uint64(x.hashes), uint64(x.numSeqs), uint64(x.bits)} {
		n := binary.PutUvarint(tmp[:], v)
		if _, err := bw.Write(tmp[:n]); err != nil {
			return fmt.Errorf("sig: save header: %w", err)
		}
	}
	var word [8]byte
	for _, v := range x.rows {
		binary.LittleEndian.PutUint64(word[:], v)
		if _, err := bw.Write(word[:]); err != nil {
			return fmt.Errorf("sig: save rows: %w", err)
		}
	}
	return bw.Flush()
}

// SerializedBytes returns the exact on-disk size of the index.
func (x *Index) SerializedBytes() int {
	n := len(sigMagic)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []uint64{uint64(x.k), uint64(x.bitsPerKmer), uint64(x.hashes), uint64(x.numSeqs), uint64(x.bits)} {
		n += binary.PutUvarint(tmp[:], v)
	}
	return n + len(x.rows)*8
}

// Load reads a signature index previously written by Save. Every
// header field is bounded as a uint64 before conversion to int, so an
// adversarial header errors on every platform instead of silently
// truncating on 32-bit ones — the same discipline as the posting
// index's loader.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(sigMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sig: load: %w", err)
	}
	if string(magic) != sigMagic {
		return nil, fmt.Errorf("sig: load: bad magic %q", magic)
	}
	get := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("sig: load %s: %w", what, err)
		}
		return v, nil
	}
	k, err := get("K")
	if err != nil {
		return nil, err
	}
	if k < 1 || k > kmer.MaxK {
		return nil, fmt.Errorf("sig: load: interval length %d outside [1,%d]", k, kmer.MaxK)
	}
	bitsPerKmer, err := get("bits per k-mer")
	if err != nil {
		return nil, err
	}
	if bitsPerKmer < 1 || bitsPerKmer > MaxBitsPerKmer {
		return nil, fmt.Errorf("sig: load: bits per k-mer %d outside [1,%d]", bitsPerKmer, MaxBitsPerKmer)
	}
	hashes, err := get("hash count")
	if err != nil {
		return nil, err
	}
	if hashes < 1 || hashes > MaxHashes {
		return nil, fmt.Errorf("sig: load: hash count %d outside [1,%d]", hashes, MaxHashes)
	}
	numSeqs, err := get("sequence count")
	if err != nil {
		return nil, err
	}
	if numSeqs < 1 || numSeqs > 1<<31-1 {
		return nil, fmt.Errorf("sig: load: implausible sequence count %d", numSeqs)
	}
	m, err := get("bit count")
	if err != nil {
		return nil, err
	}
	// m is produced in 64-aligned units; cap it so bits×words cannot
	// overflow (or OOM) before the row read below bounds it for real.
	if m < 64 || m%64 != 0 || m > 1<<32 {
		return nil, fmt.Errorf("sig: load: implausible bit count %d", m)
	}
	x := &Index{
		k:           int(k),
		bitsPerKmer: int(bitsPerKmer),
		hashes:      int(hashes),
		numSeqs:     int(numSeqs),
		bits:        int(m),
		words:       (int(numSeqs) + 63) / 64,
	}
	total := uint64(x.bits) * uint64(x.words)
	// Grow incrementally: each claimed word must be backed by 8 bytes of
	// input, so a lying header fails with a read error after a bounded
	// allocation instead of a single total-sized make.
	const chunk = 1 << 17 // words per read: 1 MiB
	x.rows = make([]uint64, 0, min(total, chunk))
	buf := make([]byte, 8*chunk)
	for uint64(len(x.rows)) < total {
		take := min(total-uint64(len(x.rows)), chunk)
		if _, err := io.ReadFull(br, buf[:8*take]); err != nil {
			return nil, fmt.Errorf("sig: load rows: %w", err)
		}
		for i := uint64(0); i < take; i++ {
			x.rows = append(x.rows, binary.LittleEndian.Uint64(buf[8*i:]))
		}
	}
	return x, nil
}
