package sig

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"nucleodb/internal/kmer"
)

// codesStore is a minimal in-memory Source of 2-bit base codes.
type codesStore [][]byte

func (s codesStore) Len() int               { return len(s) }
func (s codesStore) Sequence(id int) []byte { return s[id] }

func randomStore(seed int64, n, meanLen int) codesStore {
	rng := rand.New(rand.NewSource(seed))
	s := make(codesStore, n)
	for i := range s {
		l := meanLen/2 + rng.Intn(meanLen)
		seq := make([]byte, l)
		for j := range seq {
			seq[j] = byte(rng.Intn(4))
		}
		s[i] = seq
	}
	return s
}

// TestNoFalseNegatives is the signature contract: every term actually
// present in a sequence must read back present, via both MayContain and
// the bit-sliced ProbeAnd — false positives are allowed, misses never.
func TestNoFalseNegatives(t *testing.T) {
	store := randomStore(7, 40, 300)
	coder := kmer.MustCoder(8)
	x, err := Build(store, coder, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var dst []uint64
	for id := 0; id < store.Len(); id++ {
		coder.ExtractFunc(store.Sequence(id), func(_ int, term kmer.Term) {
			if !x.MayContain(term, id) {
				t.Fatalf("seq %d term %d: inserted term reads absent", id, term)
			}
			dst = x.ProbeAnd(term, dst)
			if dst[id/64]&(1<<uint(id%64)) == 0 {
				t.Fatalf("seq %d term %d: ProbeAnd bit clear for an inserted term", id, term)
			}
		})
	}
}

// TestSkipExcludesTerms: a skipped term must behave as never inserted
// when no other term hashes over it — with a single sequence and a
// tight vocabulary collisions are easy to dodge by checking density.
func TestSkipExcludesTerms(t *testing.T) {
	store := randomStore(11, 10, 200)
	coder := kmer.MustCoder(8)
	all, err := Build(store, coder, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	none, err := Build(store, coder, func(kmer.Term) bool { return true }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := none.Density(); d != 0 {
		t.Fatalf("skip-everything build has density %v, want 0", d)
	}
	if all.Density() == 0 {
		t.Fatal("skip-nothing build is empty")
	}
}

// TestFalsePositiveRate sanity-checks the defaults: probing terms drawn
// from sequences the collection does not contain must admit only a
// small fraction of false positives.
func TestFalsePositiveRate(t *testing.T) {
	store := randomStore(13, 60, 400)
	coder := kmer.MustCoder(10) // large vocabulary: random foreign terms are truly absent
	x, err := Build(store, coder, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[kmer.Term]bool)
	for id := 0; id < store.Len(); id++ {
		coder.ExtractFunc(store.Sequence(id), func(_ int, term kmer.Term) { present[term] = true })
	}
	rng := rand.New(rand.NewSource(99))
	probes, hits := 0, 0
	var dst []uint64
	for probes < 2000 {
		term := kmer.Term(rng.Int63n(int64(coder.NumTerms())))
		if present[term] {
			continue
		}
		probes++
		dst = x.ProbeAnd(term, dst)
		for _, w := range dst {
			hits += popcount(w)
		}
	}
	rate := float64(hits) / float64(probes*store.Len())
	if rate > 0.05 {
		t.Fatalf("false-positive rate %.4f exceeds 5%% at default options (density %.3f)", rate, x.Density())
	}
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// TestSaveLoadRoundtrip: the decoded index must equal the built one
// field for field.
func TestSaveLoadRoundtrip(t *testing.T) {
	store := randomStore(17, 25, 250)
	coder := kmer.MustCoder(8)
	x, err := Build(store, coder, nil, Options{BitsPerKmer: 12, Hashes: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), x.SerializedBytes(); got != want {
		t.Fatalf("SerializedBytes %d, actual save wrote %d", want, got)
	}
	y, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x, y) {
		t.Fatalf("roundtrip mismatch:\nbuilt  %+v\nloaded %+v", x, y)
	}
}

// TestLoadCorruptImages mirrors the posting index's corruption
// discipline: truncations must error, bit flips must never panic.
func TestLoadCorruptImages(t *testing.T) {
	store := randomStore(23, 15, 200)
	x, err := Build(store, kmer.MustCoder(6), nil, Options{BitsPerKmer: 8, Hashes: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	t.Run("truncate", func(t *testing.T) {
		for cut := 0; cut < len(img); cut++ {
			if _, err := Load(bytes.NewReader(img[:cut])); err == nil {
				t.Fatalf("truncation to %d of %d bytes loaded cleanly", cut, len(img))
			}
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		step := 1
		if testing.Short() {
			step = 13
		}
		mut := make([]byte, len(img))
		for pos := 0; pos < len(img); pos += step {
			for bit := uint(0); bit < 8; bit++ {
				copy(mut, img)
				mut[pos] ^= 1 << bit
				// Row payload flips decode to a different, equally
				// plausible matrix; header flips must error. Either way:
				// no panic.
				Load(bytes.NewReader(mut))
			}
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		grown := append(append([]byte{}, img...), bytes.Repeat([]byte{0xAB}, 64)...)
		if _, err := Load(bytes.NewReader(grown)); err != nil {
			t.Fatalf("trailing garbage broke the load: %v", err)
		}
	})
}

// header builds a crafted image from raw header values, with no rows.
func header(fields ...uint64) []byte {
	buf := []byte(sigMagic)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range fields {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// TestLoadBoundsAdversarialHeaders is the 32-bit truncation regression:
// each header field that feeds an int conversion must be rejected as a
// uint64 first, so values that truncate to plausible ints on 32-bit
// platforms (e.g. 1<<32+9 → 9) error everywhere.
func TestLoadBoundsAdversarialHeaders(t *testing.T) {
	cases := map[string][]uint64{
		"k-truncates":        {1<<32 + 9, 16, 8, 10, 1024},
		"k-zero":             {0, 16, 8, 10, 1024},
		"bits-truncates":     {9, 1<<32 + 16, 8, 10, 1024},
		"hashes-truncates":   {9, 16, 1<<32 + 8, 10, 1024},
		"numseqs-truncates":  {9, 16, 8, 1<<32 + 10, 1024},
		"numseqs-zero":       {9, 16, 8, 0, 1024},
		"bitcount-unaligned": {9, 16, 8, 10, 1000},
		"bitcount-huge":      {9, 16, 8, 10, 1 << 40},
	}
	for name, fields := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(header(fields...))); err == nil {
				t.Fatalf("adversarial header %v loaded cleanly", fields)
			}
		})
	}
}

// TestLoadLyingBitCount: a header whose claimed matrix the stream
// cannot back must fail with a read error after bounded allocation.
func TestLoadLyingBitCount(t *testing.T) {
	img := header(9, 16, 8, 1<<20, 1<<30) // claims a 16-terabit matrix, then EOF
	if _, err := Load(bytes.NewReader(img)); err == nil {
		t.Fatal("lying bit count loaded cleanly")
	}
}
