// Package sig implements the second coarse-filtering backend: a
// bit-sliced k-mer signature index in the COBS style (Bingmann et al.,
// "COBS: a Compact Bit-Sliced Signature Index"). Every sequence gets a
// Bloom-filter signature of m bits; the m×numSeqs bit matrix is stored
// column-major as m bit-slices ("rows") of ⌈numSeqs/64⌉ words each, so
// one query term probes its h hash rows and the AND of those rows is
// the candidate bitvector for the whole collection — a word-wide scan
// instead of a postings decode.
//
// Signatures answer approximate membership: a set bit can be a false
// positive (hash collisions across the h rows), but a term that was
// inserted always reads back present — signatures admit spurious
// candidates, never missed ones. Exact coarse scoring therefore stays
// with the caller, which verifies candidates against the real sequence
// terms (see internal/core's signature coarse path).
package sig

import (
	"fmt"
	"math/bits"

	"nucleodb/internal/kmer"
)

// BackendName is the CoarseIndex backend identifier of this package.
const BackendName = "signature"

// Source supplies sequences by id, the same shape index.Build consumes.
type Source interface {
	Len() int
	Sequence(id int) []byte
}

// Options configure signature construction.
type Options struct {
	// BitsPerKmer sizes each signature: the bit-slice count m is
	// BitsPerKmer × the largest per-sequence distinct-term count,
	// rounded up to a multiple of 64. More bits per k-mer lower the
	// false-positive rate and grow the index linearly. 0 means
	// DefaultBitsPerKmer.
	BitsPerKmer int
	// Hashes is the number of rows each term sets and probes. 0 means
	// DefaultHashes.
	Hashes int
}

// Defaults approximate the Bloom optimum k ≈ b·ln2 for b = 16 bits per
// element, giving a per-term false-positive rate around 6·10⁻⁴ — low
// enough that verification work stays a small fraction of the
// collection even for queries with hundreds of terms.
const (
	DefaultBitsPerKmer = 16
	DefaultHashes      = 8

	// MaxBitsPerKmer and MaxHashes bound the options (and the decoded
	// header fields) to sane maxima.
	MaxBitsPerKmer = 256
	MaxHashes      = 32
)

func (o Options) withDefaults() Options {
	if o.BitsPerKmer == 0 {
		o.BitsPerKmer = DefaultBitsPerKmer
	}
	if o.Hashes == 0 {
		o.Hashes = DefaultHashes
	}
	return o
}

func (o Options) validate() error {
	if o.BitsPerKmer < 1 || o.BitsPerKmer > MaxBitsPerKmer {
		return fmt.Errorf("sig: BitsPerKmer %d outside [1,%d]", o.BitsPerKmer, MaxBitsPerKmer)
	}
	if o.Hashes < 1 || o.Hashes > MaxHashes {
		return fmt.Errorf("sig: Hashes %d outside [1,%d]", o.Hashes, MaxHashes)
	}
	return nil
}

// Index is an immutable bit-sliced signature index over one segment's
// sequences. Row r occupies rows[r·words : (r+1)·words]; sequence id's
// bit is word id/64, bit id%64 of each of its h hash rows.
//
//cafe:frozen
type Index struct {
	k           int
	bitsPerKmer int
	hashes      int
	numSeqs     int
	bits        int // m: number of bit-slice rows
	words       int // ⌈numSeqs/64⌉
	rows        []uint64
}

// Build constructs a signature index over src using coder's term
// vocabulary. skip, when non-nil, excludes terms from the signatures —
// the caller passes the posting index's stop predicate so both backends
// index the same term sets per sequence.
func Build(src Source, coder *kmer.Coder, skip func(kmer.Term) bool, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	numSeqs := src.Len()
	if numSeqs == 0 {
		return nil, fmt.Errorf("sig: cannot build over an empty store")
	}

	// Pass 1: the largest per-sequence distinct-term count sizes the
	// slice count m so the densest signature still holds its target
	// bits-per-element budget.
	seen := make(map[kmer.Term]struct{})
	maxDistinct := 0
	for id := 0; id < numSeqs; id++ {
		clear(seen)
		coder.ExtractFunc(src.Sequence(id), func(_ int, t kmer.Term) {
			if skip != nil && skip(t) {
				return
			}
			seen[t] = struct{}{}
		})
		if len(seen) > maxDistinct {
			maxDistinct = len(seen)
		}
	}
	m := opts.BitsPerKmer * maxDistinct
	if m < 64 {
		m = 64
	}
	m = (m + 63) &^ 63

	x := &Index{
		k:           coder.K(),
		bitsPerKmer: opts.BitsPerKmer,
		hashes:      opts.Hashes,
		numSeqs:     numSeqs,
		bits:        m,
		words:       (numSeqs + 63) / 64,
	}
	x.rows = make([]uint64, m*x.words)

	// Pass 2: set each sequence's bit in the h rows of every distinct
	// term it contains.
	for id := 0; id < numSeqs; id++ {
		clear(seen)
		word, bit := id/64, uint(id%64)
		coder.ExtractFunc(src.Sequence(id), func(_ int, t kmer.Term) {
			if skip != nil && skip(t) {
				return
			}
			if _, dup := seen[t]; dup {
				return
			}
			seen[t] = struct{}{}
			h1, h2 := hashPair(t)
			for j := 0; j < x.hashes; j++ {
				r := int((h1 + uint64(j)*h2) % uint64(m))
				x.rows[r*x.words+word] |= 1 << bit
			}
		})
	}
	return x, nil
}

// hashPair derives the double-hashing pair for a term: two independent
// splitmix64-style mixes, the stride forced odd so successive rows
// spread even when m shares factors with h2.
//
//cafe:hotpath
func hashPair(t kmer.Term) (h1, h2 uint64) {
	h1 = mix64(uint64(t) + 0x9e3779b97f4a7c15)
	h2 = mix64(uint64(t)^0xbf58476d1ce4e5b9) | 1
	return h1, h2
}

//cafe:hotpath
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// CoarseBackendName identifies this index as the signature backend.
func (x *Index) CoarseBackendName() string { return BackendName }

// K returns the interval length the signatures were built over.
func (x *Index) K() int { return x.k }

// NumSeqs returns the number of signed sequences.
func (x *Index) NumSeqs() int { return x.numSeqs }

// Bits returns the number of bit-slice rows (the signature width m).
func (x *Index) Bits() int { return x.bits }

// Hashes returns the number of rows each term sets and probes.
func (x *Index) Hashes() int { return x.hashes }

// BitsPerKmer returns the configured per-element bit budget.
func (x *Index) BitsPerKmer() int { return x.bitsPerKmer }

// Words returns the per-row word count ⌈numSeqs/64⌉ — the length
// ProbeAnd's destination takes.
func (x *Index) Words() int { return x.words }

// SizeBytes returns the in-memory size of the bit matrix.
func (x *Index) SizeBytes() int { return len(x.rows) * 8 }

// row returns bit-slice r.
//
//cafe:hotpath
func (x *Index) row(r int) []uint64 { return x.rows[r*x.words : (r+1)*x.words] }

// ProbeAnd writes the AND of term t's h hash rows into dst — one bit
// per sequence, set when every row has the sequence's bit — growing dst
// to Words() as needed, and returns it. A set bit means t is *probably*
// in that sequence; a clear bit means it is certainly absent.
//
//cafe:hotpath
func (x *Index) ProbeAnd(t kmer.Term, dst []uint64) []uint64 {
	if cap(dst) < x.words {
		dst = make([]uint64, x.words) //cafe:allow amortised scratch; grows once to Words() and is reused across probes
	} else {
		dst = dst[:x.words]
	}
	h1, h2 := hashPair(t)
	copy(dst, x.row(int(h1%uint64(x.bits))))
	for j := 1; j < x.hashes; j++ {
		row := x.row(int((h1 + uint64(j)*h2) % uint64(x.bits)))
		for w := range dst {
			dst[w] &= row[w]
		}
	}
	return dst
}

// MayContain reports t's approximate membership for one sequence.
func (x *Index) MayContain(t kmer.Term, id int) bool {
	h1, h2 := hashPair(t)
	word, bit := id/64, uint(id%64)
	for j := 0; j < x.hashes; j++ {
		r := int((h1 + uint64(j)*h2) % uint64(x.bits))
		if x.row(r)[word]&(1<<bit) == 0 {
			return false
		}
	}
	return true
}

// Density returns the fraction of set bits in the matrix, a diagnostic
// for the false-positive rate (≈ density^hashes per probed term).
func (x *Index) Density() float64 {
	ones := 0
	for _, w := range x.rows {
		ones += bits.OnesCount64(w)
	}
	// The last word of each row may pad past numSeqs; padding bits are
	// never set, so counting capacity by real columns keeps the figure
	// honest.
	return float64(ones) / float64(x.bits*x.numSeqs)
}
