package stats

import (
	"math"
	"math/rand"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/dna"
)

func TestLambdaSatisfiesEquation(t *testing.T) {
	s := align.DefaultScoring()
	lambda, err := Lambda(s, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if lambda <= 0 {
		t.Fatalf("lambda = %v", lambda)
	}
	// Plug back: Σ pᵢpⱼ e^{λs(i,j)} must be 1.
	sum := 0.0
	for i := byte(0); i < dna.NumBases; i++ {
		for j := byte(0); j < dna.NumBases; j++ {
			sum += Uniform[i] * Uniform[j] * math.Exp(lambda*float64(s.Score(i, j)))
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("equation residual = %v", sum-1)
	}
}

func TestLambdaKnownValue(t *testing.T) {
	// For match +1 / mismatch −1 on uniform DNA:
	// (1/4)e^λ + (3/4)e^{−λ} = 1 ⇒ e^λ = 3 ⇒ λ = ln 3.
	s := align.Scoring{Match: 1, Mismatch: 1, GapOpen: 1, GapExtend: 1}
	lambda, err := Lambda(s, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Log(3); math.Abs(lambda-want) > 1e-9 {
		t.Errorf("lambda = %v, want ln3 = %v", lambda, want)
	}
}

func TestLambdaRejectsPositiveExpectation(t *testing.T) {
	// Match-heavy scoring with positive expected score: statistics
	// undefined.
	s := align.Scoring{Match: 10, Mismatch: 1, GapOpen: 1, GapExtend: 1}
	if _, err := Lambda(s, Uniform); err == nil {
		t.Error("positive-expectation scoring accepted")
	}
}

func TestEntropyPositive(t *testing.T) {
	s := align.DefaultScoring()
	lambda, err := Lambda(s, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	h := Entropy(s, Uniform, lambda)
	if h <= 0 {
		t.Errorf("entropy = %v, want > 0", h)
	}
}

func TestEstimatePlausible(t *testing.T) {
	p, err := Estimate(align.DefaultScoring(), Uniform, EstimateOptions{Seed: 5, Samples: 40, Length: 200})
	if err != nil {
		t.Fatal(err)
	}
	if p.Lambda <= 0 || p.H <= 0 {
		t.Fatalf("params = %+v", p)
	}
	// K for DNA scorings lands in a broad but bounded range.
	if p.K < 1e-4 || p.K > 1 {
		t.Errorf("K = %v outside [1e-4, 1]", p.K)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	opts := EstimateOptions{Seed: 9, Samples: 20, Length: 150}
	a, err := Estimate(align.DefaultScoring(), Uniform, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(align.DefaultScoring(), Uniform, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %+v and %+v", a, b)
	}
}

func TestBitScoreMonotone(t *testing.T) {
	p := Params{Lambda: 0.19, K: 0.1}
	if p.BitScore(100) <= p.BitScore(50) {
		t.Error("bit score not monotone in raw score")
	}
}

func TestEValueBehaviour(t *testing.T) {
	p := Params{Lambda: 0.19, K: 0.1}
	// E-value decreases with score, increases with search space.
	if p.EValue(200, 400, 1e6) >= p.EValue(100, 400, 1e6) {
		t.Error("E-value not decreasing in score")
	}
	if p.EValue(100, 400, 2e6) <= p.EValue(100, 400, 1e6) {
		t.Error("E-value not increasing in database size")
	}
	// P-value is a probability and ≈ E for small E.
	e := p.EValue(300, 400, 1e6)
	pv := p.PValue(300, 400, 1e6)
	if pv < 0 || pv > 1 {
		t.Errorf("P-value %v outside [0,1]", pv)
	}
	if e < 1e-3 && math.Abs(pv-e)/e > 1e-2 {
		t.Errorf("small-E approximation violated: E=%v P=%v", e, pv)
	}
}

func TestEValueCalibration(t *testing.T) {
	// The real test of the statistics: on random data, the number of
	// (query, subject) pairs with E-value ≤ 1 should be small, and
	// scores of true matches should get tiny E-values.
	p, err := Estimate(align.DefaultScoring(), Uniform, EstimateOptions{Seed: 6, Samples: 60, Length: 250})
	if err != nil {
		t.Fatal(err)
	}
	// A 400-base perfect self-match against a 1 Mbase database.
	perfect := 400 * align.DefaultScoring().Match
	if e := p.EValue(perfect, 400, 1_000_000); e > 1e-30 {
		t.Errorf("perfect match E-value %v not tiny", e)
	}
	// A noise-level score (a 12-base exact run happens constantly).
	if e := p.EValue(12*align.DefaultScoring().Match, 400, 1_000_000); e < 1 {
		t.Errorf("noise-level score E-value %v < 1", e)
	}
}

func TestEstimateGapped(t *testing.T) {
	s := align.DefaultScoring()
	opts := EstimateOptions{Seed: 7, Samples: 80, Length: 200}
	gapped, err := EstimateGapped(s, Uniform, opts)
	if err != nil {
		t.Fatal(err)
	}
	ungapped, err := Estimate(s, Uniform, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gapped.Lambda <= 0 || gapped.Lambda > ungapped.Lambda {
		t.Errorf("gapped λ %.4f outside (0, ungapped %.4f]", gapped.Lambda, ungapped.Lambda)
	}
	if gapped.K < 1e-6 || gapped.K > 1 {
		t.Errorf("gapped K %v outside [1e-6, 1]", gapped.K)
	}
	if gapped.H != ungapped.H {
		t.Errorf("H differs: %v vs %v", gapped.H, ungapped.H)
	}
}

func TestGappedCalibrationSane(t *testing.T) {
	// The whole point of gapped calibration: a typical *random* top
	// score must not look wildly significant. Draw fresh random pairs
	// (different seed from the calibration) and check the best gapped
	// score has an E-value of order one for that search space.
	rng := rand.New(rand.NewSource(99))
	s := align.DefaultScoring()
	p, err := EstimateGappedCached(s, Uniform, DefaultEstimateOptions())
	if err != nil {
		t.Fatal(err)
	}
	const m, trials = 200, 20
	for i := 0; i < trials; i++ {
		a := randomSeq(rng, m, Uniform)
		b := randomSeq(rng, m, Uniform)
		sc, _, _ := align.LocalScore(a, b, s)
		e := p.EValue(sc, m, m)
		if e < 1e-3 {
			t.Fatalf("random pair score %d got E = %g; gapped calibration claims chance events are significant", sc, e)
		}
	}
	// And a perfect long match stays overwhelmingly significant.
	if e := p.EValue(400*s.Match, 400, 1_000_000); e > 1e-20 {
		t.Errorf("perfect-match E-value %g not tiny under gapped parameters", e)
	}
}

func TestEstimateGappedCachedStable(t *testing.T) {
	opts := EstimateOptions{Seed: 11, Samples: 30, Length: 120}
	a, err := EstimateGappedCached(align.DefaultScoring(), Uniform, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateGappedCached(align.DefaultScoring(), Uniform, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cache returned different parameters: %+v vs %+v", a, b)
	}
}

func TestLambdaSkewedBackground(t *testing.T) {
	// AT-rich background (GenBank-like): λ still solves the equation
	// and shifts relative to uniform (more chance matches → smaller λ
	// for the same scores).
	s := align.DefaultScoring()
	skew := [4]float64{0.35, 0.15, 0.15, 0.35}
	lambda, err := Lambda(s, skew)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := byte(0); i < dna.NumBases; i++ {
		for j := byte(0); j < dna.NumBases; j++ {
			sum += skew[i] * skew[j] * math.Exp(lambda*float64(s.Score(i, j)))
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("skewed equation residual %v", sum-1)
	}
	uniform, err := Lambda(s, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if lambda >= uniform {
		t.Errorf("skewed λ %.4f not below uniform %.4f", lambda, uniform)
	}
}

func TestMaxSegmentScore(t *testing.T) {
	s := align.DefaultScoring()
	a := dna.MustEncode("ACGTACGT")
	// Exact copy: whole length matches on the main diagonal.
	if got := maxSegmentScore(a, a, s); got != 8*s.Match {
		t.Errorf("self segment score = %d, want %d", got, 8*s.Match)
	}
	// Disjoint content: nothing positive except chance 1-base matches.
	b := dna.MustEncode("TTTT")
	c := dna.MustEncode("CCCC")
	if got := maxSegmentScore(b, c, s); got != 0 {
		t.Errorf("disjoint segment score = %d", got)
	}
	// Shifted copy: best segment sits off the main diagonal.
	d := dna.MustEncode("GGACGTACGT")
	if got := maxSegmentScore(a, d, s); got != 8*s.Match {
		t.Errorf("shifted segment score = %d, want %d", got, 8*s.Match)
	}
}
