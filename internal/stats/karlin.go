// Package stats implements Karlin–Altschul statistics for local
// alignment scores: the λ and K parameters of the extreme-value
// distribution that ungapped local alignment scores follow, and the
// bit-score / E-value conversions search tools report. λ and the
// relative entropy H are computed exactly from the scoring scheme and
// background base frequencies; K, whose closed form is impractical, is
// estimated by direct simulation of the null score distribution, the
// approach used to calibrate gapped statistics in practice.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"nucleodb/internal/align"
	"nucleodb/internal/dna"
)

// Params are the extreme-value parameters of a scoring system under a
// background model: P(S ≥ x) ≈ 1 − exp(−K·m·n·e^{−λx}) for a query of
// length m against a database of n total bases.
type Params struct {
	Lambda float64 // scale of the score distribution (nats per score unit)
	K      float64 // search-space correction constant
	H      float64 // relative entropy of the aligned-pair distribution
}

// Uniform is the uniform background base distribution.
var Uniform = [4]float64{0.25, 0.25, 0.25, 0.25}

// Lambda solves Σ pᵢpⱼ·exp(λ·s(i,j)) = 1 for λ > 0 by bisection. The
// equation has a unique positive root whenever the expected score is
// negative and a positive score is achievable — the standard
// requirements for local alignment statistics, validated here.
func Lambda(s align.Scoring, freqs [4]float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	expected := 0.0
	positive := false
	for i := byte(0); i < dna.NumBases; i++ {
		for j := byte(0); j < dna.NumBases; j++ {
			sc := float64(s.Score(i, j))
			expected += freqs[i] * freqs[j] * sc
			if sc > 0 && freqs[i] > 0 && freqs[j] > 0 {
				positive = true
			}
		}
	}
	if expected >= 0 {
		return 0, fmt.Errorf("stats: expected score %.3f is not negative; local alignment statistics undefined", expected)
	}
	if !positive {
		return 0, fmt.Errorf("stats: no achievable positive score")
	}

	f := func(lambda float64) float64 {
		sum := 0.0
		for i := byte(0); i < dna.NumBases; i++ {
			for j := byte(0); j < dna.NumBases; j++ {
				sum += freqs[i] * freqs[j] * math.Exp(lambda*float64(s.Score(i, j)))
			}
		}
		return sum - 1
	}
	// f(0) = 0 with f'(0) = E[score] < 0, and f → ∞ as λ grows, so the
	// positive root is bracketed by expanding hi until f(hi) > 0.
	lo, hi := 0.0, 0.5
	for f(hi) < 0 {
		lo = hi
		hi *= 2
		if hi > 1e3 {
			return 0, fmt.Errorf("stats: lambda did not bracket")
		}
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Entropy returns the relative entropy H of the target (aligned-pair)
// distribution against the background, in nats per aligned column.
func Entropy(s align.Scoring, freqs [4]float64, lambda float64) float64 {
	h := 0.0
	for i := byte(0); i < dna.NumBases; i++ {
		for j := byte(0); j < dna.NumBases; j++ {
			sc := float64(s.Score(i, j))
			q := freqs[i] * freqs[j] * math.Exp(lambda*sc)
			h += q * lambda * sc
		}
	}
	return h
}

// EstimateOptions tunes the K simulation.
type EstimateOptions struct {
	Seed    int64
	Samples int // random sequence pairs to draw
	Length  int // length of each random sequence
}

// DefaultEstimateOptions returns simulation settings that estimate the
// parameters within a factor of ~1.5 in well under a second.
func DefaultEstimateOptions() EstimateOptions {
	return EstimateOptions{Seed: 1, Samples: 80, Length: 200}
}

// gappedCache memoises gapped calibrations: they cost a simulation and
// search facades ask for the same (scoring, options) repeatedly.
var gappedCache = struct {
	sync.Mutex
	m map[gappedKey]Params
}{m: map[gappedKey]Params{}}

type gappedKey struct {
	s     align.Scoring
	freqs [4]float64
	opts  EstimateOptions
}

// EstimateGappedCached is EstimateGapped with process-wide
// memoisation.
func EstimateGappedCached(s align.Scoring, freqs [4]float64, opts EstimateOptions) (Params, error) {
	key := gappedKey{s, freqs, opts}
	gappedCache.Lock()
	if p, ok := gappedCache.m[key]; ok {
		gappedCache.Unlock()
		return p, nil
	}
	gappedCache.Unlock()
	p, err := EstimateGapped(s, freqs, opts)
	if err != nil {
		return Params{}, err
	}
	gappedCache.Lock()
	gappedCache.m[key] = p
	gappedCache.Unlock()
	return p, nil
}

// Estimate computes λ and H exactly and estimates K by simulation:
// maximal ungapped segment scores of random sequence pairs follow a
// Gumbel law whose location is ln(K·m·n)/λ, so K is recovered from the
// mean maximal score via the method of moments.
func Estimate(s align.Scoring, freqs [4]float64, opts EstimateOptions) (Params, error) {
	lambda, err := Lambda(s, freqs)
	if err != nil {
		return Params{}, err
	}
	h := Entropy(s, freqs, lambda)

	if opts.Samples <= 0 || opts.Length <= 0 {
		o := DefaultEstimateOptions()
		opts.Samples, opts.Length = o.Samples, o.Length
		if opts.Seed == 0 {
			opts.Seed = o.Seed
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	m := opts.Length
	const gamma = 0.5772156649015329 // Euler–Mascheroni
	sum := 0.0
	for t := 0; t < opts.Samples; t++ {
		a := randomSeq(rng, m, freqs)
		b := randomSeq(rng, m, freqs)
		sum += float64(maxSegmentScore(a, b, s))
	}
	mean := sum / float64(opts.Samples)
	// E[S] = (ln(K·m·n) + γ)/λ  ⇒  K = exp(λ·E[S] − γ)/(m·n).
	k := math.Exp(lambda*mean-gamma) / (float64(m) * float64(m))
	// Clamp to the plausible range; simulation noise on tiny sample
	// sizes must not produce degenerate statistics.
	if k < 1e-4 {
		k = 1e-4
	}
	if k > 1 {
		k = 1
	}
	return Params{Lambda: lambda, K: k, H: h}, nil
}

func randomSeq(rng *rand.Rand, n int, freqs [4]float64) []byte {
	cum := [4]float64{}
	acc := 0.0
	for i, f := range freqs {
		acc += f
		cum[i] = acc
	}
	seq := make([]byte, n)
	for i := range seq {
		r := rng.Float64() * acc
		switch {
		case r < cum[0]:
			seq[i] = dna.BaseA
		case r < cum[1]:
			seq[i] = dna.BaseC
		case r < cum[2]:
			seq[i] = dna.BaseG
		default:
			seq[i] = dna.BaseT
		}
	}
	return seq
}

// maxSegmentScore returns the best ungapped local alignment score of a
// against b: the maximal-scoring run over every diagonal (Kadane's
// scan per diagonal).
func maxSegmentScore(a, b []byte, s align.Scoring) int {
	best := 0
	for diag := -(len(a) - 1); diag < len(b); diag++ {
		run := 0
		i := 0
		j := diag
		if j < 0 {
			i = -j
			j = 0
		}
		for i < len(a) && j < len(b) {
			run += s.Score(a[i], b[j])
			if run < 0 {
				run = 0
			}
			if run > best {
				best = run
			}
			i++
			j++
		}
	}
	return best
}

// EstimateGapped calibrates λ and K for *gapped* local alignment by
// direct simulation, the approach production search tools use offline:
// maximal gapped local scores of random pairs follow a Gumbel law, so
// λ comes from the sample standard deviation (σ = π/(λ√6)) and K from
// the mean (E[S] = (ln(K·m·n) + γ)/λ). Gapped λ is smaller than the
// analytic ungapped λ — permissive gap costs let chance alignments
// accumulate higher scores — so E-values computed from ungapped
// parameters overstate significance; use this estimator for the
// statistics actually reported on gapped search results. H is reported
// from the ungapped theory (its gapped analogue has no closed form).
func EstimateGapped(s align.Scoring, freqs [4]float64, opts EstimateOptions) (Params, error) {
	lambdaU, err := Lambda(s, freqs)
	if err != nil {
		return Params{}, err
	}
	h := Entropy(s, freqs, lambdaU)

	if opts.Samples <= 0 || opts.Length <= 0 {
		o := DefaultEstimateOptions()
		opts.Samples, opts.Length = o.Samples, o.Length
		if opts.Seed == 0 {
			opts.Seed = o.Seed
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	m := opts.Length
	scores := make([]float64, opts.Samples)
	sum := 0.0
	for t := range scores {
		a := randomSeq(rng, m, freqs)
		b := randomSeq(rng, m, freqs)
		sc, _, _ := align.LocalScore(a, b, s)
		scores[t] = float64(sc)
		sum += scores[t]
	}
	mean := sum / float64(len(scores))
	varSum := 0.0
	for _, sc := range scores {
		d := sc - mean
		varSum += d * d
	}
	sd := math.Sqrt(varSum / float64(len(scores)-1))
	if sd <= 0 {
		return Params{}, fmt.Errorf("stats: degenerate gapped score distribution (sd %.3f)", sd)
	}
	const gamma = 0.5772156649015329
	lambda := math.Pi / (sd * math.Sqrt(6))
	// The gapped λ cannot exceed the ungapped one: gaps only add ways
	// to score. Clamp against simulation noise.
	if lambda > lambdaU {
		lambda = lambdaU
	}
	k := math.Exp(lambda*mean-gamma) / (float64(m) * float64(m))
	if k < 1e-6 {
		k = 1e-6
	}
	if k > 1 {
		k = 1
	}
	return Params{Lambda: lambda, K: k, H: h}, nil
}

// BitScore converts a raw score to bits: S' = (λS − ln K)/ln 2.
func (p Params) BitScore(raw int) float64 {
	return (p.Lambda*float64(raw) - math.Log(p.K)) / math.Ln2
}

// EValue returns the expected number of chance alignments with score
// at least raw for a query of m bases against n database bases:
// E = K·m·n·e^{−λS}.
func (p Params) EValue(raw, m, n int) float64 {
	return p.K * float64(m) * float64(n) * math.Exp(-p.Lambda*float64(raw))
}

// PValue returns P(S ≥ raw) = 1 − e^{−E}.
func (p Params) PValue(raw, m, n int) float64 {
	return -math.Expm1(-p.EValue(raw, m, n))
}
