package segment

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzManifestDecode feeds arbitrary bytes to the manifest decoder:
// garbage must be rejected with an error, never a panic, and every
// accepted manifest must satisfy the structural invariants OpenDir
// relies on — path-safe unique segment names, non-negative counts,
// unique in-range deleted ids — and survive an encode/decode
// round-trip unchanged.
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte(`{"version":1,"next_seg":2,"segments":[{"name":"seg-000000","seqs":3},{"name":"seg-000001","seqs":1,"deleted":[0]}]}`))
	f.Add([]byte(`{"version":1,"next_seg":0,"segments":[{"name":"seg-000000","seqs":0}]}`))
	f.Add([]byte(`{"version":2,"next_seg":1,"segments":[{"name":"seg-000000","seqs":1}]}`))
	f.Add([]byte(`{"version":1,"next_seg":1,"segments":[]}`))
	f.Add([]byte(`{"version":1,"next_seg":1,"segments":[{"name":"../seg","seqs":1}]}`))
	f.Add([]byte(`{"version":1,"next_seg":1,"segments":[{"name":"seg-000000","seqs":2,"deleted":[0,0]}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		if m.Version != manifestVersion {
			t.Fatalf("accepted manifest has version %d", m.Version)
		}
		if len(m.Segments) == 0 {
			t.Fatal("accepted manifest lists no segments")
		}
		if m.NextSeg < 0 {
			t.Fatalf("accepted manifest has next_seg %d", m.NextSeg)
		}
		names := make(map[string]bool, len(m.Segments))
		for _, ms := range m.Segments {
			if ms.Name == "" || ms.Name == "." || ms.Name == ".." || strings.ContainsAny(ms.Name, "/\\") {
				t.Fatalf("accepted manifest has unsafe segment name %q", ms.Name)
			}
			if names[ms.Name] {
				t.Fatalf("accepted manifest lists %q twice", ms.Name)
			}
			names[ms.Name] = true
			if ms.Seqs < 0 {
				t.Fatalf("segment %q declares %d records", ms.Name, ms.Seqs)
			}
			del := make(map[int]bool, len(ms.Deleted))
			for _, id := range ms.Deleted {
				if id < 0 || id >= ms.Seqs || del[id] {
					t.Fatalf("segment %q has bad deleted id %d", ms.Name, id)
				}
				del[id] = true
			}
		}
		// Round-trip: re-encoding an accepted manifest and decoding it
		// again must produce the same document.
		buf, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		m2, err := decodeManifest(buf)
		if err != nil {
			t.Fatalf("re-decode rejected accepted manifest: %v", err)
		}
		b1, _ := json.Marshal(m)
		b2, _ := json.Marshal(m2)
		if string(b1) != string(b2) {
			t.Fatalf("round-trip mismatch:\n%s\n%s", b1, b2)
		}
	})
}
