// Package segment implements the LSM-style segmented database layout:
// the collection is a sequence of immutable (store, index) segments
// covering contiguous global record ids, searched together and folded
// into larger segments by background compaction. A segment never
// changes after construction — deletion tombstones and compaction both
// produce new Segment values — so a Set (an ordered snapshot of
// segments) can be shared freely between searchers while writers
// publish replacement Sets with a single atomic pointer swap.
package segment

import (
	"fmt"
	"sort"

	"nucleodb/internal/core"
	"nucleodb/internal/db"
	"nucleodb/internal/index"
	"nucleodb/internal/kmer"
	"nucleodb/internal/sig"
)

// Segment is one immutable slice of the collection: a compressed
// sequence store, the inverted index built over it, and the global id
// of its first record. Local ids 0..Len()-1 name records Base..Base+Len()-1.
//
// deleted is a bitmap of tombstoned local ids: their sequences and
// postings remain in place (the segment is immutable) but search skips
// them, and compaction rewrites them as empty stubs — descriptions
// survive, sequence bytes and postings are reclaimed, and ids stay
// dense and stable.
//
//cafe:frozen
type Segment struct {
	Name  string // file stem inside a database directory; "" if unpersisted
	Store *db.Store
	Index *index.Index
	Base  int

	deleted    []uint64
	numDeleted int
	liveBases  int

	// sig is the optional bit-sliced signature index over the same
	// sequences, enabling the signature coarse backend. Like the store
	// and index it is immutable once attached.
	sig *sig.Index
}

// New returns a segment over store and idx with its first record at
// global id base. The store and index must describe the same sequences.
func New(name string, store *db.Store, idx *index.Index, base int) (*Segment, error) {
	if store.Len() != idx.NumSeqs() {
		return nil, fmt.Errorf("segment: store has %d sequences, index has %d", store.Len(), idx.NumSeqs())
	}
	if base < 0 {
		return nil, fmt.Errorf("segment: negative base %d", base)
	}
	return &Segment{Name: name, Store: store, Index: idx, Base: base, liveBases: store.TotalBases()}, nil
}

// Len returns the segment's record count (including tombstoned records,
// which keep their ids).
func (g *Segment) Len() int { return g.Store.Len() }

// NumDeleted returns the number of tombstoned records.
func (g *Segment) NumDeleted() int { return g.numDeleted }

// LiveBases returns the total bases of non-tombstoned records.
func (g *Segment) LiveBases() int { return g.liveBases }

// DeletedLocal reports whether local id i is tombstoned.
func (g *Segment) DeletedLocal(i int) bool {
	if g.numDeleted == 0 {
		return false
	}
	return g.deleted[i>>6]&(1<<(uint(i)&63)) != 0
}

// WithDeleted returns a copy of the segment with the given local ids
// tombstoned in addition to any existing tombstones; the store, index
// and existing bitmap words are shared, so the copy is cheap. Returns
// the receiver unchanged when every id is already tombstoned.
func (g *Segment) WithDeleted(locals []int) (*Segment, error) {
	fresh := make([]int, 0, len(locals))
	for _, i := range locals {
		if i < 0 || i >= g.Len() {
			return nil, fmt.Errorf("segment: local id %d out of range [0,%d)", i, g.Len())
		}
		if !g.DeletedLocal(i) {
			fresh = append(fresh, i)
		}
	}
	if len(fresh) == 0 {
		return g, nil
	}
	out := *g
	out.deleted = make([]uint64, (g.Len()+63)/64)
	copy(out.deleted, g.deleted)
	for _, i := range fresh {
		if out.deleted[i>>6]&(1<<(uint(i)&63)) == 0 {
			out.deleted[i>>6] |= 1 << (uint(i) & 63)
			out.numDeleted++
			out.liveBases -= g.Store.SeqLen(i)
		}
	}
	return &out, nil
}

// Sig returns the segment's signature index, or nil when the segment
// was built without signatures.
func (g *Segment) Sig() *sig.Index { return g.sig }

// WithSig returns a copy of the segment with the signature index
// attached; every other field is shared. The signatures must cover
// exactly the segment's sequences.
func (g *Segment) WithSig(sx *sig.Index) (*Segment, error) {
	if sx != nil {
		if sx.NumSeqs() != g.Len() {
			return nil, fmt.Errorf("segment: signature index covers %d sequences, segment has %d", sx.NumSeqs(), g.Len())
		}
		if sx.K() != g.Index.Coder().K() {
			return nil, fmt.Errorf("segment: signature interval length %d, index uses %d", sx.K(), g.Index.Coder().K())
		}
	}
	out := *g
	out.sig = sx
	return &out, nil
}

// BuildSig builds a signature index over the segment's sequences —
// excluding the segment's stopped terms, so the signatures describe
// exactly the term sets the posting lists hold — and returns a copy of
// the segment with it attached.
func (g *Segment) BuildSig(opts sig.Options) (*Segment, error) {
	var skip func(t kmer.Term) bool
	if g.Index.NumStopped() > 0 {
		skip = g.Index.Stopped
	}
	sx, err := sig.Build(g.Store, g.Index.Coder(), skip, opts)
	if err != nil {
		return nil, err
	}
	return g.WithSig(sx)
}

// Renamed returns a copy of the segment under a new file stem, sharing
// every other field.
func (g *Segment) Renamed(name string) *Segment {
	out := *g
	out.Name = name
	return &out
}

// DeletedList returns the sorted tombstoned local ids (for the
// manifest).
func (g *Segment) DeletedList() []int {
	if g.numDeleted == 0 {
		return nil
	}
	out := make([]int, 0, g.numDeleted)
	for i := 0; i < g.Len(); i++ {
		if g.DeletedLocal(i) {
			out = append(out, i)
		}
	}
	return out
}

// Set is an immutable ordered snapshot of segments covering contiguous
// global ids from 0. It implements core.Source over global ids, so one
// Set pointer is everything a searcher needs; writers publish a new Set
// and readers keep using the one they loaded.
//
//cafe:frozen
type Set struct {
	segs       []*Segment
	bases      []int // bases[i] = segs[i].Base, for binary search
	total      int
	liveBases  int
	numDeleted int
	coreSegs   []core.Segment
}

// NewSet validates that segs cover contiguous global ids starting at 0
// with equal index build options, and returns the snapshot. The slice
// is copied.
func NewSet(segs []*Segment) (*Set, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("segment: a set needs at least one segment")
	}
	s := &Set{
		segs:     append([]*Segment(nil), segs...),
		bases:    make([]int, len(segs)),
		coreSegs: make([]core.Segment, len(segs)),
	}
	opts := segs[0].Index.Options()
	for i, g := range s.segs {
		if g.Base != s.total {
			return nil, fmt.Errorf("segment: segment %d starts at global id %d, want %d", i, g.Base, s.total)
		}
		if g.Index.Options() != opts {
			return nil, fmt.Errorf("segment: segment %d build options differ from segment 0", i)
		}
		s.bases[i] = g.Base
		s.total += g.Len()
		s.liveBases += g.LiveBases()
		s.numDeleted += g.NumDeleted()
		cs := core.Segment{Index: g.Index, Base: g.Base}
		if g.NumDeleted() > 0 {
			cs.Deleted = g.DeletedLocal
		}
		// Only assign a non-nil *sig.Index: a nil pointer stored in the
		// interface field would read as "has signatures" downstream.
		if g.sig != nil {
			cs.Sig = g.sig
		}
		s.coreSegs[i] = cs
	}
	return s, nil
}

// HasSignatures reports whether every segment carries a signature
// index — the precondition for the signature coarse backend. Segments
// are all-or-none by construction (the writer attaches signatures to
// every new segment or to none), but a set assembled by hand may mix;
// search treats a mixed set as signature-less.
func (s *Set) HasSignatures() bool {
	for _, g := range s.segs {
		if g.sig == nil {
			return false
		}
	}
	return true
}

// SignatureBytes returns the total in-memory size of the segments'
// signature indexes, 0 when none are attached.
func (s *Set) SignatureBytes() int64 {
	var n int64
	for _, g := range s.segs {
		if g.sig != nil {
			n += int64(g.sig.SizeBytes())
		}
	}
	return n
}

// Len returns the number of segments.
func (s *Set) Len() int { return len(s.segs) }

// NumSeqs returns the total record count (tombstoned records included —
// ids stay dense).
func (s *Set) NumSeqs() int { return s.total }

// TotalBases returns the total bases of non-tombstoned records: the
// search-space size significance statistics normalise by, identical
// before and after tombstones are compacted away.
func (s *Set) TotalBases() int { return s.liveBases }

// NumDeleted returns the number of tombstoned records across segments.
func (s *Set) NumDeleted() int { return s.numDeleted }

// Segments returns the snapshot's segments in order. The slice is the
// set's own — callers must treat it as read-only.
func (s *Set) Segments() []*Segment { return s.segs }

// Options returns the segments' shared index build options.
func (s *Set) Options() index.Options { return s.segs[0].Index.Options() }

// CoreSegments returns the snapshot as core search segments. The slice
// is cached and read-only.
func (s *Set) CoreSegments() []core.Segment { return s.coreSegs }

// Locate returns the position of the segment containing global id and
// the local id within it. Panics when id is out of range.
func (s *Set) Locate(id int) (int, int) {
	if id < 0 || id >= s.total {
		panic(fmt.Sprintf("segment: record id %d out of range [0,%d)", id, s.total))
	}
	i := sort.SearchInts(s.bases, id+1) - 1
	return i, id - s.bases[i]
}

// locate returns the segment containing global id and the local id
// within it.
func (s *Set) locate(id int) (*Segment, int) {
	i, local := s.Locate(id)
	return s.segs[i], local
}

// Sequence returns record id's sequence in code form (core.Source).
func (s *Set) Sequence(id int) []byte {
	g, local := s.locate(id)
	return g.Store.Sequence(local)
}

// Desc returns record id's description.
func (s *Set) Desc(id int) string {
	g, local := s.locate(id)
	return g.Store.Desc(local)
}

// SeqLen returns record id's length in bases without decoding.
func (s *Set) SeqLen(id int) int {
	g, local := s.locate(id)
	return g.Store.SeqLen(local)
}

// Deleted reports whether record id is tombstoned.
func (s *Set) Deleted(id int) bool {
	g, local := s.locate(id)
	return g.DeletedLocal(local)
}

// source adapts Set to core.Source: core's Len is the record count,
// while Set.Len is the segment count, so the adapter keeps both names
// honest.
type source struct{ *Set }

// Source returns the set as a core.Source over global record ids.
func (s *Set) Source() core.Source { return source{s} }

func (s source) Len() int { return s.NumSeqs() }
