package segment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nucleodb/internal/db"
	"nucleodb/internal/index"
	"nucleodb/internal/sig"
)

// ManifestFile names the segmented layout's root: a small JSON document
// listing the live segments in order. A directory is a segmented
// database exactly when this file exists. Every mutation of the layout
// follows the same crash-safe discipline: segment files are fully
// written (and renamed into place) before any manifest references
// them, and the manifest itself is replaced by write-temp-then-rename —
// so a reader always finds either the old manifest or the new one,
// both naming only complete files, and leftover files from a crash are
// garbage-collected on the next open.
const ManifestFile = "MANIFEST"

// manifestVersion is the segmented layout format version.
const manifestVersion = 1

// Fault points, in the order a compaction (or any persisted layout
// mutation) passes them. A test hook returning an error at one of
// these points simulates a crash there: the mutation aborts and the
// directory is left exactly as a kill at that instant would leave it.
const (
	// FaultSegmentsWritten fires after new segment files are fully
	// written and renamed into place, before the manifest mentions them.
	FaultSegmentsWritten = "segments-written"
	// FaultBeforeManifestRename fires after the temporary manifest is
	// written, before it is renamed over the live one.
	FaultBeforeManifestRename = "before-manifest-rename"
	// FaultAfterManifestRename fires after the new manifest is live,
	// before superseded segment files are garbage-collected.
	FaultAfterManifestRename = "after-manifest-rename"
)

// FaultHook, when non-nil, is called at each fault point; a non-nil
// return aborts the mutation there. Test-only — production leaves it
// nil. Set it before concurrent use begins (it is read without
// synchronisation on write paths).
var FaultHook func(point string) error

func fault(point string) error {
	if FaultHook != nil {
		return FaultHook(point)
	}
	return nil
}

// manifest is the on-disk JSON document. Once written or decoded it is
// a record of a published state.
//
//cafe:frozen
type manifest struct {
	Version  int           `json:"version"`
	NextSeg  int           `json:"next_seg"`
	Segments []manifestSeg `json:"segments"`
}

// manifestSeg describes one live segment: its file stem, its record
// count (validated against the loaded files), and its tombstoned local
// ids.
//
//cafe:frozen
type manifestSeg struct {
	Name    string `json:"name"`
	Seqs    int    `json:"seqs"`
	Deleted []int  `json:"deleted,omitempty"`
}

// SegName returns the canonical file stem of segment number n.
func SegName(n int) string { return fmt.Sprintf("seg-%06d", n) }

func storePath(dir, name string) string { return filepath.Join(dir, name+".store") }
func indexPath(dir, name string) string { return filepath.Join(dir, name+".ndx") }
func sigPath(dir, name string) string   { return filepath.Join(dir, name+".sig") }

// IsSegmented reports whether dir holds a segmented database (has a
// manifest).
func IsSegmented(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestFile))
	return err == nil
}

// writeFileAtomic writes via a temporary file renamed into place, so a
// crash leaves either the old content or the new, never a torn file.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: write %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	return nil
}

// WriteFiles persists one segment's store and index under its name and
// fires the segments-written fault point. The files are complete and
// in place when this returns nil, but nothing references them until
// the caller writes a manifest — the ordering crash safety rests on.
func WriteFiles(dir string, g *Segment) error {
	if g.Name == "" {
		return fmt.Errorf("segment: cannot persist an unnamed segment")
	}
	if err := writeFileAtomic(storePath(dir, g.Name), g.Store.Save); err != nil {
		return err
	}
	if err := writeFileAtomic(indexPath(dir, g.Name), g.Index.Save); err != nil {
		return err
	}
	if g.sig != nil {
		if err := writeFileAtomic(sigPath(dir, g.Name), g.sig.Save); err != nil {
			return err
		}
	}
	return fault(FaultSegmentsWritten)
}

// RemoveFiles deletes one segment's files, best-effort (used to drop
// the output of an abandoned compaction).
func RemoveFiles(dir, name string) {
	os.Remove(storePath(dir, name))
	os.Remove(indexPath(dir, name))
	os.Remove(sigPath(dir, name))
}

// WriteManifest atomically replaces dir's manifest with one describing
// set, firing the before/after-manifest-rename fault points around the
// rename. nextSeg is the next unused segment number.
func WriteManifest(dir string, set *Set, nextSeg int) error {
	m := manifest{Version: manifestVersion, NextSeg: nextSeg}
	for _, g := range set.Segments() {
		if g.Name == "" {
			return fmt.Errorf("segment: manifest cannot reference an unnamed segment")
		}
		m.Segments = append(m.Segments, manifestSeg{Name: g.Name, Seqs: g.Len(), Deleted: g.DeletedList()})
	}
	buf, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("segment: manifest: %w", err)
	}
	buf = append(buf, '\n')
	path := filepath.Join(dir, ManifestFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("segment: manifest: %w", err)
	}
	if err := fault(FaultBeforeManifestRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: manifest: %w", err)
	}
	return fault(FaultAfterManifestRename)
}

// decodeManifest parses and structurally validates a manifest image.
// It owns every check that can be made without touching the segment
// files: version, a non-empty segment list, path-safe segment names
// (they are joined into file paths, so separators would escape the
// database directory), non-negative counts, and deleted ids that are
// unique and within the segment's declared record range. Cross-file
// validation (declared vs actual record counts) stays in OpenDir.
func decodeManifest(buf []byte) (manifest, error) {
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return manifest{}, fmt.Errorf("segment: manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return manifest{}, fmt.Errorf("segment: manifest version %d, this build reads %d", m.Version, manifestVersion)
	}
	if len(m.Segments) == 0 {
		return manifest{}, fmt.Errorf("segment: manifest lists no segments")
	}
	if m.NextSeg < 0 {
		return manifest{}, fmt.Errorf("segment: manifest next_seg %d is negative", m.NextSeg)
	}
	seen := make(map[string]bool, len(m.Segments))
	for _, ms := range m.Segments {
		switch {
		case ms.Name == "" || ms.Name == "." || ms.Name == "..":
			return manifest{}, fmt.Errorf("segment: manifest names unusable segment %q", ms.Name)
		case strings.ContainsAny(ms.Name, "/\\"):
			return manifest{}, fmt.Errorf("segment: manifest segment name %q contains a path separator", ms.Name)
		case seen[ms.Name]:
			return manifest{}, fmt.Errorf("segment: manifest lists segment %q twice", ms.Name)
		case ms.Seqs < 0:
			return manifest{}, fmt.Errorf("segment: manifest segment %q declares %d records", ms.Name, ms.Seqs)
		}
		seen[ms.Name] = true
		del := make(map[int]bool, len(ms.Deleted))
		for _, id := range ms.Deleted {
			if id < 0 || id >= ms.Seqs {
				return manifest{}, fmt.Errorf("segment: manifest segment %q deletes id %d outside [0,%d)", ms.Name, id, ms.Seqs)
			}
			if del[id] {
				return manifest{}, fmt.Errorf("segment: manifest segment %q deletes id %d twice", ms.Name, id)
			}
			del[id] = true
		}
	}
	return m, nil
}

// readManifest loads and validates dir's manifest.
func readManifest(dir string) (manifest, error) {
	buf, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return manifest{}, fmt.Errorf("segment: open: %w", err)
	}
	return decodeManifest(buf)
}

// OpenDir opens a segmented database directory: loads the manifest,
// loads (or, when paged, disk-opens) every listed segment, validates
// counts, garbage-collects files a crash left unreferenced, and
// returns the live Set plus the next unused segment number.
func OpenDir(dir string, paged bool) (*Set, int, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, 0, err
	}
	segs := make([]*Segment, len(m.Segments))
	base := 0
	closeAll := func() {
		for _, g := range segs {
			if g != nil {
				g.Index.Close()
			}
		}
	}
	for i, ms := range m.Segments {
		sf, err := os.Open(storePath(dir, ms.Name))
		if err != nil {
			closeAll()
			return nil, 0, fmt.Errorf("segment: open: %w", err)
		}
		store, err := db.Load(sf)
		sf.Close()
		if err != nil {
			closeAll()
			return nil, 0, fmt.Errorf("segment: open %s: %w", ms.Name, err)
		}
		var idx *index.Index
		if paged {
			idx, err = index.OpenDisk(indexPath(dir, ms.Name))
		} else {
			var xf *os.File
			xf, err = os.Open(indexPath(dir, ms.Name))
			if err == nil {
				idx, err = index.Load(xf)
				xf.Close()
			}
		}
		if err != nil {
			closeAll()
			return nil, 0, fmt.Errorf("segment: open %s: %w", ms.Name, err)
		}
		if store.Len() != ms.Seqs {
			idx.Close()
			closeAll()
			return nil, 0, fmt.Errorf("segment: %s has %d records, manifest says %d", ms.Name, store.Len(), ms.Seqs)
		}
		g, err := New(ms.Name, store, idx, base)
		if err != nil {
			idx.Close()
			closeAll()
			return nil, 0, err
		}
		if len(ms.Deleted) > 0 {
			g, err = g.WithDeleted(ms.Deleted)
			if err != nil {
				idx.Close()
				closeAll()
				return nil, 0, fmt.Errorf("segment: %s: %w", ms.Name, err)
			}
		}
		// Signatures are optional per segment and not manifest-listed:
		// presence of the .sig file is the source of truth, so older
		// manifests (and signature-less builds) open unchanged. A present
		// but unreadable or mismatched file is an error — silently
		// dropping it would flip the set's HasSignatures under the user.
		if gf, err := os.Open(sigPath(dir, ms.Name)); err == nil {
			sx, err := sig.Load(gf)
			gf.Close()
			if err != nil {
				idx.Close()
				closeAll()
				return nil, 0, fmt.Errorf("segment: open %s signatures: %w", ms.Name, err)
			}
			g, err = g.WithSig(sx)
			if err != nil {
				idx.Close()
				closeAll()
				return nil, 0, fmt.Errorf("segment: open %s: %w", ms.Name, err)
			}
		}
		segs[i] = g
		base += g.Len()
	}
	set, err := NewSet(segs)
	if err != nil {
		closeAll()
		return nil, 0, err
	}
	nextSeg := m.NextSeg
	for _, g := range segs {
		// Defensive: a hand-edited manifest could name segments at or
		// past next_seg; never reuse a live name.
		var n int
		if _, err := fmt.Sscanf(g.Name, "seg-%d", &n); err == nil && n >= nextSeg {
			nextSeg = n + 1
		}
	}
	GC(dir, set)
	return set, nextSeg, nil
}

// GC removes segment files and temporaries the manifest no longer
// references — the debris of a crash between writing files and
// renaming the manifest, or of a completed swap killed before cleanup.
// Best-effort: removal errors are ignored (the next open retries).
func GC(dir string, set *Set) {
	live := map[string]bool{ManifestFile: true}
	for _, g := range set.Segments() {
		live[g.Name+".store"] = true
		live[g.Name+".ndx"] = true
		if g.sig != nil {
			live[g.Name+".sig"] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || live[name] {
			continue
		}
		stale := strings.HasSuffix(name, ".tmp") ||
			(strings.HasPrefix(name, "seg-") &&
				(strings.HasSuffix(name, ".store") || strings.HasSuffix(name, ".ndx") || strings.HasSuffix(name, ".sig")))
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
