package segment

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/index"
)

func testStore(t *testing.T, rng *rand.Rand, n int) *db.Store {
	t.Helper()
	letters := []byte("ACGT")
	var store db.Store
	for i := 0; i < n; i++ {
		seq := make([]byte, 60+rng.Intn(120))
		for j := range seq {
			seq[j] = letters[rng.Intn(4)]
		}
		codes, err := dna.Encode(seq)
		if err != nil {
			t.Fatal(err)
		}
		store.Add("rec", codes)
	}
	return &store
}

func buildSegment(t *testing.T, rng *rand.Rand, name string, n, base int, opts index.Options) *Segment {
	t.Helper()
	store := testStore(t, rng, n)
	idx, err := index.Build(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(name, store, idx, base)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testOpts() index.Options {
	return index.Options{K: 8, StoreOffsets: true}
}

func TestNewValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	store := testStore(t, rng, 3)
	idx, err := index.Build(store, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("g", store, idx, -1); err == nil {
		t.Error("negative base accepted")
	}
	var other db.Store
	if _, err := New("g", &other, idx, 0); err == nil {
		t.Error("store/index length mismatch accepted")
	}
}

func TestWithDeleted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := buildSegment(t, rng, "g", 10, 0, testOpts())
	liveBefore := g.LiveBases()

	d1, err := g.WithDeleted([]int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumDeleted() != 0 || g.DeletedLocal(3) {
		t.Error("WithDeleted mutated the receiver")
	}
	if d1.NumDeleted() != 2 || !d1.DeletedLocal(3) || !d1.DeletedLocal(7) || d1.DeletedLocal(4) {
		t.Errorf("tombstones wrong: %v", d1.DeletedList())
	}
	if want := liveBefore - g.Store.SeqLen(3) - g.Store.SeqLen(7); d1.LiveBases() != want {
		t.Errorf("LiveBases = %d, want %d", d1.LiveBases(), want)
	}

	// Deleting an already-deleted id is a no-op that shares the value.
	d2, err := d1.WithDeleted([]int{7})
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d1 {
		t.Error("all-duplicate delete should return the receiver")
	}
	// Incremental delete accumulates.
	d3, err := d1.WithDeleted([]int{7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d3.DeletedList(), []int{0, 3, 7}) {
		t.Errorf("DeletedList = %v", d3.DeletedList())
	}
	if _, err := d1.WithDeleted([]int{10}); err == nil {
		t.Error("out-of-range local id accepted")
	}
}

func TestNewSetValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := buildSegment(t, rng, "a", 4, 0, testOpts())
	b := buildSegment(t, rng, "b", 6, 4, testOpts())
	set, err := NewSet([]*Segment{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if set.NumSeqs() != 10 || set.Len() != 2 {
		t.Errorf("NumSeqs=%d Len=%d", set.NumSeqs(), set.Len())
	}
	if set.TotalBases() != a.LiveBases()+b.LiveBases() {
		t.Error("TotalBases mismatch")
	}
	// Global id resolution crosses the segment boundary correctly.
	for id := 0; id < 10; id++ {
		want := a.Store
		local := id
		if id >= 4 {
			want, local = b.Store, id-4
		}
		if got := set.Sequence(id); !reflect.DeepEqual(got, want.Sequence(local)) {
			t.Fatalf("Sequence(%d) wrong", id)
		}
		if set.SeqLen(id) != want.SeqLen(local) {
			t.Fatalf("SeqLen(%d) wrong", id)
		}
	}

	if _, err := NewSet(nil); err == nil {
		t.Error("empty set accepted")
	}
	gap := buildSegment(t, rng, "gap", 3, 5, testOpts())
	if _, err := NewSet([]*Segment{a, gap}); err == nil {
		t.Error("non-contiguous bases accepted")
	}
	diff := buildSegment(t, rng, "diff", 3, 4, index.Options{K: 7})
	if _, err := NewSet([]*Segment{a, diff}); err == nil {
		t.Error("differing build options accepted")
	}
}

func TestPickRun(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mk := func(sizes ...int) []*Segment {
		segs := make([]*Segment, len(sizes))
		base := 0
		for i, n := range sizes {
			segs[i] = buildSegment(t, rng, SegName(i), n, base, testOpts())
			base += n
		}
		return segs
	}

	if lo, hi := PickRun(mk(5, 5), 4); lo != -1 || hi != -1 {
		t.Errorf("under-threshold set picked (%d,%d)", lo, hi)
	}
	// The smallest adjacent pair seeds the run; similar-tier neighbours
	// join it.
	segs := mk(40, 2, 3, 2, 40)
	lo, hi := PickRun(segs, 2)
	if lo != 1 || hi != 4 {
		t.Errorf("PickRun = (%d,%d), want (1,4)", lo, hi)
	}
	// A much larger neighbour stays out of the run.
	segs = mk(40, 1, 1, 40)
	lo, hi = PickRun(segs, 2)
	if lo != 1 || hi != 3 {
		t.Errorf("PickRun = (%d,%d), want (1,3)", lo, hi)
	}
	// Runs are capped at maxRunLen.
	segs = mk(1, 1, 1, 1, 1, 1, 1, 1, 1, 1)
	lo, hi = PickRun(segs, 1)
	if hi-lo > maxRunLen {
		t.Errorf("run of %d exceeds cap %d", hi-lo, maxRunLen)
	}
}

// TestMergeRunEquivalence checks the core compaction invariant: the
// merged segment's store holds exactly the run's records (with deleted
// records stubbed) and its index matches a fresh build over them.
func TestMergeRunEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := buildSegment(t, rng, "a", 7, 0, testOpts())
	b := buildSegment(t, rng, "b", 5, 7, testOpts())
	bDel, err := b.WithDeleted([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}

	merged, err := MergeRun("m", []*Segment{a, bDel})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Base != 0 || merged.Len() != 12 {
		t.Fatalf("merged base=%d len=%d", merged.Base, merged.Len())
	}
	if merged.NumDeleted() != 0 {
		t.Error("tombstones survived compaction")
	}
	// Stubs: deleted records keep desc, lose bases; live records intact.
	for i := 0; i < 12; i++ {
		src, local := a, i
		if i >= 7 {
			src, local = bDel, i-7
		}
		if src.DeletedLocal(local) {
			if merged.Store.SeqLen(i) != 0 {
				t.Errorf("deleted record %d kept %d bases", i, merged.Store.SeqLen(i))
			}
		} else if !reflect.DeepEqual(merged.Store.Sequence(i), src.Store.Sequence(local)) {
			t.Errorf("record %d corrupted by merge", i)
		}
	}
	// The index equals a fresh build over the stubbed store.
	want, err := index.Build(merged.Store, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Index.NumSeqs() != want.NumSeqs() || merged.Index.TotalPostings() != want.TotalPostings() {
		t.Errorf("merged index diverges from fresh build: %d/%d postings vs %d/%d",
			merged.Index.NumSeqs(), merged.Index.TotalPostings(), want.NumSeqs(), want.TotalPostings())
	}

	if _, err := MergeRun("x", nil); err == nil {
		t.Error("empty run accepted")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dir := t.TempDir()
	a := buildSegment(t, rng, SegName(0), 6, 0, testOpts())
	b := buildSegment(t, rng, SegName(1), 4, 6, testOpts())
	b, err := b.WithDeleted([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet([]*Segment{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range set.Segments() {
		if err := WriteFiles(dir, g); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteManifest(dir, set, 2); err != nil {
		t.Fatal(err)
	}
	if !IsSegmented(dir) {
		t.Fatal("IsSegmented false after WriteManifest")
	}

	got, nextSeg, err := OpenDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if nextSeg != 2 {
		t.Errorf("nextSeg = %d, want 2", nextSeg)
	}
	if got.NumSeqs() != 10 || got.Len() != 2 || got.NumDeleted() != 1 {
		t.Fatalf("reloaded set: seqs=%d segs=%d deleted=%d", got.NumSeqs(), got.Len(), got.NumDeleted())
	}
	if !got.Deleted(8) {
		t.Error("tombstone lost on reload")
	}
	for id := 0; id < 10; id++ {
		if !reflect.DeepEqual(got.Sequence(id), set.Sequence(id)) {
			t.Fatalf("sequence %d differs after reload", id)
		}
		if got.Desc(id) != set.Desc(id) {
			t.Fatalf("desc %d differs after reload", id)
		}
	}

	// Paged open reads the same data through the disk index.
	paged, _, err := OpenDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, g := range paged.Segments() {
			g.Index.Close()
		}
	}()
	for _, g := range paged.Segments() {
		if !g.Index.Disk() {
			t.Error("paged open produced an in-memory index")
		}
	}
}

func TestOpenDirValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	if _, _, err := OpenDir(dir, false); err == nil {
		t.Error("missing manifest accepted")
	}
	g := buildSegment(t, rng, SegName(0), 3, 0, testOpts())
	set, err := NewSet([]*Segment{g})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFiles(dir, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, set, 1); err != nil {
		t.Fatal(err)
	}
	// Corrupt the record count: open must refuse.
	m, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	bad := []byte(string(m))
	bad = []byte(replaceOnce(string(bad), `"seqs": 3`, `"seqs": 4`))
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDir(dir, false); err == nil {
		t.Error("record-count mismatch accepted")
	}
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}

// TestGC checks that open removes files a crash left unreferenced but
// never touches live segment files or foreign files.
func TestGC(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dir := t.TempDir()
	g := buildSegment(t, rng, SegName(0), 3, 0, testOpts())
	set, err := NewSet([]*Segment{g})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFiles(dir, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, set, 1); err != nil {
		t.Fatal(err)
	}
	// Debris: an orphaned segment pair, a torn temp file, and an
	// unrelated file that must survive.
	for _, name := range []string{"seg-000009.store", "seg-000009.ndx", "seg-000010.store.tmp", "MANIFEST.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := OpenDir(dir, false); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"seg-000009.store", "seg-000009.ndx", "seg-000010.store.tmp", "MANIFEST.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("debris %s survived GC", name)
		}
	}
	for _, name := range []string{"README", SegName(0) + ".store", SegName(0) + ".ndx", ManifestFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("GC removed %s: %v", name, err)
		}
	}
}

// TestOpenDirNextSegDefensive checks that a manifest whose next_seg
// lags behind a live segment name never causes name reuse.
func TestOpenDirNextSegDefensive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dir := t.TempDir()
	g := buildSegment(t, rng, SegName(7), 3, 0, testOpts())
	set, err := NewSet([]*Segment{g})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFiles(dir, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, set, 0); err != nil {
		t.Fatal(err)
	}
	_, nextSeg, err := OpenDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if nextSeg != 8 {
		t.Errorf("nextSeg = %d, want 8 (past live seg-000007)", nextSeg)
	}
}

func TestFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := buildSegment(t, rng, "a", 4, 0, testOpts())
	single, err := NewSet([]*Segment{a})
	if err != nil {
		t.Fatal(err)
	}
	store, idx, err := Flatten(single)
	if err != nil {
		t.Fatal(err)
	}
	if store != a.Store || idx != a.Index {
		t.Error("clean single-segment flatten should return the segment's own store and index")
	}

	b := buildSegment(t, rng, "b", 3, 4, testOpts())
	multi, err := NewSet([]*Segment{a, b})
	if err != nil {
		t.Fatal(err)
	}
	store, idx, err = Flatten(multi)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 7 || idx.NumSeqs() != 7 {
		t.Errorf("flattened to %d/%d seqs, want 7", store.Len(), idx.NumSeqs())
	}
}
