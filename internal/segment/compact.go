package segment

import (
	"fmt"

	"nucleodb/internal/db"
	"nucleodb/internal/index"
	"nucleodb/internal/sig"
)

// DefaultMaxSegments is the default compaction trigger: compaction
// folds segments while a set holds more than this many.
const DefaultMaxSegments = 4

// maxRunLen caps how many segments one compaction folds at a time, so
// a single merge's transient memory stays bounded.
const maxRunLen = 8

// PickRun selects the adjacent run [lo, hi) of segments the size-tiered
// policy would fold next, or (-1, -1) when the set already satisfies
// the policy (at most maxSegments segments). The run starts at the
// adjacent pair with the smallest combined record count — merging the
// smallest neighbours first keeps total rewrite work O(n·log n) across
// the database's life, the classic size-tiered argument — and extends
// over neighbours of similar tier (no larger than twice the run's
// accumulated count), so a wave of small appends folds in one merge
// instead of repeatedly rewriting into a large segment.
func PickRun(segs []*Segment, maxSegments int) (int, int) {
	if maxSegments < 1 {
		maxSegments = 1
	}
	if len(segs) <= maxSegments {
		return -1, -1
	}
	lo := 0
	best := segs[0].Len() + segs[1].Len()
	for i := 1; i+1 < len(segs); i++ {
		if c := segs[i].Len() + segs[i+1].Len(); c < best {
			best, lo = c, i
		}
	}
	hi, run := lo+2, best
	for hi < len(segs) && hi-lo < maxRunLen && segs[hi].Len() <= 2*run {
		run += segs[hi].Len()
		hi++
	}
	for lo > 0 && hi-lo < maxRunLen && segs[lo-1].Len() <= 2*run {
		run += segs[lo-1].Len()
		lo--
	}
	return lo, hi
}

// MergeRun folds an adjacent run of segments into one new segment named
// name (pass "" for an unpersisted segment), reclaiming tombstones:
// deleted records become empty stubs — the description survives, the
// sequence bytes and postings are dropped — so global ids stay dense
// and stable while the dead data's cost disappears.
//
// Without tombstones the merged index comes from index.Merge, which is
// byte-identical to a fresh build over the concatenated records except
// for the stop list (union of the inputs'; identical when StopFraction
// is 0, the default). With tombstones the index is rebuilt from the
// stubbed store. Either way search results over the merged segment are
// identical to the unmerged run's — the crash-safety suite reopens and
// re-checks this at every fault point.
//
// The inputs are immutable and only read, so MergeRun runs safely off
// the writer lock, concurrent with searches over the same segments.
func MergeRun(name string, run []*Segment) (*Segment, error) {
	if len(run) == 0 {
		return nil, fmt.Errorf("segment: empty merge run")
	}
	deleted := 0
	for _, g := range run {
		deleted += g.NumDeleted()
	}
	store := &db.Store{}
	for _, g := range run {
		for i := 0; i < g.Len(); i++ {
			if g.DeletedLocal(i) {
				store.Add(g.Store.Desc(i), nil)
			} else {
				store.Add(g.Store.Desc(i), g.Store.Sequence(i))
			}
		}
	}
	var idx *index.Index
	var err error
	if deleted == 0 && len(run) > 1 {
		idx = run[0].Index
		for _, g := range run[1:] {
			idx, err = index.Merge(idx, g.Index)
			if err != nil {
				return nil, fmt.Errorf("segment: merge: %w", err)
			}
		}
	} else {
		// Tombstones to reclaim (or a single-segment flatten): rebuild
		// from the stubbed store rather than aliasing an input index.
		idx, err = index.Build(store, run[0].Index.Options())
		if err != nil {
			return nil, fmt.Errorf("segment: merge: %w", err)
		}
	}
	merged, err := New(name, store, idx, run[0].Base)
	if err != nil {
		return nil, err
	}
	// Signatures don't merge bit-wise (each input sized its Bloom rows
	// to its own sequence count), so when every input carries them the
	// output is rebuilt over the merged store — keeping the writer's
	// all-or-none invariant across compactions. A mixed run (possible
	// only on hand-assembled sets) merges to a signature-less segment.
	all := true
	for _, g := range run {
		if g.sig == nil {
			all = false
			break
		}
	}
	if all {
		merged, err = merged.BuildSig(sig.Options{
			BitsPerKmer: run[0].sig.BitsPerKmer(),
			Hashes:      run[0].sig.Hashes(),
		})
		if err != nil {
			return nil, fmt.Errorf("segment: merge signatures: %w", err)
		}
	}
	return merged, nil
}

// Flatten reduces a whole set to a single (store, index) pair — the
// legacy monolithic layout. A one-segment set with no tombstones
// returns its own store and index (so flattening a paged single-segment
// database preserves its disk-opened index); anything else merges into
// fresh in-memory structures.
func Flatten(s *Set) (*db.Store, *index.Index, error) {
	segs := s.Segments()
	if len(segs) == 1 && segs[0].NumDeleted() == 0 {
		return segs[0].Store, segs[0].Index, nil
	}
	merged, err := MergeRun("", segs)
	if err != nil {
		return nil, nil, err
	}
	return merged.Store, merged.Index, nil
}
