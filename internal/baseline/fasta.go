package baseline

import (
	"nucleodb/internal/align"
	"nucleodb/internal/kmer"
)

// FastaOptions configures the FASTA-style scanner.
type FastaOptions struct {
	// KTup is the word length for the hit table (FASTA's ktup);
	// nucleotide searches conventionally use 4–6.
	KTup int
	// Band is the half-width of the banded alignment run around the
	// best diagonal of each sequence.
	Band int
	// Diagonals is how many top diagonal regions are re-scored with a
	// banded alignment per sequence.
	Diagonals int
}

// DefaultFastaOptions returns the conventional nucleotide settings.
func DefaultFastaOptions() FastaOptions {
	return FastaOptions{KTup: 6, Band: 16, Diagonals: 3}
}

// FastaScan runs the FASTA-style heuristic over every sequence: ktup
// word hits are binned by diagonal (init1-style diagonal scores), the
// best few diagonals are re-scored with a banded Smith–Waterman, and
// the sequence's score is the best banded score. It is faster than the
// full scan but still visits the whole collection.
func FastaScan(src Source, query []byte, s align.Scoring, opts FastaOptions, minScore, limit int) []Result {
	if opts.KTup < 1 {
		opts.KTup = DefaultFastaOptions().KTup
	}
	if opts.Band < 1 {
		opts.Band = DefaultFastaOptions().Band
	}
	if opts.Diagonals < 1 {
		opts.Diagonals = DefaultFastaOptions().Diagonals
	}
	coder := kmer.MustCoder(opts.KTup)
	table := newHitTable(coder, query)

	var rs []Result
	var diagScores map[int]int
	for id := 0; id < src.Len(); id++ {
		seq := src.Sequence(id)
		if len(seq) < opts.KTup {
			continue
		}
		// Diagonal accumulation: every shared ktup word adds to the
		// score of its diagonal (subject offset − query offset).
		if diagScores == nil {
			diagScores = make(map[int]int)
		} else {
			clear(diagScores)
		}
		coder.ExtractFunc(seq, func(sPos int, t kmer.Term) {
			for _, qPos := range table.lookup(t) {
				diagScores[sPos-qPos]++
			}
		})
		if len(diagScores) == 0 {
			continue
		}
		best := 0
		for _, centre := range topDiagonals(diagScores, opts.Diagonals) {
			score, _, _ := align.BandedLocalScore(query, seq, centre, opts.Band, s)
			if score > best {
				best = score
			}
		}
		if best >= minScore && best > 0 {
			rs = append(rs, Result{ID: id, Score: best})
		}
	}
	return sortResults(rs, limit)
}

// hitTable maps each ktup word of the query to its query offsets.
type hitTable struct {
	coder *kmer.Coder
	pos   map[kmer.Term][]int
}

func newHitTable(coder *kmer.Coder, query []byte) *hitTable {
	t := &hitTable{coder: coder, pos: make(map[kmer.Term][]int)}
	coder.ExtractFunc(query, func(pos int, term kmer.Term) {
		t.pos[term] = append(t.pos[term], pos)
	})
	return t
}

func (t *hitTable) lookup(term kmer.Term) []int { return t.pos[term] }

// topDiagonals returns the n diagonals with the highest hit counts.
func topDiagonals(scores map[int]int, n int) []int {
	type ds struct{ diag, score int }
	all := make([]ds, 0, len(scores))
	for d, s := range scores {
		all = append(all, ds{d, s})
	}
	// Partial selection: n is tiny, so a simple selection pass is
	// cheaper than sorting the whole map.
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, 0, n)
	for k := 0; k < n; k++ {
		bi := -1
		for i := range all {
			if all[i].score < 0 {
				continue
			}
			if bi < 0 || all[i].score > all[bi].score ||
				all[i].score == all[bi].score && all[i].diag < all[bi].diag {
				bi = i
			}
		}
		if bi < 0 {
			break
		}
		out = append(out, all[bi].diag)
		all[bi].score = -1
	}
	return out
}
