// Package baseline implements the exhaustive-search comparators the
// paper measures the partitioned approach against: a full
// Smith–Waterman scan (the ssearch-style gold standard), a FASTA-style
// diagonal-heuristic scan, and a BLAST1-style seed-and-extend scan.
// Each scans every sequence in the collection — their cost grows
// linearly with collection size, which is the paper's motivation for
// indexing.
package baseline

import (
	"sort"

	"nucleodb/internal/align"
)

// Source supplies the sequences to scan. *db.Store satisfies it.
type Source interface {
	Len() int
	Sequence(i int) []byte
}

// Result is one ranked answer: a sequence id and its similarity score.
type Result struct {
	ID    int
	Score int
}

// sortResults orders by descending score, ascending id for ties, and
// truncates to limit if limit > 0.
func sortResults(rs []Result, limit int) []Result {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].ID < rs[j].ID
	})
	if limit > 0 && len(rs) > limit {
		rs = rs[:limit]
	}
	return rs
}

// SWScan runs the exhaustive Smith–Waterman scan: the full local
// alignment score of the query against every sequence. It returns the
// top limit results with score ≥ minScore. This is the accuracy gold
// standard and the slowest baseline.
func SWScan(src Source, query []byte, s align.Scoring, minScore, limit int) []Result {
	var rs []Result
	for id := 0; id < src.Len(); id++ {
		score, _, _ := align.LocalScore(query, src.Sequence(id), s)
		if score >= minScore && score > 0 {
			rs = append(rs, Result{ID: id, Score: score})
		}
	}
	return sortResults(rs, limit)
}
