package baseline

import (
	"math/rand"
	"testing"

	"nucleodb/internal/align"
	"nucleodb/internal/db"
	"nucleodb/internal/dna"
	"nucleodb/internal/gen"
)

// testCollection builds a small synthetic store with known homology: a
// family of mutated copies of one root plus random singletons. It
// returns the store, a query fragment of the root, and the family ids.
func testCollection(t *testing.T, seed int64) (*db.Store, []byte, map[int]bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var store db.Store
	family := map[int]bool{}

	root := gen.RandomSequence(rng, 600, [4]float64{0.25, 0.25, 0.25, 0.25}, 0)
	model := gen.MutationModel{SubstitutionRate: 0.06, InsertionRate: 0.01, DeletionRate: 0.01}
	for i := 0; i < 5; i++ {
		id := store.Add("family", gen.Mutate(rng, root, model))
		family[id] = true
	}
	for i := 0; i < 45; i++ {
		store.Add("noise", gen.RandomSequence(rng, 400+rng.Intn(400), [4]float64{0.25, 0.25, 0.25, 0.25}, 0))
	}
	query := gen.Fragment(rng, root, 200)
	return &store, query, family
}

func precisionAtK(results []Result, relevant map[int]bool, k int) float64 {
	if k > len(results) {
		k = len(results)
	}
	if k == 0 {
		return 0
	}
	hit := 0
	for _, r := range results[:k] {
		if relevant[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

func TestSWScanFindsFamily(t *testing.T) {
	store, query, family := testCollection(t, 31)
	rs := SWScan(store, query, align.DefaultScoring(), 0, 10)
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	if p := precisionAtK(rs, family, len(family)); p < 0.99 {
		t.Errorf("SW scan precision@%d = %.2f, want 1.0", len(family), p)
	}
	// Results must be sorted by descending score.
	for i := 1; i < len(rs); i++ {
		if rs[i].Score > rs[i-1].Score {
			t.Fatal("results not sorted")
		}
	}
}

func TestSWScanMinScoreAndLimit(t *testing.T) {
	store, query, _ := testCollection(t, 32)
	all := SWScan(store, query, align.DefaultScoring(), 0, 0)
	if len(all) == 0 {
		t.Fatal("no results")
	}
	top3 := SWScan(store, query, align.DefaultScoring(), 0, 3)
	if len(top3) != 3 {
		t.Fatalf("limit ignored: %d results", len(top3))
	}
	threshold := all[0].Score
	strict := SWScan(store, query, align.DefaultScoring(), threshold, 0)
	for _, r := range strict {
		if r.Score < threshold {
			t.Errorf("minScore violated: %+v", r)
		}
	}
}

func TestFastaScanAgreesWithSWOnTopHits(t *testing.T) {
	store, query, family := testCollection(t, 33)
	s := align.DefaultScoring()
	fasta := FastaScan(store, query, s, DefaultFastaOptions(), 0, 10)
	if p := precisionAtK(fasta, family, len(family)); p < 0.8 {
		t.Errorf("FASTA precision@%d = %.2f, want ≥ 0.8", len(family), p)
	}
	// The heuristic's scores are bounded by the exhaustive scores.
	swScores := map[int]int{}
	for _, r := range SWScan(store, query, s, 0, 0) {
		swScores[r.ID] = r.Score
	}
	for _, r := range fasta {
		if sw, ok := swScores[r.ID]; ok && r.Score > sw {
			t.Errorf("FASTA score %d exceeds SW %d for id %d", r.Score, sw, r.ID)
		}
	}
}

func TestBlastScanAgreesWithSWOnTopHits(t *testing.T) {
	store, query, family := testCollection(t, 34)
	s := align.DefaultScoring()
	blast := BlastScan(store, query, s, DefaultBlastOptions(), 0, 10)
	if p := precisionAtK(blast, family, len(family)); p < 0.8 {
		t.Errorf("BLAST precision@%d = %.2f, want ≥ 0.8", len(family), p)
	}
}

func TestBlastFindsExactSubstring(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	var store db.Store
	target := gen.RandomSequence(rng, 500, [4]float64{0.25, 0.25, 0.25, 0.25}, 0)
	store.Add("target", target)
	for i := 0; i < 20; i++ {
		store.Add("noise", gen.RandomSequence(rng, 500, [4]float64{0.25, 0.25, 0.25, 0.25}, 0))
	}
	query := gen.Fragment(rng, target, 80)
	rs := BlastScan(&store, query, align.DefaultScoring(), DefaultBlastOptions(), 0, 1)
	if len(rs) == 0 || rs[0].ID != 0 {
		t.Fatalf("BLAST missed an exact substring: %+v", rs)
	}
	if want := len(query) * align.DefaultScoring().Match; rs[0].Score != want {
		t.Errorf("exact substring score %d, want %d", rs[0].Score, want)
	}
}

func TestFastaFindsExactSubstring(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	var store db.Store
	target := gen.RandomSequence(rng, 500, [4]float64{0.25, 0.25, 0.25, 0.25}, 0)
	store.Add("target", target)
	for i := 0; i < 20; i++ {
		store.Add("noise", gen.RandomSequence(rng, 500, [4]float64{0.25, 0.25, 0.25, 0.25}, 0))
	}
	query := gen.Fragment(rng, target, 80)
	rs := FastaScan(&store, query, align.DefaultScoring(), DefaultFastaOptions(), 0, 1)
	if len(rs) == 0 || rs[0].ID != 0 {
		t.Fatalf("FASTA missed an exact substring: %+v", rs)
	}
}

func TestScansOnEmptyStore(t *testing.T) {
	var store db.Store
	q := dna.MustEncode("ACGTACGTACGTACGT")
	s := align.DefaultScoring()
	if rs := SWScan(&store, q, s, 0, 10); len(rs) != 0 {
		t.Error("SW scan on empty store returned results")
	}
	if rs := FastaScan(&store, q, s, DefaultFastaOptions(), 0, 10); len(rs) != 0 {
		t.Error("FASTA scan on empty store returned results")
	}
	if rs := BlastScan(&store, q, s, DefaultBlastOptions(), 0, 10); len(rs) != 0 {
		t.Error("BLAST scan on empty store returned results")
	}
}

func TestScansWithShortSequences(t *testing.T) {
	var store db.Store
	store.Add("tiny", dna.MustEncode("ACG"))
	store.Add("empty", nil)
	q := dna.MustEncode("ACGTACGTACGTACGT")
	s := align.DefaultScoring()
	// Heuristic scans skip too-short sequences; SW still scores them.
	if rs := SWScan(&store, q, s, 0, 10); len(rs) == 0 {
		t.Error("SW scan ignored a short sequence with a partial match")
	}
	_ = FastaScan(&store, q, s, DefaultFastaOptions(), 0, 10)
	_ = BlastScan(&store, q, s, DefaultBlastOptions(), 0, 10)
}

func TestTopDiagonals(t *testing.T) {
	scores := map[int]int{3: 10, -2: 7, 0: 10, 9: 1}
	got := topDiagonals(scores, 2)
	// Ties broken toward the smaller diagonal: 0 before 3.
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("topDiagonals = %v, want [0 3]", got)
	}
	if got := topDiagonals(scores, 10); len(got) != 4 {
		t.Errorf("topDiagonals(all) = %v", got)
	}
	if got := topDiagonals(map[int]int{}, 3); len(got) != 0 {
		t.Errorf("topDiagonals(empty) = %v", got)
	}
}
