package baseline

import (
	"nucleodb/internal/align"
	"nucleodb/internal/kmer"
)

// BlastOptions configures the BLAST1-style scanner.
type BlastOptions struct {
	// W is the word length triggering extensions; BLASTN's classic
	// default is 11.
	W int
	// XDrop stops an ungapped extension when the running score falls
	// this far below the best seen.
	XDrop int
}

// DefaultBlastOptions returns the classic nucleotide settings.
func DefaultBlastOptions() BlastOptions {
	return BlastOptions{W: 11, XDrop: 20}
}

// BlastScan runs a BLAST1-style scan over every sequence: exact W-mer
// word hits seed ungapped x-drop extensions, and the sequence's score
// is its best high-scoring segment pair. Like FASTA it is heuristic —
// it can miss alignments with no exact W-mer seed — but it is much
// faster than full dynamic programming.
func BlastScan(src Source, query []byte, s align.Scoring, opts BlastOptions, minScore, limit int) []Result {
	if opts.W < 1 || opts.W > kmer.MaxK {
		opts.W = DefaultBlastOptions().W
	}
	if opts.XDrop < 1 {
		opts.XDrop = DefaultBlastOptions().XDrop
	}
	coder := kmer.MustCoder(opts.W)
	table := newHitTable(coder, query)

	var rs []Result
	// seen dedupes extensions per (diagonal): once an extension from a
	// diagonal has covered a subject position, later seeds on the same
	// diagonal inside that span are skipped, the standard BLAST trick.
	seen := make(map[int]int) // diagonal → subject end of last extension
	for id := 0; id < src.Len(); id++ {
		seq := src.Sequence(id)
		if len(seq) < opts.W {
			continue
		}
		clear(seen)
		best := 0
		coder.ExtractFunc(seq, func(sPos int, t kmer.Term) {
			qPositions := table.lookup(t)
			if len(qPositions) == 0 {
				return
			}
			for _, qPos := range qPositions {
				diag := sPos - qPos
				if end, ok := seen[diag]; ok && sPos < end {
					continue
				}
				score, _, _, _, bEnd := align.ExtendUngapped(query, seq, qPos, sPos, opts.W, s, opts.XDrop)
				seen[diag] = bEnd
				if score > best {
					best = score
				}
			}
		})
		if best >= minScore && best > 0 {
			rs = append(rs, Result{ID: id, Score: best})
		}
	}
	return sortResults(rs, limit)
}
