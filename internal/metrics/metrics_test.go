package metrics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset, Value = %d, want 0", got)
	}
}

func TestHistogramCountSumMean(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("Sum = %v, want 6ms", h.Sum())
	}
	if h.Mean() != 3*time.Millisecond {
		t.Fatalf("Mean = %v, want 3ms", h.Mean())
	}
}

func TestHistogramResetZeroes(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatalf("after Reset: count %d sum %v mean %v, want all zero", h.Count(), h.Sum(), h.Mean())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("after Reset: p50 = %v, want 0", q)
	}
}

// TestHistogramQuantilesMonotone is the satellite invariant: for any
// observation set, quantile estimates never decrease as q increases.
func TestHistogramQuantilesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			h.Observe(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		vals := h.Quantiles(qs...)
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("trial %d: quantiles not monotone: q=%.2f → %v but q=%.2f → %v",
					trial, qs[i-1], vals[i-1], qs[i], vals[i])
			}
		}
		if vals[len(vals)-1] <= 0 {
			t.Fatalf("trial %d: max quantile %v not positive", trial, vals[len(vals)-1])
		}
	}
}

// TestHistogramQuantileBrackets checks the estimate is the upper bucket
// bound of the true quantile: at least the true value, at most 2× it
// (bucket ratio), for identical observations.
func TestHistogramQuantileBrackets(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(300 * time.Microsecond)
	}
	got := h.Quantile(0.5)
	if got < 300*time.Microsecond || got > 600*time.Microsecond {
		t.Fatalf("p50 of constant 300µs = %v, want within [300µs, 600µs]", got)
	}
}

func TestBucketForBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // Observe clamps, bucketFor tolerates
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Hour, numBuckets - 1},
	}
	for _, c := range cases {
		if c.d < 0 {
			continue
		}
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 0; i < numBuckets; i++ {
		if got := bucketFor(BucketBound(i)); got != i {
			t.Errorf("bucketFor(BucketBound(%d)) = %d, want %d", i, got, i)
		}
	}
}

func TestRegistryHandlesAndReset(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c2 := r.Counter("x")
	if c1 != c2 {
		t.Fatal("Counter(\"x\") returned distinct handles")
	}
	c1.Add(5)
	r.Histogram("lat").Observe(time.Millisecond)
	r.Reset()
	if c1.Value() != 0 {
		t.Fatalf("counter survives registry Reset: %d", c1.Value())
	}
	if n := r.Histogram("lat").Count(); n != 0 {
		t.Fatalf("histogram survives registry Reset: %d", n)
	}
}

func TestRegistryJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("searches_total").Add(3)
	r.Histogram("search_latency").Observe(2 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["searches_total"] != 3 {
		t.Fatalf("searches_total = %d, want 3", snap.Counters["searches_total"])
	}
	h, ok := snap.Histograms["search_latency"]
	if !ok || h.Count != 1 {
		t.Fatalf("search_latency snapshot missing or wrong: %+v", snap.Histograms)
	}
	if h.P50US < h.MeanUS/2 || h.P99US < h.P50US {
		t.Fatalf("implausible quantiles: %+v", h)
	}
}

func TestRegistryTextExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Histogram("lat").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a_total") || !strings.Contains(out, "b_total") || !strings.Contains(out, "p99") {
		t.Fatalf("text export missing fields:\n%s", out)
	}
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	PublishExpvar()
	PublishExpvar() // second call must not panic on duplicate name
}
