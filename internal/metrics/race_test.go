package metrics

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentUse hammers one registry from many goroutines —
// counter adds, histogram observes, quantile reads, snapshots, and
// resets all interleaved. Run under -race (make check) this certifies
// the instruments are data-race free.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_latency")
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				switch i % 100 {
				case 0:
					_ = h.Quantiles(0.5, 0.9, 0.99)
				case 1:
					_ = r.Snapshot()
				case 2:
					_ = r.Counter("late_registration").Value()
				case 3:
					_ = r.WriteJSON(io.Discard)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != goroutines*iters {
		t.Fatalf("lost counter updates: %d, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("shared_latency").Count(); got != goroutines*iters {
		t.Fatalf("lost histogram observations: %d, want %d", got, goroutines*iters)
	}
}
