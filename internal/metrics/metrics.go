// Package metrics provides the process-wide observability primitives
// the query pipeline reports through: atomic counters, fixed-bucket
// latency histograms, and a registry that exports everything as JSON
// or through expvar. The primitives are deliberately minimal — no
// labels, no dependency beyond the standard library — and safe for
// concurrent use: every mutation is a single atomic operation, so
// recording on the search path costs a handful of uncontended atomic
// adds and never takes a lock.
package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (between resets) int64, safe
// for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a settable int64 level (unlike Counter, it moves both ways
// — segment counts, queue depths), safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset sets the gauge back to zero.
func (g *Gauge) Reset() { g.v.Store(0) }

// numBuckets covers 1µs up to ~9 minutes with power-of-two bucket
// boundaries; slower observations land in the last bucket.
const numBuckets = 30

// Histogram records durations into exponential buckets (bucket i holds
// observations ≤ 1µs·2^i). All fields are atomics, so Observe is
// lock-free and the histogram is safe for concurrent use. Quantile
// estimates are upper bucket bounds — exact enough to tell a 50µs
// coarse phase from a 5ms fine phase, which is what stage accounting
// needs.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// bucketFor returns the index of the smallest bucket whose upper bound
// is ≥ d.
func bucketFor(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	// ceil(log2(d in µs)), clamped to the last bucket.
	us := uint64((d + time.Microsecond - 1) / time.Microsecond)
	b := bits.Len64(us - 1)
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// BucketBound returns bucket i's inclusive upper bound.
func BucketBound(i int) time.Duration { return time.Microsecond << i }

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation, zero when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Reset zeroes every bucket and the count and sum.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound of
// the bucket containing it; zero when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Quantiles(q)[0]
}

// Quantiles estimates several quantiles from one consistent snapshot
// of the buckets, so the results are monotone in q even while other
// goroutines keep observing.
func (h *Histogram) Quantiles(qs ...float64) []time.Duration {
	var counts [numBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	out := make([]time.Duration, len(qs))
	if total == 0 {
		return out
	}
	for k, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		rank := int64(q * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var cum int64
		for i := range counts {
			cum += counts[i]
			if cum > rank {
				out[k] = BucketBound(i)
				break
			}
		}
	}
	return out
}

// Registry names a set of counters and histograms. Lookup/creation
// takes a mutex; the returned handles mutate lock-free, so callers on
// hot paths fetch handles once and hold them.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered counter and histogram (the instruments
// stay registered; handles stay valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// HistogramSnapshot is the exported view of one histogram.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
}

// Snapshot is a point-in-time copy of a registry's instruments.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		qs := h.Quantiles(0.50, 0.90, 0.99)
		s.Histograms[name] = HistogramSnapshot{
			Count:  h.Count(),
			MeanUS: float64(h.Mean()) / float64(time.Microsecond),
			P50US:  float64(qs[0]) / float64(time.Microsecond),
			P90US:  float64(qs[1]) / float64(time.Microsecond),
			P99US:  float64(qs[2]) / float64(time.Microsecond),
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteText writes the snapshot as one "name value" line per counter
// and one summary line per histogram, sorted by name — the
// human-facing form of the same data.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%-32s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%-32s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "%-32s count %d  mean %.0fµs  p50 %.0fµs  p90 %.0fµs  p99 %.0fµs\n",
			name, h.Count, h.MeanUS, h.P50US, h.P90US, h.P99US); err != nil {
			return err
		}
	}
	return nil
}

// defaultRegistry is the process-wide registry the engine records into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

var publishOnce sync.Once

// PublishExpvar exposes the default registry under the expvar name
// "nucleodb" (so any expvar endpoint serves engine metrics). Safe to
// call more than once; only the first call publishes.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("nucleodb", expvar.Func(func() any {
			return defaultRegistry.Snapshot()
		}))
	})
}
