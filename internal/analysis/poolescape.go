package analysis

// The poolescape pass: flow-sensitive tracking of pooled scratch
// memory. A value is "pooled" when it comes from (*sync.Pool).Get,
// from a function declared //cafe:pooled (the Searcher scratch
// getters), or from a struct field declared //cafe:pooled. Pooled
// memory is owned by its pool: it must not outlive the call that
// obtained it — returned to the caller, stored into a struct field,
// global, or foreign container, sent on a channel, captured by a
// goroutine the caller does not join, or passed to something that
// retains it — unless it is copied first or the receiving site is
// itself part of the pool's machinery.
//
// The companion alias pass (alias.go) reports the sharper, sneakier
// variant: an append or slice expression whose BASE is pooled creates
// a view that shares the pool's backing array without being the
// pooled object — exactly the shape of the PR-5 both-strands merge
// bug, where append(forward, reverse...) handed callers memory that
// the next query would scribble over. Both passes run on the same
// dataflow (shared via poolShared), and differ only in which
// component of the tracked fact reaches a sink: Pooled → poolescape,
// Alias sites → alias.
//
// Known limits, all deliberate (documented in the README):
//   - Calls through function values are opaque: no retention check,
//     no result fact. The hotpath pass has the same stance.
//   - Flow through a method receiver is not tracked (topKHeap holding
//     candBuf backing is annotated at the Searcher field instead).
//   - Stores through plain pointers (*p = v) and type-switch bindings
//     are not tracked.
//   - Summaries compose transitively over the module call graph
//     (callgraph.go), callees-first with a summaryDepth-bounded
//     fixpoint inside recursive components; only a laundering chain
//     longer than summaryDepth hops through a cycle is invisible.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscapePass reports pooled scratch that escapes its owning call.
type PoolEscapePass struct {
	Shared *PoolShared
}

// Name implements Pass.
func (p *PoolEscapePass) Name() string { return "poolescape" }

// Run implements Pass.
func (p *PoolEscapePass) Run(prog *Program, pkg *Package) []Finding {
	if p.Shared == nil {
		p.Shared = &PoolShared{}
	}
	return p.Shared.analyze(prog, pkg).escape
}

// PoolShared caches the pooled-buffer dataflow so the poolescape and
// alias passes run it once per package between them. The zero value
// is ready to use; DefaultPasses hands one instance to both passes.
type PoolShared struct {
	once    bool
	sums    map[*types.Func]*funcSummary
	decls   map[*types.Func]goDecl
	results map[*Package]*poolResults
}

type poolResults struct {
	escape []Finding
	alias  []Finding
}

func (s *PoolShared) analyze(prog *Program, pkg *Package) *poolResults {
	if !s.once {
		s.once = true
		s.sums, s.decls = computeSummaries(prog)
		s.results = map[*Package]*poolResults{}
	}
	if r := s.results[pkg]; r != nil {
		return r
	}
	r := &poolResults{}
	t := &poolTracker{
		prog:   prog,
		pkg:    pkg,
		sums:   s.sums,
		decls:  s.decls,
		escape: &r.escape,
		alias:  &r.alias,
		seen:   map[string]bool{},
	}
	pkg.funcDecls(t.analyzeDecl)
	s.results[pkg] = r
	return r
}

// poolTracker runs the pooled-buffer dataflow over one package,
// either collecting findings (reporting mode) or parameter-flow bits
// (summary mode, driven by computeSummaries).
type poolTracker struct {
	prog  *Program
	pkg   *Package
	sums  map[*types.Func]*funcSummary
	decls map[*types.Func]goDecl

	summaryMode bool
	cur         *funcSummary // summary being accumulated

	escape *[]Finding
	alias  *[]Finding
	seen   map[string]bool

	// report is true during the post-fixpoint walk, when sinks fire;
	// the fixpoint iterations themselves are pure transfers.
	report bool
	// enclBody is the enclosing declaration's body — goroutine join
	// checks look for the Wait() there, even from nested literals.
	enclBody *ast.BlockStmt
	depth    int
}

func (t *poolTracker) info() *types.Info { return t.pkg.Info }

// analyzeDecl analyzes one function declaration in reporting mode.
// Functions annotated //cafe:pooled are the pool's own machinery —
// they hand out pooled memory by design and are exempt.
func (t *poolTracker) analyzeDecl(fd *ast.FuncDecl) {
	if fn, ok := t.info().Defs[fd.Name].(*types.Func); ok && t.prog.PooledFunc(fn) {
		return
	}
	t.enclBody = fd.Body
	t.analyzeBody(fd.Body, FlowState{})
}

// analyzeBody runs the dataflow to fixpoint over body, then replays
// every block once with its stable in-state to fire sinks (and, for
// summary mode, to record flow bits).
func (t *poolTracker) analyzeBody(body *ast.BlockStmt, init FlowState) {
	if t.depth > 8 {
		return
	}
	t.depth++
	g := BuildCFG(body)
	saved := t.report
	t.report = false
	in := ForwardFlow(g, init, func(st FlowState, n ast.Node) { t.transfer(st, n) })
	t.report = true
	for _, blk := range g.Blocks {
		st := in[blk]
		if st == nil {
			st = FlowState{}
		} else {
			st = st.clone()
		}
		for _, n := range blk.Nodes {
			t.transfer(st, n)
		}
	}
	t.report = saved
	t.depth--
}

// transfer is the dataflow transfer function for one CFG node.
func (t *poolTracker) transfer(st FlowState, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.assign(st, n)
	case *ast.DeclStmt:
		t.declStmt(st, n)
	case *ast.RangeStmt:
		t.scan(st, n.X)
		t.rangeBind(st, n)
	case *ast.SendStmt:
		t.scan(st, n.Chan)
		t.scan(st, n.Value)
		t.sinkFact(t.factOf(st, n.Value), n.Pos(), "sent on a channel")
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			t.scan(st, e)
			t.ret(st, e, n.Pos())
		}
	case *ast.GoStmt:
		t.goStmt(st, n)
	case *ast.DeferStmt:
		t.scan(st, n.Call)
		t.callFact(st, n.Call)
	case *ast.ExprStmt:
		t.scan(st, n.X)
	case *ast.IncDecStmt:
		// no pointer flow
	case *ast.LabeledStmt:
		t.transfer(st, n.Stmt)
	default:
		if e, ok := n.(ast.Expr); ok {
			t.scan(st, e)
		}
	}
}

// scan walks an expression tree for side effects the structural rules
// miss: call retention checks and function-literal bodies. Literal
// bodies are analyzed once, here, seeded with the current state; scan
// never descends into them.
func (t *poolTracker) scan(st FlowState, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if t.report {
				t.analyzeBody(x.Body, t.litSeed(st, x, nil))
			}
			return false
		case *ast.CallExpr:
			t.callFact(st, x)
		}
		return true
	})
}

// assign implements = and := (compound assignments move no pointers).
// All right-hand sides are evaluated before any store, matching Go's
// tuple-assignment semantics.
func (t *poolTracker) assign(st FlowState, a *ast.AssignStmt) {
	for _, e := range a.Rhs {
		t.scan(st, e)
	}
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		return
	}
	if len(a.Lhs) == len(a.Rhs) {
		facts := make([]Fact, len(a.Rhs))
		for i, e := range a.Rhs {
			facts[i] = t.factOf(st, e)
		}
		for i, l := range a.Lhs {
			t.store(st, l, facts[i])
		}
		return
	}
	if len(a.Rhs) != 1 {
		return
	}
	switch r := unparen(a.Rhs[0]).(type) {
	case *ast.CallExpr:
		f := t.callFact(st, r)
		for _, l := range a.Lhs {
			lt := t.info().TypeOf(l)
			if lt == nil || isErrorType(lt) || !hasPointers(lt) {
				t.store(st, l, Fact{})
			} else {
				t.store(st, l, f)
			}
		}
	case *ast.TypeAssertExpr:
		// v, ok := x.(T)
		t.store(st, a.Lhs[0], t.factOf(st, r.X))
		for _, l := range a.Lhs[1:] {
			t.store(st, l, Fact{})
		}
	default:
		// v, ok := m[k] / <-ch: the comma-ok forms.
		f := t.factOf(st, a.Rhs[0])
		t.store(st, a.Lhs[0], f)
		for _, l := range a.Lhs[1:] {
			t.store(st, l, Fact{})
		}
	}
}

// declStmt handles var declarations with initializers.
func (t *poolTracker) declStmt(st FlowState, d *ast.DeclStmt) {
	gd, ok := d.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			t.scan(st, v)
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			// var a, b = f()
			if call, ok := unparen(vs.Values[0]).(*ast.CallExpr); ok {
				f := t.callFact(st, call)
				for _, name := range vs.Names {
					if obj := t.info().Defs[name]; obj != nil {
						lt := obj.Type()
						if isErrorType(lt) || !hasPointers(lt) {
							st.set(obj, Fact{})
						} else {
							st.set(obj, f)
						}
					}
				}
			}
			continue
		}
		for i, name := range vs.Names {
			var f Fact
			if i < len(vs.Values) {
				f = t.factOf(st, vs.Values[i])
			}
			if obj := t.info().Defs[name]; obj != nil {
				st.set(obj, f)
			}
		}
	}
}

// store writes a fact through an assignment target, firing retention
// sinks for targets that outlive the frame.
func (t *poolTracker) store(st FlowState, lhs ast.Expr, f Fact) {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := t.objOf(l)
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok && isGlobal(v) {
			t.sinkFact(f, lhs.Pos(), "stored in a package-level variable")
			return
		}
		st.set(obj, f) // strong update
	case *ast.SelectorExpr:
		if fv := t.fieldVarOf(l); fv != nil && t.prog.PooledField(fv) {
			return // refilling a pooled field is the pool's own business
		}
		t.sinkFact(f, lhs.Pos(), "stored into a struct field, outliving the call")
	case *ast.IndexExpr:
		// p[i] = v: writing into a local container keeps the fact
		// contained; writing into pooled backing is a refill;
		// anything else retains v beyond the frame.
		if id, ok := unparen(l.X).(*ast.Ident); ok {
			if obj := t.objOf(id); obj != nil {
				if v, ok := obj.(*types.Var); ok && !isGlobal(v) && !v.IsField() {
					st.set(obj, mergeFact(st[obj], f))
					return
				}
			}
		}
		if base := t.factOf(st, l.X); base.Pooled {
			return
		}
		if sel, ok := unparen(l.X).(*ast.SelectorExpr); ok {
			if fv := t.fieldVarOf(sel); fv != nil && t.prog.PooledField(fv) {
				return
			}
		}
		t.sinkFact(f, lhs.Pos(), "stored into a container that outlives the call")
	case *ast.StarExpr:
		// *p = v: not tracked (documented limit).
	}
}

// ret handles one return operand.
func (t *poolTracker) ret(st FlowState, e ast.Expr, pos token.Pos) {
	f := t.factOf(st, e)
	if !t.report || !f.some() {
		return
	}
	if t.summaryMode {
		t.cur.returnsArg |= f.Params
		// A pure param-derived alias (rs = rs[:limit]; return rs) is
		// already carried by returnsArg; only facts rooted in a real
		// pool source make the result pooled for every caller.
		if f.Pooled || (len(f.Alias) > 0 && f.Params == 0) {
			t.cur.returnsPooled = true
		}
		return
	}
	t.sinkFact(f, pos, "returned to the caller")
}

// goStmt handles goroutine launches: any tracked fact reaching the
// payload — as an argument or a captured variable — escapes unless
// the spawning function provably joins the goroutine (the payload
// counts down a sync.WaitGroup and the enclosing declaration calls
// Wait on one).
func (t *poolTracker) goStmt(st FlowState, g *ast.GoStmt) {
	var carried Fact
	for _, arg := range g.Call.Args {
		t.scan(st, arg)
		carried = mergeFact(carried, t.factOf(st, arg))
	}
	lit, isLit := unparen(g.Call.Fun).(*ast.FuncLit)
	if isLit {
		carried = mergeFact(carried, t.capturedFacts(st, lit))
	} else {
		t.scan(st, g.Call.Fun)
	}
	if carried.some() && !t.joinedGo(g, lit) {
		t.sinkFact(carried, g.Pos(), "captured by a goroutine the caller does not join")
	}
	if isLit && t.report {
		t.analyzeBody(lit.Body, t.litSeed(st, lit, g.Call.Args))
	}
}

// capturedFacts merges the facts of every outer variable the literal
// body references.
func (t *poolTracker) capturedFacts(st FlowState, lit *ast.FuncLit) Fact {
	var f Fact
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := t.info().Uses[id]; obj != nil {
				if ff, ok := st[obj]; ok {
					f = mergeFact(f, ff)
				}
			}
		}
		return true
	})
	return f
}

// litSeed builds the initial state for a function literal body: the
// outer state (captures keep their facts — same objects) plus the
// literal's parameters bound to the call arguments' facts, or to
// nothing when the literal is not invoked here.
func (t *poolTracker) litSeed(st FlowState, lit *ast.FuncLit, args []ast.Expr) FlowState {
	seed := st.clone()
	var params []*ast.Ident
	if lit.Type.Params != nil {
		for _, fld := range lit.Type.Params.List {
			params = append(params, fld.Names...)
		}
	}
	for i, id := range params {
		var f Fact
		if i < len(args) {
			f = t.factOf(st, args[i])
		}
		if obj := t.info().Defs[id]; obj != nil {
			seed.set(obj, f)
		}
	}
	return seed
}

// joinedGo reports whether the goroutine's payload counts down a
// WaitGroup and the enclosing declaration waits on one — the shape
// that bounds the goroutine's lifetime to the call. The Wait may live
// anywhere in the declaration, including a sibling drain goroutine
// (the batch worker-pool shape).
func (t *poolTracker) joinedGo(g *ast.GoStmt, lit *ast.FuncLit) bool {
	var payload *ast.BlockStmt
	payloadInfo := t.info()
	if lit != nil {
		payload = lit.Body
	} else if fn := calleeFunc(t.info(), g.Call); fn != nil {
		if d, ok := t.decls[fn]; ok {
			payload = d.fd.Body
			payloadInfo = d.pkg.Info
		}
	}
	if payload == nil || t.enclBody == nil {
		return false
	}
	return waitGroupCountdown(payloadInfo, payload) && hasWaitCall(t.info(), t.enclBody)
}

// hasWaitCall reports whether body calls Wait() on a sync.WaitGroup
// anywhere, nested literals included.
func hasWaitCall(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if isWaitGroup(info.TypeOf(sel.X)) {
			found = true
		}
		return !found
	})
	return found
}

// rangeBind binds the key/value variables of a range statement. Only
// pointer-bearing element values inherit the operand's fact; map keys
// are not tracked.
func (t *poolTracker) rangeBind(st FlowState, n *ast.RangeStmt) {
	f := t.factOf(st, n.X)
	bind := func(e ast.Expr, ft Fact) {
		if e == nil {
			return
		}
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := t.objOf(id); obj != nil {
			st.set(obj, ft)
		}
	}
	bind(n.Key, Fact{})
	vf := Fact{}
	if f.some() {
		if et := elemType(t.info().TypeOf(n.X)); et != nil && hasPointers(et) {
			vf = f
		}
	}
	bind(n.Value, vf)
}

// factOf evaluates the fact of an expression under the current state.
func (t *poolTracker) factOf(st FlowState, e ast.Expr) Fact {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := t.objOf(e); obj != nil {
			return st[obj]
		}
	case *ast.CallExpr:
		return t.callFact(st, e)
	case *ast.TypeAssertExpr:
		return t.factOf(st, e.X)
	case *ast.SelectorExpr:
		if fv := t.fieldVarOf(e); fv != nil {
			if t.prog.PooledField(fv) {
				return Fact{Pooled: true}
			}
			base := t.factOf(st, e.X)
			if base.some() && hasPointers(fv.Type()) {
				return base
			}
			return Fact{}
		}
	case *ast.IndexExpr:
		base := t.factOf(st, e.X)
		if base.some() {
			if lt := t.info().TypeOf(e); lt != nil && hasPointers(lt) {
				return base
			}
		}
	case *ast.SliceExpr:
		base := t.factOf(st, e.X)
		if base.some() {
			return base.withAlias(e.Pos())
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return t.factOf(st, e.X)
		}
	case *ast.StarExpr:
		return t.factOf(st, e.X)
	case *ast.CompositeLit:
		var f Fact
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			f = mergeFact(f, t.factOf(st, v))
		}
		return f
	}
	return Fact{}
}

// callFact evaluates a call: the fact of its result, plus retention
// checks on its arguments (fired only during the reporting walk).
func (t *poolTracker) callFact(st FlowState, call *ast.CallExpr) Fact {
	fun := unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := t.info().Uses[id].(*types.Builtin); ok {
			return t.builtinFact(st, b.Name(), call)
		}
	}
	// Conversions: string<->[]byte copies the data; any other
	// conversion of a tracked value keeps its backing.
	if tv, ok := t.info().Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		f := t.factOf(st, call.Args[0])
		if !f.some() {
			return Fact{}
		}
		dst := t.info().TypeOf(call)
		src := t.info().TypeOf(call.Args[0])
		if dst == nil || !hasPointers(dst) || isStringBytesConversion(dst, src) {
			return Fact{}
		}
		return f
	}
	callee := calleeFunc(t.info(), call)
	if callee == nil {
		// Dynamic call through a function value: opaque (limit).
		return Fact{}
	}
	if isPoolMethod(callee, "Put") {
		return Fact{} // Pool.Put reclaims; the opposite of an escape
	}
	if isPoolMethod(callee, "Get") {
		return Fact{Pooled: true}
	}
	var out Fact
	if t.prog.PooledFunc(callee) {
		out.Pooled = true
	}
	// Summaries are consulted in both modes: in summary mode the map
	// holds the callees-first partial results of the SCC fixpoint, so
	// flow through any chain of helpers composes transitively.
	var sum *funcSummary
	if t.sums != nil {
		sum = t.sums[callee]
		if sum != nil && sum.returnsPooled {
			out.Pooled = true
		}
	}
	sig, _ := callee.Type().(*types.Signature)
	inModule := callee.Pkg() != nil && t.prog.InModule(callee.Pkg().Path())
	for i, arg := range call.Args {
		af := t.factOf(st, arg)
		if !af.some() {
			continue
		}
		bit := paramBit(sig, i)
		if sum != nil && sum.returnsArg&bit != 0 {
			out = mergeFact(out, af)
		}
		switch {
		case sum != nil && sum.retainsArg&bit != 0:
			t.sinkFact(af, arg.Pos(), fmt.Sprintf("passed to %s, which retains its argument", callee.Name()))
		case isInterfaceMethod(callee):
			t.sinkFact(af, arg.Pos(), fmt.Sprintf("passed to interface method %s, which may retain it", callee.Name()))
		case !inModule && boxesParam(sig, i):
			t.sinkFact(af, arg.Pos(), fmt.Sprintf("boxed into an interface argument of %s", qualified(callee)))
		}
	}
	if out.some() {
		if res := callResultType(sig); res != nil && !hasPointers(res) {
			return Fact{}
		}
	}
	return out
}

// builtinFact evaluates builtin calls. append on tracked backing
// creates an alias view recorded at the call; pointer-bearing
// elements appended INTO a slice make the result share their
// referents. Everything else (copy, len, make, clear, ...) yields no
// fact — copy in particular is the blessed way to un-pool a value.
func (t *poolTracker) builtinFact(st FlowState, name string, call *ast.CallExpr) Fact {
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return Fact{}
		}
		var f Fact
		if base := t.factOf(st, call.Args[0]); base.some() {
			f = base.withAlias(call.Pos())
		}
		// Appended elements are copied by value: only pointer-bearing
		// elements make the result share the source's backing —
		// append(fresh, pooledInts...) is a clean copy, while
		// append(batch, pooledSlice) keeps the reference.
		for i, arg := range call.Args[1:] {
			af := t.factOf(st, arg)
			if !af.some() {
				continue
			}
			et := t.info().TypeOf(arg)
			if call.Ellipsis.IsValid() && i == len(call.Args[1:])-1 {
				et = elemType(et)
			}
			if et != nil && hasPointers(et) {
				f = mergeFact(f, af)
			}
		}
		return f
	}
	return Fact{}
}

// sinkFact fires a retention sink: findings in reporting mode,
// parameter bits in summary mode, nothing during fixpoint.
func (t *poolTracker) sinkFact(f Fact, pos token.Pos, how string) {
	if !t.report || !f.some() {
		return
	}
	if t.summaryMode {
		t.cur.retainsArg |= f.Params
		return
	}
	if f.Pooled {
		t.emit(t.escape, "poolescape", pos, "pooled scratch "+how+"; copy it first or scope it with //cafe:pooled")
	}
	for _, site := range f.Alias {
		t.emit(t.alias, "alias", site, "append/slice view of pooled backing "+how+"; copy into a fresh buffer instead")
	}
}

func (t *poolTracker) emit(dst *[]Finding, pass string, pos token.Pos, msg string) {
	p := t.prog.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%s:%s", p.Filename, p.Line, pass, msg)
	if t.seen[key] {
		return
	}
	t.seen[key] = true
	*dst = append(*dst, Finding{Pos: p, PassName: pass, Message: msg})
}

// objOf resolves an identifier to its object, use or definition.
func (t *poolTracker) objOf(id *ast.Ident) types.Object {
	if obj := t.info().Uses[id]; obj != nil {
		return obj
	}
	return t.info().Defs[id]
}

// fieldVarOf resolves a selector to the struct field it denotes, or
// nil for methods and package-qualified names.
func (t *poolTracker) fieldVarOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := t.info().Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// isGlobal reports whether v is a package-level variable.
func isGlobal(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isPoolMethod reports whether fn is (*sync.Pool).<name>.
func isPoolMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.Underlying().(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// boxesParam reports whether argument i of sig lands in an
// interface-typed parameter (boxing hides the value from the
// analysis, so callees outside the module count as retention).
func boxesParam(sig *types.Signature, i int) bool {
	if sig == nil {
		return false
	}
	params := sig.Params()
	if params.Len() == 0 {
		return false
	}
	if i >= params.Len() {
		i = params.Len() - 1
	}
	pt := params.At(i).Type()
	if sig.Variadic() && i == params.Len()-1 {
		if sl, ok := pt.Underlying().(*types.Slice); ok {
			pt = sl.Elem()
		}
	}
	return types.IsInterface(pt)
}

// callResultType returns the single result type of sig, or nil when
// there is none or more than one (multi-result facts are gated
// per-variable at the assignment).
func callResultType(sig *types.Signature) types.Type {
	if sig == nil || sig.Results().Len() != 1 {
		return nil
	}
	return sig.Results().At(0).Type()
}

// elemType returns the element type a range/index produces from t.
func elemType(t types.Type) types.Type {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	case *types.Chan:
		return u.Elem()
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return arr.Elem()
		}
	}
	return nil
}
