package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HotpathPass enforces the allocation-free contract of functions
// declared with //cafe:hotpath. Inside an annotated function it flags:
//
//   - make, new, and pointer/map/slice composite literals
//   - append (waivable for amortised, reset-between-queries scratch)
//   - string ↔ []byte/[]rune conversions
//   - calls into package fmt, and print/println
//   - function literals (closure environments allocate)
//   - interface boxing at call arguments, assignments and returns
//   - calls to any named function or method that is not itself
//     annotated //cafe:hotpath, except intrinsics (len, cap, copy,
//     min, max, delete, clear) and the allowlisted packages
//
// The arguments of panic(...) are exempt from all checks: a panicking
// hot path is already off the fast path, and the panic messages are
// where the diagnostics live. Calls through function-typed values
// (parameters, fields) cannot be resolved statically and are allowed;
// the annotation on the enclosing function documents that its callers
// pass non-allocating callbacks.
type HotpathPass struct {
	// AllowCalleePackages are import paths hot code may call into
	// freely. Nil selects the default: math and math/bits, whose
	// functions compile to branch-free intrinsics.
	AllowCalleePackages []string
}

// Name implements Pass.
func (p *HotpathPass) Name() string { return "hotpath" }

func (p *HotpathPass) allowedPkg(path string) bool {
	pkgs := p.AllowCalleePackages
	if pkgs == nil {
		pkgs = []string{"math", "math/bits"}
	}
	for _, a := range pkgs {
		if path == a {
			return true
		}
	}
	return false
}

// allowedBuiltins never allocate and are always permitted in hot code.
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "min": true, "max": true,
	"delete": true, "clear": true, "real": true, "imag": true, "recover": true,
}

// Run implements Pass.
func (p *HotpathPass) Run(prog *Program, pkg *Package) []Finding {
	var out []Finding
	report := func(node ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:      prog.Fset.Position(node.Pos()),
			PassName: p.Name(),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	pkg.funcDecls(func(fd *ast.FuncDecl) {
		obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok || !prog.Hot(obj) {
			return
		}
		w := &hotWalker{prog: prog, pkg: pkg, pass: p, report: report, sig: obj.Type().(*types.Signature)}
		ast.Inspect(fd.Body, w.visit)
	})
	return out
}

// hotWalker checks one annotated function body.
type hotWalker struct {
	prog   *Program
	pkg    *Package
	pass   *HotpathPass
	report func(ast.Node, string, ...any)
	sig    *types.Signature // enclosing signature, for return boxing
}

func (w *hotWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		return w.call(n)
	case *ast.CompositeLit:
		switch w.pkg.Info.TypeOf(n).Underlying().(type) {
		case *types.Map:
			w.report(n, "map literal allocates on the hot path")
		case *types.Slice:
			w.report(n, "slice literal allocates on the hot path")
		}
	case *ast.UnaryExpr:
		if n.Op.String() == "&" {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				w.report(n, "&composite literal heap-allocates on the hot path")
			}
		}
	case *ast.FuncLit:
		w.report(n, "function literal allocates its closure environment on the hot path")
		return false
	case *ast.AssignStmt:
		w.assignBoxing(n)
	case *ast.ReturnStmt:
		w.returnBoxing(n)
	}
	return true
}

// call checks one call expression and reports whether to descend into
// its children.
func (w *hotWalker) call(call *ast.CallExpr) bool {
	// Type conversions: T(x).
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isStringBytesConversion(tv.Type, w.pkg.Info.TypeOf(call.Args[0])) {
			w.report(call, "string conversion allocates on the hot path")
		}
		return true
	}
	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if obj, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			name := obj.Name()
			switch {
			case name == "panic":
				// Cold by definition: a panicking hot path has already
				// left the fast path. Skip the argument subtree so the
				// diagnostic message construction is not flagged.
				return false
			case name == "append":
				w.report(call, "append may grow its backing array on the hot path")
			case name == "make":
				w.report(call, "make allocates on the hot path")
			case name == "new":
				w.report(call, "new allocates on the hot path")
			case allowedBuiltins[name]:
			default:
				w.report(call, "builtin %s is not allowed on the hot path", name)
			}
			return true
		}
	}
	callee := calleeFunc(w.pkg.Info, call)
	if callee == nil {
		// Dynamic call through a function value: statically unresolvable,
		// allowed — the annotated function's contract covers its callbacks.
		w.callBoxingDynamic(call)
		return true
	}
	w.callBoxing(call, callee)
	switch {
	case callee.Pkg() == nil:
		// error.Error and friends from the universe scope.
		w.report(call, "dynamic interface call to %s on the hot path", callee.Name())
	case isInterfaceMethod(callee):
		w.report(call, "dynamic interface call to %s on the hot path", callee.Name())
	case w.prog.InModule(callee.Pkg().Path()):
		if !w.prog.Hot(callee) {
			w.report(call, "calls %s, which is not annotated //cafe:hotpath", qualified(callee))
		}
	case callee.Pkg().Path() == "fmt":
		w.report(call, "fmt.%s allocates on the hot path", callee.Name())
	case w.pass.allowedPkg(callee.Pkg().Path()):
	default:
		w.report(call, "calls %s outside the hot-path allowlist", qualified(callee))
	}
	return true
}

// callBoxing flags concrete arguments passed to interface parameters.
func (w *hotWalker) callBoxing(call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	w.boxingAgainst(call, sig)
}

// callBoxingDynamic applies the same check for calls through function
// values whose signature the type info still knows.
func (w *hotWalker) callBoxingDynamic(call *ast.CallExpr) {
	if sig, ok := w.pkg.Info.TypeOf(call.Fun).Underlying().(*types.Signature); ok {
		w.boxingAgainst(call, sig)
	}
}

func (w *hotWalker) boxingAgainst(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				if i == params.Len()-1 {
					pt = params.At(params.Len() - 1).Type()
				}
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		w.boxing(arg, pt)
	}
}

// assignBoxing flags concrete values assigned to interface-typed
// destinations.
func (w *hotWalker) assignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		w.boxing(as.Rhs[i], w.pkg.Info.TypeOf(as.Lhs[i]))
	}
}

// returnBoxing flags concrete values returned as interfaces.
func (w *hotWalker) returnBoxing(ret *ast.ReturnStmt) {
	results := w.sig.Results()
	if len(ret.Results) != results.Len() {
		return
	}
	for i, r := range ret.Results {
		w.boxing(r, results.At(i).Type())
	}
}

// boxing reports expr when its concrete value would be converted to the
// interface type dst.
func (w *hotWalker) boxing(expr ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := w.pkg.Info.Types[expr]
	if !ok || tv.Type == nil || types.IsInterface(tv.Type) {
		return
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	w.report(expr, "boxes %s into %s on the hot path", tv.Type.String(), dst.String())
}

// calleeFunc resolves a call to the *types.Func it invokes, or nil for
// dynamic calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil // method value through a func-typed field
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified call
		}
	}
	return nil
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// isStringBytesConversion reports whether converting from to dst moves
// between string and []byte/[]rune, which copies the data.
func isStringBytesConversion(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	return isStringish(dst) && isByteRuneSlice(src) || isByteRuneSlice(dst) && isStringish(src)
}

func isStringish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Uint8 || e.Kind() == types.Rune || e.Kind() == types.Int32)
}

func qualified(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fmt.Sprintf("%s.(%s).%s", fn.Pkg().Path(), sig.Recv().Type().String(), fn.Name())
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
