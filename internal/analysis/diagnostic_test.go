package analysis_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nucleodb/internal/analysis"
)

// fixtureReport runs the full default-equivalent suite over the
// fixture module and returns the structured report.
func fixtureReport(t *testing.T) analysis.Report {
	t.Helper()
	prog := loadFixture(t)
	passes := []analysis.Pass{
		&analysis.HotpathPass{},
		&analysis.ErrcheckPass{Packages: []string{"fixture/errs"}},
		&analysis.StatsPass{GuardedTypes: []string{"fixture/stats.Stats"}},
		&analysis.AtomicPass{},
		&analysis.CtxPass{ForbidBackgroundIn: []string{"fixture/ctxpkg"}},
		&analysis.GoPass{},
	}
	findings := analysis.Analyze(prog, passes, nil)
	if len(findings) == 0 {
		t.Fatal("fixture module reported no findings; the format tests need some")
	}
	return analysis.NewReport(prog, findings)
}

func TestReportJSONRoundtrip(t *testing.T) {
	report := fixtureReport(t)
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded analysis.Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v\n%s", err, buf.String())
	}
	if decoded.Module != "fixture" {
		t.Errorf("module = %q, want fixture", decoded.Module)
	}
	if decoded.Count != len(report.Findings) || len(decoded.Findings) != len(report.Findings) {
		t.Errorf("count %d / %d findings, want %d", decoded.Count, len(decoded.Findings), len(report.Findings))
	}
	for _, d := range decoded.Findings {
		if d.File == "" || d.Line == 0 || d.Pass == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if strings.HasPrefix(d.File, "/") {
			t.Errorf("file %q is absolute; diagnostics must be module-relative", d.File)
		}
	}
}

func TestReportSARIF(t *testing.T) {
	report := fixtureReport(t)
	var buf bytes.Buffer
	if err := report.WriteSARIF(&buf); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q runs %d, want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "cafe-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	rules := map[string]int{}
	for i, rule := range run.Tool.Driver.Rules {
		rules[rule.ID] = i
	}
	for _, pass := range []string{"hotpath", "errcheck", "stats", "atomic", "ctx", "goroutine"} {
		if _, ok := rules[pass]; !ok {
			t.Errorf("rule %q missing from driver rules", pass)
		}
	}
	if len(run.Results) != len(report.Findings) {
		t.Fatalf("%d results, want %d", len(run.Results), len(report.Findings))
	}
	for _, res := range run.Results {
		if rules[res.RuleID] != res.RuleIndex {
			t.Errorf("result ruleIndex %d does not match rules[%q]=%d", res.RuleIndex, res.RuleID, rules[res.RuleID])
		}
		if len(res.Locations) != 1 || res.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result %q lacks a physical location", res.Message.Text)
		}
	}
}

func TestBaselineRoundtrip(t *testing.T) {
	report := fixtureReport(t)
	total := len(report.Findings)

	var buf bytes.Buffer
	if err := report.WriteBaseline(&buf); err != nil {
		t.Fatal(err)
	}
	base, err := analysis.ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("baseline written by WriteBaseline does not parse: %v", err)
	}

	// A full baseline suppresses everything.
	full := fixtureReport(t)
	if n := full.ApplyBaseline(base); n != total {
		t.Errorf("suppressed %d of %d findings", n, total)
	}
	if full.Count != 0 || len(full.Findings) != 0 {
		t.Errorf("findings survive their own baseline: %d", len(full.Findings))
	}

	// Dropping one entry resurfaces exactly that finding.
	partialBase, err := analysis.ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	victim := report.Findings[0]
	key := victim.File + "\t" + victim.Pass + "\t" + victim.Message
	if partialBase[key] == 0 {
		t.Fatalf("baseline lacks the key for %v", victim)
	}
	partialBase[key]--
	partial := fixtureReport(t)
	partial.ApplyBaseline(partialBase)
	if len(partial.Findings) != 1 {
		t.Fatalf("want exactly 1 surviving finding, got %d", len(partial.Findings))
	}
	got := partial.Findings[0]
	if got.File != victim.File || got.Pass != victim.Pass || got.Message != victim.Message {
		t.Errorf("surviving finding %+v, want the unbaselined %+v", got, victim)
	}

	// An empty baseline suppresses nothing.
	empty := fixtureReport(t)
	if n := empty.ApplyBaseline(map[string]int{}); n != 0 || len(empty.Findings) != total {
		t.Errorf("empty baseline suppressed %d findings", n)
	}
}

func TestBaselineMalformed(t *testing.T) {
	if _, err := analysis.ReadBaseline(strings.NewReader("# ok\nno tabs here\n")); err == nil {
		t.Fatal("malformed baseline line parsed without error")
	}
}
