package analysis

// A small forward dataflow engine over the CFG of cfg.go. The engine
// is a may-analysis: block in-states are joined by union, and the
// transfer function is run to fixpoint with a worklist. Facts form a
// finite join-semilattice per function (booleans, a 64-bit parameter
// set, and a set of alias sites bounded by the function's source
// positions), so the fixpoint terminates.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Fact is what the flow-sensitive analyses know about one variable at
// one program point. The pooled-buffer passes use Pooled/Params/Alias;
// the frozen and snapshot passes use Frozen/Snap/Stale/Recv on the
// same lattice (every component joins by union, so the shared engine
// below serves both families).
type Fact struct {
	// Pooled marks memory owned by a pool: the result of
	// (*sync.Pool).Get, of a //cafe:pooled function, or the value of a
	// //cafe:pooled struct field.
	Pooled bool
	// Params is a bitset of function parameters the value may alias,
	// used when computing per-function summaries (bit i = parameter i).
	Params uint64
	// Alias records the positions of append/slice expressions that
	// derived this value from pooled backing — the PR-5 bug shape. A
	// value with alias sites shares backing with a pool without being
	// the pooled object itself.
	Alias []token.Pos

	// Frozen marks a //cafe:frozen value that may already be published
	// (read from a global, returned by a function that hands out
	// published values, reached from another tainted value): mutating
	// it is a frozen-pass violation. Freshness needs no bit of its own:
	// a value constructed in the current function simply carries no
	// taint, so constructor-style mutation stays silent.
	Frozen bool
	// Snap marks a value loaded from an atomic.Pointer/atomic.Value
	// snapshot, or memory reached from one: a read-only view.
	Snap bool
	// Elems weakens Frozen/Snap to the elements of a container whose
	// spine is freshly allocated (append onto an untainted base copies
	// the spine): storing INTO the container is fine, mutating through
	// an element is not. Joining with a full taint drops the weakening.
	Elems bool
	// Stale marks a snapshot value retained across a swap point (a call
	// that transitively performs an atomic Store/Swap): using it after
	// the swap is a snapshot-pass violation.
	Stale bool
	// Recv marks the method receiver while computing mutation
	// summaries, the receiver analogue of a Params bit.
	Recv bool
}

// some reports whether the fact carries any information.
func (f Fact) some() bool {
	return f.Pooled || f.Params != 0 || len(f.Alias) > 0 ||
		f.Frozen || f.Snap || f.Stale || f.Recv
}

// withAlias returns f extended with one alias site, dropping Pooled:
// the derived view shares backing but is not the pooled object.
func (f Fact) withAlias(pos token.Pos) Fact {
	out := Fact{Params: f.Params, Alias: addPos(f.Alias, pos)}
	return out
}

// mergeFact joins two facts (set union on every component).
func mergeFact(a, b Fact) Fact {
	out := Fact{
		Pooled: a.Pooled || b.Pooled,
		Params: a.Params | b.Params,
		Alias:  a.Alias,
		Frozen: a.Frozen || b.Frozen,
		Snap:   a.Snap || b.Snap,
		Stale:  a.Stale || b.Stale,
		Recv:   a.Recv || b.Recv,
	}
	// Elems survives a join only when every tainted side is
	// elements-only: none < elements-tainted < fully-tainted.
	aT, bT := a.Frozen || a.Snap, b.Frozen || b.Snap
	if (aT || bT) && !(aT && !a.Elems) && !(bT && !b.Elems) {
		out.Elems = true
	}
	for _, p := range b.Alias {
		out.Alias = addPos(out.Alias, p)
	}
	return out
}

// factEqual reports whether two facts carry the same information.
func factEqual(a, b Fact) bool {
	if a.Pooled != b.Pooled || a.Params != b.Params || len(a.Alias) != len(b.Alias) {
		return false
	}
	if a.Frozen != b.Frozen || a.Snap != b.Snap || a.Elems != b.Elems ||
		a.Stale != b.Stale || a.Recv != b.Recv {
		return false
	}
	for i := range a.Alias {
		if a.Alias[i] != b.Alias[i] {
			return false
		}
	}
	return true
}

// addPos inserts pos into a sorted position set.
func addPos(set []token.Pos, pos token.Pos) []token.Pos {
	i := sort.Search(len(set), func(i int) bool { return set[i] >= pos })
	if i < len(set) && set[i] == pos {
		return set
	}
	out := make([]token.Pos, 0, len(set)+1)
	out = append(out, set[:i]...)
	out = append(out, pos)
	out = append(out, set[i:]...)
	return out
}

// FlowState maps variables to their facts at one program point.
// Variables without information are absent.
type FlowState map[types.Object]Fact

func (s FlowState) clone() FlowState {
	out := make(FlowState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// set stores a fact, dropping empty facts to keep states small and
// merges cheap.
func (s FlowState) set(obj types.Object, f Fact) {
	if f.some() {
		s[obj] = f
	} else {
		delete(s, obj)
	}
}

// mergeState joins src into dst and reports whether dst changed.
func mergeState(dst, src FlowState) bool {
	changed := false
	for obj, f := range src {
		old, ok := dst[obj]
		if !ok {
			dst[obj] = f
			changed = true
			continue
		}
		m := mergeFact(old, f)
		if !factEqual(m, old) {
			dst[obj] = m
			changed = true
		}
	}
	return changed
}

// ForwardFlow runs transfer over g to fixpoint, starting from init at
// Entry, and returns the in-state of every reached block. Blocks
// absent from the result are unreachable (callers should treat their
// in-state as empty). transfer must be monotone: it may only add or
// strongly update facts as a function of the incoming state.
func ForwardFlow(g *CFG, init FlowState, transfer func(FlowState, ast.Node)) map[*Block]FlowState {
	in := map[*Block]FlowState{g.Entry: init.clone()}
	queued := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		st := in[blk].clone()
		for _, n := range blk.Nodes {
			transfer(st, n)
		}
		for _, succ := range blk.Succs {
			changed := false
			if in[succ] == nil {
				in[succ] = st.clone()
				changed = true
			} else {
				changed = mergeState(in[succ], st)
			}
			if changed && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}
