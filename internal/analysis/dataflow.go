package analysis

// A small forward dataflow engine over the CFG of cfg.go. The engine
// is a may-analysis: block in-states are joined by union, and the
// transfer function is run to fixpoint with a worklist. Facts form a
// finite join-semilattice per function (booleans, a 64-bit parameter
// set, and a set of alias sites bounded by the function's source
// positions), so the fixpoint terminates.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Fact is what the pooled-buffer analyses know about one variable at
// one program point.
type Fact struct {
	// Pooled marks memory owned by a pool: the result of
	// (*sync.Pool).Get, of a //cafe:pooled function, or the value of a
	// //cafe:pooled struct field.
	Pooled bool
	// Params is a bitset of function parameters the value may alias,
	// used when computing per-function summaries (bit i = parameter i).
	Params uint64
	// Alias records the positions of append/slice expressions that
	// derived this value from pooled backing — the PR-5 bug shape. A
	// value with alias sites shares backing with a pool without being
	// the pooled object itself.
	Alias []token.Pos
}

// some reports whether the fact carries any information.
func (f Fact) some() bool {
	return f.Pooled || f.Params != 0 || len(f.Alias) > 0
}

// withAlias returns f extended with one alias site, dropping Pooled:
// the derived view shares backing but is not the pooled object.
func (f Fact) withAlias(pos token.Pos) Fact {
	out := Fact{Params: f.Params, Alias: addPos(f.Alias, pos)}
	return out
}

// mergeFact joins two facts (set union on every component).
func mergeFact(a, b Fact) Fact {
	out := Fact{
		Pooled: a.Pooled || b.Pooled,
		Params: a.Params | b.Params,
		Alias:  a.Alias,
	}
	for _, p := range b.Alias {
		out.Alias = addPos(out.Alias, p)
	}
	return out
}

// factEqual reports whether two facts carry the same information.
func factEqual(a, b Fact) bool {
	if a.Pooled != b.Pooled || a.Params != b.Params || len(a.Alias) != len(b.Alias) {
		return false
	}
	for i := range a.Alias {
		if a.Alias[i] != b.Alias[i] {
			return false
		}
	}
	return true
}

// addPos inserts pos into a sorted position set.
func addPos(set []token.Pos, pos token.Pos) []token.Pos {
	i := sort.Search(len(set), func(i int) bool { return set[i] >= pos })
	if i < len(set) && set[i] == pos {
		return set
	}
	out := make([]token.Pos, 0, len(set)+1)
	out = append(out, set[:i]...)
	out = append(out, pos)
	out = append(out, set[i:]...)
	return out
}

// FlowState maps variables to their facts at one program point.
// Variables without information are absent.
type FlowState map[types.Object]Fact

func (s FlowState) clone() FlowState {
	out := make(FlowState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// set stores a fact, dropping empty facts to keep states small and
// merges cheap.
func (s FlowState) set(obj types.Object, f Fact) {
	if f.some() {
		s[obj] = f
	} else {
		delete(s, obj)
	}
}

// mergeState joins src into dst and reports whether dst changed.
func mergeState(dst, src FlowState) bool {
	changed := false
	for obj, f := range src {
		old, ok := dst[obj]
		if !ok {
			dst[obj] = f
			changed = true
			continue
		}
		m := mergeFact(old, f)
		if !factEqual(m, old) {
			dst[obj] = m
			changed = true
		}
	}
	return changed
}

// ForwardFlow runs transfer over g to fixpoint, starting from init at
// Entry, and returns the in-state of every reached block. Blocks
// absent from the result are unreachable (callers should treat their
// in-state as empty). transfer must be monotone: it may only add or
// strongly update facts as a function of the incoming state.
func ForwardFlow(g *CFG, init FlowState, transfer func(FlowState, ast.Node)) map[*Block]FlowState {
	in := map[*Block]FlowState{g.Entry: init.clone()}
	queued := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		st := in[blk].clone()
		for _, n := range blk.Nodes {
			transfer(st, n)
		}
		for _, succ := range blk.Succs {
			changed := false
			if in[succ] == nil {
				in[succ] = st.clone()
				changed = true
			} else {
				changed = mergeState(in[succ], st)
			}
			if changed && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}
