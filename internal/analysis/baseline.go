package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Baselines let a newly added pass land before every pre-existing
// finding is fixed: accepted findings are committed to a baseline file
// and stop failing the build, while anything new still does. A
// baselined finding is identified by (file, pass, message) — line
// numbers drift with every edit, so they are deliberately not part of
// the identity. The baseline is a multiset: if a file holds one
// baselined finding and a change introduces an identical second one,
// the second is new and reported.

// baselineKey is the identity of one accepted finding.
func (d Diagnostic) baselineKey() string {
	return d.File + "\t" + d.Pass + "\t" + d.Message
}

// ReadBaseline parses a baseline: one finding per line as
// "file<TAB>pass<TAB>message", with '#' comments and blank lines
// ignored. The result maps each key to its accepted count.
func ReadBaseline(r io.Reader) (map[string]int, error) {
	base := map[string]int{}
	sc := bufio.NewScanner(r)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("analysis: baseline line %d: want file<TAB>pass<TAB>message, got %q", n, line)
		}
		base[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analysis: baseline: %w", err)
	}
	return base, nil
}

// ReadBaselineFile reads the baseline at path; a missing file is an
// error (commit an empty baseline rather than none, so a typoed path
// cannot silently disable the gate).
func ReadBaselineFile(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: baseline: %w", err)
	}
	defer f.Close()
	return ReadBaseline(f)
}

// ApplyBaseline removes findings accepted by the baseline from the
// report, consuming one baseline slot per match, and returns the
// number suppressed. Report order is preserved.
func (r *Report) ApplyBaseline(base map[string]int) int {
	remaining := make(map[string]int, len(base))
	for k, n := range base {
		remaining[k] = n
	}
	kept := r.Findings[:0]
	suppressed := 0
	for _, d := range r.Findings {
		if remaining[d.baselineKey()] > 0 {
			remaining[d.baselineKey()]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	r.Findings = kept
	r.Count = len(kept)
	return suppressed
}

// WriteBaseline writes the report's findings as a baseline file:
// sorted, deduplicated only by exact line repetition (the multiset is
// preserved as repeated lines), with a header documenting the format.
func (r Report) WriteBaseline(w io.Writer) error {
	lines := make([]string, len(r.Findings))
	for i, d := range r.Findings {
		lines[i] = d.baselineKey()
	}
	sort.Strings(lines)
	header := "# cafe-lint baseline — accepted findings that do not fail the build.\n" +
		"# One finding per line: file<TAB>pass<TAB>message. Line numbers are\n" +
		"# omitted on purpose; they drift. Regenerate with:\n" +
		"#   go run ./cmd/cafe-lint -baseline <this file> -write-baseline ./...\n"
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
