package analysis

// The lockorder pass: module-wide mutex discipline.
//
// Within one function (and each function literal, analyzed as its own
// root with no locks held — a goroutine payload does not run under
// the spawner's locks) a may-held analysis over the CFG checks
// pairing: acquiring a mutex already held (including a read/write
// upgrade and a recursive RLock, both of which deadlock under Go's
// writer-preferring RWMutex), unlocking a mutex no path holds,
// unlocking in the wrong mode, panicking while a manually paired lock
// is held, and reaching the function exit with a lock that has no
// deferred unlock.
//
// Across functions, every acquisition that happens while another lock
// is held — directly or inside a synchronously called function, found
// through a transitive closure over the call graph restricted to
// synchronous edges — records an ordering edge. Cycles in the
// resulting module-wide acquisition graph (facade locking A then B
// while the compactor locks B then A) are reported at each witness
// site, and a synchronous call into a function that re-acquires a
// lock already held is a self-deadlock.
//
// Lock identity is the declared variable: a struct field stands for
// that field in every instance (instance-insensitive, the standard
// stance for this class of linter), a local or global sync.Mutex for
// itself. Locks the analysis cannot name (an element of a mutex
// slice reached through arbitrary expressions) are skipped.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrderPass reports mutex pairing violations and lock-order
// cycles. The analysis runs once for the whole module on first use
// and buckets findings per package.
type LockOrderPass struct {
	once    bool
	results map[*Package][]Finding
}

// Name implements Pass.
func (p *LockOrderPass) Name() string { return "lockorder" }

// Run implements Pass.
func (p *LockOrderPass) Run(prog *Program, pkg *Package) []Finding {
	if !p.once {
		p.once = true
		p.results = runLockOrder(prog)
	}
	return p.results[pkg]
}

// heldLock is the may-held state of one mutex at one program point.
type heldLock struct {
	// pos is the earliest acquisition site.
	pos token.Pos
	// write and read record the modes the lock may be held in.
	write, read bool
	// deferred is true only when every path has a deferred unlock
	// scheduled for the lock.
	deferred bool
}

// lockState maps mutex variables to their held state; absent means
// held on no path.
type lockState map[types.Object]heldLock

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// mergeLockState joins src into dst (may-union) and reports change.
func mergeLockState(dst, src lockState) bool {
	changed := false
	for obj, h := range src {
		old, ok := dst[obj]
		if !ok {
			dst[obj] = h
			changed = true
			continue
		}
		m := heldLock{
			pos:      old.pos,
			write:    old.write || h.write,
			read:     old.read || h.read,
			deferred: old.deferred && h.deferred,
		}
		if h.pos < m.pos {
			m.pos = h.pos
		}
		if m != old {
			dst[obj] = m
			changed = true
		}
	}
	return changed
}

// lockEdge is one acquisition-order edge: second acquired while first
// was held.
type lockEdge struct {
	first, second types.Object
}

type lockTracker struct {
	prog     *Program
	transAcq map[*types.Func]map[types.Object]token.Pos

	pkg    *Package // package currently being analyzed
	report bool

	// edges and edgeOrder record the module-wide acquisition graph
	// with the first witness site of every edge.
	edges     map[lockEdge]Finding
	edgeOrder []lockEdge
	edgePkg   map[lockEdge]*Package

	results map[*Package][]Finding
	seen    map[string]bool
}

// runLockOrder analyzes the whole module and buckets findings per
// package.
func runLockOrder(prog *Program) map[*Package][]Finding {
	cg := buildCallGraph(prog)
	syncEdges, directAcq := collectSyncLocks(cg)
	t := &lockTracker{
		prog:     prog,
		transAcq: transClosure(syncEdges, directAcq),
		edges:    map[lockEdge]Finding{},
		edgePkg:  map[lockEdge]*Package{},
		results:  map[*Package][]Finding{},
		seen:     map[string]bool{},
	}
	for _, pkg := range prog.Packages {
		t.pkg = pkg
		pkg.funcDecls(func(fd *ast.FuncDecl) {
			t.analyzeRoot(fd.Body)
			// Every function literal is its own root: its body does
			// not run under the locks held where it was created.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					t.analyzeRoot(lit.Body)
				}
				return true
			})
		})
	}
	t.reportCycles()
	return t.results
}

// collectSyncLocks walks every declaration, skipping function literals
// and go statements, and returns the synchronous call edges plus the
// mutexes each function directly acquires.
func collectSyncLocks(cg *callGraph) (map[*types.Func][]*types.Func, map[*types.Func]map[types.Object]token.Pos) {
	edges := map[*types.Func][]*types.Func{}
	acq := map[*types.Func]map[types.Object]token.Pos{}
	for fn, d := range cg.decls {
		seen := map[*types.Func]bool{}
		ast.Inspect(d.fd.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(d.pkg.Info, call)
			if callee == nil {
				return true
			}
			switch mutexMethod(callee) {
			case "Lock", "RLock", "TryLock", "TryRLock":
				if lock := lockVarOf(d.pkg.Info, call); lock != nil {
					m := acq[fn]
					if m == nil {
						m = map[types.Object]token.Pos{}
						acq[fn] = m
					}
					if _, ok := m[lock]; !ok {
						m[lock] = call.Pos()
					}
				}
				return true
			case "":
			default:
				return true // a release is not an edge
			}
			if _, inModule := cg.decls[callee]; inModule && !seen[callee] {
				seen[callee] = true
				edges[fn] = append(edges[fn], callee)
			}
			return true
		})
	}
	return edges, acq
}

// mutexMethod returns the method name when fn is a method of
// sync.Mutex or sync.RWMutex, else "".
func mutexMethod(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.Underlying().(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return ""
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return ""
	}
	return fn.Name()
}

// lockVarOf names the mutex a Lock/Unlock call operates on: the
// variable (field, local, or global) the receiver expression denotes.
func lockVarOf(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := unparen(sel.X).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			inner := *call
			innerSel := *sel
			innerSel.X = x.X
			inner.Fun = &innerSel
			return lockVarOf(info, &inner)
		}
	}
	return nil
}

// analyzeRoot runs the may-held analysis over one function body.
func (t *lockTracker) analyzeRoot(body *ast.BlockStmt) {
	g := BuildCFG(body)
	in := map[*Block]lockState{g.Entry: {}}
	queued := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	t.report = false
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		st := in[blk].clone()
		for _, n := range blk.Nodes {
			t.transfer(st, n)
		}
		for _, succ := range blk.Succs {
			changed := false
			if in[succ] == nil {
				in[succ] = st.clone()
				changed = true
			} else {
				changed = mergeLockState(in[succ], st)
			}
			if changed && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	t.report = true
	for _, blk := range g.Blocks {
		st := in[blk]
		if st == nil {
			st = lockState{}
		} else {
			st = st.clone()
		}
		for _, n := range blk.Nodes {
			t.transfer(st, n)
		}
	}
	if exit := in[g.Exit]; exit != nil {
		for lock, h := range exit {
			if !h.deferred {
				t.emit(h.pos, fmt.Sprintf(
					"%s may still be held at function exit without a deferred unlock; an early return or panic between here and the unlock leaks it", lockName(lock)))
			}
		}
	}
	t.report = false
}

// transfer applies one CFG node to the may-held state.
func (t *lockTracker) transfer(st lockState, n ast.Node) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		t.deferCall(st, n.Call)
	case *ast.GoStmt:
		// The payload runs outside this function's lock context; its
		// body is analyzed as a separate root.
	case *ast.RangeStmt:
		t.walk(st, n.X) // the node stands for "evaluate X" only
	case *ast.LabeledStmt:
		t.transfer(st, n.Stmt)
	default:
		t.walk(st, n)
	}
}

// walk visits the calls of an expression or statement in evaluation
// order, skipping function literals and go payloads.
func (t *lockTracker) walk(st lockState, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			t.deferCall(st, x.Call)
			return false
		case *ast.CallExpr:
			t.call(st, x)
		}
		return true
	})
}

// deferCall handles a deferred call: a deferred unlock marks its lock
// as safely paired on every path from here.
func (t *lockTracker) deferCall(st lockState, call *ast.CallExpr) {
	callee := calleeFunc(t.pkg.Info, call)
	switch mutexMethod(callee) {
	case "Unlock", "RUnlock":
		if lock := lockVarOf(t.pkg.Info, call); lock != nil {
			if h, ok := st[lock]; ok {
				h.deferred = true
				st[lock] = h
			}
		}
	}
	for _, arg := range call.Args {
		t.walk(st, arg)
	}
}

// call applies one call expression: mutex operations update the held
// state and fire the pairing checks; synchronous calls into functions
// that acquire locks record ordering edges and self-deadlocks; a bare
// panic while holding a manually paired lock leaks it.
func (t *lockTracker) call(st lockState, call *ast.CallExpr) {
	callee := calleeFunc(t.pkg.Info, call)
	if m := mutexMethod(callee); m != "" {
		lock := lockVarOf(t.pkg.Info, call)
		if lock == nil {
			return
		}
		switch m {
		case "Lock", "RLock", "TryLock", "TryRLock":
			t.acquire(st, lock, m, call.Pos())
		case "Unlock", "RUnlock":
			t.release(st, lock, m, call.Pos())
		}
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := t.pkg.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
			for lock, h := range st {
				if !h.deferred {
					t.emit(call.Pos(), fmt.Sprintf(
						"panic while %s is held without a deferred unlock; the lock leaks", lockName(lock)))
				}
			}
			return
		}
	}
	if callee == nil || len(st) == 0 {
		return
	}
	for acquired := range t.transAcq[callee] {
		if _, held := st[acquired]; held {
			t.emit(call.Pos(), fmt.Sprintf(
				"synchronous call into %s, which acquires %s while it is already held here — self-deadlock", callee.Name(), lockName(acquired)))
			continue
		}
		for heldLk := range st {
			t.recordEdge(heldLk, acquired, call.Pos())
		}
	}
}

// acquire applies a Lock/RLock, firing the double-acquire checks and
// recording ordering edges against every lock already held.
func (t *lockTracker) acquire(st lockState, lock types.Object, mode string, pos token.Pos) {
	h, already := st[lock]
	if already {
		switch {
		case mode == "Lock":
			t.emit(pos, fmt.Sprintf("Lock of %s while it may already be held; sync mutexes are not reentrant — this deadlocks", lockName(lock)))
		case mode == "RLock" && h.write:
			t.emit(pos, fmt.Sprintf("RLock of %s while it may be write-held; read/write re-entry deadlocks", lockName(lock)))
		case mode == "RLock":
			t.emit(pos, fmt.Sprintf("recursive RLock of %s; a queued writer between the two acquisitions deadlocks both", lockName(lock)))
		}
	}
	for other := range st {
		if other != lock {
			t.recordEdge(other, lock, pos)
		}
	}
	m := heldLock{pos: pos, write: mode == "Lock" || mode == "TryLock", read: mode == "RLock" || mode == "TryRLock"}
	if already {
		m.pos = h.pos
		m.write = m.write || h.write
		m.read = m.read || h.read
		m.deferred = h.deferred
	}
	st[lock] = m
}

// release applies an Unlock/RUnlock, firing the pairing checks.
func (t *lockTracker) release(st lockState, lock types.Object, mode string, pos token.Pos) {
	h, held := st[lock]
	switch {
	case !held:
		t.emit(pos, fmt.Sprintf("%s of %s, which is not held on any path to this point", mode, lockName(lock)))
	case mode == "Unlock" && !h.write:
		t.emit(pos, fmt.Sprintf("Unlock of %s, which is only read-held; use RUnlock", lockName(lock)))
	case mode == "RUnlock" && !h.read:
		t.emit(pos, fmt.Sprintf("RUnlock of %s, which is only write-held; use Unlock", lockName(lock)))
	}
	delete(st, lock)
}

// recordEdge records one acquisition-order edge with its first
// witness site.
func (t *lockTracker) recordEdge(first, second types.Object, pos token.Pos) {
	if !t.report {
		return
	}
	e := lockEdge{first: first, second: second}
	if _, ok := t.edges[e]; ok {
		return
	}
	t.edges[e] = Finding{Pos: t.prog.Fset.Position(pos), PassName: "lockorder"}
	t.edgePkg[e] = t.pkg
	t.edgeOrder = append(t.edgeOrder, e)
}

// reportCycles finds cycles in the module-wide acquisition graph and
// reports every participating edge at its witness site.
func (t *lockTracker) reportCycles() {
	adj := map[types.Object][]types.Object{}
	for _, e := range t.edgeOrder {
		adj[e.first] = append(adj[e.first], e.second)
	}
	reaches := func(from, to types.Object) bool {
		seen := map[types.Object]bool{from: true}
		work := []types.Object{from}
		for len(work) > 0 {
			cur := work[0]
			work = work[1:]
			if cur == to {
				return true
			}
			for _, next := range adj[cur] {
				if !seen[next] {
					seen[next] = true
					work = append(work, next)
				}
			}
		}
		return false
	}
	for _, e := range t.edgeOrder {
		if !reaches(e.second, e.first) {
			continue
		}
		f := t.edges[e]
		f.Message = fmt.Sprintf(
			"%s acquired while holding %s, but the opposite order occurs elsewhere in the module — lock-order cycle",
			lockName(e.second), lockName(e.first))
		pkg := t.edgePkg[e]
		key := fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, f.Message)
		if !t.seen[key] {
			t.seen[key] = true
			t.results[pkg] = append(t.results[pkg], f)
		}
	}
}

// lockName renders a mutex variable for diagnostics.
func lockName(lock types.Object) string {
	if v, ok := lock.(*types.Var); ok && v.IsField() {
		return "mutex field " + v.Name()
	}
	return "mutex " + lock.Name()
}

// emit records one finding against the package under analysis.
func (t *lockTracker) emit(pos token.Pos, msg string) {
	if !t.report {
		return
	}
	p := t.prog.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, msg)
	if t.seen[key] {
		return
	}
	t.seen[key] = true
	t.results[t.pkg] = append(t.results[t.pkg], Finding{Pos: p, PassName: "lockorder", Message: msg})
}
