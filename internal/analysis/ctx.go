package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxPass enforces the context-propagation contracts PR 3 introduced
// when cancellation was threaded through the coarse/fine pipeline:
//
//  1. A function that receives a context.Context must not call a
//     context-free sibling of a context-aware API — calling Search
//     where SearchContext exists severs the cancellation chain, and the
//     server's per-request deadline silently stops applying below that
//     call. Siblings are found by name: for a callee F, a function or
//     method FContext on the same package or receiver whose first
//     parameter is a context.Context.
//  2. Inside the serving packages (ForbidBackgroundIn), calls to
//     context.Background() and context.TODO() are forbidden: a fresh
//     root context detaches the work under it from the request that
//     asked for it. The documented context-free wrappers (Search
//     delegating to SearchContext with no deadline) carry a
//     //cafe:allow ctx waiver stating exactly that.
type CtxPass struct {
	// ForbidBackgroundIn lists the import paths in which
	// context.Background()/TODO() may not appear outside waived lines.
	ForbidBackgroundIn []string
}

// Name implements Pass.
func (p *CtxPass) Name() string { return "ctx" }

func (p *CtxPass) forbidsBackground(path string) bool {
	for _, want := range p.ForbidBackgroundIn {
		if path == want {
			return true
		}
	}
	return false
}

// Run implements Pass.
func (p *CtxPass) Run(prog *Program, pkg *Package) []Finding {
	var out []Finding
	report := func(node ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:      prog.Fset.Position(node.Pos()),
			PassName: p.Name(),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	forbid := p.forbidsBackground(pkg.Path)
	pkg.funcDecls(func(fd *ast.FuncDecl) {
		hasCtx := false
		if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
			hasCtx = signatureTakesContext(obj.Type().(*types.Signature))
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if forbid && fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
				report(call, "context.%s() detaches this call tree from the request context; propagate a caller's ctx", fn.Name())
			}
			if hasCtx {
				if sibling := contextSibling(fn); sibling != nil {
					report(call, "calls %s from a context-aware function; use %s and pass the context",
						calleeLabel(fn), sibling.Name())
				}
			}
			return true
		})
	})
	return out
}

// contextSibling returns the FContext counterpart of fn — a function
// or method on the same receiver/package named fn.Name()+"Context"
// whose first parameter is a context.Context — or nil when fn has no
// such sibling (including when fn itself already takes a context).
func contextSibling(fn *types.Func) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || signatureTakesContext(sig) {
		return nil
	}
	name := fn.Name() + "Context"
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
	} else {
		obj = fn.Pkg().Scope().Lookup(name)
	}
	sib, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sibSig, ok := sib.Type().(*types.Signature)
	if !ok || !signatureTakesContext(sibSig) {
		return nil
	}
	return sib
}

// signatureTakesContext reports whether sig's first parameter is a
// context.Context.
func signatureTakesContext(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// calleeLabel renders fn the way a caller would write it: (*DB).Search
// for methods (the receiver's package is obvious at the call site),
// path-qualified for package functions.
func calleeLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s",
			types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())), fn.Name())
	}
	return qualified(fn)
}
