package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicPass enforces all-or-nothing atomicity on struct fields: a
// field that is accessed through sync/atomic anywhere in the module —
// atomic.AddInt64(&s.n, 1), or a method call on an atomic.Int64-style
// field — must be accessed that way everywhere. A plain load or store
// of the same field elsewhere is a data race the race detector only
// catches when the two schedules actually collide; statically the mix
// is always wrong. The consumers are the internal/metrics counters and
// the internal/server cache and pool statistics, which the serving
// path mutates from many goroutines at once.
//
// The pass builds one module-wide access map (field object → atomic
// and plain access sites) and reports every plain access of a field
// that is atomic anywhere, naming the first atomic site so the reader
// can see the conflict. Deliberate scope limits: taking a field's
// address outside a direct sync/atomic call is neutral (indirection is
// beyond this pass), composite-literal keys are not accesses, and only
// fields whose type sync/atomic could operate on are tracked.
type AtomicPass struct {
	built bool
	use   map[*types.Var]*atomicFieldUse
}

// atomicFieldUse accumulates one field's access sites across the
// whole module.
type atomicFieldUse struct {
	field    *types.Var
	owner    string // the declaring struct type, for diagnostics
	atomicAt []token.Position
	plainAt  []atomicPlainSite
}

// atomicPlainSite is one plain load/store, attributed to the package
// it occurs in so findings land with that package's Run.
type atomicPlainSite struct {
	pkgPath string
	pos     token.Position
}

// Name implements Pass.
func (p *AtomicPass) Name() string { return "atomic" }

// Run implements Pass. The module-wide access map is built once, on
// the first package, then each package reports its own plain-access
// sites of mixed fields.
func (p *AtomicPass) Run(prog *Program, pkg *Package) []Finding {
	if !p.built {
		p.built = true
		p.use = map[*types.Var]*atomicFieldUse{}
		for _, other := range prog.Packages {
			p.scan(prog, other)
		}
	}
	var out []Finding
	for _, u := range p.use {
		if len(u.atomicAt) == 0 || len(u.plainAt) == 0 {
			continue
		}
		for _, site := range u.plainAt {
			if site.pkgPath != pkg.Path {
				continue
			}
			out = append(out, Finding{
				Pos:      site.pos,
				PassName: p.Name(),
				Message: fmt.Sprintf("plain access of %s.%s, which is accessed atomically at %s; use sync/atomic consistently",
					u.owner, u.field.Name(), relPosition(prog, u.atomicAt[0])),
			})
		}
	}
	return out
}

// scan classifies every struct-field access in one package.
func (p *AtomicPass) scan(prog *Program, pkg *Package) {
	for _, file := range pkg.Files {
		// neutral marks selector nodes already accounted for — the
		// &s.f inside an atomic call, the s.f under s.f.Load(), and
		// address-of operands, which are neither loads nor stores.
		neutral := map[ast.Expr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.classifyCall(prog, pkg, n, neutral)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if sel, ok := unparen(n.X).(*ast.SelectorExpr); ok {
						neutral[sel] = true
					}
				}
			case *ast.SelectorExpr:
				if neutral[n] {
					return true
				}
				if fld := fieldOf(pkg.Info, n); fld != nil && atomicCapable(fld.Type()) {
					u := p.useOf(pkg, n, fld)
					u.plainAt = append(u.plainAt, atomicPlainSite{
						pkgPath: pkg.Path,
						pos:     prog.Fset.Position(n.Pos()),
					})
				}
			}
			return true
		})
	}
}

// classifyCall records atomic accesses made by one call: the &field
// arguments of a sync/atomic function, or the receiver field of a
// sync/atomic method (atomic.Int64 and friends).
func (p *AtomicPass) classifyCall(prog *Program, pkg *Package, call *ast.CallExpr, neutral map[ast.Expr]bool) {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Recv() != nil {
		// s.f.Load(): the receiver selector is the atomic access.
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if recv, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
				if fld := fieldOf(pkg.Info, recv); fld != nil {
					neutral[recv] = true
					u := p.useOf(pkg, recv, fld)
					u.atomicAt = append(u.atomicAt, prog.Fset.Position(recv.Pos()))
				}
			}
		}
		return
	}
	// atomic.AddInt64(&s.f, delta): the &-argument fields are atomic;
	// every other argument is an ordinary expression.
	for _, arg := range call.Args {
		and, ok := unparen(arg).(*ast.UnaryExpr)
		if !ok || and.Op != token.AND {
			continue
		}
		sel, ok := unparen(and.X).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if fld := fieldOf(pkg.Info, sel); fld != nil {
			neutral[sel] = true
			u := p.useOf(pkg, sel, fld)
			u.atomicAt = append(u.atomicAt, prog.Fset.Position(sel.Pos()))
		}
	}
}

// useOf returns the accumulator for fld, creating it on first sight.
func (p *AtomicPass) useOf(pkg *Package, sel *ast.SelectorExpr, fld *types.Var) *atomicFieldUse {
	u, ok := p.use[fld]
	if !ok {
		owner := "struct"
		if t := pkg.Info.TypeOf(sel.X); t != nil {
			owner = typeShort(t)
		}
		u = &atomicFieldUse{field: fld, owner: owner}
		p.use[fld] = u
	}
	return u
}

// fieldOf resolves sel to the struct field it reads or writes, or nil
// when sel is not a field access (package member, method, …).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// atomicCapable reports whether sync/atomic could operate on a value
// of type t: the atomic.* wrapper types themselves, or the integer and
// unsafe-pointer shapes the function-style API takes.
func atomicCapable(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return true
		}
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64,
			types.Uintptr, types.UnsafePointer:
			return true
		}
	}
	return false
}
