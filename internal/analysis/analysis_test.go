package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nucleodb/internal/analysis"
)

// The fixture module under testdata/src/fixture seeds one violation per
// construct each pass knows about, marked with trailing //violation:<pass>
// comments. The tests diff the pass output against exactly that set:
// a finding without a marker and a marker without a finding both fail,
// so the clean fixtures double as false-positive regression tests.

const fixtureDir = "testdata/src/fixture"

var fixtureOnce = sync.OnceValues(func() (*analysis.Program, error) {
	return analysis.Load(fixtureDir, "fixture")
})

func loadFixture(t *testing.T) *analysis.Program {
	t.Helper()
	prog, err := fixtureOnce()
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	if len(prog.Failed) > 0 {
		t.Fatalf("fixture packages failed to load: %v", prog.Failed)
	}
	return prog
}

// keepOnly restricts Analyze to one fixture package.
func keepOnly(path string) func(string) bool {
	return func(p string) bool { return p == path }
}

// wantKeys scans a fixture package's sources for //violation:<pass>
// markers, returning the expected "file:line pass" keys.
func wantKeys(t *testing.T, prog *analysis.Program, pkgPath string) map[string]bool {
	t.Helper()
	rel := strings.TrimPrefix(pkgPath, "fixture/")
	dir := filepath.Join(fixtureDir, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "//violation:")
			if !ok {
				continue
			}
			pass := strings.Fields(marker)[0]
			want[fmt.Sprintf("%s/%s:%d %s", rel, e.Name(), i+1, pass)] = true
		}
	}
	if len(want) == 0 {
		t.Fatalf("no //violation markers found under %s", dir)
	}
	return want
}

// gotKeys reduces formatted findings ("file:line: pass: msg") to the
// same "file:line pass" key space, deduplicating multiple findings on
// one line, and returns the full lines for diagnostics.
func gotKeys(t *testing.T, prog *analysis.Program, findings []analysis.Finding) (map[string]bool, map[string][]string) {
	t.Helper()
	got := map[string]bool{}
	lines := map[string][]string{}
	for _, line := range analysis.Format(prog, findings) {
		parts := strings.SplitN(line, ": ", 3)
		if len(parts) != 3 {
			t.Fatalf("malformed finding %q", line)
		}
		key := parts[0] + " " + parts[1]
		got[key] = true
		lines[key] = append(lines[key], line)
	}
	return got, lines
}

// runPass runs one pass over one fixture package and diffs its findings
// against the //violation markers in that package's sources.
func runPass(t *testing.T, pass analysis.Pass, pkgPath string) {
	t.Helper()
	prog := loadFixture(t)
	findings := analysis.Analyze(prog, []analysis.Pass{pass}, keepOnly(pkgPath))
	want := wantKeys(t, prog, pkgPath)
	got, lines := gotKeys(t, prog, findings)
	for key := range want {
		if !got[key] {
			t.Errorf("marked violation not reported: %s", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected finding: %v", lines[key])
		}
	}
}

func TestHotpathPassFixtures(t *testing.T) {
	runPass(t, &analysis.HotpathPass{}, "fixture/hot")
}

func TestErrcheckPassFixtures(t *testing.T) {
	runPass(t, &analysis.ErrcheckPass{Packages: []string{"fixture/errs"}}, "fixture/errs")
}

func TestStatsPassFixtures(t *testing.T) {
	runPass(t, &analysis.StatsPass{GuardedTypes: []string{"fixture/stats.Stats"}}, "fixture/stats")
}

func TestAtomicPassFixtures(t *testing.T) {
	runPass(t, &analysis.AtomicPass{}, "fixture/atomics")
}

func TestCtxPassFixtures(t *testing.T) {
	runPass(t, &analysis.CtxPass{ForbidBackgroundIn: []string{"fixture/ctxpkg"}}, "fixture/ctxpkg")
}

func TestGoPassFixtures(t *testing.T) {
	runPass(t, &analysis.GoPass{}, "fixture/gor")
}

func TestPoolEscapePassFixtures(t *testing.T) {
	runPass(t, &analysis.PoolEscapePass{}, "fixture/poolesc")
}

func TestAliasPassFixtures(t *testing.T) {
	runPass(t, &analysis.AliasPass{}, "fixture/aliaspkg")
}

func TestFrozenPassFixtures(t *testing.T) {
	runPass(t, &analysis.FrozenPass{}, "fixture/frozenpkg")
}

func TestSnapshotPassFixtures(t *testing.T) {
	runPass(t, &analysis.SnapshotPass{}, "fixture/snappkg")
}

func TestLockOrderPassFixtures(t *testing.T) {
	runPass(t, &analysis.LockOrderPass{}, "fixture/lockpkg")
}

// TestMutationPassesDisjoint checks the taint partition of the shared
// mutation dataflow: the frozen pass must stay silent on the snapshot
// fixtures (the conf type carries no //cafe:frozen) and the snapshot
// pass on the frozen fixtures (no atomics there), and neither may
// fire in the lock fixtures.
func TestMutationPassesDisjoint(t *testing.T) {
	prog := loadFixture(t)
	for _, c := range []struct {
		pass analysis.Pass
		pkg  string
	}{
		{&analysis.FrozenPass{}, "fixture/snappkg"},
		{&analysis.SnapshotPass{}, "fixture/frozenpkg"},
		{&analysis.FrozenPass{}, "fixture/lockpkg"},
		{&analysis.SnapshotPass{}, "fixture/lockpkg"},
		{&analysis.LockOrderPass{}, "fixture/frozenpkg"},
		{&analysis.LockOrderPass{}, "fixture/snappkg"},
	} {
		if f := analysis.Analyze(prog, []analysis.Pass{c.pass}, keepOnly(c.pkg)); len(f) > 0 {
			t.Errorf("%s findings in %s:\n%s", c.pass.Name(), c.pkg,
				strings.Join(analysis.Format(prog, f), "\n"))
		}
	}
}

// TestPoolPassesDisjoint checks the fact partition: the poolescape
// pass must stay silent on the aliasing fixtures (views are not the
// pooled object) and the alias pass on the direct-escape fixtures.
func TestPoolPassesDisjoint(t *testing.T) {
	prog := loadFixture(t)
	if f := analysis.Analyze(prog, []analysis.Pass{&analysis.PoolEscapePass{}}, keepOnly("fixture/aliaspkg")); len(f) > 0 {
		t.Errorf("poolescape findings in the alias fixture package:\n%s", strings.Join(analysis.Format(prog, f), "\n"))
	}
	if f := analysis.Analyze(prog, []analysis.Pass{&analysis.AliasPass{}}, keepOnly("fixture/poolesc")); len(f) > 0 {
		t.Errorf("alias findings in the poolescape fixture package:\n%s", strings.Join(analysis.Format(prog, f), "\n"))
	}
}

// TestCtxPassScope checks that Background/TODO are only forbidden in
// the configured packages: with no ForbidBackgroundIn, only the
// sibling-call violations remain.
func TestCtxPassScope(t *testing.T) {
	prog := loadFixture(t)
	pass := &analysis.CtxPass{}
	findings := analysis.Analyze(prog, []analysis.Pass{pass}, keepOnly("fixture/ctxpkg"))
	for _, line := range analysis.Format(prog, findings) {
		if strings.Contains(line, "context.Background") || strings.Contains(line, "context.TODO") {
			t.Errorf("Background/TODO flagged outside the configured packages: %s", line)
		}
	}
	if len(findings) != 2 {
		t.Errorf("want exactly the 2 sibling-call findings, got %d:\n%s",
			len(findings), strings.Join(analysis.Format(prog, findings), "\n"))
	}
}

// TestErrcheckScope checks the package filter: fixture/hot drops
// fmt.Println's error on purpose, and a pass scoped to fixture/errs
// must not see it.
func TestErrcheckScope(t *testing.T) {
	prog := loadFixture(t)
	pass := &analysis.ErrcheckPass{Packages: []string{"fixture/errs"}}
	findings := analysis.Analyze(prog, []analysis.Pass{pass}, keepOnly("fixture/hot"))
	if len(findings) != 0 {
		t.Fatalf("errcheck scoped to fixture/errs reported in fixture/hot:\n%s",
			strings.Join(analysis.Format(prog, findings), "\n"))
	}
}

// TestDirectives checks the waiver machinery: the reasoned //cafe:allow
// suppresses its line, the bare //cafe:allow is itself a finding, and
// the un-waived violation still surfaces.
func TestDirectives(t *testing.T) {
	prog := loadFixture(t)
	findings := analysis.Analyze(prog, []analysis.Pass{&analysis.HotpathPass{}}, keepOnly("fixture/directives"))

	src, err := os.ReadFile(filepath.Join(fixtureDir, "directives", "directives.go"))
	if err != nil {
		t.Fatal(err)
	}
	lineOf := func(substr string) int {
		t.Helper()
		for i, line := range strings.Split(string(src), "\n") {
			if strings.Contains(line, substr) {
				return i + 1
			}
		}
		t.Fatalf("fixture line containing %q not found", substr)
		return 0
	}
	want := map[string]bool{
		fmt.Sprintf("directives/directives.go:%d directive", lineOf("\t//cafe:allow")):         true,
		fmt.Sprintf("directives/directives.go:%d directive", lineOf("//cafe:allow goroutine")): true,
		fmt.Sprintf("directives/directives.go:%d hotpath", lineOf("append(xs, 2)")):            true,
		fmt.Sprintf("directives/directives.go:%d hotpath", lineOf("append(xs, 4)")):            true,
	}
	got, lines := gotKeys(t, prog, findings)
	for key := range want {
		if !got[key] {
			t.Errorf("expected finding missing: %s", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected finding: %v", lines[key])
		}
	}
}

// TestRepoIsClean is the self-check the lint gate relies on: the
// default pass suite over this repository must come back empty. Skipped
// in -short runs because make check invokes cafe-lint directly.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("cafe-lint runs in make check; skipping the in-test module load")
	}
	prog, err := analysis.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, fail := range prog.Failed {
		t.Errorf("package %s failed to load: %v", fail.Path, fail.Err)
	}
	findings := analysis.Analyze(prog, analysis.DefaultPasses(), nil)
	if len(findings) != 0 {
		t.Fatalf("default passes report findings on the repository:\n%s",
			strings.Join(analysis.Format(prog, findings), "\n"))
	}
}

// TestLoadRecordsPerPackageFailures drives the loader over a module
// with one broken package: the failure must be recorded per package
// with the import path, and the healthy sibling must still load and
// analyze.
func TestLoadRecordsPerPackageFailures(t *testing.T) {
	prog, err := analysis.Load("testdata/src/broken", "broken")
	if err != nil {
		t.Fatalf("a broken package must not abort the module load: %v", err)
	}
	if len(prog.Failed) != 1 {
		t.Fatalf("want exactly 1 failed package, got %d: %v", len(prog.Failed), prog.Failed)
	}
	fail := prog.Failed[0]
	if fail.Path != "broken/bad" {
		t.Errorf("failed package path = %q, want broken/bad", fail.Path)
	}
	if !strings.Contains(fail.Err.Error(), "undefinedIdent") && !strings.Contains(fail.Err.Error(), "undefined") {
		t.Errorf("failure does not name the type error: %v", fail.Err)
	}
	var paths []string
	for _, pkg := range prog.Packages {
		paths = append(paths, pkg.Path)
	}
	if len(prog.Packages) != 1 || prog.Packages[0].Path != "broken/good" {
		t.Errorf("healthy packages = %v, want [broken/good]", paths)
	}
	// Analysis over the partial program must not panic and must stay
	// clean (broken/good has nothing to flag).
	if findings := analysis.Analyze(prog, analysis.DefaultPasses(), nil); len(findings) != 0 {
		t.Errorf("unexpected findings on the healthy package:\n%s",
			strings.Join(analysis.Format(prog, findings), "\n"))
	}
}
