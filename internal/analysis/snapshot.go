package analysis

// The snapshot pass: values loaded from an atomic.Pointer or
// atomic.Value are read-only views of a published snapshot. Three
// shapes are violations: a store through the loaded value (or memory
// reached from it), a call passing it to a helper whose transitive
// summary mutates it, and a snapshot retained across a swap point — a
// call that transitively performs an atomic Store/Swap/CompareAndSwap
// — and used afterwards. The value handed to the swap itself is
// exempt: it is the new snapshot being published, not a stale view.
// The dataflow lives in mutation.go, shared with the frozen pass
// through MutShared.

// SnapshotPass reports writes through and stale retention of
// atomically loaded snapshot values.
type SnapshotPass struct {
	Shared *MutShared
}

// Name implements Pass.
func (p *SnapshotPass) Name() string { return "snapshot" }

// Run implements Pass.
func (p *SnapshotPass) Run(prog *Program, pkg *Package) []Finding {
	if p.Shared == nil {
		p.Shared = &MutShared{}
	}
	return p.Shared.analyze(prog, pkg).snapshot
}
