package analysis

// A lightweight intraprocedural control-flow graph over one function
// body, built from the AST alone. Statements land in basic blocks in
// execution order; structured control flow (if/for/range/switch/
// select, break/continue with and without labels, fallthrough,
// return) produces the edges. The graph is the substrate of the
// forward dataflow engine in dataflow.go and deliberately stays
// simple: goto is over-approximated with an edge to Exit (the module
// has none), and panics do not cut the fall-through edge — both are
// safe directions for the may-analyses built on top.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a run of nodes that execute in order, and
// the blocks control can reach next.
type Block struct {
	// Index is the block's position in CFG.Blocks, for stable display.
	Index int
	// Nodes are statements and the expressions evaluated for control
	// decisions (if/for conditions, switch tags, case expressions), in
	// execution order. Compound statements never appear here — their
	// pieces are distributed over blocks — with one exception: a
	// *ast.RangeStmt node stands for "evaluate X, bind Key/Value", and
	// consumers must not descend into its Body.
	Nodes []ast.Node
	// Succs are the possible successors.
	Succs []*Block
	// Preds are the possible predecessors.
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is executed first; Exit is reached by every return and by
	// falling off the end.
	Entry, Exit *Block
	// Blocks holds every block, Entry and Exit included.
	Blocks []*Block
}

// BuildCFG constructs the control-flow graph of body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:         &CFG{},
		labelBrk:  map[string]*Block{},
		labelCont: map[string]*Block{},
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmts(body.List)
	b.jump(b.g.Exit)
	return b.g
}

type cfgBuilder struct {
	g   *CFG
	cur *Block // nil while the current point is unreachable

	// break/continue target stacks for the innermost enclosing
	// loop/switch/select, plus label-resolved targets.
	brk, cont    []*Block
	labelBrk     map[string]*Block
	labelCont    map[string]*Block
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target and marks the
// point unreachable until the next start.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

func (b *cfgBuilder) start(blk *Block) { b.cur = blk }

// add appends a node to the current block. Unreachable statements get
// a fresh predecessor-less block: they are still analyzed, with empty
// in-state.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// ensure returns the current block, materializing one if the point
// was unreachable.
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// pushLoop records break/continue targets (and the pending label, if
// the loop was labeled).
func (b *cfgBuilder) pushLoop(brkTo, contTo *Block) (label string) {
	b.brk = append(b.brk, brkTo)
	b.cont = append(b.cont, contTo)
	label = b.pendingLabel
	b.pendingLabel = ""
	if label != "" {
		b.labelBrk[label] = brkTo
		if contTo != nil {
			b.labelCont[label] = contTo
		}
	}
	return label
}

func (b *cfgBuilder) popLoop(label string) {
	b.brk = b.brk[:len(b.brk)-1]
	b.cont = b.cont[:len(b.cont)-1]
	if label != "" {
		delete(b.labelBrk, label)
		delete(b.labelCont, label)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		after := b.newBlock()
		b.edge(cond, then)
		var elseEntry *Block
		if s.Else != nil {
			elseEntry = b.newBlock()
			b.edge(cond, elseEntry)
		} else {
			b.edge(cond, after)
		}
		b.start(then)
		b.stmts(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			b.start(elseEntry)
			b.stmt(s.Else)
			b.jump(after)
		}
		b.start(after)

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.jump(head)
		b.start(head)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, body)
		if s.Cond != nil {
			b.edge(b.cur, after)
		}
		label := b.pushLoop(after, post)
		b.start(body)
		b.stmts(s.Body.List)
		b.jump(post)
		b.popLoop(label)
		b.start(post)
		if s.Post != nil {
			b.add(s.Post)
		}
		b.jump(head)
		b.start(after)

	case *ast.RangeStmt:
		head := b.newBlock()
		b.jump(head)
		b.start(head)
		b.add(s) // evaluate X, bind Key/Value; Body is NOT part of this node
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, body)
		b.edge(b.cur, after)
		label := b.pushLoop(after, head)
		b.start(body)
		b.stmts(s.Body.List)
		b.jump(head)
		b.popLoop(label)
		b.start(after)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, nil)

	case *ast.SelectStmt:
		head := b.ensure()
		after := b.newBlock()
		label := b.pushLoop(after, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := b.newBlock()
			b.edge(head, body)
			b.start(body)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmts(cc.Body)
			b.jump(after)
		}
		if len(s.Body.List) == 0 {
			// Empty select blocks forever; no edge to after.
			b.cur = nil
		}
		b.popLoop(label)
		b.start(after)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			target := b.g.Exit
			if s.Label != nil {
				if t := b.labelBrk[s.Label.Name]; t != nil {
					target = t
				}
			} else if len(b.brk) > 0 {
				target = b.brk[len(b.brk)-1]
			}
			b.jump(target)
		case token.CONTINUE:
			target := b.g.Exit
			if s.Label != nil {
				if t := b.labelCont[s.Label.Name]; t != nil {
					target = t
				}
			} else {
				// Nearest enclosing loop: switch/select push nil
				// continue targets, which continue skips past.
				for i := len(b.cont) - 1; i >= 0; i-- {
					if b.cont[i] != nil {
						target = b.cont[i]
						break
					}
				}
			}
			b.jump(target)
		case token.GOTO:
			// Unsupported precisely; an edge to Exit keeps the graph
			// sound for forward may-analyses (facts simply stop here).
			b.jump(b.g.Exit)
		case token.FALLTHROUGH:
			// Handled by switchClauses via endsInFallthrough.
		}

	default:
		// Assign, expr, send, go, defer, incdec, decl, empty.
		b.add(s)
	}
}

// switchClauses wires the case-clause bodies of a (type) switch: every
// clause is entered from the head, fallthrough chains clause bodies,
// and a missing default adds the skip edge.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, _ *Block) {
	head := b.ensure()
	after := b.newBlock()
	label := b.pushLoop(after, nil)
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, bodies[i])
		b.start(bodies[i])
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmts(cc.Body)
		if endsInFallthrough(cc.Body) && i+1 < len(clauses) {
			b.jump(bodies[i+1])
		} else {
			b.jump(after)
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.popLoop(label)
	b.start(after)
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}
