package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StatsPass pins the instrumentation contract: SearchStats is collected
// through a possibly-nil pointer, so every field write and method call
// through a *SearchStats must be dominated by a nil check, and
// sync/atomic values may only be touched through their methods (a plain
// assignment to an atomic value is a silent data race).
//
// The guard analysis is deliberately simple — it recognises the shapes
// the codebase actually uses, not arbitrary dataflow:
//
//	if st != nil { st.X++ }            // direct guard
//	collect := st != nil               // derived guard bool
//	if collect { st.X++ }
//	if st == nil { return }            // early return
//	st.X++
//
// Inside a method whose receiver is the guarded type, the receiver is
// assumed non-nil: the guard belongs at the call sites, which this pass
// checks.
type StatsPass struct {
	// GuardedTypes are fully qualified named types
	// ("nucleodb/internal/core.SearchStats") whose pointers demand
	// nil-guarded access.
	GuardedTypes []string
}

// Name implements Pass.
func (p *StatsPass) Name() string { return "stats" }

// guarded reports whether t (after stripping one pointer) is one of the
// pass's guarded named types.
func (p *StatsPass) guardedType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	q := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, want := range p.GuardedTypes {
		if q == want {
			return true
		}
	}
	return false
}

// guardedPointerObj returns the variable a guarded-type pointer
// expression reads through, or nil when expr is not such an access.
func (p *StatsPass) guardedPointerObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			obj := info.ObjectOf(e)
			if obj == nil {
				return nil
			}
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
				return nil
			}
			if !p.guardedType(obj.Type()) {
				return nil
			}
			return obj
		default:
			return nil
		}
	}
}

// Run implements Pass.
func (p *StatsPass) Run(prog *Program, pkg *Package) []Finding {
	w := &statsWalker{pass: p, prog: prog, pkg: pkg, guardVars: map[types.Object]types.Object{}}
	pkg.funcDecls(func(fd *ast.FuncDecl) {
		w.collectGuardVars(fd.Body)
		g := objSet{}
		if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			if obj := pkg.Info.Defs[fd.Recv.List[0].Names[0]]; obj != nil && p.guardedType(obj.Type()) {
				g[obj] = true
			}
		}
		w.walkStmts(fd.Body.List, g)
	})
	return w.out
}

type objSet map[types.Object]bool

func (s objSet) clone() objSet {
	c := make(objSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s objSet) union(o objSet) objSet {
	for k := range o {
		s[k] = true
	}
	return s
}

type statsWalker struct {
	pass *StatsPass
	prog *Program
	pkg  *Package
	out  []Finding
	// guardVars maps a bool variable to the pointer it proves non-nil
	// (collect := st != nil).
	guardVars map[types.Object]types.Object
}

func (w *statsWalker) report(node ast.Node, format string, args ...any) {
	w.out = append(w.out, Finding{
		Pos:      w.prog.Fset.Position(node.Pos()),
		PassName: w.pass.Name(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// collectGuardVars records `v := p != nil` bindings anywhere in body.
func (w *statsWalker) collectGuardVars(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		t, _ := w.cond(as.Rhs[0])
		if len(t) != 1 {
			return true
		}
		if obj := w.pkg.Info.ObjectOf(lhs); obj != nil {
			for ptr := range t {
				w.guardVars[obj] = ptr
			}
		}
		return true
	})
}

// cond evaluates a boolean expression to the sets of guarded pointers
// proven non-nil when it is true, respectively false.
func (w *statsWalker) cond(e ast.Expr) (whenTrue, whenFalse objSet) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.cond(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			f, t := w.cond(e.X)
			return t, f
		}
	case *ast.Ident:
		if ptr, ok := w.guardVars[w.pkg.Info.ObjectOf(e)]; ok {
			return objSet{ptr: true}, nil
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.NEQ, token.EQL:
			var operand ast.Expr
			switch {
			case isNilIdent(w.pkg.Info, e.Y):
				operand = e.X
			case isNilIdent(w.pkg.Info, e.X):
				operand = e.Y
			default:
				return nil, nil
			}
			if obj := w.pass.guardedPointerObj(w.pkg.Info, operand); obj != nil {
				if e.Op == token.NEQ {
					return objSet{obj: true}, nil
				}
				return nil, objSet{obj: true}
			}
		case token.LAND:
			t1, _ := w.cond(e.X)
			t2, _ := w.cond(e.Y)
			return objSet{}.union(t1).union(t2), nil
		case token.LOR:
			_, f1 := w.cond(e.X)
			_, f2 := w.cond(e.Y)
			return nil, objSet{}.union(f1).union(f2)
		}
	}
	return nil, nil
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// walkStmts processes a statement list, narrowing g in place after
// early-return guards.
func (w *statsWalker) walkStmts(stmts []ast.Stmt, g objSet) {
	for _, s := range stmts {
		w.walkStmt(s, g)
	}
}

func (w *statsWalker) walkStmt(s ast.Stmt, g objSet) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, g.clone())
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, g)
		}
		w.checkExpr(s.Cond, g)
		whenTrue, whenFalse := w.cond(s.Cond)
		w.walkStmts(s.Body.List, g.clone().union(whenTrue))
		if s.Else != nil {
			w.walkStmt(s.Else, g.clone().union(whenFalse))
		} else if terminates(s.Body) {
			// if p == nil { return }: the rest of the block is guarded.
			g.union(whenFalse)
		}
	case *ast.ForStmt:
		inner := g.clone()
		if s.Init != nil {
			w.walkStmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, inner)
		}
		if s.Post != nil {
			w.walkStmt(s.Post, inner)
		}
		w.walkStmts(s.Body.List, inner)
	case *ast.RangeStmt:
		w.checkExpr(s.X, g)
		w.walkStmts(s.Body.List, g.clone())
	case *ast.SwitchStmt:
		inner := g.clone()
		if s.Init != nil {
			w.walkStmt(s.Init, inner)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, inner)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.checkExpr(e, inner)
				}
				w.walkStmts(cc.Body, inner.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		inner := g.clone()
		if s.Init != nil {
			w.walkStmt(s.Init, inner)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, inner.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := g.clone()
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, inner)
				}
				w.walkStmts(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, g)
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			w.checkWrite(lhs, g)
		}
		for _, rhs := range s.Rhs {
			w.checkExpr(rhs, g)
		}
	case *ast.IncDecStmt:
		w.checkWrite(s.X, g)
	case *ast.DeferStmt:
		w.checkExpr(s.Call, g)
	case *ast.GoStmt:
		w.checkExpr(s.Call, g)
	case *ast.ExprStmt:
		w.checkExpr(s.X, g)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, g)
		}
	case *ast.SendStmt:
		w.checkExpr(s.Chan, g)
		w.checkExpr(s.Value, g)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, g)
					}
				}
			}
		}
	}
}

// terminates reports whether executing body always leaves the enclosing
// statement list (return, panic, continue, break, goto).
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkWrite flags an assignment target that stores through an
// unguarded guarded-type pointer or directly into a sync/atomic value.
func (w *statsWalker) checkWrite(target ast.Expr, g objSet) {
	target = unparen(target)
	sel, ok := target.(*ast.SelectorExpr)
	if !ok {
		if star, ok := target.(*ast.StarExpr); ok {
			// *st = X: storing through the pointer itself.
			if obj := w.pass.guardedPointerObj(w.pkg.Info, star.X); obj != nil && !g[obj] {
				w.report(target, "write through possibly-nil *%s; guard with a nil check", typeShort(obj.Type()))
			}
		}
		return
	}
	if t := w.pkg.Info.TypeOf(sel); isAtomicType(t) {
		w.report(target, "direct assignment to %s; use its atomic methods", typeShort(t))
	}
	base := sel.X
	for {
		if inner, ok := unparen(base).(*ast.SelectorExpr); ok {
			base = inner.X
			continue
		}
		break
	}
	if obj := w.pass.guardedPointerObj(w.pkg.Info, base); obj != nil && !g[obj] {
		w.report(target, "write to %s.%s through possibly-nil *%s; guard with a nil check",
			obj.Name(), sel.Sel.Name, typeShort(obj.Type()))
	}
}

// checkExpr flags method calls through unguarded guarded-type pointers
// and recurses into function literals with a fresh (empty) guard set —
// a closure may run long after the guard that surrounded its creation.
func (w *statsWalker) checkExpr(expr ast.Expr, g objSet) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, objSet{})
			return false
		case *ast.CallExpr:
			sel, ok := unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s, ok := w.pkg.Info.Selections[sel]; !ok || s.Kind() != types.MethodVal {
				return true
			}
			if obj := w.pass.guardedPointerObj(w.pkg.Info, sel.X); obj != nil && !g[obj] {
				w.report(n, "call to %s.%s through possibly-nil *%s; guard with a nil check",
					obj.Name(), sel.Sel.Name, typeShort(obj.Type()))
			}
		}
		return true
	})
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic"
}

// typeShort renders a type for diagnostics without its package path.
func typeShort(t types.Type) string {
	s := t.String()
	s = strings.TrimPrefix(s, "*")
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}
