package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrcheckPass flags discarded errors in the decode packages. A call
// whose results include an error must bind that error to a named
// variable: bare call statements and `_` assignments both drop it, and
// in the packages that deserialize the on-disk index a dropped error is
// silent corruption. `defer f.Close()`-style discards are flagged too —
// error paths there need an explicit //cafe:allow waiver stating why
// best-effort is acceptable.
type ErrcheckPass struct {
	// Packages are the import paths the pass applies to. Empty means
	// every package of the module.
	Packages []string
}

// Name implements Pass.
func (p *ErrcheckPass) Name() string { return "errcheck" }

func (p *ErrcheckPass) applies(path string) bool {
	if len(p.Packages) == 0 {
		return true
	}
	for _, want := range p.Packages {
		if path == want {
			return true
		}
	}
	return false
}

// Run implements Pass.
func (p *ErrcheckPass) Run(prog *Program, pkg *Package) []Finding {
	if !p.applies(pkg.Path) {
		return nil
	}
	var out []Finding
	report := func(node ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:      prog.Fset.Position(node.Pos()),
			PassName: p.Name(),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	pkg.funcDecls(func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if i := errResultIndex(pkg.Info, call); i >= 0 {
						report(n, "%s returns an error that is not checked", callName(pkg.Info, call))
					}
				}
			case *ast.DeferStmt:
				if i := errResultIndex(pkg.Info, n.Call); i >= 0 {
					report(n, "deferred %s discards its error", callName(pkg.Info, n.Call))
				}
			case *ast.GoStmt:
				if i := errResultIndex(pkg.Info, n.Call); i >= 0 {
					report(n, "go %s discards its error", callName(pkg.Info, n.Call))
				}
			case *ast.AssignStmt:
				p.checkAssign(pkg, report, n)
			}
			return true
		})
	})
	return out
}

// checkAssign flags assignments that bind an error result to `_`.
func (p *ErrcheckPass) checkAssign(pkg *Package, report func(ast.Node, string, ...any), as *ast.AssignStmt) {
	// Multi-value form: a, err := f(). One call on the right, its
	// results spread across the left.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := pkg.Info.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				report(lhs, "error from %s assigned to _", callName(pkg.Info, call))
			}
		}
		return
	}
	// 1:1 form: _ = f() or _ = err.
	if len(as.Rhs) == len(as.Lhs) {
		for i, lhs := range as.Lhs {
			if !isBlank(lhs) {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				if t := pkg.Info.TypeOf(call); t != nil {
					if isErrorType(t) {
						report(lhs, "error from %s assigned to _", callName(pkg.Info, call))
					}
				}
			} else if t := pkg.Info.TypeOf(as.Rhs[i]); isErrorType(t) {
				report(lhs, "error value assigned to _")
			}
		}
	}
}

// errResultIndex returns the index of the first error in call's
// results, or -1 when it returns none (or is a type conversion).
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return -1
	}
	t := info.TypeOf(call)
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i
			}
		}
	default:
		if isErrorType(t) {
			return 0
		}
	}
	return -1
}

// callName renders a call target for diagnostics.
func callName(info *types.Info, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
