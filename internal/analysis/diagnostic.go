package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Diagnostic is one finding in the tool's structured output: the same
// fact as a Finding, but with the file path already made
// module-relative and the fields split out for machine consumers (the
// JSON and SARIF formats, and the baseline).
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

// String renders the diagnostic in the classic text format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, d.Pass, d.Message)
}

// passDescriptions names every pass the suite can run; it doubles as
// the SARIF rule metadata and the vocabulary of pass-scoped
// //cafe:allow directives.
var passDescriptions = map[string]string{
	"hotpath":    "functions declared //cafe:hotpath must stay allocation-free",
	"errcheck":   "the decode packages must check every error; a dropped decode error is silent corruption",
	"stats":      "SearchStats access must be nil-guarded and sync/atomic values touched only through methods",
	"atomic":     "a struct field accessed through sync/atomic must never see a plain load or store",
	"ctx":        "contexts must propagate: no context-free siblings from ctx-aware code, no Background/TODO in serving packages",
	"goroutine":  "goroutines must be WaitGroup-counted, Done()-cancellable, or joined through a drained channel",
	"poolescape": "pooled scratch (sync.Pool.Get, //cafe:pooled sources) must not outlive the call that obtained it",
	"alias":      "append/slice views over pooled backing must not escape; copy into a fresh buffer instead",
	"frozen":     "//cafe:frozen values are immutable once published; mutate only inside construction, before the value escapes",
	"lockorder":  "mutexes must pair Lock with Unlock on every path and be acquired in one module-wide order",
	"snapshot":   "atomically loaded snapshots are read-only views and must not be retained across a swap point",
	"directive":  "cafe: directives must be well-formed",
}

// validScope reports whether name may scope a //cafe:allow directive.
// "directive" findings cannot waive themselves.
func validScope(name string) bool {
	_, ok := passDescriptions[name]
	return ok && name != "directive"
}

// PassTiming is the wall-clock cost of one pass across every
// analyzed package, for the -format json output and the CI lint
// budget.
type PassTiming struct {
	Pass   string  `json:"pass"`
	Millis float64 `json:"ms"`
}

// Report is the structured result of one lint run, ready for any of
// the output formats.
type Report struct {
	Module   string       `json:"module"`
	Count    int          `json:"count"`
	Findings []Diagnostic `json:"findings"`
	// Timings is per-pass wall-clock, present in JSON output when the
	// driver measured it.
	Timings []PassTiming `json:"pass_timings,omitempty"`
}

// NewReport converts raw findings (as returned by Analyze, already
// sorted) into a Report with module-relative paths.
func NewReport(prog *Program, findings []Finding) Report {
	diags := make([]Diagnostic, len(findings))
	for i, f := range findings {
		diags[i] = Diagnostic{
			File:    relFile(prog.Root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Pass:    f.PassName,
			Message: f.Message,
		}
	}
	return Report{Module: prog.Module, Count: len(diags), Findings: diags}
}

// WriteText writes one classic "file:line: pass: message" line per
// finding — the format the fixture tests and humans read.
func (r Report) WriteText(w io.Writer) error {
	for _, d := range r.Findings {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the report as one indented JSON document.
func (r Report) WriteJSON(w io.Writer) error {
	if r.Findings == nil {
		r.Findings = []Diagnostic{}
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// SARIF 2.1.0 skeleton — just enough structure for CI code-scanning
// upload: one run, one rule per pass, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the report as a SARIF 2.1.0 log for PR annotation.
// Every known pass appears as a rule even when clean, so a scanning
// backend sees a stable rule set across runs.
func (r Report) WriteSARIF(w io.Writer) error {
	names := make([]string, 0, len(passDescriptions))
	for name := range passDescriptions {
		names = append(names, name)
	}
	sort.Strings(names)
	index := make(map[string]int, len(names))
	rules := make([]sarifRule, len(names))
	for i, name := range names {
		index[name] = i
		rules[i] = sarifRule{ID: name, ShortDescription: sarifText{Text: passDescriptions[name]}}
	}
	results := make([]sarifResult, len(r.Findings))
	for i, d := range r.Findings {
		results[i] = sarifResult{
			RuleID:    d.Pass,
			RuleIndex: index[d.Pass],
			Level:     "warning",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Column},
				},
			}},
		}
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cafe-lint", InformationURI: "https://pkg.go.dev/nucleodb/internal/analysis", Rules: rules}},
			Results: results,
		}},
	}
	buf, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}
