// Package analysis implements cafe-lint: a repo-specific static
// analysis suite over the index and alignment kernels, built on the
// standard library's go/parser, go/ast and go/types only.
//
// Three passes enforce the invariants the partitioned-search design
// depends on:
//
//   - hotpath: functions declared with a //cafe:hotpath directive (the
//     postings iterator, the bit-level decoders, the k-mer rolling
//     hash, the banded-DP kernels, the coarse accumulators) must stay
//     allocation-free — no make/new, no map or slice literals, no
//     unbounded append, no fmt, no string conversions, no closures, no
//     interface boxing — and may only call other hotpath functions (or
//     a short list of intrinsics).
//   - errcheck: in the decode packages (internal/index,
//     internal/postings, internal/compress, internal/db) every
//     error-returning call must be checked; a dropped decode error is
//     silent index corruption.
//   - stats: every write through a *core.SearchStats must be dominated
//     by a nil check (the instrumentation contract PR 1 established by
//     convention), and sync/atomic values may only be touched through
//     their methods.
//
// A finding on one line can be waived with a trailing
// "//cafe:allow <reason>" comment; the reason is mandatory. Waivers are
// for constructs the analysis cannot prove safe but a human can: the
// amortised scratch append inside the postings iterator, the O(band)
// setup allocations of the banded kernel, fmt.Errorf on cold
// corruption paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic, formatted "file:line: pass: message".
type Finding struct {
	Pos      token.Position
	PassName string
	Message  string
}

// String renders the finding in the tool's output format, with the file
// path relative to base when possible.
func (f Finding) format(base string) string {
	file := f.Pos.Filename
	if base != "" {
		if rel, ok := strings.CutPrefix(file, base+"/"); ok {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d: %s: %s", file, f.Pos.Line, f.PassName, f.Message)
}

// String renders the finding with its full file path.
func (f Finding) String() string { return f.format("") }

// Format renders every finding relative to the program root, sorted.
func Format(prog *Program, findings []Finding) []string {
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.format(prog.Root)
	}
	return out
}

// Pass is one analysis run over a package within a loaded program.
type Pass interface {
	// Name is the short pass identifier used in findings.
	Name() string
	// Run reports the pass's findings for one package.
	Run(prog *Program, pkg *Package) []Finding
}

// DefaultPasses returns the pass suite configured for this repository —
// the configuration cmd/cafe-lint and the self-check test share.
func DefaultPasses() []Pass {
	return []Pass{
		&HotpathPass{},
		&ErrcheckPass{Packages: []string{
			"nucleodb/internal/index",
			"nucleodb/internal/postings",
			"nucleodb/internal/compress",
			"nucleodb/internal/db",
		}},
		&StatsPass{GuardedTypes: []string{
			"nucleodb/internal/core.SearchStats",
		}},
	}
}

// Analyze runs every pass over every package selected by keep (nil
// keeps all), drops findings on //cafe:allow lines, and returns the
// remainder sorted by position.
func Analyze(prog *Program, passes []Pass, keep func(pkgPath string) bool) []Finding {
	var out []Finding
	for _, pkg := range prog.Packages {
		if keep != nil && !keep(pkg.Path) {
			continue
		}
		out = append(out, pkg.badDirectives...)
		for _, p := range passes {
			for _, f := range p.Run(prog, pkg) {
				if !pkg.waivedAt(f.Pos) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// Directive prefixes. A directive comment has no space after "//", the
// same convention as go:build and go:generate.
const (
	hotpathDirective = "//cafe:hotpath"
	allowDirective   = "//cafe:allow"
)

// collectDirectives scans a package's comments for cafe: directives,
// filling the program's hotpath set and the package's waived-line map.
func collectDirectives(prog *Program, pkg *Package) {
	for _, file := range pkg.Files {
		filename := prog.Fset.Position(file.Pos()).Filename
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowDirective)
				if !ok {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				if strings.TrimSpace(rest) == "" || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					pkg.badDirectives = append(pkg.badDirectives, Finding{
						Pos:      pos,
						PassName: "directive",
						Message:  "cafe:allow needs a reason: //cafe:allow <why this is safe>",
					})
					continue
				}
				lines := pkg.waived[filename]
				if lines == nil {
					lines = map[int]bool{}
					pkg.waived[filename] = lines
				}
				lines[pos.Line] = true
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						prog.hot[obj] = true
					}
				}
			}
		}
	}
}

// waivedAt reports whether pos lies on a //cafe:allow line.
func (pkg *Package) waivedAt(pos token.Position) bool {
	return pkg.waived[pos.Filename][pos.Line]
}

// funcDecls visits every function declaration with a body in the
// package, in file order.
func (pkg *Package) funcDecls(fn func(*ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// isErrorType reports whether t is the error interface or a type that
// implements it (a concrete error being discarded is just as lost).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}
