// Package analysis implements cafe-lint: a repo-specific static
// analysis suite over the index and alignment kernels, built on the
// standard library's go/parser, go/ast and go/types only.
//
// Eight passes enforce the invariants the partitioned-search design
// depends on:
//
//   - hotpath: functions declared with a //cafe:hotpath directive (the
//     postings iterator, the bit-level decoders, the k-mer rolling
//     hash, the banded-DP kernels, the coarse accumulators) must stay
//     allocation-free — no make/new, no map or slice literals, no
//     unbounded append, no fmt, no string conversions, no closures, no
//     interface boxing — and may only call other hotpath functions (or
//     a short list of intrinsics).
//   - errcheck: in the decode packages (internal/index,
//     internal/postings, internal/compress, internal/db) every
//     error-returning call must be checked; a dropped decode error is
//     silent index corruption.
//   - stats: every write through a *core.SearchStats must be dominated
//     by a nil check (the instrumentation contract PR 1 established by
//     convention), and sync/atomic values may only be touched through
//     their methods.
//   - atomic: a struct field accessed through sync/atomic anywhere must
//     be accessed that way everywhere; one plain load or store next to
//     an atomic.AddInt64 is a data race the race detector only finds
//     when the schedules collide.
//   - ctx: context must propagate. A function that receives a
//     context.Context may not call a context-free sibling (Search where
//     SearchContext exists), and the serving packages may not
//     manufacture fresh contexts with context.Background()/TODO().
//   - goroutine: a go statement must be joined, counted, or
//     cancellable — a WaitGroup the goroutine counts down, a Done()
//     channel it selects on, or a channel it signals that the spawning
//     function drains. Anything else is a potential leak past the
//     server's drain path.
//   - poolescape: values from (*sync.Pool).Get, //cafe:pooled
//     functions, or //cafe:pooled struct fields must not outlive the
//     call that obtained them — no returns, field/global/container
//     stores, channel sends, unjoined goroutine captures, or calls
//     that retain them — unless copied first. Flow-sensitive, built
//     on the CFG + forward dataflow engine in cfg.go/dataflow.go with
//     one level of interprocedural summaries (summary.go).
//   - alias: append/slice views over pooled backing must not escape —
//     the PR-5 both-strands merge bug shape, reported at the
//     append/slice site where the copy belongs.
//
// A finding on one line can be waived with a trailing
// "//cafe:allow <reason>" comment; the reason is mandatory. Naming a
// pass first ("//cafe:allow ctx <reason>") scopes the waiver to that
// pass alone, leaving the line visible to every other pass. Waivers are
// for constructs the analysis cannot prove safe but a human can: the
// amortised scratch append inside the postings iterator, the O(band)
// setup allocations of the banded kernel, fmt.Errorf on cold
// corruption paths, the documented context-free wrappers.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one diagnostic, formatted "file:line: pass: message".
type Finding struct {
	Pos      token.Position
	PassName string
	Message  string
}

// String renders the finding in the tool's output format, with the file
// path relative to base when possible.
func (f Finding) format(base string) string {
	return fmt.Sprintf("%s:%d: %s: %s", relFile(base, f.Pos.Filename), f.Pos.Line, f.PassName, f.Message)
}

// relFile strips base from an absolute filename when possible.
func relFile(base, file string) string {
	if base != "" {
		if rel, ok := strings.CutPrefix(file, base+"/"); ok {
			return rel
		}
	}
	return file
}

// relPosition renders a position as "file:line" relative to the
// program root, for cross-references inside diagnostic messages.
func relPosition(prog *Program, pos token.Position) string {
	return fmt.Sprintf("%s:%d", relFile(prog.Root, pos.Filename), pos.Line)
}

// String renders the finding with its full file path.
func (f Finding) String() string { return f.format("") }

// Format renders every finding relative to the program root, sorted.
func Format(prog *Program, findings []Finding) []string {
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.format(prog.Root)
	}
	return out
}

// Pass is one analysis run over a package within a loaded program.
type Pass interface {
	// Name is the short pass identifier used in findings.
	Name() string
	// Run reports the pass's findings for one package.
	Run(prog *Program, pkg *Package) []Finding
}

// DefaultPasses returns the pass suite configured for this repository —
// the configuration cmd/cafe-lint and the self-check test share.
func DefaultPasses() []Pass {
	passes := []Pass{
		&HotpathPass{},
		&ErrcheckPass{Packages: []string{
			"nucleodb/internal/index",
			"nucleodb/internal/postings",
			"nucleodb/internal/compress",
			"nucleodb/internal/db",
		}},
		&StatsPass{GuardedTypes: []string{
			"nucleodb/internal/core.SearchStats",
		}},
		&AtomicPass{},
		&CtxPass{ForbidBackgroundIn: []string{
			"nucleodb/internal/server",
			"nucleodb/internal/core",
		}},
		&GoPass{},
	}
	// poolescape and alias run one shared dataflow between them, as do
	// frozen and snapshot.
	shared := &PoolShared{}
	mut := &MutShared{}
	return append(passes,
		&PoolEscapePass{Shared: shared},
		&AliasPass{Shared: shared},
		&FrozenPass{Shared: mut},
		&SnapshotPass{Shared: mut},
		&LockOrderPass{},
	)
}

// Analyze runs every pass over every package selected by keep (nil
// keeps all), drops findings on //cafe:allow lines, and returns the
// remainder sorted by position.
func Analyze(prog *Program, passes []Pass, keep func(pkgPath string) bool) []Finding {
	findings, _ := AnalyzeTimed(prog, passes, keep)
	return findings
}

// AnalyzeTimed is Analyze plus per-pass wall-clock timings, in pass
// order, accumulated across packages.
func AnalyzeTimed(prog *Program, passes []Pass, keep func(pkgPath string) bool) ([]Finding, []PassTiming) {
	var out []Finding
	elapsed := make([]time.Duration, len(passes))
	for _, pkg := range prog.Packages {
		if keep != nil && !keep(pkg.Path) {
			continue
		}
		out = append(out, pkg.badDirectives...)
		for i, p := range passes {
			start := time.Now()
			found := p.Run(prog, pkg)
			elapsed[i] += time.Since(start)
			for _, f := range found {
				if !pkg.waivedAt(f.Pos, p.Name()) {
					out = append(out, f)
				}
			}
		}
	}
	timings := make([]PassTiming, len(passes))
	for i, p := range passes {
		timings[i] = PassTiming{Pass: p.Name(), Millis: float64(elapsed[i].Nanoseconds()) / 1e6}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Message < out[j].Message
	})
	return out, timings
}

// Directive prefixes. A directive comment has no space after "//", the
// same convention as go:build and go:generate.
const (
	hotpathDirective = "//cafe:hotpath"
	allowDirective   = "//cafe:allow"
	pooledDirective  = "//cafe:pooled"
	frozenDirective  = "//cafe:frozen"
)

// isDirective reports whether comment text is the given directive,
// bare or followed by prose.
func isDirective(text, directive string) bool {
	return text == directive || strings.HasPrefix(text, directive+" ")
}

// allScopes is the waiver-map key meaning "every pass": a
// //cafe:allow whose first word names no pass waives the whole line.
const allScopes = ""

// collectDirectives scans a package's comments for cafe: directives,
// filling the program's hotpath set and the package's waived-line map.
func collectDirectives(prog *Program, pkg *Package) {
	for _, file := range pkg.Files {
		filename := prog.Fset.Position(file.Pos()).Filename
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowDirective)
				if !ok {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// Some other //cafe:allowX token; not this directive.
					pkg.badDirectives = append(pkg.badDirectives, Finding{
						Pos:      pos,
						PassName: "directive",
						Message:  "cafe:allow needs a reason: //cafe:allow [pass] <why this is safe>",
					})
					continue
				}
				scope := allScopes
				words := strings.Fields(rest)
				if len(words) > 0 && validScope(words[0]) {
					scope = words[0]
					words = words[1:]
				}
				if len(words) == 0 {
					pkg.badDirectives = append(pkg.badDirectives, Finding{
						Pos:      pos,
						PassName: "directive",
						Message:  "cafe:allow needs a reason: //cafe:allow [pass] <why this is safe>",
					})
					continue
				}
				lines := pkg.waived[filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					pkg.waived[filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]bool{}
				}
				lines[pos.Line][scope] = true
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if isDirective(c.Text, hotpathDirective) {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						prog.hot[obj] = true
					}
				}
				if isDirective(c.Text, pooledDirective) {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						prog.pooledFns[obj] = true
					}
				}
			}
		}
		// //cafe:frozen on type declarations: values of the type are
		// immutable once published. The directive may sit on the type
		// group's doc, the individual spec's doc, or a trailing line
		// comment.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			groupWide := commentGroupHas(gd.Doc, frozenDirective)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !groupWide && !commentGroupHas(ts.Doc, frozenDirective) && !commentGroupHas(ts.Comment, frozenDirective) {
					continue
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					prog.frozen[tn] = true
				}
			}
		}
		// //cafe:pooled on struct fields: the field holds pool-owned
		// memory. Both doc comments above the field and trailing line
		// comments count.
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if !commentGroupHas(fld.Doc, pooledDirective) && !commentGroupHas(fld.Comment, pooledDirective) {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						prog.pooledFields[v] = true
					}
				}
			}
			return true
		})
	}
}

// commentGroupHas reports whether any comment in cg is the directive.
func commentGroupHas(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if isDirective(c.Text, directive) {
			return true
		}
	}
	return false
}

// waivedAt reports whether pos lies on a //cafe:allow line whose scope
// covers pass — either an unscoped waiver or one naming pass itself.
func (pkg *Package) waivedAt(pos token.Position, pass string) bool {
	scopes := pkg.waived[pos.Filename][pos.Line]
	return scopes[allScopes] || scopes[pass]
}

// funcDecls visits every function declaration with a body in the
// package, in file order.
func (pkg *Package) funcDecls(fn func(*ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// isErrorType reports whether t is the error interface or a type that
// implements it (a concrete error being discarded is just as lost).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}
