package analysis

// The module call graph. Nodes are the function declarations of the
// module; edges are the static calls the type checker can resolve
// (direct calls and method calls with a concrete receiver — calls
// through function values and interface methods stay opaque, the same
// stance the pooled-buffer passes take). Calls made inside a nested
// function literal or a go statement are attributed to the enclosing
// declaration: for the may-analyses built on the graph (what a call
// can eventually mutate, acquire, or swap) that attribution is the
// conservative direction. The lockorder pass, which needs to know
// what runs synchronously under a held lock, collects its own edges
// and skips those subtrees.
//
// Summaries computed over the graph are transitive but k-bounded:
// strongly connected components are processed callees-first (the
// order Tarjan's algorithm emits them), and the fixpoint within an
// SCC — and every closure propagated over the graph — runs at most
// summaryDepth rounds, so a fact travels at most summaryDepth call
// hops through recursion. The bound exists to keep the lint's cost
// proportional to the module, not to the depth of pathological call
// chains; at depth 8 no real chain in this module is truncated.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// summaryDepth is k: the maximum number of call hops a transitive
// summary fact propagates through a cycle, and the round bound of
// every closure over the call graph.
const summaryDepth = 8

// callGraph is the module-wide static call graph.
type callGraph struct {
	// decls maps every module function to its declaration.
	decls map[*types.Func]goDecl
	// callees lists the module functions each function may call, in
	// first-call-site order, deduplicated.
	callees map[*types.Func][]*types.Func
	// sccs groups the functions into strongly connected components in
	// callees-first (reverse topological) order: when component i is
	// processed, every function reachable from it outside the
	// component lives in some component j < i.
	sccs [][]*types.Func
	// sccOf maps a function to its index in sccs.
	sccOf map[*types.Func]int
}

// buildCallGraph constructs the call graph of prog.
func buildCallGraph(prog *Program) *callGraph {
	cg := &callGraph{
		decls:   map[*types.Func]goDecl{},
		callees: map[*types.Func][]*types.Func{},
		sccOf:   map[*types.Func]int{},
	}
	var order []*types.Func // deterministic node order: package, file, decl
	for _, pkg := range prog.Packages {
		pkg.funcDecls(func(fd *ast.FuncDecl) {
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				cg.decls[fn] = goDecl{fd: fd, pkg: pkg}
				order = append(order, fn)
			}
		})
	}
	for _, fn := range order {
		d := cg.decls[fn]
		seen := map[*types.Func]bool{}
		ast.Inspect(d.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(d.pkg.Info, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, inModule := cg.decls[callee]; inModule {
				seen[callee] = true
				cg.callees[fn] = append(cg.callees[fn], callee)
			}
			return true
		})
	}
	cg.tarjan(order)
	return cg
}

// tarjan computes the strongly connected components of the graph,
// iteratively (module call chains can be deep). Components are
// appended in the order the algorithm completes them, which is
// callees-first for a caller→callee edge direction.
func (cg *callGraph) tarjan(order []*types.Func) {
	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	next := 0

	type frame struct {
		fn *types.Func
		ci int // next callee index to visit
	}
	for _, root := range order {
		if _, visited := index[root]; visited {
			continue
		}
		work := []frame{{fn: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ci < len(cg.callees[f.fn]) {
				callee := cg.callees[f.fn][f.ci]
				f.ci++
				if _, visited := index[callee]; !visited {
					index[callee], low[callee] = next, next
					next++
					stack = append(stack, callee)
					onStack[callee] = true
					work = append(work, frame{fn: callee})
				} else if onStack[callee] && low[f.fn] > index[callee] {
					low[f.fn] = index[callee]
				}
				continue
			}
			fn := f.fn
			work = work[:len(work)-1]
			if len(work) > 0 && low[work[len(work)-1].fn] > low[fn] {
				low[work[len(work)-1].fn] = low[fn]
			}
			if low[fn] == index[fn] {
				var scc []*types.Func
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == fn {
						break
					}
				}
				for _, m := range scc {
					cg.sccOf[m] = len(cg.sccs)
				}
				cg.sccs = append(cg.sccs, scc)
			}
		}
	}
}

// recursive reports whether fn can reach itself: it shares a
// component with another function, or calls itself directly.
func (cg *callGraph) recursive(fn *types.Func) bool {
	if len(cg.sccs[cg.sccOf[fn]]) > 1 {
		return true
	}
	for _, callee := range cg.callees[fn] {
		if callee == fn {
			return true
		}
	}
	return false
}

// transClosure propagates per-function position-tagged facts (lock
// identities acquired, swap sites, panic sites — anything keyed by a
// types.Object) transitively up an edge set: after it returns, out[f]
// holds every fact any function within summaryDepth call hops of f
// carries. The earliest-seen position per key is kept so diagnostics
// stay deterministic. The callers pass either the full call graph's
// edges or a restricted set (the lockorder pass excludes function
// literals and go statements, whose bodies do not run synchronously
// under the caller's locks).
func transClosure(edges map[*types.Func][]*types.Func, direct map[*types.Func]map[types.Object]token.Pos) map[*types.Func]map[types.Object]token.Pos {
	out := map[*types.Func]map[types.Object]token.Pos{}
	for fn, facts := range direct {
		m := make(map[types.Object]token.Pos, len(facts))
		for k, v := range facts {
			m[k] = v
		}
		out[fn] = m
	}
	for round := 0; round < summaryDepth; round++ {
		changed := false
		for fn, callees := range edges {
			for _, callee := range callees {
				for k, pos := range out[callee] {
					m := out[fn]
					if m == nil {
						m = map[types.Object]token.Pos{}
						out[fn] = m
					}
					if old, ok := m[k]; !ok {
						changed = true
						m[k] = pos
					} else if pos < old {
						m[k] = pos
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return out
}

// transClosureBool is transClosure for a single boolean per-function
// fact (may panic, may swap), tagged with its earliest witness site.
func transClosureBool(edges map[*types.Func][]*types.Func, direct map[*types.Func]token.Pos) map[*types.Func]token.Pos {
	out := map[*types.Func]token.Pos{}
	for fn, pos := range direct {
		out[fn] = pos
	}
	for round := 0; round < summaryDepth; round++ {
		changed := false
		for fn, callees := range edges {
			for _, callee := range callees {
				pos, ok := out[callee]
				if !ok {
					continue
				}
				if old, seen := out[fn]; !seen {
					out[fn] = pos
					changed = true
				} else if pos < old {
					out[fn] = pos
				}
			}
		}
		if !changed {
			break
		}
	}
	return out
}
