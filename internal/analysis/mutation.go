package analysis

// The mutation dataflow shared by the frozen and snapshot passes: a
// flow-sensitive taint analysis over the CFG + forward-dataflow engine
// of cfg.go/dataflow.go, with transitive interprocedural summaries
// computed callees-first over the module call graph (callgraph.go).
//
// Two taints ride the same lattice:
//
//   - Frozen: a value of a //cafe:frozen type that may already be
//     published — read from a package-level variable, or returned by a
//     function whose summary says it hands out published values.
//     Mutating memory reachable from a Frozen value (field store,
//     element store, store through a pointer, or a call to a helper
//     whose summary mutates the corresponding parameter or receiver)
//     is a frozen-pass violation.
//   - Snap: a value loaded from an atomic.Pointer/atomic.Value (the
//     snapshot-swap pattern the facade is built on), or memory reached
//     from one. Stores through Snap values are snapshot-pass
//     violations, and a Snap value still live after a call that
//     transitively performs an atomic Store/Swap (a swap point) turns
//     Stale: any later use is flagged — the reader kept a snapshot
//     across the swap it was supposed to be isolated from. The value
//     handed to the swap call itself is exempt (it IS the new
//     snapshot).
//
// Freshness is the absence of taint: values constructed in the current
// function (composite literals, new, zero-valued vars, shallow copies
// via *p) carry no taint, so constructor-style initialization needs no
// special casing. Mutations through a function's own parameters or
// receiver are not reported in the function itself — they set the
// function's mutatesArg/mutatesRecv summary bits, and the violation is
// reported at call sites that pass a tainted value, RacerD-style. A
// helper that only ever initializes fresh values therefore stays
// silent everywhere.
//
// Deliberate scope limits (documented in the README):
//   - Struct composite literals launder taint: a wrapper struct built
//     around snapshot memory is a new value, and mutations reaching
//     through it into the snapshot are invisible. Slice/array/map
//     literals and append keep their elements' taint.
//   - A shallow copy (out := *g) clears taint entirely, including for
//     pointer-bearing fields that still alias the original backing;
//     reallocating before mutating such fields is the copy-on-write
//     contract the Segment code follows.
//   - Out-of-module callees are assumed not to mutate their arguments
//     (the stdlib does not scribble on the caller's structs).
//   - Provenance through untracked containers (map of segments filled
//     elsewhere) is invisible.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// mutSummary is what the mutation analyses know about calling a
// function without re-analyzing its body.
type mutSummary struct {
	// mutatesArg has bit i set when the function may store through
	// memory reachable from parameter i, directly or transitively.
	mutatesArg uint64
	// mutatesRecv marks a method that may store through its receiver.
	mutatesRecv bool
	// returnsArg has bit i set when parameter i may flow into a
	// result; returnsRecv is the receiver analogue.
	returnsArg  uint64
	returnsRecv bool
	// taintMask has bit i set when result i may be a published
	// //cafe:frozen value the function obtained itself; snapMask has
	// bit i set when result i may come from an atomic snapshot load.
	// Results past 16 share the top bit.
	taintMask uint16
	snapMask  uint16
}

// resultBit maps result index i to its mask bit.
func resultBit(i int) uint16 {
	if i > 15 {
		i = 15
	}
	return 1 << uint(i)
}

// MutShared caches the mutation dataflow so the frozen and snapshot
// passes run it once per package between them. The zero value is
// ready; DefaultPasses hands one instance to both passes.
type MutShared struct {
	once    bool
	cg      *callGraph
	sums    map[*types.Func]*mutSummary
	swaps   map[*types.Func]token.Pos
	results map[*Package]*mutResults
}

type mutResults struct {
	frozen   []Finding
	snapshot []Finding
}

func (s *MutShared) analyze(prog *Program, pkg *Package) *mutResults {
	if !s.once {
		s.once = true
		s.cg = buildCallGraph(prog)
		s.swaps = transClosureBool(s.cg.callees, directSwaps(s.cg))
		s.sums = computeMutSummaries(prog, s.cg, s.swaps)
		s.results = map[*Package]*mutResults{}
	}
	if r := s.results[pkg]; r != nil {
		return r
	}
	r := &mutResults{}
	t := &mutTracker{
		prog:     prog,
		pkg:      pkg,
		sums:     s.sums,
		swaps:    s.swaps,
		frozen:   &r.frozen,
		snapshot: &r.snapshot,
		seen:     map[string]bool{},
	}
	pkg.funcDecls(func(fd *ast.FuncDecl) { t.analyzeBody(fd.Body, FlowState{}) })
	s.results[pkg] = r
	return r
}

// directSwaps finds the functions that directly call Store, Swap, or
// CompareAndSwap on an atomic.Pointer or atomic.Value — the swap
// points the snapshot pass anchors staleness to.
func directSwaps(cg *callGraph) map[*types.Func]token.Pos {
	out := map[*types.Func]token.Pos{}
	for fn, d := range cg.decls {
		pos := token.NoPos
		ast.Inspect(d.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch atomicViewMethod(calleeFunc(d.pkg.Info, call)) {
			case "Store", "Swap", "CompareAndSwap":
				if pos == token.NoPos || call.Pos() < pos {
					pos = call.Pos()
				}
			}
			return true
		})
		if pos != token.NoPos {
			out[fn] = pos
		}
	}
	return out
}

// atomicViewMethod returns the method name when fn is a method of
// sync/atomic's Pointer or Value wrappers, else "".
func atomicViewMethod(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.Underlying().(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return ""
	}
	if name := named.Obj().Name(); name != "Pointer" && name != "Value" {
		return ""
	}
	return fn.Name()
}

// computeMutSummaries runs the mutation dataflow in summary mode over
// every module function, callees-first with a bounded fixpoint inside
// recursive components — the same discipline as computeSummaries.
func computeMutSummaries(prog *Program, cg *callGraph, swaps map[*types.Func]token.Pos) map[*types.Func]*mutSummary {
	sums := map[*types.Func]*mutSummary{}
	summarize := func(fn *types.Func) bool {
		d := cg.decls[fn]
		t := &mutTracker{
			prog:        prog,
			pkg:         d.pkg,
			sums:        sums,
			swaps:       swaps,
			summaryMode: true,
			cur:         &mutSummary{},
			seen:        map[string]bool{},
		}
		init := FlowState{}
		for i, id := range paramIdents(d.fd) {
			if i >= 64 {
				break
			}
			if obj := d.pkg.Info.Defs[id]; obj != nil && hasPointers(obj.Type()) {
				init[obj] = Fact{Params: 1 << uint(i)}
			}
		}
		if d.fd.Recv != nil && len(d.fd.Recv.List) > 0 && len(d.fd.Recv.List[0].Names) > 0 {
			if obj := d.pkg.Info.Defs[d.fd.Recv.List[0].Names[0]]; obj != nil && hasPointers(obj.Type()) {
				init[obj] = Fact{Recv: true}
			}
		}
		t.analyzeBody(d.fd.Body, init)
		old := sums[fn]
		if *t.cur == (mutSummary{}) {
			return false
		}
		if old != nil && *old == *t.cur {
			return false
		}
		sums[fn] = t.cur
		return true
	}
	for _, scc := range cg.sccs {
		if len(scc) == 1 && !cg.recursive(scc[0]) {
			summarize(scc[0])
			continue
		}
		for round := 0; round < summaryDepth; round++ {
			changed := false
			for _, fn := range scc {
				if summarize(fn) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return sums
}

// mutTracker runs the mutation dataflow over one package, either
// collecting findings (reporting mode) or summary bits (summary mode).
type mutTracker struct {
	prog  *Program
	pkg   *Package
	sums  map[*types.Func]*mutSummary
	swaps map[*types.Func]token.Pos

	summaryMode bool
	cur         *mutSummary

	frozen   *[]Finding
	snapshot *[]Finding
	seen     map[string]bool

	report bool
	depth  int
}

func (t *mutTracker) info() *types.Info { return t.pkg.Info }

// analyzeBody runs the dataflow to fixpoint over body, then replays
// every block with its stable in-state to fire the checks.
func (t *mutTracker) analyzeBody(body *ast.BlockStmt, init FlowState) {
	if t.depth > 8 {
		return
	}
	t.depth++
	g := BuildCFG(body)
	saved := t.report
	t.report = false
	in := ForwardFlow(g, init, func(st FlowState, n ast.Node) { t.transfer(st, n) })
	t.report = true
	for _, blk := range g.Blocks {
		st := in[blk]
		if st == nil {
			st = FlowState{}
		} else {
			st = st.clone()
		}
		for _, n := range blk.Nodes {
			t.transfer(st, n)
		}
	}
	t.report = saved
	t.depth--
}

// transfer is the dataflow transfer function for one CFG node.
func (t *mutTracker) transfer(st FlowState, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.assign(st, n)
	case *ast.DeclStmt:
		t.declStmt(st, n)
	case *ast.RangeStmt:
		t.scan(st, n.X)
		t.rangeBind(st, n)
	case *ast.IncDecStmt:
		t.scan(st, n.X)
		t.checkStore(st, n.X)
	case *ast.SendStmt:
		t.scan(st, n.Chan)
		t.scan(st, n.Value)
	case *ast.ReturnStmt:
		for i, e := range n.Results {
			t.scan(st, e)
			t.ret(st, e, i)
		}
	case *ast.GoStmt:
		t.goStmt(st, n)
	case *ast.DeferStmt:
		t.scan(st, n.Call)
		t.callFact(st, n.Call)
	case *ast.ExprStmt:
		t.scan(st, n.X)
	case *ast.LabeledStmt:
		t.transfer(st, n.Stmt)
	default:
		if e, ok := n.(ast.Expr); ok {
			t.scan(st, e)
		}
	}
}

// scan walks an expression tree for calls, nested literal bodies, and
// uses of stale snapshot values.
func (t *mutTracker) scan(st FlowState, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if t.report {
				t.analyzeBody(x.Body, t.litSeed(st, x, nil))
			}
			return false
		case *ast.CallExpr:
			t.callFact(st, x)
		case *ast.Ident:
			if obj := t.info().Uses[x]; obj != nil {
				if f, ok := st[obj]; ok && f.Stale {
					t.emit(t.snapshot, "snapshot", x.Pos(),
						"snapshot value retained across a swap point and used afterwards; re-load it or prove it safe with //cafe:allow snapshot")
				}
			}
		}
		return true
	})
}

// assign implements = and := plus the compound forms.
func (t *mutTracker) assign(st FlowState, a *ast.AssignStmt) {
	for _, e := range a.Rhs {
		t.scan(st, e)
	}
	for _, l := range a.Lhs {
		t.checkStore(st, l)
	}
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		return
	}
	if len(a.Lhs) == len(a.Rhs) {
		facts := make([]Fact, len(a.Rhs))
		for i, e := range a.Rhs {
			facts[i] = t.rhsFact(st, e)
		}
		for i, l := range a.Lhs {
			t.bind(st, l, facts[i])
		}
		return
	}
	if len(a.Rhs) != 1 {
		return
	}
	switch r := unparen(a.Rhs[0]).(type) {
	case *ast.CallExpr:
		flow, sum := t.callFlow(st, r)
		for i, l := range a.Lhs {
			t.bind(st, l, t.resultFact(flow, sum, t.info().TypeOf(l), i))
		}
	case *ast.TypeAssertExpr:
		t.bind(st, a.Lhs[0], t.factOf(st, r.X))
		for _, l := range a.Lhs[1:] {
			t.bind(st, l, Fact{})
		}
	default:
		f := t.factOf(st, a.Rhs[0])
		t.bind(st, a.Lhs[0], f)
		for _, l := range a.Lhs[1:] {
			t.bind(st, l, Fact{})
		}
	}
}

// rhsFact evaluates one right-hand side for binding. A shallow copy
// through a pointer (out := *g) produces a fresh value: its taint is
// cleared (the copy-on-write limit documented above).
func (t *mutTracker) rhsFact(st FlowState, e ast.Expr) Fact {
	if star, ok := unparen(e).(*ast.StarExpr); ok {
		if pt, ok := t.info().TypeOf(star.X).(*types.Pointer); ok {
			if _, isStruct := pt.Elem().Underlying().(*types.Struct); isStruct {
				return Fact{}
			}
		}
	}
	return t.factOf(st, e)
}

// bind stores a fact into a plain identifier target; other targets
// were already checked by checkStore and track no state.
func (t *mutTracker) bind(st FlowState, lhs ast.Expr, f Fact) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := t.objOf(id); obj != nil {
		if v, ok := obj.(*types.Var); ok && isGlobal(v) {
			return // globals re-taint at every read; no state to keep
		}
		st.set(obj, f) // strong update
	}
}

// declStmt handles var declarations with initializers.
func (t *mutTracker) declStmt(st FlowState, d *ast.DeclStmt) {
	gd, ok := d.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			t.scan(st, v)
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			if call, ok := unparen(vs.Values[0]).(*ast.CallExpr); ok {
				flow, sum := t.callFlow(st, call)
				for i, name := range vs.Names {
					if obj := t.info().Defs[name]; obj != nil {
						st.set(obj, t.resultFact(flow, sum, obj.Type(), i))
					}
				}
			}
			continue
		}
		for i, name := range vs.Names {
			var f Fact
			if i < len(vs.Values) {
				f = t.rhsFact(st, vs.Values[i])
			}
			if obj := t.info().Defs[name]; obj != nil {
				st.set(obj, f)
			}
		}
	}
}

// rangeBind binds the key/value variables of a range statement.
func (t *mutTracker) rangeBind(st FlowState, n *ast.RangeStmt) {
	f := t.factOf(st, n.X)
	bind := func(e ast.Expr, ft Fact) {
		if e == nil {
			return
		}
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := t.objOf(id); obj != nil {
			st.set(obj, ft)
		}
	}
	bind(n.Key, Fact{})
	vf := Fact{}
	if f.some() {
		if et := elemType(t.info().TypeOf(n.X)); et != nil && hasPointers(et) {
			vf = f
			vf.Elems = false // the element is the taint itself
		}
	}
	bind(n.Value, vf)
}

// ret records summary bits for one return operand.
func (t *mutTracker) ret(st FlowState, e ast.Expr, i int) {
	if !t.report || !t.summaryMode {
		return
	}
	f := t.factOf(st, e)
	t.cur.returnsArg |= f.Params
	if f.Recv {
		t.cur.returnsRecv = true
	}
	if f.Frozen {
		t.cur.taintMask |= resultBit(i)
	}
	if f.Snap {
		t.cur.snapMask |= resultBit(i)
	}
}

// goStmt analyzes a goroutine payload with the spawning state: a
// goroutine mutating a captured snapshot or frozen value is just as
// wrong as the spawning function doing it.
func (t *mutTracker) goStmt(st FlowState, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		t.scan(st, arg)
	}
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if t.report {
			t.analyzeBody(lit.Body, t.litSeed(st, lit, g.Call.Args))
		}
	} else {
		t.scan(st, g.Call.Fun)
	}
}

// litSeed builds the initial state for a function literal body: the
// outer state plus the literal's parameters bound to the call
// arguments' facts when invoked in place.
func (t *mutTracker) litSeed(st FlowState, lit *ast.FuncLit, args []ast.Expr) FlowState {
	seed := st.clone()
	var params []*ast.Ident
	if lit.Type.Params != nil {
		for _, fld := range lit.Type.Params.List {
			params = append(params, fld.Names...)
		}
	}
	for i, id := range params {
		var f Fact
		if i < len(args) {
			f = t.factOf(st, args[i])
		}
		if obj := t.info().Defs[id]; obj != nil {
			seed.set(obj, f)
		}
	}
	return seed
}

// checkStore fires the mutation checks for one assignment target: the
// target's base chain is walked root-first, and the first tainted base
// reports (snapshot taint wins over frozen). Plain identifier targets
// are rebinds, not mutations.
func (t *mutTracker) checkStore(st FlowState, lhs ast.Expr) {
	bases := mutationBases(lhs)
	for i := len(bases) - 1; i >= 0; i-- {
		// A struct/array/basic VALUE is a local copy: a store within it
		// cannot reach shared memory. Any path to shared memory goes
		// through a pointer-, slice-, or map-typed base, which stays in
		// the chain and is checked on its own.
		if bt := t.info().TypeOf(bases[i]); bt != nil {
			switch bt.Underlying().(type) {
			case *types.Struct, *types.Array, *types.Basic:
				continue
			}
		}
		f := t.factOf(st, bases[i])
		if !f.some() {
			continue
		}
		if f.Elems {
			// Fresh spine: storing into the container is fine; element
			// mutation reports at the element's own base.
			continue
		}
		if t.summaryMode {
			if t.report {
				t.cur.mutatesArg |= f.Params
				if f.Recv {
					t.cur.mutatesRecv = true
				}
			}
			continue
		}
		if f.Snap {
			t.emit(t.snapshot, "snapshot", lhs.Pos(),
				"store through an atomic snapshot; loaded snapshots are read-only views — build a new value aside and swap it in")
			return
		}
		if f.Frozen {
			t.emit(t.frozen, "frozen", lhs.Pos(),
				"store into a //cafe:frozen value after publish; frozen values are immutable once published — build a copy instead")
			return
		}
	}
}

// mutationBases lists the base expressions a store through lhs could
// mutate: every prefix reached by stripping selectors, indexes, and
// dereferences. A bare identifier has no base — assigning to it
// rebinds the variable without touching shared memory.
func mutationBases(lhs ast.Expr) []ast.Expr {
	var out []ast.Expr
	e := unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = unparen(x.X)
		case *ast.IndexExpr:
			e = unparen(x.X)
		case *ast.StarExpr:
			e = unparen(x.X)
		default:
			return out
		}
		out = append(out, e)
	}
}

// factOf evaluates the fact of an expression under the current state.
func (t *mutTracker) factOf(st FlowState, e ast.Expr) Fact {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := t.objOf(e); obj != nil {
			if v, ok := obj.(*types.Var); ok && isGlobal(v) && t.prog.FrozenType(v.Type()) {
				return Fact{Frozen: true}
			}
			return st[obj]
		}
	case *ast.CallExpr:
		return t.callFact(st, e)
	case *ast.TypeAssertExpr:
		return t.factOf(st, e.X)
	case *ast.SelectorExpr:
		if fv := t.fieldVarOf(e); fv != nil {
			base := t.factOf(st, e.X)
			if base.some() && hasPointers(fv.Type()) {
				return base
			}
			return Fact{}
		}
		// Package-qualified global: pkg.Var of a frozen type.
		if v, ok := t.info().Uses[e.Sel].(*types.Var); ok && isGlobal(v) && t.prog.FrozenType(v.Type()) {
			return Fact{Frozen: true}
		}
	case *ast.IndexExpr:
		base := t.factOf(st, e.X)
		if base.some() {
			if lt := t.info().TypeOf(e); lt != nil && hasPointers(lt) {
				// Reading an element of a fresh-spined container yields
				// the element itself: fully tainted again.
				base.Elems = false
				return base
			}
		}
	case *ast.SliceExpr:
		return t.factOf(st, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return t.factOf(st, e.X)
		}
	case *ast.StarExpr:
		return t.factOf(st, e.X)
	case *ast.CompositeLit:
		// Slice, array, and map literals keep their elements' taint —
		// mutating an element of the aggregate mutates the source.
		// Struct literals are new values and launder it (limit).
		if lt := t.info().TypeOf(e); lt != nil {
			if _, isStruct := lt.Underlying().(*types.Struct); isStruct {
				return Fact{}
			}
		}
		var f Fact
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			f = mergeFact(f, t.factOf(st, v))
		}
		return f
	}
	return Fact{}
}

// callFact evaluates a call used as a single expression.
func (t *mutTracker) callFact(st FlowState, call *ast.CallExpr) Fact {
	flow, sum := t.callFlow(st, call)
	return t.resultFact(flow, sum, t.info().TypeOf(call), 0)
}

// resultFact adapts a call's flow fact to one result: taints
// propagated through a summary (returnsArg/returnsRecv) only survive
// into results that can hold frozen memory — a wrapper object built
// around the snapshot is a new value, not the snapshot. Direct
// sources (an atomic Load, a conversion, append) arrive with a nil
// summary and keep their taint unconditionally; then the callee's
// per-result masks add the taints it introduces on its own.
func (t *mutTracker) resultFact(flow Fact, sum *mutSummary, resType types.Type, i int) Fact {
	f := flow
	if sum != nil && (resType == nil || !t.carriesFrozen(resType)) {
		f.Frozen, f.Snap, f.Stale, f.Elems = false, false, false, false
	}
	if resType != nil && !hasPointers(resType) {
		return Fact{}
	}
	if sum != nil {
		if sum.taintMask&resultBit(i) != 0 {
			f.Frozen = true
		}
		if sum.snapMask&resultBit(i) != 0 {
			f.Snap = true
		}
	}
	return f
}

// carriesFrozen reports whether a value of type t can hold memory of a
// //cafe:frozen type: the type itself, or an element/field reachable
// without crossing a struct boundary the analysis treats as a fresh
// wrapper.
func (t *mutTracker) carriesFrozen(tt types.Type) bool {
	if t.prog.FrozenType(tt) {
		return true
	}
	switch u := tt.Underlying().(type) {
	case *types.Pointer:
		return t.carriesFrozen(u.Elem())
	case *types.Slice:
		return t.carriesFrozen(u.Elem())
	case *types.Array:
		return t.carriesFrozen(u.Elem())
	case *types.Map:
		return t.carriesFrozen(u.Elem())
	}
	return false
}

// callFlow evaluates a call: argument and receiver mutation checks,
// swap-point staleness, and the flow fact its results inherit.
func (t *mutTracker) callFlow(st FlowState, call *ast.CallExpr) (Fact, *mutSummary) {
	fun := unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := t.info().Uses[id].(*types.Builtin); ok {
			return t.builtinFlow(st, b.Name(), call), nil
		}
	}
	// Conversions keep the operand's backing.
	if tv, ok := t.info().Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return t.factOf(st, call.Args[0]), nil
	}
	callee := calleeFunc(t.info(), call)
	if callee == nil {
		return Fact{}, nil
	}
	switch atomicViewMethod(callee) {
	case "Load":
		return Fact{Snap: true}, nil
	case "Store", "CompareAndSwap":
		t.markStale(st, call)
		return Fact{}, nil
	case "Swap":
		t.markStale(st, call)
		return Fact{Snap: true}, nil
	}
	var sum *mutSummary
	if t.sums != nil {
		sum = t.sums[callee]
	}
	sig, _ := callee.Type().(*types.Signature)
	var flow Fact
	for i, arg := range call.Args {
		af := t.factOf(st, arg)
		if !af.some() {
			continue
		}
		bit := paramBit(sig, i)
		if sum != nil && sum.returnsArg&bit != 0 {
			flow = mergeFact(flow, af)
		}
		if sum != nil && sum.mutatesArg&bit != 0 {
			t.mutationSink(af, arg.Pos(), fmt.Sprintf("passed to %s, which mutates it", callee.Name()))
		}
	}
	if sig != nil && sig.Recv() != nil {
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			rf := t.factOf(st, sel.X)
			if rf.some() {
				if sum != nil && sum.returnsRecv {
					flow = mergeFact(flow, rf)
				}
				if sum != nil && sum.mutatesRecv {
					t.mutationSink(rf, call.Pos(), fmt.Sprintf("%s mutates its receiver", callee.Name()))
				}
			}
		}
	}
	if _, isSwap := t.swaps[callee]; isSwap {
		t.markStale(st, call)
	}
	return flow, sum
}

// mutationSink reports a tainted value reaching a mutating callee, or
// records the summary bits in summary mode.
func (t *mutTracker) mutationSink(f Fact, pos token.Pos, how string) {
	if !t.report {
		return
	}
	if t.summaryMode {
		t.cur.mutatesArg |= f.Params
		if f.Recv {
			t.cur.mutatesRecv = true
		}
		return
	}
	if f.Snap {
		t.emit(t.snapshot, "snapshot", pos, how+"; the value is a read-only snapshot view")
		return
	}
	if f.Frozen {
		t.emit(t.frozen, "frozen", pos, how+"; the value is a published //cafe:frozen value")
	}
}

// markStale marks every live snapshot fact stale at a swap point,
// except the values handed to the swap call itself — they are the new
// snapshot, not a stale view of the old one.
func (t *mutTracker) markStale(st FlowState, call *ast.CallExpr) {
	exempt := map[types.Object]bool{}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := t.info().Uses[id]; obj != nil {
					exempt[obj] = true
				}
			}
			return true
		})
	}
	for obj, f := range st {
		if f.Snap && !f.Stale && !exempt[obj] {
			f.Stale = true
			st[obj] = f
		}
	}
}

// builtinFlow evaluates builtin calls: append keeps the base's and the
// pointer-bearing elements' taint; everything else (copy, len, make,
// clear) yields nothing — copy is the blessed de-aliasing move.
func (t *mutTracker) builtinFlow(st FlowState, name string, call *ast.CallExpr) Fact {
	if name != "append" || len(call.Args) == 0 {
		return Fact{}
	}
	f := t.factOf(st, call.Args[0])
	for i, arg := range call.Args[1:] {
		af := t.factOf(st, arg)
		if !af.some() {
			continue
		}
		et := t.info().TypeOf(arg)
		if call.Ellipsis.IsValid() && i == len(call.Args[1:])-1 {
			et = elemType(et)
		}
		if et != nil && hasPointers(et) {
			// Appended values taint the result's ELEMENTS; the spine is
			// only shared when the base slice already was (the join in
			// mergeFact drops the weakening in that case).
			af.Elems = true
			f = mergeFact(f, af)
		}
	}
	return f
}

func (t *mutTracker) emit(dst *[]Finding, pass string, pos token.Pos, msg string) {
	if !t.report || t.summaryMode {
		return
	}
	p := t.prog.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%s:%s", p.Filename, p.Line, pass, msg)
	if t.seen[key] {
		return
	}
	t.seen[key] = true
	*dst = append(*dst, Finding{Pos: p, PassName: pass, Message: msg})
}

// objOf resolves an identifier to its object, use or definition.
func (t *mutTracker) objOf(id *ast.Ident) types.Object {
	if obj := t.info().Uses[id]; obj != nil {
		return obj
	}
	return t.info().Defs[id]
}

// fieldVarOf resolves a selector to the struct field it denotes.
func (t *mutTracker) fieldVarOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := t.info().Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}
