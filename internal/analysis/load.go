package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loading: the analyzer type-checks every package of the module itself
// (go/parser + go/types over the non-test sources), so passes see full
// type information and share object identity across packages — the
// hotpath pass needs to resolve a call in internal/postings to the
// *types.Func declared in internal/compress and ask whether that
// declaration carries the //cafe:hotpath directive. Imports outside the
// module (the standard library) are satisfied by the source importer,
// keeping the tool free of module dependencies.

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the import path ("nucleodb/internal/postings").
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info

	// waived maps filename → line → waived pass scopes ("" = every
	// pass) for //cafe:allow lines.
	waived map[string]map[int]map[string]bool
	// badDirectives are malformed cafe: directives, reported as findings.
	badDirectives []Finding
}

// LoadError records one package of the module that failed to parse or
// type-check. The rest of the module still loads and analyzes, but a
// non-empty Failed list means the analysis is incomplete and the lint
// driver must fail loudly rather than report a partial "clean".
type LoadError struct {
	// Path is the import path of the package that failed.
	Path string
	// Err is the parse or type-check failure.
	Err error
}

// Error implements error.
func (e LoadError) Error() string { return e.Err.Error() }

// Program is a fully loaded module: every package, one shared FileSet,
// and the module-wide directive facts the passes consult.
type Program struct {
	// Module is the module path from go.mod.
	Module string
	// Root is the absolute module root directory.
	Root string
	// Fset positions every file of every package (and of the
	// source-imported dependencies).
	Fset *token.FileSet
	// Packages is sorted by import path and holds only the packages
	// that type-checked; the rest are in Failed.
	Packages []*Package
	// Failed lists packages that did not load, sorted by import path.
	Failed []LoadError

	// hot records functions declared with a //cafe:hotpath directive.
	hot map[*types.Func]bool
	// pooledFns records functions declared //cafe:pooled: they hand
	// out pool-owned scratch memory.
	pooledFns map[*types.Func]bool
	// pooledFields records struct fields declared //cafe:pooled: the
	// field's value is pool-owned scratch memory.
	pooledFields map[*types.Var]bool
	// frozen records type declarations annotated //cafe:frozen: values
	// of these types are immutable once published.
	frozen map[*types.TypeName]bool
}

// Hot reports whether fn was declared with a //cafe:hotpath directive.
func (p *Program) Hot(fn *types.Func) bool { return p.hot[fn] }

// PooledFunc reports whether fn was declared //cafe:pooled.
func (p *Program) PooledFunc(fn *types.Func) bool { return p.pooledFns[fn] }

// PooledField reports whether field v was declared //cafe:pooled.
func (p *Program) PooledField(v *types.Var) bool { return p.pooledFields[v] }

// FrozenType reports whether t — after stripping pointers — is a
// named type declared //cafe:frozen.
func (p *Program) FrozenType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return p.frozen[named.Obj()]
}

// InModule reports whether path names a package inside the module.
func (p *Program) InModule(path string) bool {
	return path == p.Module || strings.HasPrefix(path, p.Module+"/")
}

// loader memoizes per-package type checking and serves as the types
// importer for intra-module imports.
type loader struct {
	fset   *token.FileSet
	module string
	root   string
	cache  map[string]*Package
	failed map[string]error
	busy   map[string]bool
	src    types.ImporterFrom
}

// LoadModule locates the enclosing go.mod starting at dir and loads
// every package of that module.
func LoadModule(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	module, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return Load(root, module)
}

// moduleName extracts the module path from a go.mod file.
func moduleName(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			name = strings.Trim(name, `"`)
			if name != "" {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", path)
}

// Load type-checks every package under root, treating root as the
// module directory for import path module. Directories named testdata,
// hidden directories, and directories without non-test Go files are
// skipped.
func Load(root, module string) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:   fset,
		module: module,
		root:   abs,
		cache:  map[string]*Package{},
		failed: map[string]error{},
		busy:   map[string]bool{},
		src:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	var paths []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(abs, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, module)
		} else {
			paths = append(paths, module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walk: %w", err)
	}
	prog := &Program{
		Module:       module,
		Root:         abs,
		Fset:         fset,
		hot:          map[*types.Func]bool{},
		pooledFns:    map[*types.Func]bool{},
		pooledFields: map[*types.Var]bool{},
		frozen:       map[*types.TypeName]bool{},
	}
	// A package that fails to load must not abort the others: every
	// failure is recorded per package so the driver can name each one,
	// and the packages that do type-check are still analyzed.
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			prog.Failed = append(prog.Failed, LoadError{Path: p, Err: err})
			continue
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	sort.Slice(prog.Failed, func(i, j int) bool { return prog.Failed[i].Path < prog.Failed[j].Path })
	for _, pkg := range prog.Packages {
		collectDirectives(prog, pkg)
	}
	return prog, nil
}

// hasGoFiles reports whether dir contains at least one non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// load parses and type-checks the package at import path, memoizing
// successes and failures alike (a broken package imported by several
// others is checked — and reported — once).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if err, ok := l.failed[path]; ok {
		return nil, err
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)
	pkg, err := l.doLoad(path)
	if err != nil {
		l.failed[path] = err
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// doLoad is load without the memoization.
func (l *loader) doLoad(path string) (*Package, error) {
	dir := l.root
	if path != l.module {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: %s: no Go source files in %s", path, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	return &Package{
		Path:   path,
		Dir:    dir,
		Files:  files,
		Pkg:    tpkg,
		Info:   info,
		waived: map[string]map[int]map[string]bool{},
	}, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal imports are
// loaded by this loader, everything else by the source importer.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.src.ImportFrom(path, dir, mode)
}
