package analysis

// Per-function summaries give the pooled-buffer passes transitive
// interprocedural flow: every function of the module is analyzed with
// its pointer-bearing parameters seeded as tracked facts, and the
// dataflow records which parameter bits reach a return (the helper
// hands its argument back), which reach a retention sink (the helper
// stores, sends, or boxes its argument somewhere that outlives the
// call), and whether the function returns pooled memory it obtained
// itself.
//
// Since PR 9 the computation runs over the module call graph
// (callgraph.go): strongly connected components are processed
// callees-first, so when a function is summarized every summary it
// consults is already final — a pooled value laundered through any
// chain of helpers stays visible. Within a recursive component the
// analysis iterates to fixpoint, bounded by summaryDepth rounds
// (facts are monotone bit sets, so the bound is a cost cap, not a
// correctness device).

import (
	"go/ast"
	"go/types"
)

// funcSummary is what the pooled-buffer analyses know about calling a
// function, without re-analyzing its body at every call site.
type funcSummary struct {
	// returnsArg has bit i set when parameter i (or memory reachable
	// from it) may flow into a result.
	returnsArg uint64
	// retainsArg has bit i set when parameter i may be retained past
	// the call: stored into a field, global, or container, sent on a
	// channel, captured by an unjoined goroutine, or passed into an
	// interface the analysis cannot see through.
	retainsArg uint64
	// returnsPooled marks a function whose results may carry pooled
	// memory the function obtained itself (Pool.Get, a //cafe:pooled
	// source) without being annotated //cafe:pooled.
	returnsPooled bool
}

// computeSummaries analyzes every function declaration of the module
// in summary mode over the call graph, and also returns the
// declaration map used to resolve named goroutine payloads. SCCs are
// processed callees-first; recursive components iterate until their
// summaries stop changing or summaryDepth rounds have run.
func computeSummaries(prog *Program) (map[*types.Func]*funcSummary, map[*types.Func]goDecl) {
	cg := buildCallGraph(prog)
	sums := map[*types.Func]*funcSummary{}
	summarize := func(fn *types.Func) bool {
		if prog.PooledFunc(fn) {
			// Annotated sources need no summary: call sites read the
			// directive itself.
			return false
		}
		d := cg.decls[fn]
		t := &poolTracker{
			prog:        prog,
			pkg:         d.pkg,
			decls:       cg.decls,
			sums:        sums,
			summaryMode: true,
			cur:         &funcSummary{},
			seen:        map[string]bool{},
		}
		init := FlowState{}
		for i, id := range paramIdents(d.fd) {
			if i >= 64 {
				break
			}
			if obj := d.pkg.Info.Defs[id]; obj != nil && hasPointers(obj.Type()) {
				init[obj] = Fact{Params: 1 << uint(i)}
			}
		}
		t.enclBody = d.fd.Body
		t.analyzeBody(d.fd.Body, init)
		old := sums[fn]
		if t.cur.returnsArg == 0 && t.cur.retainsArg == 0 && !t.cur.returnsPooled {
			return false // zero summary: stays absent, absent stays absent
		}
		if old != nil && *old == *t.cur {
			return false
		}
		sums[fn] = t.cur
		return true
	}
	for _, scc := range cg.sccs {
		if len(scc) == 1 && !cg.recursive(scc[0]) {
			summarize(scc[0])
			continue
		}
		for round := 0; round < summaryDepth; round++ {
			changed := false
			for _, fn := range scc {
				if summarize(fn) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return sums, cg.decls
}

// paramIdents lists the declared parameter names of fd in signature
// order (the receiver is not a parameter: summary bits line up with
// call-site argument positions).
func paramIdents(fd *ast.FuncDecl) []*ast.Ident {
	var out []*ast.Ident
	if fd.Type.Params == nil {
		return nil
	}
	for _, fld := range fd.Type.Params.List {
		out = append(out, fld.Names...)
	}
	return out
}

// paramBit maps call-site argument index i to the summary bit of the
// parameter it binds — variadic tails all share the last parameter's
// bit.
func paramBit(sig *types.Signature, i int) uint64 {
	if sig != nil {
		if n := sig.Params().Len(); n > 0 && i >= n {
			i = n - 1
		}
	}
	if i >= 64 {
		return 0
	}
	return 1 << uint(i)
}

// hasPointers reports whether values of type t can carry references
// to shared memory — only those can alias pooled backing. Recursion
// through structs terminates because cycles in Go types necessarily
// pass through a pointer, slice, map, or channel, all of which return
// without recursing.
func hasPointers(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasPointers(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return hasPointers(u.Elem())
	}
	// Basics (strings included — immutable, so an alias cannot be
	// scribbled on) and everything else carry no mutable references.
	return false
}
