package analysis

// Per-function summaries give the pooled-buffer passes one level of
// interprocedural flow: every function of the module is analyzed once
// with its pointer-bearing parameters seeded as tracked facts, and
// the dataflow records which parameter bits reach a return (the
// helper hands its argument back), which reach a retention sink (the
// helper stores, sends, or boxes its argument somewhere that outlives
// the call), and whether the function returns pooled memory it
// obtained itself. Summaries are computed from direct sources only —
// a summary never consults another summary — so the depth is exactly
// one helper level, which is what the small wrappers in this module
// need (identity-shaped helpers, cache.put, putSearcher).

import (
	"go/ast"
	"go/types"
)

// funcSummary is what the pooled-buffer analyses know about calling a
// function, without re-analyzing its body at every call site.
type funcSummary struct {
	// returnsArg has bit i set when parameter i (or memory reachable
	// from it) may flow into a result.
	returnsArg uint64
	// retainsArg has bit i set when parameter i may be retained past
	// the call: stored into a field, global, or container, sent on a
	// channel, captured by an unjoined goroutine, or passed into an
	// interface the analysis cannot see through.
	retainsArg uint64
	// returnsPooled marks a function whose results may carry pooled
	// memory the function obtained itself (Pool.Get, a //cafe:pooled
	// source) without being annotated //cafe:pooled.
	returnsPooled bool
}

// computeSummaries analyzes every function declaration of the module
// once in summary mode, and also returns the declaration map used to
// resolve named goroutine payloads.
func computeSummaries(prog *Program) (map[*types.Func]*funcSummary, map[*types.Func]goDecl) {
	decls := map[*types.Func]goDecl{}
	for _, pkg := range prog.Packages {
		pkg.funcDecls(func(fd *ast.FuncDecl) {
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = goDecl{fd: fd, pkg: pkg}
			}
		})
	}
	sums := map[*types.Func]*funcSummary{}
	for _, pkg := range prog.Packages {
		pkg.funcDecls(func(fd *ast.FuncDecl) {
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || prog.PooledFunc(fn) {
				// Annotated sources need no summary: call sites read
				// the directive itself.
				return
			}
			t := &poolTracker{
				prog:        prog,
				pkg:         pkg,
				decls:       decls,
				summaryMode: true,
				cur:         &funcSummary{},
				seen:        map[string]bool{},
			}
			init := FlowState{}
			for i, id := range paramIdents(fd) {
				if i >= 64 {
					break
				}
				if obj := pkg.Info.Defs[id]; obj != nil && hasPointers(obj.Type()) {
					init[obj] = Fact{Params: 1 << uint(i)}
				}
			}
			t.enclBody = fd.Body
			t.analyzeBody(fd.Body, init)
			if t.cur.returnsArg != 0 || t.cur.retainsArg != 0 || t.cur.returnsPooled {
				sums[fn] = t.cur
			}
		})
	}
	return sums, decls
}

// paramIdents lists the declared parameter names of fd in signature
// order (the receiver is not a parameter: summary bits line up with
// call-site argument positions).
func paramIdents(fd *ast.FuncDecl) []*ast.Ident {
	var out []*ast.Ident
	if fd.Type.Params == nil {
		return nil
	}
	for _, fld := range fd.Type.Params.List {
		out = append(out, fld.Names...)
	}
	return out
}

// paramBit maps call-site argument index i to the summary bit of the
// parameter it binds — variadic tails all share the last parameter's
// bit.
func paramBit(sig *types.Signature, i int) uint64 {
	if sig != nil {
		if n := sig.Params().Len(); n > 0 && i >= n {
			i = n - 1
		}
	}
	if i >= 64 {
		return 0
	}
	return 1 << uint(i)
}

// hasPointers reports whether values of type t can carry references
// to shared memory — only those can alias pooled backing. Recursion
// through structs terminates because cycles in Go types necessarily
// pass through a pointer, slice, map, or channel, all of which return
// without recursing.
func hasPointers(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasPointers(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return hasPointers(u.Elem())
	}
	// Basics (strings included — immutable, so an alias cannot be
	// scribbled on) and everything else carry no mutable references.
	return false
}
