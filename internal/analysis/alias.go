package analysis

// AliasPass reports append/slice expressions whose base is pooled and
// whose result escapes — the derived view shares the pool's backing
// array without being the pooled object, so the next pool user
// scribbles over memory a caller still holds. This is exactly the
// PR-5 both-strands merge bug (append(forward, reverse...) handed the
// merged results out on pooled backing), reproduced as a seeded
// fixture in testdata/src/fixture/aliaspkg.
//
// Findings anchor at the append/slice site that created the view, not
// at the sink: that is the line where the copy belongs. The pass runs
// on the same dataflow as poolescape (see poolescape.go for sources,
// sinks, and limits); the two report disjoint fact components.
type AliasPass struct {
	Shared *PoolShared
}

// Name implements Pass.
func (p *AliasPass) Name() string { return "alias" }

// Run implements Pass.
func (p *AliasPass) Run(prog *Program, pkg *Package) []Finding {
	if p.Shared == nil {
		p.Shared = &PoolShared{}
	}
	return p.Shared.analyze(prog, pkg).alias
}
