package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoPass enforces goroutine-leak discipline on the serving stack: a go
// statement in non-test code must be tied to a completion mechanism
// the spawning function (or its caller) can observe, or the server's
// drain path has no way to know the goroutine is gone. A goroutine is
// considered tracked when any of these hold:
//
//   - it counts down a sync.WaitGroup (wg.Done() anywhere in its body,
//     typically deferred) — the batch workers and the parallel fine
//     phase;
//   - it receives from a Done() channel (<-ctx.Done(), directly or in
//     a select), so cancellation reaches it — watchdog shapes;
//   - it signals a channel the spawning function drains: the goroutine
//     sends on or closes a locally declared channel, and the spawning
//     function receives from or ranges over that same channel outside
//     the go statement — the feeder/collector join in SearchBatch and
//     the Serve error channel in cafe-serve.
//
// A go statement whose payload is a named function is resolved to that
// function's declaration when it lives in this module, and the body is
// checked the same way. Unresolvable payloads (function values,
// out-of-module calls) are flagged: if the discipline is real it must
// be visible, and a deliberate fire-and-forget takes a
// //cafe:allow goroutine waiver stating who owns the lifetime.
type GoPass struct {
	declsOnce bool
	decls     map[*types.Func]goDecl
}

// goDecl pairs a function declaration with the package whose type info
// describes it.
type goDecl struct {
	fd  *ast.FuncDecl
	pkg *Package
}

// Name implements Pass.
func (p *GoPass) Name() string { return "goroutine" }

// Run implements Pass.
func (p *GoPass) Run(prog *Program, pkg *Package) []Finding {
	if !p.declsOnce {
		p.declsOnce = true
		p.decls = map[*types.Func]goDecl{}
		for _, other := range prog.Packages {
			other.funcDecls(func(fd *ast.FuncDecl) {
				if fn, ok := other.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = goDecl{fd: fd, pkg: other}
				}
			})
		}
	}
	var out []Finding
	pkg.funcDecls(func(fd *ast.FuncDecl) {
		p.checkBody(prog, pkg, fd.Body, &out)
	})
	return out
}

// checkBody scans one function body for go statements, treating body
// as the spawning scope; nested function literals recurse with their
// own scope.
func (p *GoPass) checkBody(prog *Program, pkg *Package, body *ast.BlockStmt, out *[]Finding) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.checkBody(prog, pkg, n.Body, out)
			return false
		case *ast.GoStmt:
			if !p.tracked(pkg, body, n) {
				*out = append(*out, Finding{
					Pos:      prog.Fset.Position(n.Pos()),
					PassName: p.Name(),
					Message:  "untracked goroutine: count it on a sync.WaitGroup, select on a Done() channel, or signal a channel this function drains",
				})
			}
			// The payload and its arguments may spawn goroutines of
			// their own; those are scoped to the payload.
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				p.checkBody(prog, pkg, fl.Body, out)
			}
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
}

// tracked reports whether the goroutine spawned by g satisfies one of
// the pass's completion mechanisms within the spawning body enclosing.
func (p *GoPass) tracked(pkg *Package, enclosing *ast.BlockStmt, g *ast.GoStmt) bool {
	payload, payloadInfo := p.payloadBody(pkg, g.Call)
	if payload == nil {
		return false
	}
	if waitGroupCountdown(payloadInfo, payload) || receivesDone(payloadInfo, payload) {
		return true
	}
	// Channel join only applies to literals: a named payload cannot
	// close over the spawner's locals.
	if _, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
		if signaled := signaledChannels(pkg.Info, payload); len(signaled) > 0 {
			return drainsAny(pkg.Info, enclosing, g, signaled)
		}
	}
	return false
}

// payloadBody resolves the code the goroutine will run: a function
// literal's body, or the declaration of a named module function.
func (p *GoPass) payloadBody(pkg *Package, call *ast.CallExpr) (*ast.BlockStmt, *types.Info) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		return fl.Body, pkg.Info
	}
	if fn := calleeFunc(pkg.Info, call); fn != nil {
		if d, ok := p.decls[fn]; ok {
			return d.fd.Body, d.pkg.Info
		}
	}
	return nil, nil
}

// waitGroupCountdown reports whether body calls Done() (or Add with
// any argument — Add(-1) is a countdown too) on a sync.WaitGroup.
func waitGroupCountdown(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Add") {
			return true
		}
		if isWaitGroup(info.TypeOf(sel.X)) {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroup reports whether t (possibly a pointer) is
// sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// receivesDone reports whether body receives from some X.Done()
// channel — the <-ctx.Done() shape, bare or as a select case.
func receivesDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		un, ok := n.(*ast.UnaryExpr)
		if !ok || un.Op != token.ARROW {
			return true
		}
		call, ok := unparen(un.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if _, isChan := info.TypeOf(call).Underlying().(*types.Chan); isChan {
			found = true
		}
		return !found
	})
	return found
}

// signaledChannels collects the channel variables body sends on or
// closes.
func signaledChannels(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	signaled := map[types.Object]bool{}
	record := func(e ast.Expr) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
			signaled[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			record(n.Chan)
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
					record(n.Args[0])
				}
			}
		}
		return true
	})
	return signaled
}

// drainsAny reports whether enclosing — outside the go statement g —
// receives from or ranges over any of the signaled channels.
func drainsAny(info *types.Info, enclosing *ast.BlockStmt, g *ast.GoStmt, signaled map[types.Object]bool) bool {
	matches := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.ObjectOf(id)
		return obj != nil && signaled[obj]
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if n == g {
			return false // the goroutine draining itself proves nothing
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && matches(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if matches(n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}
