// Package lockpkg seeds the lockorder-pass fixtures: pairing bugs
// (double lock, read/write upgrade, unlock of unheld, wrong-mode
// unlock), leak shapes (held at exit, panic while held), synchronous
// self-deadlocks through the call graph, and a module-wide
// acquisition-order cycle. The deferred and manually paired clean
// shapes around them must stay silent.
package lockpkg

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	// a/b are always taken in one order (clean); c/d are taken in both
	// orders (the cycle).
	a, b sync.Mutex
	c, d sync.Mutex
	n    int
}

// deferred is the sanctioned shape.
func (s *store) deferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// manual pairs the lock by hand on every path (the result-cache
// shape): clean under may-held analysis.
func (s *store) manual() int {
	s.mu.Lock()
	if s.n > 0 {
		v := s.n
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

func (s *store) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() //violation:lockorder
	s.mu.Unlock()
}

func (s *store) upgrade() {
	s.rw.RLock()
	s.rw.Lock() //violation:lockorder
	s.rw.Unlock()
}

func (s *store) recursiveRLock() {
	s.rw.RLock()
	s.rw.RLock() //violation:lockorder
	s.rw.RUnlock()
}

func (s *store) unlockCold() {
	s.mu.Unlock() //violation:lockorder
}

func (s *store) wrongMode() {
	s.rw.RLock()
	s.rw.Unlock() //violation:lockorder
}

func (s *store) leakyReturn(cond bool) {
	s.mu.Lock() //violation:lockorder
	if cond {
		return
	}
	s.mu.Unlock()
}

func (s *store) panicWhileHeld() {
	s.mu.Lock()
	if s.n < 0 {
		panic("bad") //violation:lockorder
	}
	s.mu.Unlock()
}

// panicSafe panics under a deferred unlock: the lock cannot leak.
func (s *store) panicSafe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < 0 {
		panic("bad")
	}
}

// lockedHelper acquires s.mu itself; calling it with s.mu held is a
// self-deadlock at the call site.
func (s *store) lockedHelper() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// viaWrapper launders the acquisition through one more hop for the
// transitive-summary case.
func (s *store) viaWrapper() {
	s.lockedHelper()
}

func (s *store) selfDeadlock() {
	s.mu.Lock()
	s.lockedHelper() //violation:lockorder
	s.mu.Unlock()
}

func (s *store) selfDeadlockDeep() {
	s.mu.Lock()
	s.viaWrapper() //violation:lockorder
	s.mu.Unlock()
}

// spawned payloads run outside the spawner's lock context: calling
// the locked helper from the goroutine is clean.
func (s *store) spawns() {
	s.mu.Lock()
	go func() {
		s.lockedHelper()
	}()
	s.mu.Unlock()
}

// lockAB1/lockAB2 take a before b consistently: one acquisition-order
// edge, no cycle, clean.
func (s *store) lockAB1() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *store) lockAB2() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
	s.n++
}

// lockCD and lockDC take c/d in opposite orders: both witness sites
// of the cycle are violations.
func (s *store) lockCD() {
	s.c.Lock()
	s.d.Lock() //violation:lockorder
	s.d.Unlock()
	s.c.Unlock()
}

func (s *store) lockDC() {
	s.d.Lock()
	s.c.Lock() //violation:lockorder
	s.c.Unlock()
	s.d.Unlock()
}

func (s *store) waived() {
	s.mu.Unlock() //cafe:allow lockorder fixture: proves the waiver suppresses exactly this line
}

// use keeps the fixture shapes alive for the type checker.
var use = []func(*store){
	(*store).deferred, (*store).doubleLock, (*store).upgrade,
	(*store).recursiveRLock, (*store).unlockCold, (*store).wrongMode,
	(*store).panicWhileHeld, (*store).panicSafe, (*store).selfDeadlock,
	(*store).selfDeadlockDeep, (*store).spawns, (*store).lockAB1,
	(*store).lockAB2, (*store).lockCD, (*store).lockDC, (*store).waived,
	func(s *store) { _ = s.manual() },
	func(s *store) { s.leakyReturn(true) },
}
