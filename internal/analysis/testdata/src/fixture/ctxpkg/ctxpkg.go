// Package ctxpkg seeds context-propagation violations for the ctx
// pass: a context-aware function calling a context-free sibling, and
// fresh context.Background()/TODO() roots inside a package configured
// as forbidden, while the propagating shapes pass clean.
package ctxpkg

import "context"

// DB pairs a context-free method with its context-aware sibling.
type DB struct{}

func (d *DB) Search(q string) int { return len(q) }

func (d *DB) SearchContext(ctx context.Context, q string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(q)
}

func Run(q string) int { return len(q) }

func RunContext(ctx context.Context, q string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(q)
}

// BadMethod receives a context but calls the context-free sibling,
// severing the cancellation chain.
func BadMethod(ctx context.Context, d *DB) int {
	return d.Search("acgt") //violation:ctx
}

// BadFunc does the same through a package-level pair.
func BadFunc(ctx context.Context) int {
	return Run("acgt") //violation:ctx
}

// BadBackground manufactures a root context in a forbidden package.
func BadBackground(d *DB) int {
	return d.SearchContext(context.Background(), "acgt") //violation:ctx
}

// BadTODO is the same violation in TODO clothing.
func BadTODO(d *DB) int {
	return d.SearchContext(context.TODO(), "acgt") //violation:ctx
}

// GoodPropagates threads its context through: clean.
func GoodPropagates(ctx context.Context, d *DB) int {
	return d.SearchContext(ctx, "acgt")
}

// GoodNoCtx has no context to propagate, so the sibling rule does not
// apply to it.
func GoodNoCtx(d *DB) int {
	return d.Search("acgt")
}

// GoodWaived documents why a fresh root is acceptable here.
func GoodWaived(d *DB) int {
	return d.SearchContext(context.Background(), "acgt") //cafe:allow ctx context-free wrapper; no deadline is the documented behaviour
}

// GoodNoSibling calls a function with no Context counterpart: clean.
func GoodNoSibling(ctx context.Context) int {
	return helper("acgt")
}

func helper(q string) int { return len(q) }
