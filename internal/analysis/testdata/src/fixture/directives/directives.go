// Package directives exercises the waiver syntax: a //cafe:allow with a
// reason suppresses the finding on its line, one without a reason is
// itself a finding, and un-waived violations still surface.
package directives

//cafe:hotpath
func Waived(xs []int) []int {
	xs = append(xs, 1) //cafe:allow amortised scratch, reset by the caller
	xs = append(xs, 2)
	return xs
}

func reasonless() {
	//cafe:allow
	_ = 0
}

// WaivedScoped names the pass it waives; other passes still see the
// line.
//
//cafe:hotpath
func WaivedScoped(xs []int) []int {
	xs = append(xs, 3) //cafe:allow hotpath amortised scratch, reset by the caller
	return xs
}

// WrongScope waives a different pass, so hotpath still fires.
//
//cafe:hotpath
func WrongScope(xs []int) []int {
	xs = append(xs, 4) //cafe:allow ctx scope names another pass, so hotpath still fires
	return xs
}

func scopedReasonless() {
	//cafe:allow goroutine
	_ = 0
}
