// Package directives exercises the waiver syntax: a //cafe:allow with a
// reason suppresses the finding on its line, one without a reason is
// itself a finding, and un-waived violations still surface.
package directives

//cafe:hotpath
func Waived(xs []int) []int {
	xs = append(xs, 1) //cafe:allow amortised scratch, reset by the caller
	xs = append(xs, 2)
	return xs
}

func reasonless() {
	//cafe:allow
	_ = 0
}
