package frozenpkg

// SigIndex mirrors the bit-sliced signature index: immutable once
// published, its rows shared by every concurrent reader — exactly the
// shape the frozen pass must police.
//
//cafe:frozen
type SigIndex struct {
	K       int
	NumSeqs int
	Rows    []uint64
}

// liveSig is the published signature index: reading it taints.
var liveSig = &SigIndex{K: 9, NumSeqs: 64, Rows: make([]uint64, 8)}

// currentSig hands the published index out through a helper.
func currentSig() *SigIndex { return liveSig }

// setBit mutates its argument; call sites passing a published index are
// the violations, build-time values stay silent.
func setBit(s *SigIndex, row, id int) {
	s.Rows[row] |= 1 << uint(id%64)
}

// regeometry mutates its receiver.
func (s *SigIndex) regeometry(k int) {
	s.K = k
}

// buildSig constructs and fills a fresh index: every mutation here is
// pre-publish and must stay silent, helpers included.
func buildSig() *SigIndex {
	s := &SigIndex{K: 9, Rows: make([]uint64, 4)}
	s.NumSeqs = 32
	setBit(s, 0, 7)
	s.regeometry(11)
	return s
}

func sigStoreThroughGlobal() {
	liveSig.NumSeqs = 128 //violation:frozen
}

func sigRowStore() {
	s := currentSig()
	s.Rows[0] = ^uint64(0) //violation:frozen
}

func sigPassToMutator() {
	setBit(liveSig, 1, 3) //violation:frozen
}

func sigMutateReceiver() {
	currentSig().regeometry(7) //violation:frozen
}

// useSig keeps the fixture shapes alive for the type checker.
var useSig = []func(){
	sigStoreThroughGlobal, sigRowStore, sigPassToMutator, sigMutateReceiver,
	func() { _ = buildSig() },
}
