// Package frozenpkg seeds the frozen-pass fixtures: every mutation of
// a published //cafe:frozen value carries a trailing marker comment,
// and the constructor-style shapes around them must stay silent.
package frozenpkg

// Config is the frozen type under test.
//
//cafe:frozen
type Config struct {
	Name  string
	Peers []string
	Limit int
}

// current is the published value: reading it taints.
var current = &Config{Name: "seed", Peers: []string{"p"}}

// published hands the published value out through a helper, so call
// sites get the taint from the function's summary, not the global.
func published() *Config { return current }

// initPeers mutates its argument; call sites passing a published
// value are the violations, fresh values stay silent.
func initPeers(c *Config) {
	c.Peers = append(c.Peers, "x")
}

// touch launders the mutation through one more hop: the transitive
// summary must still carry initPeers's mutation bit.
func touch(c *Config) {
	initPeers(c)
}

// rename mutates its receiver.
func (c *Config) rename(n string) {
	c.Name = n
}

// fresh builds and initializes a new Config: every mutation here is
// pre-publish and must stay silent, helpers included.
func fresh() *Config {
	c := &Config{Name: "a"}
	c.Limit = 10
	initPeers(c)
	touch(c)
	c.rename("b")
	return c
}

func storeThroughGlobal() {
	current.Limit = 5 //violation:frozen
}

func storeThroughHelper() {
	c := published()
	c.Name = "z" //violation:frozen
}

func passGlobalToMutator() {
	initPeers(current) //violation:frozen
}

func passToTransitiveMutator() {
	c := published()
	touch(c) //violation:frozen
}

func elementStore() {
	c := current
	c.Peers[0] = "y" //violation:frozen
}

func mutateReceiver() {
	published().rename("q") //violation:frozen
}

func waived() {
	current.Limit = 1 //cafe:allow frozen fixture: proves the waiver suppresses exactly this line
}

// use keeps the fixture shapes alive for the type checker.
var use = []func(){
	storeThroughGlobal, storeThroughHelper, passGlobalToMutator,
	passToTransitiveMutator, elementStore, mutateReceiver, waived,
	func() { _ = fresh() },
}
