// Package stats seeds unguarded instrumentation writes for the stats
// pass. Stats stands in for core.SearchStats: collected through a
// possibly-nil pointer, so every access outside a nil guard is flagged,
// while the guard shapes the real codebase uses must pass clean.
package stats

import "sync/atomic"

// Stats mirrors core.SearchStats.
type Stats struct {
	Hits  int
	Total int64
}

func (st *Stats) bump() { st.Hits++ }

// Counter holds an atomic field that must only move through methods.
type Counter struct {
	n atomic.Int64
}

func Bad(st *Stats) {
	st.Hits++     //violation:stats
	st.Total += 2 //violation:stats
	st.bump()     //violation:stats
}

func BadReset(st *Stats) {
	*st = Stats{} //violation:stats
}

func BadClosure(st *Stats) func() {
	if st != nil {
		// The closure may run long after this guard: flagged.
		return func() { st.Hits++ } //violation:stats
	}
	return nil
}

func BadAtomic(c *Counter) {
	c.n = atomic.Int64{} //violation:stats
}

func GoodDirect(st *Stats) {
	if st != nil {
		st.Hits++
		st.bump()
	}
}

func GoodDerived(st *Stats) {
	collect := st != nil
	for i := 0; i < 3; i++ {
		if collect {
			st.Total++
		}
	}
}

func GoodEarly(st *Stats) {
	if st == nil {
		return
	}
	st.Hits++
}

func GoodCompound(st *Stats, deep bool) {
	if st != nil && deep {
		st.Total++
	}
	if st == nil || !deep {
		return
	}
	st.Hits++
}

func GoodClosureGuard(st *Stats) func() {
	collect := st != nil
	return func() {
		if collect {
			st.Hits++
		}
	}
}

func GoodAtomic(c *Counter) int64 {
	c.n.Add(1)
	return c.n.Load()
}
