// Package clean passes every pass in the default suite: consistent
// atomics, propagated contexts, tracked goroutines, and no hotpath
// annotations. The driver test selects it to prove a clean package
// exits 0 even inside a module full of seeded violations.
package clean

import (
	"context"
	"sync"
	"sync/atomic"
)

// Gauge moves only through sync/atomic.
type Gauge struct {
	n atomic.Int64
}

// Bump is the only writer.
func (g *Gauge) Bump() { g.n.Add(1) }

// Read is the only reader.
func (g *Gauge) Read() int64 { return g.n.Load() }

// Scan fans work out on a WaitGroup and propagates its context.
func Scan(ctx context.Context, xs []int) int {
	var wg sync.WaitGroup
	var total atomic.Int64
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-ctx.Done():
			default:
				total.Add(int64(x))
			}
		}()
	}
	wg.Wait()
	return int(total.Load())
}
