// Package aliaspkg seeds the pooled-backing aliasing shapes the alias
// pass exists for — first among them the PR-5 both-strands merge bug,
// where append(forward, reverse...) handed callers a result slice
// built on pooled backing the next query would scribble over.
// Findings anchor at the append/slice expression, where the copy
// belongs.
package aliaspkg

// searcher mirrors internal/core.Searcher: query-lifetime result
// backing behind an annotated field and getter.
type searcher struct {
	resBuf []int //cafe:pooled query-lifetime result backing, reused by the next query
}

// results hands out the searcher's pooled result buffer, emptied.
//
//cafe:pooled the backing is reused by the next query on this searcher
func (s *searcher) results() []int {
	return s.resBuf[:0]
}

// mergeStrands is the PR-5 bug: the merged result is an append view
// over pooled backing.
func (s *searcher) mergeStrands(reverse []int) []int {
	forward := s.results()
	merged := append(forward, reverse...) //violation:alias
	return merged
}

// okMergeCopied is the PR-5 fix: merge into a fresh slice.
func (s *searcher) okMergeCopied(reverse []int) []int {
	forward := s.results()
	merged := make([]int, 0, len(forward)+len(reverse))
	merged = append(merged, forward...)
	merged = append(merged, reverse...)
	return merged
}

// headView escapes a re-slice of pooled backing.
func (s *searcher) headView(n int) []int {
	buf := s.results()
	head := buf[:n] //violation:alias
	return head
}

// resultSet is a retained output structure.
type resultSet struct {
	hits []int
}

// retainView parks a pooled view in a structure that outlives the
// call — the two-step flow: slice first, store later.
func (s *searcher) retainView(rs *resultSet, n int) {
	buf := s.results()
	view := buf[n:] //violation:alias
	rs.hits = view
}

// tail returns its argument; the summary carries the alias one helper
// deep.
func tail(xs []int) []int { return xs }

// leakThroughHelper escapes a pooled view via tail's returns-arg
// summary; the finding still anchors at the slice site.
func (s *searcher) leakThroughHelper() []int {
	view := s.results()[1:] //violation:alias
	return tail(view)
}

// okWaived hands out an empty view on purpose, with the owner
// documented.
func (s *searcher) okWaived() []int {
	return s.results()[:0] //cafe:allow alias empty view the caller fills and hands back before the next query
}

// okRefill stores a view back into the pooled field — the pool
// refilling itself.
func (s *searcher) okRefill(out []int) {
	s.resBuf = out[:0]
}

// okCounted derives a view but never lets it escape.
func (s *searcher) okCounted() int {
	buf := s.results()
	view := buf[:cap(buf)]
	n := 0
	for _, v := range view {
		n += v
	}
	return n
}
