// Package poolesc seeds one violation per construct the poolescape
// pass knows about: pooled scratch returned, stored into fields,
// globals, channels, captured by unjoined goroutines, and laundered
// through one-level helpers — next to the copied, joined, refilled,
// and waived shapes that must stay clean.
package poolesc

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 256) }}

// scratch hands out the package pool's buffer; the directive makes it
// a pooled source and exempts its own body.
//
//cafe:pooled callers must Put the buffer back when done
func scratch() []byte {
	return bufPool.Get().([]byte)
}

// leakReturn hands the pool's memory to the caller.
func leakReturn() []byte {
	buf := bufPool.Get().([]byte)
	return buf //violation:poolescape
}

// leakFromGetter escapes through the annotated source.
func leakFromGetter() []byte {
	return scratch() //violation:poolescape
}

// okCopied is the blessed shape: copy, Put, return the copy.
func okCopied() []byte {
	buf := bufPool.Get().([]byte)
	out := make([]byte, len(buf))
	copy(out, buf)
	bufPool.Put(buf)
	return out
}

// sinkVar exists to receive an escaping store.
var sinkVar []byte

// leakGlobal parks pooled memory in a package-level variable.
func leakGlobal() {
	buf := bufPool.Get().([]byte)
	sinkVar = buf //violation:poolescape
}

// holder carries scratch between helper calls of one operation. data
// is plain; scratch is declared pool-owned.
type holder struct {
	data    []byte
	scratch []byte //cafe:pooled refilled from bufPool at the start of each call
}

// leakStore retains pooled memory in an unannotated field.
func (h *holder) leakStore() {
	buf := bufPool.Get().([]byte)
	h.data = buf //violation:poolescape
}

// okRefill stores into the annotated field: the pool's own business.
func (h *holder) okRefill() {
	h.scratch = bufPool.Get().([]byte)
}

// leakField reads the annotated field and hands it out.
func (h *holder) leakField() []byte {
	return h.scratch //violation:poolescape
}

// leakSend pushes pooled memory through a channel.
func leakSend(ch chan []byte) {
	buf := bufPool.Get().([]byte)
	ch <- buf //violation:poolescape
}

// okWaived is the same shape with a documented owner.
func okWaived(ch chan []byte) {
	buf := bufPool.Get().([]byte)
	ch <- buf //cafe:allow poolescape the consumer returns the buffer to bufPool when done
}

func process(xs []byte) { _ = len(xs) }

// leakGoroutine hands pooled memory to a goroutine nobody joins.
func leakGoroutine() {
	buf := bufPool.Get().([]byte)
	go process(buf) //violation:poolescape
}

// leakCapture is the closure-capture variant.
func leakCapture(ch chan int) {
	buf := bufPool.Get().([]byte)
	go func() { //violation:poolescape
		ch <- len(buf)
	}()
}

// okJoinedGoroutine bounds the goroutine's lifetime with a WaitGroup,
// so the scratch never outlives the call.
func okJoinedGoroutine() {
	buf := bufPool.Get().([]byte)
	var wg sync.WaitGroup
	wg.Add(1)
	go func(b []byte) {
		defer wg.Done()
		process(b)
	}(buf)
	wg.Wait()
	bufPool.Put(buf)
}

// identity returns its argument; the function summary carries the
// flow one helper deep.
func identity(xs []byte) []byte { return xs }

// leakViaHelper escapes through identity's returns-arg summary.
func leakViaHelper() []byte {
	buf := bufPool.Get().([]byte)
	return identity(buf) //violation:poolescape
}

// retained receives what retain parks.
var retained [][]byte

// retain stores its argument in a global; the summary records
// retains-arg.
func retain(xs []byte) {
	retained = append(retained, xs)
}

// leakViaRetainer escapes through retain's retains-arg summary.
func leakViaRetainer() {
	buf := bufPool.Get().([]byte)
	retain(buf) //violation:poolescape
	bufPool.Put(buf)
}

// leakConditional is only pooled on one path; the join keeps the
// may-fact alive.
func leakConditional(fresh bool) []byte {
	buf := make([]byte, 64)
	if !fresh {
		buf = bufPool.Get().([]byte)
	}
	return buf //violation:poolescape
}

// okOverwritten kills the fact with a strong update before returning.
func okOverwritten() []byte {
	buf := bufPool.Get().([]byte)
	bufPool.Put(buf)
	buf = make([]byte, 64)
	return buf
}

// okContained keeps pooled memory inside a local container for the
// duration of the call.
func okContained() int {
	buf := bufPool.Get().([]byte)
	batch := make([][]byte, 0, 1)
	batch = append(batch, buf)
	n := 0
	for _, b := range batch {
		n += len(b)
	}
	bufPool.Put(buf)
	return n
}
