// Package gor seeds goroutine-leak violations for the goroutine pass:
// fire-and-forget go statements are flagged, while WaitGroup-counted,
// Done()-cancellable, and channel-joined goroutines pass clean.
package gor

import (
	"context"
	"sync"
)

// BadFire launches a goroutine nothing can observe.
func BadFire() {
	go func() { //violation:goroutine
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

func work() {}

// BadNamed launches a named function with no tracking in its body.
func BadNamed() {
	go work() //violation:goroutine
}

// BadSendNobodyDrains signals a channel the spawner never reads.
func BadSendNobodyDrains() chan int {
	out := make(chan int, 1)
	go func() { out <- 1 }() //violation:goroutine
	return out
}

// GoodWaitGroup counts the goroutine on a WaitGroup.
func GoodWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// GoodDone selects on the context's Done channel, so cancellation
// reaches the goroutine.
func GoodDone(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case tick <- 1:
			}
		}
	}()
}

// GoodJoin sends on a channel the spawner receives from.
func GoodJoin() int {
	out := make(chan int)
	go func() { out <- 1 }()
	return <-out
}

// GoodClose closes a channel the spawner ranges over — the
// feeder/collector join shape.
func GoodClose() int {
	out := make(chan int, 4)
	go func() {
		out <- 1
		out <- 2
		close(out)
	}()
	sum := 0
	for v := range out {
		sum += v
	}
	return sum
}

// tracked is a named payload that counts down a WaitGroup.
func tracked(wg *sync.WaitGroup) { wg.Done() }

// GoodNamedTracked resolves the named payload's declaration.
func GoodNamedTracked() {
	var wg sync.WaitGroup
	wg.Add(1)
	go tracked(&wg)
	wg.Wait()
}

// GoodNested spawns from inside a literal: the inner goroutine's
// spawning scope is the literal, which drains it.
func GoodNested() func() int {
	return func() int {
		out := make(chan int)
		go func() { out <- 2 }()
		return <-out
	}
}

// GoodWaived documents a deliberate fire-and-forget.
func GoodWaived() {
	go func() {}() //cafe:allow goroutine demo daemon; lifetime owned by the process
}
