// Package atomics seeds mixed atomic/plain field access for the
// atomic pass: every field touched through sync/atomic anywhere must
// be touched that way everywhere, so each plain load or store of such
// a field is a violation, while all-atomic and all-plain structs pass
// clean.
package atomics

import "sync/atomic"

// Mixed has counters updated through sync/atomic functions in one
// method and read or written plainly in others.
type Mixed struct {
	n     int64
	ready uint32
}

func (m *Mixed) IncAtomic() { atomic.AddInt64(&m.n, 1) }

func (m *Mixed) ReadPlain() int64 {
	return m.n //violation:atomic
}

func (m *Mixed) ResetPlain() {
	m.n = 0 //violation:atomic
}

func (m *Mixed) MarkReady() { atomic.StoreUint32(&m.ready, 1) }

func (m *Mixed) Ready() bool {
	return m.ready == 1 //violation:atomic
}

// Typed wraps its counter in atomic.Int64: method access is atomic, a
// value copy is a plain load of the same word.
type Typed struct {
	c atomic.Int64
}

func (t *Typed) Inc() { t.c.Add(1) }

func (t *Typed) Snapshot() int64 {
	v := t.c //violation:atomic
	return v.Load()
}

// Clean is all-atomic: no finding.
type Clean struct {
	n int64
}

func (c *Clean) Inc() { atomic.AddInt64(&c.n, 1) }

func (c *Clean) Load() int64 { return atomic.LoadInt64(&c.n) }

// PlainOnly never goes near sync/atomic: no finding.
type PlainOnly struct {
	n int64
}

func (p *PlainOnly) Bump() { p.n++ }

func (p *PlainOnly) Value() int64 { return p.n }

// MethodOnly uses atomic.Uint32 exclusively through methods: no
// finding, and taking the field's address stays neutral.
type MethodOnly struct {
	flag atomic.Uint32
}

func (m *MethodOnly) Set() { m.flag.Store(1) }

func (m *MethodOnly) Get() uint32 { return m.flag.Load() }

func (m *MethodOnly) Ref() *atomic.Uint32 { return &m.flag }
