package hot

import (
	"fmt"
	"math/bits"
)

// Clean is annotated but allocation-free: loops, intrinsic builtins,
// allowlisted math/bits calls, value composite literals, dynamic calls
// through function parameters, calls to other annotated functions, and
// panic messages (cold by definition) must all pass untouched.
//
//cafe:hotpath
func Clean(xs []int, dst []int, pick func(int) int) int {
	sum := 0
	for i := 0; i < len(xs); i++ {
		sum += pick(xs[i])
	}
	sum += bits.OnesCount64(uint64(sum))
	n := copy(dst, xs)
	sum += min(n, cap(dst))
	p := point{x: sum}
	var arr [4]int
	arr[0] = p.x
	if sum < 0 {
		panic(fmt.Sprintf("negative checksum %d", sum))
	}
	return sum + arr[0] + helper(sum)
}
