// Package hot seeds deliberate hot-path violations for the analysis
// test suite. Every line expected to be flagged carries a trailing
// violation marker comment; the tests cross-check the pass output
// against exactly that set, so an unmarked finding or an unflagged
// marker both fail.
package hot

import (
	"fmt"
	"strings"
)

type point struct{ x, y int }

// Sink is an interface hot code must not call through dynamically.
type Sink interface {
	Put(v int)
}

func plain(x int) int { return x + 1 }

//cafe:hotpath
func helper(x int) int { return x * 2 }

//cafe:hotpath
func Violations(xs []int, s string, raw []byte, sink Sink) any {
	m := map[int]bool{} //violation:hotpath
	for _, x := range xs {
		m[x] = true
	}
	lit := []int{1, 2, 3}        //violation:hotpath
	pt := &point{x: 1}           //violation:hotpath
	buf := make([]byte, 8)       //violation:hotpath
	n := new(int)                //violation:hotpath
	xs = append(xs, len(buf))    //violation:hotpath
	str := string(raw)           //violation:hotpath
	bs := []byte(s)              //violation:hotpath
	f := func() int { return 1 } //violation:hotpath
	fmt.Println(pt.x)            //violation:hotpath
	_ = strings.ToUpper(str)     //violation:hotpath
	println(*n)                  //violation:hotpath
	_ = plain(f())               //violation:hotpath
	sink.Put(len(bs))            //violation:hotpath
	var box any
	box = lit[0] //violation:hotpath
	_ = box
	_ = helper(xs[0])
	return xs[0] //violation:hotpath
}
