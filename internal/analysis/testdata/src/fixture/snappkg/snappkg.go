// Package snappkg seeds the snapshot-pass fixtures: stores through
// atomically loaded values, mutating helpers fed a snapshot, and
// retention across a swap point. The read-only and publish shapes
// around them must stay silent. The conf type is deliberately NOT
// //cafe:frozen: snapshot taint comes from the atomic load itself.
package snappkg

import "sync/atomic"

type conf struct {
	limit int
	tags  []string
}

var cur atomic.Pointer[conf]

// publish is the swap point: callers' live snapshots go stale here,
// except the value being published.
func publish(c *conf) { cur.Store(c) }

// load hands the snapshot out through a helper; call sites get the
// taint from the summary's snapMask.
func load() *conf { return cur.Load() }

// mutate writes through its argument; feeding it a snapshot is the
// violation, not the write in here.
func mutate(c *conf) { c.limit++ }

// readOnly is the sanctioned pattern: load, read, drop.
func readOnly() int {
	c := cur.Load()
	return c.limit
}

// copyOnWrite is the sanctioned update: build a new value from the
// snapshot's fields and publish it. The published value is exempt
// from going stale.
func copyOnWrite() {
	c := cur.Load()
	next := &conf{limit: c.limit + 1}
	publish(next)
	_ = next.limit
}

func storeThroughLoad() {
	c := cur.Load()
	c.limit = 1 //violation:snapshot
}

func elementStoreViaHelper() {
	c := load()
	c.tags[0] = "x" //violation:snapshot
}

func passLoadToMutator() {
	mutate(cur.Load()) //violation:snapshot
}

func useAfterSwap() {
	c := cur.Load()
	next := &conf{limit: c.limit + 1}
	publish(next)
	_ = c.limit //violation:snapshot
}

func incThroughLoad() {
	c := load()
	c.limit++ //violation:snapshot
}

func waived() {
	c := cur.Load()
	c.limit = 0 //cafe:allow snapshot fixture: proves the waiver suppresses exactly this line
}

// use keeps the fixture shapes alive for the type checker.
var use = []func(){
	storeThroughLoad, elementStoreViaHelper, passLoadToMutator,
	useAfterSwap, incThroughLoad, waived, copyOnWrite,
	func() { _ = readOnly() },
}
