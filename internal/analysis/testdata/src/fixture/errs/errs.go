// Package errs seeds discarded-error violations for the errcheck pass:
// every way of dropping an error the pass knows about appears once with
// a violation marker comment, and Good shows the accepted shapes.
package errs

import (
	"errors"
	"fmt"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func note() {}

func Bad() {
	mayFail()      //violation:errcheck
	_ = mayFail()  //violation:errcheck
	v, _ := pair() //violation:errcheck
	_ = v
	defer mayFail() //violation:errcheck
	go mayFail()    //violation:errcheck
	err := mayFail()
	_ = err //violation:errcheck
}

func Good() error {
	note()
	if err := mayFail(); err != nil {
		return err
	}
	v, err := pair()
	if err != nil {
		return fmt.Errorf("pair: %w", err)
	}
	if v > 0 {
		return nil
	}
	return mayFail()
}
