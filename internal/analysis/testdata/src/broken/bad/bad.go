// Package bad fails to type-check on purpose: the loader must record
// a per-package error for it instead of silently skipping it or
// aborting the whole module.
package bad

// Busted references an undefined identifier.
func Busted() int { return undefinedIdent }
