// Package good type-checks fine; it proves a broken sibling does not
// stop the rest of the module from loading.
package good

// Fine is analyzable.
func Fine() int { return 1 }
