package analysis

// The frozen pass: types annotated //cafe:frozen are immutable once
// published. Construction is free — a value that never leaves the
// function carries no taint — but once a value may be published (read
// back from a package-level variable, or obtained from a function
// whose summary says it hands out published values), every store into
// it, and every call that passes it to a helper whose transitive
// summary mutates the corresponding parameter or receiver, is a
// violation. The dataflow itself lives in mutation.go and is shared
// with the snapshot pass through MutShared.

// FrozenPass reports post-publish mutation of //cafe:frozen values.
type FrozenPass struct {
	Shared *MutShared
}

// Name implements Pass.
func (p *FrozenPass) Name() string { return "frozen" }

// Run implements Pass.
func (p *FrozenPass) Run(prog *Program, pkg *Package) []Finding {
	if p.Shared == nil {
		p.Shared = &MutShared{}
	}
	return p.Shared.analyze(prog, pkg).frozen
}
